(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md
   for paper-vs-measured commentary).

     dune exec bench/main.exe             # run everything
     dune exec bench/main.exe table7 fig4 # run selected sections

   Paper numbers printed next to measured ones are quotations from the
   paper (marked "paper"); our substrate is a simulator, so shapes and
   ratios are the reproduction target, not absolute values. *)

module Config = Ascend.Arch.Config
module Precision = Ascend.Arch.Precision
module Silicon = Ascend.Arch.Silicon
module Engine = Ascend.Compiler.Engine
module Fusion = Ascend.Compiler.Fusion
module Simulator = Ascend.Core_sim.Simulator
module Table = Ascend.Util.Table
module Stats = Ascend.Util.Stats
module Workload = Ascend.Nn.Workload
module Training_nn = Ascend.Nn.Training
module Soc = Ascend.Soc.Training_soc
module Mobile = Ascend.Soc.Mobile_soc
module Auto = Ascend.Soc.Automotive_soc
module Cluster = Ascend.Cluster.Training

let section_header name description =
  Format.printf "@.==== %s — %s ====@." name description

let ok = function
  | Ok v -> v
  | Error e -> failwith e

(* machine-readable companion to the human tables: each section run
   writes BENCH_<section>.json (scenario name, wall time, plus whatever
   key numbers the section records) so the perf trajectory is trackable
   PR-over-PR *)
module Bench_json = struct
  module Json = Ascend.Util.Json

  let recorded : (string * Json.t) list ref = ref []

  let record key v = recorded := (key, v) :: !recorded
  let record_int key i = record key (Json.Int i)
  let record_float key f = record key (Json.Float f)

  let write ~section ~wall_s =
    let doc =
      Json.Obj
        (("scenario", Json.String section)
        :: ("wall_time_s", Json.Float wall_s)
        :: List.rev !recorded)
    in
    recorded := [];
    Json.write_file (Printf.sprintf "BENCH_%s.json" section) doc
end

(* ------------------------------------------------------------------ *)
(* Table 2: operations per computing unit                              *)

let table2 () =
  section_header "table2" "operations per computing unit";
  let t =
    Table.create ~header:[ "unit"; "typical operations (this library's mapping)" ] ()
  in
  Table.add_rows t
    [
      [ "Scalar"; "control flow, loop bookkeeping (Scalar_op)" ];
      [ "Vector";
        "normalize / activation / format transfer / pooling / depthwise \
         (Vector_op; Op.vector_passes)" ];
      [ "Cube"; "convolution / FC / MatMul (Cube_matmul via img2col GEMM)" ];
    ];
  Table.print ~align:Table.Left t

(* ------------------------------------------------------------------ *)
(* Table 3: computing-unit comparison                                  *)

let table3 () =
  section_header "table3" "scalar vs vector vs cube PPA (7nm, 1 GHz)";
  let t =
    Table.create
      ~header:[ "unit"; "perf"; "power (W)"; "area (mm2)"; "TFLOPS/W";
                "TFLOPS/mm2" ]
      ()
  in
  List.iter
    (fun (r : Silicon.unit_report) ->
      Table.add_row t
        [
          r.Silicon.unit_name;
          Format.asprintf "%a" Ascend.Util.Units.pp_flops r.Silicon.perf_flops;
          (match r.Silicon.power_w with
          | Some w -> Table.cell_float w
          | None -> "/");
          Table.cell_float r.Silicon.area_mm2;
          (match r.Silicon.perf_per_watt with
          | Some v -> Table.cell_float v
          | None -> "/");
          Table.cell_float r.Silicon.perf_per_area;
        ])
    Silicon.table3;
  Table.print t;
  Format.printf
    "paper: scalar 2G / 0.04mm2; vector 256G / 0.46W / 0.70mm2 / 0.56 / 0.36; \
     cube 8T / 3.13W / 2.57mm2 / 2.56 / 3.11@."

(* ------------------------------------------------------------------ *)
(* Table 4: cube dimension trade-off                                   *)

let table4 () =
  section_header "table4" "area/density benefit of large cubes (12nm)";
  let t =
    Table.create
      ~header:[ "cube"; "quantity"; "area (mm2)"; "fp16 perf"; "GFLOPS/mm2" ]
      ()
  in
  List.iter
    (fun (p : Silicon.cube_design_point) ->
      Table.add_row t
        [
          Printf.sprintf "%dx%dx%d" p.Silicon.dims.Config.m p.Silicon.dims.Config.k
            p.Silicon.dims.Config.n;
          string_of_int p.Silicon.quantity;
          Table.cell_float ~decimals:1 p.Silicon.area_mm2;
          Format.asprintf "%a" Ascend.Util.Units.pp_flops p.Silicon.fp16_flops;
          Table.cell_float ~decimals:0 p.Silicon.gflops_per_mm2;
        ])
    Silicon.table4;
  Table.print t;
  (match Silicon.table4 with
  | [ small; big ] ->
    Format.printf
      "measured: %.1fx throughput for %.1fx area (paper: 4.7x for 2.5x)@."
      (big.Silicon.fp16_flops /. small.Silicon.fp16_flops)
      (big.Silicon.area_mm2 /. small.Silicon.area_mm2)
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* Table 5: design parameters                                          *)

let table5 () =
  section_header "table5" "architecture parameters of the five design points";
  let t =
    Table.create
      ~header:[ "core"; "freq"; "cube (native)"; "perf/cycle"; "vector";
                "L1->L0A B/cyc"; "L1->L0B"; "UB"; "LLC GB/s" ]
      ()
  in
  List.iter
    (fun (c : Config.t) ->
      Table.add_row t
        [
          c.Config.name;
          Printf.sprintf "%.2f GHz" c.Config.frequency_ghz;
          Printf.sprintf "%dx%dx%d %s" c.Config.cube.Config.m
            c.Config.cube.Config.k c.Config.cube.Config.n
            (Precision.name c.Config.native_precision);
          string_of_int
            (Config.flops_per_cycle c ~precision:c.Config.native_precision);
          Printf.sprintf "%d B" c.Config.vector_width_bytes;
          string_of_int c.Config.bandwidth.Config.l1_to_l0a;
          string_of_int c.Config.bandwidth.Config.l1_to_l0b;
          string_of_int c.Config.bandwidth.Config.ub_port;
          (match c.Config.bandwidth.Config.llc_gb_s with
          | Some v -> Table.cell_float ~decimals:1 v
          | None -> "N/A");
        ])
    Config.all;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 6: memory wall                                                *)

let table6 () =
  section_header "table6" "memory wall / IO wall bandwidth ladder (256 TFLOPS)";
  let t = Table.create ~header:[ "level"; "bandwidth"; "ratio to cube" ] () in
  List.iter
    (fun (r : Ascend.Memory.Memory_wall.rung) ->
      Table.add_row t
        [
          r.Ascend.Memory.Memory_wall.level;
          Format.asprintf "%a" Ascend.Util.Units.pp_rate
            r.Ascend.Memory.Memory_wall.bandwidth_bytes_per_s;
          (let inv = 1. /. r.Ascend.Memory.Memory_wall.ratio_to_cube in
           if inv <= 1.001 then "1"
           else Printf.sprintf "1/%.0f" inv);
        ])
    (Ascend.Memory.Memory_wall.table6 ~peak_flops:256e12);
  Table.print t;
  Format.printf "paper ratios: 1, 1/1, 1/10, 1/100, 1/2000, 1/40000, 1/200000@."

(* ------------------------------------------------------------------ *)
(* Figures 4-8: per-layer cube/vector execution-time ratios            *)

let ratio_summary layers =
  let ratios =
    List.filter_map
      (fun (l : Engine.layer_result) ->
        if l.Engine.ratio = infinity then None else Some l.Engine.ratio)
      layers
  in
  let finite = List.length ratios in
  let above1 = List.length (List.filter (fun r -> r > 1.) ratios) in
  let inf_count = List.length layers - finite in
  ( ratios,
    Printf.sprintf
      "%d layers: %d pure-cube (ratio inf), %d/%d finite ratios > 1; \
       min %.2f / median %.2f / max %.2f"
      (List.length layers) inf_count above1 finite
      (Stats.minimum ratios)
      (Stats.percentile 50. ratios)
      (Stats.maximum ratios) )

let ratio_bar ratio =
  (* log-scale sparkline: '|' marks ratio = 1, the paper's break-even *)
  if ratio = infinity then "############################ inf"
  else begin
    let clamped = Stats.clamp ~lo:0.01 ~hi:100. ratio in
    let pos = int_of_float ((log10 clamped +. 2.) /. 4. *. 28.) in
    String.init 29 (fun i ->
        if i = 14 then (if pos >= 14 then '#' else '|')
        else if i <= pos then '#'
        else if i = 14 then '|'
        else ' ')
  end

let print_ratio_series ?(limit = 100) title layers =
  let t =
    Table.create ~title
      ~header:[ "#"; "layer"; "cube cyc"; "vector cyc"; "ratio";
                "0.01 .. 1 .. 100 (log)" ]
      ()
  in
  List.iteri
    (fun i (l : Engine.layer_result) ->
      if i < limit then
        Table.add_row t
          [
            string_of_int i;
            l.Engine.group.Fusion.tag;
            string_of_int l.Engine.cube_cycles;
            string_of_int l.Engine.vector_cycles;
            (if l.Engine.ratio = infinity then "inf"
             else Table.cell_float l.Engine.ratio);
            ratio_bar l.Engine.ratio;
          ])
    layers;
  Table.print ~align:Table.Left t;
  let _, summary = ratio_summary layers in
  Format.printf "%s@." summary

let fig4 () =
  section_header "fig4"
    "cube/vector ratio per layer, BERT-Large inference (cube 8192 FLOPS/cyc, \
     vector 256 B)";
  let r = ok (Engine.run_inference Config.max (Ascend.Nn.Bert.large ~seq_len:128 ())) in
  (* print the embedding stage and the first two encoder blocks; the other
     22 blocks repeat the same pattern *)
  let first_blocks = List.filteri (fun i _ -> i < 17) r.Engine.layers in
  print_ratio_series "first two encoder blocks (pattern repeats)" first_blocks;
  let _, summary = ratio_summary r.Engine.layers in
  Format.printf "whole network: %s@." summary;
  Format.printf
    "paper: for most layers the ratio is much greater than 1 (vector hidden \
     under cube)@."

let fig5 () =
  section_header "fig5" "cube/vector ratio per layer, BERT-Large training";
  let g = Ascend.Nn.Bert.large ~seq_len:128 () in
  let r = ok (Engine.run_training Config.max g) in
  let pairs = Engine.training_ratio_by_layer r in
  let t =
    Table.create ~title:"first two encoder blocks (fwd+bwd combined)"
      ~header:[ "#"; "layer"; "training ratio" ]
      ()
  in
  List.iteri
    (fun i (tag, ratio) ->
      if i < 17 then
        Table.add_row t
          [ string_of_int i; tag;
            (if ratio = infinity then "inf" else Table.cell_float ratio) ])
    pairs;
  Table.print t;
  let finite = List.filter (fun (_, r) -> r <> infinity) pairs in
  let above1 = List.filter (fun (_, r) -> r > 1.) finite in
  Format.printf "whole network: %d/%d finite ratios > 1; median %.2f@."
    (List.length above1) (List.length finite)
    (Stats.percentile 50. (List.map snd finite));
  Format.printf
    "paper: vector use rises in training but the ratio stays > 1 in most \
     layers@."

let fig6 () =
  section_header "fig6" "cube/vector ratio per layer, MobileNet inference";
  let r = ok (Engine.run_inference Config.max (Ascend.Nn.Mobilenet.v2 ())) in
  print_ratio_series "all layers" r.Engine.layers;
  Format.printf
    "paper: most MobileNet layers sit between 0 and 1 — hence the Lite \
     core's relatively wider vector unit@."

let fig7 () =
  section_header "fig7" "cube/vector ratio per layer, ResNet-50 inference";
  let r = ok (Engine.run_inference Config.max (Ascend.Nn.Resnet.v1_5 ())) in
  print_ratio_series ~limit:20 "first 20 layers" r.Engine.layers;
  let _, summary = ratio_summary r.Engine.layers in
  Format.printf "whole network: %s@." summary;
  let early =
    List.filteri (fun i _ -> i < 6) r.Engine.layers
    |> List.filter_map (fun (l : Engine.layer_result) ->
           if l.Engine.ratio = infinity then None else Some l.Engine.ratio)
  in
  Format.printf
    "first layers' geomean ratio: %.2f (paper: close to 1 in the first few \
     layers)@."
    (Stats.geomean early)

let fig8 () =
  section_header "fig8"
    "cube/vector ratio per layer, Gesture net on Ascend-Tiny (cube 1024 int8 \
     OPS/cyc, vector 32 B)";
  let r = ok (Engine.run_inference Config.tiny (Ascend.Nn.Gesture.build ())) in
  print_ratio_series "all layers" r.Engine.layers;
  Format.printf "paper: the ratio is greater than 1 for all layers@."

(* ------------------------------------------------------------------ *)
(* Figure 9: L1 bandwidth profiling                                    *)

let fig9 () =
  section_header "fig9" "L1 read/write bandwidth demand per layer (bits/cycle)";
  let t =
    Table.create
      ~header:[ "workload"; "layers"; "read max"; "read mean"; "write max";
                "write mean" ]
      ()
  in
  let add name (layers : Engine.layer_result list) =
    let reads =
      List.map (fun (l : Engine.layer_result) ->
          Simulator.l1_read_bits_per_cycle l.Engine.report)
        layers
    in
    let writes =
      List.map (fun (l : Engine.layer_result) ->
          Simulator.l1_write_bits_per_cycle l.Engine.report)
        layers
    in
    Table.add_row t
      [
        name;
        string_of_int (List.length layers);
        Table.cell_float ~decimals:0 (Stats.maximum reads);
        Table.cell_float ~decimals:0 (Stats.mean reads);
        Table.cell_float ~decimals:0 (Stats.maximum writes);
        Table.cell_float ~decimals:0 (Stats.mean writes);
      ]
  in
  let bert = Ascend.Nn.Bert.large ~seq_len:128 () in
  let tr = ok (Engine.run_training Config.max bert) in
  let is_bwd (l : Engine.layer_result) =
    String.length l.Engine.group.Fusion.tag >= 4
    && String.sub l.Engine.group.Fusion.tag 0 4 = "bwd:"
  in
  let fwd, bwd = List.partition (fun l -> not (is_bwd l)) tr.Engine.layers in
  add "BERT forward" fwd;
  add "BERT backward" bwd;
  add "MobileNet inf."
    (ok (Engine.run_inference Config.max (Ascend.Nn.Mobilenet.v2 ()))).Engine.layers;
  add "ResNet50 inf."
    (ok (Engine.run_inference Config.max (Ascend.Nn.Resnet.v1_5 ()))).Engine.layers;
  Table.print t;
  Format.printf
    "paper bound: reads <= 4096 bits/cycle, writes <= 2048 bits/cycle; \
     MobileNet shows the highest L1 demand@."

(* ------------------------------------------------------------------ *)
(* §2.4: the Lite vector-width rebalance                               *)

let lite_rebalance () =
  section_header "lite_rebalance"
    "why Ascend-Lite keeps a relatively wide vector unit (cube 8192->2048 \
     OPS/cyc, vector 256->128 B)";
  let lite_with ~vector_width_bytes ~ub =
    {
      Config.lite with
      Config.vector_width_bytes;
      bandwidth = { Config.lite.Config.bandwidth with Config.ub_port = ub };
    }
  in
  let variants =
    [
      ("Lite 64B vector", lite_with ~vector_width_bytes:64 ~ub:512);
      ("Lite 128B vector (shipped)", Config.lite);
      ("Lite 256B vector", lite_with ~vector_width_bytes:256 ~ub:2048);
    ]
  in
  let g = Ascend.Nn.Mobilenet.v2 () in
  let t =
    Table.create
      ~header:[ "variant"; "MobileNetV2 ms"; "layers ratio<1"; "core power W" ]
      ()
  in
  List.iter
    (fun (name, config) ->
      let r = ok (Engine.run_inference config g) in
      let sub1 =
        List.length
          (List.filter
             (fun (l : Engine.layer_result) -> l.Engine.ratio < 1.)
             r.Engine.layers)
      in
      Table.add_row t
        [
          name;
          Table.cell_float (Engine.seconds r *. 1e3);
          Printf.sprintf "%d/%d" sub1 (List.length r.Engine.layers);
          Table.cell_float (Engine.average_power_w r);
        ])
    variants;
  Table.print t;
  Format.printf
    "the 128 B point recovers most of the 256 B performance at roughly half \
     the vector power — the paper's shipped trade-off@."

(* ------------------------------------------------------------------ *)
(* §3.1.1: the 910 mesh NoC                                            *)

let noc () =
  section_header "noc" "Ascend 910 mesh NoC (6x4, 1024-bit @ 2 GHz links)";
  let m = Ascend.Noc.Mesh.ascend910 in
  Format.printf
    "link bandwidth %.0f GB/s (paper: 256 GB/s); bisection %.1f TB/s@."
    (Ascend.Noc.Mesh.link_bandwidth m /. 1e9)
    (Ascend.Noc.Mesh.bisection_bandwidth m /. 1e12);
  (* flow level: cores all loading from the memory-port edge nodes *)
  let flows =
    List.concat_map
      (fun row ->
        List.map
          (fun col ->
            {
              Ascend.Noc.Mesh.src = Ascend.Noc.Mesh.node m ~row ~col;
              dst = Ascend.Noc.Mesh.node m ~row:0 ~col:(col mod 2);
              demand = 40e9;
            })
          [ 0; 1; 2; 3 ])
      [ 1; 2; 3; 4; 5 ]
  in
  let results = Ascend.Noc.Mesh.route_flows m flows in
  let total =
    List.fold_left (fun a r -> a +. r.Ascend.Noc.Mesh.throughput) 0. results
  in
  Format.printf
    "20 cores pulling 40 GB/s each toward two memory ports: aggregate %.0f \
     GB/s delivered (demand %.0f GB/s)@."
    (total /. 1e9) (40. *. 20.);
  let t =
    Table.create ~title:"bufferless deflection router, uniform random traffic"
      ~header:[ "packets"; "avg latency (cyc)"; "max"; "deflections" ]
      ()
  in
  List.iter
    (fun packets ->
      let s =
        Ascend.Noc.Deflection.uniform_random_experiment ~rows:6 ~cols:4
          ~packets ~seed:42
      in
      Table.add_row t
        [
          string_of_int packets;
          Table.cell_float (Ascend.Noc.Deflection.average_latency s);
          string_of_int s.Ascend.Noc.Deflection.max_latency_cycles;
          string_of_int s.Ascend.Noc.Deflection.deflections;
        ])
    [ 24; 240; 1200; 4800 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 7: training SoC PPA                                           *)

let resnet_training_layers batch =
  let g = Ascend.Nn.Resnet.v1_5 ~batch () in
  List.map (Training_nn.node_training_workload g) (Ascend.Nn.Graph.nodes g)

let bert_training_layers batch =
  let g = Ascend.Nn.Bert.large ~batch ~seq_len:128 () in
  List.map (Training_nn.node_training_workload g) (Ascend.Nn.Graph.nodes g)

let table7 () =
  section_header "table7" "training SoC PPA: V100 / TPUv3 / CPU / Ascend 910";
  let batch = 32 in
  let rn =
    ok
      (Soc.run ~training:true Soc.ascend910
         ~build:(fun ~batch -> Ascend.Nn.Resnet.v1_5 ~batch ())
         ~batch)
  in
  let bert =
    ok
      (Soc.run ~training:true Soc.ascend910
         ~build:(fun ~batch -> Ascend.Nn.Bert.large ~batch ~seq_len:128 ())
         ~batch)
  in
  let v100 = Ascend.Baselines.Simt_gpu.v100 in
  let tpu = Ascend.Baselines.Systolic.tpu_v3 in
  let cpu = Ascend.Baselines.Cpu.xeon_8180 in
  let v100_rn =
    float_of_int batch
    /. Ascend.Baselines.Simt_gpu.network_seconds v100 (resnet_training_layers batch)
  in
  let v100_bert =
    float_of_int batch
    /. Ascend.Baselines.Simt_gpu.network_seconds v100 (bert_training_layers batch)
  in
  let tpu_rn =
    float_of_int batch
    /. Ascend.Baselines.Systolic.network_seconds tpu (resnet_training_layers batch)
  in
  let cpu_rn =
    float_of_int batch
    /. Ascend.Baselines.Cpu.network_seconds cpu (resnet_training_layers batch)
  in
  let t =
    Table.create ~header:[ "metric"; "V100"; "TPUv3"; "Xeon 8180"; "Ascend 910" ] ()
  in
  Table.add_row t
    [
      "peak TFLOPS";
      Table.cell_float ~decimals:0
        (Ascend.Baselines.Simt_gpu.peak_tensor_flops v100 /. 1e12);
      Table.cell_float ~decimals:0
        (Ascend.Baselines.Systolic.peak_flops tpu /. 1e12);
      Table.cell_float ~decimals:1 (Ascend.Baselines.Cpu.peak_flops cpu /. 1e12);
      Table.cell_float ~decimals:0
        (Soc.peak_flops Soc.ascend910 ~precision:Precision.Fp16 /. 1e12);
    ];
  Table.add_row t
    [
      "power (W)";
      Table.cell_float ~decimals:0 v100.Ascend.Baselines.Simt_gpu.power_w;
      Table.cell_float ~decimals:0 tpu.Ascend.Baselines.Systolic.power_w;
      Table.cell_float ~decimals:0 cpu.Ascend.Baselines.Cpu.power_w;
      Table.cell_float ~decimals:0 rn.Soc.chip_power_w;
    ];
  Table.add_row t
    [
      "area (mm2)";
      Table.cell_float ~decimals:0 v100.Ascend.Baselines.Simt_gpu.area_mm2;
      "-";
      "~700";
      Printf.sprintf "%.0f + %.0f IO"
        (Soc.compute_die_area_mm2 Soc.ascend910)
        Soc.ascend910.Soc.io_die_area_mm2;
    ];
  Table.add_row t
    [
      "ResNet50 images/s";
      Table.cell_float ~decimals:0 v100_rn;
      Table.cell_float ~decimals:0 tpu_rn;
      Table.cell_float ~decimals:1 cpu_rn;
      Table.cell_float ~decimals:0 rn.Soc.throughput_per_s;
    ];
  Table.add_row t
    [
      "BERT-Large seq/s (8 chips)";
      Table.cell_float ~decimals:0 (8. *. v100_bert);
      "-";
      "-";
      Table.cell_float ~decimals:0 (8. *. bert.Soc.throughput_per_s);
    ];
  Table.print t;
  Format.printf
    "paper: peak 125/106/1.5/256 TFLOPS; ResNet50 1058/976/-/1809 img/s; \
     BertLarge 8p 822/-/-/3169 seq/s@.";
  Format.printf
    "shape check: Ascend 910 > V100 > TPUv3 on ResNet50 -> measured %s@."
    (if rn.Soc.throughput_per_s > v100_rn && v100_rn > tpu_rn then "yes"
     else "NO")

(* ------------------------------------------------------------------ *)
(* Table 8: mobile AI core PPA                                         *)

let table8 () =
  section_header "table8" "mobile AI PPA: Kirin 990-5G vs published parts";
  let soc = Mobile.kirin990 in
  let mb = ok (Mobile.run_big soc (Ascend.Nn.Mobilenet.v2 ())) in
  let t =
    Table.create
      ~header:[ "chip"; "peak TOPS"; "TOPS/W"; "NPU area mm2";
                "MobileNetV2 ms (fp16)" ]
      ()
  in
  Table.add_rows t
    [
      [ "SnapDragon 865 (paper)"; "8"; "-"; "2.4"; "15" ];
      [ "Dimensity 1000 (paper)"; "4.5"; "3.4-6.8"; "2.68"; "7" ];
      [ "Exynos 9820 (paper)"; "2.1-6.9"; "3.6-11.5"; "5.5"; "15" ];
      [ "Apple A13 (paper)"; "6"; "-"; "2.61"; "-" ];
      [ "Kirin 990-5G (paper)"; "6.88"; "4.6"; "4"; "5.2" ];
    ];
  Table.add_separator t;
  Table.add_row t
    [
      "Kirin 990-5G (simulated)";
      Table.cell_float (Mobile.peak_tops soc);
      Table.cell_float mb.Mobile.tops_per_watt;
      Table.cell_float ~decimals:1 (Mobile.npu_area_mm2 soc);
      Table.cell_float (mb.Mobile.latency_s *. 1e3);
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 9: automotive SoC PPA                                         *)

let table9 () =
  section_header "table9" "automotive SoC PPA";
  let soc = Auto.ascend610 in
  let t =
    Table.create ~header:[ "chip"; "peak TOPS"; "power (W)"; "area (mm2)" ] ()
  in
  Table.add_rows t
    [
      [ "NVidia Xavier (paper)"; "34"; "30"; "350" ];
      [ "Tesla FSD (paper)"; "73"; "100"; "260" ];
      [ "Mobileye EyeQ5 (paper)"; "24"; "10"; "-" ];
      [ "Ascend 610 (paper)"; "160"; "65"; "401" ];
    ];
  Table.add_separator t;
  Table.add_row t
    [
      "Ascend 610 (simulated)";
      Table.cell_float ~decimals:0 (Auto.peak_tops soc ~precision:Precision.Int8);
      Table.cell_float ~decimals:0 soc.Auto.tdp_w;
      "-";
    ];
  Table.print t;
  let fsd = Ascend.Baselines.Systolic.fsd_like in
  let util m k n = Ascend.Baselines.Systolic.gemm_utilization fsd ~m ~k ~n in
  Format.printf
    "FSD-like 96x96 systolic utilisation: large GEMM (4096^3) %.0f%%, small \
     automotive layer (m=256,k=128,n=64) %.0f%% — the pipeline-bubble penalty \
     the paper speculates about@."
    (100. *. util 4096 4096 4096)
    (100. *. util 256 128 64)

(* ------------------------------------------------------------------ *)
(* Table 10: business numbers (not reproducible)                       *)

let table10 () =
  section_header "table10"
    "commercial shipment volumes (quoted, not reproducible by simulation)";
  let t = Table.create ~header:[ "product"; "release"; "quantity" ] () in
  Table.add_rows t
    [
      [ "Ascend 910"; "2019"; "~0.2 M" ];
      [ "Mobile SoC with Ascend cores"; "2019"; "> 100 M" ];
      [ "Ascend 610"; "2020"; "/" ];
      [ "Ascend 310"; "2018"; "~1 M" ];
    ];
  Table.print ~align:Table.Left t

(* ------------------------------------------------------------------ *)
(* §3.2: mobile utilisation & DVFS                                     *)

let mobile_util () =
  section_header "mobile_util" "Kirin 990: batch-1 utilisation and DVFS";
  Format.printf
    "cube MAC utilisation on an m=4 GEMM fragment (batch-1 late layers): Lite \
     4x16x16 %.0f%% vs Max 16x16x16 %.0f%% (the paper's reason for the \
     smaller m dimension)@."
    (100. *. Mobile.batch1_cube_utilization Config.lite ~m:4 ~k:256 ~n:256)
    (100. *. Mobile.batch1_cube_utilization Config.max ~m:4 ~k:256 ~n:256);
  let soc = Mobile.kirin990 in
  let g = Ascend.Nn.Mobilenet.v2 () in
  let t =
    Table.create ~title:"DVFS trade-off, MobileNetV2 batch 1"
      ~header:[ "point"; "latency ms"; "power W"; "energy mJ"; "TOPS/W" ]
      ()
  in
  List.iter
    (fun (p : Mobile.dvfs_point) ->
      let r = ok (Mobile.run_big ~point:p.Mobile.point_name soc g) in
      Table.add_row t
        [
          p.Mobile.point_name;
          Table.cell_float (r.Mobile.latency_s *. 1e3);
          Table.cell_float r.Mobile.average_power_w;
          Table.cell_float (r.Mobile.energy_per_inference_j *. 1e3);
          Table.cell_float r.Mobile.tops_per_watt;
        ])
    soc.Mobile.dvfs;
  Table.print t;
  let gest = ok (Mobile.run_little soc (Ascend.Nn.Gesture.build ())) in
  Format.printf
    "Ascend-Tiny gesture net: %.0f mW (paper: ~300 mW typical power)@."
    (gest.Mobile.average_power_w *. 1e3)

(* ------------------------------------------------------------------ *)
(* §3.3: QoS / MPAM                                                    *)

let qos () =
  section_header "qos"
    "Ascend 610: MPAM bounds perception latency under background traffic";
  let soc = Auto.ascend610 in
  let models =
    [
      ("detector", Ascend.Nn.Resnet.v1_5_18 (), 0.05);
      ("segmenter", Ascend.Nn.Mobilenet.v2 (), 0.05);
    ]
  in
  let t =
    Table.create
      ~header:[ "background GB/s"; "MPAM"; "detector ms"; "segmenter ms";
                "deadlines met" ]
      ()
  in
  List.iter
    (fun bg ->
      List.iter
        (fun with_mpam ->
          let rs =
            ok (Auto.run_service ~with_mpam soc ~models ~background_demand:bg)
          in
          let e2e name =
            (List.find (fun (r : Auto.service_result) -> r.Auto.model_name = name) rs)
              .Auto.end_to_end_s
          in
          let met = List.for_all (fun (r : Auto.service_result) -> r.Auto.met_deadline) rs in
          Table.add_row t
            [
              Table.cell_float ~decimals:0 (bg /. 1e9);
              (if with_mpam then "on" else "off");
              Table.cell_float (e2e "detector" *. 1e3);
              Table.cell_float (e2e "segmenter" *. 1e3);
              (if met then "all" else "MISSED");
            ])
        [ true; false ])
    [ 0.; 40e9; 90e9 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* §4.1: LLC capacity scaling (3D-SRAM)                                *)

let llc_scaling () =
  section_header "llc_scaling" "3D-SRAM LLC capacity sweep (96 MB -> 720 MB)";
  let mib = Ascend.Util.Units.mib in
  let run ~llc ~build ~batch =
    ok (Soc.run ~training:true (Soc.ascend910_llc ~llc_bytes:llc) ~build ~batch)
  in
  let sweep name build batch paper =
    let base = run ~llc:(96 * mib) ~build ~batch in
    let t =
      Table.create
        ~title:(name ^ " training throughput vs LLC capacity")
        ~header:[ "LLC MB"; "hit fraction"; "HBM slowdown"; "items/s";
                  "speedup vs 96MB" ]
        ()
    in
    let final = ref base in
    List.iter
      (fun mb ->
        let r = run ~llc:(mb * mib) ~build ~batch in
        if mb = 720 then final := r;
        Table.add_row t
          [
            string_of_int mb;
            Table.cell_float r.Soc.llc_hit_fraction;
            Table.cell_ratio r.Soc.hbm_slowdown;
            Table.cell_float ~decimals:0 r.Soc.throughput_per_s;
            Table.cell_ratio (r.Soc.throughput_per_s /. base.Soc.throughput_per_s);
          ])
      [ 96; 192; 384; 720 ];
    Table.print t;
    Format.printf "measured 720/96 speedup: %.2fx (paper: %.2fx)@."
      (!final.Soc.throughput_per_s /. base.Soc.throughput_per_s)
      paper
  in
  sweep "ResNet-50" (fun ~batch -> Ascend.Nn.Resnet.v1_5 ~batch ()) 64 1.71;
  sweep "BERT-Large"
    (fun ~batch -> Ascend.Nn.Bert.large ~batch ~seq_len:128 ())
    32 1.51;
  (* trace-driven cross-check with the real set-associative cache: the
     actual per-layer address stream of ResNet-18 against capacity *)
  let g = Ascend.Nn.Resnet.v1_5_18 ~batch:4 () in
  let footprint = Ascend.Soc.Llc_trace.address_footprint_bytes g in
  Format.printf
    "@.trace-driven cross-check (ResNet-18 batch 4, footprint %a):@."
    Ascend.Util.Units.pp_bytes footprint;
  let t2 =
    Table.create ~header:[ "LLC capacity"; "steady hit rate" ] ()
  in
  List.iter
    (fun (p : Ascend.Soc.Llc_trace.sweep_point) ->
      Table.add_row t2
        [
          Format.asprintf "%a" Ascend.Util.Units.pp_bytes
            p.Ascend.Soc.Llc_trace.capacity_bytes;
          Printf.sprintf "%.1f%%" (100. *. p.Ascend.Soc.Llc_trace.hit_rate);
        ])
    (Ascend.Soc.Llc_trace.sweep g
       ~capacities:
         [ footprint / 8; footprint / 4; footprint / 2; footprint * 2 ]);
  Table.print t2

(* ------------------------------------------------------------------ *)
(* §4.2: server and cluster                                            *)

let cluster () =
  section_header "cluster" "Ascend 910 server and cluster scaling";
  let server = Ascend.Cluster.Server.ascend910_server in
  Format.printf
    "server: %d chips in %d groups; HCCS %.0f GB/s intra, PCI-E %.0f GB/s \
     inter (paper: 30 / 32)@."
    server.Ascend.Cluster.Server.chips server.Ascend.Cluster.Server.groups
    (server.Ascend.Cluster.Server.hccs_bytes_per_s /. 1e9)
    (server.Ascend.Cluster.Server.pcie_bytes_per_s /. 1e9);
  let chip =
    ok
      (Soc.run ~training:true Soc.ascend910
         ~build:(fun ~batch -> Ascend.Nn.Resnet.v1_5 ~batch ())
         ~batch:32)
  in
  let grad =
    2. *. float_of_int (Ascend.Nn.Graph.total_params (Ascend.Nn.Resnet.v1_5 ()))
  in
  let t =
    Table.create ~title:"data-parallel ResNet-50 scaling (batch 32/chip)"
      ~header:[ "chips"; "step ms"; "allreduce ms"; "images/s"; "efficiency" ]
      ()
  in
  List.iter
    (fun chips ->
      let c = Cluster.cluster_of_chips ~chips in
      let s = Cluster.train_step c ~chip_result:chip ~param_bytes:grad in
      Table.add_row t
        [
          string_of_int chips;
          Table.cell_float (s.Cluster.step_seconds *. 1e3);
          Table.cell_float (s.Cluster.allreduce_seconds *. 1e3);
          Table.cell_float ~decimals:0 s.Cluster.images_per_second;
          Printf.sprintf "%.0f%%" (100. *. s.Cluster.scaling_efficiency);
        ])
    [ 8; 64; 256; 1024; 2048 ];
  Table.print t;
  Format.printf "2048-chip cluster peak: %.0f PFLOPS fp16 (paper: 512)@."
    (Cluster.peak_fp16_flops Cluster.ascend_cluster_2048 /. 1e15)

let mlperf () =
  section_header "mlperf" "ResNet-50/ImageNet time-to-train on 256 chips";
  let chip =
    ok
      (Soc.run ~training:true Soc.ascend910
         ~build:(fun ~batch -> Ascend.Nn.Resnet.v1_5 ~batch ())
         ~batch:32)
  in
  let c = Cluster.cluster_of_chips ~chips:256 in
  let grad =
    2. *. float_of_int (Ascend.Nn.Graph.total_params (Ascend.Nn.Resnet.v1_5 ()))
  in
  let step = Cluster.train_step c ~chip_result:chip ~param_bytes:grad in
  let t44 =
    Cluster.time_to_train_seconds c ~step ~samples_per_epoch:1_281_167
      ~epochs:44.
  in
  Format.printf "measured: %.0f images/s aggregate; 44 ImageNet epochs in %.0f s@."
    step.Cluster.images_per_second t44;
  Format.printf
    "paper: < 83 s with 256 chips and their full-stack-tuned recipe — same \
     order of magnitude, same mechanism (compute-bound steps, overlapped \
     hierarchical all-reduce)@."

(* ------------------------------------------------------------------ *)
(* §3.3: the low-precision inference trade                             *)

let precision () =
  section_header "precision"
    "§3.3: accuracy vs time/energy across inference precisions (Ascend 610 \
     core)";
  let t =
    Table.create
      ~header:[ "precision"; "ResNet-18 latency (us)"; "energy (uJ)";
                "output SNR (dB, small CNN)" ]
      ()
  in
  (* numeric degradation measured on a small CNN with weight-only PTQ *)
  let snr dtype =
    let module Graph = Ascend.Nn.Graph in
    let module Shape = Ascend.Tensor.Shape in
    let g = Graph.create ~name:"q" ~dtype:Precision.Fp32 in
    let x = Graph.input g ~name:"in" (Shape.nchw ~n:1 ~c:3 ~h:8 ~w:8) in
    let c = Graph.conv2d g ~name:"c1" ~cout:8 ~k:3 ~padding:1 x in
    let r = Graph.relu g c in
    let c2 = Graph.conv2d g ~name:"c2" ~cout:8 ~k:3 ~padding:1 r in
    let gp = Graph.global_avg_pool g c2 in
    let fc = Graph.linear g ~name:"fc" ~out_features:4 gp in
    ignore (Graph.output g fc);
    let params = Ascend.Nn.Eval.random_params ~seed:31 g in
    let rng = Ascend.Util.Prng.create ~seed:32 in
    let inputs =
      [ ("in", Ascend.Tensor.Tensor.random rng (Shape.nchw ~n:1 ~c:3 ~h:8 ~w:8)) ]
    in
    (Ascend.Nn.Quantized.compare_outputs g params ~inputs ~dtype)
      .Ascend.Nn.Quantized.output_snr_db
  in
  List.iter
    (fun (name, dtype, snr_cell) ->
      let g = Ascend.Nn.Resnet.v1_5_18 ~dtype () in
      match Engine.run_inference Config.standard g with
      | Error e -> Format.printf "%s: %s@." name e
      | Ok r ->
        Table.add_row t
          [
            name;
            Table.cell_float (Engine.seconds r *. 1e6);
            Table.cell_float (r.Engine.total_energy_j *. 1e6);
            snr_cell;
          ])
    [
      ("fp16", Precision.Fp16, "(reference)");
      ("int8", Precision.Int8, Printf.sprintf "%.1f" (snr Precision.Int8));
      ("int4", Precision.Int4, Printf.sprintf "%.1f" (snr Precision.Int4));
    ];
  Table.print t;
  Format.printf
    "lower precision buys latency and energy at bounded accuracy cost — the \
     automotive trade of §3.3 (int4 supported on the Ascend 610 core only)@."

(* ------------------------------------------------------------------ *)
(* §7.1: related-work architecture comparison                          *)

let related_work () =
  section_header "related_work"
    "§7.1: SIMT vs systolic vs dataflow vs Ascend on the same workloads";
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  let layers =
    List.map (Workload.of_node g) (Ascend.Nn.Graph.nodes g)
  in
  let t =
    Table.create
      ~header:[ "architecture"; "batch-1 latency (ms)"; "batch-256 util";
                "sync training" ]
      ()
  in
  let v100 = Ascend.Baselines.Simt_gpu.v100 in
  let tpu = Ascend.Baselines.Systolic.tpu_v3 in
  let df = Ascend.Baselines.Dataflow.generic_dataflow in
  Table.add_row t
    [
      "SIMT GPU (V100 model)";
      Table.cell_float (1e3 *. Ascend.Baselines.Simt_gpu.network_seconds v100 layers);
      "high";
      "yes";
    ];
  Table.add_row t
    [
      "systolic (TPUv3 model)";
      Table.cell_float (1e3 *. Ascend.Baselines.Systolic.network_seconds tpu layers);
      "high";
      "yes (norm-layer drains)";
    ];
  Table.add_row t
    [
      "dataflow fabric";
      Table.cell_float
        (1e3 *. Ascend.Baselines.Dataflow.single_sample_latency_s df ~layers);
      Printf.sprintf "%.0f%%"
        (100. *. Ascend.Baselines.Dataflow.utilization df ~layers ~batch:256);
      "no (paper §7.1)";
    ];
  (match Engine.run_inference Config.max g with
  | Ok r ->
    Table.add_row t
      [
        "Ascend-Max (simulated)";
        Table.cell_float (1e3 *. Engine.seconds r);
        "high";
        "yes";
      ]
  | Error e -> Format.printf "ascend: %s@." e);
  Table.print t;
  Format.printf
    "the dataflow fabric's batch-1 latency is reconfiguration-bound (%.0f us \
     x %d layers) — the §7.1 mobile/automotive objection@."
    (df.Ascend.Baselines.Dataflow.reconfiguration_s *. 1e6)
    (List.length layers)

(* ------------------------------------------------------------------ *)
(* Edge inference SoC (Ascend 310)                                     *)

let edge () =
  section_header "edge" "Ascend 310 edge-inference SoC (Tables 5/10)";
  let soc = Ascend.Soc.Inference_soc.ascend310 in
  Format.printf "%s: %.1f TOPS int8 peak, %.0f W TDP@."
    soc.Ascend.Soc.Inference_soc.soc_name
    (Ascend.Soc.Inference_soc.peak_tops soc ~precision:Precision.Int8)
    soc.Ascend.Soc.Inference_soc.tdp_w;
  List.iter
    (fun (name, g) ->
      match Ascend.Soc.Inference_soc.run soc g with
      | Error e -> Format.printf "%s: %s@." name e
      | Ok r ->
        Format.printf
          "  %-10s %.2f ms/frame, %.0f fps ideal / %.0f fps scheduled \
           across cores, %.1f W, %d concurrent 1080p30 channels@."
          name
          (r.Ascend.Soc.Inference_soc.latency_s *. 1e3)
          r.Ascend.Soc.Inference_soc.throughput_per_s
          r.Ascend.Soc.Inference_soc.scheduled_throughput_per_s
          r.Ascend.Soc.Inference_soc.power_w
          r.Ascend.Soc.Inference_soc.video_channels;
        Bench_json.record_float (name ^ "_fps")
          r.Ascend.Soc.Inference_soc.scheduled_throughput_per_s)
    [
      ("resnet18", Ascend.Nn.Resnet.v1_5_18 ());
      ("resnet50", Ascend.Nn.Resnet.v1_5 ());
      ("mobilenet", Ascend.Nn.Mobilenet.v2 ());
    ]

(* ------------------------------------------------------------------ *)
(* Request-level serving (lib/serving over the §5.2 scheduler)         *)

let rec serving () =
  section_header "serving"
    "request-level serving: seeded load, dynamic batching, QoS admission, \
     SLO metrics (2-core Standard SoC under mixed-priority overload)";
  let module Serve = Ascend.Serving.Serve in
  let module Load_gen = Ascend.Serving.Load_gen in
  let duration_s = 0.25 in
  let spec name build priority slo_ms rate seed =
    {
      Serve.name;
      build;
      priority;
      slo_ms;
      workload =
        Serve.Open_loop
          (Load_gen.create ~process:Load_gen.Poisson ~rate_per_s:rate
             ~duration_s ~seed ());
    }
  in
  let specs =
    [
      spec "resnet18"
        (fun ~batch -> Ascend.Nn.Resnet.v1_5_18 ~batch ())
        5 10. 2500. 11;
      spec "mobilenet"
        (fun ~batch -> Ascend.Nn.Mobilenet.v2 ~batch ())
        0 50. 2500. 12;
    ]
  in
  let config =
    { (Serve.default_config ~core:Config.standard ~cores:2) with
      Serve.duration_s; queue_depth = 16; max_batch = 4 }
  in
  match Serve.run config specs with
  | Error e -> Format.printf "serving: %s@." e
  | Ok r ->
    Format.printf "%a" Serve.pp r;
    Format.printf
      "the high-priority detector holds its tighter SLO while the \
       background segmenter absorbs the queueing — §5.2's QoS story at \
       request level@.";
    Bench_json.record_int "offline_makespan_cycles" r.Serve.offline_makespan_cycles;
    List.iter
      (fun (s : Ascend.Serving.Metrics.model_summary) ->
        Bench_json.record_float (s.Ascend.Serving.Metrics.model ^ "_p99_ms")
          s.Ascend.Serving.Metrics.p99_ms;
        Bench_json.record_float
          (s.Ascend.Serving.Metrics.model ^ "_goodput_per_s")
          s.Ascend.Serving.Metrics.goodput_per_s)
      r.Serve.metrics.Ascend.Serving.Metrics.summaries;
    two_tier_costing ()

(* ------------------------------------------------------------------ *)
(* Two-tier costing: the same closed-loop workload priced by the exact
   compile+simulate oracle and by the calibrated surrogate             *)

and two_tier_costing () =
  let module Serve = Ascend.Serving.Serve in
  let module Calibration = Ascend.Cost.Calibration in
  Format.printf
    "@.two-tier costing: 32 closed-loop bert-base clients on a 2-core Max \
     SoC; every dispatched batch pays one Cost.lookup, so the pricing tier \
     dominates the wall clock@.";
  let build ~batch = Ascend.Nn.Bert.base ~batch ~seq_len:128 () in
  let max_batch = 4 in
  let specs =
    [
      {
        Serve.name = "bert-base";
        build;
        priority = 0;
        slo_ms = 500.;
        workload = Serve.Closed_loop { clients = 32; think_s = 0.; seed = 31 };
      };
    ]
  in
  let config =
    { (Serve.default_config ~core:Config.max ~cores:2) with
      Serve.duration_s = 400.; queue_depth = 64; max_batch }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let completed (r : Serve.result) =
    List.fold_left
      (fun acc (s : Ascend.Serving.Metrics.model_summary) ->
        acc + s.Ascend.Serving.Metrics.completed)
      0 r.Serve.metrics.Ascend.Serving.Metrics.summaries
  in
  let run costing =
    match time (fun () -> Serve.run { config with Serve.costing } specs) with
    | Ok r, wall_s -> (r, wall_s)
    | Error e, _ -> failwith ("two-tier costing: " ^ e)
  in
  let exact, exact_wall_s = run `Exact in
  let surrogate, surrogate_wall_s = run `Surrogate in
  if completed exact <> completed surrogate then
    failwith "two-tier costing: tiers served different request counts";
  let exact_rps = float_of_int (completed exact) /. exact_wall_s in
  let surrogate_rps =
    float_of_int (completed surrogate) /. surrogate_wall_s
  in
  let speedup = exact_wall_s /. surrogate_wall_s in
  let t =
    Table.create
      ~header:[ "costing"; "completed"; "batches"; "wall s"; "req/s (wall)" ]
      ()
  in
  let row name (r : Serve.result) wall_s rps =
    [ name;
      string_of_int (completed r);
      string_of_int (List.length r.Serve.batches);
      Printf.sprintf "%.2f" wall_s;
      Printf.sprintf "%.0f" rps ]
  in
  Table.add_rows t
    [
      row "exact" exact exact_wall_s exact_rps;
      row "surrogate" surrogate surrogate_wall_s surrogate_rps;
    ];
  Table.print t;
  (* the surrogate's honesty check: re-run the calibration protocol and
     report its worst cycle error against the oracle *)
  let service = Ascend.Exec.Service.create ~jobs:1 () in
  let report =
    match
      Calibration.run ~service ~core:Config.max ~model:"bert-base" ~build
        ~max_batch ()
    with
    | Ok report -> report
    | Error e -> failwith ("two-tier costing: calibration: " ^ e)
  in
  Ascend.Exec.Service.shutdown service;
  Format.printf "%a" (Calibration.pp ()) report;
  Format.printf "surrogate speedup: %.1fx requests/sec at %.2f%% max cycle \
     error@."
    speedup report.Calibration.max_abs_pct_error;
  Bench_json.record_float "exact_requests_per_wall_s" exact_rps;
  Bench_json.record_float "surrogate_requests_per_wall_s" surrogate_rps;
  Bench_json.record_float "surrogate_speedup" speedup;
  Bench_json.record_float "surrogate_max_abs_pct_error"
    report.Calibration.max_abs_pct_error

(* ------------------------------------------------------------------ *)
(* Fleet serving (lib/fleet over the cluster substrate)                *)

let fleet () =
  section_header "fleet"
    "multi-node inference fleet: routing policy vs goodput, cross-node tail \
     latency and per-node utilization (4x 910 nodes, Tiny cores)";
  let module Fleet = Ascend.Fleet.Fleet in
  let module Router = Ascend.Fleet.Router in
  let module Serve = Ascend.Serving.Serve in
  let module Load_gen = Ascend.Serving.Load_gen in
  let module Metrics = Ascend.Serving.Metrics in
  let duration_s = 0.25 in
  let spec name build rate seed replicas =
    {
      Fleet.name;
      build;
      priority = 0;
      slo_ms = 50.;
      replicas;
      kv_bytes = 0;
      workload =
        Serve.Open_loop
          (Load_gen.create ~process:Load_gen.Poisson ~rate_per_s:rate
             ~duration_s ~seed ());
    }
  in
  let specs =
    [
      spec "gesture" (fun ~batch -> Ascend.Nn.Gesture.build ~batch ()) 3000. 21 0;
      spec "face-detect"
        (fun ~batch -> Ascend.Nn.Face_detect.build ~batch ())
        1500. 22 1;
    ]
  in
  let config policy =
    {
      (Fleet.default_config ~core:Config.tiny ~nodes:4) with
      Fleet.cores_per_node = 4;
      duration_s;
      policy;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let t =
    Table.create
      ~header:[ "policy"; "completed"; "goodput/s"; "p99 ms"; "page-ins";
                "mean util"; "wall s"; "req/s (wall)" ]
      ()
  in
  List.iter
    (fun (pname, policy) ->
      let r, wall_s =
        time (fun () ->
            match Fleet.run (config policy) specs with
            | Ok r -> r
            | Error e -> failwith e)
      in
      let summaries = r.Fleet.fleet_metrics.Metrics.summaries in
      let completed =
        List.fold_left (fun a s -> a + s.Metrics.completed) 0 summaries
      in
      let goodput =
        List.fold_left (fun a s -> a +. s.Metrics.goodput_per_s) 0. summaries
      in
      let p99 =
        List.fold_left (fun a s -> Float.max a s.Metrics.p99_ms) 0. summaries
      in
      let mean_util =
        let u = r.Fleet.fleet_metrics.Metrics.core_utilization in
        Array.fold_left ( +. ) 0. u /. float_of_int (max 1 (Array.length u))
      in
      Table.add_row t
        [
          pname;
          string_of_int completed;
          Table.cell_float ~decimals:0 goodput;
          Table.cell_float p99;
          string_of_int r.Fleet.total_page_ins;
          Printf.sprintf "%.0f%%" (100. *. mean_util);
          Table.cell_float ~decimals:3 wall_s;
          Table.cell_float ~decimals:0 (float_of_int completed /. wall_s);
        ];
      Bench_json.record_int (pname ^ "_completed") completed;
      Bench_json.record_float (pname ^ "_goodput_per_s") goodput;
      Bench_json.record_float (pname ^ "_cross_node_p99_ms") p99;
      Bench_json.record_int (pname ^ "_page_ins") r.Fleet.total_page_ins;
      Bench_json.record_float (pname ^ "_mean_utilization") mean_util;
      Bench_json.record_float (pname ^ "_requests_per_wall_s")
        (float_of_int completed /. wall_s);
      List.iter
        (fun nr ->
          let u = nr.Fleet.node_metrics.Metrics.core_utilization in
          Bench_json.record_float
            (Printf.sprintf "%s_node%d_utilization" pname nr.Fleet.node)
            (Array.fold_left ( +. ) 0. u
            /. float_of_int (max 1 (Array.length u))))
        r.Fleet.node_reports)
    Router.policies;
  Table.print ~align:Table.Left t;
  Format.printf
    "affinity avoids every page-in by construction; round-robin pays the \
     cold model's weight streaming on every non-home node — the routing \
     policy is a bandwidth decision, not just a load-balancing one@."

(* ------------------------------------------------------------------ *)
(* LLM decode serving (lib/decode: continuous vs static batching)      *)

let decode_bench () =
  section_header "decode"
    "LLM decode serving: continuous vs static batching under prefill \
     pressure (tiny decoder on the Lite core, phase-aware exact costing)";
  let module Engine = Ascend.Decode.Engine in
  let module Request = Ascend.Decode.Request in
  let module Metrics = Ascend.Decode.Metrics in
  let module Load_gen = Ascend.Serving.Load_gen in
  let requests =
    Request.of_load_gen
      ~gen:(Load_gen.create ~rate_per_s:2000. ~duration_s:0.05 ~seed:3 ())
      ~prompt:(Load_gen.Geometric { mean = 12.; max_len = 24 })
      ~output:(Load_gen.Geometric { mean = 8.; max_len = 16 })
  in
  let run mode =
    let config =
      { (Engine.default_config ~core:Config.lite ()) with Engine.mode }
    in
    let t0 = Unix.gettimeofday () in
    match Engine.run config requests with
    | Error e -> failwith e
    | Ok r -> (r, Unix.gettimeofday () -. t0)
  in
  let continuous, wall_c = run Engine.Continuous in
  let static, wall_s = run Engine.Static in
  let t =
    Table.create
      ~header:[ "mode"; "completed"; "tokens/s"; "ttft p99 ms"; "itl p99 ms";
                "mean batch"; "wall s" ]
      ()
  in
  List.iter
    (fun (name, (r : Engine.result), wall) ->
      let m = r.Engine.metrics in
      Table.add_row t
        [
          name;
          string_of_int m.Metrics.completed;
          Table.cell_float ~decimals:0 m.Metrics.tokens_per_s;
          Table.cell_float m.Metrics.ttft_p99_ms;
          Table.cell_float m.Metrics.itl_p99_ms;
          Table.cell_float m.Metrics.mean_decode_batch;
          Table.cell_float ~decimals:3 wall;
        ];
      Bench_json.record_float (name ^ "_tokens_per_s") m.Metrics.tokens_per_s;
      Bench_json.record_float (name ^ "_ttft_p99_ms") m.Metrics.ttft_p99_ms;
      Bench_json.record_float (name ^ "_itl_p99_ms") m.Metrics.itl_p99_ms;
      Bench_json.record_float (name ^ "_mean_decode_batch")
        m.Metrics.mean_decode_batch)
    [ ("continuous", continuous, wall_c); ("static", static, wall_s) ];
  Table.print ~align:Table.Left t;
  let speedup = Engine.speedup ~continuous ~static in
  Bench_json.record_float "continuous_over_static_speedup" speedup;
  Format.printf
    "continuous batching refills decode slots the moment a sequence \
     retires (%.2fx the static lockstep goodput here) and prefills new \
     arrivals between decode steps instead of waiting for a full group@."
    speedup

let compression () =
  section_header "compression"
    "instruction compression on the Lite core (§3.2: reduce NoC fetch \
     bandwidth)";
  let programs =
    Ascend.Compiler.Codegen.graph_programs Config.lite
      (Ascend.Nn.Mobilenet.v2 ())
  in
  let all_instrs =
    List.concat_map
      (fun (_, p) -> p.Ascend.Isa.Program.instructions)
      programs
  in
  let ratio = Ascend.Isa.Encoding.compression_ratio all_instrs in
  let raw_bw =
    Ascend.Isa.Encoding.fetch_bandwidth_bytes_per_cycle
      ~instructions_per_cycle:1. ~compressed:false all_instrs
  in
  let packed_bw =
    Ascend.Isa.Encoding.fetch_bandwidth_bytes_per_cycle
      ~instructions_per_cycle:1. ~compressed:true all_instrs
  in
  Format.printf
    "MobileNetV2 on Ascend-Lite: %d instructions, %d B raw@."
    (List.length all_instrs)
    (Bytes.length (Ascend.Isa.Encoding.encode all_instrs));
  Format.printf
    "compression ratio %.3f (%.1fx); instruction-fetch bandwidth %.1f -> \
     %.1f B/cycle at 1 instr/cycle dispatch@."
    ratio (1. /. ratio) raw_bw packed_bw

(* ------------------------------------------------------------------ *)
(* Ablations of the DESIGN.md design choices                           *)

let ablations () =
  section_header "ablations"
    "design-choice ablations: double buffering, auto-tiling, fp32 cube";
  let g18 = Ascend.Nn.Resnet.v1_5_18 () in
  let cyc options g config =
    match Engine.run_inference ~options config g with
    | Ok r -> r.Engine.total_cycles
    | Error e -> failwith e
  in
  (* 1. double buffering *)
  let with_db = cyc Ascend.Compiler.Codegen.default_options g18 Config.max in
  let without_db =
    cyc
      { Ascend.Compiler.Codegen.default_options with double_buffer = false }
      g18 Config.max
  in
  Format.printf
    "double buffering (ResNet-18, Max): %d -> %d cycles without (x%.2f \
     slower)@."
    with_db without_db
    (float_of_int without_db /. float_of_int with_db);
  (* 2. auto-tiling vs naive single-cube tiles (simulated on the small
     gesture net; the instruction-count blowup makes naive tiling
     impractical on large networks, which is itself the result) *)
  let gg = Ascend.Nn.Gesture.build () in
  let auto = cyc Ascend.Compiler.Codegen.default_options gg Config.tiny in
  let naive =
    cyc
      { Ascend.Compiler.Codegen.default_options with naive_tiling = true }
      gg Config.tiny
  in
  Format.printf
    "auto-tiling (GestureNet, Tiny): %d cycles vs %d naive single-tile \
     (x%.1f slower without the search)@."
    auto naive
    (float_of_int naive /. float_of_int auto);
  let est =
    (Ascend.Compiler.Tiling.choose Config.max ~precision:Precision.Fp16
       ~m:4096 ~k:4096 ~n:4096 ())
      .Ascend.Compiler.Tiling.estimated_cycles
  in
  let est_naive =
    (Ascend.Compiler.Tiling.naive Config.max ~precision:Precision.Fp16
       ~m:4096 ~k:4096 ~n:4096 ())
      .Ascend.Compiler.Tiling.estimated_cycles
  in
  Format.printf
    "analytical 4096^3 GEMM estimate: %d vs %d cycles (x%.1f)@." est est_naive
    (float_of_int est_naive /. float_of_int est);
  (* 3. Figure 3's decoupled flags vs coarse barrier-only sync *)
  let flags = cyc Ascend.Compiler.Codegen.default_options g18 Config.max in
  let barriers =
    cyc
      { Ascend.Compiler.Codegen.default_options with
        sync_mode = Ascend.Compiler.Codegen.Coarse_barriers }
      g18 Config.max
  in
  Format.printf
    "flag synchronisation (ResNet-18, Max): %d cycles vs %d with \
     barrier-only sync (x%.2f — what Figure 3's decoupled pipes buy)@."
    flags barriers
    (float_of_int barriers /. float_of_int flags);
  (* 4. §7.2 future work: fp32 in the cube *)
  let g18_fp32 =
    Ascend.Nn.Resnet.v1_5_18 ~dtype:Precision.Fp32 ()
  in
  let fp16 = cyc Ascend.Compiler.Codegen.default_options g18 Config.max in
  let fp32 =
    cyc Ascend.Compiler.Codegen.default_options g18_fp32 Config.hpc_prototype
  in
  Format.printf
    "fp32-cube HPC prototype (ResNet-18): fp32 %d cycles vs fp16 %d \
     (x%.2f — half-rate cube plus doubled traffic)@."
    fp32 fp16
    (float_of_int fp32 /. float_of_int fp16)

(* ------------------------------------------------------------------ *)
(* §3.3: Vector Core SLAM extensions                                   *)

let slam () =
  section_header "slam"
    "Vector Core (§3.3): SLAM front end on the cube-less core";
  let open Ascend.Vector_core in
  let p =
    Slam_pipeline.profile_frame ~width:640 ~height:480 ~features:4000
      ~landmarks:2000 ()
  in
  Format.printf "%a@." Slam_pipeline.pp p;
  let small =
    Slam_pipeline.profile_frame ~width:320 ~height:240 ~features:2000
      ~landmarks:500 ()
  in
  Format.printf "QVGA front end: %a@." Slam_pipeline.pp small;
  Format.printf
    "primitive cycle models — 1k quaternion muls: %d cyc; sort 4096 keys: \
     %d cyc; 8x6 LP (3 pivots): %d cyc@."
    (Quaternion.batched_mul_cycles Slam_pipeline.vector_core_config ~count:1000)
    (Sort.sort_cycles Slam_pipeline.vector_core_config ~n:4096)
    (Simplex.tableau_cycles Slam_pipeline.vector_core_config ~constraints:8
       ~variables:6 ~pivots:3)

(* ------------------------------------------------------------------ *)
(* §5.1/§5.2: graph engine streams                                     *)

let streams () =
  section_header "streams"
    "graph engine (§5.1): stream decomposition and block-level scheduling";
  let show name graph config =
    match Ascend.Compiler.Graph_engine.plan config graph with
    | Error e -> Format.printf "%s: %s@." name e
    | Ok p ->
      let serial = Ascend.Compiler.Graph_engine.serial_cycles p in
      let m2 = Ascend.Compiler.Graph_engine.makespan p ~cores:2 in
      let m4 = Ascend.Compiler.Graph_engine.makespan p ~cores:4 in
      Format.printf
        "%-16s %d streams, %d tasks; serial %d cyc; 2 cores %d (x%.2f); 4 \
         cores %d (x%.2f)@."
        name p.Ascend.Compiler.Graph_engine.stream_count
        (List.length p.Ascend.Compiler.Graph_engine.tasks)
        serial m2
        (float_of_int serial /. float_of_int m2)
        m4
        (float_of_int serial /. float_of_int m4)
  in
  show "siamese" (Ascend.Nn.Siamese.build ()) Config.standard;
  show "resnet18" (Ascend.Nn.Resnet.v1_5_18 ()) Config.standard;
  show "wide-deep" (Ascend.Nn.Wide_deep.default ~batch:128 ()) Config.max;
  Format.printf
    "a pure chain gains nothing from extra cores; the Siamese tracker's \
     exemplar tower hides entirely under its search tower@."

(* ------------------------------------------------------------------ *)
(* Execution service: serial vs parallel vs warm-cache compile         *)

let compile () =
  section_header "compile"
    "execution service: serial vs parallel vs warm-cache compile+simulate \
     over the zoo x Table-5 cores";
  let module Service = Ascend.Exec.Service in
  let module Cache = Ascend.Exec.Cache in
  let workload =
    List.concat_map
      (fun (name, g) ->
        List.filter_map
          (fun config ->
            if Config.supports config (Ascend.Nn.Graph.dtype g) then
              Some (name, config, g)
            else None)
          Config.all)
      [
        ("gesture", Ascend.Nn.Gesture.build ());
        ("resnet18", Ascend.Nn.Resnet.v1_5_18 ());
        ("resnet50", Ascend.Nn.Resnet.v1_5 ());
        ("mobilenet", Ascend.Nn.Mobilenet.v2 ());
        ("bert-base-s32", Ascend.Nn.Bert.base ~seq_len:32 ());
      ]
  in
  let programs =
    List.fold_left
      (fun acc (_, _, g) -> acc + List.length (Fusion.partition g))
      0 workload
  in
  let run_all () =
    List.map
      (fun (name, config, g) ->
        match Engine.run_inference config g with
        | Ok r -> (name, config.Config.name, r.Engine.total_cycles)
        | Error e -> failwith e)
      workload
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* serial baseline: the engine's built-in path, no pool, no cache *)
  Service.uninstall ();
  let serial_results, serial_s = time run_all in
  (* parallel cold pass: fresh service, every group is a miss *)
  let jobs = max 4 (Ascend.Util.Domain_pool.default_jobs ()) in
  let svc = Service.create ~jobs () in
  Service.install svc;
  let parallel_results, parallel_s = time run_all in
  (* warm pass: same service, every group should hit the cache *)
  let warm_before = Service.stats svc in
  let warm_results, warm_s = time run_all in
  let warm_after = Service.stats svc in
  Service.shutdown svc;
  Service.install_default ();
  let identical =
    serial_results = parallel_results && serial_results = warm_results
  in
  let warm_hits = warm_after.Cache.hits - warm_before.Cache.hits in
  let warm_misses = warm_after.Cache.misses - warm_before.Cache.misses in
  let warm_hit_rate =
    float_of_int warm_hits /. float_of_int (max 1 (warm_hits + warm_misses))
  in
  let t =
    Table.create
      ~header:[ "pass"; "wall s"; "speedup vs serial"; "programs/s" ]
      ()
  in
  List.iter
    (fun (name, wall) ->
      Table.add_row t
        [
          name;
          Table.cell_float ~decimals:3 wall;
          Table.cell_ratio (serial_s /. wall);
          Table.cell_float ~decimals:0 (float_of_int programs /. wall);
        ])
    [
      ("serial (no service)", serial_s);
      (Printf.sprintf "parallel cold (%d domains)" jobs, parallel_s);
      ("warm cache", warm_s);
    ];
  Table.print ~align:Table.Left t;
  Format.printf
    "%d model/core pairs, %d programs; results byte-identical across passes: \
     %s; warm pass: %d hits / %d misses (%.1f%% hit rate)@."
    (List.length workload) programs
    (if identical then "yes" else "NO")
    warm_hits warm_misses (100. *. warm_hit_rate);
  Bench_json.record_int "model_core_pairs" (List.length workload);
  Bench_json.record_int "programs" programs;
  Bench_json.record_int "jobs" jobs;
  Bench_json.record_float "serial_s" serial_s;
  Bench_json.record_float "parallel_s" parallel_s;
  Bench_json.record_float "warm_s" warm_s;
  Bench_json.record_float "speedup" (serial_s /. parallel_s);
  Bench_json.record_float "warm_speedup" (serial_s /. warm_s);
  Bench_json.record_float "warm_hit_rate" warm_hit_rate;
  Bench_json.record_float "programs_per_s"
    (float_of_int programs /. parallel_s);
  Bench_json.record_int "identical" (if identical then 1 else 0)

(* ------------------------------------------------------------------ *)
(* lib/obs: tracing overhead                                           *)

let trace () =
  section_header "trace"
    "observability overhead: per-instruction simulation with the collector \
     absent vs installed (link-time hook: absent must cost nothing)";
  let module Obs = Ascend.Obs in
  let programs =
    Ascend.Compiler.Codegen.graph_programs Config.max (Ascend.Nn.Mobilenet.v2 ())
  in
  let run () =
    List.fold_left
      (fun acc (_, p) ->
        match Simulator.run Config.max p with
        | Ok r -> acc + r.Simulator.total_cycles
        | Error e -> failwith e)
      0 programs
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Obs.Hook.uninstall ();
  ignore (run ());
  (* warm *)
  let cycles_off, off_s = time run in
  let collector = Obs.Collector.create ~capacity:2_000_000 () in
  let cycles_on, on_s =
    time (fun () -> Obs.Hook.with_collector collector run)
  in
  let events = Obs.Collector.length collector in
  let dropped = Obs.Collector.dropped collector in
  let ratio = on_s /. off_s in
  let t = Table.create ~header:[ "pass"; "wall s"; "events collected" ] () in
  Table.add_row t [ "collector absent"; Table.cell_float ~decimals:3 off_s; "0" ];
  Table.add_row t
    [ "collector installed"; Table.cell_float ~decimals:3 on_s;
      string_of_int events ];
  Table.print ~align:Table.Left t;
  Format.printf
    "%d programs, %d events (%d dropped); instrumented/plain wall ratio \
     %.2fx; simulated cycles identical across passes: %s@."
    (List.length programs) events dropped ratio
    (if cycles_off = cycles_on then "yes" else "NO");
  Bench_json.record_int "programs" (List.length programs);
  Bench_json.record_int "events" events;
  Bench_json.record_int "dropped" dropped;
  Bench_json.record_int "total_cycles" cycles_on;
  Bench_json.record_float "off_s" off_s;
  Bench_json.record_float "on_s" on_s;
  Bench_json.record_float "overhead_ratio" ratio;
  Bench_json.record_int "cycles_identical" (if cycles_off = cycles_on then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Bechamel: simulator micro-benchmarks                                *)

let bechamel () =
  section_header "bechamel"
    "simulator throughput micro-benchmarks (wall time of this library itself)";
  let open Bechamel in
  let gesture = Ascend.Nn.Gesture.build () in
  let mobilenet = Ascend.Nn.Mobilenet.v2 () in
  let tests =
    Test.make_grouped ~name:"ascend" ~fmt:"%s %s"
      [
        Test.make ~name:"compile+simulate gesture (Tiny)"
          (Staged.stage (fun () -> ok (Engine.run_inference Config.tiny gesture)));
        Test.make ~name:"compile+simulate mobilenet (Max)"
          (Staged.stage (fun () -> ok (Engine.run_inference Config.max mobilenet)));
        Test.make ~name:"auto-tiling 4096^3"
          (Staged.stage (fun () ->
               Ascend.Compiler.Tiling.choose Config.max
                 ~precision:Precision.Fp16 ~m:4096 ~k:4096 ~n:4096 ()));
        Test.make ~name:"deflection mesh 500 packets"
          (Staged.stage (fun () ->
               Ascend.Noc.Deflection.uniform_random_experiment ~rows:6 ~cols:4
                 ~packets:500 ~seed:7));
        Test.make ~name:"fp16 round-trip"
          (Staged.stage (fun () -> Ascend.Util.Fp16.round_float 3.14159));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t = Table.create ~header:[ "micro-benchmark"; "time/run" ] () in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (v :: _) -> v
        | _ -> nan
      in
      Table.add_row t
        [ name; Format.asprintf "%a" Ascend.Util.Units.pp_seconds (ns *. 1e-9) ])
    results;
  Table.print ~align:Table.Left t

(* ------------------------------------------------------------------ *)
(* Verification throughput: static lint, whole-SoC analysis and the    *)
(* shadow-state sanitizer, serial vs service fan-out                   *)

let lint_bench () =
  section_header "lint"
    "static lint + whole-SoC analysis + shadow-state sanitizer throughput, \
     serial vs execution-service fan-out";
  let module Service = Ascend.Exec.Service in
  let module Verify = Ascend.Verify in
  let module Sanitizer = Ascend.Core_sim.Sanitizer in
  let module Soc_schedule = Ascend.Compiler.Soc_schedule in
  let module Codegen = Ascend.Compiler.Codegen in
  let workload =
    List.concat_map
      (fun (name, g) ->
        List.filter_map
          (fun config ->
            if Config.supports config (Ascend.Nn.Graph.dtype g) then
              Some (name, config, g)
            else None)
          Config.all)
      [
        ("gesture", Ascend.Nn.Gesture.build ());
        ("resnet18", Ascend.Nn.Resnet.v1_5_18 ());
        ("resnet50", Ascend.Nn.Resnet.v1_5 ());
        ("mobilenet", Ascend.Nn.Mobilenet.v2 ());
        ("bert-base-s32", Ascend.Nn.Bert.base ~seq_len:32 ());
      ]
  in
  let compiled =
    List.concat_map
      (fun (_, config, g) ->
        List.map (fun (_, p) -> (config, p)) (Codegen.graph_programs config g))
      workload
  in
  let n_programs = List.length compiled in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let lint_counts items =
    List.map (fun (config, p) -> List.length (Verify.analyze config p)) items
  in
  let serial_counts, serial_s = time (fun () -> lint_counts compiled) in
  let jobs = max 4 (Ascend.Util.Domain_pool.default_jobs ()) in
  let svc = Service.create ~jobs () in
  let parallel_counts, parallel_s =
    time (fun () ->
        Service.map svc
          (fun (config, p) -> List.length (Verify.analyze config p))
          compiled)
  in
  Service.shutdown svc;
  let findings = List.fold_left ( + ) 0 serial_counts in
  let identical = serial_counts = parallel_counts in
  let san_instrs, sanitize_s =
    time (fun () ->
        List.fold_left
          (fun acc (config, p) ->
            acc + (Sanitizer.run config p).Sanitizer.instructions_executed)
          0 compiled)
  in
  let soc_findings, soc_s =
    time (fun () ->
        List.fold_left
          (fun acc (_, config, g) ->
            let plan, _ = Soc_schedule.build config g in
            acc + List.length (Ascend.Verify.Soc.analyze plan))
          0 workload)
  in
  (* cluster collective-schedule verification: expand the lint
     --cluster sweep's schedules and time Verify.Cluster.analyze *)
  let cluster_schedules =
    let module Sched = Ascend.Cluster.Collective_schedule in
    let module Fat_tree = Ascend.Noc.Fat_tree in
    let nic = Fat_tree.server_bandwidth Fat_tree.ascend_cluster in
    let server = Ascend.Cluster.Server.ascend910_server in
    let bytes_axis = [ 1e6; 1e8 ] in
    List.concat_map
      (fun nodes ->
        List.concat_map
          (fun bytes ->
            [ Sched.ring ~bytes ~nodes ~bandwidth:nic ();
              Sched.halving_doubling ~bytes ~nodes ~bandwidth:nic () ])
          bytes_axis)
      [ 2; 3; 4; 5; 8; 16; 17 ]
    @ List.map (fun bytes -> Sched.intra_server ~server ~bytes) bytes_axis
    @ List.concat_map
        (fun servers ->
          let network = Fat_tree.create ~servers () in
          List.map
            (fun bytes -> Sched.hierarchical ~server ~network ~servers ~bytes)
            bytes_axis)
        [ 2; 4; 8; 16 ]
  in
  let n_schedules = List.length cluster_schedules in
  let cluster_findings, cluster_s =
    time (fun () ->
        List.fold_left
          (fun acc s ->
            acc + List.length (Ascend.Verify.Cluster.analyze s))
          0 cluster_schedules)
  in
  let rate denom_s = float_of_int n_programs /. denom_s in
  let t =
    Table.create ~header:[ "pass"; "items"; "wall s"; "items/s" ] ()
  in
  Table.add_rows t
    [
      [ "lint serial"; string_of_int n_programs;
        Table.cell_float ~decimals:3 serial_s;
        Table.cell_float ~decimals:0 (rate serial_s) ];
      [ Printf.sprintf "lint --jobs %d" jobs; string_of_int n_programs;
        Table.cell_float ~decimals:3 parallel_s;
        Table.cell_float ~decimals:0 (rate parallel_s) ];
      [ "sanitize serial"; string_of_int n_programs;
        Table.cell_float ~decimals:3 sanitize_s;
        Table.cell_float ~decimals:0 (rate sanitize_s) ];
      [ "soc analyze"; string_of_int (List.length workload);
        Table.cell_float ~decimals:3 soc_s;
        Table.cell_float ~decimals:0
          (float_of_int (List.length workload) /. soc_s) ];
      [ "cluster analyze"; string_of_int n_schedules;
        Table.cell_float ~decimals:3 cluster_s;
        Table.cell_float ~decimals:0 (float_of_int n_schedules /. cluster_s) ];
    ];
  Table.print t;
  Format.printf
    "%d program(s), %d static finding(s), %d soc finding(s), %d cluster \
     finding(s) over %d schedule(s), %d sanitizer instruction(s) replayed; \
     parallel output identical: %b@."
    n_programs findings soc_findings cluster_findings n_schedules san_instrs
    identical;
  Bench_json.record_int "programs" n_programs;
  Bench_json.record_int "static_findings" findings;
  Bench_json.record_int "soc_findings" soc_findings;
  Bench_json.record_int "sanitizer_instructions" san_instrs;
  Bench_json.record_int "jobs" jobs;
  Bench_json.record_float "lint_serial_s" serial_s;
  Bench_json.record_float "lint_parallel_s" parallel_s;
  Bench_json.record_float "lint_serial_programs_per_s" (rate serial_s);
  Bench_json.record_float "lint_parallel_programs_per_s" (rate parallel_s);
  Bench_json.record_float "sanitize_s" sanitize_s;
  Bench_json.record_float "sanitize_programs_per_s" (rate sanitize_s);
  Bench_json.record_float "soc_analyze_s" soc_s;
  Bench_json.record_int "cluster_schedules" n_schedules;
  Bench_json.record_int "cluster_findings" cluster_findings;
  Bench_json.record_float "cluster_analyze_s" cluster_s;
  Bench_json.record_float "cluster_schedules_per_s"
    (float_of_int n_schedules /. cluster_s);
  Bench_json.record "parallel_identical" (Ascend.Util.Json.Bool identical)

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("lite_rebalance", lite_rebalance);
    ("noc", noc);
    ("table7", table7);
    ("table8", table8);
    ("table9", table9);
    ("table10", table10);
    ("mobile_util", mobile_util);
    ("qos", qos);
    ("llc_scaling", llc_scaling);
    ("cluster", cluster);
    ("mlperf", mlperf);
    ("precision", precision);
    ("related_work", related_work);
    ("edge", edge);
    ("serving", serving);
    ("fleet", fleet);
    ("decode", decode_bench);
    ("compression", compression);
    ("ablations", ablations);
    ("slam", slam);
    ("streams", streams);
    ("compile", compile);
    ("lint", lint_bench);
    ("trace", trace);
    ("bechamel", bechamel);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        f ();
        let wall_s = Unix.gettimeofday () -. t0 in
        Bench_json.write ~section:name ~wall_s;
        Format.printf "[%s completed in %.1f s -> BENCH_%s.json]@." name
          wall_s name
      | None ->
        Format.printf "unknown section %s (available: %s)@." name
          (String.concat ", " (List.map fst sections)))
    requested
