.PHONY: all build test lint sanitize differential bench trace fleet calibrate \
	check clean

all: build

build:
	dune build @all

test:
	dune runtest

# static happens-before / hazard lint of the whole model zoo across all
# core versions and codegen option combinations (non-zero exit on findings)
lint:
	dune exec bin/ascend_cli.exe -- lint --all

# replay the whole zoo through the shadow-state sanitizer (non-zero exit
# on errors; --strict would fail on warnings too)
sanitize:
	dune exec bin/ascend_cli.exe -- sanitize --all

# differential gate: the static whole-SoC lint and the dynamic sanitizer
# must agree byte-for-byte on the zoo-wide findings document
differential:
	dune exec bin/ascend_cli.exe -- lint --all --soc --json lint_soc.json
	dune exec bin/ascend_cli.exe -- sanitize --all --json sanitize.json
	cmp lint_soc.json sanitize.json
	@echo "differential gate: lint --soc and sanitize agree"

bench:
	dune exec bench/main.exe

# capture a whole-model Chrome trace (open trace.json in Perfetto or
# chrome://tracing); deterministic to the byte across runs
trace:
	dune exec bin/ascend_cli.exe -- trace resnet18 --core standard -o trace.json

# simulate the multi-node inference fleet (deterministic to the byte
# across runs and ASCEND_JOBS; see `ascend_cli fleet --help` for the
# routing / replication / colocation knobs)
fleet:
	dune exec bin/ascend_cli.exe -- fleet gesture,face-detect --core tiny \
	  --nodes 4 --replicas 0,1 --train-nodes 2

# score the batch-latency surrogate against the exact cycle-level oracle
# for every model/core combination in the zoo (non-zero exit when any
# model's max cycle error exceeds the 5% budget)
calibrate:
	dune exec bin/ascend_cli.exe -- calibrate --all --json calibrate.json

check: build test lint sanitize

clean:
	dune clean
