.PHONY: all build test lint lint-cluster sanitize differential bench trace \
	fleet decode calibrate calibrate-decode check clean

all: build

build:
	dune build @all

test:
	dune runtest

# static happens-before / hazard lint of the whole model zoo across all
# core versions and codegen option combinations (non-zero exit on findings)
lint:
	dune exec bin/ascend_cli.exe -- lint --all

# static cluster-collective verification: expand ring / halving-doubling /
# intra-server / hierarchical all-reduce into per-chip step schedules,
# check matching / deadlock / link overcommit / completeness, and hold
# the schedule-derived time within 1e-6 of the closed-form cost model
lint-cluster:
	dune exec bin/ascend_cli.exe -- lint --cluster

# replay the whole zoo through the shadow-state sanitizer (non-zero exit
# on errors; --strict would fail on warnings too)
sanitize:
	dune exec bin/ascend_cli.exe -- sanitize --all

# differential gates: (a) the static whole-SoC lint and the dynamic
# sanitizer agree byte-for-byte on the zoo-wide findings document;
# (b) closed-form and schedule-derived collective times agree to three
# significant digits; (c) statically predicted page-in counts equal
# what the fleet run observes
differential:
	dune exec bin/ascend_cli.exe -- lint --all --soc --json lint_soc.json
	dune exec bin/ascend_cli.exe -- sanitize --all --json sanitize.json
	cmp lint_soc.json sanitize.json
	@echo "differential gate: lint --soc and sanitize agree"
	dune exec bin/ascend_cli.exe -- lint --cluster --times closed \
	  --json times_closed.json
	dune exec bin/ascend_cli.exe -- lint --cluster --times schedule \
	  --json times_schedule.json
	cmp times_closed.json times_schedule.json
	@echo "differential gate: closed-form and schedule-derived times agree"
	dune exec bin/ascend_cli.exe -- lint --placement gesture,face-detect \
	  --replicas 0,1 --nodes 3 --policy round-robin \
	  --pagein-json pagein_predicted.json
	dune exec bin/ascend_cli.exe -- fleet gesture,face-detect --core tiny \
	  --nodes 3 --policy round-robin --replicas 0,1 --rate 300 \
	  --duration 0.2 --pagein-json pagein_observed.json
	cmp pagein_predicted.json pagein_observed.json
	@echo "differential gate: predicted and observed page-ins agree"

bench:
	dune exec bench/main.exe

# capture a whole-model Chrome trace (open trace.json in Perfetto or
# chrome://tracing); deterministic to the byte across runs
trace:
	dune exec bin/ascend_cli.exe -- trace resnet18 --core standard -o trace.json

# simulate the multi-node inference fleet (deterministic to the byte
# across runs and ASCEND_JOBS; see `ascend_cli fleet --help` for the
# routing / replication / colocation knobs)
fleet:
	dune exec bin/ascend_cli.exe -- fleet gesture,face-detect --core tiny \
	  --nodes 4 --replicas 0,1 --train-nodes 2

# score the batch-latency surrogate against the exact cycle-level oracle
# for every model/core combination in the zoo (non-zero exit when any
# model's max cycle error exceeds the 5% budget)
calibrate:
	dune exec bin/ascend_cli.exe -- calibrate --all --json calibrate.json

# score the 2-D (batch x cache-length) decode-step surrogate against the
# exact oracle on every fp16-capable core (non-zero exit past the 5% budget)
calibrate-decode:
	dune exec bin/ascend_cli.exe -- calibrate --decode \
	  --json calibrate_decode.json

# LLM decode serving under prefill pressure: continuous vs static
# batching on the same seeded trace, with the goodput speedup reported
# (deterministic to the byte across runs and ASCEND_JOBS)
decode:
	dune exec bin/ascend_cli.exe -- decode --core lite --rate 2000 \
	  --duration 0.05 --mode compare

check: build test lint lint-cluster sanitize decode calibrate-decode

clean:
	dune clean
