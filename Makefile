.PHONY: all build test lint bench check clean

all: build

build:
	dune build @all

test:
	dune runtest

# static happens-before / hazard lint of the whole model zoo across all
# core versions and codegen option combinations (non-zero exit on findings)
lint:
	dune exec bin/ascend_cli.exe -- lint --all

bench:
	dune exec bench/main.exe

check: build test lint

clean:
	dune clean
