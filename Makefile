.PHONY: all build test lint bench trace check clean

all: build

build:
	dune build @all

test:
	dune runtest

# static happens-before / hazard lint of the whole model zoo across all
# core versions and codegen option combinations (non-zero exit on findings)
lint:
	dune exec bin/ascend_cli.exe -- lint --all

bench:
	dune exec bench/main.exe

# capture a whole-model Chrome trace (open trace.json in Perfetto or
# chrome://tracing); deterministic to the byte across runs
trace:
	dune exec bin/ascend_cli.exe -- trace resnet18 --core standard -o trace.json

check: build test lint

clean:
	dune clean
