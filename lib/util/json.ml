type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (depth + 1) v)
        fields;
      newline ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true t);
      output_char oc '\n')

let pp ppf t = Format.pp_print_string ppf (to_string t)
