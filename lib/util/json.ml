type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (depth + 1) v)
        fields;
      newline ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true t);
      output_char oc '\n')

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the document subset this module
   prints (strict JSON; \uXXXX escapes decode to UTF-8, surrogate
   pairs included).  Numbers written without '.', 'e' or 'E' parse as
   [Int] when they fit, everything else as [Float]. *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "invalid \\u escape"
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let cp = hex4 () in
            if cp >= 0xd800 && cp <= 0xdbff then begin
              (* high surrogate: require the paired \uDC00-\uDFFF *)
              expect '\\';
              expect 'u';
              let lo = hex4 () in
              if lo < 0xdc00 || lo > 0xdfff then fail "unpaired surrogate";
              add_utf8 buf
                (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
            end
            else if cp >= 0xdc00 && cp <= 0xdfff then
              fail "unpaired surrogate"
            else add_utf8 buf cp
          | _ -> fail "invalid escape");
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let integral = ref true in
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      integral := false;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      integral := false;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
