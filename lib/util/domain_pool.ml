(* A fixed-size pool of worker domains with ordered fan-out: [map]
   distributes items over the workers but always reassembles results in
   submission order, so a parallel map is observationally identical to
   [List.map] (modulo wall-clock time).  There is no work stealing and
   no cross-item communication; each item is claimed whole by one
   worker.

   Workers are spawned lazily on the first parallel [map] and kept
   alive until [shutdown]; a pool with [jobs = 1] never spawns and runs
   everything inline. *)

type job = Job of (unit -> unit) | Quit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : job Queue.t;
  mutable workers : unit Domain.t list;
  mutable worker_ids : Domain.id list;
}

let default_jobs () = Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  {
    jobs;
    mutex = Mutex.create ();
    work_available = Condition.create ();
    batch_done = Condition.create ();
    queue = Queue.create ();
    workers = [];
    worker_ids = [];
  }

let jobs t = t.jobs

let worker_loop t () =
  let rec go () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue do
      Condition.wait t.work_available t.mutex
    done;
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    match job with
    | Quit -> ()
    | Job f ->
      f ();
      go ()
  in
  go ()

let ensure_workers t =
  if t.workers = [] then begin
    let ws = List.init t.jobs (fun _ -> Domain.spawn (worker_loop t)) in
    t.workers <- ws;
    t.worker_ids <- List.map Domain.get_id ws
  end

let in_worker t = List.mem (Domain.self ()) t.worker_ids

let map t f items =
  let n = List.length items in
  (* nested fan-out from inside a worker would deadlock on the shared
     queue; run inline instead (same results, already parallel above) *)
  if t.jobs <= 1 || n <= 1 || in_worker t then List.map f items
  else begin
    ensure_workers t;
    let arr = Array.make n None in
    let items = Array.of_list items in
    let remaining = ref n in
    Mutex.lock t.mutex;
    Array.iteri
      (fun i x ->
        Queue.add
          (Job
             (fun () ->
               let r = try Ok (f x) with e -> Error e in
               Mutex.lock t.mutex;
               arr.(i) <- Some r;
               decr remaining;
               if !remaining = 0 then Condition.broadcast t.batch_done;
               Mutex.unlock t.mutex))
          t.queue)
      items;
    Condition.broadcast t.work_available;
    while !remaining > 0 do
      Condition.wait t.batch_done t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         arr)
  end

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.mutex;
    List.iter (fun _ -> Queue.add Quit t.queue) t.workers;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.worker_ids <- []
  end
