(** Stable 64-bit content hashing (FNV-1a).

    Unlike [Hashtbl.hash], the digest is defined purely by the sequence
    of folded values — no dependence on heap representation, truncation
    depth or process state — so it can serve as a content address for
    compiled artifacts (see [Ascend_exec.Service]).  Collisions are
    possible in principle (64-bit digest) but never across the few
    thousand distinct keys a sweep produces in practice. *)

type t

val empty : t

val int : t -> int -> t
val int64 : t -> int64 -> t
val float : t -> float -> t
(** Folds the IEEE-754 bit pattern, so [0.] and [-0.] differ. *)

val bool : t -> bool -> t
val char : t -> char -> t

val string : t -> string -> t
(** Length-prefixed: [["ab"; "c"]] and [["a"; "bc"]] fold differently. *)

val option : (t -> 'a -> t) -> t -> 'a option -> t
val list : (t -> 'a -> t) -> t -> 'a list -> t
val pair : (t -> 'a -> t) -> (t -> 'b -> t) -> t -> 'a * 'b -> t

val to_hex : t -> string
(** 16 lowercase hex digits. *)
