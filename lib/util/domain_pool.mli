(** A fixed-size pool of worker domains with deterministic ordered
    fan-out.

    [map] runs items concurrently on the pool's workers but always
    returns results in submission order, so replacing [List.map] with
    [Domain_pool.map] never changes observable output — only wall-clock
    time.  There is no work stealing; each item runs whole on one
    worker, and the mapped function must be safe to run concurrently
    with itself (no shared mutable state).

    Workers are spawned lazily on the first parallel [map]; a pool with
    [jobs = 1] runs everything inline and never spawns a domain. *)

type t

val create : ?jobs:int -> unit -> t
(** Default [jobs]: {!default_jobs}.  Clamped to at least 1. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map.  An exception raised by [f] is re-raised in
    the caller once the batch has drained.  Calls from inside a pool
    worker (nested fan-out) run inline to avoid deadlock.  Not
    reentrant from multiple client domains at once. *)

val in_worker : t -> bool
(** Whether the calling domain is one of this pool's workers. *)

val shutdown : t -> unit
(** Join all workers.  The pool can be reused afterwards (workers
    respawn lazily). *)
