let sum = List.fold_left ( +. ) 0.
let sum_int = List.fold_left ( + ) 0

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let logs = List.map log xs in
    exp (mean logs)

let stddev = function
  | [] -> 0.
  | xs ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) ** 2.) xs in
    sqrt (mean sq)

(* Nearest-rank: the smallest order statistic with at least
   ceil(p/100 * n) of the sample at or below it; p = 0 is the
   minimum.  Always returns an element of the sample. *)
let percentile_of_sorted p arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Stats.percentile_of_sorted: empty array";
  if p < 0. || p > 100. then
    invalid_arg "Stats.percentile_of_sorted: p outside [0,100]";
  let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let sorted_of_list xs =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  arr

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    if p < 0. || p > 100. then
      invalid_arg "Stats.percentile: p outside [0,100]";
    percentile_of_sorted p (sorted_of_list xs)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left Float.min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left Float.max x xs

let ratio num den =
  if den = 0. then if num = 0. then 0. else infinity else num /. den

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let abs_pct_error ~reference ~estimate =
  100. *. ratio (Float.abs (estimate -. reference)) (Float.abs reference)

let abs_pct_errors pairs =
  List.map (fun (reference, estimate) -> abs_pct_error ~reference ~estimate)
    pairs

let mean_abs_pct_error pairs = mean (abs_pct_errors pairs)

let max_abs_pct_error = function
  | [] -> 0.
  | pairs -> maximum (abs_pct_errors pairs)

let divide_round_up a b =
  if b <= 0 then invalid_arg "Stats.divide_round_up: non-positive divisor";
  if a < 0 then invalid_arg "Stats.divide_round_up: negative dividend";
  (a + b - 1) / b

let round_up_to ~multiple n =
  if multiple <= 0 then invalid_arg "Stats.round_up_to: non-positive multiple";
  divide_round_up n multiple * multiple
