(** Minimal JSON document builder and printer.

    Used by the serving metrics exporter and the benchmark harness for
    machine-readable output ([BENCH_*.json]); no external dependency and
    a deterministic rendering: the same document always prints to the
    same bytes, so seeded simulations produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** Non-finite floats render as [null] (JSON has no inf/nan). *)
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Fields print in the given order — no reordering. *)

val escape : string -> string
(** JSON string-body escaping: quotes and backslashes get a backslash,
    [\n]/[\r]/[\t] their two-character forms, and every other byte
    below [0x20] a [\u00XX] escape.  Bytes [>= 0x20] pass through
    unchanged (the printer treats strings as opaque UTF-8). *)

val float_repr : float -> string
(** The deterministic float rendering used by {!to_string}: non-finite
    values print as [null] (JSON has no inf/nan); integral values of
    magnitude below 1e15 print with a forced [.1f] decimal (["2.0"],
    not ["2"], so a float never reparses as an [Int]); everything else
    prints as [%.9g]. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

val of_string : string -> (t, string) result
(** Strict JSON parser (recursive descent, no dependency) for
    round-trip checks on documents this module emits.  Numbers written
    without a fraction or exponent parse as [Int] when they fit in an
    OCaml [int], everything else as [Float]; [\uXXXX] escapes (and
    surrogate pairs) decode to UTF-8.  [of_string (to_string t)]
    recovers [t] exactly, except that non-finite floats were printed
    as [null] and reparse as [Null].  [Error] carries a message with a
    byte offset. *)

val write_file : string -> t -> unit
(** Pretty-printed, with a trailing newline. *)

val pp : Format.formatter -> t -> unit
(** Compact form. *)
