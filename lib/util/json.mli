(** Minimal JSON document builder and printer.

    Used by the serving metrics exporter and the benchmark harness for
    machine-readable output ([BENCH_*.json]); no external dependency and
    a deterministic rendering: the same document always prints to the
    same bytes, so seeded simulations produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** Non-finite floats render as [null] (JSON has no inf/nan). *)
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Fields print in the given order — no reordering. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

val write_file : string -> t -> unit
(** Pretty-printed, with a trailing newline. *)

val pp : Format.formatter -> t -> unit
(** Compact form. *)
