(* 64-bit FNV-1a, folded explicitly field by field so the digest is a
   stable function of the hashed values only: independent of heap layout,
   of Hashtbl seeding and of the process, and therefore usable as a
   content address that survives across runs. *)

type t = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let empty = fnv_offset

let byte (h : t) b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
  done;
  !h

let int h v = int64 h (Int64.of_int v)
let float h v = int64 h (Int64.bits_of_float v)
let bool h v = int h (if v then 1 else 0)
let char h c = byte h (Char.code c)

let string h s =
  (* length first, so ["ab";"c"] and ["a";"bc"] fold differently *)
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := char !h c) s;
  !h

let option f h = function
  | None -> int h 0
  | Some v -> f (int h 1) v

let list f h l = List.fold_left f (int h (List.length l)) l

let pair f g h (a, b) = g (f h a) b

let to_hex h = Printf.sprintf "%016Lx" h
