(** Small descriptive-statistics helpers used by the benchmark harness and
    simulator reports. *)

val mean : float list -> float
(** Mean of a non-empty list; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]: the {b nearest-rank}
    percentile, i.e. the smallest order statistic with at least
    [ceil (p/100 * n)] of the sample at or below it ([p = 0] is the
    minimum).  Always returns an element of [xs] — no interpolation —
    so a tail percentile of a latency list is an actually observed
    latency.  Singleton lists return their element for every [p];
    with two samples [a <= b], any [p <= 50] gives [a] and any
    [p > 50] gives [b].  Raises [Invalid_argument] on the empty list
    or [p] outside [0,100]. *)

val sorted_of_list : float list -> float array
(** The sample as a freshly sorted array — the one-time cost that
    {!percentile_of_sorted} amortises across repeated queries. *)

val percentile_of_sorted : float -> float array -> float
(** {!percentile} over an already-sorted array, so a caller taking
    several percentiles of the same sample (p50/p95/p99 of a latency
    trace) sorts once instead of once per query.  Raises
    [Invalid_argument] on the empty array or [p] outside [0,100]. *)

val minimum : float list -> float
val maximum : float list -> float

val ratio : float -> float -> float
(** [ratio num den] is [num /. den], infinity when [den = 0] and [num > 0],
    and 0 when both are 0. *)

val abs_pct_error : reference:float -> estimate:float -> float
(** [100 *. |estimate - reference| / |reference|].  A zero reference
    gives 0 when the estimate is also zero and infinity otherwise
    (the {!ratio} convention), so a surrogate that nails a degenerate
    point is not penalised and one that invents work is. *)

val mean_abs_pct_error : (float * float) list -> float
(** Mean of {!abs_pct_error} over [(reference, estimate)] pairs; 0 on
    the empty list. *)

val max_abs_pct_error : (float * float) list -> float
(** Maximum of {!abs_pct_error} over [(reference, estimate)] pairs; 0 on
    the empty list. *)

val clamp : lo:float -> hi:float -> float -> float

val sum : float list -> float
val sum_int : int list -> int

val divide_round_up : int -> int -> int
(** Ceiling division on non-negative integers.  Raises [Invalid_argument]
    on a non-positive divisor. *)

val round_up_to : multiple:int -> int -> int
(** Round up to the nearest positive multiple. *)
