(** Deterministic whole-model trace capture: compile every fused group
    of a graph and simulate it {e serially} with an {!Ascend_obs}
    collector installed.

    The serial path matters: this driver calls
    [Ascend_compiler.Engine.run_group] directly — never the pooled
    execution service — so the event stream is a pure function of
    (graph, core, options).  Combined with virtual-time stamping and
    the deterministic JSON printer, the emitted Chrome trace is
    byte-identical across repeated runs and across [ASCEND_JOBS] /
    [--jobs] settings (the worker pool is simply never involved). *)

type capture = {
  json : Ascend_util.Json.t;  (** Chrome trace-event document *)
  summary : Ascend_obs.Summary.t;
  events : int;
  dropped : int;  (** events refused by the bounded collector *)
  total_cycles : int;  (** summed over the simulated groups *)
}

val model :
  ?capacity:int ->
  ?options:Ascend_compiler.Codegen.options ->
  Ascend_arch.Config.t ->
  Ascend_nn.Graph.t ->
  (capture, string) result
(** [capacity] bounds the collector (default 262144 events).  [Error]
    when a group fails to compile or simulate on the given core. *)
