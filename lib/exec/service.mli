(** The compile/simulate execution service: a fixed-size domain pool
    with deterministic ordered fan-out plus a content-addressed cache of
    compiled programs and simulator reports.

    Every sweep in this repository — Engine inference/training runs, the
    serving cost oracle, the lint sweep, the bench sections — funnels
    through the same serial compile→simulate path; this service makes
    that path parallel and memoized while keeping every output
    byte-identical to a serial run:

    - {b ordered fan-out}: groups are compiled and simulated on the
      pool's worker domains, but results are always reassembled in
      submission order (no work stealing), so a parallel run is
      observationally identical to [List.map];
    - {b content addressing}: results are keyed by a stable 64-bit hash
      of the full core configuration, the fused group's workload summary
      and the codegen options ({!key}) — everything that determines the
      generated program and its report, and nothing else;
    - {b deterministic accounting}: cache probes, insertions and
      evictions all happen on the submitting domain in submission order,
      so hit/miss/eviction counters are reproducible run-to-run and
      independent of the worker count. *)

type t

val create : ?jobs:int -> ?capacity:int -> ?dir:string -> unit -> t
(** [jobs] defaults to {!Ascend_util.Domain_pool.default_jobs};
    [capacity] is the cache bound in entries (default 4096).  Worker
    domains spawn lazily on first use; [jobs = 1] never spawns and runs
    inline.  [dir] enables the cache's disk tier (see {!Cache}): compile
    results load from and — on {!flush}, {!shutdown} or process exit —
    persist to content-addressed files under it, so warm-cache results
    survive across runs. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered fan-out over the service's worker pool, for sweeps that are
    not group-shaped (the lint and sanitize combo sweeps).  Results
    return in submission order, so output stays byte-identical across
    [jobs]; does not touch the cache. *)

val stats : t -> Cache.stats
(** Hit/miss/eviction counters and current entry count; memory and disk
    hits are distinguished. *)

val clear : t -> unit

val flush : t -> unit
(** Persist entries added since the last flush to the disk tier; no-op
    without one. *)

val shutdown : t -> unit
(** Flushes the disk tier, then stops the worker domains. *)

val key :
  ?options:Ascend_compiler.Codegen.options -> Ascend_arch.Config.t ->
  Ascend_compiler.Fusion.t -> string
(** The content address of one compile+simulate job, as 16 hex digits.
    Covers every configuration, group and option field that shapes the
    generated program or its simulation; the group's [nodes] list is
    excluded (bookkeeping only). *)

val run_groups :
  t -> ?options:Ascend_compiler.Codegen.options -> Ascend_arch.Config.t ->
  Ascend_compiler.Fusion.t list ->
  (Ascend_compiler.Engine.layer_result, string) result list
(** Compile+simulate each group, in parallel for cache misses, returning
    results in submission order.  Duplicate keys within one call are
    computed once.  Cached results are returned with the caller's group
    record substituted back in. *)

val run_inference :
  t -> ?options:Ascend_compiler.Codegen.options -> Ascend_arch.Config.t ->
  Ascend_nn.Graph.t ->
  (Ascend_compiler.Engine.network_result, string) result
(** [Engine.run_inference] through this service's pool and cache. *)

val run_training :
  t -> ?options:Ascend_compiler.Codegen.options -> Ascend_arch.Config.t ->
  Ascend_nn.Graph.t ->
  (Ascend_compiler.Engine.network_result, string) result

val install : t -> unit
(** Point {!Ascend_compiler.Engine.group_runner} at this service: every
    [Engine.run_inference]/[run_training] caller — SoC models, cluster
    sweeps, bench sections, the CLI — transparently executes through the
    pool and cache. *)

val uninstall : unit -> unit
(** Restore the engine's built-in serial path. *)

val default : unit -> t
(** The process-wide service (created on first use).  Worker count
    honours the [ASCEND_JOBS] environment variable when set to a
    positive integer; setting [ASCEND_CACHE_DIR] to a non-empty path
    (e.g. [_build/ascend-cache]) enables the persistent disk tier for
    this service.  Persistence is opt-in because a warm disk changes
    hit/miss counters between otherwise identical runs. *)

val env_jobs : unit -> int option
(** [ASCEND_JOBS] when set to a positive integer; [None] otherwise. *)

val env_cache_dir : unit -> string option
(** [ASCEND_CACHE_DIR] when set and non-empty; [None] otherwise.  Shared
    by {!default} and by the serving cost oracle's private services, so
    one environment variable opts the whole process into disk-tier
    persistence. *)

val install_default : unit -> unit
(** [install (default ())] — done at link time by the [ascend] façade. *)
