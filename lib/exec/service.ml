module Config = Ascend_arch.Config
module Precision = Ascend_arch.Precision
module Hash = Ascend_util.Stable_hash
module Pool = Ascend_util.Domain_pool
module Engine = Ascend_compiler.Engine
module Codegen = Ascend_compiler.Codegen
module Fusion = Ascend_compiler.Fusion
module Workload = Ascend_nn.Workload

type t = {
  pool : Pool.t;
  cache : (Engine.layer_result, string) result Cache.t;
  (* obs lane state, keyed on the collector it was allocated from so a
     long-lived service re-registers itself with each new trace: the
     pid, plus one logical-cycle clock per worker lane (virtual time —
     job spans are stamped with cumulative simulated cycles, never
     wall clock, so traces stay byte-identical across [jobs]) *)
  mutable obs : (Ascend_obs.Collector.t * int * float array) option;
}

let create ?jobs ?capacity ?dir () =
  let t =
    {
      pool = Pool.create ?jobs ();
      cache = Cache.create ?capacity ?dir ();
      obs = None;
    }
  in
  (* persistent services flush on exit so plain CLI runs (which never
     call shutdown) still leave their compile results behind *)
  if dir <> None then at_exit (fun () -> Cache.flush t.cache);
  t

let jobs t = Pool.jobs t.pool

(* ordered fan-out over the service's worker pool, for sweeps that are
   not group-shaped (lint/sanitize combos): results come back in
   submission order, so output is byte-identical across [jobs] *)
let map t f xs = Pool.map t.pool f xs
let stats t = Cache.stats t.cache
let clear t = Cache.clear t.cache
let flush t = Cache.flush t.cache

let shutdown t =
  Cache.flush t.cache;
  Pool.shutdown t.pool

(* --- content addressing ------------------------------------------- *)

let hash_precision h p = Hash.string h (Precision.name p)

let hash_config h (c : Config.t) =
  let h = Hash.string h c.Config.name in
  let h = Hash.float h c.Config.frequency_ghz in
  let h = Hash.int h c.Config.cube.Config.m in
  let h = Hash.int h c.Config.cube.Config.k in
  let h = Hash.int h c.Config.cube.Config.n in
  let h = hash_precision h c.Config.native_precision in
  let h = Hash.list hash_precision h c.Config.supported_precisions in
  let h = Hash.int h c.Config.vector_width_bytes in
  let b = c.Config.buffers in
  let h = Hash.int h b.Config.l0a_bytes in
  let h = Hash.int h b.Config.l0b_bytes in
  let h = Hash.int h b.Config.l0c_bytes in
  let h = Hash.int h b.Config.l1_bytes in
  let h = Hash.int h b.Config.ub_bytes in
  let bw = c.Config.bandwidth in
  let h = Hash.int h bw.Config.l1_to_l0a in
  let h = Hash.int h bw.Config.l1_to_l0b in
  let h = Hash.int h bw.Config.ub_port in
  let h = Hash.option Hash.float h bw.Config.llc_gb_s in
  let h = Hash.int h c.Config.scalar_flops_per_cycle in
  Hash.bool h c.Config.duplex_ub_vector

let hash_options h (o : Codegen.options) =
  let h = Hash.option Hash.float h o.Codegen.weight_sparsity in
  let h = Hash.bool h o.Codegen.double_buffer in
  let h = Hash.bool h o.Codegen.naive_tiling in
  Hash.int h
    (match o.Codegen.sync_mode with
    | Codegen.Flags -> 0
    | Codegen.Coarse_barriers -> 1)

let hash_gemm h (g : Workload.gemm) =
  let h = Hash.int h g.Workload.count in
  let h = Hash.int h g.Workload.m in
  let h = Hash.int h g.Workload.k in
  Hash.int h g.Workload.n

(* [Fusion.t.nodes] is deliberately excluded: codegen consumes only the
   group's workload summary (gemms, vector elements, byte counts,
   precision, im2col expansion) plus the tag that names the program, so
   two groups equal on those fields compile to the same program.  The
   caller's own group record is substituted back into cached results,
   so even the bookkeeping [nodes] list stays the caller's. *)
let hash_group h (g : Fusion.t) =
  let h = Hash.string h g.Fusion.tag in
  let h =
    Hash.int h
      (match g.Fusion.kind with
      | Fusion.Cube_anchored -> 0
      | Fusion.Vector_only -> 1)
  in
  let h = Hash.list hash_gemm h g.Fusion.gemms in
  let h = Hash.float h g.Fusion.vector_elems in
  let h = Hash.int h g.Fusion.input_bytes in
  let h = Hash.int h g.Fusion.weight_bytes in
  let h = Hash.int h g.Fusion.output_bytes in
  let h = Hash.float h g.Fusion.img2col_expansion in
  hash_precision h g.Fusion.precision

let key ?(options = Codegen.default_options) config group =
  Hash.to_hex
    (hash_group (hash_options (hash_config Hash.empty config) options) group)

(* --- observability ------------------------------------------------- *)

module Obs = Ascend_obs

(* Lane context for the currently installed collector (if any),
   allocated on first use and re-allocated when a different collector
   is installed.  Emission happens on the submitting domain after
   [Pool.map] returns, in submission order — the pooled workers never
   touch the collector, so the event stream is independent of worker
   scheduling and of [jobs]. *)
let obs_ctx t =
  match Obs.Hook.installed () with
  | None -> None
  | Some c -> (
    match t.obs with
    | Some (c', pid, lanes) when c' == c -> Some (pid, lanes)
    | _ ->
      let pid = Obs.Collector.alloc_pid c ~name:"exec-service" in
      let jobs = Pool.jobs t.pool in
      for lane = 0 to jobs - 1 do
        Obs.Collector.name_thread c ~pid ~tid:lane
          (Printf.sprintf "lane%d" lane)
      done;
      let lanes = Array.make (max 1 jobs) 0. in
      t.obs <- Some (c, pid, lanes);
      Some (pid, lanes))

(* job spans (one per compiled+simulated group, laid out round-robin on
   the worker lanes) plus cache hit/miss/eviction counters *)
let obs_record_batch t to_compute computed =
  match obs_ctx t with
  | None -> ()
  | Some (pid, lanes) ->
    List.iteri
      (fun slot ((_, (g : Fusion.t)), v) ->
        let lane = slot mod Array.length lanes in
        let dur =
          match v with
          | Ok (lr : Engine.layer_result) ->
            float_of_int
              lr.Engine.report.Ascend_core_sim.Simulator.total_cycles
          | Error _ -> 1.
        in
        Obs.Hook.span
          ~args:[ ("slot", Obs.Event.Int slot) ]
          ~cat:"exec" ~name:g.Fusion.tag ~pid ~tid:lane ~ts:lanes.(lane)
          ~dur ();
        lanes.(lane) <- lanes.(lane) +. dur)
      (List.combine to_compute computed);
    let s = Cache.stats t.cache in
    let now = Array.fold_left Float.max 0. lanes in
    let emit name value =
      Obs.Hook.counter ~cat:"exec" ~name ~pid ~tid:0 ~ts:now
        ~value:(float_of_int value) ()
    in
    emit "cache_hits" s.Cache.hits;
    emit "cache_misses" s.Cache.misses;
    emit "cache_evictions" s.Cache.evictions;
    emit "cache_entries" s.Cache.entries;
    if Cache.dir t.cache <> None then emit "cache_disk_hits" s.Cache.disk_hits

(* --- execution ----------------------------------------------------- *)

let subst_group g = function
  | Ok lr -> Ok { lr with Engine.group = g }
  | Error _ as e -> e

(* Determinism argument (DESIGN.md §8): cache probes and insertions all
   happen on the submitting domain in submission order; the pool only
   computes the distinct missing keys and reassembles their results in
   first-miss order.  Hence outputs, cache contents, counters and
   eviction order are all independent of worker scheduling and of
   [jobs]. *)
let run_groups t ?options config groups =
  let keys = List.map (fun g -> key ?options config g) groups in
  let pending = Hashtbl.create 16 in
  let rev_to_compute = ref [] in
  let n_compute = ref 0 in
  let plan =
    List.map2
      (fun g k ->
        match Cache.find t.cache k with
        | Some v -> `Hit (g, v)
        | None -> (
          match Hashtbl.find_opt pending k with
          | Some slot -> `Slot (g, slot)
          | None ->
            let slot = !n_compute in
            incr n_compute;
            Hashtbl.add pending k slot;
            rev_to_compute := (k, g) :: !rev_to_compute;
            `Slot (g, slot)))
      groups keys
  in
  let to_compute = List.rev !rev_to_compute in
  let computed =
    Pool.map t.pool (fun (_, g) -> Engine.run_group ?options config g)
      to_compute
  in
  List.iter2 (fun (k, _) v -> Cache.add t.cache k v) to_compute computed;
  obs_record_batch t to_compute computed;
  let computed = Array.of_list computed in
  List.map
    (function
      | `Hit (g, v) -> subst_group g v
      | `Slot (g, slot) -> subst_group g computed.(slot))
    plan

let run_inference t ?options config graph =
  Engine.of_layer_results config
    (Ascend_nn.Graph.name graph)
    (run_groups t ?options config (Fusion.partition graph))

let run_training t ?options config graph =
  Engine.of_layer_results config
    (Ascend_nn.Graph.name graph ^ ":training")
    (run_groups t ?options config (Engine.training_groups graph))

(* --- Engine hook --------------------------------------------------- *)

let install t =
  Engine.group_runner :=
    Some (fun ?options config groups -> run_groups t ?options config groups)

let uninstall () = Engine.group_runner := None

let default_instance = ref None

let env_jobs () =
  match Sys.getenv_opt "ASCEND_JOBS" with
  | Some s -> (
    match int_of_string_opt s with Some j when j >= 1 -> Some j | _ -> None)
  | None -> None

(* opt-in disk tier: persistence changes hit/miss counters between a
   cold and a warm run, and the default service's counters flow into
   traces — so it only turns on when the environment asks for it *)
let env_cache_dir () =
  match Sys.getenv_opt "ASCEND_CACHE_DIR" with
  | Some d when d <> "" -> Some d
  | _ -> None

let default () =
  match !default_instance with
  | Some t -> t
  | None ->
    let jobs = env_jobs () in
    let dir = env_cache_dir () in
    let t = create ?jobs ?dir () in
    default_instance := Some t;
    t

let install_default () = install (default ())
