module Obs = Ascend_obs
module Engine = Ascend_compiler.Engine
module Fusion = Ascend_compiler.Fusion
module Simulator = Ascend_core_sim.Simulator

type capture = {
  json : Ascend_util.Json.t;
  summary : Obs.Summary.t;
  events : int;
  dropped : int;
  total_cycles : int;
}

let model ?(capacity = 262144) ?options core graph =
  let collector = Obs.Collector.create ~capacity () in
  let groups = Fusion.partition graph in
  let result =
    Obs.Hook.with_collector collector (fun () ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (g : Fusion.t) :: rest -> (
            match Engine.run_group ?options core g with
            | Ok lr -> go (lr :: acc) rest
            | Error e -> Error (g.Fusion.tag ^ ": " ^ e))
        in
        go [] groups)
  in
  match result with
  | Error e -> Error e
  | Ok layers ->
    let total_cycles =
      List.fold_left
        (fun a (lr : Engine.layer_result) ->
          a + lr.Engine.report.Simulator.total_cycles)
        0 layers
    in
    Ok
      {
        json = Obs.Chrome_trace.to_json collector;
        summary = Obs.Summary.build collector;
        events = Obs.Collector.length collector;
        dropped = Obs.Collector.dropped collector;
        total_cycles;
      }
