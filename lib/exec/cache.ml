(* Bounded content-addressed store: string digest -> value, LRU
   eviction, hit/miss/eviction counters.  Lookups and insertions take a
   mutex so pool workers may probe concurrently, but the execution
   service performs all accounting from the submitting domain in
   submission order, which is what keeps the counters deterministic
   run-to-run (see Service). *)

type 'v entry = { value : 'v; mutable last_use : int }

type 'v t = {
  capacity : int;
  table : (string, 'v entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create 64;
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.tick <- t.tick + 1;
        e.last_use <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let evict_lru t =
  (* linear scan; eviction is rare (capacity-bound) and the table is at
     most [capacity] entries *)
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, lu) when lu <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        t.tick <- t.tick + 1;
        Hashtbl.add t.table key { value; last_use = t.tick }
      end)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
