(* Bounded content-addressed store: string digest -> value, LRU
   eviction, hit/miss/eviction counters.  Lookups and insertions take a
   mutex so pool workers may probe concurrently, but the execution
   service performs all accounting from the submitting domain in
   submission order, which is what keeps the counters deterministic
   run-to-run (see Service).

   Optional disk tier: with [dir] set, the cache indexes the directory's
   entries at creation (names only — values load lazily), probes it on
   a memory miss, and {!flush} writes every entry added since the last
   flush as one file per key (tmp + rename, so a reader never sees a
   torn entry).  Values go through [Marshal]; a file that fails to
   unmarshal (truncated, or written by a binary with different value
   types) is dropped from the index and counts as a miss, never an
   error.  Memory hits and disk hits are counted separately so the two
   tiers stay distinguishable in metrics. *)

type 'v entry = { value : 'v; mutable last_use : int }

type 'v t = {
  capacity : int;
  table : (string, 'v entry) Hashtbl.t;
  mutex : Mutex.t;
  dir : string option;
  on_disk : (string, unit) Hashtbl.t;
  mutable dirty : (string * string) list;  (* (key, marshaled), newest first *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_hits : int;
  mutable disk_writes : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  disk_hits : int;
  disk_writes : int;
  disk_entries : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let entry_file dir key = Filename.concat dir key

let create ?(capacity = 4096) ?dir () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  let on_disk = Hashtbl.create 64 in
  (match dir with
  | None -> ()
  | Some d ->
    mkdir_p d;
    Array.iter
      (fun name ->
        if
          (not (Filename.check_suffix name ".tmp"))
          && not (Sys.is_directory (entry_file d name))
        then Hashtbl.replace on_disk name ())
      (try Sys.readdir d with Sys_error _ -> [||]));
  {
    capacity;
    table = Hashtbl.create 64;
    mutex = Mutex.create ();
    dir;
    on_disk;
    dirty = [];
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    disk_hits = 0;
    disk_writes = 0;
  }

let capacity t = t.capacity
let dir t = t.dir

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let evict_lru t =
  (* linear scan; eviction is rare (capacity-bound) and the table is at
     most [capacity] entries *)
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, lu) when lu <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1
  | None -> ()

(* insert without counting: promotion of a disk entry into memory *)
let insert t key value =
  if not (Hashtbl.mem t.table key) then begin
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.add t.table key { value; last_use = t.tick }
  end

let load_from_disk t key =
  match t.dir with
  | None -> None
  | Some d when Hashtbl.mem t.on_disk key -> (
    let path = entry_file d key in
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Marshal.from_channel ic)
    with
    | v -> Some v
    | exception _ ->
      (* truncated or type-incompatible entry: forget it *)
      Hashtbl.remove t.on_disk key;
      None)
  | Some _ -> None

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.tick <- t.tick + 1;
        e.last_use <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
      | None -> (
        match load_from_disk t key with
        | Some v ->
          t.disk_hits <- t.disk_hits + 1;
          insert t key v;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None))

let add t key value =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        insert t key value;
        (* marshal now, not at flush: LRU eviction must never lose a
           dirty entry.  Values are closure-free plain data (compiled
           programs + simulator reports). *)
        if
          t.dir <> None
          && (not (Hashtbl.mem t.on_disk key))
          && not (List.mem_assoc key t.dirty)
        then t.dirty <- (key, Marshal.to_string value []) :: t.dirty
      end)

let flush t =
  locked t (fun () ->
      match t.dir with
      | None -> t.dirty <- []
      | Some d ->
        List.iter
          (fun (key, bytes) ->
            let path = entry_file d key in
            (* tmp + rename: concurrent processes may race on the same
               key, but both write identical content-addressed bytes *)
            let tmp = path ^ ".tmp" in
            (try
               let oc = open_out_bin tmp in
               Fun.protect
                 ~finally:(fun () -> close_out_noerr oc)
                 (fun () -> output_string oc bytes);
               Sys.rename tmp path;
               Hashtbl.replace t.on_disk key ();
               t.disk_writes <- t.disk_writes + 1
             with Sys_error _ -> ()))
          (List.rev t.dirty);
        t.dirty <- [])

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        disk_hits = t.disk_hits;
        disk_writes = t.disk_writes;
        disk_entries = Hashtbl.length t.on_disk;
      })

let pp_stats ppf s =
  Format.fprintf ppf
    "%d memory hit(s), %d disk hit(s), %d miss(es), %d eviction(s), %d \
     entr(ies) in memory; disk tier: %d write(s), %d file(s)"
    s.hits s.disk_hits s.misses s.evictions s.entries s.disk_writes
    s.disk_entries

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.dirty <- [];
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.disk_hits <- 0;
      t.disk_writes <- 0)
