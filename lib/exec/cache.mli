(** Bounded content-addressed result store with an optional disk tier.

    Keys are stable digests (see {!Ascend_util.Stable_hash}); values are
    whatever the service wants to reuse — here compiled programs plus
    simulator reports.  Capacity-bound with LRU eviction; every lookup
    counts a hit or a miss and every eviction is counted, so the cache's
    effectiveness is observable as metrics ({!stats}).

    With [dir] set the cache persists across processes: creation indexes
    the directory's entries (load-on-create; values stream in lazily on
    first probe), {!find} falls back to disk on a memory miss, and
    {!flush} writes entries added since the last flush (save-on-flush,
    one [Marshal]ed file per key, atomic tmp+rename).  Memory and disk
    hits are counted separately.  A file that fails to unmarshal — e.g.
    written by a build with different value types — is silently dropped
    and counted as a miss, so a stale directory can cost time but never
    correctness... provided the caller's keys cover everything that
    determines the value (the execution service's content addresses
    do). *)

type 'v t

type stats = {
  hits : int;        (** memory hits *)
  misses : int;      (** found in neither tier *)
  evictions : int;
  entries : int;     (** in memory *)
  disk_hits : int;   (** memory misses satisfied from [dir] *)
  disk_writes : int; (** entries written by {!flush} *)
  disk_entries : int;(** indexed files in [dir] *)
}

val create : ?capacity:int -> ?dir:string -> unit -> 'v t
(** Default capacity: 4096 entries; no disk tier unless [dir] is given
    (created, with parents, if missing).  Raises [Invalid_argument] on a
    capacity below 1. *)

val capacity : 'v t -> int

val dir : 'v t -> string option

val find : 'v t -> string -> 'v option
(** Counts a memory hit, a disk hit (promoting the entry into memory)
    or a miss; refreshes recency on memory hit. *)

val add : 'v t -> string -> 'v -> unit
(** Inserts unless present; evicts the least-recently-used entry when
    full.  With a disk tier, the entry is also queued for the next
    {!flush} (serialized immediately, so a later eviction cannot lose
    it). *)

val flush : 'v t -> unit
(** Write queued entries to [dir]; a no-op without a disk tier. *)

val stats : 'v t -> stats

val pp_stats : Format.formatter -> stats -> unit
(** One line covering both tiers — memory hits/misses/evictions/entries
    plus disk hits/writes/files — the single formatter every
    user-visible summary ([serve], [fleet], [trace]) prints, so the
    disk-tier counters are never silently collected-but-unshown. *)

val clear : 'v t -> unit
(** Reset the memory tier and all counters.  Disk entries survive (and
    remain probeable): clearing drops state, not the persistent store. *)
