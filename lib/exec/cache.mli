(** Bounded content-addressed result store.

    Keys are stable digests (see {!Ascend_util.Stable_hash}); values are
    whatever the service wants to reuse — here compiled programs plus
    simulator reports.  Capacity-bound with LRU eviction; every lookup
    counts a hit or a miss and every eviction is counted, so the cache's
    effectiveness is observable as metrics ({!stats}). *)

type 'v t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : ?capacity:int -> unit -> 'v t
(** Default capacity: 4096 entries.  Raises [Invalid_argument] on a
    capacity below 1. *)

val capacity : 'v t -> int

val find : 'v t -> string -> 'v option
(** Counts a hit or a miss and refreshes recency on hit. *)

val add : 'v t -> string -> 'v -> unit
(** Inserts unless present; evicts the least-recently-used entry when
    full. *)

val stats : 'v t -> stats
val clear : 'v t -> unit
