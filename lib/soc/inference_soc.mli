(** The edge-inference SoC (Ascend 310, paper Tables 5 and 10: the 2018
    part for cloud AI inference and edge boxes): two large Ascend cores
    with the 310's 96 GB/s-per-core LLC allocation, LPDDR memory, a DVPP
    for camera/video ingest, and an 8 W envelope. *)

type t = {
  soc_name : string;
  core : Ascend_arch.Config.t;
  cores : int;
  dram : Ascend_memory.Dram.t;
  dvpp : Dvpp.t;
  tdp_w : float;
}

val ascend310 : t

val peak_tops : t -> precision:Ascend_arch.Precision.t -> float

type result = {
  latency_s : float;            (** one batch on one core *)
  throughput_per_s : float;
      (** across all cores assuming ideal batch-parallel scaling
          (cores / latency) — an idealization: it charges no scheduling
          or placement cost whatsoever *)
  scheduled_throughput_per_s : float;
      (** the same replicated workload placed by the §5.2
          {!Ascend_runtime.Scheduler} across the SoC's cores and derived
          from the resulting makespan; at most [throughput_per_s], and
          equal to it exactly when the list scheduler keeps every
          replica on its own core *)
  power_w : float;
  video_channels : int;
      (** concurrent 1080p30 streams this model keeps up with *)
}

val run :
  t -> Ascend_nn.Graph.t -> (result, string) Stdlib.result
(** Batch-1 inference replicated across the cores; video_channels is
    bounded by both compute throughput and the DVPP decode capacity. *)
