module Config = Ascend_arch.Config
module Engine = Ascend_compiler.Engine
module Scheduler = Ascend_runtime.Scheduler

type t = {
  soc_name : string;
  core : Config.t;
  cores : int;
  dram : Ascend_memory.Dram.t;
  dvpp : Dvpp.t;
  tdp_w : float;
}

let ascend310 =
  {
    soc_name = "Ascend 310";
    core = Config.mini;
    cores = 2;
    dram = Ascend_memory.Dram.lpddr4_mobile;
    dvpp =
      { Dvpp.ascend910_dvpp with Dvpp.dvpp_name = "DVPP-310";
        decode_channels = 16; power_w = 1.5 };
    tdp_w = 8.;
  }

let peak_tops t ~precision =
  float_of_int t.cores *. Config.peak_flops t.core ~precision /. 1e12

type result = {
  latency_s : float;
  throughput_per_s : float;
  scheduled_throughput_per_s : float;
  power_w : float;
  video_channels : int;
}

(* the §5.2 runtime's view of the same workload: one stream per
   concurrent batch replica, placed by the list scheduler across the
   SoC's cores; throughput derives from the resulting makespan instead
   of assuming each core runs its replica in perfect isolation *)
let scheduled_throughput t (r : Engine.network_result) =
  let replica i =
    let s = Scheduler.stream_of_network r ~blocks_per_task:1 in
    { s with Scheduler.stream_name = Printf.sprintf "replica%d" i }
  in
  let app =
    Scheduler.app ~name:r.Engine.graph_name
      (List.init t.cores (fun i -> replica i))
  in
  let sched = Scheduler.run ~cores:t.cores [ app ] in
  let round_s =
    Ascend_util.Units.seconds_of_cycles
      ~cycles:sched.Scheduler.makespan_cycles
      ~frequency_ghz:t.core.Config.frequency_ghz
  in
  if round_s > 0. then float_of_int t.cores /. round_s else 0.

let run t graph =
  match Engine.run_inference t.core graph with
  | Error _ as e -> e
  | Ok r ->
    let latency_s = Engine.seconds r in
    let per_core = if latency_s > 0. then 1. /. latency_s else 0. in
    let throughput = per_core *. float_of_int t.cores in
    let compute_channels = int_of_float (throughput /. 30.) in
    let decode_channels = t.dvpp.Dvpp.decode_channels in
    Ok
      {
        latency_s;
        throughput_per_s = throughput;
        scheduled_throughput_per_s = scheduled_throughput t r;
        power_w =
          (float_of_int t.cores *. Engine.average_power_w r)
          +. t.dvpp.Dvpp.power_w +. 1.0 (* uncore *);
        video_channels = min compute_channels decode_channels;
      }
