module Shape = Ascend_tensor.Shape

type pool_kind = Max_pool | Avg_pool

type activation = Relu | Relu6 | Gelu | Sigmoid | Tanh

type t =
  | Input
  | Conv2d of {
      cout : int;
      kh : int;
      kw : int;
      stride : int;
      padding : int;
      groups : int;
    }
  | Linear of { out_features : int }
  | Matmul of { transpose_b : bool }
  | Pool of { kind : pool_kind; kernel : int; stride : int }
  | Global_avg_pool
  | Activation of activation
  | Batch_norm
  | Layer_norm
  | Softmax
  | Add
  | Mul
  | Concat of { axis : int }
  | Embedding of { vocab_size : int; hidden : int }
  | Kv_attention of { heads : int; cache_len : int }
  | Upsample of { factor : int }
  | Reshape of int list
  | Transpose_last_two
  | Output

let activation_name = function
  | Relu -> "relu"
  | Relu6 -> "relu6"
  | Gelu -> "gelu"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"

let name = function
  | Input -> "input"
  | Conv2d { kh; kw; groups; _ } ->
    if groups > 1 then Printf.sprintf "dwconv%dx%d" kh kw
    else Printf.sprintf "conv%dx%d" kh kw
  | Linear _ -> "linear"
  | Matmul _ -> "matmul"
  | Pool { kind = Max_pool; _ } -> "maxpool"
  | Pool { kind = Avg_pool; _ } -> "avgpool"
  | Global_avg_pool -> "gap"
  | Activation a -> activation_name a
  | Batch_norm -> "batchnorm"
  | Layer_norm -> "layernorm"
  | Softmax -> "softmax"
  | Add -> "add"
  | Mul -> "mul"
  | Concat _ -> "concat"
  | Embedding _ -> "embedding"
  | Kv_attention _ -> "kvattn"
  | Upsample { factor } -> Printf.sprintf "upsample%dx" factor
  | Reshape _ -> "reshape"
  | Transpose_last_two -> "transpose"
  | Output -> "output"

let pp ppf t = Format.pp_print_string ppf (name t)

let fail op msg shapes =
  invalid_arg
    (Printf.sprintf "Op.infer_shape: %s: %s (inputs: %s)" (name op) msg
       (String.concat ", " (List.map Shape.to_string shapes)))

let infer_shape op inputs =
  match (op, List.map Shape.to_list inputs) with
  | Input, [ dims ] -> Shape.of_list dims
  | Conv2d { cout; kh; kw; stride; padding; groups }, [ [ n; cin; h; w ] ] ->
    if cin mod groups <> 0 || cout mod groups <> 0 then
      fail op "channels not divisible by groups" inputs;
    let oh, ow =
      Ascend_tensor.Ops.conv_output_hw ~h ~w ~kh ~kw ~stride ~padding
    in
    Shape.nchw ~n ~c:cout ~h:oh ~w:ow
  | Linear { out_features }, [ dims ] when dims <> [] ->
    let rev = List.rev dims in
    Shape.of_list (List.rev (out_features :: List.tl rev))
  | Matmul { transpose_b }, [ a; b ] ->
    let ra = List.length a and rb = List.length b in
    if ra < 2 || rb < 2 then fail op "rank < 2" inputs;
    let rev_a = List.rev a and rev_b = List.rev b in
    let ka = List.hd rev_a and m = List.hd (List.tl rev_a) in
    let last_b = List.hd rev_b and pre_b = List.hd (List.tl rev_b) in
    let kb, n = if transpose_b then (last_b, pre_b) else (pre_b, last_b) in
    if ka <> kb then fail op "inner dimensions differ" inputs;
    let batch_a = List.rev (List.tl (List.tl rev_a)) in
    let batch_b = List.rev (List.tl (List.tl rev_b)) in
    if batch_a <> batch_b then fail op "batch dimensions differ" inputs;
    Shape.of_list (batch_a @ [ m; n ])
  | Pool { kernel; stride; _ }, [ [ n; c; h; w ] ] ->
    let oh, ow =
      Ascend_tensor.Ops.conv_output_hw ~h ~w ~kh:kernel ~kw:kernel ~stride
        ~padding:0
    in
    Shape.nchw ~n ~c ~h:oh ~w:ow
  | Global_avg_pool, [ [ n; c; _h; _w ] ] -> Shape.matrix n c
  | (Activation _ | Batch_norm | Layer_norm | Softmax | Output), [ dims ] ->
    Shape.of_list dims
  | (Add | Mul), [ a; b ] ->
    if a <> b then fail op "operand shapes differ" inputs;
    Shape.of_list a
  | Concat { axis }, (first :: _ :: _ as all) ->
    let rank = List.length first in
    if axis < 0 || axis >= rank then fail op "axis out of range" inputs;
    let sum = ref 0 in
    List.iter
      (fun dims ->
        if List.length dims <> rank then fail op "rank mismatch" inputs;
        List.iteri
          (fun i d ->
            if i = axis then sum := !sum + d
            else if d <> List.nth first i then fail op "dim mismatch" inputs)
          dims)
      all;
    Shape.of_list (List.mapi (fun i d -> if i = axis then !sum else d) first)
  | Embedding { hidden; _ }, [ dims ] -> Shape.of_list (dims @ [ hidden ])
  | Kv_attention { heads; cache_len }, [ q; k; v ] ->
    (match q with
    | [ _b; _t; h ] ->
      if heads < 1 then fail op "heads < 1" inputs;
      if cache_len < 0 then fail op "negative cache_len" inputs;
      if h mod heads <> 0 then fail op "hidden not divisible by heads" inputs;
      if k <> q || v <> q then fail op "q/k/v shapes differ" inputs;
      Shape.of_list q
    | _ -> fail op "expected [batch; tokens; hidden] operands" inputs)
  | Upsample { factor }, [ [ n; c; h; w ] ] ->
    if factor < 1 then fail op "factor < 1" inputs;
    Shape.nchw ~n ~c ~h:(h * factor) ~w:(w * factor)
  | Reshape target, [ dims ] ->
    let n = List.fold_left ( * ) 1 dims in
    let n' = List.fold_left ( * ) 1 target in
    if n <> n' then fail op "element count mismatch" inputs;
    Shape.of_list target
  | Transpose_last_two, [ dims ] when List.length dims >= 2 ->
    let rev = List.rev dims in
    (match rev with
    | a :: b :: rest -> Shape.of_list (List.rev (b :: a :: rest))
    | _ -> fail op "rank < 2" inputs)
  | _, _ -> fail op "wrong number or rank of inputs" inputs

let arity = function
  | Kv_attention _ -> 3
  | Matmul _ | Add | Mul | Concat _ -> 2
  | Input | Conv2d _ | Linear _ | Pool _ | Global_avg_pool | Activation _
  | Batch_norm | Layer_norm | Softmax | Embedding _ | Upsample _ | Reshape _
  | Transpose_last_two | Output ->
    1

let weight_shape op ~input =
  match (op, Shape.to_list input) with
  | Conv2d { cout; kh; kw; groups; _ }, [ _n; cin; _h; _w ] ->
    Some (Shape.of_list [ cout; cin / groups; kh; kw ])
  | Linear { out_features }, dims when dims <> [] ->
    let in_features = List.hd (List.rev dims) in
    Some (Shape.matrix in_features out_features)
  | Embedding { vocab_size; hidden }, _ -> Some (Shape.matrix vocab_size hidden)
  | Batch_norm, [ _; c; _; _ ] -> Some (Shape.matrix 4 c)
      (* mean, var, gamma, beta rows *)
  | _, _ -> None

let is_cube_op = function
  | Conv2d { groups; cout; _ } -> groups = 1 || groups < cout
      (* grouped but not depthwise convs still map to per-group GEMMs *)
  | Linear _ | Matmul _ | Kv_attention _ -> true
  | Input | Pool _ | Global_avg_pool | Activation _ | Batch_norm | Layer_norm
  | Softmax | Add | Mul | Concat _ | Embedding _ | Upsample _ | Reshape _
  | Transpose_last_two | Output ->
    false

let vector_passes = function
  | Activation Relu -> 1.
  | Activation Relu6 -> 1.
  | Activation (Sigmoid | Tanh) -> 4.
  | Activation Gelu -> 6.
  | Batch_norm -> 2.
  | Layer_norm -> 5.
  | Softmax -> 4.
  | Add | Mul -> 1.
  | Concat _ -> 1.
  | Global_avg_pool -> 1.
  | Pool { kernel; _ } -> float_of_int (kernel * kernel)
  | Embedding _ -> 1.
  | Upsample _ -> 1.
  | Reshape _ | Transpose_last_two -> 1.
  | Input | Output -> 0.
  | Conv2d _ | Linear _ | Matmul _ | Kv_attention _ -> 0.
