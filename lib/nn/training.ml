module Shape = Ascend_tensor.Shape

let optimizer_vector_elems_per_param = 3.0

let param_elems g (n : Graph.node) =
  match n.inputs with
  | [ x ] -> (
    match Op.weight_shape n.op ~input:(Graph.find g x).out_shape with
    | Some s -> Shape.numel s
    | None -> 0)
  | _ -> 0

(* backward of a GEMM (count,m,k,n): dX is (m,n,k), dW is (k,m,n) *)
let backward_gemms (gs : Workload.gemm list) : Workload.gemm list =
  List.concat_map
    (fun ({ count; m; k; n } : Workload.gemm) ->
      [ ({ count; m; k = n; n = k } : Workload.gemm);
        { count; m = k; k = m; n } ])
    gs

let backward_of_node g (n : Graph.node) =
  let fwd = Workload.of_node g n in
  let update_elems =
    optimizer_vector_elems_per_param *. float_of_int (param_elems g n)
  in
  let out_elems = float_of_int (Shape.numel n.out_shape) in
  match n.op with
  | Op.Conv2d _ | Op.Linear _ | Op.Matmul _ ->
    if Op.is_cube_op n.op then
      {
        fwd with
        cube_macs = 2 * fwd.cube_macs;
        gemms = backward_gemms fwd.gemms;
        vector_elems = update_elems;
      }
    else
      (* depthwise: gradient w.r.t. input and weights, both on vector *)
      { fwd with vector_elems = (2. *. fwd.vector_elems) +. update_elems }
  | Op.Activation (Op.Relu | Op.Relu6) ->
    { fwd with cube_macs = 0; gemms = []; vector_elems = out_elems }
  | Op.Activation (Op.Sigmoid | Op.Tanh) ->
    { fwd with cube_macs = 0; gemms = []; vector_elems = 2. *. out_elems }
  | Op.Activation Op.Gelu ->
    { fwd with cube_macs = 0; gemms = []; vector_elems = 7. *. out_elems }
  | Op.Batch_norm ->
    (* training batch-norm backward: reductions over the batch plus two
       normalisation passes *)
    { fwd with gemms = []; vector_elems = (6. *. out_elems) +. update_elems }
  | Op.Layer_norm ->
    { fwd with gemms = []; vector_elems = 8. *. out_elems }
  | Op.Softmax -> { fwd with gemms = []; vector_elems = 3. *. out_elems }
  | Op.Pool _ | Op.Global_avg_pool | Op.Upsample _ ->
    { fwd with gemms = []; vector_elems = out_elems }
  | Op.Add | Op.Mul | Op.Concat _ ->
    { fwd with gemms = []; vector_elems = out_elems }
  | Op.Embedding _ ->
    (* scatter-add of gradients into the table rows that were touched *)
    { fwd with gemms = []; vector_elems = out_elems +. update_elems }
  | Op.Reshape _ | Op.Transpose_last_two ->
    { fwd with gemms = []; vector_elems = 0. }
  | Op.Kv_attention _ ->
    (* weightless: gradients flow to q/k/v through the two GEMMs; the
       softmax backward costs about what the forward passes did *)
    { fwd with cube_macs = 2 * fwd.cube_macs; gemms = backward_gemms fwd.gemms }
  | Op.Input | Op.Output -> Workload.zero

let node_training_workload g n =
  Workload.combine (Workload.of_node g n) (backward_of_node g n)

let graph_training_workload g =
  List.fold_left
    (fun acc n -> Workload.combine acc (node_training_workload g n))
    Workload.zero (Graph.nodes g)
