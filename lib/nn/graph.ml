module Shape = Ascend_tensor.Shape

type node = {
  id : int;
  node_name : string;
  op : Op.t;
  inputs : int list;
  out_shape : Shape.t;
  dtype : Ascend_arch.Precision.t;
}

type t = {
  graph_name : string;
  graph_dtype : Ascend_arch.Precision.t;
  mutable rev_nodes : node list;
  mutable count : int;
}

let create ~name ~dtype =
  { graph_name = name; graph_dtype = dtype; rev_nodes = []; count = 0 }

let name t = t.graph_name
let dtype t = t.graph_dtype
let nodes t = List.rev t.rev_nodes
let node_count t = t.count

let find t id =
  match List.find_opt (fun n -> n.id = id) t.rev_nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.find: no node %d" id)

let consumers t id =
  List.filter (fun n -> List.mem id n.inputs) (nodes t)

let outputs t =
  List.filter (fun n -> match n.op with Op.Output -> true | _ -> false) (nodes t)

let add_node t ?name ~op inputs =
  List.iter
    (fun i ->
      if i < 0 || i >= t.count then
        invalid_arg
          (Printf.sprintf "Graph.add_node: input %d does not exist yet" i))
    inputs;
  let in_shapes =
    match (op, inputs) with
    | Op.Input, [] -> []
    | _ -> List.map (fun i -> (find t i).out_shape) inputs
  in
  let out_shape =
    match op with
    | Op.Input -> invalid_arg "Graph.add_node: use Graph.input"
    | _ -> Op.infer_shape op in_shapes
  in
  let id = t.count in
  let node_name =
    match name with Some n -> n | None -> Printf.sprintf "%s_%d" (Op.name op) id
  in
  t.rev_nodes <-
    { id; node_name; op; inputs; out_shape; dtype = t.graph_dtype } :: t.rev_nodes;
  t.count <- id + 1;
  id

let input t ?name shape =
  let id = t.count in
  let node_name =
    match name with Some n -> n | None -> Printf.sprintf "input_%d" id
  in
  t.rev_nodes <-
    { id; node_name; op = Op.Input; inputs = []; out_shape = shape;
      dtype = t.graph_dtype }
    :: t.rev_nodes;
  t.count <- id + 1;
  id

let conv2d_rect t ?name ?(stride = 1) ?(padding = 0) ?(groups = 1) ~cout ~kh ~kw x =
  add_node t ?name ~op:(Op.Conv2d { cout; kh; kw; stride; padding; groups }) [ x ]

let conv2d t ?name ?stride ?padding ?groups ~cout ~k x =
  conv2d_rect t ?name ?stride ?padding ?groups ~cout ~kh:k ~kw:k x

let depthwise_conv2d t ?name ?(stride = 1) ?(padding = 0) ~k x =
  let shape = (find t x).out_shape in
  let c = Shape.dim shape 1 in
  conv2d t ?name ~stride ~padding ~groups:c ~cout:c ~k x

let linear t ?name ~out_features x =
  add_node t ?name ~op:(Op.Linear { out_features }) [ x ]

let matmul t ?name ?(transpose_b = false) a b =
  add_node t ?name ~op:(Op.Matmul { transpose_b }) [ a; b ]

let max_pool t ?name ~kernel ~stride x =
  add_node t ?name ~op:(Op.Pool { kind = Op.Max_pool; kernel; stride }) [ x ]

let avg_pool t ?name ~kernel ~stride x =
  add_node t ?name ~op:(Op.Pool { kind = Op.Avg_pool; kernel; stride }) [ x ]

let global_avg_pool t ?name x =
  add_node t ?name ~op:Op.Global_avg_pool [ x ]

let activation t ?name a x = add_node t ?name ~op:(Op.Activation a) [ x ]
let relu t ?name x = activation t ?name Op.Relu x
let relu6 t ?name x = activation t ?name Op.Relu6 x
let gelu t ?name x = activation t ?name Op.Gelu x
let batch_norm t ?name x = add_node t ?name ~op:Op.Batch_norm [ x ]
let layer_norm t ?name x = add_node t ?name ~op:Op.Layer_norm [ x ]
let softmax t ?name x = add_node t ?name ~op:Op.Softmax [ x ]
let add t ?name a b = add_node t ?name ~op:Op.Add [ a; b ]
let mul t ?name a b = add_node t ?name ~op:Op.Mul [ a; b ]

let concat t ?name ~axis xs =
  add_node t ?name ~op:(Op.Concat { axis }) xs

let embedding t ?name ~vocab_size ~hidden x =
  add_node t ?name ~op:(Op.Embedding { vocab_size; hidden }) [ x ]

let kv_attention t ?name ~heads ~cache_len q k v =
  add_node t ?name ~op:(Op.Kv_attention { heads; cache_len }) [ q; k; v ]

let upsample t ?name ~factor x =
  add_node t ?name ~op:(Op.Upsample { factor }) [ x ]

let reshape t ?name dims x = add_node t ?name ~op:(Op.Reshape dims) [ x ]

let transpose_last_two t ?name x =
  add_node t ?name ~op:Op.Transpose_last_two [ x ]

let output t ?name x = add_node t ?name ~op:Op.Output [ x ]

let validate t =
  let ns = nodes t in
  let check_node acc n =
    match acc with
    | Error _ as e -> e
    | Ok () -> (
      let bad_ref = List.exists (fun i -> i < 0 || i >= n.id) n.inputs in
      if bad_ref then
        Error (Printf.sprintf "node %s: forward or invalid reference" n.node_name)
      else
        match n.op with
        | Op.Input -> Ok ()
        | _ -> (
          let in_shapes = List.map (fun i -> (find t i).out_shape) n.inputs in
          try
            let s = Op.infer_shape n.op in_shapes in
            if Shape.equal s n.out_shape then Ok ()
            else
              Error
                (Printf.sprintf "node %s: stored shape %s but inferred %s"
                   n.node_name
                   (Shape.to_string n.out_shape)
                   (Shape.to_string s))
          with Invalid_argument msg ->
            Error (Printf.sprintf "node %s: %s" n.node_name msg)))
  in
  let structural = List.fold_left check_node (Ok ()) ns in
  match structural with
  | Error _ as e -> e
  | Ok () ->
    if outputs t = [] then Error "graph has no output node" else Ok ()

let total_params t =
  List.fold_left
    (fun acc n ->
      match n.inputs with
      | [ x ] -> (
        match Op.weight_shape n.op ~input:(find t x).out_shape with
        | Some s -> acc + Shape.numel s
        | None -> acc)
      | _ -> acc)
    0 (nodes t)

let pp_summary ppf t =
  Format.fprintf ppf "graph %s (%s): %d nodes, %d params@." t.graph_name
    (Ascend_arch.Precision.name t.graph_dtype)
    t.count (total_params t);
  List.iter
    (fun n ->
      Format.fprintf ppf "  %3d %-14s %-18s <- [%s] %s@." n.id n.node_name
        (Op.name n.op)
        (String.concat "," (List.map string_of_int n.inputs))
        (Shape.to_string n.out_shape))
    (nodes t)
