module Shape = Ascend_tensor.Shape
module Tensor = Ascend_tensor.Tensor

type gradients = {
  input_grads : (string * Tensor.t) list;
  param_grads : (string * Tensor.t) list;
}

let zeros_like t = Tensor.create ~dtype:Ascend_arch.Precision.Fp32 (Tensor.shape t)

(* batched matmul with optional transposes; operands are (.., r, c) *)
let bmm ?(ta = false) ?(tb = false) a b =
  let da = Shape.to_list (Tensor.shape a) in
  let db = Shape.to_list (Tensor.shape b) in
  let rev_a = List.rev da and rev_b = List.rev db in
  let a_cols = List.hd rev_a and a_rows = List.hd (List.tl rev_a) in
  let b_cols = List.hd rev_b and b_rows = List.hd (List.tl rev_b) in
  let m = if ta then a_cols else a_rows in
  let k = if ta then a_rows else a_cols in
  let k' = if tb then b_cols else b_rows in
  let n = if tb then b_rows else b_cols in
  if k <> k' then invalid_arg "Autodiff.bmm: inner dimensions differ";
  let batch = List.fold_left ( * ) 1 da / (a_rows * a_cols) in
  let batch_dims = List.rev (List.tl (List.tl rev_a)) in
  let out = Tensor.create (Shape.of_list (batch_dims @ [ m; n ])) in
  let ad = Tensor.data a and bd = Tensor.data b and od = Tensor.data out in
  let a_sz = a_rows * a_cols and b_sz = b_rows * b_cols in
  for bi = 0 to batch - 1 do
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for p = 0 to k - 1 do
          let av =
            if ta then ad.((bi * a_sz) + (p * a_cols) + i)
            else ad.((bi * a_sz) + (i * a_cols) + p)
          in
          let bv =
            if tb then bd.((bi * b_sz) + (j * b_cols) + p)
            else bd.((bi * b_sz) + (p * b_cols) + j)
          in
          acc := !acc +. (av *. bv)
        done;
        od.((bi * m * n) + (i * n) + j) <- !acc
      done
    done
  done;
  out

let nchw t =
  match Shape.to_list (Tensor.shape t) with
  | [ n; c; h; w ] -> (n, c, h, w)
  | _ -> invalid_arg "Autodiff: expected NCHW"

let backward g params ~inputs ?loss_grad () =
  let values_list = Eval.run_all g params ~inputs in
  let values : (int, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (id, t) -> Hashtbl.replace values id t) values_list;
  let value id = Hashtbl.find values id in
  let grads : (int, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  let accumulate id gt =
    match Hashtbl.find_opt grads id with
    | Some existing -> Hashtbl.replace grads id (Tensor.add existing gt)
    | None -> Hashtbl.replace grads id gt
  in
  let param_grads : (string, Tensor.t) Hashtbl.t = Hashtbl.create 16 in
  let accumulate_param name gt =
    match Hashtbl.find_opt param_grads name with
    | Some existing -> Hashtbl.replace param_grads name (Tensor.add existing gt)
    | None -> Hashtbl.replace param_grads name gt
  in
  let output =
    match Graph.outputs g with
    | [ o ] -> o
    | [] -> invalid_arg "Autodiff.backward: graph has no output"
    | _ -> invalid_arg "Autodiff.backward: multiple outputs unsupported"
  in
  let seed =
    match loss_grad with
    | Some t ->
      if not (Shape.equal (Tensor.shape t) output.Graph.out_shape) then
        invalid_arg "Autodiff.backward: loss_grad shape mismatch";
      t
    | None -> Tensor.full output.Graph.out_shape 1.
  in
  Hashtbl.replace grads output.Graph.id seed;
  let param_of (n : Graph.node) =
    match Eval.find_param params n.Graph.node_name with
    | Some t -> t
    | None ->
      invalid_arg ("Autodiff.backward: missing parameter " ^ n.Graph.node_name)
  in
  let backprop (n : Graph.node) dy =
    let x_id i = List.nth n.Graph.inputs i in
    let x i = value (x_id i) in
    match n.Graph.op with
    | Op.Input -> ()
    | Op.Output -> accumulate (x_id 0) dy
    | Op.Reshape _ ->
      accumulate (x_id 0) (Tensor.reshape dy (Tensor.shape (x 0)))
    | Op.Transpose_last_two -> accumulate (x_id 0) (Tensor.transpose dy)
    | Op.Add ->
      accumulate (x_id 0) dy;
      accumulate (x_id 1) dy
    | Op.Mul ->
      accumulate (x_id 0) (Tensor.mul dy (x 1));
      accumulate (x_id 1) (Tensor.mul dy (x 0))
    | Op.Activation act ->
      let xin = x 0 in
      let dx =
        match act with
        | Op.Relu -> Tensor.map2 (fun d v -> if v > 0. then d else 0.) dy xin
        | Op.Relu6 ->
          Tensor.map2 (fun d v -> if v > 0. && v < 6. then d else 0.) dy xin
        | Op.Sigmoid ->
          Tensor.map2
            (fun d v ->
              let s = 1. /. (1. +. exp (-.v)) in
              d *. s *. (1. -. s))
            dy xin
        | Op.Tanh ->
          Tensor.map2
            (fun d v ->
              let t = Float.tanh v in
              d *. (1. -. (t *. t)))
            dy xin
        | Op.Gelu ->
          Tensor.map2
            (fun d v ->
              let c = 0.7978845608 and a = 0.044715 in
              let u = c *. (v +. (a *. v *. v *. v)) in
              let t = Float.tanh u in
              let du = c *. (1. +. (3. *. a *. v *. v)) in
              d *. ((0.5 *. (1. +. t)) +. (0.5 *. v *. (1. -. (t *. t)) *. du)))
            dy xin
      in
      accumulate (x_id 0) dx
    | Op.Linear _ ->
      let xin = x 0 in
      let w = param_of n in
      let infe = Shape.dim (Tensor.shape w) 0 in
      let outf = Shape.dim (Tensor.shape w) 1 in
      let batch = Tensor.numel xin / infe in
      let x2 = Tensor.reshape xin (Shape.matrix batch infe) in
      let dy2 = Tensor.reshape dy (Shape.matrix batch outf) in
      accumulate_param n.Graph.node_name (bmm ~ta:true x2 dy2);
      accumulate (x_id 0)
        (Tensor.reshape (bmm ~tb:true dy2 w) (Tensor.shape xin))
    | Op.Matmul { transpose_b } ->
      let a = x 0 and b = x 1 in
      if transpose_b then begin
        (* y = a b^T: da = dy b; db = dy^T a *)
        accumulate (x_id 0) (bmm dy b);
        accumulate (x_id 1) (bmm ~ta:true dy a)
      end
      else begin
        (* y = a b: da = dy b^T; db = a^T dy *)
        accumulate (x_id 0) (bmm ~tb:true dy b);
        accumulate (x_id 1) (bmm ~ta:true a dy)
      end
    | Op.Conv2d { kh; kw; stride; padding; groups; cout } ->
      let xin = x 0 in
      let w = param_of n in
      let nb, cin, h, wd = nchw xin in
      let _, _, oh, ow = nchw dy in
      let cing = cin / groups and coutg = cout / groups in
      let dx = zeros_like xin and dw = zeros_like w in
      for ni = 0 to nb - 1 do
        for co = 0 to cout - 1 do
          let gidx = co / coutg in
          for ohi = 0 to oh - 1 do
            for owi = 0 to ow - 1 do
              let d = Tensor.get dy [| ni; co; ohi; owi |] in
              if d <> 0. then
                for ci = 0 to cing - 1 do
                  let cx = (gidx * cing) + ci in
                  for khi = 0 to kh - 1 do
                    let hi = (ohi * stride) + khi - padding in
                    if hi >= 0 && hi < h then
                      for kwi = 0 to kw - 1 do
                        let wi = (owi * stride) + kwi - padding in
                        if wi >= 0 && wi < wd then begin
                          let xv = Tensor.get xin [| ni; cx; hi; wi |] in
                          let wv = Tensor.get w [| co; ci; khi; kwi |] in
                          Tensor.set dx [| ni; cx; hi; wi |]
                            (Tensor.get dx [| ni; cx; hi; wi |] +. (d *. wv));
                          Tensor.set dw [| co; ci; khi; kwi |]
                            (Tensor.get dw [| co; ci; khi; kwi |] +. (d *. xv))
                        end
                      done
                  done
                done
            done
          done
        done
      done;
      accumulate_param n.Graph.node_name dw;
      accumulate (x_id 0) dx
    | Op.Pool { kind; kernel; stride } ->
      let xin = x 0 in
      let nb, c, h, w = nchw xin in
      ignore (h, w);
      let _, _, oh, ow = nchw dy in
      let dx = zeros_like xin in
      for ni = 0 to nb - 1 do
        for ci = 0 to c - 1 do
          for ohi = 0 to oh - 1 do
            for owi = 0 to ow - 1 do
              let d = Tensor.get dy [| ni; ci; ohi; owi |] in
              (match kind with
              | Op.Avg_pool ->
                let share = d /. float_of_int (kernel * kernel) in
                for khi = 0 to kernel - 1 do
                  for kwi = 0 to kernel - 1 do
                    let hi = (ohi * stride) + khi
                    and wi = (owi * stride) + kwi in
                    Tensor.set dx [| ni; ci; hi; wi |]
                      (Tensor.get dx [| ni; ci; hi; wi |] +. share)
                  done
                done
              | Op.Max_pool ->
                (* route to the arg-max of the window *)
                let best = ref neg_infinity and bh = ref 0 and bw = ref 0 in
                for khi = 0 to kernel - 1 do
                  for kwi = 0 to kernel - 1 do
                    let hi = (ohi * stride) + khi
                    and wi = (owi * stride) + kwi in
                    let v = Tensor.get xin [| ni; ci; hi; wi |] in
                    if v > !best then begin
                      best := v;
                      bh := hi;
                      bw := wi
                    end
                  done
                done;
                Tensor.set dx [| ni; ci; !bh; !bw |]
                  (Tensor.get dx [| ni; ci; !bh; !bw |] +. d))
            done
          done
        done
      done;
      accumulate (x_id 0) dx
    | Op.Global_avg_pool ->
      let xin = x 0 in
      let nb, c, h, w = nchw xin in
      let dx = zeros_like xin in
      let scale = 1. /. float_of_int (h * w) in
      for ni = 0 to nb - 1 do
        for ci = 0 to c - 1 do
          let d = Tensor.get dy [| ni; ci |] *. scale in
          for hi = 0 to h - 1 do
            for wi = 0 to w - 1 do
              Tensor.set dx [| ni; ci; hi; wi |] d
            done
          done
        done
      done;
      accumulate (x_id 0) dx
    | Op.Softmax ->
      (* dx = s * (dy - sum(dy * s)) per row *)
      let s = value n.Graph.id in
      let dims = Shape.to_list (Tensor.shape s) in
      let cols = List.hd (List.rev dims) in
      let rows = Tensor.numel s / cols in
      let dx = zeros_like s in
      let sd = Tensor.data s and dyd = Tensor.data dy and dxd = Tensor.data dx in
      for r = 0 to rows - 1 do
        let base = r * cols in
        let dot = ref 0. in
        for j = 0 to cols - 1 do
          dot := !dot +. (dyd.(base + j) *. sd.(base + j))
        done;
        for j = 0 to cols - 1 do
          dxd.(base + j) <- sd.(base + j) *. (dyd.(base + j) -. !dot)
        done
      done;
      accumulate (x_id 0) dx
    | Op.Layer_norm ->
      let xin = x 0 in
      let y = value n.Graph.id in
      let dims = Shape.to_list (Tensor.shape xin) in
      let cols = List.hd (List.rev dims) in
      let rows = Tensor.numel xin / cols in
      let eps = 1e-5 in
      let dx = zeros_like xin in
      let xd = Tensor.data xin and yd = Tensor.data y in
      let dyd = Tensor.data dy and dxd = Tensor.data dx in
      let fcols = float_of_int cols in
      for r = 0 to rows - 1 do
        let base = r * cols in
        let mean = ref 0. in
        for j = 0 to cols - 1 do
          mean := !mean +. xd.(base + j)
        done;
        let mean = !mean /. fcols in
        let var = ref 0. in
        for j = 0 to cols - 1 do
          let d = xd.(base + j) -. mean in
          var := !var +. (d *. d)
        done;
        let inv = 1. /. sqrt ((!var /. fcols) +. eps) in
        let mean_dy = ref 0. and mean_dyy = ref 0. in
        for j = 0 to cols - 1 do
          mean_dy := !mean_dy +. dyd.(base + j);
          mean_dyy := !mean_dyy +. (dyd.(base + j) *. yd.(base + j))
        done;
        let mean_dy = !mean_dy /. fcols and mean_dyy = !mean_dyy /. fcols in
        for j = 0 to cols - 1 do
          dxd.(base + j) <-
            inv
            *. (dyd.(base + j) -. mean_dy -. (yd.(base + j) *. mean_dyy))
        done
      done;
      accumulate (x_id 0) dx
    | Op.Batch_norm ->
      (* inference form: y = (x - mu)/sigma * gamma + beta with frozen
         mu/sigma; gradients to x, gamma, beta *)
      let xin = x 0 in
      let w = param_of n in
      let nb, c, h, wd = nchw xin in
      let eps = 1e-5 in
      let row r i = Tensor.get w [| r; i |] in
      let dwp = zeros_like w in
      let dx = zeros_like xin in
      for ci = 0 to c - 1 do
        let mu = row 0 ci in
        let sigma = sqrt (Float.abs (row 1 ci) +. eps) in
        let gamma = row 2 ci in
        let dgamma = ref 0. and dbeta = ref 0. in
        for ni = 0 to nb - 1 do
          for hi = 0 to h - 1 do
            for wi = 0 to wd - 1 do
              let d = Tensor.get dy [| ni; ci; hi; wi |] in
              let xv = Tensor.get xin [| ni; ci; hi; wi |] in
              Tensor.set dx [| ni; ci; hi; wi |] (d *. gamma /. sigma);
              dgamma := !dgamma +. (d *. (xv -. mu) /. sigma);
              dbeta := !dbeta +. d
            done
          done
        done;
        Tensor.set dwp [| 2; ci |] !dgamma;
        Tensor.set dwp [| 3; ci |] !dbeta
      done;
      accumulate_param n.Graph.node_name dwp;
      accumulate (x_id 0) dx
    | Op.Upsample { factor } ->
      (* gradient of nearest upsample: sum each f x f output block back
         into its source pixel *)
      let dx = zeros_like (x 0) in
      Tensor.iteri
        (fun idx v ->
          let src =
            [| idx.(0); idx.(1); idx.(2) / factor; idx.(3) / factor |]
          in
          Tensor.set dx src (Tensor.get dx src +. v))
        dy;
      accumulate (x_id 0) dx
    | Op.Concat { axis } ->
      let offset = ref 0 in
      List.iter
        (fun input ->
          let xt = value input in
          let d = Shape.dim (Tensor.shape xt) axis in
          let slice =
            Tensor.init ~dtype:Ascend_arch.Precision.Fp32 (Tensor.shape xt)
              (fun idx ->
                let idx' = Array.copy idx in
                idx'.(axis) <- idx'.(axis) + !offset;
                Tensor.get dy idx')
          in
          offset := !offset + d;
          accumulate input slice)
        n.Graph.inputs
    | Op.Embedding { vocab_size; hidden } ->
      let ids = x 0 in
      let dtab =
        Tensor.create ~dtype:Ascend_arch.Precision.Fp32
          (Shape.matrix vocab_size hidden)
      in
      let idd = Tensor.data ids in
      let dyd = Tensor.data dy and dtd = Tensor.data dtab in
      Array.iteri
        (fun i idv ->
          let id = max 0 (min (vocab_size - 1) (int_of_float idv)) in
          for j = 0 to hidden - 1 do
            dtd.((id * hidden) + j) <-
              dtd.((id * hidden) + j) +. dyd.((i * hidden) + j)
          done)
        idd;
      accumulate_param n.Graph.node_name dtab
    | Op.Kv_attention _ ->
      (* the KV cache is serving-side state, not a differentiable graph
         tensor; training cost of attention is modelled in Training *)
      invalid_arg "Autodiff.backward: kv_attention is inference-only"
  in
  (* reverse topological order = reverse declaration order *)
  List.iter
    (fun (n : Graph.node) ->
      match Hashtbl.find_opt grads n.Graph.id with
      | Some dy -> backprop n dy
      | None -> ())
    (List.rev (Graph.nodes g));
  let input_grads =
    List.filter_map
      (fun (n : Graph.node) ->
        match n.Graph.op with
        | Op.Input -> (
          match Hashtbl.find_opt grads n.Graph.id with
          | Some gt -> Some (n.Graph.node_name, gt)
          | None -> None)
        | _ -> None)
      (Graph.nodes g)
  in
  {
    input_grads;
    param_grads = Hashtbl.fold (fun k v acc -> (k, v) :: acc) param_grads [];
  }

let loss g params ~inputs =
  match Eval.run g params ~inputs with
  | [ (_, t) ] -> Tensor.fold ( +. ) 0. t
  | _ -> invalid_arg "Autodiff.loss: expected one output"

let numeric_param_grad g params ~inputs ~param ~index ?(eps = 1e-4) () =
  match Eval.find_param params param with
  | None -> invalid_arg ("Autodiff.numeric_param_grad: no parameter " ^ param)
  | Some t ->
    let original = Tensor.get_flat t index in
    Tensor.set_flat t index (original +. eps);
    let up = loss g params ~inputs in
    Tensor.set_flat t index (original -. eps);
    let down = loss g params ~inputs in
    Tensor.set_flat t index original;
    (up -. down) /. (2. *. eps)
