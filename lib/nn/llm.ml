module Shape = Ascend_tensor.Shape

type config = {
  layers : int;
  hidden : int;
  heads : int;
  intermediate : int;
  vocab_size : int;
  max_position : int;
}

let tiny_config =
  { layers = 2; hidden = 256; heads = 4; intermediate = 1024;
    vocab_size = 8192; max_position = 512 }

let small_config =
  { layers = 4; hidden = 512; heads = 8; intermediate = 2048;
    vocab_size = 16384; max_position = 1024 }

(* pre-LN decoder block on a rank-3 [batch; tokens; hidden] stream *)
let decoder_block g ~cfg ~cache_len ~tag x =
  let { hidden; heads; intermediate; _ } = cfg in
  let ln1 = Graph.layer_norm g ~name:(tag ^ ".ln1") x in
  let q = Graph.linear g ~name:(tag ^ ".q") ~out_features:hidden ln1 in
  let k = Graph.linear g ~name:(tag ^ ".k") ~out_features:hidden ln1 in
  let v = Graph.linear g ~name:(tag ^ ".v") ~out_features:hidden ln1 in
  let attn = Graph.kv_attention g ~name:(tag ^ ".kvattn") ~heads ~cache_len q k v in
  let proj = Graph.linear g ~name:(tag ^ ".attn.out") ~out_features:hidden attn in
  let res1 = Graph.add g ~name:(tag ^ ".attn.residual") proj x in
  let ln2 = Graph.layer_norm g ~name:(tag ^ ".ln2") res1 in
  let ffn1 = Graph.linear g ~name:(tag ^ ".ffn.1") ~out_features:intermediate ln2 in
  let act = Graph.gelu g ~name:(tag ^ ".ffn.gelu") ffn1 in
  let ffn2 = Graph.linear g ~name:(tag ^ ".ffn.2") ~out_features:hidden act in
  Graph.add g ~name:(tag ^ ".ffn.residual") ffn2 res1

let build ~phase ?(batch = 1) ?(dtype = Ascend_arch.Precision.Fp16) ~tokens
    ~cache_len cfg =
  if cfg.hidden mod cfg.heads <> 0 then
    invalid_arg "Llm.build: hidden not divisible by heads";
  if batch < 1 then invalid_arg "Llm.build: batch < 1";
  if tokens < 1 then invalid_arg "Llm.build: tokens < 1";
  if cache_len < 0 then invalid_arg "Llm.build: negative cache_len";
  if cache_len + tokens > cfg.max_position then
    invalid_arg "Llm.build: cache_len + tokens exceeds max_position";
  let g = Graph.create ~name:("llm." ^ phase) ~dtype in
  let ids = Graph.input g ~name:"input_ids" (Shape.matrix batch tokens) in
  let x =
    ref
      (Graph.embedding g ~name:"embeddings" ~vocab_size:cfg.vocab_size
         ~hidden:cfg.hidden ids)
  in
  for layer = 0 to cfg.layers - 1 do
    x :=
      decoder_block g ~cfg ~cache_len
        ~tag:(Printf.sprintf "layer%d" layer)
        !x
  done;
  let ln_f = Graph.layer_norm g ~name:"ln_f" !x in
  let logits =
    Graph.linear g ~name:"lm_head" ~out_features:cfg.vocab_size ln_f
  in
  ignore (Graph.output g ~name:"logits" logits);
  g

let prefill ?batch ?dtype ?(seq_len = 128) cfg =
  build ~phase:"prefill" ?batch ?dtype ~tokens:seq_len ~cache_len:0 cfg

let decode ?batch ?dtype ~cache_len cfg =
  build ~phase:"decode" ?batch ?dtype ~tokens:1 ~cache_len cfg

let kv_bytes_per_token ?(dtype = Ascend_arch.Precision.Fp16) cfg =
  (* one K row + one V row per layer, per sequence position *)
  Shape.bytes (Shape.of_list [ 2; cfg.layers; cfg.hidden ]) ~dtype

let kv_cache_bytes ?dtype cfg ~tokens =
  if tokens < 0 then invalid_arg "Llm.kv_cache_bytes: negative tokens";
  tokens * kv_bytes_per_token ?dtype cfg
