(** Decoder-only LLM model builders for the two phases of autoregressive
    generation.

    Both phases share one pre-LN decoder-block structure (embedding, then
    per layer: LN, q/k/v projections, {!Op.Kv_attention}, output
    projection, residual, LN, FFN, residual; final LN + LM head), and
    differ only in the attention's chunk/cache split:

    - {b prefill} processes the whole prompt at once ([cache_len = 0],
      [tokens = seq_len]) and leaves a [seq_len]-position KV cache behind;
    - {b decode} processes one new token against a cache of [cache_len]
      positions and appends to it.

    The KV cache itself is serving-side HBM state: its traffic is costed
    inside {!Op.Kv_attention}'s workload and its residency is planned by
    {!Ascend_compiler.Memory_planner.kv_cache_bytes} and the decode
    engine, not materialised as a graph tensor. *)

type config = {
  layers : int;
  hidden : int;
  heads : int;
  intermediate : int;
  vocab_size : int;
  max_position : int;  (** cap on [cache_len + tokens] *)
}

val tiny_config : config
(** 2 layers, hidden 256, 4 heads — small enough that the exact
    cycle-level oracle stays cheap over a (batch x cache-length) sweep. *)

val small_config : config
(** 4 layers, hidden 512, 8 heads. *)

val build :
  phase:string -> ?batch:int -> ?dtype:Ascend_arch.Precision.t ->
  tokens:int -> cache_len:int -> config -> Graph.t
(** General form: a [tokens]-wide chunk against a [cache_len]-position
    cache.  Raises [Invalid_argument] when hidden is not divisible by
    heads, sizes are non-positive, or [cache_len + tokens] exceeds
    [max_position]. *)

val prefill :
  ?batch:int -> ?dtype:Ascend_arch.Precision.t -> ?seq_len:int ->
  config -> Graph.t
(** [tokens = seq_len] (default 128), [cache_len = 0]. *)

val decode :
  ?batch:int -> ?dtype:Ascend_arch.Precision.t -> cache_len:int ->
  config -> Graph.t
(** One-token decode step: [tokens = 1]. *)

val kv_bytes_per_token : ?dtype:Ascend_arch.Precision.t -> config -> int
(** HBM bytes one decoded position adds to one sequence's cache:
    K and V rows across all layers. *)

val kv_cache_bytes :
  ?dtype:Ascend_arch.Precision.t -> config -> tokens:int -> int
(** [tokens * kv_bytes_per_token] — linear in the decoded length. *)
