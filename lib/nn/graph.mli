(** DNN computation graphs ("Graph" in the paper's software stack, §5.1):
    a DAG of operator nodes with inferred shapes, built through a typed
    builder API.  Node creation order is a valid topological order. *)

type node = private {
  id : int;
  node_name : string;
  op : Op.t;
  inputs : int list;       (** ids of producer nodes *)
  out_shape : Ascend_tensor.Shape.t;
  dtype : Ascend_arch.Precision.t;
}

type t

val create : name:string -> dtype:Ascend_arch.Precision.t -> t
val name : t -> string
val dtype : t -> Ascend_arch.Precision.t

val nodes : t -> node list
(** In topological (creation) order. *)

val node_count : t -> int
val find : t -> int -> node
val consumers : t -> int -> node list
val outputs : t -> node list

(** {2 Builders} — each returns the new node's id.  [?name] defaults to
    ["<op><id>"]. *)

val input : t -> ?name:string -> Ascend_tensor.Shape.t -> int

val conv2d :
  t -> ?name:string -> ?stride:int -> ?padding:int -> ?groups:int ->
  cout:int -> k:int -> int -> int

val conv2d_rect :
  t -> ?name:string -> ?stride:int -> ?padding:int -> ?groups:int ->
  cout:int -> kh:int -> kw:int -> int -> int

val depthwise_conv2d :
  t -> ?name:string -> ?stride:int -> ?padding:int -> k:int -> int -> int
(** groups = channels. *)

val linear : t -> ?name:string -> out_features:int -> int -> int
val matmul : t -> ?name:string -> ?transpose_b:bool -> int -> int -> int
val max_pool : t -> ?name:string -> kernel:int -> stride:int -> int -> int
val avg_pool : t -> ?name:string -> kernel:int -> stride:int -> int -> int
val global_avg_pool : t -> ?name:string -> int -> int
val activation : t -> ?name:string -> Op.activation -> int -> int
val relu : t -> ?name:string -> int -> int
val relu6 : t -> ?name:string -> int -> int
val gelu : t -> ?name:string -> int -> int
val batch_norm : t -> ?name:string -> int -> int
val layer_norm : t -> ?name:string -> int -> int
val softmax : t -> ?name:string -> int -> int
val add : t -> ?name:string -> int -> int -> int
val mul : t -> ?name:string -> int -> int -> int
val concat : t -> ?name:string -> axis:int -> int list -> int
val embedding : t -> ?name:string -> vocab_size:int -> hidden:int -> int -> int

val kv_attention :
  t -> ?name:string -> heads:int -> cache_len:int -> int -> int -> int -> int
(** [kv_attention g ~heads ~cache_len q k v]: causal multi-head attention
    of the (projected) q/k/v chunk against a KV cache of [cache_len]
    positions — see {!Op.Kv_attention}. *)

val upsample : t -> ?name:string -> factor:int -> int -> int
val reshape : t -> ?name:string -> int list -> int -> int
val transpose_last_two : t -> ?name:string -> int -> int
val output : t -> ?name:string -> int -> int

val add_node : t -> ?name:string -> op:Op.t -> int list -> int
(** Generic node insertion with shape inference; the typed builders above
    all route through this. *)

val validate : t -> (unit, string) result
(** Checks reference integrity, acyclicity (by construction), single
    output presence, and re-runs shape inference on every node. *)

val total_params : t -> int
(** Learned parameter element count. *)

val pp_summary : Format.formatter -> t -> unit
