module Shape = Ascend_tensor.Shape
module Precision = Ascend_arch.Precision

type gemm = { count : int; m : int; k : int; n : int }

type t = {
  cube_macs : int;
  vector_elems : float;
  gemms : gemm list;
  input_bytes : int;
  weight_bytes : int;
  output_bytes : int;
}

let zero =
  {
    cube_macs = 0;
    vector_elems = 0.;
    gemms = [];
    input_bytes = 0;
    weight_bytes = 0;
    output_bytes = 0;
  }

let combine a b =
  {
    cube_macs = a.cube_macs + b.cube_macs;
    vector_elems = a.vector_elems +. b.vector_elems;
    gemms = a.gemms @ b.gemms;
    input_bytes = a.input_bytes + b.input_bytes;
    weight_bytes = a.weight_bytes + b.weight_bytes;
    output_bytes = a.output_bytes + b.output_bytes;
  }

let gemm_macs { count; m; k; n } = count * m * k * n

let of_node g (node : Graph.node) =
  let dtype = node.dtype in
  let in_shapes = List.map (fun i -> (Graph.find g i).out_shape) node.inputs in
  let input_bytes =
    Ascend_util.Stats.sum_int
      (List.map (fun s -> Shape.bytes s ~dtype) in_shapes)
  in
  let output_bytes = Shape.bytes node.out_shape ~dtype in
  let weight_bytes =
    match in_shapes with
    | [ s ] -> (
      match Op.weight_shape node.op ~input:s with
      | Some ws -> Shape.bytes ws ~dtype
      | None -> 0)
    | _ -> 0
  in
  let out_elems = float_of_int (Shape.numel node.out_shape) in
  let base =
    { zero with input_bytes; weight_bytes; output_bytes }
  in
  match (node.op, List.map Shape.to_list in_shapes) with
  | Op.Conv2d { cout; kh; kw; groups; _ }, [ [ n; cin; _; _ ] ] ->
    let oh = Shape.dim node.out_shape 2 and ow = Shape.dim node.out_shape 3 in
    let cin_g = cin / groups and cout_g = cout / groups in
    let macs_total = n * oh * ow * cout_g * cin_g * kh * kw * groups in
    if Op.is_cube_op node.op then
      (* img2col GEMM per group: M = n*oh*ow, K = cin_g*kh*kw, N = cout_g *)
      {
        base with
        cube_macs = macs_total;
        gemms =
          [ { count = groups; m = n * oh * ow; k = cin_g * kh * kw; n = cout_g } ];
      }
    else
      (* depthwise: one vector element-op per MAC *)
      { base with vector_elems = float_of_int macs_total }
  | Op.Linear { out_features }, [ dims ] ->
    let in_features = List.hd (List.rev dims) in
    let batch = List.fold_left ( * ) 1 dims / in_features in
    let macs = batch * in_features * out_features in
    {
      base with
      cube_macs = macs;
      gemms = [ { count = 1; m = batch; k = in_features; n = out_features } ];
    }
  | Op.Matmul { transpose_b }, [ a; b ] ->
    let rev_a = List.rev a and rev_b = List.rev b in
    let k = List.hd rev_a and m = List.hd (List.tl rev_a) in
    let n =
      if transpose_b then List.hd (List.tl rev_b) else List.hd rev_b
    in
    let batch = List.fold_left ( * ) 1 a / (m * k) in
    {
      base with
      cube_macs = batch * m * k * n;
      gemms = [ { count = batch; m; k; n } ];
    }
  | Op.Kv_attention { heads; cache_len }, [ [ b; t; h ]; _; _ ] ->
    let d = h / heads in
    (* token t of the chunk attends over span = cache_len + t + 1; the
       batched kernel pads every row to the mean span (ceil), which is
       exact for a single-token decode step *)
    let span_total = (t * cache_len) + (t * (t + 1) / 2) in
    let avg_span = (span_total + t - 1) / t in
    let scores = { count = b * heads; m = t; k = d; n = avg_span } in
    let context = { count = b * heads; m = t; k = avg_span; n = d } in
    (* K and V cache rows stream in from HBM; the chunk's k/v rows are
       appended back, so the cache grows by t positions per call *)
    let cache_read_bytes =
      if cache_len = 0 then 0
      else 2 * Shape.bytes (Shape.of_list [ b; cache_len; h ]) ~dtype
    in
    let cache_append_bytes =
      2 * Shape.bytes (Shape.of_list [ b; t; h ]) ~dtype
    in
    {
      base with
      cube_macs = gemm_macs scores + gemm_macs context;
      gemms = [ scores; context ];
      (* row softmax over the score matrix: max, exp-sub, sum, div *)
      vector_elems = float_of_int (b * heads * span_total) *. 4.;
      input_bytes = base.input_bytes + cache_read_bytes;
      output_bytes = base.output_bytes + cache_append_bytes;
    }
  | (Op.Pool _ | Op.Global_avg_pool | Op.Activation _ | Op.Batch_norm
    | Op.Layer_norm | Op.Softmax | Op.Add | Op.Mul | Op.Concat _
    | Op.Embedding _ | Op.Upsample _ | Op.Reshape _ | Op.Transpose_last_two), _ ->
    { base with vector_elems = out_elems *. Op.vector_passes node.op }
  | (Op.Input | Op.Output), _ -> base
  | (Op.Conv2d _ | Op.Linear _ | Op.Matmul _ | Op.Kv_attention _), _ ->
    invalid_arg "Workload.of_node: malformed node inputs"

let of_graph g =
  List.fold_left (fun acc n -> combine acc (of_node g n)) zero (Graph.nodes g)

let total_flops t = (2. *. float_of_int t.cube_macs) +. t.vector_elems

let pp ppf t =
  Format.fprintf ppf
    "cube %.3f GMACs, vector %.3f Gelems, %d GEMMs, in %d B, w %d B, out %d B"
    (float_of_int t.cube_macs /. 1e9)
    (t.vector_elems /. 1e9)
    (List.length t.gemms) t.input_bytes t.weight_bytes t.output_bytes
