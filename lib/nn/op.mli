(** Operator vocabulary of the layer IR, with shape inference.

    Operators map onto the Ascend execution units per the paper's Table 2:
    convolution / FC / matmul run on the cube; normalisation, activation,
    format transfer, pooling and elementwise arithmetic run on the vector
    unit; control stays on the scalar unit.  Depthwise convolution has no
    profitable cube mapping (k = 1 per channel) and executes on the vector
    unit — the reason MobileNet is vector-hungry in Figure 6. *)

type pool_kind = Max_pool | Avg_pool

type activation = Relu | Relu6 | Gelu | Sigmoid | Tanh

type t =
  | Input
  | Conv2d of {
      cout : int;
      kh : int;
      kw : int;
      stride : int;
      padding : int;
      groups : int;
    }
  | Linear of { out_features : int }
  | Matmul of { transpose_b : bool }
      (** two-input GEMM on the trailing two dims; leading dims must agree
          and are treated as batch. *)
  | Pool of { kind : pool_kind; kernel : int; stride : int }
  | Global_avg_pool
  | Activation of activation
  | Batch_norm  (** inference-folded scale + shift *)
  | Layer_norm
  | Softmax     (** over the last dimension *)
  | Add
  | Mul
  | Concat of { axis : int }
  | Embedding of { vocab_size : int; hidden : int }
  | Kv_attention of { heads : int; cache_len : int }
      (** Causal multi-head attention against a KV cache of [cache_len]
          already-decoded positions.  Three operands (projected q, k, v),
          each [batch; tokens; hidden]: token [t] of the new chunk attends
          over [cache_len + t + 1] positions — the cached prefix plus the
          causal part of the chunk — and the chunk's k/v rows are appended
          to the cache.  Prefill is [cache_len = 0, tokens = seq]; a decode
          step is [cache_len = L, tokens = 1].  The cache itself lives in
          HBM and is costed as operand traffic ({!Workload}), not as a
          graph tensor. *)
  | Upsample of { factor : int }
      (** nearest-neighbour spatial upsample of an NCHW tensor — the FPN
          top-down pathway; executes on the vector unit as a format
          transfer *)
  | Reshape of int list
  | Transpose_last_two
  | Output

val name : t -> string
val pp : Format.formatter -> t -> unit

val infer_shape : t -> Ascend_tensor.Shape.t list -> Ascend_tensor.Shape.t
(** Output shape from input shapes.  Raises [Invalid_argument] with a
    descriptive message when the operator/shape combination is illegal. *)

val arity : t -> int
(** Expected number of inputs (3 for Kv_attention, 2 for Matmul/Add/Mul,
    1 otherwise; Concat accepts >= 2 and reports 2). *)

val weight_shape : t -> input:Ascend_tensor.Shape.t -> Ascend_tensor.Shape.t option
(** Shape of the learned parameter tensor, if the op has one. *)

val is_cube_op : t -> bool
(** True when the op's bulk compute maps to the cube unit (depthwise
    convolutions return false). *)

val vector_passes : t -> float
(** Average number of read-modify-write passes the vector unit makes over
    the output elements (e.g. softmax makes ~4: max, exp-sub, sum, div). *)
