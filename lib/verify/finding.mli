(** Typed findings reported by the static verifier ({!Ascend_verify}),
    the whole-SoC schedule analyzer ({!Soc}) and the dynamic
    shadow-state sanitizer ([Ascend_core_sim.Sanitizer]).

    Every checker in the repository funnels its diagnoses through this
    one type so reports compose: the per-core linter, the SoC-level race
    detector and the runtime sanitizer all print, sort and serialise
    identically — which is what makes the differential
    lint-vs-sanitize gate a byte comparison. *)

open Ascend_isa

type severity = Error | Warning

type kind =
  | Deadlock
      (** a [Wait_flag] no interleaving can satisfy: cyclic cross-pipe
          waits, or a wait whose ordinal exceeds the total set count *)
  | Hazard of { dep : string }
      (** unsynchronised conflicting accesses to one (buffer, slot);
          [dep] is "RAW", "WAR" or "WAW" *)
  | Peak_mismatch
      (** declared [buffer_peak] disagrees with the footprint recomputed
          (statically or by the sanitizer's shadow state) from the
          instruction stream; understated = unsound (error), overstated
          = wasteful (warning) *)
  | Capacity_overflow
      (** a buffer footprint exceeds the core config's capacity *)
  | Flag_leak
      (** a flag is still set when the program ends — it would satisfy a
          wait in whatever runs next on the core *)
  | Malformed
      (** structural problem: bad flag id, illegal move, unmapped pipe *)
  | Soc_race of { dep : string }
      (** cross-core RAW/WAR/WAW: two tasks on different cores touch
          overlapping HBM byte ranges and no schedule edge (data
          dependency, memory-reuse anti-dependency or barrier instant)
          orders them; [dep] is "RAW", "WAR" or "WAW" *)
  | Soc_deadlock
      (** the fused-group schedule's dependency graph has a cycle, or a
          dependency on a task that does not exist *)
  | Soc_overcommit of { resource : string }
      (** shared-memory capacity overcommit across the whole SoC;
          [resource] is ["LLC"] (concurrent working set, warning) or
          ["HBM"] (resident weights + live activation regions, error) *)
  | Uninit_read
      (** dynamic: a (buffer, slot) is read before any write established
          it, or a read extends past the bytes actually written *)
  | Slot_overflow
      (** dynamic: an in-place write touches more bytes than the slot's
          allocating write established *)
  | Coll_unmatched
      (** a collective-schedule step contains a send with no mirroring
          recv (or vice versa): same link, byte count, chunk range and
          reduce/copy mode — the transfer can never complete *)
  | Coll_deadlock
      (** the collective schedule's step dependency graph has a cycle,
          or a dependency on a step that does not exist *)
  | Coll_overcommit of { resource : string }
      (** claimed bandwidth on one link within one step exceeds its
          capacity ([resource] = ["link"]), or a fleet placement's
          policy-reachable resident weights exceed a node's HBM
          ([resource] = ["HBM"]) *)
  | Coll_incomplete
      (** all-reduce correctness violated: some chip's contribution to
          some chunk never reaches some other chip *)

type t = {
  kind : kind;
  severity : severity;
  index : int option;
      (** offending instruction index in program order (per-core
          checks), or task id (SoC-level checks) *)
  pipe : Pipe.t option;
  buffer : Buffer_id.t option;  (** buffer involved, when known *)
  message : string;
}

val make :
  ?severity:severity -> ?index:int -> ?pipe:Pipe.t ->
  ?buffer:Buffer_id.t -> kind -> string -> t
(** [severity] defaults to [Error]. *)

val kind_name : kind -> string
(** Stable slug, e.g. ["hazard/RAW"], ["soc-overcommit/LLC"]. *)

val severity_name : severity -> string
val is_error : t -> bool

val compare : t -> t -> int
(** Total structural order; used to sort findings deterministically
    before printing or serialising. *)

val pp : Format.formatter -> t -> unit
(** ["[severity] kind @index (pipe, buffer): message"], omitting the
    parts that are unknown. *)

val to_string : t -> string

val to_json : t -> Ascend_util.Json.t
(** Object with the pinned field order [kind], [severity], [index],
    [pipe], [buffer], [message] — the differential CI gate byte-compares
    documents built from these. *)
