(** Static happens-before verifier and hazard linter for compiled Ascend
    core programs.

    Analyses an [Ascend_isa.Program.t] against an [Ascend_arch.Config.t]
    without executing it:

    - deadlock detection over the per-pipe program-order + flag-edge
      happens-before graph ([Hb]);
    - RAW/WAR/WAW hazard detection between buffer accesses that no sync
      edge orders (the double-buffering race detector);
    - independent buffer-peak recomputation cross-checked against the
      program's declared [buffer_peak] and the config's capacities;
    - flag-leak detection (flags still set at program end).

    [install ()] hooks the analysis into [Program.validate ~strict:true];
    the [ascend] umbrella library installs it at link time. *)

open Ascend_isa
module Finding = Finding
module Hb = Hb
module Soc = Soc
module Cluster = Cluster

let kind_str = function
  | Instruction.Read -> "read"
  | Instruction.Write -> "write"

(* ------------------------------------------------------------------ *)
(* Hazards: scan each (buffer, slot)'s accesses in a topological order
   of the happens-before graph, keeping the frontier — the last write
   plus every read issued since.  Each new access must be HB-ordered
   after the frontier entries it conflicts with; the frontier argument
   makes this sound: if some older conflicting access were unordered
   with the current one, it was already flagged when it met the frontier
   of its time.  [External] is skipped — it is host memory where
   distinct tensors share slot 0 by construction. *)

let hazard_findings (g : Hb.t) =
  let module Tbl = Hashtbl in
  let frontier : (Buffer_id.t * int, (int * Instruction.access) option ref
                                     * (int * Instruction.access) list ref)
      Tbl.t =
    Tbl.create 64
  in
  let findings = ref [] in
  let report dep i j (a : Instruction.access) =
    let pipe =
      if g.Hb.lane.(i) >= 0 then List.nth_opt Pipe.all g.Hb.lane.(i) else None
    in
    findings :=
      Finding.make ~index:i ?pipe ~buffer:a.buffer (Finding.Hazard { dep })
        (Printf.sprintf
           "%s hazard on %s slot %d: instruction %d %ss it but is not \
            ordered after instruction %d's %s — no flag or barrier \
            separates them"
           dep (Buffer_id.name a.buffer) a.slot i (kind_str a.kind) j
           (match dep with "RAW" | "WAW" -> "write" | _ -> "read"))
      :: !findings
  in
  List.iter
    (fun i ->
      let accs = Instruction.accesses g.Hb.instrs.(i) in
      let reads, writes =
        List.partition (fun (a : Instruction.access) -> a.kind = Read) accs
      in
      let visit (a : Instruction.access) =
        if not (Buffer_id.equal a.buffer Buffer_id.External) then begin
          let key = (a.buffer, a.slot) in
          let last_write, reads_since =
            match Tbl.find_opt frontier key with
            | Some v -> v
            | None ->
              let v = (ref None, ref []) in
              Tbl.add frontier key v;
              v
          in
          match a.kind with
          | Read ->
            (match !last_write with
            | Some (j, _) when not (Hb.hb g j i) -> report "RAW" i j a
            | _ -> ());
            reads_since := (i, a) :: !reads_since
          | Write ->
            (match !last_write with
            | Some (j, _) when not (Hb.hb g j i) -> report "WAW" i j a
            | _ -> ());
            List.iter
              (fun (j, _) -> if not (Hb.hb g j i) then report "WAR" i j a)
              !reads_since;
            last_write := Some (i, a);
            reads_since := []
        end
      in
      (* reads of an instruction logically precede its writes *)
      List.iter visit reads;
      List.iter visit writes)
    g.Hb.topo;
  List.rev !findings

(* ------------------------------------------------------------------ *)

let peak_findings (config : Ascend_arch.Config.t) (p : Program.t) =
  let derived = Program.derived_buffer_peak p in
  let declared buf =
    match List.assoc_opt buf p.Program.buffer_peak with
    | Some v -> v
    | None -> 0
  in
  List.concat_map
    (fun buf ->
      let d = match List.assoc_opt buf derived with Some v -> v | None -> 0 in
      let decl = declared buf in
      let under =
        if decl < d then
          [
            Finding.make ~buffer:buf Finding.Peak_mismatch
              (Printf.sprintf
                 "buffer %s: declared peak %d B understates the %d B the \
                  instruction stream actually allocates"
                 (Buffer_id.name buf) decl d);
          ]
        else if decl > d then
          [
            Finding.make ~severity:Finding.Warning ~buffer:buf
              Finding.Peak_mismatch
              (Printf.sprintf
                 "buffer %s: declared peak %d B overstates the %d B the \
                  instruction stream allocates"
                 (Buffer_id.name buf) decl d);
          ]
        else []
      in
      let over =
        match Buffer_id.capacity_bytes config buf with
        | Some cap when d > cap ->
          [
            Finding.make ~buffer:buf Finding.Capacity_overflow
              (Printf.sprintf
                 "buffer %s: recomputed footprint %d B exceeds %s's %d B \
                  capacity"
                 (Buffer_id.name buf) d config.name cap);
          ]
        | _ -> []
      in
      under @ over)
    (List.filter (fun b -> not (Buffer_id.equal b Buffer_id.External))
       Buffer_id.all)

let leak_findings (p : Program.t) =
  List.map
    (fun (f, to_, flag, net) ->
      let last_set =
        let best = ref None in
        List.iteri
          (fun i instr ->
            match instr with
            | Instruction.Set_flag { from_pipe; to_pipe; flag = fl }
              when Pipe.equal from_pipe f && Pipe.equal to_pipe to_ && fl = flag
              ->
              best := Some i
            | _ -> ())
          p.Program.instructions;
        !best
      in
      Finding.make ?index:last_set ~pipe:f Finding.Flag_leak
        (Printf.sprintf
           "flag %s->%s #%d ends the program with %d set(s) never consumed; \
            a following program's first wait on this triple would pass \
            spuriously"
           (Pipe.name f) (Pipe.name to_) flag net))
    (Program.flag_leaks p)

let structural_findings (p : Program.t) =
  List.concat
    (List.mapi
       (fun i instr ->
         match instr with
         | Instruction.Barrier -> []
         | Instruction.Set_flag { flag; _ } | Instruction.Wait_flag { flag; _ }
           when flag < 0 || flag > Program.max_flag ->
           [
             Finding.make ~index:i Finding.Malformed
               (Printf.sprintf "flag id %d out of range 0..%d" flag
                  Program.max_flag);
           ]
         | _ -> (
           match Instruction.pipe_of instr with
           | Some _ -> []
           | None ->
             [
               Finding.make ~index:i Finding.Malformed
                 "instruction maps to no pipe (illegal MTE move)";
             ]))
       p.Program.instructions)

(* ------------------------------------------------------------------ *)

let analyze (config : Ascend_arch.Config.t) (p : Program.t) =
  let structural = structural_findings p in
  let g = Hb.build p.Program.instructions in
  let deadlocks = g.Hb.findings in
  (* hazard results are only meaningful on a deadlock-free graph: stuck
     instructions never execute, so racing with them is moot *)
  let hazards = if deadlocks = [] then hazard_findings g else [] in
  structural @ deadlocks @ hazards @ peak_findings config p @ leak_findings p

let errors findings = List.filter Finding.is_error findings

let pp_report ppf findings =
  match findings with
  | [] -> Format.fprintf ppf "clean: no findings@."
  | fs ->
    List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) fs;
    let n_err = List.length (errors fs) in
    Format.fprintf ppf "%d finding(s), %d error(s)@." (List.length fs) n_err

let strict config p =
  match errors (analyze config p) with
  | [] -> Ok ()
  | f :: rest ->
    Error
      (Printf.sprintf "%s%s" (Finding.to_string f)
         (match rest with
         | [] -> ""
         | _ -> Printf.sprintf " (+%d more finding(s))" (List.length rest)))

let install () = Program.strict_checker := Some strict
