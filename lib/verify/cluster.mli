(** Static verifier for cluster-level collective schedules and fleet
    placement plans — the third rung of the verification ladder
    (per-core programs in PR 1, the multi-core SoC schedule in PR 5,
    the cluster here).

    The schedule representation is deliberately neutral (plain ints,
    strings and floats), so this library needs no dependency on
    [lib/cluster]: [Ascend_cluster.Collective_schedule] expands the
    closed-form all-reduce algorithms into these schedules over the
    real server/fat-tree links, and tests build mutated ones by hand.
    [ascend_cli lint --cluster] runs [analyze] over a (topology,
    algorithm, nodes, bytes) sweep and differentially gates
    [schedule_seconds] against the closed-form
    [Collective.*_seconds]. *)

(** {1 Collective schedules} *)

type link = {
  link_id : string;
  capacity_bytes_per_s : float;
}

type op_kind = Send | Recv

type op = {
  chip : int;  (** the chip executing this op *)
  op_kind : op_kind;
  peer : int;  (** the chip on the other end of the transfer *)
  link : string;  (** link carrying the transfer (the sender's name) *)
  op_bytes : float;
  claim_bytes_per_s : float;
      (** bandwidth claimed on [link] while the op runs; transfer time
          = [op_bytes /. claim_bytes_per_s].  Concurrent transfers
          sharing a bus each claim a fraction of it — the overcommit
          check sums the claims per (step, link). *)
  chunk_lo : int;  (** half-open chunk range [\[chunk_lo, chunk_hi)] *)
  chunk_hi : int;
  reduce : bool;
      (** the receiver reduces the payload into its partial value
          ([true]) or replaces it with the sender's copy ([false]) *)
}

type step = {
  step_id : int;
  deps : int list;  (** step_ids that must complete before this one *)
  latency_s : float;  (** per-step link latency, paid once per chip *)
  ops : op list;  (** all ops in a step run concurrently *)
}

type schedule = {
  sched_name : string;
  chips : int;
  chunks : int;  (** the reduced buffer is split into [chunks] pieces *)
  links : link list;
  steps : step list;
}

val op_kind_name : op_kind -> string

val analyze : schedule -> Finding.t list
(** Never raises.  Emits [Malformed] for structural problems (out of
    range chips/chunks, undeclared or duplicate links, non-positive
    claims); when structurally sound, [Coll_deadlock] for cyclic or
    dangling step dependencies, [Coll_unmatched] for a send with no
    mirroring same-step recv (or vice versa), [Coll_overcommit
    {resource="link"}] when one step's claims on a link exceed its
    capacity, and — only when all of the former are clean, so every
    transfer actually runs — [Coll_incomplete] when the simulated
    contribution flow leaves some chip without some chip's
    contribution to some chunk.  An empty result means the schedule is
    a realizable, deadlock-free, capacity-respecting all-reduce. *)

val schedule_seconds : schedule -> float
(** Schedule-derived completion time: per chip, each step costs the
    slowest of the chip's transfers ([op_bytes /. claim_bytes_per_s])
    plus the step latency (steps where the chip has no op are free);
    the schedule costs the maximum over chips of the summed step
    times.  The differential gate checks this agrees with the
    closed-form model within 1e-6 relative. *)

(** {1 Fleet placement plans} *)

type placement = {
  plan_name : string;
  nodes : int;
  hbm_bytes_per_node : int option;
      (** per-node HBM capacity; [None] disables the capacity check *)
  policy : string;
      (** routing policy: ["round-robin"], ["least-loaded"] or
          ["affinity"] — anything else is a [Malformed] finding *)
  models : (string * int * int list) list;
      (** model name, weight bytes, and the nodes where its weights
          start resident (the replica set) *)
}

val predicted_page_ins : placement -> int array
(** Statically predicted cold-start page-in counts per node: a model
    pages in once on every node the policy can route it to where it is
    not already resident (affinity never leaves the replica set; the
    load-spreading policies reach every node).  CI cross-checks these
    counts byte-for-byte against what [Fleet.run] observes. *)

val lint_placement : placement -> Finding.t list
(** Never raises.  [Malformed] for structural problems (bad node
    indices, duplicate or nowhere-resident models, unknown policy);
    [Coll_overcommit {resource="HBM"}] (error) for every node whose
    policy-reachable steady-state resident weights exceed
    [hbm_bytes_per_node] — the plan cannot keep serving from HBM. *)
