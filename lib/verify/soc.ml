(** Whole-SoC static race detector over a fused-group schedule.

    The per-program analysis ([Ascend_verify.analyze]) proves each core
    program internally race-free; this module lifts the same
    happens-before reasoning one level up, to the compiler's multi-core
    schedule of fused groups.  Tasks are compiled group programs pinned
    to cores; edges are the inter-core dependencies the memory planner
    and graph engine imply (producer->consumer data edges, memory-reuse
    anti-dependencies, same-core issue order).  The checks:

    - {b cross-core RAW/WAR/WAW races}: two tasks on different cores
      whose HBM byte-range footprints overlap and that no edge orders;
    - {b cross-core deadlock}: a cycle in the schedule's dependency
      graph (or a dependency on a task that does not exist);
    - {b LLC/HBM capacity overcommit}: resident weights plus peak live
      activation regions against HBM capacity (error), and the largest
      concurrent per-wave working set against LLC capacity (warning).

    The schedule representation is deliberately neutral — plain ids,
    byte ranges and tags — so this library needs no dependency on the
    compiler; [Ascend_compiler.Soc_schedule] builds plans from real
    model graphs, and tests build mutated ones by hand. *)

type region = { base : int; bytes : int }

type task = {
  id : int;
  core : int;
  tag : string;
  deps : int list;
  reads : (string * region) list;
  writes : (string * region) list;
  ext_read_bytes : int;
  ext_write_bytes : int;
  working_set_bytes : int;
}

type plan = {
  soc_name : string;
  cores : int;
  llc_bytes : int option;
  hbm_bytes : int option;
  weight_resident_bytes : int;
  tasks : task list;
}

let region_overlaps a b =
  a.bytes > 0 && b.bytes > 0
  && a.base < b.base + b.bytes
  && b.base < a.base + a.bytes

(* ------------------------------------------------------------------ *)
(* Happens-before over tasks: same-core issue order + dependency edges,
   with per-core vector clocks exactly like the per-program [Hb] graph
   (lane = core, seq = issue position on that core). *)

type hb = {
  order : task array;  (* listing order = the serial reference schedule *)
  pos_of : (int, int) Hashtbl.t;  (* task id -> position *)
  lane : int array;
  seq : int array;
  vc : int array array;
  cycle_findings : Finding.t list;
}

let build_hb (p : plan) =
  let order = Array.of_list p.tasks in
  let n = Array.length order in
  let pos_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i t -> Hashtbl.replace pos_of t.id i) order;
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  let findings = ref [] in
  let add_edge a b =
    succs.(a) <- b :: succs.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  (* same-core issue order *)
  let last_on_core = Hashtbl.create 8 in
  let lane = Array.make n 0 in
  let seq = Array.make n 0 in
  let next_seq = Hashtbl.create 8 in
  Array.iteri
    (fun i t ->
      lane.(i) <- t.core;
      let s =
        match Hashtbl.find_opt next_seq t.core with Some s -> s | None -> 0
      in
      seq.(i) <- s;
      Hashtbl.replace next_seq t.core (s + 1);
      (match Hashtbl.find_opt last_on_core t.core with
      | Some j -> add_edge j i
      | None -> ());
      Hashtbl.replace last_on_core t.core i)
    order;
  (* dependency edges *)
  Array.iteri
    (fun i t ->
      List.iter
        (fun d ->
          match Hashtbl.find_opt pos_of d with
          | Some j -> if j <> i then add_edge j i
          | None ->
            findings :=
              Finding.make ~index:t.id Finding.Soc_deadlock
                (Printf.sprintf
                   "task %s (core %d) depends on task id %d which is not in \
                    the schedule"
                   t.tag t.core d)
              :: !findings)
        t.deps)
    order;
  let cores = max 1 p.cores in
  let vc = Array.make n [||] in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let processed = Array.make n false in
  let n_processed = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    processed.(i) <- true;
    incr n_processed;
    if Array.length vc.(i) = 0 then vc.(i) <- Array.make cores (-1);
    if lane.(i) < cores then
      vc.(i).(lane.(i)) <- max vc.(i).(lane.(i)) seq.(i);
    List.iter
      (fun j ->
        if Array.length vc.(j) = 0 then vc.(j) <- Array.make cores (-1);
        Array.iteri (fun c v -> if v > vc.(j).(c) then vc.(j).(c) <- v) vc.(i);
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !n_processed < n then begin
    let stuck =
      Array.to_list order
      |> List.filteri (fun i _ -> not processed.(i))
      |> List.map (fun t -> Printf.sprintf "%s(core %d)" t.tag t.core)
    in
    findings :=
      Finding.make Finding.Soc_deadlock
        (Printf.sprintf
           "schedule dependency graph is cyclic: %d task(s) can never start \
            (%s)"
           (n - !n_processed)
           (String.concat ", " stuck))
      :: !findings
  end;
  { order; pos_of; lane; seq; vc; cycle_findings = List.rev !findings }

(* position [a] happens before (or is) position [b] *)
let hb_query g a b =
  a = b
  || Array.length g.vc.(b) > 0
     && g.lane.(a) < Array.length g.vc.(b)
     && g.seq.(a) <= g.vc.(b).(g.lane.(a))

(* ------------------------------------------------------------------ *)
(* Cross-core races: every unordered pair of tasks on different cores
   with overlapping byte-range footprints.  The listing order is the
   serial reference schedule, so the earlier task's access names the
   dependence direction (RAW: earlier writes, later reads). *)

let race_findings g =
  let n = Array.length g.order in
  let findings = ref [] in
  let report dep (a : task) (b : task) name_a name_b (ra : region) =
    findings :=
      Finding.make ~index:b.id (Finding.Soc_race { dep })
        (Printf.sprintf
           "%s race between core %d task %s (%s) and core %d task %s (%s) on \
            HBM bytes [%d..%d): no schedule edge orders them"
           dep a.core a.tag name_a b.core b.tag name_b ra.base
           (ra.base + ra.bytes))
      :: !findings
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = g.order.(i) and b = g.order.(j) in
      if a.core <> b.core && not (hb_query g i j) && not (hb_query g j i)
      then begin
        (* earlier write vs later read: RAW *)
        List.iter
          (fun (na, ra) ->
            List.iter
              (fun (nb, rb) ->
                if region_overlaps ra rb then report "RAW" a b na nb ra)
              b.reads)
          a.writes;
        (* earlier read vs later write: WAR *)
        List.iter
          (fun (na, ra) ->
            List.iter
              (fun (nb, rb) ->
                if region_overlaps ra rb then report "WAR" a b na nb ra)
              b.writes)
          a.reads;
        (* write vs write: WAW *)
        List.iter
          (fun (na, ra) ->
            List.iter
              (fun (nb, rb) ->
                if region_overlaps ra rb then report "WAW" a b na nb ra)
              b.writes)
          a.writes
      end
    done
  done;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Capacity: HBM residency (weights + live activation regions, an
   error: the plan cannot execute) and LLC working set per concurrent
   wave (a warning: it executes, but thrashes the shared cache). *)

let capacity_findings g (p : plan) =
  let n = Array.length g.order in
  let findings = ref [] in
  (match p.hbm_bytes with
  | None -> ()
  | Some cap ->
    (* a write region is live from its producer's position to its last
       reader's position *)
    let last_reader = Hashtbl.create 32 in
    Array.iteri
      (fun i (t : task) ->
        List.iter
          (fun (_, (r : region)) ->
            List.iteri
              (fun j (u : task) ->
                if j >= i then
                  let reads_it =
                    List.exists (fun (_, ru) -> region_overlaps r ru) u.reads
                  in
                  if reads_it then Hashtbl.replace last_reader (i, r.base) j)
              (Array.to_list g.order))
          t.writes)
      g.order;
    let peak = ref 0 in
    let peak_pos = ref 0 in
    for pos = 0 to n - 1 do
      let live = ref 0 in
      Array.iteri
        (fun i (t : task) ->
          List.iter
            (fun (_, (r : region)) ->
              let last =
                match Hashtbl.find_opt last_reader (i, r.base) with
                | Some j -> j
                | None -> i
              in
              if i <= pos && pos <= last then live := !live + r.bytes)
            t.writes)
        g.order;
      if !live > !peak then begin
        peak := !live;
        peak_pos := pos
      end
    done;
    let total = p.weight_resident_bytes + !peak in
    if total > cap then
      findings :=
        Finding.make
          ~index:g.order.(!peak_pos).id
          (Finding.Soc_overcommit { resource = "HBM" })
          (Printf.sprintf
             "resident weights %d B + peak live activations %d B (at task \
              %s) = %d B exceed the %d B HBM capacity"
             p.weight_resident_bytes !peak g.order.(!peak_pos).tag total cap)
        :: !findings);
  (match p.llc_bytes with
  | None -> ()
  | Some cap ->
    (* ASAP wave levels over the edge set; within a wave at most
       [cores] tasks run concurrently, so charge the largest [cores]
       working sets *)
    let level = Array.make n 0 in
    Array.iteri
      (fun i (t : task) ->
        let dep_level =
          List.fold_left
            (fun acc d ->
              match Hashtbl.find_opt g.pos_of d with
              | Some j when j < i -> max acc (level.(j) + 1)
              | _ -> acc)
            0 t.deps
        in
        (* same-core predecessor also precedes *)
        let core_level = ref dep_level in
        for j = 0 to i - 1 do
          if g.order.(j).core = t.core then
            core_level := max !core_level (level.(j) + 1)
        done;
        level.(i) <- !core_level)
      g.order;
    let by_level = Hashtbl.create 16 in
    Array.iteri
      (fun i (t : task) ->
        let cur =
          match Hashtbl.find_opt by_level level.(i) with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace by_level level.(i) (t :: cur))
      g.order;
    let worst = ref 0 and worst_level = ref 0 in
    Hashtbl.iter
      (fun lvl tasks ->
        let sets =
          List.map (fun (t : task) -> t.working_set_bytes) tasks
          |> List.sort (fun a b -> compare b a)
        in
        let rec take k = function
          | x :: rest when k > 0 -> x + take (k - 1) rest
          | _ -> 0
        in
        let ws = take (max 1 p.cores) sets in
        if ws > !worst then begin
          worst := ws;
          worst_level := lvl
        end)
      by_level;
    if !worst > cap then
      findings :=
        Finding.make ~severity:Finding.Warning
          (Finding.Soc_overcommit { resource = "LLC" })
          (Printf.sprintf
             "concurrent wave %d holds a %d B working set across %d core(s), \
              exceeding the %d B LLC — expect thrashing"
             !worst_level !worst (max 1 p.cores) cap)
        :: !findings);
  List.rev !findings

(* ------------------------------------------------------------------ *)

let analyze (p : plan) =
  match p.tasks with
  | [] -> []
  | _ ->
    let g = build_hb p in
    (* race results are only meaningful on an acyclic schedule: a stuck
       task never runs, so racing with it is moot *)
    let races = if g.cycle_findings = [] then race_findings g else [] in
    g.cycle_findings @ races @ capacity_findings g p

let pp_plan ppf (p : plan) =
  Format.fprintf ppf "soc plan %s: %d cores, %d tasks, %d B weights@."
    p.soc_name p.cores (List.length p.tasks) p.weight_resident_bytes;
  List.iter
    (fun t ->
      Format.fprintf ppf "  c%d #%-3d %-28s r:%d w:%d ext %d/%d B%s@." t.core
        t.id t.tag (List.length t.reads) (List.length t.writes)
        t.ext_read_bytes t.ext_write_bytes
        (if t.deps = [] then ""
         else " <- " ^ String.concat "," (List.map string_of_int t.deps)))
    p.tasks
