(** Happens-before graph over one core program.

    Nodes are instruction indices.  Edges:
    - program order within each pipe's issue queue (the dispatcher
      distributes instructions to per-pipe queues in program order, so
      same-pipe instructions execute in listing order);
    - [Set_flag]/[Wait_flag]: the hardware flag is a counting semaphore
      per (from, to, flag) triple.  All sets of a triple issue from
      [from_pipe] in program order and all waits block [to_pipe] in
      program order, so the k-th wait can proceed exactly when the k-th
      set has executed — giving the precise edge set_k -> wait_k;
    - [Barrier] joins and restarts every pipe.

    A wait whose ordinal is >= the triple's total set count can never be
    satisfied; a cycle through flag edges is a cross-pipe deadlock.  Both
    are detected by Kahn's algorithm: unsatisfiable waits are pinned with
    an extra phantom in-degree, and every node left unprocessed is
    transitively deadlocked.

    Reachability uses per-pipe vector clocks computed along the
    topological order: [vc.(b).(p)] is the highest lane-[p] sequence
    number that happens before (or at) node [b], so [a] happens-before
    [b] iff [seq a <= vc.(b).(lane a)] — O(V·pipes) space instead of a
    quadratic closure. *)

open Ascend_isa

type t = {
  instrs : Instruction.t array;
  lane : int array;      (** pipe index of each node; -1 for barriers *)
  seq : int array;       (** position within the node's pipe lane; -1 for barriers *)
  topo : int list;       (** topological order of executable nodes *)
  vc : int array array;  (** vc.(node).(pipe) — valid for executable nodes *)
  stuck : bool array;    (** node can never execute under any interleaving *)
  findings : Finding.t list;
}

let build instrs_list =
  let instrs = Array.of_list instrs_list in
  let n = Array.length instrs in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  let add_edge a b =
    succs.(a) <- b :: succs.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  let lane = Array.make n (-1) in
  let seq = Array.make n (-1) in
  (* per-pipe program order; barriers appear in every lane *)
  let last_in_lane = Array.make Pipe.count (-1) in
  let next_seq = Array.make Pipe.count 0 in
  let chain p i =
    if last_in_lane.(p) >= 0 then add_edge last_in_lane.(p) i;
    last_in_lane.(p) <- i
  in
  Array.iteri
    (fun i instr ->
      match instr with
      | Instruction.Barrier -> Array.iteri (fun p _ -> chain p i) last_in_lane
      | _ -> (
        match Instruction.pipe_of instr with
        | Some p ->
          let pi = Pipe.index p in
          lane.(i) <- pi;
          seq.(i) <- next_seq.(pi);
          next_seq.(pi) <- next_seq.(pi) + 1;
          chain pi i
        | None -> (* illegal move; structurally reported elsewhere *) ()))
    instrs;
  (* flag edges: k-th set -> k-th wait per (from, to, flag) triple *)
  let sets : (Pipe.t * Pipe.t * int, int list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let waits : (Pipe.t * Pipe.t * int, int list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let push tbl key i =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := i :: !r
    | None -> Hashtbl.add tbl key (ref [ i ])
  in
  Array.iteri
    (fun i instr ->
      match instr with
      | Instruction.Set_flag { from_pipe; to_pipe; flag } ->
        push sets (from_pipe, to_pipe, flag) i
      | Instruction.Wait_flag { from_pipe; to_pipe; flag } ->
        push waits (from_pipe, to_pipe, flag) i
      | _ -> ())
    instrs;
  let findings = ref [] in
  let reported_unsat = ref [] in
  Hashtbl.iter
    (fun ((f, p, flag) as key) wr ->
      let ws = List.rev !wr in
      let ss =
        match Hashtbl.find_opt sets key with
        | Some sr -> List.rev !sr
        | None -> []
      in
      let n_sets = List.length ss in
      List.iteri
        (fun k w ->
          match List.nth_opt ss k with
          | Some s -> add_edge s w
          | None ->
            (* wait ordinal k needs k+1 sets; only n_sets exist *)
            indeg.(w) <- indeg.(w) + 1;
            reported_unsat := w :: !reported_unsat;
            findings :=
              Finding.make ~index:w ~pipe:p Finding.Deadlock
                (Printf.sprintf
                   "wait #%d on flag %s->%s #%d is unsatisfiable: it is wait \
                    %d of this triple but the program only sets it %d time(s)"
                   w (Pipe.name f) (Pipe.name p) flag (k + 1) n_sets)
              :: !findings)
        ws)
    waits;
  (* Kahn topological pass with vector-clock propagation *)
  let vc = Array.make n [||] in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let topo_rev = ref [] in
  let processed = Array.make n false in
  let n_processed = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    processed.(i) <- true;
    incr n_processed;
    topo_rev := i :: !topo_rev;
    if Array.length vc.(i) = 0 then vc.(i) <- Array.make Pipe.count (-1);
    if lane.(i) >= 0 then vc.(i).(lane.(i)) <- max vc.(i).(lane.(i)) seq.(i);
    List.iter
      (fun j ->
        if Array.length vc.(j) = 0 then vc.(j) <- Array.make Pipe.count (-1);
        Array.iteri (fun p v -> if v > vc.(j).(p) then vc.(j).(p) <- v) vc.(i);
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  let stuck = Array.map not processed in
  (* every unprocessed node not explained by an unsatisfiable-ordinal wait
     is stuck behind one, or part of a cross-pipe wait cycle *)
  let unexplained =
    let tagged = !reported_unsat in
    let rec first i =
      if i >= n then None
      else if
        stuck.(i)
        && (not (List.mem i tagged))
        && match instrs.(i) with Instruction.Wait_flag _ -> true | _ -> false
      then Some i
      else first (i + 1)
    in
    first 0
  in
  (match unexplained with
  | Some i ->
    (* does a flag edge from a stuck node target this wait? then it is on
       (or behind) a genuine cross-pipe cycle rather than queued after an
       unsatisfiable wait *)
    let pipe =
      match instrs.(i) with
      | Instruction.Wait_flag { to_pipe; _ } -> Some to_pipe
      | _ -> None
    in
    findings :=
      Finding.make ~index:i ?pipe Finding.Deadlock
        (Printf.sprintf
           "wait #%d can never be reached: it sits on a cross-pipe wait \
            cycle (or behind one) — no interleaving satisfies it" i)
      :: !findings
  | None ->
    if !n_processed < n && !reported_unsat = [] then
      (* cycle with no wait? cannot happen (program-order edges are
         acyclic), but stay sound *)
      findings :=
        Finding.make Finding.Deadlock
          "happens-before graph contains a cycle" :: !findings);
  {
    instrs;
    lane;
    seq;
    topo = List.rev !topo_rev;
    vc;
    stuck;
    findings = List.rev !findings;
  }

let deadlock_free t = t.findings = []

(* [a] happens-before-or-equals [b]; both must be executable pipe-mapped
   nodes (the hazard scan only queries those). *)
let hb t a b =
  a = b
  || t.lane.(a) >= 0
     && Array.length t.vc.(b) > 0
     && t.seq.(a) <= t.vc.(b).(t.lane.(a))
