(** Typed findings reported by the static verifier. *)

open Ascend_isa

type severity = Error | Warning

type kind =
  | Deadlock
      (** a [Wait_flag] no interleaving can satisfy: cyclic cross-pipe
          waits, or a wait whose ordinal exceeds the total set count *)
  | Hazard of { dep : string }
      (** unsynchronised conflicting accesses to one (buffer, slot);
          [dep] is "RAW", "WAR" or "WAW" *)
  | Peak_mismatch
      (** declared [buffer_peak] disagrees with the footprint recomputed
          from the instruction stream (understated = unsound) *)
  | Capacity_overflow
      (** recomputed footprint exceeds the config's buffer capacity *)
  | Flag_leak
      (** a flag is still set when the program ends — it would satisfy a
          wait in whatever runs next on the core *)
  | Malformed
      (** structural problem: bad flag id, illegal move, unmapped pipe *)

type t = {
  kind : kind;
  severity : severity;
  index : int option;  (** offending instruction index, program order *)
  pipe : Pipe.t option;
  message : string;
}

let make ?(severity = Error) ?index ?pipe kind message =
  { kind; severity; index; pipe; message }

let kind_name = function
  | Deadlock -> "deadlock"
  | Hazard { dep } -> "hazard/" ^ dep
  | Peak_mismatch -> "peak-mismatch"
  | Capacity_overflow -> "capacity-overflow"
  | Flag_leak -> "flag-leak"
  | Malformed -> "malformed"

let severity_name = function Error -> "error" | Warning -> "warning"

let is_error t = t.severity = Error

let pp ppf t =
  Format.fprintf ppf "[%s] %s" (severity_name t.severity) (kind_name t.kind);
  (match t.index with
  | Some i -> Format.fprintf ppf " @@%d" i
  | None -> ());
  (match t.pipe with
  | Some p -> Format.fprintf ppf " (%s)" (Pipe.name p)
  | None -> ());
  Format.fprintf ppf ": %s" t.message

let to_string t = Format.asprintf "%a" pp t
