(** Typed findings reported by the static verifier and the dynamic
    shadow-state sanitizer. *)

open Ascend_isa

type severity = Error | Warning

type kind =
  | Deadlock
      (** a [Wait_flag] no interleaving can satisfy: cyclic cross-pipe
          waits, or a wait whose ordinal exceeds the total set count *)
  | Hazard of { dep : string }
      (** unsynchronised conflicting accesses to one (buffer, slot);
          [dep] is "RAW", "WAR" or "WAW" *)
  | Peak_mismatch
      (** declared [buffer_peak] disagrees with the footprint recomputed
          from the instruction stream (understated = unsound) *)
  | Capacity_overflow
      (** recomputed footprint exceeds the config's buffer capacity *)
  | Flag_leak
      (** a flag is still set when the program ends — it would satisfy a
          wait in whatever runs next on the core *)
  | Malformed
      (** structural problem: bad flag id, illegal move, unmapped pipe *)
  | Soc_race of { dep : string }
      (** cross-core RAW/WAR/WAW: two tasks on different cores touch
          overlapping HBM byte ranges and no schedule edge orders them *)
  | Soc_deadlock
      (** the fused-group schedule's dependency graph has a cycle (or a
          dependency on a task that does not exist) *)
  | Soc_overcommit of { resource : string }
      (** shared-memory capacity overcommit across the whole SoC;
          [resource] is "LLC" or "HBM" *)
  | Uninit_read
      (** dynamic: a (buffer, slot) is read before any write established
          it, or a read extends past the bytes actually written *)
  | Slot_overflow
      (** dynamic: an in-place write touches more bytes than the slot's
          allocating write established *)
  | Coll_unmatched
      (** a collective-schedule step contains a send with no mirroring
          recv (or vice versa) — the transfer can never complete *)
  | Coll_deadlock
      (** the collective schedule's step dependency graph has a cycle,
          or a dependency on a step that does not exist *)
  | Coll_overcommit of { resource : string }
      (** claimed bandwidth on one link within one step exceeds its
          capacity ([resource] = "link"), or a placement's resident
          weights exceed a node's HBM ([resource] = "HBM") *)
  | Coll_incomplete
      (** all-reduce correctness violated: some chip's contribution to
          some chunk never reaches some other chip *)

type t = {
  kind : kind;
  severity : severity;
  index : int option;  (** offending instruction index, program order *)
  pipe : Pipe.t option;
  buffer : Buffer_id.t option;  (** buffer involved, when known *)
  message : string;
}

let make ?(severity = Error) ?index ?pipe ?buffer kind message =
  { kind; severity; index; pipe; buffer; message }

let kind_name = function
  | Deadlock -> "deadlock"
  | Hazard { dep } -> "hazard/" ^ dep
  | Peak_mismatch -> "peak-mismatch"
  | Capacity_overflow -> "capacity-overflow"
  | Flag_leak -> "flag-leak"
  | Malformed -> "malformed"
  | Soc_race { dep } -> "soc-race/" ^ dep
  | Soc_deadlock -> "soc-deadlock"
  | Soc_overcommit { resource } -> "soc-overcommit/" ^ resource
  | Uninit_read -> "uninit-read"
  | Slot_overflow -> "slot-overflow"
  | Coll_unmatched -> "coll-unmatched"
  | Coll_deadlock -> "coll-deadlock"
  | Coll_overcommit { resource } -> "coll-overcommit/" ^ resource
  | Coll_incomplete -> "coll-incomplete"

let severity_name = function Error -> "error" | Warning -> "warning"

let is_error t = t.severity = Error

let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf t =
  Format.fprintf ppf "[%s] %s" (severity_name t.severity) (kind_name t.kind);
  (match t.index with
  | Some i -> Format.fprintf ppf " @@%d" i
  | None -> ());
  (match (t.pipe, t.buffer) with
  | Some p, Some b ->
    Format.fprintf ppf " (%s, %s)" (Pipe.name p) (Buffer_id.name b)
  | Some p, None -> Format.fprintf ppf " (%s)" (Pipe.name p)
  | None, Some b -> Format.fprintf ppf " (%s)" (Buffer_id.name b)
  | None, None -> ());
  Format.fprintf ppf ": %s" t.message

let to_string t = Format.asprintf "%a" pp t

(* deterministic field order: kind, severity, index, pipe, buffer,
   message — pinned by a golden test, relied on by the differential
   sweep's byte comparison *)
let to_json t =
  let module J = Ascend_util.Json in
  J.Obj
    [
      ("kind", J.String (kind_name t.kind));
      ("severity", J.String (severity_name t.severity));
      ("index", match t.index with Some i -> J.Int i | None -> J.Null);
      ( "pipe",
        match t.pipe with Some p -> J.String (Pipe.name p) | None -> J.Null );
      ( "buffer",
        match t.buffer with
        | Some b -> J.String (Buffer_id.name b)
        | None -> J.Null );
      ("message", J.String t.message);
    ]
