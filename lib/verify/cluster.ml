(** Static verifier for cluster-level collective schedules and fleet
    placement plans.

    PR 1 verified single-core programs, PR 5 the multi-core SoC
    schedule; this module is the third rung of the ladder — the
    cluster.  A collective schedule is the explicit expansion of an
    all-reduce algorithm into per-chip send/recv steps over concrete
    links (HCCS edges inside a server, the PCI-E group bus, NIC links
    on the fat tree).  The checks:

    - {b unmatched transfers}: every send in a step must have the
      mirroring recv in the same step (rendezvous rounds) — same link,
      byte count, chunk range and reduce/copy mode;
    - {b deadlock}: the step dependency graph must be acyclic and
      closed (no dependency on a missing step);
    - {b link overcommit}: within one step, the bandwidth claims of all
      transfers sharing a link must not exceed its capacity;
    - {b reduction completeness}: simulating chunk-contribution flow
      over the schedule, every chip's contribution to every chunk must
      reach every chip — the all-reduce correctness invariant.

    The schedule representation is deliberately neutral — plain ints,
    strings and floats — so this library needs no dependency on
    [lib/cluster]; [Ascend_cluster.Collective_schedule] builds
    schedules from real topologies, and tests build mutated ones by
    hand.  [schedule_seconds] prices a schedule (max over chips of its
    summed step times), which the CLI's differential gate compares
    against the closed-form [Collective.*_seconds].

    The same module lints fleet placement plans: per-node resident
    weights against HBM capacity (steady state under the routing
    policy — an unservable plan is an error) and statically predicted
    cold-start page-in counts, which CI cross-checks against what
    [Fleet.run] actually observes. *)

(* ------------------------------------------------------------------ *)
(* Collective schedules *)

type link = { link_id : string; capacity_bytes_per_s : float }

type op_kind = Send | Recv

type op = {
  chip : int;           (* the chip executing this op *)
  op_kind : op_kind;
  peer : int;           (* the chip on the other end *)
  link : string;        (* link carrying the transfer (sender's name) *)
  op_bytes : float;
  claim_bytes_per_s : float;
      (* bandwidth claimed on [link] while the op runs; transfer time =
         op_bytes / claim.  Concurrent transfers sharing a bus each
         claim a fraction — the overcommit check sums the claims. *)
  chunk_lo : int;       (* half-open chunk range [chunk_lo, chunk_hi) *)
  chunk_hi : int;
  reduce : bool;        (* receiver reduces into its partial (true) or
                           replaces it with the sender's copy (false) *)
}

type step = {
  step_id : int;
  deps : int list;      (* step_ids that must complete first *)
  latency_s : float;    (* per-step link latency, paid once per chip *)
  ops : op list;
}

type schedule = {
  sched_name : string;
  chips : int;
  chunks : int;         (* the reduced buffer is split in [chunks] *)
  links : link list;
  steps : step list;
}

let op_kind_name = function Send -> "send" | Recv -> "recv"

(* ------------------------------------------------------------------ *)
(* Structural sanity: everything else assumes these hold. *)

let structural_findings (s : schedule) =
  let findings = ref [] in
  let bad step fmt =
    Printf.ksprintf
      (fun m ->
        findings := Finding.make ~index:step Finding.Malformed m :: !findings)
      fmt
  in
  if s.chips <= 0 then bad 0 "schedule %s has %d chips" s.sched_name s.chips;
  if s.chunks <= 0 then bad 0 "schedule %s has %d chunks" s.sched_name s.chunks;
  let caps = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem caps l.link_id then
        bad 0 "duplicate link %s" l.link_id
      else Hashtbl.replace caps l.link_id l.capacity_bytes_per_s;
      if l.capacity_bytes_per_s <= 0. then
        bad 0 "link %s has non-positive capacity %g" l.link_id
          l.capacity_bytes_per_s)
    s.links;
  let seen_steps = Hashtbl.create 64 in
  List.iter
    (fun st ->
      if Hashtbl.mem seen_steps st.step_id then
        bad st.step_id "duplicate step id %d" st.step_id;
      Hashtbl.replace seen_steps st.step_id ();
      if st.latency_s < 0. then
        bad st.step_id "step %d has negative latency" st.step_id;
      List.iter
        (fun (o : op) ->
          let id = st.step_id in
          if o.chip < 0 || o.chip >= s.chips then
            bad id "step %d: chip %d out of range [0,%d)" id o.chip s.chips;
          if o.peer < 0 || o.peer >= s.chips then
            bad id "step %d: peer %d out of range [0,%d)" id o.peer s.chips;
          if o.chip = o.peer && s.chips > 0 then
            bad id "step %d: chip %d transfers to itself" id o.chip;
          if o.op_bytes < 0. then
            bad id "step %d: negative bytes on chip %d" id o.chip;
          if o.claim_bytes_per_s <= 0. then
            bad id "step %d: chip %d claims non-positive bandwidth" id o.chip;
          if o.chunk_lo < 0 || o.chunk_hi > s.chunks || o.chunk_lo >= o.chunk_hi
          then
            bad id "step %d: chip %d has bad chunk range [%d,%d) of %d" id
              o.chip o.chunk_lo o.chunk_hi s.chunks;
          if not (Hashtbl.mem caps o.link) then
            bad id "step %d: chip %d uses undeclared link %s" id o.chip o.link)
        st.ops)
    s.steps;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Send/recv matching: steps are rendezvous rounds, so a transfer is a
   send and its mirror recv in the same step agreeing on (src, dst,
   link, bytes, chunk range, reduce mode).  Bag semantics: identical
   pairs may repeat; every send must consume one recv. *)

type transfer_key = {
  k_src : int;
  k_dst : int;
  k_link : string;
  k_bits : int64;  (* byte count, compared exactly *)
  k_lo : int;
  k_hi : int;
  k_red : bool;
}

let key_of_op (o : op) =
  let src, dst = match o.op_kind with Send -> (o.chip, o.peer) | Recv -> (o.peer, o.chip) in
  { k_src = src; k_dst = dst; k_link = o.link;
    k_bits = Int64.bits_of_float o.op_bytes;
    k_lo = o.chunk_lo; k_hi = o.chunk_hi; k_red = o.reduce }

let match_findings (s : schedule) =
  let findings = ref [] in
  List.iter
    (fun st ->
      let bag : (transfer_key, int) Hashtbl.t = Hashtbl.create 64 in
      let bump k d =
        let c = match Hashtbl.find_opt bag k with Some c -> c | None -> 0 in
        Hashtbl.replace bag k (c + d)
      in
      List.iter
        (fun o ->
          let k = key_of_op o in
          bump k (match o.op_kind with Send -> 1 | Recv -> -1))
        st.ops;
      (* report in a deterministic order: sort leftover keys *)
      let leftovers =
        Hashtbl.fold (fun k c acc -> if c <> 0 then (k, c) :: acc else acc)
          bag []
        |> List.sort compare
      in
      List.iter
        (fun (k, c) ->
          let side, n = if c > 0 then ("send", c) else ("recv", -c) in
          let other = if c > 0 then "recv" else "send" in
          findings :=
            Finding.make ~index:st.step_id Finding.Coll_unmatched
              (Printf.sprintf
                 "step %d: %d %s(s) %d->%d on %s (%g B, chunks [%d,%d), %s) \
                  with no matching %s — the transfer can never complete"
                 st.step_id n side k.k_src k.k_dst k.k_link
                 (Int64.float_of_bits k.k_bits) k.k_lo k.k_hi
                 (if k.k_red then "reduce" else "copy")
                 other)
            :: !findings)
        leftovers)
    s.steps;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Deadlock: Kahn over the step dependency graph, exactly like the SoC
   plan check — a cycle (or an edge to a missing step) means some step
   can never start. *)

let deadlock_findings (s : schedule) =
  let arr = Array.of_list s.steps in
  let n = Array.length arr in
  let pos_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i st -> Hashtbl.replace pos_of st.step_id i) arr;
  let findings = ref [] in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun i st ->
      List.iter
        (fun d ->
          match Hashtbl.find_opt pos_of d with
          | Some j when j <> i ->
            succs.(j) <- i :: succs.(j);
            indeg.(i) <- indeg.(i) + 1
          | Some _ -> ()
          | None ->
            findings :=
              Finding.make ~index:st.step_id Finding.Coll_deadlock
                (Printf.sprintf
                   "step %d depends on step id %d which is not in the schedule"
                   st.step_id d)
              :: !findings)
        st.deps)
    arr;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let processed = Array.make n false in
  let n_processed = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    processed.(i) <- true;
    incr n_processed;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !n_processed < n then begin
    let stuck =
      Array.to_list arr
      |> List.filteri (fun i _ -> not processed.(i))
      |> List.map (fun st -> string_of_int st.step_id)
    in
    findings :=
      Finding.make Finding.Coll_deadlock
        (Printf.sprintf
           "step dependency graph is cyclic: %d step(s) can never start (%s)"
           (n - !n_processed)
           (String.concat ", " stuck))
      :: !findings
  end;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Link overcommit: within a step all transfers run concurrently, so
   the claims on one link must sum to at most its capacity.  Claims are
   accounted on the send side (the recv mirrors the same transfer). *)

let overcommit_findings (s : schedule) =
  let caps = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace caps l.link_id l.capacity_bytes_per_s)
    s.links;
  let findings = ref [] in
  List.iter
    (fun st ->
      let claimed = Hashtbl.create 16 in
      List.iter
        (fun (o : op) ->
          if o.op_kind = Send then
            let c =
              match Hashtbl.find_opt claimed o.link with
              | Some (c, n) -> (c +. o.claim_bytes_per_s, n + 1)
              | None -> (o.claim_bytes_per_s, 1)
            in
            Hashtbl.replace claimed o.link c)
        st.ops;
      let over =
        Hashtbl.fold
          (fun l (c, n) acc ->
            match Hashtbl.find_opt caps l with
            | Some cap when c > cap *. (1. +. 1e-9) -> (l, c, n, cap) :: acc
            | _ -> acc)
          claimed []
        |> List.sort compare
      in
      List.iter
        (fun (l, c, n, cap) ->
          findings :=
            Finding.make ~index:st.step_id
              (Finding.Coll_overcommit { resource = "link" })
              (Printf.sprintf
                 "step %d: %d transfer(s) claim %g B/s on link %s, exceeding \
                  its %g B/s capacity"
                 st.step_id n c l cap)
            :: !findings)
        over)
    s.steps;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Reduction completeness.  Track, per (chip, chunk), the set of chips
   whose contribution is folded into that chip's current partial value
   — a bitset.  A reduce transfer unions the sender's pre-step set into
   the receiver's; a copy transfer replaces it.  Transfers within one
   step all read pre-step state (rendezvous semantics).  After the last
   step every set must be full, else the all-reduce is wrong. *)

let bs_create chips = Bytes.make ((chips + 7) / 8) '\000'

let bs_set b i =
  let j = i lsr 3 in
  Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lor (1 lsl (i land 7))))

let bs_mem b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bs_union ~into src =
  for j = 0 to Bytes.length into - 1 do
    Bytes.set into j
      (Char.chr (Char.code (Bytes.get into j) lor Char.code (Bytes.get src j)))
  done

(* execute steps respecting deps, listing order among ready steps; the
   caller guarantees the graph is acyclic and closed *)
let execution_order (s : schedule) =
  let arr = Array.of_list s.steps in
  let n = Array.length arr in
  let pos_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i st -> Hashtbl.replace pos_of st.step_id i) arr;
  let executed = Array.make n false in
  let out = ref [] in
  let remaining = ref n in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    Array.iteri
      (fun i st ->
        if
          (not executed.(i))
          && List.for_all
               (fun d ->
                 match Hashtbl.find_opt pos_of d with
                 | Some j -> executed.(j)
                 | None -> true)
               st.deps
        then begin
          executed.(i) <- true;
          decr remaining;
          progress := true;
          out := st :: !out
        end)
      arr
  done;
  List.rev !out

let completeness_findings (s : schedule) =
  let know = Array.init s.chips (fun _ -> Array.init s.chunks (fun _ -> bs_create s.chips)) in
  for c = 0 to s.chips - 1 do
    for k = 0 to s.chunks - 1 do
      bs_set know.(c).(k) c
    done
  done;
  List.iter
    (fun st ->
      (* phase 1: snapshot each transfer's source contribution set *)
      let moves =
        List.filter_map
          (fun (o : op) ->
            match o.op_kind with
            | Recv -> None
            | Send ->
              let snap =
                Array.init (o.chunk_hi - o.chunk_lo) (fun d ->
                    Bytes.copy know.(o.chip).(o.chunk_lo + d))
              in
              Some (o, snap))
          st.ops
      in
      (* phase 2: apply *)
      List.iter
        (fun ((o : op), snap) ->
          for d = 0 to o.chunk_hi - o.chunk_lo - 1 do
            let k = o.chunk_lo + d in
            if o.reduce then bs_union ~into:know.(o.peer).(k) snap.(d)
            else know.(o.peer).(k) <- Bytes.copy snap.(d)
          done)
        moves)
    (execution_order s);
  let full = bs_create s.chips in
  for c = 0 to s.chips - 1 do
    bs_set full c
  done;
  let missing = ref 0 in
  let example = ref None in
  for c = 0 to s.chips - 1 do
    for k = 0 to s.chunks - 1 do
      if not (Bytes.equal know.(c).(k) full) then begin
        incr missing;
        if !example = None then begin
          let src = ref 0 in
          while bs_mem know.(c).(k) !src do incr src done;
          example := Some (c, k, !src)
        end
      end
    done
  done;
  match !example with
  | None -> []
  | Some (c, k, src) ->
    [
      Finding.make Finding.Coll_incomplete
        (Printf.sprintf
           "all-reduce incomplete: %d (chip, chunk) cell(s) miss \
            contributions — e.g. chip %d's chunk %d never receives chip %d's \
            contribution"
           !missing c k src);
    ]

(* ------------------------------------------------------------------ *)

let analyze (s : schedule) =
  let structural = structural_findings s in
  if structural <> [] then structural
  else
    let deadlock = deadlock_findings s in
    let unmatched = match_findings s in
    let overcommit = overcommit_findings s in
    (* completeness simulation only makes sense on a schedule whose
       transfers all run: gate it on the other checks *)
    let incomplete =
      if deadlock = [] && unmatched = [] then completeness_findings s else []
    in
    deadlock @ unmatched @ overcommit @ incomplete

let schedule_seconds (s : schedule) =
  let time = Array.make (max 1 s.chips) 0. in
  List.iter
    (fun st ->
      let per_chip : (int, float) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun (o : op) ->
          if o.chip >= 0 && o.chip < s.chips && o.claim_bytes_per_s > 0. then begin
            let d = o.op_bytes /. o.claim_bytes_per_s in
            let cur =
              match Hashtbl.find_opt per_chip o.chip with
              | Some c -> c
              | None -> 0.
            in
            if d >= cur then Hashtbl.replace per_chip o.chip d
          end)
        st.ops;
      Hashtbl.iter
        (fun chip d -> time.(chip) <- time.(chip) +. d +. st.latency_s)
        per_chip)
    s.steps;
  Array.fold_left max 0. time

(* ------------------------------------------------------------------ *)
(* Fleet placement plans *)

type placement = {
  plan_name : string;
  nodes : int;
  hbm_bytes_per_node : int option;
  policy : string;  (* "round-robin" | "least-loaded" | "affinity" *)
  models : (string * int * int list) list;
      (* model name, weight bytes, nodes where its weights start
         resident (the replica set) *)
}

let known_policies = [ "round-robin"; "least-loaded"; "affinity" ]

(* the nodes the routing policy can ever send a model to: affinity pins
   requests to the replica set; the load-spreading policies reach every
   node, paging the model in on first touch *)
let reachable_nodes (p : placement) ~replicas =
  if p.policy = "affinity" then List.sort_uniq compare replicas
  else List.init (max 0 p.nodes) (fun i -> i)

let predicted_page_ins (p : placement) =
  let counts = Array.make (max 1 p.nodes) 0 in
  List.iter
    (fun (_, _, replicas) ->
      List.iter
        (fun n ->
          if n >= 0 && n < p.nodes && not (List.mem n replicas) then
            counts.(n) <- counts.(n) + 1)
        (reachable_nodes p ~replicas))
    p.models;
  counts

let lint_placement (p : placement) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  if p.nodes <= 0 then
    add
      (Finding.make Finding.Malformed
         (Printf.sprintf "placement %s has %d nodes" p.plan_name p.nodes));
  if not (List.mem p.policy known_policies) then
    add
      (Finding.make Finding.Malformed
         (Printf.sprintf "placement %s routes with unknown policy %S"
            p.plan_name p.policy));
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, weight, replicas) ->
      if Hashtbl.mem seen name then
        add
          (Finding.make Finding.Malformed
             (Printf.sprintf "model %s appears twice in placement %s" name
                p.plan_name));
      Hashtbl.replace seen name ();
      if weight < 0 then
        add
          (Finding.make Finding.Malformed
             (Printf.sprintf "model %s has negative weight bytes" name));
      if replicas = [] then
        add
          (Finding.make Finding.Malformed
             (Printf.sprintf "model %s is resident nowhere in placement %s"
                name p.plan_name));
      List.iter
        (fun n ->
          if n < 0 || n >= p.nodes then
            add
              (Finding.make Finding.Malformed
                 (Printf.sprintf
                    "model %s replica node %d out of range [0,%d)" name n
                    p.nodes)))
        replicas)
    p.models;
  if !findings = [] then begin
    match p.hbm_bytes_per_node with
    | None -> ()
    | Some cap ->
      for n = 0 to p.nodes - 1 do
        let initial = ref 0 and steady = ref 0 and names = ref [] in
        List.iter
          (fun (name, weight, replicas) ->
            let resident0 = List.mem n replicas in
            let reaches = List.mem n (reachable_nodes p ~replicas) in
            if resident0 then initial := !initial + weight;
            if resident0 || reaches then begin
              steady := !steady + weight;
              names := name :: !names
            end)
          p.models;
        if !steady > cap then
          add
            (Finding.make ~index:n
               (Finding.Coll_overcommit { resource = "HBM" })
               (Printf.sprintf
                  "node %d: %d B of %s-reachable resident weights (%s) exceed \
                   its %d B HBM (%d B resident at start)"
                  n !steady p.policy
                  (String.concat ", " (List.rev !names))
                  cap !initial))
      done
  end;
  List.rev !findings
