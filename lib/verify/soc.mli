(** Whole-SoC static race detector over a fused-group schedule.

    Lifts the per-program happens-before analysis to the compiler's
    multi-core schedule: tasks are compiled group programs pinned to
    cores, edges are the inter-core dependencies the memory planner and
    graph engine imply, and footprints are HBM byte ranges computed from
    the instruction streams.  [Ascend_compiler.Soc_schedule] builds
    plans from real model graphs; tests build mutated ones by hand.

    Reported findings ({!Finding.kind}):
    - [Soc_race {dep}] — cross-core RAW/WAR/WAW on overlapping HBM byte
      ranges with no ordering edge; classified against the listing
      order, which is the serial reference schedule;
    - [Soc_deadlock] — cyclic schedule dependency graph, or a dependency
      on a task id that is not in the schedule;
    - [Soc_overcommit {resource="HBM"}] (error) — resident weights plus
      peak live activation regions exceed HBM capacity;
    - [Soc_overcommit {resource="LLC"}] (warning) — the largest
      concurrent per-wave working set (top [cores] tasks of an ASAP
      wave) exceeds LLC capacity.

    Capacity checks only run when the corresponding capacity is [Some];
    the default schedule builder leaves both [None] so the zoo sweep
    exercises pure race/deadlock analysis, and tests pass small
    capacities to prove the checkers live.

    [analyze] never raises; like {!Hb}, race results are only emitted
    when the dependency graph is acyclic (racing with a task that never
    starts is moot). *)

type region = { base : int; bytes : int }
(** Half-open byte range [[base, base+bytes)] in the shared HBM
    activation arena (planner offsets). *)

type task = {
  id : int;  (** stable id, referenced by [deps] *)
  core : int;  (** core the group is pinned to, [0 .. cores-1] *)
  tag : string;  (** fused-group tag, for messages *)
  deps : int list;
      (** ids of tasks that must complete first: data dependencies and
          memory-reuse anti-dependencies *)
  reads : (string * region) list;  (** named input regions *)
  writes : (string * region) list;  (** named output regions *)
  ext_read_bytes : int;
      (** total External-buffer read traffic of the compiled program *)
  ext_write_bytes : int;
      (** total External-buffer write traffic of the compiled program *)
  working_set_bytes : int;
      (** bytes the task keeps hot while running (LLC pressure) *)
}

type plan = {
  soc_name : string;
  cores : int;
  llc_bytes : int option;  (** [None] disables the LLC check *)
  hbm_bytes : int option;  (** [None] disables the HBM check *)
  weight_resident_bytes : int;
      (** weights resident in HBM for the whole run *)
  tasks : task list;
      (** listing order is the serial reference schedule; same-core
          tasks implicitly execute in listing order *)
}

val region_overlaps : region -> region -> bool

val analyze : plan -> Finding.t list
(** Run all whole-SoC checks.  Empty list = schedule proven race-free,
    deadlock-free and within the configured capacities. *)

val pp_plan : Format.formatter -> plan -> unit
(** Debug dump of the schedule (tasks, cores, edges, footprints). *)
