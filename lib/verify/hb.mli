(** Happens-before graph over one core program.

    Nodes are instruction indices of the program's listing.  Edges:

    - {b program order} within each pipe's issue queue: the dispatcher
      distributes instructions to per-pipe queues in program order, so
      same-pipe instructions execute in listing order;
    - {b flag edges}: the hardware flag is a counting semaphore per
      [(from_pipe, to_pipe, flag)] triple.  All sets of a triple issue
      from [from_pipe] in program order and all waits block [to_pipe]
      in program order, so the k-th wait can proceed exactly when the
      k-th set has executed — giving the precise edge
      [set_k -> wait_k];
    - {b barriers} join and restart every pipe.

    A wait whose ordinal is >= its triple's total set count can never be
    satisfied; a cycle through flag edges is a cross-pipe deadlock.
    Both are detected during construction (Kahn's algorithm with
    phantom in-degrees pinning unsatisfiable waits) and reported in
    {!field-findings}.

    {b Contract.} [build] never raises.  The graph is sound for
    reachability queries ({!hb}) only when [findings = []]: stuck nodes
    have no meaningful vector clock, and the hazard scan must not run
    over a deadlocked graph (racing with an instruction that never
    executes is moot).  Reachability uses per-pipe vector clocks
    computed along the topological order — [vc.(b).(p)] is the highest
    lane-[p] sequence number that happens before (or at) node [b] — so
    a query is O(1) and the whole structure O(V * pipes) instead of a
    quadratic closure. *)

open Ascend_isa

type t = {
  instrs : Instruction.t array;
  lane : int array;  (** pipe index of each node; -1 for barriers *)
  seq : int array;
      (** position within the node's pipe lane; -1 for barriers *)
  topo : int list;  (** topological order of executable nodes *)
  vc : int array array;
      (** [vc.(node).(pipe)] — valid for executable nodes only *)
  stuck : bool array;
      (** node can never execute under any interleaving *)
  findings : Finding.t list;
      (** deadlock findings discovered during construction; empty iff
          every node is executable *)
}

val build : Instruction.t list -> t
(** Construct the graph and run deadlock detection.  Total: malformed
    instructions (unmapped pipes) simply get no lane and are reported
    by the structural checks elsewhere. *)

val deadlock_free : t -> bool
(** [findings = []]. *)

val hb : t -> int -> int -> bool
(** [hb g a b]: node [a] happens before (or is) node [b] under every
    legal interleaving.  Only meaningful on a deadlock-free graph and
    for executable pipe-mapped nodes (the hazard scan only queries
    those). *)
