type mte_transform =
  | Plain
  | Img2col of { expansion : float }
  | Transpose
  | Decompress of { ratio : float }

type t =
  | Cube_matmul of {
      m : int;
      k : int;
      n : int;
      precision : Ascend_arch.Precision.t;
      accumulate : bool;
      l0a_slot : int;
      l0b_slot : int;
      l0c_slot : int;
    }
  | Vector_op of {
      op_name : string;
      bytes : int;
      reads_ub : bool;
      writes_ub : bool;
      ub_in_slot : int;
      ub_out_slot : int;
    }
  | Mte_move of {
      src : Buffer_id.t;
      dst : Buffer_id.t;
      bytes : int;
      transform : mte_transform;
      src_slot : int;
      dst_slot : int;
    }
  | Scalar_op of { cycles : int }
  | Set_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Wait_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Barrier

let pipe_of = function
  | Cube_matmul _ -> Some Pipe.Cube
  | Vector_op _ -> Some Pipe.Vector
  | Scalar_op _ -> Some Pipe.Scalar
  | Set_flag { from_pipe; _ } -> Some from_pipe
  | Wait_flag { to_pipe; _ } -> Some to_pipe
  | Mte_move { src; dst; _ } -> Buffer_id.legal_move ~src ~dst
  | Barrier -> None

let check_slot ctx s =
  if s < 0 then invalid_arg (Printf.sprintf "Instruction.%s: negative slot" ctx)

let mte_move ~src ~dst ?(transform = Plain) ?(src_slot = 0) ?(dst_slot = 0)
    ~bytes () =
  if bytes < 0 then invalid_arg "Instruction.mte_move: negative bytes";
  check_slot "mte_move" src_slot;
  check_slot "mte_move" dst_slot;
  (match transform with
  | Img2col { expansion } when expansion <= 0. ->
    invalid_arg "Instruction.mte_move: img2col expansion <= 0"
  | Decompress { ratio } when ratio <= 0. || ratio > 1. ->
    invalid_arg "Instruction.mte_move: decompress ratio out of (0,1]"
  | Plain | Img2col _ | Transpose | Decompress _ -> ());
  match Buffer_id.legal_move ~src ~dst with
  | Some _ -> Mte_move { src; dst; bytes; transform; src_slot; dst_slot }
  | None ->
    invalid_arg
      (Printf.sprintf "Instruction.mte_move: illegal move %s -> %s"
         (Buffer_id.name src) (Buffer_id.name dst))

let cube_matmul ~m ~k ~n ~precision ?(accumulate = false) ?(l0a_slot = 0)
    ?(l0b_slot = 0) ?(l0c_slot = 0) () =
  if m <= 0 || k <= 0 || n <= 0 then
    invalid_arg "Instruction.cube_matmul: non-positive dimension";
  check_slot "cube_matmul" l0a_slot;
  check_slot "cube_matmul" l0b_slot;
  check_slot "cube_matmul" l0c_slot;
  Cube_matmul { m; k; n; precision; accumulate; l0a_slot; l0b_slot; l0c_slot }

let vector_op ~op_name ~bytes ?(reads_ub = true) ?(writes_ub = true)
    ?(ub_in_slot = 0) ?(ub_out_slot = 0) () =
  if bytes < 0 then invalid_arg "Instruction.vector_op: negative bytes";
  check_slot "vector_op" ub_in_slot;
  check_slot "vector_op" ub_out_slot;
  Vector_op { op_name; bytes; reads_ub; writes_ub; ub_in_slot; ub_out_slot }

let set_flag ~from_pipe ~to_pipe ~flag =
  Set_flag { from_pipe; to_pipe; flag }

let wait_flag ~from_pipe ~to_pipe ~flag =
  Wait_flag { from_pipe; to_pipe; flag }

let source_bytes = function
  | Mte_move { bytes; transform; _ } -> (
    match transform with
    | Plain | Transpose -> bytes
    | Img2col { expansion } -> int_of_float (float_of_int bytes /. expansion)
    | Decompress { ratio } -> int_of_float (float_of_int bytes *. ratio))
  | Cube_matmul _ | Vector_op _ | Scalar_op _ | Set_flag _ | Wait_flag _
  | Barrier ->
    0

(* ------------------------------------------------------------------ *)
(* Abstract buffer accesses: the (buffer, slot) pairs an instruction
   touches.  A slot stands in for an address range inside the buffer
   (double-buffering rings rotate through slots); the hazard analysis in
   Ascend_verify and the derived buffer peaks are both built on this
   single model.  [alloc] marks the write that establishes a slot's
   footprint; in-place updates (accumulating matmuls, read-modify-write
   vector passes on one slot) are writes but not allocations.  [exact]
   marks accesses whose byte count is a real footprint claim: an
   in-place vector pass carries a *work* amount (a fused elementwise
   chain sweeps the same tile several times), so its bytes drive
   latency and energy but are bounded in memory by the slot's
   established footprint — the shadow-state sanitizer must not
   bounds-check them. *)

type access_kind = Read | Write

type access = {
  buffer : Buffer_id.t;
  slot : int;
  bytes : int;
  kind : access_kind;
  alloc : bool;
  exact : bool;
}

let accesses instr =
  let bytes_of elems size = int_of_float (ceil (float_of_int elems *. size)) in
  match instr with
  | Mte_move { src; dst; src_slot; dst_slot; bytes; _ } ->
    [
      { buffer = src; slot = src_slot; bytes = source_bytes instr; kind = Read;
        alloc = false; exact = true };
      { buffer = dst; slot = dst_slot; bytes; kind = Write; alloc = true;
        exact = true };
    ]
  | Cube_matmul { m; k; n; precision; accumulate; l0a_slot; l0b_slot; l0c_slot }
    ->
    let src = Ascend_arch.Precision.size_bytes precision in
    let acc =
      Ascend_arch.Precision.size_bytes
        (Ascend_arch.Precision.accumulator precision)
    in
    let out = bytes_of (m * n) acc in
    [
      { buffer = Buffer_id.L0a; slot = l0a_slot; bytes = bytes_of (m * k) src;
        kind = Read; alloc = false; exact = true };
      { buffer = Buffer_id.L0b; slot = l0b_slot; bytes = bytes_of (k * n) src;
        kind = Read; alloc = false; exact = true };
    ]
    @ (if accumulate then
         [ { buffer = Buffer_id.L0c; slot = l0c_slot; bytes = out; kind = Read;
             alloc = false; exact = true } ]
       else [])
    @ [
        { buffer = Buffer_id.L0c; slot = l0c_slot; bytes = out; kind = Write;
          alloc = not accumulate; exact = true };
      ]
  | Vector_op { bytes; reads_ub; writes_ub; ub_in_slot; ub_out_slot; _ } ->
    (* vector bytes are work amounts, never footprint claims: a fused
       elementwise chain sweeps a tile several times, and a gather reads
       a small index list while producing a large output *)
    (if reads_ub then
       [ { buffer = Buffer_id.Ub; slot = ub_in_slot; bytes; kind = Read;
           alloc = false; exact = false } ]
     else [])
    @
    if writes_ub then
      [ { buffer = Buffer_id.Ub; slot = ub_out_slot; bytes; kind = Write;
          (* writing the slot just read is an in-place update *)
          alloc = (not reads_ub) || ub_out_slot <> ub_in_slot;
          exact = false } ]
    else []
  | Scalar_op _ | Set_flag _ | Wait_flag _ | Barrier -> []

let transform_name = function
  | Plain -> ""
  | Img2col { expansion } -> Printf.sprintf " img2col(x%.1f)" expansion
  | Transpose -> " trans"
  | Decompress { ratio } -> Printf.sprintf " decomp(%.2f)" ratio

let slot_suffix = function 0 -> "" | s -> Printf.sprintf ".%d" s

let pp ppf = function
  | Cube_matmul { m; k; n; precision; accumulate; l0a_slot; l0b_slot; l0c_slot }
    ->
    Format.fprintf ppf "M    matmul %dx%dx%d %s%s" m k n
      (Ascend_arch.Precision.name precision)
      (if accumulate then " +=" else "");
    if l0a_slot <> 0 || l0b_slot <> 0 || l0c_slot <> 0 then
      Format.fprintf ppf " [%d/%d/%d]" l0a_slot l0b_slot l0c_slot
  | Vector_op { op_name; bytes; ub_in_slot; ub_out_slot; _ } ->
    Format.fprintf ppf "V    %s %dB" op_name bytes;
    if ub_in_slot <> 0 || ub_out_slot <> 0 then
      Format.fprintf ppf " [%d>%d]" ub_in_slot ub_out_slot
  | Mte_move { src; dst; bytes; transform; src_slot; dst_slot } ->
    Format.fprintf ppf "MTE  %s%s->%s%s %dB%s" (Buffer_id.name src)
      (slot_suffix src_slot) (Buffer_id.name dst) (slot_suffix dst_slot) bytes
      (transform_name transform)
  | Scalar_op { cycles } -> Format.fprintf ppf "S    scalar %dcyc" cycles
  | Set_flag { from_pipe; to_pipe; flag } ->
    Format.fprintf ppf "SET  %s->%s #%d" (Pipe.name from_pipe)
      (Pipe.name to_pipe) flag
  | Wait_flag { from_pipe; to_pipe; flag } ->
    Format.fprintf ppf "WAIT %s->%s #%d" (Pipe.name from_pipe)
      (Pipe.name to_pipe) flag
  | Barrier -> Format.fprintf ppf "BARRIER"
