(** The Ascend core instruction vocabulary at the granularity the
    simulator models: one instruction = one tile-level operation on an
    execution pipe, plus the explicit cross-pipe synchronisation of
    paper Figure 3. *)

type mte_transform =
  | Plain
  | Img2col of { expansion : float }
      (** convolution-to-GEMM expansion (paper §2.2): the move writes
          [bytes] but reads [bytes / expansion] unique source bytes (each
          input element appears in up to kh*kw matrix columns; strided
          1x1 convolutions subsample, giving expansion < 1) *)
  | Transpose      (** the MTE [trans] module *)
  | Decompress of { ratio : float }
      (** zero-value decompression; [ratio] is compressed/uncompressed
          in (0, 1] — the move reads [bytes *. ratio] source bytes *)

type t =
  | Cube_matmul of {
      m : int;
      k : int;
      n : int;
      precision : Ascend_arch.Precision.t;
      accumulate : bool;
          (** accumulate into existing L0C contents (k-loop continuation) *)
      l0a_slot : int;
      l0b_slot : int;
      l0c_slot : int;
    }
  | Vector_op of {
      op_name : string;
      bytes : int;       (** bytes processed at the vector width *)
      reads_ub : bool;
      writes_ub : bool;
      ub_in_slot : int;
      ub_out_slot : int;
    }
  | Mte_move of {
      src : Buffer_id.t;
      dst : Buffer_id.t;
      bytes : int;       (** bytes written to [dst] *)
      transform : mte_transform;
      src_slot : int;
      dst_slot : int;
    }
  | Scalar_op of { cycles : int }
  | Set_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Wait_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Barrier
      (** full-core barrier: every pipe drains before any pipe proceeds *)

(** Slots name disjoint address ranges inside one on-chip buffer — a
    double-buffering ring rotates through slots 0..depth-1.  Two accesses
    to the same buffer alias only if they name the same slot; the hazard
    analysis in [Ascend_verify] and the derived buffer peaks are both
    built on this model.  Slot 0 is the default for unannotated code. *)

val pipe_of : t -> Pipe.t option
(** The pipe an instruction executes on ([Set_flag] executes on its
    [from_pipe]; [Wait_flag] blocks its [to_pipe]; [Barrier] -> [None]). *)

val mte_move : src:Buffer_id.t -> dst:Buffer_id.t -> ?transform:mte_transform ->
  ?src_slot:int -> ?dst_slot:int -> bytes:int -> unit -> t
(** Raises [Invalid_argument] if the src/dst pair is not architecturally
    legal, bytes is negative, or a slot is negative. *)

val cube_matmul : m:int -> k:int -> n:int -> precision:Ascend_arch.Precision.t ->
  ?accumulate:bool -> ?l0a_slot:int -> ?l0b_slot:int -> ?l0c_slot:int ->
  unit -> t
(** Raises [Invalid_argument] on non-positive dimensions or negative slots. *)

val vector_op : op_name:string -> bytes:int -> ?reads_ub:bool ->
  ?writes_ub:bool -> ?ub_in_slot:int -> ?ub_out_slot:int -> unit -> t
(** Raises [Invalid_argument] on negative bytes or slots. *)

val set_flag : from_pipe:Pipe.t -> to_pipe:Pipe.t -> flag:int -> t
val wait_flag : from_pipe:Pipe.t -> to_pipe:Pipe.t -> flag:int -> t

val source_bytes : t -> int
(** Bytes read from the source of an [Mte_move] (differs from [bytes]
    under [Img2col] expansion and [Decompress]); 0 for other forms. *)

type access_kind = Read | Write

type access = {
  buffer : Buffer_id.t;
  slot : int;
  bytes : int;
  kind : access_kind;
  alloc : bool;
      (** true when this write establishes the slot's footprint; false
          for in-place updates (accumulating matmul, read-modify-write
          vector pass on a single slot) and for all reads *)
  exact : bool;
      (** true when [bytes] is an exact footprint claim the shadow-state
          sanitizer may bounds-check against the slot's established
          footprint.  False for every vector-op access, whose [bytes] is
          a work amount: a fused elementwise chain sweeps the same tile
          several times, and a gather reads a small index list while
          producing a large output — the figure drives latency and
          energy but is bounded in memory by whatever the slot holds *)
}

val accesses : t -> access list
(** The abstract (buffer, slot) accesses an instruction performs.
    Sync and scalar instructions access no buffers. *)

val pp : Format.formatter -> t -> unit
(** One-line disassembly. *)
