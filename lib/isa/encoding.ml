let word_size = 16

(* opcodes *)
let op_cube = 1
let op_vector = 2
let op_mte = 3
let op_scalar = 4
let op_set = 5
let op_wait = 6
let op_barrier = 7

let precision_code = function
  | Ascend_arch.Precision.Fp32 -> 0
  | Ascend_arch.Precision.Fp16 -> 1
  | Ascend_arch.Precision.Int32 -> 2
  | Ascend_arch.Precision.Int8 -> 3
  | Ascend_arch.Precision.Int4 -> 4

let precision_of_code = function
  | 0 -> Ok Ascend_arch.Precision.Fp32
  | 1 -> Ok Ascend_arch.Precision.Fp16
  | 2 -> Ok Ascend_arch.Precision.Int32
  | 3 -> Ok Ascend_arch.Precision.Int8
  | 4 -> Ok Ascend_arch.Precision.Int4
  | c -> Error (Printf.sprintf "bad precision code %d" c)

let buffer_code b = Buffer_id.index b

let buffer_of_code c =
  match List.find_opt (fun b -> Buffer_id.index b = c) Buffer_id.all with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "bad buffer code %d" c)

let pipe_code p = Pipe.index p

let pipe_of_code c =
  match List.find_opt (fun p -> Pipe.index p = c) Pipe.all with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "bad pipe code %d" c)

let transform_code = function
  | Instruction.Plain -> (0, 0.)
  | Instruction.Img2col { expansion } -> (1, expansion)
  | Instruction.Transpose -> (2, 0.)
  | Instruction.Decompress { ratio } -> (3, ratio)

let transform_of_code code param =
  match code with
  | 0 -> Ok Instruction.Plain
  | 1 -> Ok (Instruction.Img2col { expansion = param })
  | 2 -> Ok Instruction.Transpose
  | 3 -> Ok (Instruction.Decompress { ratio = param })
  | c -> Error (Printf.sprintf "bad transform code %d" c)

let set_u16 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff)

let get_u16 b off = Bytes.get_uint8 b off lor (Bytes.get_uint8 b (off + 1) lsl 8)

let set_u32 b off v =
  for i = 0 to 3 do
    Bytes.set_uint8 b (off + i) ((v lsr (8 * i)) land 0xff)
  done

let get_u32 b off =
  let acc = ref 0 in
  for i = 3 downto 0 do
    acc := (!acc lsl 8) lor Bytes.get_uint8 b (off + i)
  done;
  !acc

let set_f32 b off v = set_u32 b off (Int32.to_int (Int32.bits_of_float v) land 0xffffffff)
let get_f32 b off = Int32.float_of_bits (Int32.of_int (get_u32 b off))

(* op names fit 8 bytes, zero-padded (longer names are truncated) *)
let set_name b off name =
  for i = 0 to 7 do
    Bytes.set_uint8 b (off + i)
      (if i < String.length name then Char.code name.[i] else 0)
  done

let get_name b off =
  let buf = Buffer.create 8 in
  (try
     for i = 0 to 7 do
       let c = Bytes.get_uint8 b (off + i) in
       if c = 0 then raise Exit;
       Buffer.add_char buf (Char.chr c)
     done
   with Exit -> ());
  Buffer.contents buf

let encode_one instr =
  let b = Bytes.make word_size '\000' in
  (match instr with
  | Instruction.Cube_matmul
      { m; k; n; precision; accumulate; l0a_slot; l0b_slot; l0c_slot } ->
    Bytes.set_uint8 b 0 op_cube;
    set_u16 b 1 m;
    set_u16 b 3 k;
    set_u16 b 5 n;
    Bytes.set_uint8 b 7 (precision_code precision);
    Bytes.set_uint8 b 8 (if accumulate then 1 else 0);
    Bytes.set_uint8 b 9 l0a_slot;
    Bytes.set_uint8 b 10 l0b_slot;
    Bytes.set_uint8 b 11 l0c_slot
  | Instruction.Vector_op
      { op_name; bytes; reads_ub; writes_ub; ub_in_slot; ub_out_slot } ->
    Bytes.set_uint8 b 0 op_vector;
    set_u32 b 1 bytes;
    Bytes.set_uint8 b 5
      ((if reads_ub then 1 else 0) lor if writes_ub then 2 else 0);
    set_name b 6 op_name;
    Bytes.set_uint8 b 14 ub_in_slot;
    Bytes.set_uint8 b 15 ub_out_slot
  | Instruction.Mte_move { src; dst; bytes; transform; src_slot; dst_slot } ->
    Bytes.set_uint8 b 0 op_mte;
    Bytes.set_uint8 b 1 (buffer_code src);
    Bytes.set_uint8 b 2 (buffer_code dst);
    set_u32 b 3 bytes;
    let code, param = transform_code transform in
    Bytes.set_uint8 b 7 code;
    set_f32 b 8 param;
    Bytes.set_uint8 b 12 src_slot;
    Bytes.set_uint8 b 13 dst_slot
  | Instruction.Scalar_op { cycles } ->
    Bytes.set_uint8 b 0 op_scalar;
    set_u32 b 1 cycles
  | Instruction.Set_flag { from_pipe; to_pipe; flag } ->
    Bytes.set_uint8 b 0 op_set;
    Bytes.set_uint8 b 1 (pipe_code from_pipe);
    Bytes.set_uint8 b 2 (pipe_code to_pipe);
    Bytes.set_uint8 b 3 flag
  | Instruction.Wait_flag { from_pipe; to_pipe; flag } ->
    Bytes.set_uint8 b 0 op_wait;
    Bytes.set_uint8 b 1 (pipe_code from_pipe);
    Bytes.set_uint8 b 2 (pipe_code to_pipe);
    Bytes.set_uint8 b 3 flag
  | Instruction.Barrier -> Bytes.set_uint8 b 0 op_barrier);
  b

let encode instrs =
  let words = List.map encode_one instrs in
  Bytes.concat Bytes.empty words

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let decode_one b off =
  let opcode = Bytes.get_uint8 b off in
  if opcode = op_cube then
    let* precision = precision_of_code (Bytes.get_uint8 b (off + 7)) in
    Ok
      (Instruction.Cube_matmul
         {
           m = get_u16 b (off + 1);
           k = get_u16 b (off + 3);
           n = get_u16 b (off + 5);
           precision;
           accumulate = Bytes.get_uint8 b (off + 8) = 1;
           l0a_slot = Bytes.get_uint8 b (off + 9);
           l0b_slot = Bytes.get_uint8 b (off + 10);
           l0c_slot = Bytes.get_uint8 b (off + 11);
         })
  else if opcode = op_vector then
    let flags = Bytes.get_uint8 b (off + 5) in
    Ok
      (Instruction.Vector_op
         {
           op_name = get_name b (off + 6);
           bytes = get_u32 b (off + 1);
           reads_ub = flags land 1 = 1;
           writes_ub = flags land 2 = 2;
           ub_in_slot = Bytes.get_uint8 b (off + 14);
           ub_out_slot = Bytes.get_uint8 b (off + 15);
         })
  else if opcode = op_mte then
    let* src = buffer_of_code (Bytes.get_uint8 b (off + 1)) in
    let* dst = buffer_of_code (Bytes.get_uint8 b (off + 2)) in
    let* transform =
      transform_of_code (Bytes.get_uint8 b (off + 7)) (get_f32 b (off + 8))
    in
    Ok
      (Instruction.Mte_move
         {
           src;
           dst;
           bytes = get_u32 b (off + 3);
           transform;
           src_slot = Bytes.get_uint8 b (off + 12);
           dst_slot = Bytes.get_uint8 b (off + 13);
         })
  else if opcode = op_scalar then
    Ok (Instruction.Scalar_op { cycles = get_u32 b (off + 1) })
  else if opcode = op_set || opcode = op_wait then
    let* from_pipe = pipe_of_code (Bytes.get_uint8 b (off + 1)) in
    let* to_pipe = pipe_of_code (Bytes.get_uint8 b (off + 2)) in
    let flag = Bytes.get_uint8 b (off + 3) in
    if opcode = op_set then Ok (Instruction.Set_flag { from_pipe; to_pipe; flag })
    else Ok (Instruction.Wait_flag { from_pipe; to_pipe; flag })
  else if opcode = op_barrier then Ok Instruction.Barrier
  else Error (Printf.sprintf "bad opcode %d at offset %d" opcode off)

let decode b =
  let len = Bytes.length b in
  if len mod word_size <> 0 then
    Error "decode: length is not a multiple of the word size"
  else begin
    let rec go off acc =
      if off >= len then Ok (List.rev acc)
      else
        match decode_one b off with
        | Ok i -> go (off + word_size) (i :: acc)
        | Error _ as e -> e
    in
    go 0 []
  end

(* ------------------------------------------------------------------ *)
(* Compression: delta against the last word of the same opcode, plus   *)
(* run-length of exact consecutive repeats.                            *)

let tok_raw = 0xF0
let tok_same = 0xF1
let tok_delta = 0xF2
let tok_run = 0xF3

let word_at b i = Bytes.sub b (i * word_size) word_size

let compress raw =
  if Bytes.length raw mod word_size <> 0 then
    invalid_arg "Encoding.compress: not a whole number of words";
  let n = Bytes.length raw / word_size in
  let out = Buffer.create (Bytes.length raw / 4) in
  let last : (int, Bytes.t) Hashtbl.t = Hashtbl.create 8 in
  let prev = ref None in
  let run = ref 0 in
  let flush_run () =
    if !run > 0 then begin
      Buffer.add_uint8 out tok_run;
      Buffer.add_uint16_le out !run;
      run := 0
    end
  in
  for i = 0 to n - 1 do
    let w = word_at raw i in
    (match !prev with
    | Some p when Bytes.equal p w && !run < 0xffff -> incr run
    | _ ->
      flush_run ();
      let opcode = Bytes.get_uint8 w 0 in
      (match Hashtbl.find_opt last opcode with
      | Some lw when Bytes.equal lw w ->
        Buffer.add_uint8 out tok_same;
        Buffer.add_uint8 out opcode
      | Some lw ->
        (* bitmask of differing bytes, then just those bytes *)
        let mask = ref 0 in
        for j = 0 to word_size - 1 do
          if Bytes.get lw j <> Bytes.get w j then mask := !mask lor (1 lsl j)
        done;
        Buffer.add_uint8 out tok_delta;
        Buffer.add_uint8 out opcode;
        Buffer.add_uint16_le out !mask;
        for j = 0 to word_size - 1 do
          if !mask land (1 lsl j) <> 0 then
            Buffer.add_char out (Bytes.get w j)
        done
      | None ->
        Buffer.add_uint8 out tok_raw;
        Buffer.add_bytes out w);
      Hashtbl.replace last opcode w;
      prev := Some w)
  done;
  flush_run ();
  Buffer.to_bytes out

let decompress packed =
  let out = Buffer.create (Bytes.length packed * 4) in
  let last : (int, Bytes.t) Hashtbl.t = Hashtbl.create 8 in
  let prev = ref None in
  let len = Bytes.length packed in
  let rec go pos =
    if pos >= len then Ok (Buffer.to_bytes out)
    else
      let tok = Bytes.get_uint8 packed pos in
      if tok = tok_raw then
        if pos + 1 + word_size > len then Error "decompress: truncated raw"
        else begin
          let w = Bytes.sub packed (pos + 1) word_size in
          Buffer.add_bytes out w;
          Hashtbl.replace last (Bytes.get_uint8 w 0) w;
          prev := Some w;
          go (pos + 1 + word_size)
        end
      else if tok = tok_same then
        if pos + 2 > len then Error "decompress: truncated same"
        else begin
          let opcode = Bytes.get_uint8 packed (pos + 1) in
          match Hashtbl.find_opt last opcode with
          | None -> Error "decompress: SAME with no history"
          | Some w ->
            Buffer.add_bytes out w;
            prev := Some w;
            go (pos + 2)
        end
      else if tok = tok_delta then
        if pos + 4 > len then Error "decompress: truncated delta header"
        else begin
          let opcode = Bytes.get_uint8 packed (pos + 1) in
          let mask = Bytes.get_uint16_le packed (pos + 2) in
          match Hashtbl.find_opt last opcode with
          | None -> Error "decompress: DELTA with no history"
          | Some lw ->
            let w = Bytes.copy lw in
            let src = ref (pos + 4) in
            (try
               for j = 0 to word_size - 1 do
                 if mask land (1 lsl j) <> 0 then begin
                   if !src >= len then raise Exit;
                   Bytes.set w j (Bytes.get packed !src);
                   incr src
                 end
               done;
               Buffer.add_bytes out w;
               Hashtbl.replace last opcode w;
               prev := Some w;
               go !src
             with Exit -> Error "decompress: truncated delta payload")
        end
      else if tok = tok_run then
        if pos + 3 > len then Error "decompress: truncated run"
        else begin
          match !prev with
          | None -> Error "decompress: RUN with no previous word"
          | Some w ->
            let count = Bytes.get_uint16_le packed (pos + 1) in
            for _ = 1 to count do
              Buffer.add_bytes out w
            done;
            go (pos + 3)
        end
      else Error (Printf.sprintf "decompress: bad token %d" tok)
  in
  go 0

let compression_ratio instrs =
  match instrs with
  | [] -> 1.
  | _ ->
    let raw = encode instrs in
    let packed = compress raw in
    float_of_int (Bytes.length packed) /. float_of_int (Bytes.length raw)

let fetch_bandwidth_bytes_per_cycle ~instructions_per_cycle ~compressed instrs =
  match instrs with
  | [] -> 0.
  | _ ->
    let raw = encode instrs in
    let bytes =
      if compressed then Bytes.length (compress raw) else Bytes.length raw
    in
    let cycles = float_of_int (List.length instrs) /. instructions_per_cycle in
    float_of_int bytes /. cycles
