(** A compiled program for one Ascend core: an ordered instruction list
    (PSQ order) with the static buffer footprint the code generator
    reserved in each on-chip buffer. *)

type t = {
  program_name : string;
  instructions : Instruction.t list;
  buffer_peak : (Buffer_id.t * int) list;
      (** peak resident bytes per buffer, computed at code generation *)
}

val make :
  name:string -> ?buffer_peak:(Buffer_id.t * int) list ->
  Instruction.t list -> t

val length : t -> int

val max_flag : int
(** Largest legal flag id per (from, to) pipe pair. *)

val flag_leaks : t -> (Pipe.t * Pipe.t * int * int) list
(** Flags whose sets outnumber their waits over the whole program, as
    [(from, to, flag, net)] with [net > 0].  A leaky program corrupts
    sequential composition: the leftover set satisfies a wait in the
    next part.  Empty for flag-clean programs. *)

val concat : name:string -> t list -> t
(** Sequential composition separated by barriers; buffer peaks take the
    per-part maximum (parts run after one another).  Raises
    [Invalid_argument] if any part leaks flags ([flag_leaks] non-empty) —
    a leaked set would silently satisfy a wait in the following part. *)

val derived_buffer_peak : t -> (Buffer_id.t * int) list
(** Peak footprint recomputed from the instruction stream itself: per
    buffer, the sum over slots of the largest allocating write each slot
    receives.  [External] is excluded.  This is the reference the
    verifier cross-checks declared [buffer_peak] against. *)

val strict_checker :
  (Ascend_arch.Config.t -> t -> (unit, string) result) option ref
(** Hook for the deep static analyzer.  [Ascend_verify.install] sets it;
    [validate ~strict:true] calls it.  Kept as a ref so [lib/isa] does
    not depend on [lib/verify]. *)

val validate :
  ?strict:bool -> Ascend_arch.Config.t -> t -> (unit, string) result
(** Static checks:
    - every instruction maps to a pipe (or is a barrier);
    - every [Wait_flag] has a matching earlier-or-equal count of
      [Set_flag]s on the same (from, to, flag) triple by end of program
      (no flag can remain forever unsatisfied);
    - flag ids are within the hardware's range (0..63 per pipe pair);
    - declared buffer peaks fit the configuration's capacities;
    - cube instructions only use precisions this core supports.

    With [~strict:true], additionally runs the installed
    [strict_checker] (the full happens-before / hazard / peak / leak
    analysis of [Ascend_verify]); errors if no checker is installed. *)

val stats : t -> (Pipe.t * int) list
(** Instruction count per pipe. *)

val pp : Format.formatter -> t -> unit
(** Full disassembly. *)
