type t = {
  program_name : string;
  instructions : Instruction.t list;
  buffer_peak : (Buffer_id.t * int) list;
}

let make ~name ?(buffer_peak = []) instructions =
  { program_name = name; instructions; buffer_peak }

let length t = List.length t.instructions

let merge_peaks a b =
  List.fold_left
    (fun acc (buf, bytes) ->
      let cur = match List.assoc_opt buf acc with Some v -> v | None -> 0 in
      (buf, max cur bytes) :: List.remove_assoc buf acc)
    a b

let max_flag = 63

(* Net flag balance per (from_pipe, to_pipe, flag) triple: sets minus
   waits.  A positive entry means the program ends with that flag still
   set — it leaks state into whatever runs next on the core. *)
let flag_leaks t =
  let tbl : (Pipe.t * Pipe.t * int, int) Hashtbl.t = Hashtbl.create 16 in
  let bump key d =
    let cur = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0 in
    Hashtbl.replace tbl key (cur + d)
  in
  List.iter
    (fun instr ->
      match instr with
      | Instruction.Set_flag { from_pipe; to_pipe; flag } ->
        bump (from_pipe, to_pipe, flag) 1
      | Instruction.Wait_flag { from_pipe; to_pipe; flag } ->
        bump (from_pipe, to_pipe, flag) (-1)
      | _ -> ())
    t.instructions;
  Hashtbl.fold
    (fun (f, p, flag) net acc -> if net > 0 then (f, p, flag, net) :: acc else acc)
    tbl []
  |> List.sort compare

let concat ~name parts =
  List.iter
    (fun p ->
      match flag_leaks p with
      | [] -> ()
      | (f, to_, flag, net) :: _ ->
        invalid_arg
          (Printf.sprintf
             "Program.concat: part %s leaks flag %s->%s #%d (%d set(s) never \
              consumed); a leaked flag would satisfy waits in the next part"
             p.program_name (Pipe.name f) (Pipe.name to_) flag net))
    parts;
  let instructions =
    List.concat_map (fun p -> p.instructions @ [ Instruction.Barrier ]) parts
  in
  let buffer_peak =
    List.fold_left (fun acc p -> merge_peaks acc p.buffer_peak) [] parts
  in
  { program_name = name; instructions; buffer_peak }

(* Independent recomputation of the peak footprint from the instruction
   stream's slot-annotated accesses: per buffer, each slot is charged its
   largest allocating write, and concurrent slots sum.  This is the same
   model the code generator uses to declare [buffer_peak], and
   [Ascend_verify] cross-checks the two. *)
let derived_buffer_peak t =
  let slot_max : (Buffer_id.t * int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun instr ->
      List.iter
        (fun (a : Instruction.access) ->
          if a.alloc && not (Buffer_id.equal a.buffer Buffer_id.External) then begin
            let key = (a.buffer, a.slot) in
            let cur =
              match Hashtbl.find_opt slot_max key with Some v -> v | None -> 0
            in
            Hashtbl.replace slot_max key (max cur a.bytes)
          end)
        (Instruction.accesses instr))
    t.instructions;
  let totals : (Buffer_id.t, int) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (buf, _slot) bytes ->
      let cur =
        match Hashtbl.find_opt totals buf with Some v -> v | None -> 0
      in
      Hashtbl.replace totals buf (cur + bytes))
    slot_max;
  List.filter_map
    (fun buf ->
      match Hashtbl.find_opt totals buf with
      | Some bytes when bytes > 0 -> Some (buf, bytes)
      | _ -> None)
    Buffer_id.all

(* Strict-mode hook: [Ascend_verify] installs its full static analysis
   here when linked (via the [ascend] umbrella library), so [lib/isa]
   need not depend on the analyzer. *)
let strict_checker :
    (Ascend_arch.Config.t -> t -> (unit, string) result) option ref =
  ref None

let validate ?(strict = false) (config : Ascend_arch.Config.t) t =
  let module I = Instruction in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* pipe mapping *)
  let rec check_pipes i = function
    | [] -> Ok ()
    | instr :: rest -> (
      match instr with
      | I.Barrier -> check_pipes (i + 1) rest
      | _ -> (
        match I.pipe_of instr with
        | Some _ -> check_pipes (i + 1) rest
        | None -> err "instruction %d: no pipe (illegal MTE move)" i))
  in
  (* flag balance: sets must cover waits per triple over the whole program *)
  let check_flags () =
    let tbl : (Pipe.t * Pipe.t * int, int * int) Hashtbl.t = Hashtbl.create 16 in
    let bump key dset dwait =
      let s, w =
        match Hashtbl.find_opt tbl key with Some v -> v | None -> (0, 0)
      in
      Hashtbl.replace tbl key (s + dset, w + dwait)
    in
    let range_ok = ref (Ok ()) in
    List.iter
      (fun instr ->
        match instr with
        | I.Set_flag { from_pipe; to_pipe; flag } ->
          if flag < 0 || flag > max_flag then
            range_ok := err "flag id %d out of range" flag;
          bump (from_pipe, to_pipe, flag) 1 0
        | I.Wait_flag { from_pipe; to_pipe; flag } ->
          if flag < 0 || flag > max_flag then
            range_ok := err "flag id %d out of range" flag;
          bump (from_pipe, to_pipe, flag) 0 1
        | _ -> ())
      t.instructions;
    match !range_ok with
    | Error _ as e -> e
    | Ok () ->
      Hashtbl.fold
        (fun (f, p, flag) (sets, waits) acc ->
          match acc with
          | Error _ as e -> e
          | Ok () ->
            if waits > sets then
              err "flag %s->%s #%d: %d waits but only %d sets" (Pipe.name f)
                (Pipe.name p) flag waits sets
            else Ok ())
        tbl (Ok ())
  in
  let check_buffers () =
    List.fold_left
      (fun acc (buf, bytes) ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
          match Buffer_id.capacity_bytes config buf with
          | None -> Ok ()
          | Some cap ->
            if bytes > cap then
              err "buffer %s: peak %d B exceeds capacity %d B"
                (Buffer_id.name buf) bytes cap
            else Ok ()))
      (Ok ()) t.buffer_peak
  in
  let check_precisions () =
    List.fold_left
      (fun acc instr ->
        match (acc, instr) with
        | (Error _ as e), _ -> e
        | Ok (), I.Cube_matmul { precision; _ } ->
          if Ascend_arch.Config.supports config precision then Ok ()
          else
            err "cube precision %s unsupported on %s"
              (Ascend_arch.Precision.name precision)
              config.name
        | Ok (), _ -> Ok ())
      (Ok ()) t.instructions
  in
  let check_strict () =
    if not strict then Ok ()
    else
      match !strict_checker with
      | Some check -> check config t
      | None ->
        Error
          "strict validation requested but no checker installed (link the \
           ascend umbrella library or Ascend_verify)"
  in
  match check_pipes 0 t.instructions with
  | Error _ as e -> e
  | Ok () -> (
    match check_flags () with
    | Error _ as e -> e
    | Ok () -> (
      match check_buffers () with
      | Error _ as e -> e
      | Ok () -> (
        match check_precisions () with
        | Error _ as e -> e
        | Ok () -> check_strict ())))

let stats t =
  let counts = Array.make Pipe.count 0 in
  List.iter
    (fun instr ->
      match Instruction.pipe_of instr with
      | Some p -> counts.(Pipe.index p) <- counts.(Pipe.index p) + 1
      | None -> ())
    t.instructions;
  List.map (fun p -> (p, counts.(Pipe.index p))) Pipe.all

let pp ppf t =
  Format.fprintf ppf "program %s (%d instructions)@." t.program_name
    (List.length t.instructions);
  List.iteri
    (fun i instr -> Format.fprintf ppf "%5d  %a@." i Instruction.pp instr)
    t.instructions
