(** Per-model dynamic batching queue with a queue-depth admission bound.

    Policy (the standard server-side dynamic batcher): a batch becomes
    ready as soon as [max_batch] requests are queued, or as soon as the
    oldest queued request has waited [max_delay_s] — a request is never
    held past its delay bound waiting for peers.  Admission control is a
    hard queue-depth cap: an offer past [queue_depth] is shed
    immediately (the paper's §5.2 QoS story needs overload to fail
    predictably, not by unbounded queueing). *)

type t

type verdict = Admitted | Shed

val create :
  ?label:string ->
  max_batch:int -> max_delay_s:float -> queue_depth:int -> unit -> t
(** [label] (default ["queue"]) names the queue in observability output
    — the serving loop uses the model name.  Raises [Invalid_argument]
    on [max_batch < 1], [queue_depth < 1] or negative [max_delay_s]. *)

val label : t -> string
val max_batch : t -> int
val queue_depth : t -> int

val offer : t -> Request.t -> verdict
(** FIFO enqueue; [Shed] when [length t = queue_depth]. *)

val sheds : t -> int
(** Monotonic count of offers shed since creation (the obs shed-counter
    series). *)

val length : t -> int

val oldest : t -> Request.t option

val ready : t -> now:float -> bool
(** A batch can be formed now: the queue holds a full [max_batch], or
    the oldest request has waited at least [max_delay_s]. *)

val deadline : t -> float option
(** The time at which the queue becomes ready by delay alone:
    [oldest.arrival_s + max_delay_s]; [None] on an empty queue. *)

val take : t -> Request.t list
(** Dequeue up to [max_batch] requests in FIFO order.  The caller checks
    {!ready} first; [take] itself only bounds the batch size. *)
