module Prng = Ascend_util.Prng

type process =
  | Uniform
  | Poisson
  | Bursty of { factor : float; period_s : float }

type t = {
  process : process;
  rate_per_s : float;
  duration_s : float;
  seed : int;
}

let create ?(process = Poisson) ~rate_per_s ~duration_s ~seed () =
  if rate_per_s <= 0. then invalid_arg "Load_gen.create: non-positive rate";
  if duration_s <= 0. then
    invalid_arg "Load_gen.create: non-positive duration";
  (match process with
  | Bursty { factor; period_s } ->
    if factor < 1. then invalid_arg "Load_gen.create: bursty factor < 1";
    if period_s <= 0. then
      invalid_arg "Load_gen.create: non-positive burst period"
  | Uniform | Poisson -> ());
  { process; rate_per_s; duration_s; seed }

let exponential rng ~rate =
  let u = Prng.float rng ~bound:1. in
  -.log (1. -. u) /. rate

(* accumulate exponential interarrivals on a virtual time axis until
   [horizon]; [remap] projects virtual time to real time (identity for
   plain Poisson) *)
let poisson_times rng ~rate ~horizon ~remap ~duration =
  let rec go t acc =
    let t = t +. exponential rng ~rate in
    if t >= horizon then List.rev acc
    else
      let real = remap t in
      if real >= duration then List.rev acc else go t (real :: acc)
  in
  go 0. []

let arrivals t =
  match t.process with
  | Uniform ->
    let n = int_of_float (ceil (t.rate_per_s *. t.duration_s)) in
    List.init n (fun i -> float_of_int i /. t.rate_per_s)
    |> List.filter (fun x -> x < t.duration_s)
  | Poisson ->
    let rng = Prng.create ~seed:t.seed in
    poisson_times rng ~rate:t.rate_per_s ~horizon:t.duration_s
      ~remap:(fun x -> x) ~duration:t.duration_s
  | Bursty { factor; period_s } ->
    (* the on-phases concatenated form a compressed time axis of total
       length duration/factor; generate Poisson at factor*rate there and
       expand each on-phase back to its real window *)
    let rng = Prng.create ~seed:t.seed in
    let on_len = period_s /. factor in
    let remap u =
      let window = Float.of_int (int_of_float (u /. on_len)) in
      (window *. period_s) +. (u -. (window *. on_len))
    in
    poisson_times rng
      ~rate:(factor *. t.rate_per_s)
      ~horizon:(t.duration_s /. factor)
      ~remap ~duration:t.duration_s

let process_name = function
  | Uniform -> "uniform"
  | Poisson -> "poisson"
  | Bursty _ -> "bursty"

type length_dist =
  | Fixed of int
  | Geometric of { mean : float; max_len : int }

let validate_length_dist = function
  | Fixed n -> if n < 1 then invalid_arg "Load_gen.lengths: fixed length < 1"
  | Geometric { mean; max_len } ->
    if mean < 1. then invalid_arg "Load_gen.lengths: geometric mean < 1";
    if max_len < 1 then invalid_arg "Load_gen.lengths: geometric max_len < 1"

(* inversion sampling of the geometric law on {1, 2, ...} with success
   probability p = 1/mean: ceil(ln(1-U) / ln(1-p)); mean 1 degenerates
   to the constant 1 *)
let geometric rng ~mean ~max_len =
  if mean <= 1. then 1
  else
    let p = 1. /. mean in
    let u = Prng.float rng ~bound:1. in
    let k = int_of_float (ceil (log (1. -. u) /. log (1. -. p))) in
    min max_len (max 1 k)

let lengths dist ~seed ~n =
  if n < 0 then invalid_arg "Load_gen.lengths: negative count";
  validate_length_dist dist;
  match dist with
  | Fixed len -> List.init n (fun _ -> len)
  | Geometric { mean; max_len } ->
    let rng = Prng.create ~seed in
    List.init n (fun _ -> geometric rng ~mean ~max_len)

let length_dist_name = function
  | Fixed _ -> "fixed"
  | Geometric _ -> "geometric"
