(** The request-level serving simulator: open/closed-loop traffic over
    the dynamic batcher, dispatched onto a multi-core SoC through the
    §5.2 {!Ascend_runtime.Scheduler} with QoS priorities, measured by
    the SLO metrics layer.

    Discrete-event semantics over simulated seconds: at each decision
    point (an arrival, a batching deadline, a core becoming free) the
    dispatcher forms every ready batch, prices each one through the
    memoized compiler+simulator {!Cost} oracle, and hands the batch set
    to [Scheduler.run] over the currently idle cores — so placement
    order under contention is exactly the runtime scheduler's QoS
    policy: higher priority first, FIFO within a priority.  Admission
    control sheds a request on arrival when its model queue is at the
    configured depth bound.

    Everything is deterministic: same specs + seeds => byte-identical
    {!to_json} output. *)

type workload =
  | Open_loop of Load_gen.t
  | Closed_loop of { clients : int; think_s : float; seed : int }
      (** [clients] concurrent callers, each re-issuing after its
          previous request completes plus an exponential think time of
          mean [think_s] (zero: immediate re-issue). *)

type model_spec = {
  name : string;
  build : batch:int -> Ascend_nn.Graph.t;
  priority : int;   (** QoS priority, higher wins under contention *)
  slo_ms : float;
  workload : workload;
}

type config = {
  core : Ascend_arch.Config.t;
  cores : int;
  max_batch : int;
  max_delay_s : float;
  queue_depth : int;
  duration_s : float;  (** load window; queued work drains past it *)
  bucket_s : float;    (** occupancy-series bucket width *)
  costing : Cost.costing;
      (** [`Exact] prices every batch through the cycle-level path;
          [`Surrogate] interpolates a per-model table calibrated on
          anchor batches up to [max_batch] (see {!Cost}). *)
}

val default_config : core:Ascend_arch.Config.t -> cores:int -> config
(** max_batch 8, max_delay 2 ms, queue_depth 64, duration 1 s,
    bucket 50 ms, exact costing. *)

type batch_exec = {
  bx_model : string;
  bx_priority : int;
  bx_size : int;
  bx_core : int;
  bx_start_s : float;
  bx_finish_s : float;
  bx_cycles : int;
}

type result = {
  served_config : config;
  records : Request.record list;   (** in request-id order *)
  batches : batch_exec list;       (** in dispatch order *)
  metrics : Metrics.t;
  offline_makespan_cycles : int;
      (** the same batch set re-packed by [Scheduler.run] as one closed
          schedule (all work present at t=0): the offline bound the
          online run is compared against *)
  offline_utilization : float;
  cost_hits : int;
  cost_misses : int;
  cost_interpolated : int;  (** surrogate-answered lookups *)
  cost_fallbacks : int;     (** surrogate out-of-range, priced exactly *)
  cost_stats : Ascend_exec.Cache.stats;
      (** the cost oracle's private service cache, disk tier included *)
}

val run : config -> model_spec list -> (result, string) Stdlib.result
(** Raises [Invalid_argument] on malformed config (non-positive cores /
    duration, duplicate model names, empty spec list, closed-loop with
    [clients < 1]). Returns [Error] when a model fails to compile on the
    configured core. *)

val scheduler_apps : result -> Ascend_runtime.Scheduler.app list
(** The dispatched batches as one offline scheduler input: one app per
    model carrying its QoS priority, one stream per batch. *)

val to_json : result -> Ascend_util.Json.t

val pp : Format.formatter -> result -> unit
(** Metrics summary plus the offline-bound and cost-cache lines. *)
