(** A single inference request flowing through the serving stack, and the
    completion record the metrics layer consumes.

    Times are simulated seconds from the start of the run (the serving
    layer never reads a wall clock: reproducibility is a hard
    requirement, see DESIGN.md §7). *)

type t = {
  id : int;            (** unique, in generation order *)
  model : string;
  arrival_s : float;
  priority : int;      (** the QoS priority of paper §3.3 / §5.2 *)
  slo_s : float;       (** end-to-end latency objective *)
}

type outcome =
  | Completed
  | Rejected  (** shed by admission control at arrival *)

type record = {
  request : t;
  outcome : outcome;
  start_s : float;   (** batch dispatch time; [arrival_s] when rejected *)
  finish_s : float;  (** completion time; [arrival_s] when rejected *)
  batch : int;       (** size of the batch it rode in; 0 when rejected *)
  core : int;        (** core index; -1 when rejected *)
}

val rejected : t -> record

val latency_s : record -> float
(** Queueing delay plus batch execution: [finish_s - arrival_s]. *)

val met_slo : record -> bool
(** Completed with [latency_s <= slo_s]. *)
