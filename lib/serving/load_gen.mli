(** Deterministic open-loop load generation: seeded arrival processes
    for one request stream.

    Every process is a pure function of its spec (rate, duration, seed):
    the same spec always yields the same arrival times.  Wall-clock
    seeding is deliberately impossible — reproducibility of a serving
    run is part of its contract (DESIGN.md §7). *)

type process =
  | Uniform
      (** Evenly spaced, arrival [i] at [i / rate] — the deterministic
          baseline with zero burstiness. *)
  | Poisson
      (** Exponential interarrivals via inversion sampling of a seeded
          {!Ascend_util.Prng} stream: [dt = -ln(1 - U) / rate]. *)
  | Bursty of { factor : float; period_s : float }
      (** On/off-modulated Poisson: each [period_s] window opens with an
          on-phase of [period_s / factor] during which arrivals follow a
          Poisson process at [factor * rate]; the rest of the window is
          silent.  Mean rate is preserved; [factor >= 1]. *)

type t = {
  process : process;
  rate_per_s : float;
  duration_s : float;
  seed : int;
}

val create :
  ?process:process -> rate_per_s:float -> duration_s:float -> seed:int ->
  unit -> t
(** Default process {!Poisson}.  Raises [Invalid_argument] on
    non-positive rate/duration, a bursty [factor < 1] or non-positive
    [period_s]. *)

val arrivals : t -> float list
(** Strictly increasing-or-equal sorted times in [0, duration_s). *)

val process_name : process -> string

type length_dist =
  | Fixed of int  (** Every request gets the same length. *)
  | Geometric of { mean : float; max_len : int }
      (** Geometric law on [{1, 2, ...}] with the given mean, sampled by
          inversion of a seeded {!Ascend_util.Prng} stream and clamped to
          [max_len] — the standard shape for decode output lengths (many
          short answers, a long tail). *)

val lengths : length_dist -> seed:int -> n:int -> int list
(** [n] per-request token counts, a pure function of (dist, seed, n) —
    the decode serving loop draws prompt and output lengths here so a
    trace is reproducible end to end.  Raises [Invalid_argument] on a
    negative [n], a fixed length < 1, a geometric mean < 1 or a
    geometric [max_len] < 1. *)

val length_dist_name : length_dist -> string
