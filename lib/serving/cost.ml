module Engine = Ascend_compiler.Engine
module Service = Ascend_exec.Service

type entry = { cycles : int; latency_s : float; energy_j : float }

(* One private execution service per oracle: serving sweeps re-price the
   same handful of (model, batch) pairs thousands of times, and every
   repeat resolves in the service's content-addressed cache at the
   fused-group level.  The service is private (not [Service.default])
   and single-domain so that a [Serve.run] is a pure function of its
   inputs — counters included — regardless of what else the process ran
   before. *)
type t = {
  core : Ascend_arch.Config.t;
  service : Service.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~core () =
  { core; service = Service.create ~jobs:1 (); hits = 0; misses = 0 }

let core t = t.core

let lookup t ~model:_ ~build ~batch =
  if batch < 1 then invalid_arg "Cost.lookup: batch < 1";
  let before = Service.stats t.service in
  let r =
    match Service.run_inference t.service t.core (build ~batch) with
    | Error _ as e -> e
    | Ok nr ->
      Ok
        {
          cycles = nr.Engine.total_cycles;
          latency_s = Engine.seconds nr;
          energy_j = nr.Engine.total_energy_j;
        }
  in
  let after = Service.stats t.service in
  t.hits <- t.hits + (after.Ascend_exec.Cache.hits - before.Ascend_exec.Cache.hits);
  t.misses <-
    t.misses + (after.Ascend_exec.Cache.misses - before.Ascend_exec.Cache.misses);
  r

let hits t = t.hits
let misses t = t.misses
