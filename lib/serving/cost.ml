module Engine = Ascend_compiler.Engine

type entry = { cycles : int; latency_s : float; energy_j : float }

type t = {
  core : Ascend_arch.Config.t;
  table : (string * int, (entry, string) result) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~core () = { core; table = Hashtbl.create 16; hits = 0; misses = 0 }

let core t = t.core

let lookup t ~model ~build ~batch =
  if batch < 1 then invalid_arg "Cost.lookup: batch < 1";
  match Hashtbl.find_opt t.table (model, batch) with
  | Some r ->
    t.hits <- t.hits + 1;
    r
  | None ->
    t.misses <- t.misses + 1;
    let r =
      match Engine.run_inference t.core (build ~batch) with
      | Error _ as e -> e
      | Ok nr ->
        Ok
          {
            cycles = nr.Engine.total_cycles;
            latency_s = Engine.seconds nr;
            energy_j = nr.Engine.total_energy_j;
          }
    in
    Hashtbl.replace t.table (model, batch) r;
    r

let hits t = t.hits
let misses t = t.misses
