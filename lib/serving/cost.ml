module Engine = Ascend_compiler.Engine
module Service = Ascend_exec.Service
module Surrogate = Ascend_cost.Surrogate

type entry = Surrogate.entry = {
  cycles : int;
  latency_s : float;
  energy_j : float;
}

type costing = [ `Exact | `Surrogate ]

(* One private execution service per oracle: serving sweeps re-price the
   same handful of (model, batch) pairs thousands of times, and every
   repeat resolves in the service's content-addressed cache at the
   fused-group level.  The service is private (not [Service.default])
   and single-domain so that a [Serve.run] is a pure function of its
   inputs — counters included — regardless of what else the process ran
   before.  ([ASCEND_CACHE_DIR] is the one documented exception: it
   opts the private service into the persistent disk tier, so a warm
   directory trades some of that purity for cross-process reuse.) *)
type t = {
  core : Ascend_arch.Config.t;
  service : Service.t;
  costing : costing;
  max_batch : int;
  fits : (string, Surrogate.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable interpolated : int;
  mutable fallbacks : int;
}

let create ?(costing = `Exact) ?(max_batch = 8) ~core () =
  if max_batch < 1 then invalid_arg "Cost.create: max_batch < 1";
  {
    core;
    service = Service.create ~jobs:1 ?dir:(Service.env_cache_dir ()) ();
    costing;
    max_batch;
    fits = Hashtbl.create 8;
    hits = 0;
    misses = 0;
    interpolated = 0;
    fallbacks = 0;
  }

let core t = t.core
let costing t = t.costing

(* Tier B: the exact compile+simulate path, with hit/miss deltas folded
   into the oracle's own counters *)
let exact t ~build ~batch =
  let before = Service.stats t.service in
  let r =
    match Service.run_inference t.service t.core (build ~batch) with
    | Error _ as e -> e
    | Ok nr ->
      Ok
        {
          cycles = nr.Engine.total_cycles;
          latency_s = Engine.seconds nr;
          energy_j = nr.Engine.total_energy_j;
        }
  in
  let after = Service.stats t.service in
  t.hits <- t.hits + (after.Ascend_exec.Cache.hits - before.Ascend_exec.Cache.hits);
  t.misses <-
    t.misses + (after.Ascend_exec.Cache.misses - before.Ascend_exec.Cache.misses);
  r

(* budget-driven refined fit (see {!Ascend_cost.Calibration}): prices
   every batch in 1..max_batch once through Tier B, then keeps the
   sparsest anchor set whose interpolation stays within the default 5%
   cycle-error budget — the same table the [calibrate] CLI reports on *)
let fit t ~model ~build =
  match Hashtbl.find_opt t.fits model with
  | Some f -> Ok f
  | None -> (
    let r =
      Ascend_cost.Calibration.fit ~model
        ~price:(fun ~batch -> exact t ~build ~batch)
        ~max_batch:t.max_batch ()
    in
    match r with
    | Ok f ->
      Hashtbl.replace t.fits model f;
      r
    | Error _ -> r)

let lookup t ~model ~build ~batch =
  if batch < 1 then invalid_arg "Cost.lookup: batch < 1";
  match t.costing with
  | `Exact -> exact t ~build ~batch
  | `Surrogate -> (
    match fit t ~model ~build with
    | Error _ as e -> e
    | Ok f -> (
      match Surrogate.lookup f ~batch with
      | Some e ->
        t.interpolated <- t.interpolated + 1;
        Ok e
      | None ->
        (* out of the surrogate's confidence range: extrapolating past
           the largest anchor could be arbitrarily wrong, so fall back
           to the oracle *)
        t.fallbacks <- t.fallbacks + 1;
        exact t ~build ~batch))

let hits t = t.hits
let misses t = t.misses
let interpolated t = t.interpolated
let fallbacks t = t.fallbacks
let stats t = Service.stats t.service
