type t = {
  id : int;
  model : string;
  arrival_s : float;
  priority : int;
  slo_s : float;
}

type outcome = Completed | Rejected

type record = {
  request : t;
  outcome : outcome;
  start_s : float;
  finish_s : float;
  batch : int;
  core : int;
}

let rejected r =
  {
    request = r;
    outcome = Rejected;
    start_s = r.arrival_s;
    finish_s = r.arrival_s;
    batch = 0;
    core = -1;
  }

let latency_s r = r.finish_s -. r.request.arrival_s

let met_slo r = r.outcome = Completed && latency_s r <= r.request.slo_s
