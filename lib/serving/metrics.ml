module Stats = Ascend_util.Stats
module Json = Ascend_util.Json
module Table = Ascend_util.Table

type model_summary = {
  model : string;
  priority : int;
  slo_ms : float;
  offered : int;
  completed : int;
  rejected : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  slo_attainment : float;
  goodput_per_s : float;
  throughput_per_s : float;
  rejection_rate : float;
  mean_batch : float;
}

type t = {
  duration_s : float;
  horizon_s : float;
  bucket_s : float;
  summaries : model_summary list;
  core_busy_s : float array;
  core_utilization : float array;
  occupancy : float array;
}

let summarize ~duration_s ~model ~priority ~slo_ms records =
  let mine =
    List.filter (fun r -> r.Request.request.Request.model = model) records
  in
  let done_, rej =
    List.partition (fun r -> r.Request.outcome = Request.Completed) mine
  in
  let lat_ms =
    List.map (fun r -> 1e3 *. Request.latency_s r) done_
  in
  let within = List.filter Request.met_slo done_ in
  (* one sort serves every percentile below — the three per-model
     tail queries were each re-sorting the full latency trace *)
  let lat_sorted = Stats.sorted_of_list lat_ms in
  let pct p =
    if lat_ms = [] then 0. else Stats.percentile_of_sorted p lat_sorted
  in
  {
    model;
    priority;
    slo_ms;
    offered = List.length mine;
    completed = List.length done_;
    rejected = List.length rej;
    mean_ms = Stats.mean lat_ms;
    p50_ms = pct 50.;
    p95_ms = pct 95.;
    p99_ms = pct 99.;
    max_ms =
      (if lat_ms = [] then 0.
       else lat_sorted.(Array.length lat_sorted - 1));
    slo_attainment =
      (if done_ = [] then 0.
       else float_of_int (List.length within) /. float_of_int (List.length done_));
    goodput_per_s = float_of_int (List.length within) /. duration_s;
    throughput_per_s = float_of_int (List.length done_) /. duration_s;
    rejection_rate =
      (if mine = [] then 0.
       else float_of_int (List.length rej) /. float_of_int (List.length mine));
    mean_batch =
      Stats.mean (List.map (fun r -> float_of_int r.Request.batch) done_);
  }

let build ~duration_s ~bucket_s ~cores ~models ~busy records =
  if duration_s <= 0. then invalid_arg "Metrics.build: non-positive duration";
  if bucket_s <= 0. then invalid_arg "Metrics.build: non-positive bucket";
  if cores <= 0 then invalid_arg "Metrics.build: non-positive cores";
  let horizon_s =
    List.fold_left
      (fun acc (_, _, finish) -> Float.max acc finish)
      duration_s busy
  in
  let core_busy_s = Array.make cores 0. in
  List.iter
    (fun (core, start, finish) ->
      if core < 0 || core >= cores then
        invalid_arg "Metrics.build: busy span on unknown core";
      core_busy_s.(core) <- core_busy_s.(core) +. (finish -. start))
    busy;
  let n_buckets = max 1 (int_of_float (ceil (horizon_s /. bucket_s))) in
  let occupancy = Array.make n_buckets 0. in
  List.iter
    (fun (_, start, finish) ->
      let first = int_of_float (start /. bucket_s) in
      let last =
        min (n_buckets - 1) (int_of_float (finish /. bucket_s))
      in
      for b = first to last do
        let lo = Float.max start (float_of_int b *. bucket_s) in
        let hi = Float.min finish (float_of_int (b + 1) *. bucket_s) in
        if hi > lo then occupancy.(b) <- occupancy.(b) +. (hi -. lo)
      done)
    busy;
  Array.iteri
    (fun b acc -> occupancy.(b) <- acc /. (bucket_s *. float_of_int cores))
    occupancy;
  {
    duration_s;
    horizon_s;
    bucket_s;
    summaries =
      List.map
        (fun (model, priority, slo_ms) ->
          summarize ~duration_s ~model ~priority ~slo_ms records)
        models;
    core_busy_s;
    core_utilization =
      Array.map (fun b -> b /. horizon_s) core_busy_s;
    occupancy;
  }

let summary_to_json s =
  Json.Obj
    [
      ("model", Json.String s.model);
      ("priority", Json.Int s.priority);
      ("slo_ms", Json.Float s.slo_ms);
      ("offered", Json.Int s.offered);
      ("completed", Json.Int s.completed);
      ("rejected", Json.Int s.rejected);
      ("mean_ms", Json.Float s.mean_ms);
      ("p50_ms", Json.Float s.p50_ms);
      ("p95_ms", Json.Float s.p95_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ("max_ms", Json.Float s.max_ms);
      ("slo_attainment", Json.Float s.slo_attainment);
      ("goodput_per_s", Json.Float s.goodput_per_s);
      ("throughput_per_s", Json.Float s.throughput_per_s);
      ("rejection_rate", Json.Float s.rejection_rate);
      ("mean_batch", Json.Float s.mean_batch);
    ]

let to_json t =
  Json.Obj
    [
      ("duration_s", Json.Float t.duration_s);
      ("horizon_s", Json.Float t.horizon_s);
      ("bucket_s", Json.Float t.bucket_s);
      ("models", Json.List (List.map summary_to_json t.summaries));
      ( "core_utilization",
        Json.List
          (Array.to_list (Array.map (fun u -> Json.Float u) t.core_utilization))
      );
      ( "occupancy",
        Json.List
          (Array.to_list (Array.map (fun u -> Json.Float u) t.occupancy)) );
    ]

(* one char per bucket, deepening with occupancy *)
let occupancy_char u =
  let ramp = " .:-=+*#@" in
  let n = String.length ramp in
  let i =
    int_of_float (Stats.clamp ~lo:0. ~hi:(float_of_int (n - 1)) (u *. float_of_int n))
  in
  ramp.[i]

let pp ppf t =
  let table =
    Table.create
      ~header:
        [ "model"; "prio"; "slo ms"; "offered"; "done"; "rej"; "rej%";
          "p50 ms"; "p95 ms"; "p99 ms"; "slo%"; "goodput/s"; "batch" ]
      ()
  in
  List.iter
    (fun s ->
      Table.add_row table
        [
          s.model;
          string_of_int s.priority;
          Table.cell_float ~decimals:1 s.slo_ms;
          string_of_int s.offered;
          string_of_int s.completed;
          string_of_int s.rejected;
          Printf.sprintf "%.1f%%" (100. *. s.rejection_rate);
          Table.cell_float s.p50_ms;
          Table.cell_float s.p95_ms;
          Table.cell_float s.p99_ms;
          Printf.sprintf "%.1f%%" (100. *. s.slo_attainment);
          Table.cell_float ~decimals:1 s.goodput_per_s;
          Table.cell_float ~decimals:1 s.mean_batch;
        ])
    t.summaries;
  Format.fprintf ppf "%s@." (Table.render table);
  Array.iteri
    (fun i u ->
      let filled = int_of_float (u *. 40.) in
      Format.fprintf ppf "core%-2d %5.1f%% |%s%s|@." i (100. *. u)
        (String.make filled '=')
        (String.make (40 - filled) ' '))
    t.core_utilization;
  Format.fprintf ppf "occupancy (%.0f ms buckets): [%s]@."
    (1e3 *. t.bucket_s)
    (String.init (Array.length t.occupancy) (fun i ->
         occupancy_char t.occupancy.(i)))
