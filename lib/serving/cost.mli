(** Memoized batch-latency oracle over the real compiler + core
    simulator path.

    A serving sweep dispatches thousands of batches but only ever sees a
    handful of distinct (model, batch-size) pairs on its fixed core
    version; each pair is compiled and simulated once
    ({!Ascend_compiler.Engine.run_inference}) and cached, so request-level
    simulation stays interactive while every latency number still comes
    from the cycle-level simulator. *)

type entry = {
  cycles : int;        (** one batch on one core *)
  latency_s : float;
  energy_j : float;
}

type t

val create : core:Ascend_arch.Config.t -> unit -> t

val core : t -> Ascend_arch.Config.t

val lookup :
  t -> model:string -> build:(batch:int -> Ascend_nn.Graph.t) -> batch:int ->
  (entry, string) result
(** Cached by [(model, batch)].  Raises [Invalid_argument] on
    [batch < 1]. *)

val hits : t -> int
val misses : t -> int
(** Cache statistics: [misses] counts actual compile+simulate runs. *)
