(** The two-tier batch-latency oracle behind the serving loops.

    Tier B (the default, [`Exact]) prices every batch over the real
    compiler + core-simulator path through a private
    {!Ascend_exec.Service} whose cache is keyed by (config, fused group,
    codegen options) — repeated (model, batch) pairs resolve without
    re-simulation, but each call still rebuilds the model graph,
    partitions it and hashes every group.  Tier A ([`Surrogate]) removes
    that per-lookup floor: on a model's first pricing, batches
    [1 .. max_batch] are priced through Tier B and fitted into a
    piecewise-linear table by the budget-driven refinement of
    {!Ascend_cost.Calibration.fit} (sparse geometric anchors where
    cycles scale smoothly, denser where tiling makes them step — max
    cycle error within the 5% budget by construction); every later
    lookup interpolates in O(1) with zero graph construction.  A batch
    beyond the largest anchor is outside the
    surrogate's confidence range and falls back to Tier B (counted in
    {!fallbacks}).

    Both tiers are deterministic: same inputs, same costing, same
    answers — counters included.  [`Exact] stays the default so the CI
    byte-identity gates are untouched; [`Surrogate] runs pin their own
    outputs.  The private service is single-domain, keeping a
    [Serve.run] a pure function of its inputs; the one documented
    exception is [ASCEND_CACHE_DIR], which opts the private service into
    the persistent disk tier ({!stats} exposes its counters). *)

type entry = Ascend_cost.Surrogate.entry = {
  cycles : int;        (** one batch on one core *)
  latency_s : float;
  energy_j : float;
}

type costing = [ `Exact | `Surrogate ]

type t

val create :
  ?costing:costing -> ?max_batch:int -> core:Ascend_arch.Config.t -> unit -> t
(** [costing] defaults to [`Exact]; [max_batch] (default 8) bounds the
    surrogate's anchor schedule — lookups beyond it fall back to the
    exact tier.  Raises [Invalid_argument] on [max_batch < 1]. *)

val core : t -> Ascend_arch.Config.t
val costing : t -> costing

val lookup :
  t -> model:string -> build:(batch:int -> Ascend_nn.Graph.t) -> batch:int ->
  (entry, string) result
(** Price [build ~batch].  [`Exact]: compile+simulate through the cached
    service.  [`Surrogate]: calibrate the model's table on first use,
    then interpolate.  Raises [Invalid_argument] on [batch < 1]. *)

val hits : t -> int
val misses : t -> int
(** Fused-group-level cache counters of the exact tier: [misses] counts
    actual compile+simulate runs, [hits] counts group results served
    from the content-addressed cache.  Surrogate-mode calibration flows
    through the same counters; interpolated lookups touch neither. *)

val interpolated : t -> int
(** Lookups answered by the surrogate table (always 0 under [`Exact]). *)

val fallbacks : t -> int
(** Surrogate-mode lookups beyond the largest anchor, answered by the
    exact tier. *)

val stats : t -> Ascend_exec.Cache.stats
(** The private service's cache counters, disk tier included. *)
