(** Batch-latency oracle over the real compiler + core simulator path,
    backed by the execution service's content-addressed cache.

    A serving sweep dispatches thousands of batches but only ever sees a
    handful of distinct (model, batch-size) pairs on its fixed core
    version.  Each pricing call compiles and simulates through a private
    {!Ascend_exec.Service} whose cache is keyed by (config, fused group,
    codegen options), so repeated pairs resolve without re-simulation
    and request-level simulation stays interactive while every latency
    number still comes from the cycle-level simulator.  The service is
    private and single-domain, keeping a [Serve.run] — counters included
    — a pure function of its inputs. *)

type entry = {
  cycles : int;        (** one batch on one core *)
  latency_s : float;
  energy_j : float;
}

type t

val create : core:Ascend_arch.Config.t -> unit -> t

val core : t -> Ascend_arch.Config.t

val lookup :
  t -> model:string -> build:(batch:int -> Ascend_nn.Graph.t) -> batch:int ->
  (entry, string) result
(** Compile+simulate [build ~batch] through the cached service.  Raises
    [Invalid_argument] on [batch < 1]. *)

val hits : t -> int
val misses : t -> int
(** Fused-group-level cache counters: [misses] counts actual
    compile+simulate runs, [hits] counts group results served from the
    content-addressed cache. *)
