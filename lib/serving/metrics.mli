(** SLO metrics over a finished serving run: per-model latency
    percentiles, goodput, rejection rate, per-core utilization and a
    time-bucketed occupancy series — exportable as JSON and as an ASCII
    summary in the {!Ascend_core_sim.Timeline.utilization_bars} style. *)

type model_summary = {
  model : string;
  priority : int;
  slo_ms : float;
  offered : int;            (** admitted + shed *)
  completed : int;
  rejected : int;
  mean_ms : float;
  p50_ms : float;
      (** Latency percentiles use {!Ascend_util.Stats.percentile}'s
          nearest-rank semantics: the smallest observed latency with at
          least [ceil (p/100 * n)] of the sample at or below it — always
          an actually observed latency, never an interpolated one.  A
          single completion is its own p50/p95/p99; with two completions
          [a <= b], p50 is [a] and p95/p99 are [b].  All percentiles are
          0 when nothing completed. *)
  p95_ms : float;
  p99_ms : float;
  max_ms : float;           (** 0 when nothing completed *)
  slo_attainment : float;   (** completed within SLO / completed *)
  goodput_per_s : float;    (** completions within SLO / duration *)
  throughput_per_s : float; (** all completions / duration *)
  rejection_rate : float;   (** rejected / offered *)
  mean_batch : float;       (** mean dispatched batch size seen by requests *)
}

type t = {
  duration_s : float;        (** the configured load window *)
  horizon_s : float;         (** max(duration, last completion) *)
  bucket_s : float;
  summaries : model_summary list;  (** in the given model order *)
  core_busy_s : float array;
  core_utilization : float array;  (** busy / horizon, per core *)
  occupancy : float array;
      (** per time bucket: mean busy fraction across cores in that
          bucket, over [0, horizon) *)
}

val build :
  duration_s:float ->
  bucket_s:float ->
  cores:int ->
  models:(string * int * float) list ->
  busy:(int * float * float) list ->
  Request.record list ->
  t
(** [models] lists (name, priority, slo_ms) and fixes the summary order;
    [busy] lists (core, start_s, finish_s) batch execution spans (a
    batch is one span, however many requests it carried).  Raises
    [Invalid_argument] on non-positive [duration_s], [bucket_s] or
    [cores]. *)

val to_json : t -> Ascend_util.Json.t

val pp : Format.formatter -> t -> unit
