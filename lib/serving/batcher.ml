type t = {
  label : string;
  max_batch : int;
  max_delay_s : float;
  queue_depth : int;
  queue : Request.t Queue.t;
  mutable sheds : int;
}

type verdict = Admitted | Shed

let create ?(label = "queue") ~max_batch ~max_delay_s ~queue_depth () =
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  if queue_depth < 1 then invalid_arg "Batcher.create: queue_depth < 1";
  if max_delay_s < 0. then invalid_arg "Batcher.create: negative max_delay";
  {
    label;
    max_batch;
    max_delay_s;
    queue_depth;
    queue = Queue.create ();
    sheds = 0;
  }

let label t = t.label
let max_batch t = t.max_batch
let queue_depth t = t.queue_depth

let offer t r =
  if Queue.length t.queue >= t.queue_depth then begin
    t.sheds <- t.sheds + 1;
    Shed
  end
  else begin
    Queue.push r t.queue;
    Admitted
  end

let sheds t = t.sheds

let length t = Queue.length t.queue

let oldest t = Queue.peek_opt t.queue

let deadline t =
  match Queue.peek_opt t.queue with
  | None -> None
  | Some r -> Some (r.Request.arrival_s +. t.max_delay_s)

let ready t ~now =
  match Queue.peek_opt t.queue with
  | None -> false
  | Some r ->
    Queue.length t.queue >= t.max_batch
    || now >= r.Request.arrival_s +. t.max_delay_s

let take t =
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.queue with
      | None -> List.rev acc
      | Some r -> go (n - 1) (r :: acc)
  in
  go t.max_batch []
