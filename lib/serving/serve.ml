module Scheduler = Ascend_runtime.Scheduler
module Prng = Ascend_util.Prng
module Units = Ascend_util.Units
module Json = Ascend_util.Json
module Obs = Ascend_obs

type workload =
  | Open_loop of Load_gen.t
  | Closed_loop of { clients : int; think_s : float; seed : int }

type model_spec = {
  name : string;
  build : batch:int -> Ascend_nn.Graph.t;
  priority : int;
  slo_ms : float;
  workload : workload;
}

type config = {
  core : Ascend_arch.Config.t;
  cores : int;
  max_batch : int;
  max_delay_s : float;
  queue_depth : int;
  duration_s : float;
  bucket_s : float;
  costing : Cost.costing;
}

let default_config ~core ~cores =
  {
    core;
    cores;
    max_batch = 8;
    max_delay_s = 2e-3;
    queue_depth = 64;
    duration_s = 1.;
    bucket_s = 50e-3;
    costing = `Exact;
  }

let costing_name = function `Exact -> "exact" | `Surrogate -> "surrogate"

type batch_exec = {
  bx_model : string;
  bx_priority : int;
  bx_size : int;
  bx_core : int;
  bx_start_s : float;
  bx_finish_s : float;
  bx_cycles : int;
}

type result = {
  served_config : config;
  records : Request.record list;
  batches : batch_exec list;
  metrics : Metrics.t;
  offline_makespan_cycles : int;
  offline_utilization : float;
  cost_hits : int;
  cost_misses : int;
  cost_interpolated : int;
  cost_fallbacks : int;
  cost_stats : Ascend_exec.Cache.stats;
}

exception Cost_error of string

let eps = 1e-12

let validate config specs =
  if config.cores <= 0 then invalid_arg "Serve.run: non-positive cores";
  if config.duration_s <= 0. then
    invalid_arg "Serve.run: non-positive duration";
  if config.bucket_s <= 0. then invalid_arg "Serve.run: non-positive bucket";
  if specs = [] then invalid_arg "Serve.run: no models";
  let names = List.map (fun s -> s.name) specs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Serve.run: duplicate model names";
  List.iter
    (fun s ->
      match s.workload with
      | Closed_loop { clients; _ } when clients < 1 ->
        invalid_arg "Serve.run: closed loop needs at least one client"
      | _ -> ())
    specs

(* sorted insertion by (arrival, id); arrival lists are mostly appended
   in order, so this stays cheap *)
let rec insert_arrival r = function
  | [] -> [ r ]
  | hd :: tl ->
    if
      hd.Request.arrival_s < r.Request.arrival_s -. eps
      || (Float.abs (hd.Request.arrival_s -. r.Request.arrival_s) <= eps
          && hd.Request.id < r.Request.id)
    then hd :: insert_arrival r tl
    else r :: hd :: tl

let run config specs =
  validate config specs;
  let specs = Array.of_list specs in
  let n_models = Array.length specs in
  let cost =
    Cost.create ~costing:config.costing ~max_batch:config.max_batch
      ~core:config.core ()
  in
  let s_of_cycles c =
    Units.seconds_of_cycles ~cycles:c
      ~frequency_ghz:config.core.Ascend_arch.Config.frequency_ghz
  in
  let queues =
    Array.map
      (fun s ->
        Batcher.create ~label:s.name ~max_batch:config.max_batch
          ~max_delay_s:config.max_delay_s ~queue_depth:config.queue_depth ())
      specs
  in
  (* obs lanes: one thread per model queue, then one per core.
     Timestamps are simulated seconds scaled to microseconds — virtual
     time, so a traced run stays byte-reproducible. *)
  let obs_pid =
    if not (Obs.Hook.enabled ()) then -1
    else begin
      let pid =
        Obs.Hook.alloc_pid
          ~name:("serve:" ^ config.core.Ascend_arch.Config.name)
      in
      Array.iteri
        (fun i s -> Obs.Hook.name_thread ~pid ~tid:i ("model:" ^ s.name))
        specs;
      for c = 0 to config.cores - 1 do
        Obs.Hook.name_thread ~pid ~tid:(n_models + c)
          (Printf.sprintf "core%d" c)
      done;
      pid
    end
  in
  let us t = t *. 1e6 in
  let think_rng =
    Array.map
      (fun s ->
        match s.workload with
        | Closed_loop { seed; _ } -> Some (Prng.create ~seed)
        | Open_loop _ -> None)
      specs
  in
  let next_id = ref 0 in
  let fresh_request spec_idx ~arrival_s =
    let s = specs.(spec_idx) in
    let r =
      {
        Request.id = !next_id;
        model = s.name;
        arrival_s;
        priority = s.priority;
        slo_s = s.slo_ms /. 1e3;
      }
    in
    incr next_id;
    r
  in
  let spec_index = Hashtbl.create n_models in
  Array.iteri (fun i s -> Hashtbl.replace spec_index s.name i) specs;
  (* seed the arrival list: the whole open-loop trace, plus one request
     per closed-loop client at t=0 *)
  let pending = ref [] in
  Array.iteri
    (fun i s ->
      match s.workload with
      | Open_loop gen ->
        List.iter
          (fun t -> pending := insert_arrival (fresh_request i ~arrival_s:t) !pending)
          (Load_gen.arrivals gen)
      | Closed_loop { clients; _ } ->
        for _ = 1 to clients do
          pending := insert_arrival (fresh_request i ~arrival_s:0.) !pending
        done)
    specs;
  let core_free = Array.make config.cores 0. in
  let busy_spans = ref [] in
  let records = ref [] in
  let batches = ref [] in
  let batch_seq = ref 0 in
  let reissue spec_idx ~finish_s =
    match (specs.(spec_idx).workload, think_rng.(spec_idx)) with
    | Closed_loop { think_s; _ }, Some rng ->
      let think =
        if think_s <= 0. then 0.
        else -.think_s *. log (1. -. Prng.float rng ~bound:1.)
      in
      let t = finish_s +. think in
      if t < config.duration_s then
        pending := insert_arrival (fresh_request spec_idx ~arrival_s:t) !pending
    | _ -> ()
  in
  let price spec_idx ~batch =
    let s = specs.(spec_idx) in
    match Cost.lookup cost ~model:s.name ~build:s.build ~batch with
    | Ok e -> e
    | Error e -> raise (Cost_error (s.name ^ ": " ^ e))
  in
  let all_cores = List.init config.cores Fun.id in
  let dispatch now =
    let idle = List.filter (fun c -> core_free.(c) <= now +. eps) all_cores in
    if idle <> [] then begin
      (* drain every ready batch, spec order for determinism *)
      let ready = ref [] in
      Array.iteri
        (fun i q ->
          while Batcher.ready q ~now do
            let reqs = Batcher.take q in
            if obs_pid >= 0 then
              Obs.Hook.counter ~cat:"serving"
                ~name:("queue_depth:" ^ specs.(i).name) ~pid:obs_pid ~tid:i
                ~ts:(us now)
                ~value:(float_of_int (Batcher.length q))
                ();
            let entry = price i ~batch:(List.length reqs) in
            ready := (i, reqs, entry) :: !ready
          done)
        queues;
      let ready = List.rev !ready in
      if ready <> [] then begin
        let idle_arr = Array.of_list idle in
        (* one single-block task per batch; Scheduler.run packs them on
           the idle cores in QoS-priority order *)
        let tagged =
          List.map
            (fun (i, reqs, entry) ->
              let tag = Printf.sprintf "batch%d" !batch_seq in
              incr batch_seq;
              (tag, i, reqs, entry))
            ready
        in
        let apps =
          List.map
            (fun (tag, i, _reqs, (entry : Cost.entry)) ->
              Scheduler.app ~priority:specs.(i).priority ~name:tag
                [
                  {
                    Scheduler.stream_name = tag;
                    tasks =
                      [
                        {
                          Scheduler.task_name = tag;
                          blocks = 1;
                          cycles_per_block = max 1 entry.Cost.cycles;
                        };
                      ];
                  };
                ])
            tagged
        in
        let sched = Scheduler.run ~cores:(Array.length idle_arr) apps in
        List.iter
          (fun (p : Scheduler.placement) ->
            let _tag, i, reqs, (entry : Cost.entry) =
              List.find (fun (tag, _, _, _) -> tag = p.Scheduler.app) tagged
            in
            let core = idle_arr.(p.Scheduler.core) in
            let start_s = now +. s_of_cycles p.Scheduler.start_cycle in
            let finish_s = now +. s_of_cycles p.Scheduler.end_cycle in
            core_free.(core) <- Float.max core_free.(core) finish_s;
            busy_spans := (core, start_s, finish_s) :: !busy_spans;
            let size = List.length reqs in
            batches :=
              {
                bx_model = specs.(i).name;
                bx_priority = specs.(i).priority;
                bx_size = size;
                bx_core = core;
                bx_start_s = start_s;
                bx_finish_s = finish_s;
                bx_cycles = entry.Cost.cycles;
              }
              :: !batches;
            if obs_pid >= 0 then
              Obs.Hook.span
                ~args:
                  [
                    ("size", Obs.Event.Int size);
                    ("cycles", Obs.Event.Int entry.Cost.cycles);
                    ("priority", Obs.Event.Int specs.(i).priority);
                  ]
                ~cat:"batch" ~name:specs.(i).name ~pid:obs_pid
                ~tid:(n_models + core) ~ts:(us start_s)
                ~dur:(us (finish_s -. start_s))
                ();
            List.iter
              (fun r ->
                records :=
                  {
                    Request.request = r;
                    outcome = Request.Completed;
                    start_s;
                    finish_s;
                    batch = size;
                    core;
                  }
                  :: !records;
                (* request lifecycle on the model lane:
                   arrival -> (queued) -> dispatched -> (execute) -> done *)
                if obs_pid >= 0 then begin
                  let arr = r.Request.arrival_s in
                  Obs.Hook.span
                    ~args:
                      [
                        ("id", Obs.Event.Int r.Request.id);
                        ("batch", Obs.Event.Int size);
                        ("core", Obs.Event.Int core);
                      ]
                    ~cat:"request" ~name:specs.(i).name ~pid:obs_pid ~tid:i
                    ~ts:(us arr)
                    ~dur:(us (finish_s -. arr))
                    ();
                  Obs.Hook.span
                    ~cat:"request" ~name:"queued" ~pid:obs_pid ~tid:i
                    ~ts:(us arr)
                    ~dur:(us (start_s -. arr))
                    ();
                  Obs.Hook.span ~cat:"request" ~name:"execute" ~pid:obs_pid
                    ~tid:i ~ts:(us start_s)
                    ~dur:(us (finish_s -. start_s))
                    ();
                  Obs.Hook.instant
                    ~args:[ ("id", Obs.Event.Int r.Request.id) ]
                    ~cat:"request" ~name:"done" ~pid:obs_pid ~tid:i
                    ~ts:(us finish_s) ()
                end;
                reissue i ~finish_s)
              reqs)
          sched.Scheduler.placements
      end
    end
  in
  let admit now =
    let rec go () =
      match !pending with
      | r :: rest when r.Request.arrival_s <= now +. eps ->
        pending := rest;
        let i = Hashtbl.find spec_index r.Request.model in
        (match Batcher.offer queues.(i) r with
        | Batcher.Admitted ->
          if obs_pid >= 0 then
            Obs.Hook.counter ~cat:"serving"
              ~name:("queue_depth:" ^ r.Request.model) ~pid:obs_pid ~tid:i
              ~ts:(us r.Request.arrival_s)
              ~value:(float_of_int (Batcher.length queues.(i)))
              ()
        | Batcher.Shed ->
          records := Request.rejected r :: !records;
          if obs_pid >= 0 then begin
            Obs.Hook.instant
              ~args:[ ("id", Obs.Event.Int r.Request.id) ]
              ~cat:"request" ~name:"shed" ~pid:obs_pid ~tid:i
              ~ts:(us r.Request.arrival_s) ();
            Obs.Hook.counter ~cat:"serving"
              ~name:("sheds:" ^ r.Request.model) ~pid:obs_pid ~tid:i
              ~ts:(us r.Request.arrival_s)
              ~value:(float_of_int (Batcher.sheds queues.(i)))
              ()
          end);
        go ()
      | _ -> ()
    in
    go ()
  in
  let next_time now =
    let best = ref infinity in
    let consider t = if t > now +. eps && t < !best then best := t in
    (match !pending with r :: _ -> consider r.Request.arrival_s | [] -> ());
    Array.iter
      (fun q -> match Batcher.deadline q with Some d -> consider d | None -> ())
      queues;
    let queued = Array.exists (fun q -> Batcher.length q > 0) queues in
    if queued then Array.iter consider core_free;
    if !best = infinity then None else Some !best
  in
  let rec step now =
    admit now;
    dispatch now;
    match next_time now with None -> () | Some t -> step t
  in
  match step 0. with
  | () ->
    let records =
      List.sort
        (fun a b ->
          compare a.Request.request.Request.id b.Request.request.Request.id)
        !records
    in
    let batches = List.rev !batches in
    let metrics =
      Metrics.build ~duration_s:config.duration_s ~bucket_s:config.bucket_s
        ~cores:config.cores
        ~models:
          (Array.to_list
             (Array.map (fun s -> (s.name, s.priority, s.slo_ms)) specs))
        ~busy:!busy_spans records
    in
    (* offline cross-check: the same batches as one closed §5.2 schedule *)
    let offline =
      let apps =
        Array.to_list specs
        |> List.map (fun s ->
               let streams =
                 List.filter (fun b -> b.bx_model = s.name) batches
                 |> List.mapi (fun j b ->
                        {
                          Scheduler.stream_name =
                            Printf.sprintf "%s.%d" s.name j;
                          tasks =
                            [
                              {
                                Scheduler.task_name =
                                  Printf.sprintf "%s.%d" s.name j;
                                blocks = 1;
                                cycles_per_block = max 1 b.bx_cycles;
                              };
                            ];
                        })
               in
               Scheduler.app ~priority:s.priority ~name:s.name streams)
        |> List.filter (fun (a : Scheduler.app) -> a.Scheduler.streams <> [])
      in
      Scheduler.run ~cores:config.cores apps
    in
    Ok
      {
        served_config = config;
        records;
        batches;
        metrics;
        offline_makespan_cycles = offline.Scheduler.makespan_cycles;
        offline_utilization = Scheduler.utilization offline;
        cost_hits = Cost.hits cost;
        cost_misses = Cost.misses cost;
        cost_interpolated = Cost.interpolated cost;
        cost_fallbacks = Cost.fallbacks cost;
        cost_stats = Cost.stats cost;
      }
  | exception Cost_error e -> Error e

let scheduler_apps result =
  let models =
    List.sort_uniq compare (List.map (fun b -> b.bx_model) result.batches)
  in
  List.filter_map
    (fun model ->
      let mine = List.filter (fun b -> b.bx_model = model) result.batches in
      match mine with
      | [] -> None
      | b :: _ ->
        Some
          (Scheduler.app ~priority:b.bx_priority ~name:model
             (List.mapi
                (fun j b ->
                  {
                    Scheduler.stream_name = Printf.sprintf "%s.%d" model j;
                    tasks =
                      [
                        {
                          Scheduler.task_name = Printf.sprintf "%s.%d" model j;
                          blocks = 1;
                          cycles_per_block = max 1 b.bx_cycles;
                        };
                      ];
                  })
                mine)))
    models

let to_json r =
  let c = r.served_config in
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("core", Json.String c.core.Ascend_arch.Config.name);
            ("cores", Json.Int c.cores);
            ("max_batch", Json.Int c.max_batch);
            ("max_delay_ms", Json.Float (1e3 *. c.max_delay_s));
            ("queue_depth", Json.Int c.queue_depth);
            ("duration_s", Json.Float c.duration_s);
            ("costing", Json.String (costing_name c.costing));
          ] );
      ("metrics", Metrics.to_json r.metrics);
      ( "batches",
        Json.Obj
          [
            ("count", Json.Int (List.length r.batches));
            ("offline_makespan_cycles", Json.Int r.offline_makespan_cycles);
            ("offline_utilization", Json.Float r.offline_utilization);
          ] );
      ( "cost_cache",
        Json.Obj
          [
            ("hits", Json.Int r.cost_hits);
            ("misses", Json.Int r.cost_misses);
            ("interpolated", Json.Int r.cost_interpolated);
            ("fallbacks", Json.Int r.cost_fallbacks);
            ("disk_hits", Json.Int r.cost_stats.Ascend_exec.Cache.disk_hits);
            ( "disk_writes",
              Json.Int r.cost_stats.Ascend_exec.Cache.disk_writes );
            ( "disk_entries",
              Json.Int r.cost_stats.Ascend_exec.Cache.disk_entries );
          ] );
    ]

let pp ppf r =
  Format.fprintf ppf "%a" Metrics.pp r.metrics;
  Format.fprintf ppf
    "batches: %d dispatched; offline §5.2 repack: makespan %d cycles at \
     %.1f%% utilization@."
    (List.length r.batches) r.offline_makespan_cycles
    (100. *. r.offline_utilization);
  Format.fprintf ppf
    "latency cache: %d compile+simulate runs, %d cached lookups@."
    r.cost_misses r.cost_hits;
  if r.served_config.costing = `Surrogate then
    Format.fprintf ppf
      "surrogate: %d interpolated lookups, %d out-of-range fallbacks@."
      r.cost_interpolated r.cost_fallbacks;
  Format.fprintf ppf "exec cache: %a@." Ascend_exec.Cache.pp_stats r.cost_stats
