let ring_allreduce_seconds ~bytes ~nodes ~bandwidth ?(latency_s = 5e-6) () =
  if bytes < 0. then invalid_arg "Collective: negative bytes";
  if nodes <= 1 then 0.
  else
    let n = float_of_int nodes in
    (2. *. (n -. 1.) /. n *. bytes /. bandwidth)
    +. (2. *. (n -. 1.) *. latency_s)

let rec floor_log2 n = if n <= 1 then 0 else 1 + floor_log2 (n / 2)

let pow2_floor n = 1 lsl floor_log2 n

(* Recursive halving/doubling over the largest power of two p <= nodes.
   The r = nodes - p extra nodes first fold their whole buffer into a
   base node (one full-buffer step) and receive the result back at the
   end (another) — the standard non-power-of-two scheme, and exactly
   what [Collective_schedule.halving_doubling] expands step by step:
   the differential gate holds this formula to the schedule. *)
let halving_doubling_seconds ~bytes ~nodes ~bandwidth ?(latency_s = 5e-6) () =
  if bytes < 0. then invalid_arg "Collective: negative bytes";
  if nodes <= 1 then 0.
  else begin
    let p = float_of_int (pow2_floor nodes) in
    let steps = 2 * floor_log2 nodes in
    let fold_penalty =
      if pow2_floor nodes = nodes then 0.
      else 2. *. ((bytes /. bandwidth) +. latency_s)
    in
    (2. *. (p -. 1.) /. p *. bytes /. bandwidth)
    +. (float_of_int steps *. latency_s)
    +. fold_penalty
  end

let best_allreduce_seconds ~bytes ~nodes ~bandwidth ?latency_s () =
  let ring = ring_allreduce_seconds ~bytes ~nodes ~bandwidth ?latency_s () in
  let hd = halving_doubling_seconds ~bytes ~nodes ~bandwidth ?latency_s () in
  if hd < ring then (hd, "halving-doubling") else (ring, "ring")

let hierarchical_allreduce_seconds ~server ~network ~servers ~bytes =
  if servers <= 0 then invalid_arg "Collective: no servers";
  (* phase 1: reduce within each server (chips -> one representative) *)
  let intra = Server.intra_server_allreduce_seconds server ~bytes in
  (* phase 2: the faster collective across server representatives *)
  let nic = Ascend_noc.Fat_tree.server_bandwidth network in
  let inter, _algorithm =
    best_allreduce_seconds ~bytes ~nodes:servers ~bandwidth:nic
      ~latency_s:(Ascend_noc.Fat_tree.latency_us network ~src:0
                    ~dst:(max 0 (servers - 1))
                  *. 1e-6)
      ()
  in
  intra +. inter

(* algorithm bandwidth: an all-reduce must move 2(n-1)/n * bytes over
   the busiest link, so the achievable floor is that over the nominal
   bandwidth — 1.0 means latency-free ring at the wire rate, and no
   schedule can beat it *)
let allreduce_efficiency ~seconds ~bytes ~nodes ~bandwidth =
  if seconds <= 0. || bandwidth <= 0. || nodes <= 1 then 0.
  else
    let n = float_of_int nodes in
    2. *. (n -. 1.) /. n *. bytes /. seconds /. bandwidth
