(** Expand the closed-form all-reduce cost models ({!Collective}) into
    explicit per-chip step schedules over concrete links, in the
    neutral IR of [Ascend_verify.Cluster].

    Each builder is the constructive counterpart of a
    [Collective.*_seconds] formula: the schedule is matched, acyclic,
    capacity-respecting and complete by construction (which
    [Verify.Cluster.analyze] verifies, and mutation tests falsify),
    and its derived time ([Verify.Cluster.schedule_seconds]) equals
    the closed form — the [lint --cluster] differential gate.

    Concurrent transfers sharing a physical bus (the PCI-E group bus,
    a server's NIC) each claim an equal fraction of its capacity; a
    transfer's time is [bytes / claim], so per-chip step times match
    the closed forms while the per-(step, link) claim sums expose any
    overcommit to the verifier. *)

val default_latency_s : float
(** 5 us, the same default as {!Collective}. *)

val ring :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  Ascend_verify.Cluster.schedule
(** Ring all-reduce over [nodes] peers on dedicated directional links:
    [nodes] chunks, [2(nodes-1)] steps of reduce-scatter then
    all-gather.  Derived time = [Collective.ring_allreduce_seconds].
    Raises [Invalid_argument] on negative bytes, [nodes <= 0] or
    non-positive bandwidth. *)

val halving_doubling :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  Ascend_verify.Cluster.schedule
(** Recursive halving/doubling over the largest power of two [p <=
    nodes] (pairwise exchanges at distance p/2, p/4, ..., 1); the
    extras fold their whole buffer into a base node first and receive
    the result back last.  Derived time =
    [Collective.halving_doubling_seconds]. *)

val intra_server :
  server:Server.t -> bytes:float -> Ascend_verify.Cluster.schedule
(** The paper's intra-server hierarchy: ring reduce-scatter inside
    each group over per-pair HCCS links, shard exchange between the
    two groups over the shared PCI-E bus (group B folds into group A,
    group A copies back), ring all-gather.  Derived time =
    [Server.intra_server_allreduce_seconds].  Raises
    [Invalid_argument] unless the server has 1 or 2 equal groups. *)

val hierarchical :
  server:Server.t -> network:Ascend_noc.Fat_tree.t -> servers:int ->
  bytes:float -> Ascend_verify.Cluster.schedule
(** The full cluster collective: intra-server reduce-scatter and
    exchange bring each server's sums onto its group-A chips (one
    shard per chip), the shard owners run whichever flat algorithm
    [Collective.best_allreduce_seconds] picks across servers on NIC
    links (each owner claiming a [1/chips_per_group] share), then the
    results flow back out.  Derived time =
    [Collective.hierarchical_allreduce_seconds]. *)
