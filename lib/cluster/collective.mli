(** Collective-communication cost models for gradient synchronisation.

    Ring all-reduce moves [2(n-1)/n] times the buffer over the slowest
    link; the hierarchical variant reduces inside each server first
    (HCCS), rings across servers on the fat-tree, then broadcasts back —
    the standard scheme for the paper's server/cluster topology.

    Each closed form corresponds to an explicit per-chip step schedule
    built by {!Collective_schedule}; [ascend_cli lint --cluster] holds
    the two within 1e-6 relative of each other (the differential
    gate). *)

val floor_log2 : int -> int
(** [floor_log2 n] for [n >= 1]; 0 for smaller inputs. *)

val pow2_floor : int -> int
(** Largest power of two [<= n] ([1] for [n <= 1]) — the base set of
    the halving/doubling algorithm. *)

val ring_allreduce_seconds :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  float
(** [latency_s] per step (default 5 us); 2(n-1) steps. *)

val halving_doubling_seconds :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  float
(** Recursive halving/doubling over the largest power of two [p <=
    nodes]: the [2(p-1)/p] bandwidth term with only [2*log2 p] latency
    steps — wins on small messages and large node counts.  The [nodes
    - p] extra nodes fold their whole buffer into a base node up front
    and receive the result back at the end, so non-power-of-two counts
    pay [2 * (bytes/bandwidth + latency_s)] extra. *)

val best_allreduce_seconds :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  float * string
(** The faster of ring and halving/doubling, with its name — what a real
    collective library's algorithm picker does. *)

val hierarchical_allreduce_seconds :
  server:Server.t -> network:Ascend_noc.Fat_tree.t -> servers:int ->
  bytes:float -> float
(** Gradient buffer of [bytes] per chip, [servers] servers of
    [server.chips] chips each. *)

val allreduce_efficiency :
  seconds:float -> bytes:float -> nodes:int -> bandwidth:float -> float
(** Achieved algorithm bandwidth over the nominal link bandwidth: an
    all-reduce over [nodes] must move [2(n-1)/n * bytes] over the
    busiest link, so a latency-free ring at the wire rate scores
    exactly 1.0 and nothing scores higher.  0 when degenerate
    ([nodes <= 1], non-positive [seconds] or [bandwidth]). *)
