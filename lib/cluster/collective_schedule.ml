(** Expand the closed-form all-reduce algorithms into explicit per-chip
    step schedules over concrete links, in the neutral IR of
    [Ascend_verify.Cluster].

    Each builder is the constructive counterpart of a
    [Collective.*_seconds] formula: the schedule's derived time
    ([Verify.Cluster.schedule_seconds] — max over chips of summed step
    times) equals the closed form, which is exactly what the
    [lint --cluster] differential gate checks.  By construction the
    schedules are matched, acyclic, capacity-respecting and complete —
    which is what [Verify.Cluster.analyze] verifies, and what the
    mutation tests falsify.

    Concurrent transfers sharing a physical bus (the PCI-E group bus,
    a server's NIC) each claim an equal fraction of its capacity, so a
    transfer's time is [bytes / claim] and the per-(step, link) claims
    sum to at most the capacity. *)

module V = Ascend_verify.Cluster

let default_latency_s = 5e-6

(* ------------------------------------------------------------------ *)
(* Assembly helpers: builders emit (send, recv) op pairs into numbered
   steps; links are declared once and listed sorted for determinism. *)

type builder = {
  mutable links : (string * float) list;
  link_seen : (string, unit) Hashtbl.t;
  mutable rev_steps : V.step list;  (* accumulated in reverse *)
  mutable next_step : int;
}

let builder () =
  { links = []; link_seen = Hashtbl.create 64; rev_steps = []; next_step = 0 }

let declare_link b id capacity =
  if not (Hashtbl.mem b.link_seen id) then begin
    Hashtbl.replace b.link_seen id ();
    b.links <- (id, capacity) :: b.links
  end

let transfer ~src ~dst ~link ~bytes ~claim ~lo ~hi ~reduce =
  [
    { V.chip = src; op_kind = V.Send; peer = dst; link; op_bytes = bytes;
      claim_bytes_per_s = claim; chunk_lo = lo; chunk_hi = hi; reduce };
    { V.chip = dst; op_kind = V.Recv; peer = src; link; op_bytes = bytes;
      claim_bytes_per_s = claim; chunk_lo = lo; chunk_hi = hi; reduce };
  ]

(* append a step depending on its predecessor; [fill] pushes transfers *)
let step b ~latency_s fill =
  let ops = ref [] in
  fill (fun tr -> ops := tr :: !ops);
  let id = b.next_step in
  b.next_step <- id + 1;
  b.rev_steps <-
    { V.step_id = id; deps = (if id = 0 then [] else [ id - 1 ]);
      latency_s; ops = List.concat (List.rev !ops) }
    :: b.rev_steps

let finish b ~name ~chips ~chunks =
  {
    V.sched_name = name;
    chips;
    chunks = max 1 chunks;
    links =
      List.sort compare b.links
      |> List.map (fun (link_id, capacity_bytes_per_s) ->
             { V.link_id; capacity_bytes_per_s });
    steps = List.rev b.rev_steps;
  }

(* ------------------------------------------------------------------ *)
(* Ring reduce-scatter / all-gather over [n] abstract positions.
   Abstract chunk [c] covers global chunks [chunk_base + c*width,
   chunk_base + (c+1)*width); every transfer moves one abstract chunk
   of [chunk_bytes].  [chip_of] and [link_of] map positions onto real
   chips and links — the flat ring uses the identity, the hierarchical
   phases map group positions or server indices. *)

type ring_ctx = {
  n : int;
  chip_of : int -> int;
  link_of : src:int -> dst:int -> string;
  claim : float;
  chunk_base : int;
  width : int;
  chunk_bytes : float;
}

let ring_transfer c ~src ~dst ~chunk ~reduce =
  transfer ~src:(c.chip_of src) ~dst:(c.chip_of dst)
    ~link:(c.link_of ~src ~dst) ~bytes:c.chunk_bytes ~claim:c.claim
    ~lo:(c.chunk_base + (chunk * c.width))
    ~hi:(c.chunk_base + ((chunk + 1) * c.width))
    ~reduce

(* reduce-scatter step [k] of [n-1]: position i passes chunk (i-k) mod n
   along the ring, reducing; afterwards position i owns chunk (i+1) mod n *)
let ring_rs_step c ~k emit =
  for i = 0 to c.n - 1 do
    let chunk = (((i - k) mod c.n) + c.n) mod c.n in
    emit (ring_transfer c ~src:i ~dst:((i + 1) mod c.n) ~chunk ~reduce:true)
  done

(* all-gather step [k] of [n-1]: position i passes chunk (i+1-k) mod n
   along, copying — starting from owning chunk (i+1) mod n *)
let ring_ag_step c ~k emit =
  for i = 0 to c.n - 1 do
    let chunk = (((i + 1 - k) mod c.n) + c.n) mod c.n in
    emit (ring_transfer c ~src:i ~dst:((i + 1) mod c.n) ~chunk ~reduce:false)
  done

let ring_declare_links b c ~capacity =
  if c.n > 1 then
    for i = 0 to c.n - 1 do
      declare_link b (c.link_of ~src:i ~dst:((i + 1) mod c.n)) capacity
    done

(* ------------------------------------------------------------------ *)
(* Recursive halving/doubling over [n] abstract positions: pairwise
   exchanges at distances p/2, p/4, ..., 1 over the largest power of
   two p <= n; the n-p extras fold their whole buffer into a base
   first and get the result back last.  [width] chunks per abstract
   hd chunk, p abstract chunks, [bytes_total] for the whole range. *)

type hd_ctx = {
  hn : int;
  hchip_of : int -> int;
  hlink_of : src:int -> dst:int -> string;
  hclaim : float;
  hchunk_base : int;
  hwidth : int;
  bytes_total : float;
}

let hd_plan c =
  let p = Collective.pow2_floor c.hn in
  let l = Collective.floor_log2 p in
  (p, c.hn - p, l)

(* the half of the buffer position i holds after exchange level k:
   abstract chunks [top_k(i)*d, (top_k(i)+1)*d) with d = p >> k *)
let hd_range ~p ~l ~k i =
  let d = p lsr k in
  let lo = (i lsr (l - k)) * d in
  (lo, lo + d)

let hd_transfer c ~src ~dst ~lo ~hi ~reduce =
  let w = c.hwidth in
  transfer ~src:(c.hchip_of src) ~dst:(c.hchip_of dst)
    ~link:(c.hlink_of ~src ~dst)
    ~bytes:(c.bytes_total *. float_of_int (hi - lo) /. float_of_int (Collective.pow2_floor c.hn))
    ~claim:c.hclaim
    ~lo:(c.hchunk_base + (lo * w))
    ~hi:(c.hchunk_base + (hi * w))
    ~reduce

let hd_fold_step c emit =
  let p, r, _ = hd_plan c in
  for t = 0 to r - 1 do
    emit (hd_transfer c ~src:(p + t) ~dst:t ~lo:0 ~hi:p ~reduce:true)
  done

let hd_unfold_step c emit =
  let p, r, _ = hd_plan c in
  for t = 0 to r - 1 do
    emit (hd_transfer c ~src:t ~dst:(p + t) ~lo:0 ~hi:p ~reduce:false)
  done

(* reduce-scatter level k in 1..l: partners at distance p >> k swap the
   halves they are giving up *)
let hd_rs_step c ~k emit =
  let p, _, l = hd_plan c in
  let d = p lsr k in
  for i = 0 to p - 1 do
    let j = i lxor d in
    if i < j then begin
      let jlo, jhi = hd_range ~p ~l ~k j in
      let ilo, ihi = hd_range ~p ~l ~k i in
      emit (hd_transfer c ~src:i ~dst:j ~lo:jlo ~hi:jhi ~reduce:true);
      emit (hd_transfer c ~src:j ~dst:i ~lo:ilo ~hi:ihi ~reduce:true)
    end
  done

(* all-gather level k in l..1: partners swap the halves they hold *)
let hd_ag_step c ~k emit =
  let p, _, l = hd_plan c in
  let d = p lsr k in
  for i = 0 to p - 1 do
    let j = i lxor d in
    if i < j then begin
      let ilo, ihi = hd_range ~p ~l ~k i in
      let jlo, jhi = hd_range ~p ~l ~k j in
      emit (hd_transfer c ~src:i ~dst:j ~lo:ilo ~hi:ihi ~reduce:false);
      emit (hd_transfer c ~src:j ~dst:i ~lo:jlo ~hi:jhi ~reduce:false)
    end
  done

let hd_declare_links b c ~capacity =
  let p, r, l = hd_plan c in
  for t = 0 to r - 1 do
    declare_link b (c.hlink_of ~src:(p + t) ~dst:t) capacity;
    declare_link b (c.hlink_of ~src:t ~dst:(p + t)) capacity
  done;
  for k = 1 to l do
    let d = p lsr k in
    for i = 0 to p - 1 do
      let j = i lxor d in
      if i < j then begin
        declare_link b (c.hlink_of ~src:i ~dst:j) capacity;
        declare_link b (c.hlink_of ~src:j ~dst:i) capacity
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Flat topologies: n peers on dedicated directional links of the given
   bandwidth — the abstract setting of the closed forms. *)

let check_flat ~bytes ~nodes ~bandwidth =
  if bytes < 0. then invalid_arg "Collective_schedule: negative bytes";
  if nodes <= 0 then invalid_arg "Collective_schedule: no nodes";
  if bandwidth <= 0. then invalid_arg "Collective_schedule: no bandwidth"

let flat_link ~src ~dst = Printf.sprintf "wire:%d->%d" src dst

let ring ~bytes ~nodes ~bandwidth ?(latency_s = default_latency_s) () =
  check_flat ~bytes ~nodes ~bandwidth;
  let b = builder () in
  let name = Printf.sprintf "ring(n=%d)" nodes in
  if nodes = 1 then finish b ~name ~chips:1 ~chunks:1
  else begin
    let c =
      { n = nodes; chip_of = Fun.id; link_of = flat_link; claim = bandwidth;
        chunk_base = 0; width = 1;
        chunk_bytes = bytes /. float_of_int nodes }
    in
    ring_declare_links b c ~capacity:bandwidth;
    for k = 0 to nodes - 2 do
      step b ~latency_s (ring_rs_step c ~k)
    done;
    for k = 0 to nodes - 2 do
      step b ~latency_s (ring_ag_step c ~k)
    done;
    finish b ~name ~chips:nodes ~chunks:nodes
  end

let halving_doubling ~bytes ~nodes ~bandwidth
    ?(latency_s = default_latency_s) () =
  check_flat ~bytes ~nodes ~bandwidth;
  let b = builder () in
  let name = Printf.sprintf "halving-doubling(n=%d)" nodes in
  if nodes = 1 then finish b ~name ~chips:1 ~chunks:1
  else begin
    let c =
      { hn = nodes; hchip_of = Fun.id; hlink_of = flat_link;
        hclaim = bandwidth; hchunk_base = 0; hwidth = 1; bytes_total = bytes }
    in
    let p, r, l = hd_plan c in
    hd_declare_links b c ~capacity:bandwidth;
    if r > 0 then step b ~latency_s (hd_fold_step c);
    for k = 1 to l do
      step b ~latency_s (hd_rs_step c ~k)
    done;
    for k = l downto 1 do
      step b ~latency_s (hd_ag_step c ~k)
    done;
    if r > 0 then step b ~latency_s (hd_unfold_step c);
    finish b ~name ~chips:nodes ~chunks:p
  end

(* ------------------------------------------------------------------ *)
(* Server topologies.  Chips of server r are numbered [r*chips ..
   (r+1)*chips); within a server, group G holds locals [G*g .. G*g+g).
   HCCS links are per chip pair within a group; the inter-group PCI-E
   bus is one shared link per server, so its concurrent transfers each
   claim a g-th of it. *)

let check_server (server : Server.t) =
  if server.Server.groups <> 1 && server.Server.groups <> 2 then
    invalid_arg "Collective_schedule: only 1- or 2-group servers";
  if server.Server.chips <> server.Server.groups * Server.chips_per_group server
  then invalid_arg "Collective_schedule: chips not divisible into groups"

let hccs_link ~server_id ~chip_base ~g ~group ~src ~dst =
  Printf.sprintf "hccs:s%d:%d->%d" server_id
    (chip_base + (group * g) + src)
    (chip_base + (group * g) + dst)

let pcie_link ~server_id = Printf.sprintf "pcie:s%d" server_id

(* the three intra-server phases shared by [intra_server] and
   [hierarchical]: group-ring reduce-scatter, the B->A / A->B shard
   exchanges over the PCI-E bus, group-ring all-gather.  Shards are
   [width] global chunks; after reduce-scatter, local position i of
   every group owns shard (i+1) mod g. *)

let group_ring_ctx (server : Server.t) ~server_id ~chip_base ~group ~bytes
    ~width =
  let g = Server.chips_per_group server in
  {
    n = g;
    chip_of = (fun i -> chip_base + (group * g) + i);
    link_of = (fun ~src ~dst -> hccs_link ~server_id ~chip_base ~g ~group ~src ~dst);
    claim = server.Server.hccs_bytes_per_s;
    chunk_base = 0;
    width;
    chunk_bytes = bytes /. float_of_int g;
  }

let intra_phases b (server : Server.t) ~server_ids ~bytes ~width
    ~chip_base_of ~mid =
  check_server server;
  let g = Server.chips_per_group server in
  let groups = server.Server.groups in
  let ctxs =
    List.concat_map
      (fun sid ->
        List.init groups (fun group ->
            group_ring_ctx server ~server_id:sid ~chip_base:(chip_base_of sid)
              ~group ~bytes ~width))
      server_ids
  in
  List.iter (fun c -> ring_declare_links b c ~capacity:server.Server.hccs_bytes_per_s) ctxs;
  if groups = 2 then
    List.iter
      (fun sid ->
        declare_link b (pcie_link ~server_id:sid) server.Server.pcie_bytes_per_s)
      server_ids;
  (* phase 1: reduce-scatter inside every group of every server *)
  for k = 0 to g - 2 do
    step b ~latency_s:0. (fun emit ->
        List.iter (fun c -> ring_rs_step c ~k emit) ctxs)
  done;
  let shard_of i = (i + 1) mod g in
  let pcie_claim = server.Server.pcie_bytes_per_s /. float_of_int g in
  let shard_bytes = bytes /. float_of_int g in
  (* phase 2: group B folds its shard partials into group A *)
  if groups = 2 then
    step b ~latency_s:0. (fun emit ->
        List.iter
          (fun sid ->
            let base = chip_base_of sid in
            for i = 0 to g - 1 do
              let s = shard_of i in
              emit
                (transfer ~src:(base + g + i) ~dst:(base + i)
                   ~link:(pcie_link ~server_id:sid) ~bytes:shard_bytes
                   ~claim:pcie_claim ~lo:(s * width)
                   ~hi:((s + 1) * width)
                   ~reduce:true)
            done)
          server_ids);
  (* the caller's inter-server phase runs while group A owns the shards *)
  mid ();
  (* phase 4: group A copies the finished shards back to group B *)
  if groups = 2 then
    step b ~latency_s:0. (fun emit ->
        List.iter
          (fun sid ->
            let base = chip_base_of sid in
            for i = 0 to g - 1 do
              let s = shard_of i in
              emit
                (transfer ~src:(base + i) ~dst:(base + g + i)
                   ~link:(pcie_link ~server_id:sid) ~bytes:shard_bytes
                   ~claim:pcie_claim ~lo:(s * width)
                   ~hi:((s + 1) * width)
                   ~reduce:false)
            done)
          server_ids);
  (* phase 5: all-gather inside every group *)
  for k = 0 to g - 2 do
    step b ~latency_s:0. (fun emit ->
        List.iter (fun c -> ring_ag_step c ~k emit) ctxs)
  done

let intra_server ~server ~bytes =
  if bytes < 0. then invalid_arg "Collective_schedule: negative bytes";
  check_server server;
  let g = Server.chips_per_group server in
  let b = builder () in
  intra_phases b server ~server_ids:[ 0 ] ~bytes ~width:1
    ~chip_base_of:(fun _ -> 0)
    ~mid:(fun () -> ());
  finish b
    ~name:(Printf.sprintf "intra-server(%s)" server.Server.server_name)
    ~chips:server.Server.chips ~chunks:g

let nic_link ~src ~dst = Printf.sprintf "nic:%d->%d" src dst

let hierarchical ~server ~network ~servers ~bytes =
  if bytes < 0. then invalid_arg "Collective_schedule: negative bytes";
  if servers <= 0 then invalid_arg "Collective_schedule: no servers";
  check_server server;
  let g = Server.chips_per_group server in
  let nic = Ascend_noc.Fat_tree.server_bandwidth network in
  let net_latency_s =
    Ascend_noc.Fat_tree.latency_us network ~src:0 ~dst:(max 0 (servers - 1))
    *. 1e-6
  in
  let _, algorithm =
    Collective.best_allreduce_seconds ~bytes ~nodes:servers ~bandwidth:nic
      ~latency_s:net_latency_s ()
  in
  (* the inter phase all-reduces each shard across servers; its chunk
     granularity decides the shard width *)
  let width =
    if servers = 1 then 1
    else if algorithm = "ring" then servers
    else Collective.pow2_floor servers
  in
  let b = builder () in
  let chip_base_of sid = sid * server.Server.chips in
  let shard_of i = (i + 1) mod g in
  let nic_claim = nic /. float_of_int g in
  let shard_bytes = bytes /. float_of_int g in
  let mid () =
    if servers > 1 then begin
      (* shard (i+1) mod g is owned by group-A local i of every server;
         each owner set runs the picked collective across servers,
         claiming a g-th of every NIC link it crosses *)
      if algorithm = "ring" then begin
        let ctx i =
          {
            n = servers;
            chip_of = (fun r -> chip_base_of r + i);
            link_of = (fun ~src ~dst -> nic_link ~src ~dst);
            claim = nic_claim;
            chunk_base = shard_of i * width;
            width = 1;
            chunk_bytes = shard_bytes /. float_of_int servers;
          }
        in
        for i = 0 to g - 1 do
          ring_declare_links b (ctx i) ~capacity:nic
        done;
        for k = 0 to servers - 2 do
          step b ~latency_s:net_latency_s (fun emit ->
              for i = 0 to g - 1 do
                ring_rs_step (ctx i) ~k emit
              done)
        done;
        for k = 0 to servers - 2 do
          step b ~latency_s:net_latency_s (fun emit ->
              for i = 0 to g - 1 do
                ring_ag_step (ctx i) ~k emit
              done)
        done
      end
      else begin
        let ctx i =
          {
            hn = servers;
            hchip_of = (fun r -> chip_base_of r + i);
            hlink_of = (fun ~src ~dst -> nic_link ~src ~dst);
            hclaim = nic_claim;
            hchunk_base = shard_of i * width;
            hwidth = 1;
            bytes_total = shard_bytes;
          }
        in
        let p, r, l = hd_plan (ctx 0) in
        ignore p;
        for i = 0 to g - 1 do
          hd_declare_links b (ctx i) ~capacity:nic
        done;
        if r > 0 then
          step b ~latency_s:net_latency_s (fun emit ->
              for i = 0 to g - 1 do
                hd_fold_step (ctx i) emit
              done);
        for k = 1 to l do
          step b ~latency_s:net_latency_s (fun emit ->
              for i = 0 to g - 1 do
                hd_rs_step (ctx i) ~k emit
              done)
        done;
        for k = l downto 1 do
          step b ~latency_s:net_latency_s (fun emit ->
              for i = 0 to g - 1 do
                hd_ag_step (ctx i) ~k emit
              done)
        done;
        if r > 0 then
          step b ~latency_s:net_latency_s (fun emit ->
              for i = 0 to g - 1 do
                hd_unfold_step (ctx i) emit
              done)
      end
    end
  in
  intra_phases b server
    ~server_ids:(List.init servers Fun.id)
    ~bytes ~width ~chip_base_of ~mid;
  finish b
    ~name:
      (Printf.sprintf "hierarchical(s=%d,%s)" servers
         (if servers = 1 then "intra" else algorithm))
    ~chips:(servers * server.Server.chips)
    ~chunks:(g * width)
