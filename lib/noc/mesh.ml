type t = {
  mesh_rows : int;
  mesh_cols : int;
  link_bandwidth : float;
  hop_latency_ns : float;
}

type node = { row : int; col : int }

type flow = { src : node; dst : node; demand : float }

type flow_result = {
  flow : flow;
  throughput : float;
  hops : int;
  latency_ns : float;
}

let create ?(link_bandwidth = 256e9) ?(hop_latency_ns = 0.5) ~rows ~cols () =
  if rows <= 0 || cols <= 0 then invalid_arg "Mesh.create: empty mesh";
  { mesh_rows = rows; mesh_cols = cols; link_bandwidth; hop_latency_ns }

let ascend910 = create ~rows:6 ~cols:4 ()

let rows t = t.mesh_rows
let cols t = t.mesh_cols
let link_bandwidth t = t.link_bandwidth

let node t ~row ~col =
  if row < 0 || row >= t.mesh_rows || col < 0 || col >= t.mesh_cols then
    invalid_arg "Mesh.node: out of bounds";
  { row; col }

let xy_route src dst =
  (* X first, then Y *)
  let rec go_x acc col =
    if col = dst.col then go_y acc src.row
    else
      let col' = if dst.col > col then col + 1 else col - 1 in
      go_x ({ row = src.row; col = col' } :: acc) col'
  and go_y acc row =
    if row = dst.row then List.rev acc
    else
      let row' = if dst.row > row then row + 1 else row - 1 in
      go_y ({ row = row'; col = dst.col } :: acc) row'
  in
  go_x [ src ] src.col

let hops src dst = abs (src.row - dst.row) + abs (src.col - dst.col)

(* directed link between adjacent nodes, as an orderable key *)
let link_key a b = ((a.row, a.col), (b.row, b.col))

let links_of_route route =
  let rec pairs = function
    | a :: (b :: _ as rest) -> link_key a b :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs route

let route_flows t flows =
  let flows = Array.of_list flows in
  let n = Array.length flows in
  let routes = Array.map (fun f -> links_of_route (xy_route f.src f.dst)) flows in
  (* progressive filling: raise all unfrozen flows' rates together until a
     link saturates; freeze its flows; repeat *)
  let rate = Array.make n 0. in
  let frozen = Array.make n false in
  let link_load = Hashtbl.create 64 in
  let load l = match Hashtbl.find_opt link_load l with Some v -> !v | None -> 0. in
  let active_on l =
    let c = ref 0 in
    Array.iteri
      (fun i r -> if (not frozen.(i)) && List.mem l r then incr c)
      routes;
    !c
  in
  let all_links = Hashtbl.create 64 in
  Array.iter
    (List.iter (fun l ->
         if not (Hashtbl.mem all_links l) then Hashtbl.replace all_links l ()))
    routes;
  let continue_ = ref true in
  while !continue_ do
    (* headroom per unfrozen flow: min over its links of
       (capacity - frozen load)/active flows, and its residual demand *)
    let step = ref infinity in
    let any_active = ref false in
    Array.iteri
      (fun i r ->
        if not frozen.(i) then begin
          any_active := true;
          let residual = flows.(i).demand -. rate.(i) in
          step := Float.min !step residual;
          List.iter
            (fun l ->
              let headroom = t.link_bandwidth -. load l in
              let k = active_on l in
              if k > 0 then step := Float.min !step (headroom /. float_of_int k))
            r
        end)
      routes;
    if (not !any_active) || !step = infinity then continue_ := false
    else begin
      let step = Float.max 0. !step in
      (* apply the step *)
      Array.iteri
        (fun i r ->
          if not frozen.(i) then begin
            rate.(i) <- rate.(i) +. step;
            List.iter
              (fun l ->
                let cell =
                  match Hashtbl.find_opt link_load l with
                  | Some v -> v
                  | None ->
                    let v = ref 0. in
                    Hashtbl.replace link_load l v;
                    v
                in
                cell := !cell +. step)
              r
          end)
        routes;
      (* freeze flows that met demand or sit on a saturated link *)
      Array.iteri
        (fun i r ->
          if not frozen.(i) then
            if rate.(i) >= flows.(i).demand -. 1e-6 then frozen.(i) <- true
            else if
              List.exists (fun l -> load l >= t.link_bandwidth -. 1e-3) r
            then frozen.(i) <- true)
        routes;
      if step <= 1e-9 then continue_ := false
    end
  done;
  let results =
    Array.to_list
      (Array.mapi
         (fun i f ->
           let h = hops f.src f.dst in
           {
             flow = f;
             throughput = rate.(i);
             hops = h;
             latency_ns = float_of_int (h + 1) *. t.hop_latency_ns;
           })
         flows)
  in
  (* obs: one instant per routed flow (ts = flow index — routing is
     timeless, the lane is just an ordered inventory) plus the
     aggregate allocated throughput as a counter sample *)
  (if Ascend_obs.Hook.enabled () then begin
     let pid =
       Ascend_obs.Hook.alloc_pid
         ~name:(Printf.sprintf "noc-flows:%dx%d" t.mesh_rows t.mesh_cols)
     in
     Ascend_obs.Hook.name_thread ~pid ~tid:0 "flows";
     List.iteri
       (fun i fr ->
         Ascend_obs.Hook.instant
           ~args:
             [
               ("throughput_gb_s", Ascend_obs.Event.Float (fr.throughput /. 1e9));
               ("hops", Ascend_obs.Event.Int fr.hops);
             ]
           ~cat:"noc" ~name:"flow" ~pid ~tid:0 ~ts:(float_of_int i) ())
       results;
     Ascend_obs.Hook.counter ~cat:"noc" ~name:"flow_throughput_gb_s" ~pid
       ~tid:0
       ~ts:(float_of_int (List.length results))
       ~value:(List.fold_left (fun a fr -> a +. fr.throughput) 0. results /. 1e9)
       ()
   end);
  results

let bisection_bandwidth t =
  (* cut between col c/2-1 and c/2: [rows] links each direction *)
  2. *. float_of_int t.mesh_rows *. t.link_bandwidth

let saturation_injection_rate t ~uniform_random =
  ignore uniform_random;
  (* uniform random: the bisection carries half the traffic *)
  2. *. bisection_bandwidth t
