module Obs = Ascend_obs

type packet = { dst_row : int; dst_col : int; born : int; mutable injected : int }

type t = {
  rows : int;
  cols : int;
  (* packets resident at each node this cycle *)
  mutable at_node : packet list array;
  inject_queues : packet Queue.t array;
  mutable clock : int;
  mutable seq : int;
  mutable pending : int;
  mutable delivered : int;
  mutable total_latency : int;
  mutable max_latency : int;
  mutable deflections : int;
  mutable obs_pid : int;  (* lazily allocated obs lane; -1 = none *)
}

(* flit spans are sampled (1 in 61 by birth order — coprime with the
   power-of-two-ish mesh sizes) so a saturated mesh doesn't flood the
   collector; counters sample every 64 NoC cycles *)
let obs_flit_sample_modulus = 61
let obs_counter_period = 64

let obs_pid t =
  if t.obs_pid >= 0 then t.obs_pid
  else begin
    let pid =
      Obs.Hook.alloc_pid ~name:(Printf.sprintf "noc:%dx%d" t.rows t.cols)
    in
    if pid >= 0 then begin
      Obs.Hook.name_thread ~pid ~tid:0 "flits";
      t.obs_pid <- pid
    end;
    pid
  end

let idx t r c = (r * t.cols) + c

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Deflection.create: empty mesh";
  {
    rows;
    cols;
    at_node = Array.make (rows * cols) [];
    inject_queues = Array.init (rows * cols) (fun _ -> Queue.create ());
    clock = 0;
    seq = 0;
    pending = 0;
    delivered = 0;
    total_latency = 0;
    max_latency = 0;
    deflections = 0;
    obs_pid = -1;
  }

let inject t ~src_row ~src_col ~dst_row ~dst_col =
  if src_row < 0 || src_row >= t.rows || src_col < 0 || src_col >= t.cols
     || dst_row < 0 || dst_row >= t.rows || dst_col < 0 || dst_col >= t.cols
  then invalid_arg "Deflection.inject: out of bounds";
  t.seq <- t.seq + 1;
  t.pending <- t.pending + 1;
  Queue.push
    { dst_row; dst_col; born = t.seq; injected = -1 }
    t.inject_queues.(idx t src_row src_col)

type port = North | South | East | West

let port_delta = function
  | North -> (-1, 0)
  | South -> (1, 0)
  | East -> (0, 1)
  | West -> (0, -1)

let step t =
  let next = Array.make (t.rows * t.cols) [] in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      let here = t.at_node.(idx t r c) in
      (* deliver *)
      let arriving, travelling =
        List.partition (fun p -> p.dst_row = r && p.dst_col = c) here
      in
      List.iter
        (fun p ->
          let lat = t.clock - p.injected in
          t.delivered <- t.delivered + 1;
          t.pending <- t.pending - 1;
          t.total_latency <- t.total_latency + lat;
          t.max_latency <- max t.max_latency lat;
          if Obs.Hook.enabled () && p.born mod obs_flit_sample_modulus = 0
          then
            Obs.Hook.span
              ~args:
                [
                  ("born", Obs.Event.Int p.born);
                  ("dst_row", Obs.Event.Int r);
                  ("dst_col", Obs.Event.Int c);
                ]
              ~cat:"noc" ~name:"flit" ~pid:(obs_pid t) ~tid:0
              ~ts:(float_of_int p.injected)
              ~dur:(float_of_int (max 1 lat))
              ())
        arriving;
      (* ports that physically exist at this node *)
      let ports =
        List.filter
          (fun p ->
            let dr, dc = port_delta p in
            let r' = r + dr and c' = c + dc in
            r' >= 0 && r' < t.rows && c' >= 0 && c' < t.cols)
          [ East; West; North; South ]
      in
      let free = ref ports in
      let take p = free := List.filter (fun q -> q <> p) !free in
      let preferred pkt =
        (* XY-productive directions, X first *)
        let dirs = ref [] in
        if pkt.dst_row < r then dirs := North :: !dirs;
        if pkt.dst_row > r then dirs := South :: !dirs;
        if pkt.dst_col < c then dirs := West :: !dirs;
        if pkt.dst_col > c then dirs := East :: !dirs;
        !dirs (* col-productive first because of the cons order *)
      in
      let route pkt =
        let wanted = preferred pkt in
        let choice =
          match List.find_opt (fun d -> List.mem d !free) wanted with
          | Some d -> Some (d, false)
          | None -> (
            match !free with d :: _ -> Some (d, true) | [] -> None)
        in
        match choice with
        | None ->
          (* cannot happen on a mesh (inputs <= outputs), but keep the
             packet in place rather than losing it *)
          next.(idx t r c) <- pkt :: next.(idx t r c)
        | Some (d, deflected) ->
          if deflected then t.deflections <- t.deflections + 1;
          take d;
          let dr, dc = port_delta d in
          next.(idx t (r + dr) (c + dc)) <- pkt :: next.(idx t (r + dr) (c + dc))
      in
      (* oldest-first priority prevents livelock *)
      let ordered =
        List.sort (fun a b -> compare a.born b.born) travelling
      in
      List.iter route ordered;
      (* inject if a port is still free *)
      let q = t.inject_queues.(idx t r c) in
      if (not (Queue.is_empty q)) && !free <> [] then begin
        let pkt = Queue.pop q in
        pkt.injected <- t.clock;
        if pkt.dst_row = r && pkt.dst_col = c then begin
          (* degenerate self-send delivers immediately *)
          t.delivered <- t.delivered + 1;
          t.pending <- t.pending - 1
        end
        else route pkt
      end
    done
  done;
  if Obs.Hook.enabled () && t.clock mod obs_counter_period = 0 then begin
    let pid = obs_pid t in
    let ts = float_of_int t.clock in
    let emit name value =
      Obs.Hook.counter ~cat:"noc" ~name ~pid ~tid:0 ~ts
        ~value:(float_of_int value) ()
    in
    emit "injected" t.seq;
    emit "delivered" t.delivered;
    emit "deflections" t.deflections;
    emit "pending" t.pending
  end;
  t.at_node <- next;
  t.clock <- t.clock + 1

type stats = {
  delivered : int;
  total_latency_cycles : int;
  max_latency_cycles : int;
  deflections : int;
  cycles_run : int;
}

let run ?(max_cycles = 100_000) t =
  let rec go () =
    if t.pending = 0 then
      Ok
        {
          delivered = t.delivered;
          total_latency_cycles = t.total_latency;
          max_latency_cycles = t.max_latency;
          deflections = t.deflections;
          cycles_run = t.clock;
        }
    else if t.clock >= max_cycles then
      Error
        (Printf.sprintf "Deflection.run: %d packets undelivered after %d cycles"
           t.pending t.clock)
    else begin
      step t;
      go ()
    end
  in
  go ()

let average_latency s =
  if s.delivered = 0 then 0.
  else float_of_int s.total_latency_cycles /. float_of_int s.delivered

let uniform_random_experiment ~rows ~cols ~packets ~seed =
  let t = create ~rows ~cols in
  let rng = Ascend_util.Prng.create ~seed in
  for _ = 1 to packets do
    let src_row = Ascend_util.Prng.int rng ~bound:rows in
    let src_col = Ascend_util.Prng.int rng ~bound:cols in
    let dst_row = Ascend_util.Prng.int rng ~bound:rows in
    let dst_col = Ascend_util.Prng.int rng ~bound:cols in
    inject t ~src_row ~src_col ~dst_row ~dst_col
  done;
  match run t with
  | Ok s -> s
  | Error e -> failwith e
