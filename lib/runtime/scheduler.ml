type task = { task_name : string; blocks : int; cycles_per_block : int }

type stream = { stream_name : string; tasks : task list }

type app = { app_name : string; streams : stream list; priority : int }

let app ?(priority = 0) ~name streams =
  { app_name = name; streams; priority }

type placement = {
  app : string;
  stream : string;
  task : string;
  block : int;
  core : int;
  start_cycle : int;
  end_cycle : int;
}

type schedule = {
  placements : placement list;
  makespan_cycles : int;
  core_busy_cycles : int array;
  tasks_completed : int;
}

type live_stream = {
  ls_app : string;
  ls_name : string;
  ls_priority : int;
  ls_index : int;  (* declaration order, the final tiebreak *)
  mutable remaining : task list;
  mutable ready : int;  (* previous task's completion *)
}

(* strict total order for stream selection: highest priority first, then
   smallest ready time, then declaration order *)
let precedes a b =
  a.ls_priority > b.ls_priority
  || (a.ls_priority = b.ls_priority
     && (a.ready < b.ready || (a.ready = b.ready && a.ls_index < b.ls_index)))

(* array-backed binary heap under [precedes].  A stream's [ready] only
   mutates while it is popped out of the heap, so the invariant holds. *)
module Heap = struct
  type t = { mutable a : live_stream array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let swap h i j =
    let t = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- t

  let rec up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if precedes h.a.(i) h.a.(p) then begin
        swap h i p;
        up h p
      end
    end

  let rec down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < h.n && precedes h.a.(l) h.a.(!m) then m := l;
    if r < h.n && precedes h.a.(r) h.a.(!m) then m := r;
    if !m <> i then begin
      swap h i !m;
      down h !m
    end

  let push h s =
    if h.n = Array.length h.a then begin
      let a = Array.make (max 4 (2 * h.n)) s in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- s;
    h.n <- h.n + 1;
    up h (h.n - 1)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        down h 0
      end;
      Some top
    end
end

let validate_inputs ~cores apps =
  if cores <= 0 then invalid_arg "Scheduler.run: non-positive cores";
  List.iter
    (fun a ->
      List.iter
        (fun s ->
          List.iter
            (fun t ->
              if t.blocks <= 0 || t.cycles_per_block < 0 then
                invalid_arg
                  (Printf.sprintf "Scheduler.run: malformed task %s" t.task_name))
            s.tasks)
        a.streams)
    apps

let run ~cores apps =
  validate_inputs ~cores apps;
  let streams =
    let ix = ref (-1) in
    List.concat_map
      (fun a ->
        List.map
          (fun s ->
            incr ix;
            { ls_app = a.app_name; ls_name = s.stream_name;
              ls_priority = a.priority; ls_index = !ix; remaining = s.tasks;
              ready = 0 })
          a.streams)
      apps
  in
  let core_free = Array.make cores 0 in
  let core_busy = Array.make cores 0 in
  let placements = ref [] in
  let tasks_done = ref 0 in
  (* streams with work, selected in [precedes] order.  The heap keeps
     per-task selection at O(log streams); a linear scan here made
     one-task-per-stream workloads — the serving loops' offline repack
     dispatches one stream per batch — quadratic in batch count. *)
  let heap = Heap.create () in
  List.iter (fun s -> if s.remaining <> [] then Heap.push heap s) streams;
  let rec next_stream () =
    match Heap.pop heap with
    | None -> ()
    | Some s ->
      (match s.remaining with
      | [] -> ()
      | t :: rest ->
        s.remaining <- rest;
        (* place blocks on the earliest-free cores *)
        let finish = ref s.ready in
        for b = 0 to t.blocks - 1 do
          (* pick the core that frees first *)
          let core = ref 0 in
          for c = 1 to cores - 1 do
            if core_free.(c) < core_free.(!core) then core := c
          done;
          let start = max core_free.(!core) s.ready in
          let stop = start + t.cycles_per_block in
          core_free.(!core) <- stop;
          core_busy.(!core) <- core_busy.(!core) + t.cycles_per_block;
          finish := max !finish stop;
          placements :=
            { app = s.ls_app; stream = s.ls_name; task = t.task_name;
              block = b; core = !core; start_cycle = start; end_cycle = stop }
            :: !placements
        done;
        s.ready <- !finish;
        incr tasks_done;
        if s.remaining <> [] then Heap.push heap s);
      next_stream ()
  in
  next_stream ();
  let makespan = Array.fold_left max 0 core_free in
  {
    placements = List.rev !placements;
    makespan_cycles =
      List.fold_left (fun acc s -> max acc s.ready) makespan streams;
    core_busy_cycles = core_busy;
    tasks_completed = !tasks_done;
  }

let utilization s =
  if s.makespan_cycles = 0 then 0.
  else
    let busy = Array.fold_left ( + ) 0 s.core_busy_cycles in
    float_of_int busy
    /. float_of_int (s.makespan_cycles * Array.length s.core_busy_cycles)

let task_of_layer (l : Ascend_compiler.Engine.layer_result) ~blocks =
  if blocks <= 0 then invalid_arg "Scheduler.task_of_layer: no blocks";
  {
    task_name = l.group.Ascend_compiler.Fusion.tag;
    blocks;
    cycles_per_block =
      Ascend_util.Stats.divide_round_up
        l.report.Ascend_core_sim.Simulator.total_cycles blocks;
  }

let stream_of_network (r : Ascend_compiler.Engine.network_result)
    ~blocks_per_task =
  {
    stream_name = r.graph_name;
    tasks = List.map (task_of_layer ~blocks:blocks_per_task) r.layers;
  }

let pp ppf s =
  Format.fprintf ppf
    "schedule: %d tasks, makespan %d cycles, utilization %.1f%%@."
    s.tasks_completed s.makespan_cycles
    (100. *. utilization s)
