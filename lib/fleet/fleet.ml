module Scheduler = Ascend_runtime.Scheduler
module Prng = Ascend_util.Prng
module Units = Ascend_util.Units
module Stats = Ascend_util.Stats
module Json = Ascend_util.Json
module Table = Ascend_util.Table
module Obs = Ascend_obs
module Server = Ascend_cluster.Server
module Training = Ascend_cluster.Training
module Training_soc = Ascend_soc.Training_soc
module Fusion = Ascend_compiler.Fusion
module Serve = Ascend_serving.Serve
module Batcher = Ascend_serving.Batcher
module Request = Ascend_serving.Request
module Metrics = Ascend_serving.Metrics
module Cost = Ascend_serving.Cost

type model_spec = {
  name : string;
  build : batch:int -> Ascend_nn.Graph.t;
  priority : int;
  slo_ms : float;
  workload : Serve.workload;
  replicas : int;
  kv_bytes : int;
}

type train_job = {
  tj_model : string;
  tj_build : batch:int -> Ascend_nn.Graph.t;
  tj_batch : int;
  tj_nodes : int;
}

type config = {
  core : Ascend_arch.Config.t;
  server : Server.t;
  nodes : int;
  cores_per_node : int;
  max_batch : int;
  max_delay_s : float;
  queue_depth : int;
  duration_s : float;
  bucket_s : float;
  policy : Router.policy;
  costing : Cost.costing;
  hbm_bytes_per_node : int option;
}

let default_config ~core ~nodes =
  let server = Server.ascend910_server in
  {
    core;
    server;
    nodes;
    cores_per_node = server.Server.chips;
    max_batch = 8;
    max_delay_s = 2e-3;
    queue_depth = 64;
    duration_s = 1.;
    bucket_s = 50e-3;
    policy = Router.Least_loaded;
    costing = `Exact;
    hbm_bytes_per_node = None;
  }

let costing_name = function `Exact -> "exact" | `Surrogate -> "surrogate"

type batch_exec = {
  bx_model : string;
  bx_priority : int;
  bx_size : int;
  bx_node : int;
  bx_core : int;
  bx_start_s : float;
  bx_finish_s : float;
  bx_cycles : int;
  bx_paged : bool;
}

type node_report = {
  node : int;
  colocated_training : bool;
  train_interconnect_util : float;
  routed : int;
  completed : int;
  rejected : int;
  page_ins : int;
  page_in_s : float;
  slo_attainment : float;
  node_metrics : Metrics.t;
}

type route_cell = {
  rc_node : int;
  rc_model : string;
  rc_routed : int;
  rc_completed : int;
  rc_rejected : int;
  rc_paged : bool;
  rc_p50_ms : float;
  rc_p95_ms : float;
  rc_p99_ms : float;
}

type train_report = {
  tr_model : string;
  tr_batch : int;
  tr_nodes : int;
  tr_step_s : float;
  tr_images_per_s : float;
  tr_interconnect_util : float;
}

type result = {
  fleet_config : config;
  placement : Placement.t;
  records : (int * Request.record) list;
  batches : batch_exec list;
  fleet_metrics : Metrics.t;
  node_reports : node_report list;
  routes : route_cell list;
  training : train_report option;
  slo_attainment : float;
  total_page_ins : int;
  cost_hits : int;
  cost_misses : int;
  cost_interpolated : int;
  cost_fallbacks : int;
  cost_stats : Ascend_exec.Cache.stats;
}

exception Cost_error of string

let eps = 1e-12

let validate ?train config specs =
  if config.nodes <= 0 then invalid_arg "Fleet.run: non-positive nodes";
  if config.cores_per_node <= 0 then
    invalid_arg "Fleet.run: non-positive cores per node";
  if config.duration_s <= 0. then invalid_arg "Fleet.run: non-positive duration";
  if config.bucket_s <= 0. then invalid_arg "Fleet.run: non-positive bucket";
  if specs = [] then invalid_arg "Fleet.run: no models";
  let names = List.map (fun s -> s.name) specs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Fleet.run: duplicate model names";
  List.iter
    (fun s ->
      match s.workload with
      | Serve.Closed_loop { clients; _ } when clients < 1 ->
        invalid_arg "Fleet.run: closed loop needs at least one client"
      | _ -> ())
    specs;
  match train with
  | Some tj ->
    if tj.tj_nodes < 1 || tj.tj_nodes > config.nodes then
      invalid_arg "Fleet.run: train nodes outside [1, nodes]";
    if tj.tj_batch < 1 then invalid_arg "Fleet.run: train batch < 1"
  | None -> ()

(* sorted insertion by (arrival, id); same discipline as Serve *)
let rec insert_arrival r = function
  | [] -> [ r ]
  | hd :: tl ->
    if
      hd.Request.arrival_s < r.Request.arrival_s -. eps
      || (Float.abs (hd.Request.arrival_s -. r.Request.arrival_s) <= eps
          && hd.Request.id < r.Request.id)
    then hd :: insert_arrival r tl
    else r :: hd :: tl

(* resident weight footprint: the fused graph's weight bytes at batch 1
   (weights are batch-invariant; activations are not paged) *)
let model_weight_bytes build =
  List.fold_left
    (fun acc (g : Fusion.t) -> acc + g.Fusion.weight_bytes)
    0
    (Fusion.partition (build ~batch:1))

(* the colocated trainer: one Training_soc step on this node's cores,
   gradients all-reduced across the server's chips.  The returned
   utilization is the fraction of a training step the interconnect
   spends moving gradients — bandwidth inference page-ins don't get. *)
let train_contention config tj =
  let soc =
    {
      Training_soc.ascend910 with
      Training_soc.core = config.core;
      cores = config.cores_per_node;
    }
  in
  match Training_soc.run ~training:true soc ~build:tj.tj_build ~batch:tj.tj_batch with
  | Error e -> raise (Cost_error ("train job " ^ tj.tj_model ^ ": " ^ e))
  | Ok chip ->
    let param_bytes = float_of_int (model_weight_bytes tj.tj_build) in
    let cluster =
      {
        Training.cluster_name = "fleet-colocated";
        server = config.server;
        network = Ascend_noc.Fat_tree.ascend_cluster;
        servers = 1;
        overlap = 0.7;
      }
    in
    let step = Training.train_step cluster ~chip_result:chip ~param_bytes in
    let util =
      Stats.clamp ~lo:0. ~hi:0.95
        (step.Training.allreduce_seconds
        /. Float.max eps step.Training.step_seconds)
    in
    {
      tr_model = tj.tj_model;
      tr_batch = tj.tj_batch;
      tr_nodes = tj.tj_nodes;
      tr_step_s = step.Training.step_seconds;
      tr_images_per_s = float_of_int tj.tj_batch /. step.Training.step_seconds;
      tr_interconnect_util = util;
    }

let percentile_ms p lat = if lat = [] then 0. else Stats.percentile p lat

let run ?train config specs_list =
  validate ?train config specs_list;
  let specs = Array.of_list specs_list in
  let n_models = Array.length specs in
  let nodes = config.nodes in
  let cpn = config.cores_per_node in
  let cost =
    Cost.create ~costing:config.costing ~max_batch:config.max_batch
      ~core:config.core ()
  in
  let s_of_cycles c =
    Units.seconds_of_cycles ~cycles:c
      ~frequency_ghz:config.core.Ascend_arch.Config.frequency_ghz
  in
  let freq_hz = config.core.Ascend_arch.Config.frequency_ghz *. 1e9 in
  match
    let weight_bytes = Array.map (fun s -> model_weight_bytes s.build) specs in
    let placement =
      Placement.build ?hbm_bytes_per_node:config.hbm_bytes_per_node ~nodes
        (Array.to_list
           (Array.mapi
              (fun i s -> (s.name, weight_bytes.(i), s.kv_bytes, s.replicas))
              specs))
    in
    (* whole-plan residency: each node must hold every resident model's
       weights plus its reserved KV working set at t = 0 *)
    (match config.hbm_bytes_per_node with
    | None -> ()
    | Some cap ->
      for node = 0 to nodes - 1 do
        let resident =
          List.fold_left
            (fun acc (e : Placement.entry) ->
              if List.mem node e.Placement.replicas then
                acc + e.Placement.weight_bytes + e.Placement.kv_bytes
              else acc)
            0 placement.Placement.entries
        in
        if resident > cap then
          raise
            (Cost_error
               (Printf.sprintf
                  "placement overcommits node %d: %d B resident (weights + \
                   kv) of %d B HBM"
                  node resident cap))
      done);
    let training = Option.map (train_contention config) train in
    let train_nodes =
      match training with Some t -> t.tr_nodes | None -> 0
    in
    let train_util n =
      match training with
      | Some t when n < train_nodes -> t.tr_interconnect_util
      | _ -> 0.
    in
    (* weights stream in over the server's inter-group bus; colocated
       training's all-reduce takes its share first *)
    let page_bandwidth n =
      Server.link_bandwidth config.server ~src:0
        ~dst:(config.server.Server.chips - 1)
      *. (1. -. train_util n)
    in
    let page_in_seconds n m =
      float_of_int weight_bytes.(m) /. Float.max 1. (page_bandwidth n)
    in
    let router = Router.create ~policy:config.policy ~nodes () in
    let queues =
      Array.init nodes (fun _ ->
          Array.map
            (fun s ->
              Batcher.create ~label:s.name ~max_batch:config.max_batch
                ~max_delay_s:config.max_delay_s
                ~queue_depth:config.queue_depth ())
            specs)
    in
    (* obs lanes: tid 0 is the router, tid 1+n is node n.  Timestamps
       are simulated seconds scaled to microseconds — virtual time. *)
    let obs_pid =
      if not (Obs.Hook.enabled ()) then -1
      else begin
        let pid =
          Obs.Hook.alloc_pid
            ~name:("fleet:" ^ config.core.Ascend_arch.Config.name)
        in
        Obs.Hook.name_thread ~pid ~tid:0 "router";
        for n = 0 to nodes - 1 do
          Obs.Hook.name_thread ~pid ~tid:(1 + n) (Printf.sprintf "node%d" n)
        done;
        pid
      end
    in
    let us t = t *. 1e6 in
    let think_rng =
      Array.map
        (fun s ->
          match s.workload with
          | Serve.Closed_loop { seed; _ } -> Some (Prng.create ~seed)
          | Serve.Open_loop _ -> None)
        specs
    in
    let next_id = ref 0 in
    let fresh_request spec_idx ~arrival_s =
      let s = specs.(spec_idx) in
      let r =
        {
          Request.id = !next_id;
          model = s.name;
          arrival_s;
          priority = s.priority;
          slo_s = s.slo_ms /. 1e3;
        }
      in
      incr next_id;
      r
    in
    let spec_index = Hashtbl.create n_models in
    Array.iteri (fun i s -> Hashtbl.replace spec_index s.name i) specs;
    let pending = ref [] in
    Array.iteri
      (fun i s ->
        match s.workload with
        | Serve.Open_loop gen ->
          List.iter
            (fun t ->
              pending := insert_arrival (fresh_request i ~arrival_s:t) !pending)
            (Ascend_serving.Load_gen.arrivals gen)
        | Serve.Closed_loop { clients; _ } ->
          for _ = 1 to clients do
            pending := insert_arrival (fresh_request i ~arrival_s:0.) !pending
          done)
      specs;
    let resident =
      Array.init nodes (fun n ->
          Array.init n_models (fun m ->
              Placement.resident placement ~model:specs.(m).name ~node:n))
    in
    let initially_resident = Array.map Array.copy resident in
    let core_free = Array.init nodes (fun _ -> Array.make cpn 0.) in
    let busy_spans = Array.make nodes [] in
    let records = ref [] in
    let batches = ref [] in
    let batch_seq = ref 0 in
    let routed = Array.make nodes 0 in
    let page_ins = Array.make nodes 0 in
    let page_in_s = Array.make nodes 0. in
    let reissue spec_idx ~finish_s =
      match (specs.(spec_idx).workload, think_rng.(spec_idx)) with
      | Serve.Closed_loop { think_s; _ }, Some rng ->
        let think =
          if think_s <= 0. then 0.
          else -.think_s *. log (1. -. Prng.float rng ~bound:1.)
        in
        let t = finish_s +. think in
        if t < config.duration_s then
          pending :=
            insert_arrival (fresh_request spec_idx ~arrival_s:t) !pending
      | _ -> ()
    in
    let price spec_idx ~batch =
      let s = specs.(spec_idx) in
      match Cost.lookup cost ~model:s.name ~build:s.build ~batch with
      | Ok e -> e
      | Error e -> raise (Cost_error (s.name ^ ": " ^ e))
    in
    let node_cores = List.init cpn Fun.id in
    let dispatch_node now n =
      let idle =
        List.filter (fun c -> core_free.(n).(c) <= now +. eps) node_cores
      in
      if idle <> [] then begin
        (* drain every ready batch, spec order for determinism; a batch
           dispatched on a node without the weights pays the page-in
           stall as extra cycles on its core (the DMA of the weights) *)
        let ready = ref [] in
        Array.iteri
          (fun m q ->
            while Batcher.ready q ~now do
              let reqs = Batcher.take q in
              if obs_pid >= 0 then
                Obs.Hook.counter ~cat:"fleet"
                  ~name:("queue:" ^ specs.(m).name) ~pid:obs_pid ~tid:(1 + n)
                  ~ts:(us now)
                  ~value:(float_of_int (Batcher.length q))
                  ();
              let entry = price m ~batch:(List.length reqs) in
              let paged, stall_cycles =
                if resident.(n).(m) then (false, 0)
                else begin
                  resident.(n).(m) <- true;
                  page_ins.(n) <- page_ins.(n) + 1;
                  let pen = page_in_seconds n m in
                  page_in_s.(n) <- page_in_s.(n) +. pen;
                  if obs_pid >= 0 then
                    Obs.Hook.span
                      ~args:
                        [
                          ("bytes", Obs.Event.Int weight_bytes.(m));
                          ( "bandwidth",
                            Obs.Event.Float (page_bandwidth n) );
                        ]
                      ~cat:"fleet" ~name:("page_in:" ^ specs.(m).name)
                      ~pid:obs_pid ~tid:(1 + n) ~ts:(us now)
                      ~dur:(us pen) ();
                  (true, int_of_float (ceil (pen *. freq_hz)))
                end
              in
              ready := (m, reqs, entry, paged, stall_cycles) :: !ready
            done)
          queues.(n);
        let ready = List.rev !ready in
        if ready <> [] then begin
          let idle_arr = Array.of_list idle in
          let tagged =
            List.map
              (fun (m, reqs, entry, paged, stall) ->
                let tag = Printf.sprintf "batch%d" !batch_seq in
                incr batch_seq;
                (tag, m, reqs, entry, paged, stall))
              ready
          in
          let apps =
            List.map
              (fun (tag, m, _reqs, (entry : Cost.entry), _paged, stall) ->
                Scheduler.app ~priority:specs.(m).priority ~name:tag
                  [
                    {
                      Scheduler.stream_name = tag;
                      tasks =
                        [
                          {
                            Scheduler.task_name = tag;
                            blocks = 1;
                            cycles_per_block =
                              max 1 (entry.Cost.cycles + stall);
                          };
                        ];
                    };
                  ])
              tagged
          in
          let sched = Scheduler.run ~cores:(Array.length idle_arr) apps in
          List.iter
            (fun (p : Scheduler.placement) ->
              let _tag, m, reqs, (entry : Cost.entry), paged, _stall =
                List.find
                  (fun (tag, _, _, _, _, _) -> tag = p.Scheduler.app)
                  tagged
              in
              let core = idle_arr.(p.Scheduler.core) in
              let start_s = now +. s_of_cycles p.Scheduler.start_cycle in
              let finish_s = now +. s_of_cycles p.Scheduler.end_cycle in
              core_free.(n).(core) <- Float.max core_free.(n).(core) finish_s;
              busy_spans.(n) <- (core, start_s, finish_s) :: busy_spans.(n);
              let size = List.length reqs in
              batches :=
                {
                  bx_model = specs.(m).name;
                  bx_priority = specs.(m).priority;
                  bx_size = size;
                  bx_node = n;
                  bx_core = core;
                  bx_start_s = start_s;
                  bx_finish_s = finish_s;
                  bx_cycles = entry.Cost.cycles;
                  bx_paged = paged;
                }
                :: !batches;
              if obs_pid >= 0 then
                Obs.Hook.span
                  ~args:
                    [
                      ("size", Obs.Event.Int size);
                      ("core", Obs.Event.Int core);
                      ("cycles", Obs.Event.Int entry.Cost.cycles);
                      ("paged", Obs.Event.Bool paged);
                    ]
                  ~cat:"batch" ~name:specs.(m).name ~pid:obs_pid
                  ~tid:(1 + n) ~ts:(us start_s)
                  ~dur:(us (finish_s -. start_s))
                  ();
              List.iter
                (fun r ->
                  records :=
                    ( n,
                      {
                        Request.request = r;
                        outcome = Request.Completed;
                        start_s;
                        finish_s;
                        batch = size;
                        core;
                      } )
                    :: !records;
                  reissue m ~finish_s)
                reqs)
            sched.Scheduler.placements
        end
      end
    in
    let dispatch now =
      for n = 0 to nodes - 1 do
        dispatch_node now n
      done
    in
    let total_queued n =
      Array.fold_left (fun acc q -> acc + Batcher.length q) 0 queues.(n)
    in
    let admit now =
      let rec go () =
        match !pending with
        | r :: rest when r.Request.arrival_s <= now +. eps ->
          pending := rest;
          let m = Hashtbl.find spec_index r.Request.model in
          let depths = Array.init nodes total_queued in
          let n = Router.route router ~placement ~model:r.Request.model ~depths in
          routed.(n) <- routed.(n) + 1;
          if obs_pid >= 0 then begin
            Obs.Hook.instant
              ~args:
                [
                  ("id", Obs.Event.Int r.Request.id);
                  ("model", Obs.Event.String r.Request.model);
                  ("node", Obs.Event.Int n);
                ]
              ~cat:"fleet" ~name:"route" ~pid:obs_pid ~tid:0
              ~ts:(us r.Request.arrival_s) ();
            Obs.Hook.counter ~cat:"fleet"
              ~name:(Printf.sprintf "routed:node%d" n) ~pid:obs_pid ~tid:0
              ~ts:(us r.Request.arrival_s)
              ~value:(float_of_int routed.(n))
              ()
          end;
          (match Batcher.offer queues.(n).(m) r with
          | Batcher.Admitted ->
            if obs_pid >= 0 then
              Obs.Hook.counter ~cat:"fleet"
                ~name:("queue:" ^ r.Request.model) ~pid:obs_pid ~tid:(1 + n)
                ~ts:(us r.Request.arrival_s)
                ~value:(float_of_int (Batcher.length queues.(n).(m)))
                ()
          | Batcher.Shed ->
            records := (n, Request.rejected r) :: !records;
            if obs_pid >= 0 then
              Obs.Hook.instant
                ~args:[ ("id", Obs.Event.Int r.Request.id) ]
                ~cat:"fleet" ~name:("shed:" ^ r.Request.model) ~pid:obs_pid
                ~tid:(1 + n) ~ts:(us r.Request.arrival_s) ());
          go ()
        | _ -> ()
      in
      go ()
    in
    let next_time now =
      let best = ref infinity in
      let consider t = if t > now +. eps && t < !best then best := t in
      (match !pending with r :: _ -> consider r.Request.arrival_s | [] -> ());
      Array.iter
        (Array.iter (fun q ->
             match Batcher.deadline q with Some d -> consider d | None -> ()))
        queues;
      let queued =
        Array.exists
          (Array.exists (fun q -> Batcher.length q > 0))
          queues
      in
      if queued then Array.iter (Array.iter consider) core_free;
      if !best = infinity then None else Some !best
    in
    let rec step now =
      admit now;
      dispatch now;
      match next_time now with None -> () | Some t -> step t
    in
    step 0.;
    (records, batches, busy_spans, routed, page_ins, page_in_s, placement,
     training, initially_resident, resident, weight_bytes, train_util)
  with
  | exception Cost_error e -> Error e
  | ( records, batches, busy_spans, routed, page_ins, page_in_s, placement,
      training, initially_resident, resident, _weight_bytes, train_util ) ->
    let records =
      List.sort
        (fun (_, a) (_, b) ->
          compare a.Request.request.Request.id b.Request.request.Request.id)
        !records
    in
    let batches = List.rev !batches in
    let model_triples =
      Array.to_list
        (Array.map (fun s -> (s.name, s.priority, s.slo_ms)) specs)
    in
    let cpn = config.cores_per_node in
    (* fleet-wide metrics over the flat core space node*cpn + core *)
    let fleet_metrics =
      Metrics.build ~duration_s:config.duration_s ~bucket_s:config.bucket_s
        ~cores:(config.nodes * cpn) ~models:model_triples
        ~busy:
          (List.concat
             (List.mapi
                (fun n spans ->
                  List.map
                    (fun (c, s, f) -> ((n * cpn) + c, s, f))
                    spans)
                (Array.to_list busy_spans)))
        (List.map
           (fun (n, r) ->
             if r.Request.outcome = Request.Completed then
               { r with Request.core = (n * cpn) + r.Request.core }
             else r)
           records)
    in
    let node_records n =
      List.filter_map
        (fun (n', r) -> if n' = n then Some r else None)
        records
    in
    let slo_of rs =
      let done_ =
        List.filter (fun r -> r.Request.outcome = Request.Completed) rs
      in
      if done_ = [] then 0.
      else
        float_of_int (List.length (List.filter Request.met_slo done_))
        /. float_of_int (List.length done_)
    in
    let node_reports =
      List.init config.nodes (fun n ->
          let rs = node_records n in
          let completed =
            List.length
              (List.filter
                 (fun r -> r.Request.outcome = Request.Completed)
                 rs)
          in
          {
            node = n;
            colocated_training = train_util n > 0.;
            train_interconnect_util = train_util n;
            routed = routed.(n);
            completed;
            rejected = List.length rs - completed;
            page_ins = page_ins.(n);
            page_in_s = page_in_s.(n);
            slo_attainment = slo_of rs;
            node_metrics =
              Metrics.build ~duration_s:config.duration_s
                ~bucket_s:config.bucket_s ~cores:cpn ~models:model_triples
                ~busy:busy_spans.(n) rs;
          })
    in
    let routes =
      List.concat
        (List.init config.nodes (fun n ->
             List.mapi
               (fun m s ->
                 let rs =
                   List.filter
                     (fun r -> r.Request.request.Request.model = s.name)
                     (node_records n)
                 in
                 let done_, rej =
                   List.partition
                     (fun r -> r.Request.outcome = Request.Completed)
                     rs
                 in
                 let lat =
                   List.map (fun r -> 1e3 *. Request.latency_s r) done_
                 in
                 {
                   rc_node = n;
                   rc_model = s.name;
                   rc_routed = List.length rs;
                   rc_completed = List.length done_;
                   rc_rejected = List.length rej;
                   rc_paged =
                     resident.(n).(m) && not initially_resident.(n).(m);
                   rc_p50_ms = percentile_ms 50. lat;
                   rc_p95_ms = percentile_ms 95. lat;
                   rc_p99_ms = percentile_ms 99. lat;
                 })
               (Array.to_list specs)))
    in
    Ok
      {
        fleet_config = config;
        placement;
        records;
        batches;
        fleet_metrics;
        node_reports;
        routes;
        training;
        slo_attainment = slo_of (List.map snd records);
        total_page_ins = Array.fold_left ( + ) 0 page_ins;
        cost_hits = Cost.hits cost;
        cost_misses = Cost.misses cost;
        cost_interpolated = Cost.interpolated cost;
        cost_fallbacks = Cost.fallbacks cost;
        cost_stats = Cost.stats cost;
      }

(* --- export -------------------------------------------------------- *)

let observed_page_ins r =
  Array.of_list (List.map (fun nr -> nr.page_ins) r.node_reports)

(* one document shape for both sides of the page-in differential gate:
   the static prediction (Verify.Cluster.predicted_page_ins) and the
   counts a run observes must serialise byte-identically *)
let pagein_json ~policy ~placement ~counts =
  Json.Obj
    [
      ("policy", Json.String (Router.policy_name policy));
      ("nodes", Json.Int placement.Placement.nodes);
      ("placement", Placement.to_json placement);
      ( "page_ins",
        Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)) );
      ("total", Json.Int (Array.fold_left ( + ) 0 counts));
    ]

let to_json r =
  let c = r.fleet_config in
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("core", Json.String c.core.Ascend_arch.Config.name);
            ("server", Json.String c.server.Server.server_name);
            ("nodes", Json.Int c.nodes);
            ("cores_per_node", Json.Int c.cores_per_node);
            ("policy", Json.String (Router.policy_name c.policy));
            ("max_batch", Json.Int c.max_batch);
            ("max_delay_ms", Json.Float (1e3 *. c.max_delay_s));
            ("queue_depth", Json.Int c.queue_depth);
            ("duration_s", Json.Float c.duration_s);
            ("costing", Json.String (costing_name c.costing));
          ] );
      ("placement", Placement.to_json r.placement);
      ( "training",
        match r.training with
        | None -> Json.Null
        | Some t ->
          Json.Obj
            [
              ("model", Json.String t.tr_model);
              ("batch", Json.Int t.tr_batch);
              ("nodes", Json.Int t.tr_nodes);
              ("step_s", Json.Float t.tr_step_s);
              ("images_per_s", Json.Float t.tr_images_per_s);
              ("interconnect_util", Json.Float t.tr_interconnect_util);
            ] );
      ( "fleet",
        Json.Obj
          [
            ("slo_attainment", Json.Float r.slo_attainment);
            ("page_ins", Json.Int r.total_page_ins);
            ("metrics", Metrics.to_json r.fleet_metrics);
          ] );
      ( "nodes",
        Json.List
          (List.map
             (fun nr ->
               Json.Obj
                 [
                   ("node", Json.Int nr.node);
                   ("training", Json.Bool nr.colocated_training);
                   ( "train_interconnect_util",
                     Json.Float nr.train_interconnect_util );
                   ("routed", Json.Int nr.routed);
                   ("completed", Json.Int nr.completed);
                   ("rejected", Json.Int nr.rejected);
                   ("page_ins", Json.Int nr.page_ins);
                   ("page_in_ms", Json.Float (1e3 *. nr.page_in_s));
                   ("slo_attainment", Json.Float nr.slo_attainment);
                   ("metrics", Metrics.to_json nr.node_metrics);
                 ])
             r.node_reports) );
      ( "routing",
        Json.List
          (List.map
             (fun rc ->
               Json.Obj
                 [
                   ("node", Json.Int rc.rc_node);
                   ("model", Json.String rc.rc_model);
                   ("routed", Json.Int rc.rc_routed);
                   ("completed", Json.Int rc.rc_completed);
                   ("rejected", Json.Int rc.rc_rejected);
                   ("paged", Json.Bool rc.rc_paged);
                   ("p50_ms", Json.Float rc.rc_p50_ms);
                   ("p95_ms", Json.Float rc.rc_p95_ms);
                   ("p99_ms", Json.Float rc.rc_p99_ms);
                 ])
             r.routes) );
      ( "batches",
        Json.Obj
          [
            ("count", Json.Int (List.length r.batches));
            ( "paged",
              Json.Int
                (List.length (List.filter (fun b -> b.bx_paged) r.batches)) );
          ] );
      ( "cost_cache",
        Json.Obj
          [
            ("hits", Json.Int r.cost_hits);
            ("misses", Json.Int r.cost_misses);
            ("interpolated", Json.Int r.cost_interpolated);
            ("fallbacks", Json.Int r.cost_fallbacks);
            ("disk_hits", Json.Int r.cost_stats.Ascend_exec.Cache.disk_hits);
            ( "disk_writes",
              Json.Int r.cost_stats.Ascend_exec.Cache.disk_writes );
            ( "disk_entries",
              Json.Int r.cost_stats.Ascend_exec.Cache.disk_entries );
          ] );
    ]

let mean_utilization (m : Metrics.t) =
  let a = m.Metrics.core_utilization in
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let pp ppf r =
  let c = r.fleet_config in
  Format.fprintf ppf
    "fleet: %d nodes x %d cores (%s, %s), policy %s@."
    c.nodes c.cores_per_node c.server.Server.server_name
    c.core.Ascend_arch.Config.name
    (Router.policy_name c.policy);
  Format.fprintf ppf "%a" Metrics.pp r.fleet_metrics;
  let node_table =
    Table.create
      ~header:
        [ "node"; "train"; "util%"; "routed"; "done"; "rej"; "page-ins";
          "page-in ms"; "slo%" ]
      ()
  in
  List.iter
    (fun nr ->
      Table.add_row node_table
        [
          string_of_int nr.node;
          (if nr.colocated_training then
             Printf.sprintf "%.0f%%" (100. *. nr.train_interconnect_util)
           else "-");
          Printf.sprintf "%.1f" (100. *. mean_utilization nr.node_metrics);
          string_of_int nr.routed;
          string_of_int nr.completed;
          string_of_int nr.rejected;
          string_of_int nr.page_ins;
          Table.cell_float ~decimals:3 (1e3 *. nr.page_in_s);
          Printf.sprintf "%.1f%%" (100. *. nr.slo_attainment);
        ])
    r.node_reports;
  Format.fprintf ppf "%s@." (Table.render node_table);
  let route_table =
    Table.create
      ~header:
        [ "node"; "model"; "routed"; "done"; "rej"; "paged"; "p50 ms";
          "p95 ms"; "p99 ms" ]
      ()
  in
  List.iter
    (fun rc ->
      Table.add_row route_table
        [
          string_of_int rc.rc_node;
          rc.rc_model;
          string_of_int rc.rc_routed;
          string_of_int rc.rc_completed;
          string_of_int rc.rc_rejected;
          (if rc.rc_paged then "yes" else "-");
          Table.cell_float rc.rc_p50_ms;
          Table.cell_float rc.rc_p95_ms;
          Table.cell_float rc.rc_p99_ms;
        ])
    r.routes;
  Format.fprintf ppf "%s@." (Table.render route_table);
  (match r.training with
  | None -> ()
  | Some t ->
    Format.fprintf ppf
      "colocated training: %s batch %d on %d node(s), %.2f ms/step (%.1f \
       img/s/node), %.0f%% of interconnect in all-reduce@."
      t.tr_model t.tr_batch t.tr_nodes (1e3 *. t.tr_step_s)
      t.tr_images_per_s
      (100. *. t.tr_interconnect_util));
  Format.fprintf ppf
    "fleet SLO attainment %.1f%%; %d batches (%d page-ins); latency cache: \
     %d compile+simulate runs, %d cached lookups@."
    (100. *. r.slo_attainment)
    (List.length r.batches) r.total_page_ins r.cost_misses r.cost_hits;
  if r.fleet_config.costing = `Surrogate then
    Format.fprintf ppf
      "surrogate: %d interpolated lookups, %d out-of-range fallbacks@."
      r.cost_interpolated r.cost_fallbacks;
  Format.fprintf ppf "exec cache: %a@." Ascend_exec.Cache.pp_stats r.cost_stats
