module Json = Ascend_util.Json

type entry = {
  model : string;
  weight_bytes : int;
  kv_bytes : int;
  home : int;
  replicas : int list;
}

type t = { nodes : int; entries : entry list }

(* FNV-1a over the model name, reduced mod nodes: a stable home
   assignment that spreads cold models across the fleet without any
   dependence on [Hashtbl.hash] internals *)
let stable_home ~nodes name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    name;
  !h mod nodes

let build ?hbm_bytes_per_node ~nodes specs =
  if nodes < 1 then invalid_arg "Placement.build: nodes < 1";
  let names = List.map (fun (m, _, _, _) -> m) specs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Placement.build: duplicate model names";
  let entries =
    List.map
      (fun (model, weight_bytes, kv_bytes, replicas) ->
        if weight_bytes < 0 then
          invalid_arg "Placement.build: negative weight bytes";
        if kv_bytes < 0 then
          invalid_arg "Placement.build: negative kv bytes";
        (match hbm_bytes_per_node with
        | Some cap when weight_bytes + kv_bytes > cap ->
          (* no replica choice can serve this model: its weights plus
             its reserved KV-cache working set overflow every node's
             HBM on their own *)
          invalid_arg
            (Printf.sprintf
               "Placement.build: model %s weights (%d B) + kv cache (%d B) \
                exceed a node's %d B HBM — unservable on any node"
               model weight_bytes kv_bytes cap)
        | _ -> ());
        let home = stable_home ~nodes model in
        let count =
          if replicas <= 0 || replicas >= nodes then nodes else replicas
        in
        let replicas =
          List.sort compare (List.init count (fun i -> (home + i) mod nodes))
        in
        { model; weight_bytes; kv_bytes; home; replicas })
      specs
  in
  { nodes; entries }

(* the verifier's neutral placement type: same (model, footprint,
   replica set) triples, plus the routing policy that decides which
   nodes a model can page in on.  The footprint handed to the verifier
   is weights + reserved KV cache, so its HBM overcommit lint counts
   decode-class serving state too. *)
let verify_plan ?hbm_bytes_per_node ~policy t =
  {
    Ascend_verify.Cluster.plan_name =
      Printf.sprintf "%d-node fleet placement" t.nodes;
    nodes = t.nodes;
    hbm_bytes_per_node;
    policy;
    models =
      List.map
        (fun e -> (e.model, e.weight_bytes + e.kv_bytes, e.replicas))
        t.entries;
  }

let find t model =
  match List.find_opt (fun e -> e.model = model) t.entries with
  | Some e -> e
  | None -> invalid_arg ("Placement.find: unknown model " ^ model)

let resident t ~model ~node = List.mem node (find t model).replicas

let to_json t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("model", Json.String e.model);
             ("weight_bytes", Json.Int e.weight_bytes);
             ("kv_bytes", Json.Int e.kv_bytes);
             ("home", Json.Int e.home);
             ( "replicas",
               Json.List (List.map (fun n -> Json.Int n) e.replicas) );
           ])
       t.entries)
