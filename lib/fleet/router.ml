type policy = Round_robin | Least_loaded | Model_affinity

let policies =
  [
    ("round-robin", Round_robin);
    ("least-loaded", Least_loaded);
    ("affinity", Model_affinity);
  ]

let policy_name p = fst (List.find (fun (_, p') -> p' = p) policies)

type t = { policy : policy; nodes : int; mutable rotor : int }

let create ?(policy = Least_loaded) ~nodes () =
  if nodes < 1 then invalid_arg "Router.create: nodes < 1";
  { policy; nodes; rotor = 0 }

let policy t = t.policy

(* lowest-index argmin over a candidate list: ties break to the lowest
   node so the decision is a pure function of the depth snapshot *)
let least_loaded depths candidates =
  match candidates with
  | [] -> invalid_arg "Router.route: no candidate nodes"
  | first :: rest ->
    List.fold_left
      (fun best n -> if depths.(n) < depths.(best) then n else best)
      first rest

let route t ~placement ~model ~depths =
  if Array.length depths <> t.nodes then
    invalid_arg "Router.route: depth snapshot size mismatch";
  match t.policy with
  | Round_robin ->
    let n = t.rotor mod t.nodes in
    t.rotor <- t.rotor + 1;
    n
  | Least_loaded -> least_loaded depths (List.init t.nodes Fun.id)
  | Model_affinity ->
    least_loaded depths (Placement.find placement model).Placement.replicas
