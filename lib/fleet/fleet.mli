(** The simulated inference fleet: N server nodes (each an
    {!Ascend_cluster.Server} hosting per-model
    {!Ascend_serving.Batcher}s and the QoS dispatch of
    {!Ascend_serving.Serve} over its cores), fronted by a {!Router}
    that places every request against a {!Placement} plan.

    Semantics, relative to single-node serving:

    - {b routing}: each arrival is routed to one node by the configured
      policy, then flows through that node's batcher/scheduler exactly
      as in [Serve.run];
    - {b page-in}: dispatching a model's first batch on a node where the
      placement plan did not make it resident stalls the batch for
      [weight_bytes / interconnect bandwidth] — the weights stream in
      over the server's inter-group bus ({!Ascend_cluster.Server.link_bandwidth})
      — after which the model is resident on that node;
    - {b training colocation}: an optional data-parallel training job
      occupies the first [tj_nodes] nodes ({!Ascend_cluster.Training});
      the fraction of each training step spent in gradient all-reduce
      is interconnect bandwidth inference page-ins no longer get, so
      page-ins on those nodes run proportionally slower;
    - {b determinism}: one shared single-domain {!Ascend_serving.Cost}
      oracle prices every batch, so a run — counters included — is a
      pure function of specs + seeds: byte-identical {!to_json} across
      runs and [ASCEND_JOBS] values. *)

type model_spec = {
  name : string;
  build : batch:int -> Ascend_nn.Graph.t;
  priority : int;  (** QoS priority, higher wins under contention *)
  slo_ms : float;
  workload : Ascend_serving.Serve.workload;
  replicas : int;
      (** resident copies per the placement plan; [<= 0] or [>= nodes]
          replicates everywhere (hot), [1] pins to the home node (cold) *)
  kv_bytes : int;
      (** reserved KV-cache working set per resident replica, counted
          against per-node HBM alongside the weights — the decode model
          class ({!Ascend_nn.Llm}, served by {!Ascend_decode}) budgets
          [max concurrent sequences x Llm.kv_cache_bytes] here; 0 for
          stateless model classes *)
}

type train_job = {
  tj_model : string;
  tj_build : batch:int -> Ascend_nn.Graph.t;
  tj_batch : int;
  tj_nodes : int;  (** the first [tj_nodes] nodes colocate the trainer *)
}

type config = {
  core : Ascend_arch.Config.t;
  server : Ascend_cluster.Server.t;
  nodes : int;
  cores_per_node : int;
  max_batch : int;
  max_delay_s : float;
  queue_depth : int;
  duration_s : float;
  bucket_s : float;
  policy : Router.policy;
  costing : Ascend_serving.Cost.costing;
      (** [`Exact] prices every batch through the cycle-level path;
          [`Surrogate] interpolates per-model tables calibrated on
          anchor batches up to [max_batch]
          (see {!Ascend_serving.Cost}). *)
  hbm_bytes_per_node : int option;
      (** when given, every node's resident footprint — each resident
          model's weights plus reserved KV cache — is checked against
          this capacity: a single unservable model raises at placement
          build, a whole-plan overcommit returns [Error] from {!run} *)
}

val default_config :
  core:Ascend_arch.Config.t -> nodes:int -> config
(** Ascend 910 servers, [cores_per_node] = the server's chip count (8),
    batching bounds as {!Ascend_serving.Serve.default_config}, policy
    {!Router.Least_loaded}, exact costing. *)

type batch_exec = {
  bx_model : string;
  bx_priority : int;
  bx_size : int;
  bx_node : int;
  bx_core : int;        (** core index local to the node *)
  bx_start_s : float;
  bx_finish_s : float;
  bx_cycles : int;      (** compute cycles, excluding any page-in stall *)
  bx_paged : bool;      (** this batch paid the node's page-in *)
}

type node_report = {
  node : int;
  colocated_training : bool;
  train_interconnect_util : float;
      (** fraction of the node's interconnect consumed by the colocated
          trainer's gradient all-reduce; 0 on inference-only nodes *)
  routed : int;         (** requests the router sent here *)
  completed : int;
  rejected : int;
  page_ins : int;
  page_in_s : float;    (** total weight-streaming stall *)
  slo_attainment : float;
  node_metrics : Ascend_serving.Metrics.t;  (** cores = cores_per_node *)
}

type route_cell = {
  rc_node : int;
  rc_model : string;
  rc_routed : int;
  rc_completed : int;
  rc_rejected : int;
  rc_paged : bool;      (** this (node, model) paid a page-in *)
  rc_p50_ms : float;
  rc_p95_ms : float;
  rc_p99_ms : float;
}

type train_report = {
  tr_model : string;
  tr_batch : int;
  tr_nodes : int;
  tr_step_s : float;
  tr_images_per_s : float;       (** per colocated node *)
  tr_interconnect_util : float;
}

type result = {
  fleet_config : config;
  placement : Placement.t;
  records : (int * Ascend_serving.Request.record) list;
      (** (node, record), in request-id order *)
  batches : batch_exec list;     (** in dispatch order *)
  fleet_metrics : Ascend_serving.Metrics.t;
      (** over all [nodes * cores_per_node] cores; request latencies are
          the cross-node percentiles *)
  node_reports : node_report list;
  routes : route_cell list;
      (** tail-latency breakdown by routing decision, (node, model)
          cells in node-major order *)
  training : train_report option;
  slo_attainment : float;        (** fleet-wide, over completed requests *)
  total_page_ins : int;
  cost_hits : int;
  cost_misses : int;
  cost_interpolated : int;  (** surrogate-answered lookups *)
  cost_fallbacks : int;     (** surrogate out-of-range, priced exactly *)
  cost_stats : Ascend_exec.Cache.stats;
      (** the cost oracle's private service cache, disk tier included *)
}

val run :
  ?train:train_job -> config -> model_spec list -> (result, string) Stdlib.result
(** Raises [Invalid_argument] on malformed config (non-positive nodes /
    cores / duration, duplicate models, empty specs, closed-loop with
    [clients < 1], train job outside [0, nodes]).  Returns [Error] when
    a model fails to compile on the configured core. *)

val model_weight_bytes : (batch:int -> Ascend_nn.Graph.t) -> int
(** Resident weight footprint of a model: the fused graph's weight
    bytes at batch 1 (weights are batch-invariant) — the same number
    [run] hands to {!Placement.build}, so a statically built plan and
    the fleet's own agree exactly. *)

val observed_page_ins : result -> int array
(** Per-node page-in counts as the run observed them, node order. *)

val pagein_json :
  policy:Router.policy -> placement:Placement.t -> counts:int array ->
  Ascend_util.Json.t
(** The page-in differential document: both sides of the CI gate —
    [Verify.Cluster.predicted_page_ins] on a {!Placement.verify_plan}
    and {!observed_page_ins} from a run — serialise through this one
    shape, so agreement is a byte comparison. *)

val to_json : result -> Ascend_util.Json.t
(** Deterministic: same specs + seeds => byte-identical output. *)

val pp : Format.formatter -> result -> unit
(** Fleet-wide SLO table, per-node utilization/page-in table and the
    per-routing-decision tail-latency breakdown. *)
