(** The fleet's replication/placement plan: which server nodes hold each
    model's weights resident at t = 0.

    Hot models are replicated across several (or all) nodes; cold models
    live on a single home node.  A request routed to a node where the
    model is {e not} resident pays a one-time HBM page-in penalty (the
    weights stream in over the server interconnect, see {!Fleet}) after
    which the model is resident there for the rest of the run.

    Everything is a pure function of the (model, weight-bytes, replica
    count) list and the node count — no randomness — so placement never
    perturbs the determinism contract. *)

type entry = {
  model : string;
  weight_bytes : int;   (** resident weight footprint, from the fused graph *)
  kv_bytes : int;
      (** reserved KV-cache working set per resident replica — decode-class
          models hold generation state in HBM beyond their weights; 0 for
          stateless model classes *)
  home : int;           (** primary replica, a stable hash of the name *)
  replicas : int list;  (** sorted node indices resident at t = 0 *)
}

type t = { nodes : int; entries : entry list }

val build :
  ?hbm_bytes_per_node:int -> nodes:int -> (string * int * int * int) list -> t
(** [build ~nodes specs] with [specs] listing (model, weight_bytes,
    kv_bytes, replicas).  A replica count [<= 0] or [>= nodes] replicates
    on every node (hot); [1] pins the model to its home node only (cold);
    [r] spreads over [r] consecutive nodes starting at the home.  Raises
    [Invalid_argument] on [nodes < 1], duplicate model names, negative
    weight or kv bytes, or — when [hbm_bytes_per_node] is given — a
    single model whose weights plus reserved KV cache exceed a node's
    HBM on their own (unservable on any node; whole-plan overcommit is
    {!verify_plan}'s job). *)

val verify_plan :
  ?hbm_bytes_per_node:int -> policy:string -> t ->
  Ascend_verify.Cluster.placement
(** The plan in the static verifier's neutral representation, ready for
    [Verify.Cluster.lint_placement] / [predicted_page_ins].  [policy]
    is a {!Router.policy_name} ("round-robin", "least-loaded",
    "affinity").  Each model's footprint is handed over as
    [weight_bytes + kv_bytes], so the verifier's HBM overcommit lint
    counts decode-class serving state against node capacity. *)

val find : t -> string -> entry
(** Raises [Invalid_argument] on an unknown model. *)

val resident : t -> model:string -> node:int -> bool

val to_json : t -> Ascend_util.Json.t
