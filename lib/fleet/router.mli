(** The fleet front door: picks a server node for each arriving request.

    Three policies, all deterministic:

    - {b round-robin}: a global rotating counter, blind to load and
      placement — the baseline that maximizes spread and pays the most
      page-ins;
    - {b least-loaded}: the node with the fewest queued requests (ties
      to the lowest index) — load-aware, placement-blind;
    - {b model-affinity}: least-loaded {e restricted to the nodes where
      the model is resident} per the placement plan — never pays a
      page-in and maximizes batch coalescing, at the cost of load
      spread for cold models. *)

type policy = Round_robin | Least_loaded | Model_affinity

val policies : (string * policy) list
(** Names for CLI parsing: ["round-robin"], ["least-loaded"],
    ["affinity"]. *)

val policy_name : policy -> string

type t

val create : ?policy:policy -> nodes:int -> unit -> t
(** Default policy {!Least_loaded}.  Raises [Invalid_argument] on
    [nodes < 1]. *)

val policy : t -> policy

val route :
  t -> placement:Placement.t -> model:string -> depths:int array -> int
(** Pick a node for one request; [depths.(n)] is the total number of
    requests currently queued on node [n].  Round-robin advances the
    rotor; the other policies are pure reads of the snapshot. *)
