module Json = Ascend_util.Json

let args_json args =
  Json.Obj (List.map (fun (k, a) -> (k, Event.arg_to_json a)) args)

let base (e : Event.t) ph rest =
  Json.Obj
    ([
       ("name", Json.String e.name);
       ("cat", Json.String e.cat);
       ("ph", Json.String ph);
       ("pid", Json.Int e.pid);
       ("tid", Json.Int e.tid);
       ("ts", Json.Float e.ts);
     ]
    @ rest)

let event_json (e : Event.t) =
  match e.kind with
  | Event.Span { dur } ->
    base e "X" (("dur", Json.Float dur) :: ("args", args_json e.args) :: [])
  | Event.Instant ->
    base e "i" [ ("s", Json.String "t"); ("args", args_json e.args) ]
  | Event.Counter { value } ->
    (* Chrome counters take their series from args; extra args would
       become spurious series, so the sample value is the only one. *)
    base e "C" [ ("args", Json.Obj [ ("value", Json.Float value) ]) ]

let metadata collector =
  let proc (pid, name) =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  and thread (pid, tid, name) =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  List.map proc (Collector.processes collector)
  @ List.map thread (Collector.threads collector)

let to_json collector =
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (metadata collector
          @ List.map event_json (Collector.events collector)) );
      ("displayTimeUnit", Json.String "ms");
      ("droppedEvents", Json.Int (Collector.dropped collector));
    ]

let write_file path collector = Json.write_file path (to_json collector)
