let collector : Collector.t option ref = ref None

let install c = collector := Some c
let uninstall () = collector := None
let installed () = !collector
let enabled () = Option.is_some !collector

let with_collector c f =
  let prev = !collector in
  collector := Some c;
  Fun.protect ~finally:(fun () -> collector := prev) f

let alloc_pid ~name =
  match !collector with Some c -> Collector.alloc_pid c ~name | None -> -1

let name_thread ~pid ~tid name =
  match !collector with
  | Some c when pid >= 0 -> Collector.name_thread c ~pid ~tid name
  | _ -> ()

let span ?args ~cat ~name ~pid ~tid ~ts ~dur () =
  match !collector with
  | Some c when pid >= 0 ->
    Collector.record c (Event.span ?args ~cat ~name ~pid ~tid ~ts ~dur ())
  | _ -> ()

let instant ?args ~cat ~name ~pid ~tid ~ts () =
  match !collector with
  | Some c when pid >= 0 ->
    Collector.record c (Event.instant ?args ~cat ~name ~pid ~tid ~ts ())
  | _ -> ()

let counter ?args ~cat ~name ~pid ~tid ~ts ~value () =
  match !collector with
  | Some c when pid >= 0 ->
    Collector.record c
      (Event.counter ?args ~cat ~name ~pid ~tid ~ts ~value ())
  | _ -> ()
