(** Chrome trace-event JSON sink ([chrome://tracing] / Perfetto
    loadable).

    Layout: one trace "process" per simulated core or subsystem
    ([Event.pid]), one "thread" per pipe/queue/worker lane
    ([Event.tid]).  Spans emit as complete events ([ph:"X"] with
    [ts]/[dur]), instants as thread-scoped [ph:"i"], counters as
    [ph:"C"] series.  Process/thread display names from the
    collector's registries emit first as [ph:"M"] metadata, sorted by
    lane, then the events in record order — so the document is a pure
    function of the collected events and renders to the same bytes
    every time. *)

val to_json : Collector.t -> Ascend_util.Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms",
    "droppedEvents": n}]. *)

val write_file : string -> Collector.t -> unit
(** Pretty-printed via [Ascend_util.Json.write_file]. *)
