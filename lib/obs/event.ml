type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type kind =
  | Span of { dur : float }
  | Instant
  | Counter of { value : float }

type t = {
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts : float;
  kind : kind;
  args : (string * arg) list;
}

let make ?(args = []) ~cat ~name ~pid ~tid ~ts kind =
  { name; cat; pid; tid; ts; kind; args }

let span ?args ~cat ~name ~pid ~tid ~ts ~dur () =
  make ?args ~cat ~name ~pid ~tid ~ts (Span { dur })

let instant ?args ~cat ~name ~pid ~tid ~ts () =
  make ?args ~cat ~name ~pid ~tid ~ts Instant

let counter ?args ~cat ~name ~pid ~tid ~ts ~value () =
  make ?args ~cat ~name ~pid ~tid ~ts (Counter { value })

let arg_to_json = function
  | Int i -> Ascend_util.Json.Int i
  | Float f -> Ascend_util.Json.Float f
  | String s -> Ascend_util.Json.String s
  | Bool b -> Ascend_util.Json.Bool b
