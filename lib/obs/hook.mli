(** The link-time instrumentation hook — same idiom as
    [Engine.group_runner] and [Program.strict_checker]: lower layers
    emit through this module without depending on who (if anyone)
    collects, and a driver installs a {!Collector} for the duration of
    a traced run.

    With no collector installed every emit helper is a single [ref]
    read returning [unit] — no event is constructed, no argument list
    is forced into existence at the call sites because they guard with
    {!enabled} first — so instrumentation costs nothing on the hot
    paths of an untraced run. *)

val install : Collector.t -> unit
val uninstall : unit -> unit

val installed : unit -> Collector.t option

val enabled : unit -> bool
(** Call-site guard: build event names/args only when this is true. *)

val with_collector : Collector.t -> (unit -> 'a) -> 'a
(** Install, run, and restore whatever was installed before — even on
    exceptions. *)

val alloc_pid : name:string -> int
(** Allocate a process lane on the installed collector; [-1] when none
    is installed (emit helpers ignore events with negative pids, so a
    cached [-1] pid keeps later emissions no-ops). *)

val name_thread : pid:int -> tid:int -> string -> unit

val span :
  ?args:(string * Event.arg) list ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  dur:float ->
  unit ->
  unit

val instant :
  ?args:(string * Event.arg) list ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  unit ->
  unit

val counter :
  ?args:(string * Event.arg) list ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  value:float ->
  unit ->
  unit
