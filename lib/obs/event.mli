(** The typed trace event model shared by every instrumented layer.

    Timestamps are {b virtual time}: simulated cycles, simulated
    seconds scaled to microseconds, or a logical sequence number —
    whatever clock the emitting layer already advances
    deterministically.  Wall-clock time never appears, which is what
    makes a trace byte-identical across runs and [--jobs] settings.
    The unit only has to be consistent within one [pid] lane; Chrome's
    viewer labels the axis "us" but renders any monotone scale. *)

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type kind =
  | Span of { dur : float }  (** a named interval: [ts .. ts + dur] *)
  | Instant  (** a point marker on a thread lane *)
  | Counter of { value : float }
      (** one sample of a named series; emit monotone values for
          cumulative counts (hits, sheds), raw values for gauges
          (queue depth) *)

type t = {
  name : string;
  cat : string;  (** category: aggregation key for {!Summary} *)
  pid : int;  (** process lane: one simulated core / subsystem *)
  tid : int;  (** thread lane within [pid]: pipe, queue, worker *)
  ts : float;  (** virtual timestamp (see above) *)
  kind : kind;
  args : (string * arg) list;  (** printed in the given order *)
}

val span :
  ?args:(string * arg) list ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  dur:float ->
  unit ->
  t

val instant :
  ?args:(string * arg) list ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  unit ->
  t

val counter :
  ?args:(string * arg) list ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  value:float ->
  unit ->
  t

val arg_to_json : arg -> Ascend_util.Json.t
