type t = {
  mutex : Mutex.t;
  capacity : int;
  mutable events : Event.t list;  (* newest first *)
  mutable length : int;
  mutable dropped : int;
  mutable next_pid : int;
  mutable procs : (int * string) list;  (* newest first *)
  mutable thrs : (int * int * string) list;  (* newest first *)
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Collector.create: capacity < 1";
  {
    mutex = Mutex.create ();
    capacity;
    events = [];
    length = 0;
    dropped = 0;
    next_pid = 1;
    procs = [];
    thrs = [];
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = t.capacity

let record t e =
  locked t (fun () ->
      if t.length >= t.capacity then t.dropped <- t.dropped + 1
      else begin
        t.events <- e :: t.events;
        t.length <- t.length + 1
      end)

let length t = locked t (fun () -> t.length)
let dropped t = locked t (fun () -> t.dropped)
let events t = locked t (fun () -> List.rev t.events)

let alloc_pid t ~name =
  locked t (fun () ->
      let pid = t.next_pid in
      t.next_pid <- pid + 1;
      t.procs <- (pid, name) :: t.procs;
      pid)

let name_thread t ~pid ~tid name =
  locked t (fun () ->
      t.thrs <-
        (pid, tid, name)
        :: List.filter (fun (p, i, _) -> p <> pid || i <> tid) t.thrs)

let processes t =
  locked t (fun () -> List.sort compare (List.rev t.procs))

let threads t = locked t (fun () -> List.sort compare (List.rev t.thrs))

let clear t =
  locked t (fun () ->
      t.events <- [];
      t.length <- 0;
      t.dropped <- 0)
