(** Bounded in-memory event collector.

    Thread-safe (one mutex; emission from pooled exec domains is
    already serialized by the layers' determinism contracts, but the
    collector itself must never corrupt under concurrent [record]).
    Capacity-bounded: once full, new events are {e dropped} and
    counted — a trace never grows without bound, and the drop count is
    reported by both sinks so truncation is visible, not silent.

    The collector also owns the lane registries: [pid]s are allocated
    here (in call order, so a deterministic program gets deterministic
    lane numbering) and process/thread display names are recorded for
    the Chrome metadata events. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 65536 events.  Raises [Invalid_argument] on
    [capacity < 1]. *)

val capacity : t -> int

val record : t -> Event.t -> unit
(** Append in arrival order; silently counted as dropped when full. *)

val length : t -> int
(** Events currently held (<= capacity). *)

val dropped : t -> int
(** Events refused because the collector was full. *)

val events : t -> Event.t list
(** In record order. *)

val alloc_pid : t -> name:string -> int
(** Next process lane (starting at 1), registered under [name]. *)

val name_thread : t -> pid:int -> tid:int -> string -> unit
(** Register a display name for thread lane [tid] of [pid]; the last
    registration for a given lane wins. *)

val processes : t -> (int * string) list
(** [(pid, name)] sorted by pid. *)

val threads : t -> (int * int * string) list
(** [(pid, tid, name)] sorted by (pid, tid). *)

val clear : t -> unit
(** Drop all events and counters; lane registries are kept (the
    instrumented layers cache their pids). *)
