module Json = Ascend_util.Json

type row = {
  cat : string;
  span_count : int;
  total : float;
  self : float;
  instant_count : int;
}

type t = {
  rows : row list;
  counters : (string * float * float) list;
  events : int;
  dropped : int;
}

type acc = {
  mutable spans : int;
  mutable sum : float;
  mutable self_sum : float;
  mutable instants : int;
}

let build collector =
  let events = Collector.events collector in
  let cats : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  let cat_acc c =
    match Hashtbl.find_opt cats c with
    | Some a -> a
    | None ->
      let a = { spans = 0; sum = 0.; self_sum = 0.; instants = 0 } in
      Hashtbl.add cats c a;
      a
  in
  (* counters: series -> (last, max), last in record order *)
  let counters : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  (* spans grouped per (pid, tid) lane, keeping record order as a
     deterministic tie-break for the sort below *)
  let lanes : (int * int, (int * float * float * string) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iteri
    (fun seq (e : Event.t) ->
      match e.kind with
      | Event.Span { dur } ->
        let a = cat_acc e.cat in
        a.spans <- a.spans + 1;
        a.sum <- a.sum +. dur;
        a.self_sum <- a.self_sum +. dur;
        let key = (e.pid, e.tid) in
        let cell =
          match Hashtbl.find_opt lanes key with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add lanes key r;
            r
        in
        cell := (seq, e.ts, dur, e.cat) :: !cell
      | Event.Instant ->
        let a = cat_acc e.cat in
        a.instants <- a.instants + 1
      | Event.Counter { value } ->
        let max' =
          match Hashtbl.find_opt counters e.name with
          | Some (_, m) -> Float.max m value
          | None -> value
        in
        Hashtbl.replace counters e.name (value, max'))
    events;
  (* self time: per-lane stack walk; a span nested inside another
     subtracts its (clipped) duration from the enclosing span's
     category *)
  Hashtbl.iter
    (fun _ cell ->
      let spans =
        List.sort
          (fun (s1, t1, d1, _) (s2, t2, d2, _) ->
            if t1 <> t2 then compare t1 t2
            else if d1 <> d2 then compare d2 d1 (* longer first: outer *)
            else compare s1 s2)
          !cell
      in
      let stack : (float * string) list ref = ref [] in
      List.iter
        (fun (_, ts, dur, cat) ->
          let rec pop () =
            match !stack with
            | (finish, _) :: rest when finish <= ts ->
              stack := rest;
              pop ()
            | _ -> ()
          in
          pop ();
          (match !stack with
          | (parent_finish, parent_cat) :: _ ->
            let covered =
              Float.max 0. (Float.min (ts +. dur) parent_finish -. ts)
            in
            let pa = cat_acc parent_cat in
            pa.self_sum <- pa.self_sum -. covered
          | [] -> ());
          stack := (ts +. dur, cat) :: !stack)
        spans)
    lanes;
  let rows =
    Hashtbl.fold
      (fun cat a acc ->
        {
          cat;
          span_count = a.spans;
          total = a.sum;
          self = Float.max 0. a.self_sum;
          instant_count = a.instants;
        }
        :: acc)
      cats []
    |> List.sort (fun a b -> compare a.cat b.cat)
  in
  let counter_rows =
    Hashtbl.fold (fun name (last, mx) acc -> (name, last, mx) :: acc)
      counters []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  {
    rows;
    counters = counter_rows;
    events = List.length events;
    dropped = Collector.dropped collector;
  }

let to_json t =
  Json.Obj
    [
      ( "categories",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("cat", Json.String r.cat);
                   ("spans", Json.Int r.span_count);
                   ("total", Json.Float r.total);
                   ("self", Json.Float r.self);
                   ("instants", Json.Int r.instant_count);
                 ])
             t.rows) );
      ( "counters",
        Json.List
          (List.map
             (fun (name, last, mx) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("last", Json.Float last);
                   ("max", Json.Float mx);
                 ])
             t.counters) );
      ("events", Json.Int t.events);
      ("dropped", Json.Int t.dropped);
    ]

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %8s %14s %14s %9s\n" "category" "spans" "total"
       "self" "instants");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %8d %14.1f %14.1f %9d\n" r.cat r.span_count
           r.total r.self r.instant_count))
    t.rows;
  if t.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, last, mx) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-24s last %14.1f  max %14.1f\n" name last mx))
      t.counters
  end;
  Buffer.add_string buf
    (Printf.sprintf "%d events (%d dropped)\n" t.events t.dropped);
  Buffer.contents buf
