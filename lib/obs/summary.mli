(** Aggregated per-category summary — the second sink: what the trace
    says, without opening a viewer.

    Span self-time is computed per (pid, tid) lane: spans sorted by
    start time (outermost first on ties) are walked with a stack, and
    each span's duration is charged to its own category minus the time
    covered by its nested children — the standard flame-graph
    "self" column.  Counters report the last and maximum sample per
    series name. *)

type row = {
  cat : string;
  span_count : int;
  total : float;  (** summed span durations (virtual units) *)
  self : float;  (** total minus time covered by nested spans *)
  instant_count : int;
}

type t = {
  rows : row list;  (** sorted by category name *)
  counters : (string * float * float) list;
      (** (series, last sample, max sample), sorted by series *)
  events : int;
  dropped : int;
}

val build : Collector.t -> t

val to_json : t -> Ascend_util.Json.t

val render : t -> string
(** Plain-text table. *)
