(** Public façade of the Ascend architectural simulator.

    The stack, bottom-up (each alias re-exports one library):

    - {!Util} — fp16 codec, PRNG, statistics, fairness, tables;
    - {!Arch} — core configurations (paper Table 5) and the calibrated
      silicon area/energy model (Tables 3-4);
    - {!Tensor} — shapes, layouts (NC1HWC0/FracZ), reference operators,
      quantisation;
    - {!Nn} — the layer IR, graph builder, workload profiler and model
      zoo (ResNet-50, MobileNet-V2, BERT, GestureNet, VGG-16);
    - {!Isa} — pipes, buffers, instructions, programs;
    - {!Verify} — the static happens-before verifier and hazard linter
      (deadlocks, RAW/WAR/WAW races, buffer-peak cross-checks, flag
      leaks); linking this module installs it as
      [Program.validate ~strict:true]'s checker;
    - {!Memory} — LLC, DRAM/HBM, MPAM/QoS, the memory-wall arithmetic;
    - {!Obs} — the tracing/profiling hook, bounded event collector and
      Chrome-trace / summary sinks; instrumented layers emit through
      {!Obs.Hook} only while a collector is installed;
    - {!Core_sim} — the event-driven single-core simulator;
    - {!Compiler} — fusion, auto-tiling, code generation, memory
      planning, the compile-and-simulate engine;
    - {!Exec} — the compile/simulate execution service: a domain pool
      with deterministic ordered fan-out and a content-addressed cache
      of compiled programs + simulator reports; linking this module
      installs it behind [Engine.run_inference]/[run_training];
    - {!Tbe} — the TBE elementwise DSL and kernel lowering;
    - {!Noc} — mesh (flow and cycle level), ring, fat-tree;
    - {!Soc} — Ascend 910 / Kirin 990 / Ascend 610 integrations;
    - {!Cluster} — servers, collectives, distributed training;
    - {!Baselines} — systolic array, SIMT GPU, CPU comparators;
    - {!Runtime} — the app/stream/task/block scheduler;
    - {!Cost} — the two-tier batch-pricing layer: a per-model
      piecewise-linear surrogate over anchor batch sizes
      ({!Cost.Surrogate}) with the cycle-level path as its calibration
      oracle and error reporter ({!Cost.Calibration});
    - {!Serving} — request-level serving: seeded load generation,
      dynamic batching, QoS admission control and SLO metrics over the
      multi-core scheduler;
    - {!Decode} — LLM decode serving: KV-cache-aware phase costing
      (prefill vs decode over the 2-D batch x cache-length surrogate)
      and a continuous batcher with per-token SLO metrics against a
      static-batching baseline;
    - {!Vector_core} — the §3.3 SLAM extensions (quaternion, sort,
      stereo, clustering, linear programming).

    Quickstart:
    {[
      let graph = Ascend.Nn.Resnet.v1_5 ~batch:1 () in
      match Ascend.Compiler.Engine.run_inference Ascend.Arch.Config.max graph with
      | Ok r -> Format.printf "%a" Ascend.Compiler.Engine.pp_layer_table r
      | Error e -> prerr_endline e
    ]} *)

let version = "1.0.0"

module Util = Ascend_util
module Arch = Ascend_arch
module Tensor = Ascend_tensor
module Nn = Ascend_nn
module Isa = Ascend_isa
module Verify = Ascend_verify
module Obs = Ascend_obs
module Memory = Ascend_memory
module Core_sim = Ascend_core_sim
module Compiler = Ascend_compiler
module Exec = Ascend_exec
module Tbe = Ascend_tbe
module Noc = Ascend_noc
module Soc = Ascend_soc
module Cluster = Ascend_cluster
module Baselines = Ascend_baselines
module Runtime = Ascend_runtime
module Cost = Ascend_cost
module Serving = Ascend_serving
module Decode = Ascend_decode
module Fleet = Ascend_fleet
module Vector_core = Ascend_vector_core

(* make [Program.validate ~strict:true] work out of the box for every
   user of the umbrella library *)
let () = Ascend_verify.install ()

(* route every compile+simulate fan-out through the execution service's
   domain pool and content-addressed cache ([ASCEND_JOBS] overrides the
   worker count); outputs stay byte-identical to the serial path *)
let () = Ascend_exec.Service.install_default ()

(** Compile a graph and simulate inference on a named core version. *)
let simulate ?(core = Arch.Config.Max) graph =
  Compiler.Engine.run_inference (Arch.Config.of_version core) graph
