module Config = Ascend_arch.Config
module Precision = Ascend_arch.Precision
module I = Ascend_isa.Instruction
module Buffer_id = Ascend_isa.Buffer_id
module Pipe = Ascend_isa.Pipe
module Program = Ascend_isa.Program

type sync_mode = Flags | Coarse_barriers

type options = {
  weight_sparsity : float option;
  double_buffer : bool;
  naive_tiling : bool;
  sync_mode : sync_mode;
}

let default_options =
  { weight_sparsity = None; double_buffer = true; naive_tiling = false;
    sync_mode = Flags }

let select_tiling ~options config ~precision ~expansion ~m ~k ~n =
  if options.naive_tiling then Tiling.naive config ~precision ~m ~k ~n ()
  else Tiling.choose config ~precision ~img2col_expansion:expansion ~m ~k ~n ()

(* flag id assignments for the GEMM loop *)
let f_a_panel = 0 (* MTE2 -> MTE1: A panel staged in L1 *)
let f_b_data = 1 (* MTE2 -> MTE1: B data staged in L1 *)
let f_l0_data = 2 (* MTE1 -> Cube: tile pair in L0A/L0B *)
let f_l0_free = 3 (* Cube -> MTE1: L0 slot consumed *)
let f_drain = 4 (* Cube -> Vector: L0C tile complete *)
let f_l0c_free = 5 (* Vector -> Cube: L0C slot drained *)
let f_store = 6 (* Vector -> MTE3: UB tile ready *)
let f_ub_free = 7 (* MTE3 -> Vector: UB slot stored *)
let f_a_free = 8 (* MTE1 -> MTE2: L1 A slot fully read, reload allowed *)
let f_b_free = 9 (* MTE1 -> MTE2: L1 B slot fully read, reload allowed *)

let gemm_tile_flags =
  (f_a_panel, f_b_data, f_l0_data, f_l0_free, f_drain, f_l0c_free, f_store,
   f_ub_free)

(* L1 is shared between the A ring (slots 0..1) and the B region
   (slots 2..3): slot ids only need to be disjoint per buffer *)
let l1_b_slot_base = 2

type builder = {
  mutable rev : I.t list;
  (* net sets-minus-waits per flag triple, Flags mode only: the drain
     epilogue consumes leftovers so every program is flag-clean *)
  nets : (Pipe.t * Pipe.t * int, int) Hashtbl.t;
  mode : sync_mode;
}

let builder ?(mode = Flags) () = { rev = []; nets = Hashtbl.create 16; mode }
let emit b i = b.rev <- i :: b.rev

(* under coarse-barrier synchronisation (the ablation of Figure 3's
   decoupled flags), every dependency point becomes a full-pipe barrier:
   sets vanish and waits drain the whole core *)
let barrier b =
  match b.rev with
  | I.Barrier :: _ -> () (* collapse adjacent barriers *)
  | _ -> emit b I.Barrier

let bump b key d =
  let cur =
    match Hashtbl.find_opt b.nets key with Some v -> v | None -> 0
  in
  Hashtbl.replace b.nets key (cur + d)

let set b ~from_pipe ~to_pipe flag =
  match b.mode with
  | Flags ->
    bump b (from_pipe, to_pipe, flag) 1;
    emit b (I.set_flag ~from_pipe ~to_pipe ~flag)
  | Coarse_barriers -> ()

let wait b ~from_pipe ~to_pipe flag =
  match b.mode with
  | Flags ->
    bump b (from_pipe, to_pipe, flag) (-1);
    emit b (I.wait_flag ~from_pipe ~to_pipe ~flag)
  | Coarse_barriers -> barrier b

(* epilogue: consume every flag still set, so the program composes
   cleanly under [Program.concat] (a leaked set would satisfy a wait in
   the next part).  No-op under coarse barriers (no flags exist). *)
let drain b =
  Hashtbl.fold (fun key net acc -> (key, net) :: acc) b.nets []
  |> List.sort compare
  |> List.iter (fun ((from_pipe, to_pipe, flag), net) ->
         for _ = 1 to net do
           wait b ~from_pipe ~to_pipe flag
         done)

let bytes_of ~elems ~size = int_of_float (ceil (float_of_int elems *. size))

let div_up = Ascend_util.Stats.divide_round_up

(* ------------------------------------------------------------------ *)
(* Cube-anchored group: tiled GEMM nest.                               *)

let emit_gemm b (config : Config.t) ~options ~precision ~expansion
    ~post_bytes_per_tile (g : Ascend_nn.Workload.gemm) =
  let src = Precision.size_bytes precision in
  let acc = Precision.size_bytes (Precision.accumulator precision) in
  let tiling =
    select_tiling ~options config ~precision ~expansion ~m:g.m ~k:g.k ~n:g.n
  in
  (* clamp mt so a compact A panel (mt x K) double-buffers in half of L1 *)
  let dims = Config.cube_dims_at config ~precision in
  let panel_budget = config.buffers.l1_bytes / 4 in
  let mt =
    let per_row = float_of_int g.k *. src /. expansion in
    let cap = int_of_float (float_of_int panel_budget /. Float.max 1e-9 per_row) in
    let cap = max dims.m (cap / dims.m * dims.m) in
    min tiling.mt cap
  in
  let kt = tiling.kt and nt = tiling.nt in
  let m_tiles = div_up g.m mt in
  let k_tiles = div_up g.k kt in
  let n_tiles = div_up g.n nt in
  let b_total = bytes_of ~elems:(g.k * g.n) ~size:src in
  let b_resident = b_total <= config.buffers.l1_bytes / 4 in
  let sparsity = options.weight_sparsity in
  let b_transform =
    match sparsity with
    | Some ratio -> I.Decompress { ratio }
    | None -> I.Plain
  in
  let b_ext_bytes bytes =
    match sparsity with
    | Some ratio -> int_of_float (float_of_int bytes *. ratio)
    | None -> bytes
  in
  (* static buffer footprints *)
  let a_panel_bytes mt_a =
    bytes_of ~elems:(mt_a * g.k) ~size:src
    |> fun x -> int_of_float (float_of_int x /. expansion)
  in
  (* an A panel (mt x K, compact) stages in L1 when it fits the budget;
     with a huge K (e.g. dW GEMMs of the backward pass) the panel is
     streamed per k-tile instead, like a non-resident B *)
  let a_resident = a_panel_bytes mt <= panel_budget in
  let a_chunk_bytes mt_a kt_a =
    int_of_float (float_of_int (bytes_of ~elems:(mt_a * kt_a) ~size:src) /. expansion)
  in
  (* double buffering keeps two tiles in flight; disabling it (the
     ablation knob) serialises on a single slot.  Ring counters are
     global across GEMM instances so semaphore wait ordinals line up
     with the set that released the exact slot being rewritten. *)
  let depth = if options.double_buffer then 2 else 1 in
  let tile_index = ref 0 (* k-level tile pairs, for L0A/L0B recycling *) in
  let out_tile_index = ref 0 (* (m,n) output tiles, for L0C/UB recycling *) in
  let panel_index = ref 0 (* resident A panels, for the L1 A ring *) in
  for instance = 1 to g.count do
    if b_resident then begin
      (* the resident B region is one L1 slot reused by every instance:
         before overwriting it, wait for the previous instance's reads *)
      if instance > 1 then
        wait b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_b_free;
      emit b
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
           ~dst_slot:l1_b_slot_base ~bytes:(b_ext_bytes b_total) ());
      set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data
    end;
    let waited_b = ref false in
    for mi = 0 to m_tiles - 1 do
      let mt_a = min mt (g.m - (mi * mt)) in
      (* stage the A panel for this m-tile when it fits *)
      let panel_slot = !panel_index mod depth in
      if a_resident then begin
        if !panel_index >= depth then
          wait b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_a_free;
        emit b
          (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
             ~dst_slot:panel_slot ~bytes:(a_panel_bytes mt_a) ());
        set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel
      end;
      let waited_a = ref false in
      for ni = 0 to n_tiles - 1 do
        let nt_a = min nt (g.n - (ni * nt)) in
        for ki = 0 to k_tiles - 1 do
          let kt_a = min kt (g.k - (ki * kt)) in
          let l0_slot = !tile_index mod depth in
          let out_slot = !out_tile_index mod depth in
          (* L0 slot backpressure *)
          if !tile_index >= depth then
            wait b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Mte1 f_l0_free;
          let a_l1_slot =
            if a_resident then begin
              if not !waited_a then begin
                wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel;
                waited_a := true
              end;
              panel_slot
            end
            else begin
              let slot = !tile_index mod depth in
              if !tile_index >= depth then
                wait b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_a_free;
              emit b
                (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
                   ~dst_slot:slot ~bytes:(a_chunk_bytes mt_a kt_a) ());
              set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel;
              wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel;
              slot
            end
          in
          emit b
            (I.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
               ~transform:(I.Img2col { expansion })
               ~src_slot:a_l1_slot ~dst_slot:l0_slot
               ~bytes:(bytes_of ~elems:(mt_a * kt_a) ~size:src)
               ());
          if not a_resident then
            (* this streamed A chunk is consumed; its L1 slot may reload *)
            set b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_a_free;
          let b_l1_slot =
            if b_resident then begin
              if not !waited_b then begin
                wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data;
                waited_b := true
              end;
              l1_b_slot_base
            end
            else begin
              let slot = l1_b_slot_base + (!tile_index mod depth) in
              if !tile_index >= depth then
                wait b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_b_free;
              emit b
                (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
                   ~dst_slot:slot
                   ~bytes:(b_ext_bytes (bytes_of ~elems:(kt_a * nt_a) ~size:src))
                   ());
              set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data;
              wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data;
              slot
            end
          in
          emit b
            (I.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0b
               ~transform:b_transform
               ~src_slot:b_l1_slot ~dst_slot:l0_slot
               ~bytes:(bytes_of ~elems:(kt_a * nt_a) ~size:src)
               ());
          if not b_resident then
            set b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_b_free;
          set b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Cube f_l0_data;
          (* cube side *)
          wait b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Cube f_l0_data;
          if ki = 0 && !out_tile_index >= depth then
            wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Cube f_l0c_free;
          emit b
            (I.cube_matmul ~m:mt_a ~k:kt_a ~n:nt_a ~precision
               ~accumulate:(ki > 0) ~l0a_slot:l0_slot ~l0b_slot:l0_slot
               ~l0c_slot:out_slot ());
          set b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Mte1 f_l0_free;
          incr tile_index
        done;
        let out_slot = !out_tile_index mod depth in
        (* drain the finished (mi, ni) tile through the vector unit *)
        set b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Vector f_drain;
        wait b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Vector f_drain;
        if !out_tile_index >= depth then
          wait b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_ub_free;
        let out_acc_bytes = bytes_of ~elems:(mt_a * nt_a) ~size:acc in
        emit b
          (I.mte_move ~src:Buffer_id.L0c ~dst:Buffer_id.Ub
             ~src_slot:out_slot ~dst_slot:out_slot ~bytes:out_acc_bytes ());
        if post_bytes_per_tile > 0 then
          emit b
            (I.vector_op ~op_name:"post" ~bytes:post_bytes_per_tile
               ~ub_in_slot:out_slot ~ub_out_slot:out_slot ());
        set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Cube f_l0c_free;
        set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_store;
        (* store side, downcast back to source precision *)
        wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_store;
        emit b
          (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External
             ~src_slot:out_slot
             ~bytes:(bytes_of ~elems:(mt_a * nt_a) ~size:src)
             ());
        set b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_ub_free;
        incr out_tile_index
      done;
      if a_resident then begin
        (* all reads of this panel are done; its L1 slot may reload *)
        set b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_a_free;
        incr panel_index
      end
    done;
    if b_resident then
      set b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 f_b_free
  done

(* ------------------------------------------------------------------ *)
(* Vector-only group: streamed load -> vector -> store pipeline.       *)

let f_in_data = 0 (* MTE2 -> Vector *)
let f_in_free = 1 (* Vector -> MTE2 *)
let f_out_data = 2 (* Vector -> MTE3 *)
let f_out_free = 3 (* MTE3 -> Vector *)

let emit_vector_stream b (config : Config.t) ~options ~precision ~vector_bytes
    ~input_bytes ~output_bytes =
  let chunk = max 1 (config.buffers.ub_bytes / 4) in
  (* chunk so that every per-round share fits one quarter-UB slot: two
     input slots (ring 0..1) plus two output slots (ring 2..3) is the
     whole UB at double-buffering depth *)
  let n_chunks =
    max 1
      (List.fold_left max 0
         (List.map
            (fun total -> div_up total chunk)
            [ vector_bytes; input_bytes; output_bytes ]))
  in
  let share total i =
    (* split [total] across chunks, spreading the remainder *)
    (total / n_chunks) + if i < total mod n_chunks then 1 else 0
  in
  ignore precision;
  let depth = if options.double_buffer then 2 else 1 in
  let ub_out_base = 2 in
  for i = 0 to n_chunks - 1 do
    let in_b = share input_bytes i in
    let work_b = share vector_bytes i in
    let out_b = share output_bytes i in
    let in_slot = i mod depth in
    let out_slot = ub_out_base + (i mod depth) in
    if i >= depth then
      wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 f_in_free;
    if in_b > 0 then
      emit b
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub
           ~dst_slot:in_slot ~bytes:in_b ());
    set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector f_in_data;
    wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector f_in_data;
    if i >= depth then
      wait b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_out_free;
    if work_b > 0 then
      emit b
        (I.vector_op ~op_name:"vec" ~bytes:work_b ~ub_in_slot:in_slot
           ~ub_out_slot:out_slot ());
    set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 f_in_free;
    set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_out_data;
    wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_out_data;
    if out_b > 0 then
      emit b
        (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External
           ~src_slot:out_slot ~bytes:out_b ());
    set b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_out_free
  done

(* ------------------------------------------------------------------ *)

let group_program ?(options = default_options) (config : Config.t)
    (group : Fusion.t) =
  if not (Config.supports config group.precision) then
    invalid_arg
      (Printf.sprintf "Codegen.group_program: %s unsupported on %s"
         (Precision.name group.precision)
         config.name);
  let b = builder ~mode:options.sync_mode () in
  (* scalar control prologue *)
  emit b (I.Scalar_op { cycles = 4 });
  let src = Precision.size_bytes group.precision in
  (match group.kind with
  | Fusion.Cube_anchored ->
    let total_out_tiles =
      List.fold_left
        (fun acc (g : Ascend_nn.Workload.gemm) ->
          let tiling =
            select_tiling ~options config ~precision:group.precision
              ~expansion:group.img2col_expansion ~m:g.m ~k:g.k ~n:g.n
          in
          acc + (g.count * tiling.m_tiles * tiling.n_tiles))
        0 group.gemms
    in
    let total_post_bytes =
      int_of_float (ceil (group.vector_elems *. src))
    in
    let post_bytes_per_tile =
      if total_out_tiles = 0 then 0 else total_post_bytes / total_out_tiles
    in
    List.iteri
      (fun i g ->
        if i > 0 then begin
          (* a multi-GEMM group (kv attention's scores + context) reuses
             every ring slot with counters starting over; drain the
             outstanding flags and erect a full barrier so the next GEMM
             begins from the same clean state a fresh program has *)
          drain b;
          barrier b
        end;
        emit_gemm b config ~options ~precision:group.precision
          ~expansion:group.img2col_expansion ~post_bytes_per_tile g)
      group.gemms
  | Fusion.Vector_only ->
    emit_vector_stream b config ~options ~precision:group.precision
      ~vector_bytes:(int_of_float (ceil (group.vector_elems *. src)))
      ~input_bytes:group.input_bytes ~output_bytes:group.output_bytes);
  (* consume leftover ring-release flags so the program is flag-clean *)
  drain b;
  (* declare exactly the footprint the instruction stream allocates —
     the verifier recomputes the same quantity and cross-checks it *)
  let p = Program.make ~name:group.tag (List.rev b.rev) in
  { p with Program.buffer_peak = Program.derived_buffer_peak p }

let graph_programs ?options config graph =
  let groups = Fusion.partition graph in
  List.map (fun g -> (g, group_program ?options config g)) groups
