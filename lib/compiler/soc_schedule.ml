(** Build a whole-SoC schedule ([Ascend_verify.Soc.plan]) from a model
    graph — the bridge between the compiler and the SoC-level static
    race detector.

    Tasks are the fused groups, pinned to cores by the same greedy
    chain-cover the stream scheduler uses (stream mod cores).  Byte
    footprints come from two places cross-checked against each other:
    the memory planner's activation-arena offsets give each node's
    HBM region, and the compiled instruction streams give the External
    traffic totals.  Edges are (a) the group-level data dependencies the
    graph implies, resolved transitively through bookkeeping nodes, and
    (b) memory-reuse anti-dependencies: the planner reuses offsets
    across disjoint live ranges, so two groups on different cores whose
    regions overlap must be serialised even when no data flows between
    them.  By construction the resulting plan is race-free — which is
    exactly what [Soc.analyze] verifies, and what the mutation tests
    falsify by dropping an edge. *)

module Graph = Ascend_nn.Graph
module Soc = Ascend_verify.Soc
module Instruction = Ascend_isa.Instruction
module Buffer_id = Ascend_isa.Buffer_id
module Program = Ascend_isa.Program

let default_cores = 4

(* total External-buffer traffic of a compiled program, from its
   instruction accesses *)
let external_traffic (p : Program.t) =
  List.fold_left
    (fun (r, w) instr ->
      List.fold_left
        (fun (r, w) (a : Instruction.access) ->
          if Buffer_id.equal a.buffer Buffer_id.External then
            match a.kind with
            | Instruction.Read -> (r + a.bytes, w)
            | Instruction.Write -> (r, w + a.bytes)
          else (r, w))
        (r, w) (Instruction.accesses instr))
    (0, 0) p.Program.instructions

let build ?options ?(cores = default_cores) ?llc_bytes ?hbm_bytes config graph
    =
  if cores <= 0 then invalid_arg "Soc_schedule.build: non-positive cores";
  let compiled = Codegen.graph_programs ?options config graph in
  let mem = Memory_planner.plan graph in
  let alloc_of = Hashtbl.create 64 in
  List.iter
    (fun (a : Memory_planner.allocation) ->
      Hashtbl.replace alloc_of a.node_id a)
    mem.Memory_planner.allocations;
  let region_of node_id =
    match Hashtbl.find_opt alloc_of node_id with
    | Some a ->
      Some
        ( a.Memory_planner.node_name,
          { Soc.base = a.Memory_planner.offset;
            bytes = a.Memory_planner.size_bytes } )
    | None -> None
  in
  (* node id -> group index *)
  let node_group = Hashtbl.create 64 in
  List.iteri
    (fun gi ((g : Fusion.t), _) ->
      List.iter
        (fun (n : Graph.node) -> Hashtbl.replace node_group n.id gi)
        g.nodes)
    compiled;
  (* group-level data deps, resolved transitively through bookkeeping
     nodes exactly like the stream scheduler *)
  let rec resolve_groups input =
    match Hashtbl.find_opt node_group input with
    | Some gj -> [ gj ]
    | None ->
      List.concat_map resolve_groups (Graph.find graph input).Graph.inputs
  in
  let data_deps gi (g : Fusion.t) =
    List.concat_map
      (fun (n : Graph.node) ->
        List.concat_map resolve_groups n.inputs
        |> List.filter (fun gj -> gj <> gi))
      g.nodes
    |> List.sort_uniq compare
  in
  (* greedy chain cover for core assignment: extend the most recent
     producer's stream when this group is the first to consume its
     tail; core = stream mod cores *)
  let stream_of = Hashtbl.create 16 in
  let stream_tail = Hashtbl.create 16 in
  let next_stream = ref 0 in
  let rows =
    List.mapi
      (fun gi ((g : Fusion.t), p) ->
        let deps = data_deps gi g in
        let chosen =
          List.find_map
            (fun dep ->
              match Hashtbl.find_opt stream_of dep with
              | Some s when Hashtbl.find_opt stream_tail s = Some dep -> Some s
              | _ -> None)
            (List.rev deps)
        in
        let stream =
          match chosen with
          | Some s -> s
          | None ->
            let s = !next_stream in
            incr next_stream;
            s
        in
        Hashtbl.replace stream_of gi stream;
        Hashtbl.replace stream_tail stream gi;
        (gi, g, p, deps, stream mod cores))
      compiled
  in
  let writes_of (g : Fusion.t) =
    List.filter_map (fun (n : Graph.node) -> region_of n.id) g.nodes
  in
  let reads_of gi (g : Fusion.t) =
    List.concat_map
      (fun (n : Graph.node) ->
        List.filter_map
          (fun input ->
            if Hashtbl.find_opt node_group input = Some gi then None
            else region_of input)
          n.Graph.inputs)
      g.nodes
  in
  let proto =
    List.map
      (fun (gi, (g : Fusion.t), p, deps, core) ->
        let ext_read_bytes, ext_write_bytes = external_traffic p in
        {
          Soc.id = gi;
          core;
          tag = g.Fusion.tag;
          deps;
          reads = reads_of gi g;
          writes = writes_of g;
          ext_read_bytes;
          ext_write_bytes;
          working_set_bytes =
            g.Fusion.input_bytes + g.Fusion.weight_bytes
            + g.Fusion.output_bytes;
        })
      rows
  in
  (* memory-reuse anti-dependencies: serialise every cross-core pair
     whose regions conflict (write/write, write/read or read/write) and
     that data deps leave unordered.  The planner's offset reuse makes
     these conflicts routine on branchy graphs; without the edges they
     would be reported as races — correctly, because nothing would
     order them on real hardware either. *)
  let arr = Array.of_list proto in
  let conflicts (a : Soc.task) (b : Soc.task) =
    let touch xs ys =
      List.exists
        (fun (_, r) ->
          List.exists (fun (_, s) -> Soc.region_overlaps r s) ys)
        xs
    in
    touch a.Soc.writes b.Soc.writes
    || touch a.Soc.writes b.Soc.reads
    || touch a.Soc.reads b.Soc.writes
  in
  let n = Array.length arr in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      let a = arr.(i) and b = arr.(j) in
      if a.Soc.core <> b.Soc.core && conflicts a b
         && not (List.mem a.Soc.id b.Soc.deps)
      then arr.(j) <- { b with Soc.deps = a.Soc.id :: b.Soc.deps }
    done
  done;
  let tasks =
    Array.to_list arr
    |> List.map (fun (t : Soc.task) ->
           { t with Soc.deps = List.sort_uniq compare t.Soc.deps })
  in
  let plan =
    {
      Soc.soc_name = Printf.sprintf "%s@%s" (Graph.name graph) config.Ascend_arch.Config.name;
      cores;
      llc_bytes;
      hbm_bytes;
      weight_resident_bytes = mem.Memory_planner.weight_bytes;
      tasks;
    }
  in
  (plan, compiled)
