module Config = Ascend_arch.Config
module Precision = Ascend_arch.Precision
module I = Ascend_isa.Instruction
module Buffer_id = Ascend_isa.Buffer_id
module Pipe = Ascend_isa.Pipe
module Program = Ascend_isa.Program

type kernel = {
  kernel_name : string;
  generate : Config.t -> Program.t;
}

let f_in = 0 (* producer -> consumer: input staged *)
let f_in_free = 1 (* consumer -> producer: input slot reusable *)
let f_out = 2 (* Vector -> MTE3: output ready *)
let f_out_free = 3 (* MTE3 -> Vector: output slot stored *)
let f_ub_free = 4 (* MTE3 -> Vector: UB drain slot stored (transpose) *)

let div_up = Ascend_util.Stats.divide_round_up

(* declare exactly what the instruction stream allocates (cross-checked
   by Ascend_verify's independent peak recomputation) *)
let finish ~name instrs =
  let p = Program.make ~name instrs in
  { p with Program.buffer_peak = Program.derived_buffer_peak p }

(* row-granular streamed kernel: [passes] vector sweeps per chunk of
   whole rows, double-buffered through UB ring slots — input ring 0..1,
   working/output ring 2..3 (the first pass reads the input slot and
   writes the working slot; later passes update the working slot in
   place; MTE3 stores from the working slot) *)
let row_kernel ~name ~rows ~cols ~dtype ~passes =
  if rows <= 0 || cols <= 0 then invalid_arg (name ^ ": empty matrix");
  let generate (config : Config.t) =
    let row_bytes =
      int_of_float (ceil (float_of_int cols *. Precision.size_bytes dtype))
    in
    let budget = config.buffers.ub_bytes / 4 in
    if row_bytes > budget then
      invalid_arg
        (Printf.sprintf "%s: a %d-byte row exceeds the UB budget %d" name
           row_bytes budget);
    let rows_per_chunk = max 1 (budget / row_bytes) in
    let chunks = div_up rows rows_per_chunk in
    let instrs = ref [] in
    let emit i = instrs := i :: !instrs in
    emit (I.Scalar_op { cycles = 4 });
    for c = 0 to chunks - 1 do
      let rows_here = min rows_per_chunk (rows - (c * rows_per_chunk)) in
      let bytes = rows_here * row_bytes in
      let in_slot = c mod 2 in
      let work_slot = 2 + (c mod 2) in
      if c >= 2 then
        emit (I.wait_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 ~flag:f_in_free);
      emit
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub ~dst_slot:in_slot
           ~bytes ());
      emit (I.set_flag ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector ~flag:f_in);
      emit (I.wait_flag ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector ~flag:f_in);
      if c >= 2 then
        emit (I.wait_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_out_free);
      List.iteri
        (fun pi pass_name ->
          emit
            (I.vector_op ~op_name:pass_name ~bytes
               ~ub_in_slot:(if pi = 0 then in_slot else work_slot)
               ~ub_out_slot:work_slot ()))
        passes;
      emit (I.set_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 ~flag:f_in_free);
      emit (I.set_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 ~flag:f_out);
      emit (I.wait_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 ~flag:f_out);
      emit
        (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External
           ~src_slot:work_slot ~bytes ());
      emit (I.set_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_out_free)
    done;
    (* drain the ring-release flags so the program is flag-clean *)
    for _ = 1 to min chunks 2 do
      emit (I.wait_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 ~flag:f_in_free);
      emit (I.wait_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_out_free)
    done;
    finish ~name (List.rev !instrs)
  in
  { kernel_name = name; generate }

let softmax ~rows ~cols ?(dtype = Precision.Fp16) () =
  row_kernel
    ~name:(Printf.sprintf "softmax_%dx%d" rows cols)
    ~rows ~cols ~dtype
    ~passes:[ "rowmax"; "sub_exp"; "rowsum"; "divide" ]

let layer_norm ~rows ~cols ?(dtype = Precision.Fp16) () =
  row_kernel
    ~name:(Printf.sprintf "layernorm_%dx%d" rows cols)
    ~rows ~cols ~dtype
    ~passes:[ "mean"; "center"; "variance"; "rsqrt_scale"; "affine" ]

let transpose ~rows ~cols ?(dtype = Precision.Fp16) () =
  if rows <= 0 || cols <= 0 then invalid_arg "transpose: empty matrix";
  let name = Printf.sprintf "transpose_%dx%d" rows cols in
  let f_l1_free = 1 (* MTE1 -> MTE2: L1 tile slot consumed *) in
  let generate (config : Config.t) =
    let total =
      int_of_float (ceil (float_of_int (rows * cols) *. Precision.size_bytes dtype))
    in
    (* tile so the transposed block double-buffers in L0A *)
    let tile_bytes = config.buffers.l0a_bytes / 2 in
    let tiles = max 1 (div_up total tile_bytes) in
    let chunk = div_up total tiles in
    let instrs = ref [] in
    let emit i = instrs := i :: !instrs in
    emit (I.Scalar_op { cycles = 4 });
    for t = 0 to tiles - 1 do
      let bytes = min chunk (total - (t * chunk)) in
      let slot = t mod 2 in
      if t >= 2 then
        emit (I.wait_flag ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 ~flag:f_l1_free);
      emit
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1 ~dst_slot:slot
           ~bytes ());
      emit (I.set_flag ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 ~flag:f_in);
      emit (I.wait_flag ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 ~flag:f_in);
      (* the MTE trans module reorders the block on the L1 -> L0A path *)
      emit
        (I.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
           ~transform:I.Transpose ~src_slot:slot ~dst_slot:slot ~bytes ());
      emit (I.set_flag ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 ~flag:f_l1_free);
      emit (I.set_flag ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Vector ~flag:f_out);
      emit (I.wait_flag ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Vector ~flag:f_out);
      if t >= 2 then
        emit (I.wait_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_ub_free);
      (* drain through UB *)
      emit
        (I.vector_op ~op_name:"copy" ~bytes ~reads_ub:false ~ub_out_slot:slot ());
      emit (I.set_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 ~flag:f_out_free);
      emit (I.wait_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 ~flag:f_out_free);
      emit
        (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External ~src_slot:slot
           ~bytes ());
      emit (I.set_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_ub_free)
    done;
    for _ = 1 to min tiles 2 do
      emit (I.wait_flag ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Mte2 ~flag:f_l1_free);
      emit (I.wait_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_ub_free)
    done;
    finish ~name (List.rev !instrs)
  in
  { kernel_name = name; generate }

let requantize ~elems ~from_dtype ~to_dtype () =
  if elems <= 0 then invalid_arg "requantize: no elements";
  let name =
    Printf.sprintf "requantize_%s_to_%s_%d" (Precision.name from_dtype)
      (Precision.name to_dtype) elems
  in
  let generate (config : Config.t) =
    let in_total =
      int_of_float (ceil (float_of_int elems *. Precision.size_bytes from_dtype))
    in
    let out_total =
      int_of_float (ceil (float_of_int elems *. Precision.size_bytes to_dtype))
    in
    let budget = config.buffers.ub_bytes / 4 in
    let chunks = max 1 (div_up (in_total + out_total) budget) in
    let share total i =
      (total / chunks) + if i < total mod chunks then 1 else 0
    in
    let instrs = ref [] in
    let emit i = instrs := i :: !instrs in
    emit (I.Scalar_op { cycles = 4 });
    for c = 0 to chunks - 1 do
      let in_slot = c mod 2 in
      let out_slot = 2 + (c mod 2) in
      if c >= 2 then
        emit (I.wait_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 ~flag:f_in_free);
      emit
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub ~dst_slot:in_slot
           ~bytes:(share in_total c) ());
      emit (I.set_flag ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector ~flag:f_in);
      emit (I.wait_flag ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector ~flag:f_in);
      if c >= 2 then
        emit (I.wait_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_out_free);
      (* one fused conversion pass over the wider of the two sides *)
      emit
        (I.vector_op ~op_name:"requant"
           ~bytes:(max (share in_total c) (share out_total c))
           ~ub_in_slot:in_slot ~ub_out_slot:out_slot ());
      emit (I.set_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 ~flag:f_in_free);
      emit (I.set_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 ~flag:f_out);
      emit (I.wait_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 ~flag:f_out);
      emit
        (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External ~src_slot:out_slot
           ~bytes:(share out_total c) ());
      emit (I.set_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_out_free)
    done;
    for _ = 1 to min chunks 2 do
      emit (I.wait_flag ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 ~flag:f_in_free);
      emit (I.wait_flag ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector ~flag:f_out_free)
    done;
    finish ~name (List.rev !instrs)
  in
  { kernel_name = name; generate }

let registry () =
  [
    ("softmax", fun () -> softmax ~rows:512 ~cols:512 ());
    ("layer_norm", fun () -> layer_norm ~rows:512 ~cols:1024 ());
    ("transpose", fun () -> transpose ~rows:1024 ~cols:1024 ());
    ( "requantize",
      fun () ->
        requantize ~elems:65536 ~from_dtype:Precision.Int32
          ~to_dtype:Precision.Int8 () );
  ]

let simulate config kernel =
  match kernel.generate config with
  | exception Invalid_argument msg -> Error msg
  | program -> Ascend_core_sim.Simulator.run config program
