module Graph = Ascend_nn.Graph
module Op = Ascend_nn.Op
module Shape = Ascend_tensor.Shape

type allocation = {
  node_id : int;
  node_name : string;
  offset : int;
  size_bytes : int;
  first_use : int;
  last_use : int;
}

type plan = {
  allocations : allocation list;
  peak_bytes : int;
  weight_bytes : int;
}

let last_use g (n : Graph.node) =
  let consumers = Graph.consumers g n.id in
  List.fold_left
    (fun acc (c : Graph.node) -> max acc c.id)
    n.id consumers

let overlaps a b =
  (* live ranges are inclusive intervals over node ids *)
  a.first_use <= b.last_use && b.first_use <= a.last_use

let plan g =
  let nodes = Graph.nodes g in
  let weight_bytes =
    List.fold_left
      (fun acc (n : Graph.node) ->
        match n.inputs with
        | [ x ] -> (
          match Op.weight_shape n.op ~input:(Graph.find g x).out_shape with
          | Some ws -> acc + Shape.bytes ws ~dtype:n.dtype
          | None -> acc)
        | _ -> acc)
      0 nodes
  in
  (* first-fit by definition order: place each buffer at the lowest offset
     not overlapping any already-placed buffer whose live range intersects *)
  let placed = ref [] in
  let alloc (n : Graph.node) =
    let size_bytes = Shape.bytes n.out_shape ~dtype:n.dtype in
    let live = { node_id = n.id; node_name = n.node_name; offset = 0;
                 size_bytes; first_use = n.id; last_use = last_use g n }
    in
    let conflicting =
      List.filter (fun a -> overlaps a live) !placed
      |> List.sort (fun a b -> compare a.offset b.offset)
    in
    let rec fit offset = function
      | [] -> offset
      | a :: rest ->
        if offset + size_bytes <= a.offset then offset
        else fit (max offset (a.offset + a.size_bytes)) rest
    in
    let offset = fit 0 conflicting in
    let a = { live with offset } in
    placed := a :: !placed;
    a
  in
  let allocations = List.map alloc nodes in
  let peak_bytes =
    List.fold_left (fun acc a -> max acc (a.offset + a.size_bytes)) 0 allocations
  in
  { allocations; peak_bytes; weight_bytes }

let validate p =
  let rec pairs = function
    | [] -> Ok ()
    | a :: rest ->
      let bad =
        List.find_opt
          (fun b ->
            overlaps a b
            && a.offset < b.offset + b.size_bytes
            && b.offset < a.offset + a.size_bytes)
          rest
      in
      (match bad with
      | Some b ->
        Error
          (Printf.sprintf "allocations %s and %s overlap in time and space"
             a.node_name b.node_name)
      | None -> pairs rest)
  in
  pairs p.allocations

let total_activation_bytes g =
  List.fold_left
    (fun acc (n : Graph.node) -> acc + Shape.bytes n.out_shape ~dtype:n.dtype)
    0 (Graph.nodes g)

(* KV-cache residency implied by the graph's attention nodes: every
   Kv_attention holds a per-layer cache of (cache_len + tokens) K and V
   rows in device memory across serving steps — state that outlives the
   activation plan and must be budgeted against HBM alongside weights *)
let kv_cache_bytes g =
  List.fold_left
    (fun acc (n : Graph.node) ->
      match n.op with
      | Op.Kv_attention { cache_len; _ } -> (
        match Shape.to_list n.out_shape with
        | [ b; t; h ] ->
          acc + (2 * Shape.bytes (Shape.of_list [ b; cache_len + t; h ])
                     ~dtype:n.dtype)
        | _ -> acc)
      | _ -> acc)
    0 (Graph.nodes g)

let plan_hbm g ~hbm_bytes =
  if hbm_bytes < 1 then invalid_arg "Memory_planner.plan_hbm: hbm_bytes < 1";
  let p = plan g in
  let kv = kv_cache_bytes g in
  let resident = p.weight_bytes + kv + p.peak_bytes in
  if resident > hbm_bytes then
    Error
      (Printf.sprintf
         "graph %s needs %d B resident (weights %d + kv cache %d + \
          activations %d) but HBM holds %d B"
         (Graph.name g) resident p.weight_bytes kv p.peak_bytes hbm_bytes)
  else Ok p

let working_set_by_node g =
  List.map
    (fun (n : Graph.node) ->
      let input_bytes =
        List.fold_left
          (fun acc i ->
            acc + Shape.bytes (Graph.find g i).out_shape ~dtype:n.dtype)
          0 n.inputs
      in
      let weight =
        match n.inputs with
        | [ x ] -> (
          match Op.weight_shape n.op ~input:(Graph.find g x).out_shape with
          | Some ws -> Shape.bytes ws ~dtype:n.dtype
          | None -> 0)
        | _ -> 0
      in
      (n.id, input_bytes + weight + Shape.bytes n.out_shape ~dtype:n.dtype))
    (Graph.nodes g)
