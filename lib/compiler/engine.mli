(** End-to-end compile + simulate: the entry point the benchmarks and
    examples use.  A network executes as its fused groups in topological
    order on one core; per-group simulator reports provide the per-layer
    cube/vector cycle ratios (Figures 4-8) and L1 bandwidth profile
    (Figure 9). *)

type layer_result = {
  group : Fusion.t;
  program : Ascend_isa.Program.t;
  report : Ascend_core_sim.Simulator.report;
  cube_cycles : int;
  vector_cycles : int;
  ratio : float;  (** cube/vector; [infinity] when the group has no
                      vector work at all *)
}

type network_result = {
  config : Ascend_arch.Config.t;
  graph_name : string;
  layers : layer_result list;
  total_cycles : int;
  total_energy_j : float;
  total_macs : int;
}

val run_inference :
  ?options:Codegen.options -> Ascend_arch.Config.t -> Ascend_nn.Graph.t ->
  (network_result, string) result
(** Compile every fused group and simulate them back-to-back. *)

val run_training :
  ?options:Codegen.options -> Ascend_arch.Config.t -> Ascend_nn.Graph.t ->
  (network_result, string) result
(** Forward groups followed by the synthetic backward groups (reverse
    order), tagged ["bwd:<tag>"]. *)

val run_group :
  ?options:Codegen.options -> Ascend_arch.Config.t -> Fusion.t ->
  (layer_result, string) result

val training_groups : Ascend_nn.Graph.t -> Fusion.t list
(** The groups [run_training] executes: forward groups followed by the
    non-empty synthetic backward groups in reverse order. *)

val of_layer_results :
  Ascend_arch.Config.t -> string -> (layer_result, string) result list ->
  (network_result, string) result
(** Assemble per-group results (in submission order) into a network
    result; the first [Error] in the list wins, matching a serial
    short-circuiting run. *)

type group_runner =
  ?options:Codegen.options -> Ascend_arch.Config.t -> Fusion.t list ->
  (layer_result, string) result list

val group_runner : group_runner option ref
(** Execution hook: when set, [run_inference]/[run_training]/[run_groups]
    delegate the per-group compile+simulate fan-out to it instead of the
    built-in serial loop.  [Ascend_exec.Service.install] points it at a
    domain pool with a content-addressed result cache; results must be
    returned in submission order.  Kept as a ref so [lib/compiler] does
    not depend on [lib/exec] (the [Program.strict_checker] pattern). *)

val seconds : network_result -> float
val average_power_w : network_result -> float
(** Energy over time plus the core's leakage floor. *)

val inferences_per_second : network_result -> batch:int -> float

val training_ratio_by_layer : network_result -> (string * float) list
(** For a training result: pair each forward group with its backward
    twin and report the combined cube/vector ratio per layer tag —
    the series of Figure 5. *)

val pp_layer_table : Format.formatter -> network_result -> unit
