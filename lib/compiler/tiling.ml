module Config = Ascend_arch.Config
module Precision = Ascend_arch.Precision

type t = {
  mt : int;
  kt : int;
  nt : int;
  m_tiles : int;
  k_tiles : int;
  n_tiles : int;
  estimated_cycles : int;
}

let div_up = Ascend_util.Stats.divide_round_up

let sizes ~precision =
  let src = Precision.size_bytes precision in
  let acc = Precision.size_bytes (Precision.accumulator precision) in
  (src, acc)

let legal (config : Config.t) ~precision ~mt ~kt ~nt =
  let src, acc = sizes ~precision in
  let fits used cap = 2. *. used <= float_of_int cap in
  fits (float_of_int (mt * kt) *. src) config.buffers.l0a_bytes
  && fits (float_of_int (kt * nt) *. src) config.buffers.l0b_bytes
  && fits (float_of_int (mt * nt) *. acc) config.buffers.l0c_bytes
  (* the drained tile must also double-buffer in the unified buffer *)
  && fits (float_of_int (mt * nt) *. acc) config.buffers.ub_bytes

(* Everything the cost model derives from the problem alone — precision
   sizes, port widths, MTE2 unique-byte totals, B-panel residency, the
   vector drain total — is invariant across the (mt, kt, nt) candidate
   triple loop of [choose], so it is computed once here and only the
   genuinely per-candidate terms stay inside the loop. *)
type cost_ctx = {
  cc_config : Config.t;
  cc_precision : Precision.t;
  cc_src : float;
  cc_m : int;
  cc_k : int;
  cc_n : int;
  cc_img2col_expansion : float;
  cc_a_port : float;
  cc_b_port : float;
  cc_a_unique : float;   (* MTE2: unique A bytes, im2col-compressed *)
  cc_b_total : float;
  cc_b_resident : bool;  (* whole B fits in half of L1 *)
  cc_ext_bpc : float;
  cc_vector : int;       (* vector drain of L0C through the UB port *)
}

let cost_ctx (config : Config.t) ~precision ~img2col_expansion ~m ~k ~n =
  let src, acc = sizes ~precision in
  let ext_bpc =
    let bpc = Config.llc_bytes_per_cycle config in
    if bpc > 0. then bpc else 16.
  in
  let a_unique = float_of_int (m * k) *. src /. img2col_expansion in
  let b_total = float_of_int (k * n) *. src in
  let out_bytes = float_of_int (m * n) *. acc in
  {
    cc_config = config;
    cc_precision = precision;
    cc_src = src;
    cc_m = m;
    cc_k = k;
    cc_n = n;
    cc_img2col_expansion = img2col_expansion;
    cc_a_port = float_of_int config.bandwidth.l1_to_l0a;
    cc_b_port = float_of_int config.bandwidth.l1_to_l0b;
    cc_a_unique = a_unique;
    cc_b_total = b_total;
    cc_b_resident = b_total <= float_of_int config.buffers.l1_bytes /. 2.;
    cc_ext_bpc = ext_bpc;
    cc_vector =
      int_of_float (ceil (out_bytes /. float_of_int config.bandwidth.ub_port));
  }

let cost_of_ctx ctx ~mt ~kt ~nt =
  let m_tiles = div_up ctx.cc_m mt
  and k_tiles = div_up ctx.cc_k kt
  and n_tiles = div_up ctx.cc_n nt in
  let tiles = m_tiles * k_tiles * n_tiles in
  let tile_cycles =
    Config.cube_tile_cycles ctx.cc_config ~precision:ctx.cc_precision ~m:mt
      ~k:kt ~n:nt ()
  in
  let cube = tiles * (tile_cycles + Ascend_core_sim.Latency.cube_issue_overhead) in
  (* MTE1: per cube tile, one A move (im2col-compressed read, full write)
     and one B move *)
  let a_tile_bytes = float_of_int (mt * kt) *. ctx.cc_src in
  let b_tile_bytes = float_of_int (kt * nt) *. ctx.cc_src in
  let a_move =
    Float.max a_tile_bytes (a_tile_bytes /. ctx.cc_img2col_expansion)
    /. ctx.cc_a_port
  in
  let b_move = b_tile_bytes /. ctx.cc_b_port in
  let mte1 =
    tiles
    * (int_of_float (ceil (a_move +. b_move))
      + (2 * Ascend_core_sim.Latency.mte_issue_overhead))
  in
  (* MTE2: unique A bytes once, B panel per m tile (weights re-streamed
     unless the whole B fits in half of L1) *)
  let b_stream =
    if ctx.cc_b_resident then ctx.cc_b_total
    else ctx.cc_b_total *. float_of_int m_tiles
  in
  let mte2 =
    int_of_float (ceil ((ctx.cc_a_unique +. b_stream) /. ctx.cc_ext_bpc))
  in
  max (max cube mte1) (max mte2 ctx.cc_vector)

let cost (config : Config.t) ~precision ~img2col_expansion ~m ~k ~n ~mt ~kt ~nt =
  cost_of_ctx (cost_ctx config ~precision ~img2col_expansion ~m ~k ~n) ~mt ~kt
    ~nt

let candidate_multiples = [ 1; 2; 4; 8; 16; 32; 64 ]

let choose config ~precision ?(img2col_expansion = 1.) ~m ~k ~n () =
  let dims = Config.cube_dims_at config ~precision in
  let candidates base limit =
    (* tile sizes: cube-dim multiples, clipped at the problem size *)
    let cs =
      List.filter_map
        (fun mult ->
          let v = base * mult in
          if v < limit + base then Some (min v (div_up limit base * base))
          else None)
        candidate_multiples
    in
    List.sort_uniq compare cs
  in
  (* the three candidate lists and the loop-invariant cost terms are
     computed once; the triple loop evaluates only per-candidate work *)
  let m_candidates = candidates dims.m m
  and k_candidates = candidates dims.k k
  and n_candidates = candidates dims.n n in
  let ctx = cost_ctx config ~precision ~img2col_expansion ~m ~k ~n in
  let best = ref None in
  List.iter
    (fun mt ->
      List.iter
        (fun kt ->
          List.iter
            (fun nt ->
              if legal config ~precision ~mt ~kt ~nt then begin
                let c = cost_of_ctx ctx ~mt ~kt ~nt in
                match !best with
                | Some (bc, bmt, bkt, bnt)
                  when bc < c
                       || (bc = c && bmt * bkt * bnt >= mt * kt * nt) ->
                  ignore (bmt, bkt, bnt)
                | _ -> best := Some (c, mt, kt, nt)
              end)
            n_candidates)
        k_candidates)
    m_candidates;
  match !best with
  | None -> invalid_arg "Tiling.choose: no legal tiling"
  | Some (c, mt, kt, nt) ->
    {
      mt;
      kt;
      nt;
      m_tiles = div_up m mt;
      k_tiles = div_up k kt;
      n_tiles = div_up n nt;
      estimated_cycles = c;
    }

let naive config ~precision ~m ~k ~n () =
  let dims = Config.cube_dims_at config ~precision in
  {
    mt = dims.m;
    kt = dims.k;
    nt = dims.n;
    m_tiles = div_up m dims.m;
    k_tiles = div_up k dims.k;
    n_tiles = div_up n dims.n;
    estimated_cycles =
      cost config ~precision ~img2col_expansion:1. ~m ~k ~n ~mt:dims.m
        ~kt:dims.k ~nt:dims.n;
  }

let pp ppf t =
  Format.fprintf ppf "tile %dx%dx%d (%dx%dx%d tiles, est %d cyc)" t.mt t.kt
    t.nt t.m_tiles t.k_tiles t.n_tiles t.estimated_cycles
