module Config = Ascend_arch.Config
module Silicon = Ascend_arch.Silicon
module Pipe = Ascend_isa.Pipe
module Simulator = Ascend_core_sim.Simulator
module Workload = Ascend_nn.Workload
module Training = Ascend_nn.Training

type layer_result = {
  group : Fusion.t;
  program : Ascend_isa.Program.t;
  report : Simulator.report;
  cube_cycles : int;
  vector_cycles : int;
  ratio : float;
}

type network_result = {
  config : Config.t;
  graph_name : string;
  layers : layer_result list;
  total_cycles : int;
  total_energy_j : float;
  total_macs : int;
}

let run_group ?options config (group : Fusion.t) =
  match Codegen.group_program ?options config group with
  | exception Invalid_argument msg -> Error msg
  | program -> (
    match Simulator.run config program with
    | Error e -> Error (Printf.sprintf "group %s: %s" group.tag e)
    | Ok report ->
      let cube_cycles = (Simulator.pipe_stats report Pipe.Cube).busy_cycles in
      let vector_cycles =
        (Simulator.pipe_stats report Pipe.Vector).busy_cycles
      in
      let ratio =
        Ascend_util.Stats.ratio (float_of_int cube_cycles)
          (float_of_int vector_cycles)
      in
      Ok { group; program; report; cube_cycles; vector_cycles; ratio })

let collect config graph_name layer_results =
  {
    config;
    graph_name;
    layers = layer_results;
    total_cycles =
      List.fold_left (fun acc l -> acc + l.report.Simulator.total_cycles) 0
        layer_results;
    total_energy_j =
      List.fold_left (fun acc l -> acc +. l.report.Simulator.energy_j) 0.
        layer_results;
    total_macs =
      List.fold_left
        (fun acc l -> acc + l.report.Simulator.cube_macs_executed)
        0 layer_results;
  }

let of_layer_results config graph_name results =
  (* the first error in submission order wins, matching what a serial
     short-circuiting run would have reported *)
  let rec go acc = function
    | [] -> Ok (collect config graph_name (List.rev acc))
    | Ok r :: rest -> go (r :: acc) rest
    | Error e :: _ -> Error e
  in
  go [] results

type group_runner =
  ?options:Codegen.options -> Config.t -> Fusion.t list ->
  (layer_result, string) result list

(* [Ascend_exec.Service.install] routes this through its domain pool and
   content-addressed cache; kept as a ref so lib/compiler does not
   depend upward on lib/exec (same pattern as [Program.strict_checker]) *)
let group_runner : group_runner option ref = ref None

let run_groups ?options config graph_name groups =
  match !group_runner with
  | Some run -> of_layer_results config graph_name (run ?options config groups)
  | None ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | g :: rest -> (
        match run_group ?options config g with
        | Error _ as e -> e
        | Ok r -> go (r :: acc) rest)
    in
    (match go [] groups with
    | Error e -> Error e
    | Ok layers -> Ok (collect config graph_name layers))

let run_inference ?options config graph =
  run_groups ?options config (Ascend_nn.Graph.name graph)
    (Fusion.partition graph)

let backward_group graph (group : Fusion.t) =
  let w =
    List.fold_left
      (fun acc n -> Workload.combine acc (Training.backward_of_node graph n))
      Workload.zero group.nodes
  in
  Fusion.of_workloads ~tag:("bwd:" ^ group.tag) ~precision:group.precision w

let training_groups graph =
  let fwd = Fusion.partition graph in
  let bwd = List.rev_map (backward_group graph) fwd in
  (* drop empty backward groups (e.g. pure input stages) *)
  let bwd =
    List.filter
      (fun (g : Fusion.t) -> g.gemms <> [] || g.vector_elems > 0.)
      bwd
  in
  fwd @ bwd

let run_training ?options config graph =
  run_groups ?options config
    (Ascend_nn.Graph.name graph ^ ":training")
    (training_groups graph)

let seconds r =
  Ascend_util.Units.seconds_of_cycles ~cycles:r.total_cycles
    ~frequency_ghz:r.config.frequency_ghz

let average_power_w r =
  let t = seconds r in
  let leakage =
    0.1
    *. (Silicon.cube_power_w ~precision:r.config.native_precision r.config.cube
          ~frequency_ghz:r.config.frequency_ghz
       +. Silicon.vector_power_w ~width_bytes:r.config.vector_width_bytes
            ~frequency_ghz:r.config.frequency_ghz)
  in
  if t <= 0. then leakage else (r.total_energy_j /. t) +. leakage

let inferences_per_second r ~batch =
  let t = seconds r in
  if t <= 0. then 0. else float_of_int batch /. t

let training_ratio_by_layer r =
  let fwd, bwd =
    List.partition
      (fun l -> not (String.length l.group.tag >= 4
                     && String.sub l.group.tag 0 4 = "bwd:"))
      r.layers
  in
  (* index the backward layers once; the per-forward-layer List.find_opt
     was quadratic in network depth (noticeable on the 24-block BERTs).
     First binding wins, like the List.find_opt it replaces. *)
  let bwd_tbl = Hashtbl.create (2 * List.length bwd) in
  List.iter
    (fun l ->
      let tag = l.group.Fusion.tag in
      if not (Hashtbl.mem bwd_tbl tag) then Hashtbl.add bwd_tbl tag l)
    bwd;
  let bwd_of tag = Hashtbl.find_opt bwd_tbl ("bwd:" ^ tag) in
  List.map
    (fun l ->
      let tag = l.group.Fusion.tag in
      let cube, vec =
        match bwd_of tag with
        | Some bl ->
          (l.cube_cycles + bl.cube_cycles, l.vector_cycles + bl.vector_cycles)
        | None -> (l.cube_cycles, l.vector_cycles)
      in
      (tag, Ascend_util.Stats.ratio (float_of_int cube) (float_of_int vec)))
    fwd

let pp_layer_table ppf r =
  Format.fprintf ppf "%s on %s: %d layers, %d cycles, %.3f mJ@." r.graph_name
    r.config.name (List.length r.layers) r.total_cycles
    (r.total_energy_j *. 1e3);
  List.iter
    (fun l ->
      Format.fprintf ppf "  %-28s cube %8d  vector %8d  ratio %s@."
        l.group.Fusion.tag l.cube_cycles l.vector_cycles
        (if l.ratio = infinity then "inf"
         else Printf.sprintf "%.2f" l.ratio))
    r.layers
