(** Build a whole-SoC schedule for the static race detector.

    Lowers a model graph to an [Ascend_verify.Soc.plan]: one task per
    fused group, pinned to a core by the greedy chain-cover stream
    assignment (stream mod cores), with HBM byte-range footprints from
    the memory planner's activation arena and External traffic totals
    from the compiled instruction streams.

    Edges combine the graph's group-level data dependencies (resolved
    transitively through bookkeeping nodes) with memory-reuse
    anti-dependencies wherever the planner's offset reuse makes two
    unordered cross-core tasks touch overlapping regions — so a built
    plan is race-free by construction and [Soc.analyze] returns [] on
    it; mutation tests drop an edge to prove the detector live. *)

val default_cores : int
(** 4 — the paper's multi-core SoC baseline. *)

val build :
  ?options:Codegen.options ->
  ?cores:int ->
  ?llc_bytes:int ->
  ?hbm_bytes:int ->
  Ascend_arch.Config.t ->
  Ascend_nn.Graph.t ->
  Ascend_verify.Soc.plan * (Fusion.t * Ascend_isa.Program.t) list
(** Also returns the compiled per-group programs so callers can run the
    per-core lint (or the sanitizer) on the same artifacts without
    recompiling.  [llc_bytes]/[hbm_bytes] default to [None]: capacity
    checks are opt-in.  Raises [Invalid_argument] if the graph's
    precision is unsupported on [config] (mirror of
    [Codegen.group_program]) or [cores <= 0]. *)
