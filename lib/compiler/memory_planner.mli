(** Liveness-based activation memory planning for the external (device
    memory / LLC) footprint of a graph: each node's output lives from its
    definition to its last consumer; buffers are packed greedily by
    first-fit offset assignment.  The resulting footprint feeds the LLC
    capacity experiment of paper §4.1. *)

type allocation = {
  node_id : int;
  node_name : string;
  offset : int;
  size_bytes : int;
  first_use : int;   (** defining node id *)
  last_use : int;    (** last consumer id (or itself for outputs) *)
}

type plan = {
  allocations : allocation list;
  peak_bytes : int;     (** activation high-water mark *)
  weight_bytes : int;   (** parameters are resident for the whole run *)
}

val plan : Ascend_nn.Graph.t -> plan

val validate : plan -> (unit, string) result
(** No two live-range-overlapping allocations may overlap in address
    space (the property tests drive random graphs through this). *)

val kv_cache_bytes : Ascend_nn.Graph.t -> int
(** Device-memory KV-cache residency implied by the graph's
    {!Ascend_nn.Op.Kv_attention} nodes: per node, K and V rows for
    [cache_len + tokens] positions at the node's batch/hidden/dtype.
    Zero for cache-free graphs.  This is serving-side state that outlives
    one inference, so it budgets against HBM alongside weights rather
    than inside the activation plan. *)

val plan_hbm :
  Ascend_nn.Graph.t -> hbm_bytes:int -> (plan, string) result
(** {!plan}, then check the full resident footprint — weights + KV cache
    + activation peak — against an HBM capacity.  [Error] describes the
    overcommit.  Raises [Invalid_argument] on a non-positive capacity. *)

val total_activation_bytes : Ascend_nn.Graph.t -> int
(** Sum of every node's output footprint — what a training pass keeps
    resident for the backward computation (no rematerialisation). *)

val working_set_by_node : Ascend_nn.Graph.t -> (int * int) list
(** Per node: bytes that must be resident while it runs (inputs + output
    + its weights) — the per-layer LLC working set. *)
