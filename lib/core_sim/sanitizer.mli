(** Dynamic shadow-state sanitizer.

    Replays a program's synchronisation skeleton (per-pipe queues,
    counting-semaphore flags, all-pipe barriers — no latencies) while
    keeping shadow init/ownership state per (buffer, slot) and a
    per-pipe vector clock.  Because the clocks derive from the same
    sync edges as the static happens-before graph, the verdict is
    interleaving-independent: a clean report proves every conflicting
    access pair is separated by a satisfied flag or barrier, on every
    schedule the hardware could choose.

    Findings use [Ascend_verify.Finding] so the static linter and the
    sanitizer print, sort and serialise identically — the basis of the
    differential lint-vs-sanitize CI gate.  Reported kinds:
    [Uninit_read], [Hazard] (dynamic RAW/WAR/WAW), [Slot_overflow],
    [Capacity_overflow], [Flag_leak], [Peak_mismatch], [Deadlock],
    [Malformed].  Each (kind, buffer, slot) is reported once — the
    first occurrence — so streaming loops do not repeat one root cause
    thousands of times.

    Unlike [Simulator.run], no [Program.validate] gate runs first: the
    sanitizer's whole point is diagnosing broken programs. *)

type report = {
  findings : Ascend_verify.Finding.t list;
      (** discovery order; sort with [Finding.compare] for stable
          output *)
  instructions_executed : int;
}

val run : Ascend_arch.Config.t -> Ascend_isa.Program.t -> report
(** Never raises; a wedged replay yields a [Deadlock] finding. *)

val errors : report -> Ascend_verify.Finding.t list
val clean : report -> bool
(** No findings of any severity. *)
