module Pipe = Ascend_isa.Pipe

let render ?(width = 72) (r : Simulator.report) =
  if r.Simulator.trace = [] then
    "(no trace recorded: run the simulator with ~trace:true)\n"
  else begin
    (* Below 16 columns the chart degenerates (and width <= 0 would
       crash Array.make / divide_round_up). *)
    let width = max 16 width in
    let total = max 1 r.Simulator.total_cycles in
    let col cycle = min (width - 1) (cycle * width / total) in
    let rows =
      Array.make Pipe.count (Array.make 0 ' ')
    in
    Array.iteri (fun i _ -> rows.(i) <- Array.make width '.') rows;
    List.iter
      (fun (e : Simulator.trace_entry) ->
        let row = rows.(Pipe.index e.Simulator.pipe) in
        let c0 = col e.Simulator.start_cycle in
        let c1 = col (max e.Simulator.start_cycle (e.Simulator.end_cycle - 1)) in
        for c = c0 to c1 do
          row.(c) <- (if row.(c) = '#' || row.(c) = '%' then '%' else '#')
        done)
      r.Simulator.trace;
    let buf = Buffer.create ((width + 10) * Pipe.count) in
    Buffer.add_string buf
      (Printf.sprintf "cycles 0..%d (one column ~ %d cycles)\n" total
         (Ascend_util.Stats.divide_round_up total width));
    List.iter
      (fun p ->
        Buffer.add_string buf (Printf.sprintf "%-5s " (Pipe.name p));
        Array.iter (Buffer.add_char buf) rows.(Pipe.index p);
        Buffer.add_char buf '\n')
      Pipe.all;
    Buffer.contents buf
  end

let utilization_bars (r : Simulator.report) =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      let u = Simulator.utilization r p in
      let filled = max 0 (min 40 (int_of_float (u *. 40.))) in
      Buffer.add_string buf
        (Printf.sprintf "%-5s %5.1f%% |%s%s|\n" (Pipe.name p) (100. *. u)
           (String.make filled '=')
           (String.make (40 - filled) ' ')))
    Pipe.all;
  Buffer.contents buf
