module Config = Ascend_arch.Config
module Silicon = Ascend_arch.Silicon
module Pipe = Ascend_isa.Pipe
module Buffer_id = Ascend_isa.Buffer_id
module Instruction = Ascend_isa.Instruction
module Program = Ascend_isa.Program
module Obs = Ascend_obs

type pipe_stats = { busy_cycles : int; instruction_count : int }

type buffer_traffic = { read_bytes : int; written_bytes : int }

type trace_entry = {
  index : int;
  pipe : Pipe.t;
  start_cycle : int;
  end_cycle : int;
  instr : Instruction.t;
}

type report = {
  total_cycles : int;
  pipes : pipe_stats array;
  traffic : buffer_traffic array;
  energy_j : float;
  cube_macs_executed : int;
  trace : trace_entry list;
}

(* external accesses (LLC/HBM behind the BIU) cost far more than local
   SRAM; 15 pJ/B is an LLC-hit-dominated average at 7 nm *)
let external_energy_pj_per_byte = 15.0

type item = Instr of int * Instruction.t | Bar of int

type sim_state = {
  config : Config.t;
  queues : item Queue.t array;
  pipe_time : int array;
  (* flag semaphores: completion times of executed sets awaiting a wait *)
  sems : (Pipe.t * Pipe.t * int, int Queue.t) Hashtbl.t;
  (* barrier id -> (arrival count, max arrival time) *)
  barriers : (int, int * int) Hashtbl.t;
  blocked_on_barrier : int option array;
  busy : int array;
  count : int array;
  read_bytes : int array;
  written_bytes : int array;
  mutable energy_pj : float;
  mutable macs : int;
  mutable trace_rev : trace_entry list;
  keep_trace : bool;
  (* obs process lane for this run; -1 when no collector is installed,
     which keeps every emission below a dead branch (zero allocation) *)
  obs_pid : int;
}

let sem_queue st key =
  match Hashtbl.find_opt st.sems key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace st.sems key q;
    q

let account_traffic st instr =
  let add_read buf bytes =
    let i = Buffer_id.index buf in
    st.read_bytes.(i) <- st.read_bytes.(i) + bytes
  in
  let add_write buf bytes =
    let i = Buffer_id.index buf in
    st.written_bytes.(i) <- st.written_bytes.(i) + bytes
  in
  match instr with
  | Instruction.Mte_move { src; dst; bytes; _ } ->
    add_read src (Instruction.source_bytes instr);
    add_write dst bytes
  | Instruction.Vector_op { bytes; reads_ub; writes_ub; _ } ->
    if reads_ub then add_read Buffer_id.Ub bytes;
    if writes_ub then add_write Buffer_id.Ub bytes
  | Instruction.Cube_matmul { m; k; n; precision; accumulate; _ } ->
    let src = Ascend_arch.Precision.size_bytes precision in
    let acc =
      Ascend_arch.Precision.size_bytes (Ascend_arch.Precision.accumulator precision)
    in
    add_read Buffer_id.L0a (int_of_float (float_of_int (m * k) *. src));
    add_read Buffer_id.L0b (int_of_float (float_of_int (k * n) *. src));
    let out = int_of_float (float_of_int (m * n) *. acc) in
    add_write Buffer_id.L0c out;
    if accumulate then add_read Buffer_id.L0c out
  | Instruction.Scalar_op _ | Instruction.Set_flag _ | Instruction.Wait_flag _
  | Instruction.Barrier ->
    ()

let account_energy st instr =
  let pj =
    match instr with
    | Instruction.Cube_matmul { m; k; n; precision; _ } ->
      st.macs <- st.macs + (m * k * n);
      Silicon.cube_energy_per_tile_j ~precision { Config.m; k; n } *. 1e12
    | Instruction.Vector_op { bytes; _ } ->
      Silicon.vector_energy_per_byte_j *. float_of_int bytes *. 1e12
    | Instruction.Mte_move { src; dst; bytes; _ } ->
      let src_bytes = float_of_int (Instruction.source_bytes instr) in
      let on_chip b = not (Buffer_id.equal b Buffer_id.External) in
      let side b n =
        if on_chip b then n *. Silicon.e_fetch_pj_per_byte_7nm
        else n *. external_energy_pj_per_byte
      in
      side src src_bytes +. side dst (float_of_int bytes)
    | Instruction.Scalar_op { cycles } -> 5. *. float_of_int cycles
    | Instruction.Set_flag _ | Instruction.Wait_flag _ -> 1.
    | Instruction.Barrier -> 0.
  in
  st.energy_pj <- st.energy_pj +. pj

let push_trace st ~index ~pipe ~start_cycle ~end_cycle instr =
  if st.keep_trace then
    st.trace_rev <-
      { index; pipe; start_cycle; end_cycle; instr } :: st.trace_rev

(* per-instruction obs span on the executing pipe's thread lane,
   timestamped in simulated cycles *)
let obs_span st ~pipe ~start ~finish instr =
  if st.obs_pid >= 0 then begin
    let name, args =
      match instr with
      | Instruction.Cube_matmul { m; k; n; _ } ->
        ("cube_matmul", [ ("macs", Obs.Event.Int (m * k * n)) ])
      | Instruction.Vector_op { op_name; bytes; _ } ->
        ("vec_" ^ op_name, [ ("bytes", Obs.Event.Int bytes) ])
      | Instruction.Mte_move { src; dst; bytes; _ } ->
        ( Printf.sprintf "mte_%s_to_%s" (Buffer_id.name src)
            (Buffer_id.name dst),
          [ ("bytes", Obs.Event.Int bytes) ] )
      | Instruction.Scalar_op _ -> ("scalar_op", [])
      | Instruction.Set_flag { flag; _ } ->
        ("set_flag", [ ("flag", Obs.Event.Int flag) ])
      | Instruction.Wait_flag { flag; _ } ->
        ("wait_flag", [ ("flag", Obs.Event.Int flag) ])
      | Instruction.Barrier -> ("barrier", [])
    in
    Obs.Hook.span ~args ~cat:(Pipe.name pipe) ~name ~pid:st.obs_pid
      ~tid:(Pipe.index pipe) ~ts:(float_of_int start)
      ~dur:(float_of_int (finish - start)) ()
  end

(* Execute the head of a pipe if possible.  Returns true on progress. *)
let try_advance st pipe_idx =
  match st.blocked_on_barrier.(pipe_idx) with
  | Some _ -> false
  | None -> (
    let q = st.queues.(pipe_idx) in
    if Queue.is_empty q then false
    else
      match Queue.peek q with
      | Bar id ->
        ignore (Queue.pop q);
        let count, latest =
          match Hashtbl.find_opt st.barriers id with
          | Some v -> v
          | None -> (0, 0)
        in
        Hashtbl.replace st.barriers id
          (count + 1, max latest st.pipe_time.(pipe_idx));
        st.blocked_on_barrier.(pipe_idx) <- Some id;
        if st.obs_pid >= 0 then
          Obs.Hook.instant
            ~args:[ ("barrier", Obs.Event.Int id) ]
            ~cat:"sync" ~name:"barrier_arrive" ~pid:st.obs_pid ~tid:pipe_idx
            ~ts:(float_of_int st.pipe_time.(pipe_idx))
            ();
        true
      | Instr (index, instr) -> (
        let finish_normal () =
          ignore (Queue.pop q);
          let start = max st.pipe_time.(pipe_idx) index in
          let lat = Latency.instruction st.config instr in
          let finish = start + lat in
          st.pipe_time.(pipe_idx) <- finish;
          st.busy.(pipe_idx) <- st.busy.(pipe_idx) + lat;
          st.count.(pipe_idx) <- st.count.(pipe_idx) + 1;
          account_traffic st instr;
          account_energy st instr;
          (match instr with
          | Instruction.Set_flag { from_pipe; to_pipe; flag } ->
            Queue.push finish (sem_queue st (from_pipe, to_pipe, flag))
          | _ -> ());
          (match Instruction.pipe_of instr with
          | Some p ->
            push_trace st ~index ~pipe:p ~start_cycle:start ~end_cycle:finish
              instr;
            obs_span st ~pipe:p ~start ~finish instr
          | None -> ());
          true
        in
        match instr with
        | Instruction.Wait_flag { from_pipe; to_pipe; flag } ->
          let sem = sem_queue st (from_pipe, to_pipe, flag) in
          if Queue.is_empty sem then false
          else begin
            ignore (Queue.pop q);
            let set_time = Queue.pop sem in
            let start = max (max st.pipe_time.(pipe_idx) index) set_time in
            let finish = start + 1 in
            st.pipe_time.(pipe_idx) <- finish;
            st.busy.(pipe_idx) <- st.busy.(pipe_idx) + 1;
            st.count.(pipe_idx) <- st.count.(pipe_idx) + 1;
            push_trace st ~index ~pipe:to_pipe ~start_cycle:start
              ~end_cycle:finish instr;
            obs_span st ~pipe:to_pipe ~start ~finish instr;
            true
          end
        | _ -> finish_normal ()))

let release_barriers st =
  (* a barrier opens when all pipes have arrived *)
  let released = ref false in
  Hashtbl.iter
    (fun id (count, latest) ->
      if count = Pipe.count then begin
        Array.iteri
          (fun i b ->
            match b with
            | Some bid when bid = id ->
              st.blocked_on_barrier.(i) <- None;
              st.pipe_time.(i) <- max st.pipe_time.(i) latest;
              if st.obs_pid >= 0 then
                Obs.Hook.instant
                  ~args:[ ("barrier", Obs.Event.Int id) ]
                  ~cat:"sync" ~name:"barrier_release" ~pid:st.obs_pid ~tid:i
                  ~ts:(float_of_int latest) ()
            | _ -> ())
          st.blocked_on_barrier;
        Hashtbl.remove st.barriers id;
        released := true
      end)
    st.barriers;
  !released

let describe_deadlock st =
  let parts = ref [] in
  Array.iteri
    (fun i q ->
      if not (Queue.is_empty q) then
        let head =
          match Queue.peek q with
          | Bar id -> Printf.sprintf "barrier %d" id
          | Instr (idx, instr) ->
            Format.asprintf "#%d %a" idx Instruction.pp instr
        in
        parts :=
          Printf.sprintf "%s stuck at %s"
            (Pipe.name (List.nth Pipe.all i))
            head
          :: !parts)
    st.queues;
  String.concat "; " (List.rev !parts)

let run ?(trace = false) ?(validate = true) config (program : Program.t) =
  match
    if validate then Program.validate config program else Ok ()
  with
  | Error e -> Error (Printf.sprintf "validation: %s" e)
  | Ok () ->
    let obs_pid =
      if not (Obs.Hook.enabled ()) then -1
      else begin
        let pid =
          Obs.Hook.alloc_pid ~name:("core:" ^ program.Program.program_name)
        in
        List.iter
          (fun p ->
            Obs.Hook.name_thread ~pid ~tid:(Pipe.index p) (Pipe.name p))
          Pipe.all;
        pid
      end
    in
    let st =
      {
        config;
        queues = Array.init Pipe.count (fun _ -> Queue.create ());
        pipe_time = Array.make Pipe.count 0;
        sems = Hashtbl.create 32;
        barriers = Hashtbl.create 8;
        blocked_on_barrier = Array.make Pipe.count None;
        busy = Array.make Pipe.count 0;
        count = Array.make Pipe.count 0;
        read_bytes = Array.make Buffer_id.count 0;
        written_bytes = Array.make Buffer_id.count 0;
        energy_pj = 0.;
        macs = 0;
        trace_rev = [];
        keep_trace = trace;
        obs_pid;
      }
    in
    (* distribute instructions to pipe queues in program order *)
    let barrier_id = ref 0 in
    List.iteri
      (fun index instr ->
        match instr with
        | Instruction.Barrier ->
          let id = !barrier_id in
          incr barrier_id;
          Array.iter (fun q -> Queue.push (Bar id) q) st.queues
        | _ -> (
          match Instruction.pipe_of instr with
          | Some p -> Queue.push (Instr (index, instr)) st.queues.(Pipe.index p)
          | None -> invalid_arg "Simulator.run: unmapped instruction"))
      program.instructions;
    (* main scheduling loop *)
    let rec loop () =
      let progress = ref false in
      for i = 0 to Pipe.count - 1 do
        (* drain each pipe as far as it can go this pass *)
        while try_advance st i do
          progress := true
        done
      done;
      if release_barriers st then progress := true;
      let done_ =
        Array.for_all Queue.is_empty st.queues
        && Array.for_all (fun b -> b = None) st.blocked_on_barrier
      in
      if done_ then Ok ()
      else if !progress then loop ()
      else Error (Printf.sprintf "deadlock: %s" (describe_deadlock st))
    in
    (match loop () with
    | Error e -> Error e
    | Ok () ->
      let total_cycles = Array.fold_left max 0 st.pipe_time in
      Ok
        {
          total_cycles;
          pipes =
            Array.init Pipe.count (fun i ->
                { busy_cycles = st.busy.(i); instruction_count = st.count.(i) });
          traffic =
            Array.init Buffer_id.count (fun i ->
                {
                  read_bytes = st.read_bytes.(i);
                  written_bytes = st.written_bytes.(i);
                });
          energy_j = st.energy_pj *. 1e-12;
          cube_macs_executed = st.macs;
          trace = List.rev st.trace_rev;
        })

let pipe_stats r p = r.pipes.(Pipe.index p)
let traffic r b = r.traffic.(Buffer_id.index b)

let utilization r p =
  if r.total_cycles = 0 then 0.
  else float_of_int (pipe_stats r p).busy_cycles /. float_of_int r.total_cycles

let seconds (config : Config.t) r =
  Ascend_util.Units.seconds_of_cycles ~cycles:r.total_cycles
    ~frequency_ghz:config.frequency_ghz

let average_power_w config r =
  let t = seconds config r in
  let leakage =
    0.1
    *. (Silicon.cube_power_w ~precision:config.Config.native_precision
          config.Config.cube ~frequency_ghz:config.Config.frequency_ghz
       +. Silicon.vector_power_w ~width_bytes:config.Config.vector_width_bytes
            ~frequency_ghz:config.Config.frequency_ghz)
  in
  if t <= 0. then leakage else (r.energy_j /. t) +. leakage

let l1_read_bits_per_cycle r =
  if r.total_cycles = 0 then 0.
  else
    float_of_int ((traffic r Buffer_id.L1).read_bytes * 8)
    /. float_of_int r.total_cycles

let l1_write_bits_per_cycle r =
  if r.total_cycles = 0 then 0.
  else
    float_of_int ((traffic r Buffer_id.L1).written_bytes * 8)
    /. float_of_int r.total_cycles

let pp_report ppf r =
  Format.fprintf ppf "cycles: %d, energy: %.3f mJ, MACs: %d@." r.total_cycles
    (r.energy_j *. 1e3) r.cube_macs_executed;
  List.iter
    (fun p ->
      let s = pipe_stats r p in
      if s.instruction_count > 0 then
        Format.fprintf ppf "  %-5s %6d instr, busy %8d cyc (%.1f%%)@."
          (Pipe.name p) s.instruction_count s.busy_cycles
          (100. *. utilization r p))
    Pipe.all;
  List.iter
    (fun b ->
      let t = traffic r b in
      if t.read_bytes > 0 || t.written_bytes > 0 then
        Format.fprintf ppf "  %-4s read %10d B, written %10d B@."
          (Buffer_id.name b) t.read_bytes t.written_bytes)
    Buffer_id.all
