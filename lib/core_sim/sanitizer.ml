(** Dynamic shadow-state sanitizer: an opt-in replay mode that executes
    a program's synchronisation skeleton (no latencies) while keeping
    shadow init/ownership state per (buffer, slot).

    The replay mirrors [Simulator]'s queue semantics exactly — per-pipe
    issue queues filled in program order, counting semaphores per
    [(from_pipe, to_pipe, flag)] triple, all-pipe barriers — but each
    executed instruction also carries a per-pipe vector clock, so every
    access is checked against the shadow state *with the ordering the
    synchronisation actually establishes*, not the ordering one lucky
    interleaving happened to produce.  Because the clocks derive from
    the same sync edges as the static happens-before graph, the verdict
    is interleaving-independent: a program is sanitizer-clean iff every
    conflicting access pair is separated by a satisfied flag or barrier.

    Checks (all reported through {!Ascend_verify.Finding}):
    - [Uninit_read] — a (buffer, slot) read before any write established
      it, or a read of more bytes than were ever written there;
    - [Hazard] RAW/WAR/WAW — conflicting accesses the clocks leave
      unordered: slot reuse without an intervening satisfied
      [Wait_flag];
    - [Slot_overflow] — an in-place write past the footprint the slot's
      allocating write established;
    - [Capacity_overflow] — live shadow footprints of a buffer exceed
      the config's capacity at some instant of the replay;
    - [Flag_leak] — semaphore entries left when the replay drains;
    - [Peak_mismatch] — the shadow footprint high-water mark disagrees
      with the program's declared [buffer_peak];
    - [Deadlock] — the replay wedges (every pipe blocked).

    Mirroring the static checker's severities and end-state checks is
    what makes the differential gate meaningful: for every mutation
    class the static analyzer detects, the sanitizer detects the same
    class dynamically, and vice versa. *)

module Config = Ascend_arch.Config
module Pipe = Ascend_isa.Pipe
module Buffer_id = Ascend_isa.Buffer_id
module Instruction = Ascend_isa.Instruction
module Program = Ascend_isa.Program
module Finding = Ascend_verify.Finding

type report = { findings : Finding.t list; instructions_executed : int }

type item = Instr of int * Instruction.t | Bar of int

(* one recorded access: the executing pipe, its vector-clock snapshot,
   the instruction index and the byte count *)
type stamp = { pipe : int; vc : int array; index : int; bytes : int }

type slot_shadow = {
  mutable footprint : int;  (* bytes the allocating write established *)
  mutable max_footprint : int;  (* high-water mark across all allocs *)
  mutable writer : stamp option;
  mutable readers : stamp list;  (* reads since the last write *)
}

type state = {
  config : Config.t;
  queues : item Queue.t array;
  (* flag semaphores carry the setter's vector-clock snapshot *)
  sems : (Pipe.t * Pipe.t * int, int array Queue.t) Hashtbl.t;
  barriers : (int, int) Hashtbl.t;  (* barrier id -> arrival count *)
  blocked_on_barrier : int option array;
  clock : int array array;  (* per-pipe vector clock *)
  shadow : (Buffer_id.t * int, slot_shadow) Hashtbl.t;
  live : int array;  (* per-buffer current live footprint sum *)
  mutable executed : int;
  mutable findings_rev : Finding.t list;
  seen : (string, unit) Hashtbl.t;  (* dedup key -> () *)
}

let sem_queue st key =
  match Hashtbl.find_opt st.sems key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace st.sems key q;
    q

let slot_shadow st key =
  match Hashtbl.find_opt st.shadow key with
  | Some s -> s
  | None ->
    let s = { footprint = 0; max_footprint = 0; writer = None; readers = [] } in
    Hashtbl.replace st.shadow key s;
    s

(* report once per (kind, buffer, slot): streaming loops would otherwise
   repeat one root cause thousands of times *)
let emit st ?severity ?index ?pipe ?buffer ~slot kind message =
  let key =
    Printf.sprintf "%s/%s/%d" (Finding.kind_name kind)
      (match buffer with Some b -> Buffer_id.name b | None -> "-")
      slot
  in
  if not (Hashtbl.mem st.seen key) then begin
    Hashtbl.replace st.seen key ();
    st.findings_rev <-
      Finding.make ?severity ?index ?pipe ?buffer kind message
      :: st.findings_rev
  end

(* did the event stamped [s] happen before the current instant of pipe
   [p]?  standard vector-clock test: s's own component is included in
   p's view *)
let ordered_before st (s : stamp) p = s.vc.(s.pipe) <= st.clock.(p).(s.pipe)

let pipe_nth i = List.nth Pipe.all i

let check_access st ~pipe_idx ~index (a : Instruction.access) =
  if not (Buffer_id.equal a.Instruction.buffer Buffer_id.External) then begin
    let buf = a.Instruction.buffer in
    let sh = slot_shadow st (buf, a.Instruction.slot) in
    let stamp () =
      {
        pipe = pipe_idx;
        vc = Array.copy st.clock.(pipe_idx);
        index;
        bytes = a.Instruction.bytes;
      }
    in
    let pipe = pipe_nth pipe_idx in
    match a.Instruction.kind with
    | Instruction.Read ->
      (match sh.writer with
      | None ->
        if a.Instruction.bytes > 0 then
          emit st ~index ~pipe ~buffer:buf ~slot:a.Instruction.slot
            Finding.Uninit_read
            (Printf.sprintf
               "instruction %d reads %d B from %s slot %d before any write \
                established it"
               index a.Instruction.bytes (Buffer_id.name buf)
               a.Instruction.slot)
      | Some w ->
        if a.Instruction.exact && a.Instruction.bytes > sh.footprint then
          emit st ~index ~pipe ~buffer:buf ~slot:a.Instruction.slot
            Finding.Uninit_read
            (Printf.sprintf
               "instruction %d reads %d B from %s slot %d but only %d B were \
                written"
               index a.Instruction.bytes (Buffer_id.name buf)
               a.Instruction.slot sh.footprint);
        if not (ordered_before st w pipe_idx) then
          emit st ~index ~pipe ~buffer:buf ~slot:a.Instruction.slot
            (Finding.Hazard { dep = "RAW" })
            (Printf.sprintf
               "replay race on %s slot %d: instruction %d reads bytes \
                instruction %d is writing — no satisfied flag or barrier \
                orders them"
               (Buffer_id.name buf) a.Instruction.slot index w.index));
      sh.readers <- stamp () :: sh.readers
    | Instruction.Write ->
      (match sh.writer with
      | Some w when not (ordered_before st w pipe_idx) ->
        emit st ~index ~pipe ~buffer:buf ~slot:a.Instruction.slot
          (Finding.Hazard { dep = "WAW" })
          (Printf.sprintf
             "replay race on %s slot %d: instruction %d overwrites bytes \
              instruction %d is writing — slot reused without a satisfied \
              wait"
             (Buffer_id.name buf) a.Instruction.slot index w.index)
      | _ -> ());
      List.iter
        (fun r ->
          if not (ordered_before st r pipe_idx) then
            emit st ~index ~pipe ~buffer:buf ~slot:a.Instruction.slot
              (Finding.Hazard { dep = "WAR" })
              (Printf.sprintf
                 "replay race on %s slot %d: instruction %d overwrites bytes \
                  instruction %d is still reading — slot reused without a \
                  satisfied wait"
                 (Buffer_id.name buf) a.Instruction.slot index r.index))
        sh.readers;
      if a.Instruction.alloc then begin
        let bi = Buffer_id.index buf in
        st.live.(bi) <- st.live.(bi) - sh.footprint + a.Instruction.bytes;
        sh.footprint <- a.Instruction.bytes;
        if sh.footprint > sh.max_footprint then
          sh.max_footprint <- sh.footprint;
        (match Buffer_id.capacity_bytes st.config buf with
        | Some cap when st.live.(bi) > cap ->
          emit st ~index ~pipe ~buffer:buf ~slot:(-1)
            Finding.Capacity_overflow
            (Printf.sprintf
               "buffer %s: live footprint %d B exceeds %s's %d B capacity at \
                instruction %d"
               (Buffer_id.name buf) st.live.(bi) st.config.Config.name cap
               index)
        | _ -> ())
      end
      else if a.Instruction.exact && a.Instruction.bytes > sh.footprint then
        emit st ~index ~pipe ~buffer:buf ~slot:a.Instruction.slot
          Finding.Slot_overflow
          (Printf.sprintf
             "instruction %d writes %d B in place into %s slot %d whose \
              allocating write established only %d B"
             index a.Instruction.bytes (Buffer_id.name buf)
             a.Instruction.slot sh.footprint);
      sh.writer <- Some (stamp ());
      sh.readers <- []
  end

(* Execute the head of a pipe if possible.  Returns true on progress. *)
let try_advance st pipe_idx =
  match st.blocked_on_barrier.(pipe_idx) with
  | Some _ -> false
  | None -> (
    let q = st.queues.(pipe_idx) in
    if Queue.is_empty q then false
    else
      match Queue.peek q with
      | Bar id ->
        ignore (Queue.pop q);
        let count =
          match Hashtbl.find_opt st.barriers id with Some c -> c | None -> 0
        in
        Hashtbl.replace st.barriers id (count + 1);
        st.blocked_on_barrier.(pipe_idx) <- Some id;
        true
      | Instr (index, instr) -> (
        let tick () =
          st.clock.(pipe_idx).(pipe_idx) <- st.clock.(pipe_idx).(pipe_idx) + 1;
          st.executed <- st.executed + 1
        in
        match instr with
        | Instruction.Wait_flag { from_pipe; to_pipe; flag } ->
          let sem = sem_queue st (from_pipe, to_pipe, flag) in
          if Queue.is_empty sem then false
          else begin
            ignore (Queue.pop q);
            tick ();
            let setter_vc = Queue.pop sem in
            Array.iteri
              (fun i v ->
                if v > st.clock.(pipe_idx).(i) then
                  st.clock.(pipe_idx).(i) <- v)
              setter_vc;
            true
          end
        | _ ->
          ignore (Queue.pop q);
          tick ();
          (match instr with
          | Instruction.Set_flag { from_pipe; to_pipe; flag } ->
            Queue.push
              (Array.copy st.clock.(pipe_idx))
              (sem_queue st (from_pipe, to_pipe, flag))
          | _ -> ());
          let reads, writes =
            List.partition
              (fun (a : Instruction.access) -> a.Instruction.kind = Read)
              (Instruction.accesses instr)
          in
          (* reads of an instruction logically precede its writes *)
          List.iter (check_access st ~pipe_idx ~index) reads;
          List.iter (check_access st ~pipe_idx ~index) writes;
          true))

let release_barriers st =
  let released = ref false in
  Hashtbl.iter
    (fun id count ->
      if count = Pipe.count then begin
        (* a barrier joins every pipe's clock and restarts all pipes *)
        let join = Array.make Pipe.count 0 in
        Array.iter
          (fun vc -> Array.iteri (fun i v -> if v > join.(i) then join.(i) <- v) vc)
          st.clock;
        Array.iteri (fun p _ -> st.clock.(p) <- Array.copy join) st.clock;
        Array.iteri
          (fun i b ->
            match b with
            | Some bid when bid = id -> st.blocked_on_barrier.(i) <- None
            | _ -> ())
          st.blocked_on_barrier;
        Hashtbl.remove st.barriers id;
        released := true
      end)
    st.barriers;
  !released

let describe_stuck st =
  let parts = ref [] in
  Array.iteri
    (fun i q ->
      if not (Queue.is_empty q) then
        let head =
          match Queue.peek q with
          | Bar id -> Printf.sprintf "barrier %d" id
          | Instr (idx, instr) ->
            Format.asprintf "#%d %a" idx Instruction.pp instr
        in
        parts :=
          Printf.sprintf "%s stuck at %s" (Pipe.name (pipe_nth i)) head
          :: !parts)
    st.queues;
  String.concat "; " (List.rev !parts)

(* end-of-run checks, mirroring the static analyzer's *)
let end_state_findings st (program : Program.t) =
  let leaks = ref [] in
  Hashtbl.iter
    (fun (f, t, flag) q ->
      let n = Queue.length q in
      if n > 0 then
        leaks :=
          Finding.make ~pipe:f Finding.Flag_leak
            (Printf.sprintf
               "flag %s->%s #%d ends the replay with %d set(s) never \
                consumed; a following program's first wait on this triple \
                would pass spuriously"
               (Pipe.name f) (Pipe.name t) flag n)
          :: !leaks)
    st.sems;
  let peaks =
    List.concat_map
      (fun buf ->
        if Buffer_id.equal buf Buffer_id.External then []
        else begin
          (* per-slot maxima, matching [Program.derived_buffer_peak] *)
          let slot_max = Hashtbl.create 8 in
          Hashtbl.iter
            (fun (b, slot) (sh : slot_shadow) ->
              if Buffer_id.equal b buf then
                let cur =
                  match Hashtbl.find_opt slot_max slot with
                  | Some v -> v
                  | None -> 0
                in
                if sh.max_footprint > cur then
                  Hashtbl.replace slot_max slot sh.max_footprint)
            st.shadow;
          let shadow_peak = Hashtbl.fold (fun _ v acc -> acc + v) slot_max 0 in
          let declared =
            match List.assoc_opt buf program.Program.buffer_peak with
            | Some v -> v
            | None -> 0
          in
          if declared < shadow_peak then
            [
              Finding.make ~buffer:buf Finding.Peak_mismatch
                (Printf.sprintf
                   "buffer %s: declared peak %d B understates the %d B the \
                    replay's shadow state reached"
                   (Buffer_id.name buf) declared shadow_peak);
            ]
          else if declared > shadow_peak then
            [
              Finding.make ~severity:Finding.Warning ~buffer:buf
                Finding.Peak_mismatch
                (Printf.sprintf
                   "buffer %s: declared peak %d B overstates the %d B the \
                    replay's shadow state reached"
                   (Buffer_id.name buf) declared shadow_peak);
            ]
          else []
        end)
      Buffer_id.all
  in
  List.rev !leaks @ peaks

let run (config : Config.t) (program : Program.t) =
  let st =
    {
      config;
      queues = Array.init Pipe.count (fun _ -> Queue.create ());
      sems = Hashtbl.create 32;
      barriers = Hashtbl.create 8;
      blocked_on_barrier = Array.make Pipe.count None;
      clock = Array.init Pipe.count (fun _ -> Array.make Pipe.count 0);
      shadow = Hashtbl.create 64;
      live = Array.make Buffer_id.count 0;
      executed = 0;
      findings_rev = [];
      seen = Hashtbl.create 32;
    }
  in
  let barrier_id = ref 0 in
  let malformed = ref [] in
  List.iteri
    (fun index instr ->
      match instr with
      | Instruction.Barrier ->
        let id = !barrier_id in
        incr barrier_id;
        Array.iter (fun q -> Queue.push (Bar id) q) st.queues
      | _ -> (
        match Instruction.pipe_of instr with
        | Some p -> Queue.push (Instr (index, instr)) st.queues.(Pipe.index p)
        | None ->
          malformed :=
            Finding.make ~index Finding.Malformed
              "instruction maps to no pipe (illegal MTE move)"
            :: !malformed))
    program.Program.instructions;
  let rec loop () =
    let progress = ref false in
    for i = 0 to Pipe.count - 1 do
      while try_advance st i do
        progress := true
      done
    done;
    if release_barriers st then progress := true;
    let done_ =
      Array.for_all Queue.is_empty st.queues
      && Array.for_all (fun b -> b = None) st.blocked_on_barrier
    in
    if done_ then []
    else if !progress then loop ()
    else
      [
        Finding.make Finding.Deadlock
          (Printf.sprintf "replay wedged with work outstanding: %s"
             (describe_stuck st));
      ]
  in
  let deadlocks = loop () in
  let findings =
    List.rev !malformed @ List.rev st.findings_rev @ deadlocks
    @ end_state_findings st program
  in
  { findings; instructions_executed = st.executed }

let errors (r : report) = List.filter Finding.is_error r.findings
let clean (r : report) = r.findings = []
