(** ASCII Gantt rendering of a simulator trace: one row per pipe, time on
    the horizontal axis — paper Figure 3 regenerated from an actual run.

    Requires the report to have been produced with [~trace:true]. *)

val render : ?width:int -> Simulator.report -> string
(** [width] is the chart width in characters (default 72, clamped up
    to 16: narrower charts degenerate and non-positive widths are
    meaningless).  Busy spans print as ['#'] (['%'] where distinct
    instructions merge into one column), idle as ['.'].  Returns a
    note instead of a chart when the trace is empty; single-cycle
    reports render a one-column-per-cycle chart. *)

val utilization_bars : Simulator.report -> string
(** One bar per pipe: name, percentage, and a 40-char bar — a compact
    per-pipe utilisation summary. *)
