module Json = Ascend_util.Json

type entry = { cycles : int; latency_s : float; energy_j : float }

type t = {
  model : string;
  (* sorted by batch, distinct; invariant established by [fit] *)
  table : (int * entry) array;
}

let anchor_batches ~max_batch =
  if max_batch < 1 then invalid_arg "Surrogate.anchor_batches: max_batch < 1";
  let rec powers b acc = if b > max_batch then acc else powers (2 * b) (b :: acc) in
  List.sort_uniq compare (max_batch :: powers 1 [])

let fit ~model ~anchors =
  match anchors with
  | [] -> Error (model ^ ": no anchors")
  | _ when List.exists (fun (b, _) -> b < 1) anchors ->
    Error (model ^ ": anchor batch < 1")
  | _ ->
    let table =
      Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) anchors)
    in
    let dup = ref false in
    Array.iteri
      (fun i (b, _) -> if i > 0 && fst table.(i - 1) = b then dup := true)
      table;
    if !dup then Error (model ^ ": duplicate anchor batch")
    else Ok { model; table }

let calibrate ~model ~batches ~price =
  let rec go acc = function
    | [] -> fit ~model ~anchors:(List.rev acc)
    | b :: rest -> (
      match price ~batch:b with
      | Ok e -> go ((b, e) :: acc) rest
      | Error e -> Error e)
  in
  go [] (List.sort_uniq compare batches)

let model t = t.model
let anchors t = Array.to_list t.table
let min_batch t = fst t.table.(0)
let max_batch t = fst t.table.(Array.length t.table - 1)
let in_range t ~batch = batch >= min_batch t && batch <= max_batch t

(* largest index whose batch is <= [batch]; the caller has checked
   range, so the bracket [i, i+1] always exists when batch is not an
   anchor *)
let bracket t batch =
  let lo = ref 0 and hi = ref (Array.length t.table - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if fst t.table.(mid) <= batch then lo := mid else hi := mid
  done;
  if fst t.table.(!hi) <= batch then !hi else !lo

let lookup t ~batch =
  if batch < 1 then invalid_arg "Surrogate.lookup: batch < 1";
  if not (in_range t ~batch) then None
  else
    let i = bracket t batch in
    let b0, e0 = t.table.(i) in
    if b0 = batch then Some e0
    else
      let b1, e1 = t.table.(i + 1) in
      let w = float_of_int (batch - b0) /. float_of_int (b1 - b0) in
      let lerp a b = a +. ((b -. a) *. w) in
      Some
        {
          cycles =
            (let c =
               lerp (float_of_int e0.cycles) (float_of_int e1.cycles)
             in
             max 1 (int_of_float (Float.round c)));
          latency_s = lerp e0.latency_s e1.latency_s;
          energy_j = lerp e0.energy_j e1.energy_j;
        }

let to_json t =
  Json.Obj
    [
      ("model", Json.String t.model);
      ( "anchors",
        Json.List
          (Array.to_list t.table
          |> List.map (fun (b, e) ->
                 Json.Obj
                   [
                     ("batch", Json.Int b);
                     ("cycles", Json.Int e.cycles);
                     ("latency_s", Json.Float e.latency_s);
                     ("energy_j", Json.Float e.energy_j);
                   ])) );
    ]
