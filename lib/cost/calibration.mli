(** Calibration protocol for the {!Surrogate}: fit a per-model table
    from anchor batches priced through the exact compile+simulate path,
    then replay {e every} batch in [1 .. max_batch] through both tiers
    and report the surrogate's error against the oracle.

    The error metric is the absolute percentage error on total cycles —
    the number the serving loop actually schedules on — computed with
    {!Ascend_util.Stats.mean_abs_pct_error} /
    {!Ascend_util.Stats.max_abs_pct_error} over the {b non-anchor}
    batches (anchors reproduce exactly by construction, so including
    them would only dilute the mean).  CI runs
    [ascend_cli calibrate --all] and fails when any zoo model's max
    error exceeds the 5% budget.

    Piecewise-linear interpolation on the geometric anchor schedule
    alone is not enough: tiling boundaries make [cycles(batch)] step
    rather than slope on some model/core combinations (a batch-3 FC
    rounds up to the same cube tile as batch 4, a batch-5 conv pays a
    fresh one).  Calibration therefore {b refines} the anchor set to
    the error budget: every batch is priced once, interpolation error
    is measured, and the worst offending batch is promoted to an anchor
    until the max error is within budget (anchors reproduce exactly, so
    the loop terminates).  Smooth models keep the sparse geometric
    schedule; steppy ones buy exactly the anchors they need.  The
    promotion order (worst error first, smallest batch on ties) is
    deterministic, so the fitted table — and every downstream JSON — is
    too. *)

type row = {
  batch : int;
  anchor : bool;
  exact : Surrogate.entry;      (** Tier B: compile + simulate *)
  predicted : Surrogate.entry;  (** Tier A: interpolated *)
  cycles_pct_error : float;
}

type report = {
  model : string;
  core : string;
  max_batch : int;
  budget_pct : float;
  anchors : int list;             (** after refinement *)
  surrogate : Surrogate.t;
  rows : row list;                (** batches 1 .. max_batch, in order *)
  mean_abs_pct_error : float;     (** cycles, non-anchor rows; 0 if none *)
  max_abs_pct_error : float;
}

val price :
  service:Ascend_exec.Service.t ->
  core:Ascend_arch.Config.t ->
  build:(batch:int -> Ascend_nn.Graph.t) ->
  batch:int ->
  (Surrogate.entry, string) result
(** The exact oracle: compile+simulate [build ~batch] on [core] through
    [service] (so repeated group shapes resolve in its cache). *)

val fit :
  ?budget_pct:float ->
  model:string ->
  price:(batch:int -> (Surrogate.entry, string) result) ->
  max_batch:int ->
  unit ->
  (Surrogate.t, string) result
(** Price batches [1 .. max_batch] once each, start from
    {!Surrogate.anchor_batches}, and promote the worst-error batch to an
    anchor until every batch's cycle error is within [budget_pct]
    (default 5).  Raises [Invalid_argument] on [max_batch < 1] or a
    negative budget; [Error] when any batch fails to compile. *)

val run :
  ?budget_pct:float ->
  service:Ascend_exec.Service.t ->
  core:Ascend_arch.Config.t ->
  model:string ->
  build:(batch:int -> Ascend_nn.Graph.t) ->
  max_batch:int ->
  unit ->
  (report, string) result
(** {!fit} against the {!price} oracle, scored into a {!report}.  The
    reported max error is within [budget_pct] by construction — the CI
    gate re-checks it end to end.  Raises [Invalid_argument] on
    [max_batch < 1]; [Error] when any batch fails to compile. *)

val to_json : report -> Ascend_util.Json.t

val pp : ?verbose:bool -> unit -> Format.formatter -> report -> unit
(** One summary line; [~verbose:true] adds the per-batch table. *)
