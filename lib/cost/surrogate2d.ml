module Json = Ascend_util.Json

type t = {
  model : string;
  (* sorted by cache length, distinct; one batch surrogate per length;
     invariant established by [fit] *)
  rows : (int * Surrogate.t) array;
}

let anchor_lens ~max_len =
  if max_len < 1 then invalid_arg "Surrogate2d.anchor_lens: max_len < 1";
  let rec powers l acc = if l > max_len then acc else powers (2 * l) (l :: acc) in
  List.sort_uniq compare (max_len :: powers 1 [])

let probe_lens ~max_len =
  (* the anchor schedule plus the midpoint of every bracket: the
     validation grid the calibration drives the exact oracle over *)
  let anchors = anchor_lens ~max_len in
  let rec mids = function
    | a :: (b :: _ as rest) ->
      let m = (a + b) / 2 in
      if m > a && m < b then m :: mids rest else mids rest
    | _ -> []
  in
  List.sort_uniq compare (anchors @ mids anchors)

let fit ~model ~rows =
  match rows with
  | [] -> Error (model ^ ": no cache-length rows")
  | _ when List.exists (fun (l, _) -> l < 1) rows ->
    Error (model ^ ": cache length < 1")
  | _ ->
    let rows =
      Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) rows)
    in
    let dup = ref false in
    Array.iteri
      (fun i (l, _) -> if i > 0 && fst rows.(i - 1) = l then dup := true)
      rows;
    if !dup then Error (model ^ ": duplicate cache length")
    else if
      Array.exists (fun (_, s) -> Surrogate.model s <> model) rows
    then Error (model ^ ": row fitted for a different model")
    else Ok { model; rows }

let model t = t.model
let lens t = Array.to_list (Array.map fst t.rows)
let min_len t = fst t.rows.(0)
let max_len t = fst t.rows.(Array.length t.rows - 1)

let in_range t ~batch ~cache_len =
  cache_len >= min_len t
  && cache_len <= max_len t
  && Array.for_all (fun (_, s) -> Surrogate.in_range s ~batch) t.rows

(* largest index whose length is <= [cache_len]; caller checked range *)
let bracket t cache_len =
  let lo = ref 0 and hi = ref (Array.length t.rows - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if fst t.rows.(mid) <= cache_len then lo := mid else hi := mid
  done;
  if fst t.rows.(!hi) <= cache_len then !hi else !lo

let lookup t ~batch ~cache_len =
  if batch < 1 then invalid_arg "Surrogate2d.lookup: batch < 1";
  if cache_len < 1 then invalid_arg "Surrogate2d.lookup: cache_len < 1";
  if cache_len < min_len t || cache_len > max_len t then None
  else
    let i = bracket t cache_len in
    let l0, s0 = t.rows.(i) in
    if l0 = cache_len then Surrogate.lookup s0 ~batch
    else
      let l1, s1 = t.rows.(i + 1) in
      match (Surrogate.lookup s0 ~batch, Surrogate.lookup s1 ~batch) with
      | Some e0, Some e1 ->
        let w =
          float_of_int (cache_len - l0) /. float_of_int (l1 - l0)
        in
        let lerp a b = a +. ((b -. a) *. w) in
        Some
          {
            Surrogate.cycles =
              (let c =
                 lerp
                   (float_of_int e0.Surrogate.cycles)
                   (float_of_int e1.Surrogate.cycles)
               in
               max 1 (int_of_float (Float.round c)));
            latency_s = lerp e0.Surrogate.latency_s e1.Surrogate.latency_s;
            energy_j = lerp e0.Surrogate.energy_j e1.Surrogate.energy_j;
          }
      | _ -> None

let to_json t =
  Json.Obj
    [
      ("model", Json.String t.model);
      ( "rows",
        Json.List
          (Array.to_list t.rows
          |> List.map (fun (l, s) ->
                 Json.Obj
                   [ ("cache_len", Json.Int l); ("surrogate", Surrogate.to_json s) ])
          ) );
    ]
