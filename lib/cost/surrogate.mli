(** Tier A of the two-tier batch-latency oracle: a per-model
    piecewise-linear surrogate over anchor batch sizes.

    The serving loop prices every dispatched batch; the exact path
    rebuilds the model graph, partitions it into fused groups and hashes
    every group into the content-addressed cache on each call — cheap
    next to compilation, but it is the per-lookup floor that caps
    simulated traffic.  The surrogate removes it: a handful of anchor
    batch sizes are priced {e once} through the cycle-level path, and
    every later lookup interpolates linearly between the bracketing
    anchors in O(log anchors) with zero graph construction.

    Fidelity is the calibration oracle's business ({!Calibration}
    measures it, CI bounds it); this module only promises two structural
    properties: anchors are reproduced exactly, and interpolation
    between monotone anchors is monotone in the batch size (linear
    interpolation cannot overshoot its endpoints).

    The surrogate reports its own confidence range: a batch outside
    [[min_batch, max_batch]] would be an extrapolation, so {!lookup}
    returns [None] and the caller falls back to Tier B (the exact
    path). *)

type entry = {
  cycles : int;        (** one batch on one core *)
  latency_s : float;
  energy_j : float;
}

type t

val anchor_batches : max_batch:int -> int list
(** The default anchor schedule: 1 and every power of two up to
    [max_batch], plus [max_batch] itself; sorted, distinct.  Raises
    [Invalid_argument] on [max_batch < 1]. *)

val fit : model:string -> anchors:(int * entry) list -> (t, string) result
(** Build the table from already-priced anchors.  [Error] on an empty
    list, a batch below 1, or duplicate batches; order is irrelevant. *)

val calibrate :
  model:string ->
  batches:int list ->
  price:(batch:int -> (entry, string) result) ->
  (t, string) result
(** Price each anchor batch through [price] (Tier B) and {!fit} the
    table.  The first pricing error aborts calibration. *)

val model : t -> string

val anchors : t -> (int * entry) list
(** Sorted by batch. *)

val min_batch : t -> int
val max_batch : t -> int

val in_range : t -> batch:int -> bool
(** Whether [lookup] answers — i.e. the batch needs no extrapolation. *)

val lookup : t -> batch:int -> entry option
(** O(log anchors), no compilation: the anchor entry itself at an anchor
    batch, linear interpolation of cycles (rounded), latency and energy
    between the bracketing anchors otherwise, and [None] outside
    [[min_batch, max_batch]].  Raises [Invalid_argument] on
    [batch < 1]. *)

val to_json : t -> Ascend_util.Json.t
