module Service = Ascend_exec.Service
module Stats = Ascend_util.Stats
module Json = Ascend_util.Json

type cell = {
  cl_len : int;
  cl_batch : int;
  cl_anchor : bool;
  cl_exact : Surrogate.entry;
  cl_predicted : Surrogate.entry;
  cl_pct_error : float;
}

type report = {
  model : string;
  core : string;
  max_batch : int;
  max_len : int;
  budget_pct : float;
  len_anchors : int list;
  surrogate : Surrogate2d.t;
  cells : cell list;
  mean_abs_pct_error : float;
  max_abs_pct_error : float;
}

let price ~service ~core ~build ~batch ~cache_len =
  Calibration.price ~service ~core
    ~build:(fun ~batch -> build ~batch ~cache_len)
    ~batch

let cycles_error (exact : Surrogate.entry) (predicted : Surrogate.entry) =
  Stats.abs_pct_error
    ~reference:(float_of_int exact.Surrogate.cycles)
    ~estimate:(float_of_int predicted.Surrogate.cycles)

(* one 1-D batch calibration per cache length, memoised: the refinement
   loop may revisit a length after promoting another *)
let row_cache () = Hashtbl.create 16

let fit_row ~cache ~budget_pct ~model ~price ~max_batch len =
  match Hashtbl.find_opt cache len with
  | Some r -> r
  | None ->
    let r =
      Calibration.fit ~budget_pct ~model
        ~price:(fun ~batch -> price ~batch ~cache_len:len)
        ~max_batch ()
    in
    Hashtbl.add cache len r;
    r

(* exact entries over the whole probe grid, priced once each *)
let price_grid ~price ~max_batch ~probes =
  let tbl = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ok tbl
    | (len, batch) :: rest -> (
      match price ~batch ~cache_len:len with
      | Error _ as e -> e
      | Ok entry ->
        Hashtbl.add tbl (len, batch) entry;
        go rest)
  in
  go
    (List.concat_map
       (fun len -> List.init max_batch (fun i -> (len, i + 1)))
       probes)

(* Refinement on the length axis, mirroring Calibration.refine on the
   batch axis: fit rows at the current anchor lengths, measure cycle
   error over every probe (length, batch) point, and promote the worst
   offending length until the grid is within budget.  Each round adds
   one probe length as an anchor (its column then reproduces exactly up
   to the row's own <= budget batch error, which the measurement
   re-checks), and the probe set is finite, so the loop terminates. *)
let refine ~cache ~budget_pct ~model ~price ~max_batch ~probes ~exact anchors =
  let rec go anchors =
    let rec rows acc = function
      | [] -> Ok (List.rev acc)
      | len :: rest -> (
        match fit_row ~cache ~budget_pct ~model ~price ~max_batch len with
        | Error _ as e -> e
        | Ok s -> rows ((len, s) :: acc) rest)
    in
    match rows [] anchors with
    | Error _ as e -> e
    | Ok rows -> (
      match Surrogate2d.fit ~model ~rows with
      | Error _ as e -> e
      | Ok grid ->
        let worst = ref None in
        List.iter
          (fun len ->
            if not (List.mem len anchors) then
              for batch = 1 to max_batch do
                match Surrogate2d.lookup grid ~batch ~cache_len:len with
                | None -> ()
                | Some predicted ->
                  let err =
                    cycles_error (Hashtbl.find exact (len, batch)) predicted
                  in
                  (match !worst with
                  (* strict >: ties keep the smallest length/batch *)
                  | Some (_, e) when e >= err -> ()
                  | _ -> if err > budget_pct then worst := Some (len, err))
              done)
          probes;
        (match !worst with
        | None -> Ok grid
        | Some (len, _) -> go (List.sort compare (len :: anchors))))
  in
  go anchors

let fit ?(budget_pct = 5.) ~model ~price ~max_batch ~max_len () =
  if max_batch < 1 then invalid_arg "Calibration2d.fit: max_batch < 1";
  if max_len < 1 then invalid_arg "Calibration2d.fit: max_len < 1";
  if budget_pct < 0. then invalid_arg "Calibration2d.fit: negative budget";
  let probes = Surrogate2d.probe_lens ~max_len in
  match price_grid ~price ~max_batch ~probes with
  | Error _ as e -> e
  | Ok exact ->
    refine ~cache:(row_cache ()) ~budget_pct ~model ~price ~max_batch ~probes
      ~exact
      (Surrogate2d.anchor_lens ~max_len)

let run ?(budget_pct = 5.) ~service ~core ~model ~build ~max_batch ~max_len () =
  if max_batch < 1 then invalid_arg "Calibration2d.run: max_batch < 1";
  if max_len < 1 then invalid_arg "Calibration2d.run: max_len < 1";
  if budget_pct < 0. then invalid_arg "Calibration2d.run: negative budget";
  let price ~batch ~cache_len = price ~service ~core ~build ~batch ~cache_len in
  let probes = Surrogate2d.probe_lens ~max_len in
  match price_grid ~price ~max_batch ~probes with
  | Error _ as e -> e
  | Ok exact -> (
    match
      refine ~cache:(row_cache ()) ~budget_pct ~model ~price ~max_batch ~probes
        ~exact
        (Surrogate2d.anchor_lens ~max_len)
    with
    | Error _ as e -> e
    | Ok grid ->
      let len_anchors = Surrogate2d.lens grid in
      let cells =
        List.concat_map
          (fun len ->
            List.init max_batch (fun i ->
                let batch = i + 1 in
                let ex = Hashtbl.find exact (len, batch) in
                let predicted =
                  match Surrogate2d.lookup grid ~batch ~cache_len:len with
                  | Some e -> e
                  | None -> ex (* unreachable: probes lie inside the grid *)
                in
                {
                  cl_len = len;
                  cl_batch = batch;
                  cl_anchor =
                    List.mem len len_anchors
                    && cycles_error ex predicted = 0.;
                  cl_exact = ex;
                  cl_predicted = predicted;
                  cl_pct_error = cycles_error ex predicted;
                }))
          probes
      in
      let pairs =
        List.filter_map
          (fun c ->
            if c.cl_anchor then None
            else
              Some
                ( float_of_int c.cl_exact.Surrogate.cycles,
                  float_of_int c.cl_predicted.Surrogate.cycles ))
          cells
      in
      Ok
        {
          model;
          core = core.Ascend_arch.Config.name;
          max_batch;
          max_len;
          budget_pct;
          len_anchors;
          surrogate = grid;
          cells;
          mean_abs_pct_error = Stats.mean_abs_pct_error pairs;
          max_abs_pct_error = Stats.max_abs_pct_error pairs;
        })

let to_json r =
  Json.Obj
    [
      ("model", Json.String r.model);
      ("core", Json.String r.core);
      ("max_batch", Json.Int r.max_batch);
      ("max_len", Json.Int r.max_len);
      ("budget_pct", Json.Float r.budget_pct);
      ( "len_anchors",
        Json.List (List.map (fun l -> Json.Int l) r.len_anchors) );
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("cache_len", Json.Int c.cl_len);
                   ("batch", Json.Int c.cl_batch);
                   ("anchor", Json.Bool c.cl_anchor);
                   ("exact_cycles", Json.Int c.cl_exact.Surrogate.cycles);
                   ( "predicted_cycles",
                     Json.Int c.cl_predicted.Surrogate.cycles );
                   ("cycles_pct_error", Json.Float c.cl_pct_error);
                 ])
             r.cells) );
      ("mean_abs_pct_error", Json.Float r.mean_abs_pct_error);
      ("max_abs_pct_error", Json.Float r.max_abs_pct_error);
    ]

let pp ?(verbose = false) () ppf r =
  let non_anchor =
    List.length (List.filter (fun c -> not c.cl_anchor) r.cells)
  in
  Format.fprintf ppf
    "%-12s on %-12s lens [%s]  mean |err| %5.2f%%  max |err| %5.2f%%  (%d \
     interpolated points)@."
    r.model r.core
    (String.concat ";" (List.map string_of_int r.len_anchors))
    r.mean_abs_pct_error r.max_abs_pct_error non_anchor;
  if verbose then
    List.iter
      (fun c ->
        Format.fprintf ppf
          "    len %4d batch %2d%s  exact %10d cycles  surrogate %10d cycles  \
           err %5.2f%%@."
          c.cl_len c.cl_batch
          (if c.cl_anchor then " *" else "  ")
          c.cl_exact.Surrogate.cycles c.cl_predicted.Surrogate.cycles
          c.cl_pct_error)
      r.cells
