module Engine = Ascend_compiler.Engine
module Service = Ascend_exec.Service
module Stats = Ascend_util.Stats
module Json = Ascend_util.Json

type row = {
  batch : int;
  anchor : bool;
  exact : Surrogate.entry;
  predicted : Surrogate.entry;
  cycles_pct_error : float;
}

type report = {
  model : string;
  core : string;
  max_batch : int;
  budget_pct : float;
  anchors : int list;
  surrogate : Surrogate.t;
  rows : row list;
  mean_abs_pct_error : float;
  max_abs_pct_error : float;
}

let price ~service ~core ~build ~batch =
  match Service.run_inference service core (build ~batch) with
  | Error _ as e -> e
  | Ok nr ->
    Ok
      {
        Surrogate.cycles = nr.Engine.total_cycles;
        latency_s = Engine.seconds nr;
        energy_j = nr.Engine.total_energy_j;
      }

(* exact entries for every batch in 1..max_batch; each is priced once
   (and the service's group cache dedupes below that) *)
let price_all ~price ~max_batch =
  let rec go acc b =
    if b > max_batch then Ok (Array.of_list (List.rev acc))
    else
      match price ~batch:b with
      | Error _ as e -> e
      | Ok entry -> go (entry :: acc) (b + 1)
  in
  go [] 1

let cycles_error (exact : Surrogate.entry) (predicted : Surrogate.entry) =
  Stats.abs_pct_error
    ~reference:(float_of_int exact.Surrogate.cycles)
    ~estimate:(float_of_int predicted.Surrogate.cycles)

(* Refinement: fit on the current anchor set, find the worst
   interpolation error over all batches, and promote that batch to an
   anchor while the error exceeds the budget.  Each round adds one
   anchor (whose error then becomes exactly 0), so the loop does at
   most [max_batch] rounds and always ends within budget. *)
let fit_on ~model ~exact anchors =
  Surrogate.fit ~model
    ~anchors:(List.map (fun b -> (b, exact.(b - 1))) anchors)

let refine ~budget_pct ~model ~exact ~max_batch anchors =
  let rec go anchors =
    match fit_on ~model ~exact anchors with
    | Error _ as e -> e
    | Ok surrogate ->
      let worst = ref None in
      for b = 1 to max_batch do
        if not (List.mem b anchors) then
          match Surrogate.lookup surrogate ~batch:b with
          | None -> ()
          | Some predicted ->
            let err = cycles_error exact.(b - 1) predicted in
            (match !worst with
            (* strict >: ties keep the smallest batch, deterministically *)
            | Some (_, e) when e >= err -> ()
            | _ -> if err > budget_pct then worst := Some (b, err))
      done;
      (match !worst with
      | None -> Ok surrogate
      | Some (b, _) -> go (List.sort compare (b :: anchors)))
  in
  go anchors

let fit ?(budget_pct = 5.) ~model ~price ~max_batch () =
  if max_batch < 1 then invalid_arg "Calibration.fit: max_batch < 1";
  if budget_pct < 0. then invalid_arg "Calibration.fit: negative budget";
  match price_all ~price ~max_batch with
  | Error _ as e -> e
  | Ok exact ->
    refine ~budget_pct ~model ~exact ~max_batch
      (Surrogate.anchor_batches ~max_batch)

let run ?(budget_pct = 5.) ~service ~core ~model ~build ~max_batch () =
  if max_batch < 1 then invalid_arg "Calibration.run: max_batch < 1";
  if budget_pct < 0. then invalid_arg "Calibration.run: negative budget";
  let price ~batch = price ~service ~core ~build ~batch in
  match price_all ~price ~max_batch with
  | Error _ as e -> e
  | Ok exact -> (
    match
      refine ~budget_pct ~model ~exact ~max_batch
        (Surrogate.anchor_batches ~max_batch)
    with
    | Error _ as e -> e
    | Ok surrogate ->
      let anchors = List.map fst (Surrogate.anchors surrogate) in
      let rows =
        List.init max_batch (fun i ->
            let b = i + 1 in
            let ex = exact.(i) in
            let predicted =
              match Surrogate.lookup surrogate ~batch:b with
              | Some e -> e
              | None -> ex (* unreachable: b <= max_batch is in range *)
            in
            {
              batch = b;
              anchor = List.mem b anchors;
              exact = ex;
              predicted;
              cycles_pct_error = cycles_error ex predicted;
            })
      in
      let pairs =
        List.filter_map
          (fun r ->
            if r.anchor then None
            else
              Some
                ( float_of_int r.exact.Surrogate.cycles,
                  float_of_int r.predicted.Surrogate.cycles ))
          rows
      in
      Ok
        {
          model;
          core = core.Ascend_arch.Config.name;
          max_batch;
          budget_pct;
          anchors;
          surrogate;
          rows;
          mean_abs_pct_error = Stats.mean_abs_pct_error pairs;
          max_abs_pct_error = Stats.max_abs_pct_error pairs;
        })

let to_json r =
  Json.Obj
    [
      ("model", Json.String r.model);
      ("core", Json.String r.core);
      ("max_batch", Json.Int r.max_batch);
      ("budget_pct", Json.Float r.budget_pct);
      ("anchors", Json.List (List.map (fun b -> Json.Int b) r.anchors));
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("batch", Json.Int row.batch);
                   ("anchor", Json.Bool row.anchor);
                   ("exact_cycles", Json.Int row.exact.Surrogate.cycles);
                   ( "predicted_cycles",
                     Json.Int row.predicted.Surrogate.cycles );
                   ("cycles_pct_error", Json.Float row.cycles_pct_error);
                 ])
             r.rows) );
      ("mean_abs_pct_error", Json.Float r.mean_abs_pct_error);
      ("max_abs_pct_error", Json.Float r.max_abs_pct_error);
    ]

let pp ?(verbose = false) () ppf r =
  let non_anchor = List.length (List.filter (fun x -> not x.anchor) r.rows) in
  Format.fprintf ppf
    "%-12s on %-12s anchors [%s]  mean |err| %5.2f%%  max |err| %5.2f%%  (%d \
     interpolated batches)@."
    r.model r.core
    (String.concat ";" (List.map string_of_int r.anchors))
    r.mean_abs_pct_error r.max_abs_pct_error non_anchor;
  if verbose then
    List.iter
      (fun row ->
        Format.fprintf ppf
          "    batch %2d%s  exact %10d cycles  surrogate %10d cycles  err \
           %5.2f%%@."
          row.batch
          (if row.anchor then " *" else "  ")
          row.exact.Surrogate.cycles row.predicted.Surrogate.cycles
          row.cycles_pct_error)
      r.rows
