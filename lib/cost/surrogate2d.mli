(** The {!Surrogate}'s second interpolation axis, for autoregressive
    decode: latency is a function of (batch, KV-cache length), so the
    table becomes a grid — one batch surrogate per anchor cache length,
    bilinear between them.

    Each row is an independently calibrated {!Surrogate.t} (its batch
    anchors may differ per length: tiling steps move), and a lookup
    brackets the cache length, answers each bracketing row's batch
    interpolation, and lerps the two.  As in 1-D, anchors reproduce
    exactly and interpolation cannot overshoot its endpoints; fidelity
    between anchors is {!Calibration2d}'s business. *)

type t

val anchor_lens : max_len:int -> int list
(** 1 and every power of two up to [max_len], plus [max_len]; sorted,
    distinct.  Raises [Invalid_argument] on [max_len < 1]. *)

val probe_lens : max_len:int -> int list
(** The validation grid: {!anchor_lens} plus each bracket's midpoint —
    the cache lengths the calibration prices through the exact oracle
    to measure (and bound) interpolation error. *)

val fit : model:string -> rows:(int * Surrogate.t) list -> (t, string) result
(** Build the grid from per-length batch surrogates.  [Error] on an
    empty list, a length below 1, duplicate lengths, or a row fitted
    for a different model. *)

val model : t -> string

val lens : t -> int list
(** Anchor cache lengths, sorted. *)

val min_len : t -> int
val max_len : t -> int

val in_range : t -> batch:int -> cache_len:int -> bool
(** Whether {!lookup} answers without extrapolating on either axis. *)

val lookup : t -> batch:int -> cache_len:int -> Surrogate.entry option
(** O(log lens + log anchors): batch interpolation within the bracketing
    rows, linear in cache length between them; [None] outside the grid
    on either axis.  Raises [Invalid_argument] on [batch < 1] or
    [cache_len < 1]. *)

val to_json : t -> Ascend_util.Json.t
