(** Calibration protocol for the {!Surrogate2d} grid: decode latency is
    a function of (batch, KV-cache length), so both axes are priced
    against the exact compile+simulate oracle and refined until the
    interpolation error is within the same budget the 1-D protocol
    enforces.

    Pricing every cache length like the 1-D path prices every batch is
    unaffordable (lengths run to the model's max position), so the
    length axis validates on {!Surrogate2d.probe_lens} — the anchor
    schedule plus every bracket midpoint — instead of the full range:
    every (probe length, batch) point is priced exactly once, each
    anchor length gets a budget-refined 1-D batch calibration
    ({!Calibration.fit}), and the worst out-of-budget probe length is
    promoted to an anchor until the whole measured grid is within
    budget.  The promotion order is deterministic, so the fitted grid —
    and every downstream JSON — is too.  CI runs
    [ascend_cli calibrate --decode] and fails when the decode model's
    max cycle error exceeds the budget. *)

type cell = {
  cl_len : int;
  cl_batch : int;
  cl_anchor : bool;   (** reproduced exactly by the fitted grid *)
  cl_exact : Surrogate.entry;
  cl_predicted : Surrogate.entry;
  cl_pct_error : float;
}

type report = {
  model : string;
  core : string;
  max_batch : int;
  max_len : int;
  budget_pct : float;
  len_anchors : int list;      (** after refinement *)
  surrogate : Surrogate2d.t;
  cells : cell list;           (** probe lengths x batches, length-major *)
  mean_abs_pct_error : float;  (** cycles, non-anchor cells; 0 if none *)
  max_abs_pct_error : float;
}

val price :
  service:Ascend_exec.Service.t ->
  core:Ascend_arch.Config.t ->
  build:(batch:int -> cache_len:int -> Ascend_nn.Graph.t) ->
  batch:int ->
  cache_len:int ->
  (Surrogate.entry, string) result
(** The exact oracle at a grid point. *)

val fit :
  ?budget_pct:float ->
  model:string ->
  price:(batch:int -> cache_len:int -> (Surrogate.entry, string) result) ->
  max_batch:int ->
  max_len:int ->
  unit ->
  (Surrogate2d.t, string) result
(** Default budget 5%.  Raises [Invalid_argument] on non-positive
    bounds or a negative budget; [Error] when any point fails to
    compile. *)

val run :
  ?budget_pct:float ->
  service:Ascend_exec.Service.t ->
  core:Ascend_arch.Config.t ->
  model:string ->
  build:(batch:int -> cache_len:int -> Ascend_nn.Graph.t) ->
  max_batch:int ->
  max_len:int ->
  unit ->
  (report, string) result
(** {!fit} against the {!price} oracle, scored into a {!report}; the
    reported max error is within budget by construction and the CI gate
    re-checks it end to end. *)

val to_json : report -> Ascend_util.Json.t

val pp : ?verbose:bool -> unit -> Format.formatter -> report -> unit
(** One summary line; [~verbose:true] adds the per-point table. *)
