module Load_gen = Ascend_serving.Load_gen

type t = {
  id : int;
  arrival_s : float;
  prompt_len : int;
  output_len : int;
}

type outcome = Completed | Shed

type record = {
  request : t;
  outcome : outcome;
  admit_s : float;
  first_token_s : float;
  finish_s : float;
  itl_s : float list;
}

let shed request =
  {
    request;
    outcome = Shed;
    admit_s = request.arrival_s;
    first_token_s = request.arrival_s;
    finish_s = request.arrival_s;
    itl_s = [];
  }

let ttft_s r = r.first_token_s -. r.request.arrival_s

let tokens r = match r.outcome with Completed -> r.request.output_len | Shed -> 0

(* the three per-request streams (arrivals, prompt lengths, output
   lengths) draw from independently derived seeds so changing one
   distribution never perturbs the samples of another *)
let of_load_gen ~gen ~prompt ~output =
  let arrivals = Load_gen.arrivals gen in
  let n = List.length arrivals in
  let seed = gen.Load_gen.seed in
  let prompts = Load_gen.lengths prompt ~seed:((2 * seed) + 1) ~n in
  let outputs = Load_gen.lengths output ~seed:((2 * seed) + 2) ~n in
  List.mapi
    (fun id (arrival_s, (prompt_len, output_len)) ->
      { id; arrival_s; prompt_len; output_len })
    (List.combine arrivals (List.combine prompts outputs))

let validate r =
  if r.prompt_len < 1 then invalid_arg "Decode.Request: prompt_len < 1";
  if r.output_len < 1 then invalid_arg "Decode.Request: output_len < 1"
