(** A generation request: a prompt to prefill, then [output_len] tokens
    to decode.  Arrival times and both length streams are seeded draws
    ({!of_load_gen}), so a decode trace is a pure function of its spec. *)

type t = {
  id : int;
  arrival_s : float;
  prompt_len : int;   (** tokens prefilled into the KV cache *)
  output_len : int;   (** tokens generated (the first comes out of prefill) *)
}

type outcome =
  | Completed
  | Shed
      (** Rejected at admission: the request could never fit — its KV
          cache alone overflows the engine's HBM budget, or
          [prompt_len + output_len] exceeds the model's max position. *)

type record = {
  request : t;
  outcome : outcome;
  admit_s : float;        (** prefill start *)
  first_token_s : float;  (** prefill finish — the first output token *)
  finish_s : float;       (** last token *)
  itl_s : float list;     (** inter-token gaps, [output_len - 1] entries *)
}

val shed : t -> record

val ttft_s : record -> float
(** Time to first token: [first_token_s - arrival_s]. *)

val tokens : record -> int
(** Tokens actually generated: [output_len] when completed, 0 when shed. *)

val of_load_gen :
  gen:Ascend_serving.Load_gen.t ->
  prompt:Ascend_serving.Load_gen.length_dist ->
  output:Ascend_serving.Load_gen.length_dist ->
  t list
(** One request per arrival of [gen], prompt and output lengths drawn
    from their distributions under seeds derived from [gen]'s — three
    independent streams, one spec. *)

val validate : t -> unit
(** Raises [Invalid_argument] on a non-positive prompt or output
    length. *)
