(** The phase-aware latency oracle behind the decode engine: one LLM
    config on one core, priced separately for its two phases.

    {b Prefill} runs once per request, so it stays on the exact
    compile+simulate tier behind a (batch, prompt-length) memo — repeats
    are free, and the private {!Ascend_exec.Service} caches at the
    fused-group level below that.

    {b Decode steps} are the volume term — one per generated token — and
    their latency is a function of (batch, KV-cache length).  [`Exact]
    prices each distinct point through the oracle (memoised);
    [`Surrogate] fits the {!Ascend_cost.Surrogate2d} grid on first use
    via {!Ascend_cost.Calibration2d.fit} (max cycle error within the 5%
    budget by construction) and interpolates, falling back to the exact
    tier outside the grid.

    Both tiers are deterministic, counters included; the service is
    private and single-domain so an engine run is a pure function of its
    inputs ([ASCEND_CACHE_DIR] being the documented disk-tier
    exception). *)

type entry = Ascend_cost.Surrogate.entry = {
  cycles : int;
  latency_s : float;
  energy_j : float;
}

type costing = [ `Exact | `Surrogate ]

type t

val create :
  ?costing:costing ->
  ?max_batch:int ->
  ?max_cache_len:int ->
  core:Ascend_arch.Config.t ->
  Ascend_nn.Llm.config ->
  unit ->
  t
(** [costing] defaults to [`Exact]; [max_batch] (default 8) and
    [max_cache_len] (default 64) bound the surrogate grid.  Raises
    [Invalid_argument] on non-positive bounds or a [max_cache_len] at or
    past the model's max position (a decode step appends one token). *)

val core : t -> Ascend_arch.Config.t
val costing : t -> costing
val llm : t -> Ascend_nn.Llm.config

val prefill : t -> batch:int -> prompt_len:int -> (entry, string) result
(** Exact-tier price of prefilling a [prompt_len]-token prompt at
    [batch].  Raises [Invalid_argument] on non-positive arguments. *)

val decode_step : t -> batch:int -> cache_len:int -> (entry, string) result
(** Price of one decode step: [batch] sequences each appending one token
    against a [cache_len]-position cache.  Raises [Invalid_argument] on
    non-positive arguments. *)

val hits : t -> int
val misses : t -> int
(** Fused-group cache counters of the exact tier, calibration included;
    [misses] counts actual compile+simulate runs. *)

val interpolated : t -> int
(** Decode steps answered by the surrogate grid (0 under [`Exact]). *)

val fallbacks : t -> int
(** Surrogate-mode decode steps outside the grid, answered exactly. *)

val stats : t -> Ascend_exec.Cache.stats
