module Memory_planner = Ascend_compiler.Memory_planner
module Llm = Ascend_nn.Llm
module Stats = Ascend_util.Stats
module Json = Ascend_util.Json
module Obs = Ascend_obs

type mode = Continuous | Static

let mode_name = function Continuous -> "continuous" | Static -> "static"

type config = {
  core : Ascend_arch.Config.t;
  llm : Llm.config;
  mode : mode;
  costing : Cost.costing;
  max_batch : int;
  hbm_bytes : int;
  max_cache_len : int;
}

let default_config ~core () =
  {
    core;
    llm = Llm.tiny_config;
    mode = Continuous;
    costing = `Exact;
    max_batch = 8;
    hbm_bytes = 1 lsl 30;
    max_cache_len = 64;
  }

type result = {
  run_config : config;
  records : Request.record list;
  steps : Metrics.step list;
  metrics : Metrics.t;
  weight_bytes : int;
  kv_peak_bytes : int;
  cost_hits : int;
  cost_misses : int;
  cost_interpolated : int;
  cost_fallbacks : int;
  cost_stats : Ascend_exec.Cache.stats;
}

exception Cost_error of string

let eps = 1e-12

(* one sequence in flight: created at prefill, mutated once per decode
   step, retired at a token boundary *)
type slot = {
  sl_req : Request.t;
  sl_admit_s : float;
  sl_first_token_s : float;
  mutable sl_cache_len : int;
  mutable sl_generated : int;
  mutable sl_last_token_s : float;
  mutable sl_itl_rev : float list;
  (* static batching keeps finished sequences in the group (padding)
     until every member is done; continuous retires them immediately *)
  mutable sl_active : bool;
}

let validate config =
  if config.max_batch < 1 then invalid_arg "Decode.Engine.run: max_batch < 1";
  if config.hbm_bytes < 1 then invalid_arg "Decode.Engine.run: hbm_bytes < 1";
  if config.max_cache_len < 1 then
    invalid_arg "Decode.Engine.run: max_cache_len < 1"

let run config requests =
  validate config;
  List.iter Request.validate requests;
  let requests =
    List.sort
      (fun (a : Request.t) (b : Request.t) ->
        compare (a.arrival_s, a.id) (b.arrival_s, b.id))
      requests
  in
  let cost =
    Cost.create ~costing:config.costing ~max_batch:config.max_batch
      ~max_cache_len:config.max_cache_len ~core:config.core config.llm ()
  in
  let weight_bytes =
    (Memory_planner.plan (Llm.decode ~batch:1 ~cache_len:1 config.llm))
      .Memory_planner.weight_bytes
  in
  let kv_per_token = Llm.kv_bytes_per_token config.llm in
  (* worst-case cache positions a request ever holds: the prompt plus
     every decoded token but the last (appended by the final step) *)
  let reserve (r : Request.t) = r.prompt_len + r.output_len - 1 in
  let feasible (r : Request.t) =
    r.prompt_len + r.output_len <= config.llm.Llm.max_position
    && weight_bytes + (kv_per_token * reserve r) <= config.hbm_bytes
  in
  let obs_pid =
    if not (Obs.Hook.enabled ()) then -1
    else begin
      let pid =
        Obs.Hook.alloc_pid
          ~name:
            (Printf.sprintf "decode:%s:%s"
               config.core.Ascend_arch.Config.name (mode_name config.mode))
      in
      Obs.Hook.name_thread ~pid ~tid:0 "steps";
      Obs.Hook.name_thread ~pid ~tid:1 "requests";
      pid
    end
  in
  let us t = t *. 1e6 in
  let pending = ref requests in
  let waiting = Queue.create () in
  let running = ref [] in
  let now = ref 0. in
  let kv_reserved = ref 0 in
  let kv_peak = ref 0 in
  let records = ref [] in
  let steps = ref [] in
  let live_kv_bytes () =
    kv_per_token
    * List.fold_left (fun acc sl -> acc + sl.sl_cache_len) 0 !running
  in
  let note_kv () =
    let live = live_kv_bytes () in
    if live > !kv_peak then kv_peak := live;
    if obs_pid >= 0 then
      Obs.Hook.counter ~cat:"decode" ~name:"kv_bytes" ~pid:obs_pid ~tid:0
        ~ts:(us !now) ~value:(float_of_int live) ()
  in
  let admit () =
    let rec go () =
      match !pending with
      | r :: rest when r.Request.arrival_s <= !now +. eps ->
        pending := rest;
        if feasible r then Queue.add r waiting
        else begin
          records := Request.shed r :: !records;
          if obs_pid >= 0 then
            Obs.Hook.instant
              ~args:[ ("id", Obs.Event.Int r.Request.id) ]
              ~cat:"request" ~name:"shed" ~pid:obs_pid ~tid:1
              ~ts:(us r.Request.arrival_s) ()
        end;
        go ()
      | _ -> ()
    in
    go ()
  in
  let fits (r : Request.t) =
    weight_bytes + (kv_per_token * (!kv_reserved + reserve r))
    <= config.hbm_bytes
  in
  let push_step kind ~batch ~tokens ~cache_len ~start_s ~finish_s ~cycles =
    steps :=
      {
        Metrics.st_kind = kind;
        st_batch = batch;
        st_tokens = tokens;
        st_cache_len = cache_len;
        st_start_s = start_s;
        st_finish_s = finish_s;
        st_cycles = cycles;
      }
      :: !steps;
    if obs_pid >= 0 then begin
      Obs.Hook.span
        ~args:
          [
            ("batch", Obs.Event.Int batch);
            ("tokens", Obs.Event.Int tokens);
            ("cache_len", Obs.Event.Int cache_len);
            ("cycles", Obs.Event.Int cycles);
          ]
        ~cat:"decode"
        ~name:(Metrics.step_kind_name kind)
        ~pid:obs_pid ~tid:0 ~ts:(us start_s)
        ~dur:(us (finish_s -. start_s))
        ();
      Obs.Hook.counter ~cat:"decode" ~name:"batch" ~pid:obs_pid ~tid:0
        ~ts:(us finish_s)
        ~value:(float_of_int (List.length !running))
        ()
    end
  in
  let retire sl =
    let r = sl.sl_req in
    records :=
      {
        Request.request = r;
        outcome = Request.Completed;
        admit_s = sl.sl_admit_s;
        first_token_s = sl.sl_first_token_s;
        finish_s = sl.sl_last_token_s;
        itl_s = List.rev sl.sl_itl_rev;
      }
      :: !records;
    kv_reserved := !kv_reserved - reserve r;
    if obs_pid >= 0 then begin
      Obs.Hook.span
        ~args:
          [
            ("id", Obs.Event.Int r.Request.id);
            ("prompt", Obs.Event.Int r.Request.prompt_len);
            ("output", Obs.Event.Int r.Request.output_len);
          ]
        ~cat:"request" ~name:"generate" ~pid:obs_pid ~tid:1
        ~ts:(us r.Request.arrival_s)
        ~dur:(us (sl.sl_last_token_s -. r.Request.arrival_s))
        ();
      Obs.Hook.instant
        ~args:[ ("id", Obs.Event.Int r.Request.id) ]
        ~cat:"request" ~name:"done" ~pid:obs_pid ~tid:1
        ~ts:(us sl.sl_last_token_s) ()
    end
  in
  let prefill_head () =
    let r = Queue.pop waiting in
    let entry =
      match Cost.prefill cost ~batch:1 ~prompt_len:r.Request.prompt_len with
      | Ok e -> e
      | Error e -> raise (Cost_error e)
    in
    let start_s = !now in
    let finish_s = start_s +. entry.Cost.latency_s in
    now := finish_s;
    let sl =
      {
        sl_req = r;
        sl_admit_s = start_s;
        sl_first_token_s = finish_s;
        sl_cache_len = r.Request.prompt_len;
        sl_generated = 1;
        sl_last_token_s = finish_s;
        sl_itl_rev = [];
        sl_active = r.Request.output_len > 1;
      }
    in
    running := !running @ [ sl ];
    kv_reserved := !kv_reserved + reserve r;
    push_step Metrics.Prefill ~batch:1 ~tokens:r.Request.prompt_len
      ~cache_len:0 ~start_s ~finish_s ~cycles:entry.Cost.cycles;
    note_kv ()
  in
  let decode_step () =
    let group = !running in
    let batch = List.length group in
    let cache_len =
      List.fold_left (fun acc sl -> max acc sl.sl_cache_len) 0 group
    in
    let active = List.filter (fun sl -> sl.sl_active) group in
    let entry =
      match Cost.decode_step cost ~batch ~cache_len with
      | Ok e -> e
      | Error e -> raise (Cost_error e)
    in
    let start_s = !now in
    let finish_s = start_s +. entry.Cost.latency_s in
    now := finish_s;
    List.iter
      (fun sl ->
        sl.sl_itl_rev <- (finish_s -. sl.sl_last_token_s) :: sl.sl_itl_rev;
        sl.sl_last_token_s <- finish_s;
        sl.sl_cache_len <- sl.sl_cache_len + 1;
        sl.sl_generated <- sl.sl_generated + 1;
        if sl.sl_generated >= sl.sl_req.Request.output_len then
          sl.sl_active <- false)
      active;
    push_step Metrics.Decode ~batch
      ~tokens:(List.length active)
      ~cache_len ~start_s ~finish_s ~cycles:entry.Cost.cycles;
    note_kv ()
  in
  let retire_finished () =
    let done_, live = List.partition (fun sl -> not sl.sl_active) !running in
    running := live;
    List.iter retire done_
  in
  let advance_to_next_arrival () =
    match !pending with
    | r :: _ ->
      now := Float.max !now r.Request.arrival_s;
      true
    | [] -> false
  in
  let rec continuous_loop () =
    admit ();
    let room = List.length !running < config.max_batch in
    let head_fits =
      (not (Queue.is_empty waiting)) && fits (Queue.peek waiting)
    in
    if room && head_fits then begin
      prefill_head ();
      retire_finished ();
      continuous_loop ()
    end
    else if !running <> [] then begin
      decode_step ();
      retire_finished ();
      continuous_loop ()
    end
    else if advance_to_next_arrival () then continuous_loop ()
  in
  (* static baseline: form a group from the queue, prefill every member,
     then decode the whole group — priced at the full group size, padding
     included — until the longest member finishes; nobody joins mid-run *)
  let rec static_loop () =
    admit ();
    if !running <> [] then begin
      if List.for_all (fun sl -> not sl.sl_active) !running then begin
        let group = !running in
        running := [];
        List.iter retire group
      end
      else decode_step ();
      static_loop ()
    end
    else if not (Queue.is_empty waiting) then begin
      while
        List.length !running < config.max_batch
        && (not (Queue.is_empty waiting))
        && fits (Queue.peek waiting)
      do
        prefill_head ()
      done;
      static_loop ()
    end
    else if advance_to_next_arrival () then static_loop ()
  in
  match
    match config.mode with
    | Continuous -> continuous_loop ()
    | Static -> static_loop ()
  with
  | () ->
    let records =
      List.sort
        (fun (a : Request.record) (b : Request.record) ->
          compare a.request.Request.id b.request.Request.id)
        !records
    in
    let steps = List.rev !steps in
    Ok
      {
        run_config = config;
        records;
        steps;
        metrics = Metrics.build ~records ~steps;
        weight_bytes;
        kv_peak_bytes = !kv_peak;
        cost_hits = Cost.hits cost;
        cost_misses = Cost.misses cost;
        cost_interpolated = Cost.interpolated cost;
        cost_fallbacks = Cost.fallbacks cost;
        cost_stats = Cost.stats cost;
      }
  | exception Cost_error e -> Error e

let speedup ~continuous ~static =
  Stats.ratio continuous.metrics.Metrics.tokens_per_s
    static.metrics.Metrics.tokens_per_s

let costing_name = function `Exact -> "exact" | `Surrogate -> "surrogate"

let to_json r =
  let c = r.run_config in
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("core", Json.String c.core.Ascend_arch.Config.name);
            ("mode", Json.String (mode_name c.mode));
            ("costing", Json.String (costing_name c.costing));
            ("max_batch", Json.Int c.max_batch);
            ("hbm_bytes", Json.Int c.hbm_bytes);
            ("max_cache_len", Json.Int c.max_cache_len);
            ( "llm",
              Json.Obj
                [
                  ("layers", Json.Int c.llm.Llm.layers);
                  ("hidden", Json.Int c.llm.Llm.hidden);
                  ("heads", Json.Int c.llm.Llm.heads);
                  ("max_position", Json.Int c.llm.Llm.max_position);
                ] );
          ] );
      ("metrics", Metrics.to_json r.metrics);
      ( "memory",
        Json.Obj
          [
            ("weight_bytes", Json.Int r.weight_bytes);
            ("kv_peak_bytes", Json.Int r.kv_peak_bytes);
          ] );
      ("steps", Json.Int (List.length r.steps));
      ( "cost_cache",
        Json.Obj
          [
            ("hits", Json.Int r.cost_hits);
            ("misses", Json.Int r.cost_misses);
            ("interpolated", Json.Int r.cost_interpolated);
            ("fallbacks", Json.Int r.cost_fallbacks);
          ] );
    ]

let pp ppf r =
  Format.fprintf ppf "%s batching on %s (%s costing):@."
    (mode_name r.run_config.mode)
    r.run_config.core.Ascend_arch.Config.name
    (costing_name r.run_config.costing);
  Format.fprintf ppf "%a" Metrics.pp r.metrics;
  Format.fprintf ppf "memory: %a weights + %a KV peak of %a HBM; %d steps@."
    Ascend_util.Units.pp_bytes r.weight_bytes Ascend_util.Units.pp_bytes
    r.kv_peak_bytes Ascend_util.Units.pp_bytes r.run_config.hbm_bytes
    (List.length r.steps);
  Format.fprintf ppf
    "latency cache: %d compile+simulate runs, %d cached lookups@."
    r.cost_misses r.cost_hits;
  if r.run_config.costing = `Surrogate then
    Format.fprintf ppf
      "surrogate: %d interpolated steps, %d out-of-grid fallbacks@."
      r.cost_interpolated r.cost_fallbacks
