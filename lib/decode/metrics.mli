(** Per-token SLO metrics of one decode run, built from the request
    records and the engine's step log.  All times are virtual (simulated
    seconds), so the numbers — and their JSON — are byte-reproducible. *)

type step_kind = Prefill | Decode

type step = {
  st_kind : step_kind;
  st_batch : int;      (** sequences in the step (1 for prefill) *)
  st_tokens : int;     (** tokens processed: prompt length or batch size *)
  st_cache_len : int;  (** priced cache length; 0 for prefill *)
  st_start_s : float;
  st_finish_s : float;
  st_cycles : int;
}

type t = {
  completed : int;
  shed : int;
  total_tokens : int;     (** generated tokens across completed requests *)
  makespan_s : float;     (** last token time *)
  tokens_per_s : float;   (** goodput: generated tokens / makespan *)
  ttft_p50_ms : float;
  ttft_p95_ms : float;
  ttft_p99_ms : float;
  itl_mean_ms : float;    (** inter-token latency over all gaps *)
  itl_p50_ms : float;
  itl_p95_ms : float;
  itl_p99_ms : float;
  mean_decode_batch : float;
      (** time-weighted sequences per decode step — the continuous
          batcher's occupancy win over static batching shows up here *)
  prefill_busy_s : float;
  decode_busy_s : float;
}

val step_kind_name : step_kind -> string

val build : records:Request.record list -> steps:step list -> t
(** Percentiles are nearest-rank ({!Ascend_util.Stats.percentile}); an
    empty sample yields 0. *)

val to_json : t -> Ascend_util.Json.t

val pp : Format.formatter -> t -> unit
