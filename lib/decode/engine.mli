(** The decode serving engine: a deterministic discrete-event loop that
    drives one LLM's two-phase generation on one core, in either of two
    batching disciplines.

    {b Continuous} (the tentpole): requests join and leave the running
    batch at token boundaries.  At each step the engine eagerly admits
    the oldest waiting request whenever the batch has a free slot and
    the KV-cache reservation fits the HBM budget (prefill interleaved
    with in-flight decode steps); otherwise it runs one decode step for
    the whole batch, and sequences that reach their output length retire
    immediately, freeing their slot and cache.

    {b Static} (the baseline): a batch is formed from the queue, every
    member is prefilled, and the group then decodes in lockstep — priced
    at the full group size, padding included — until the longest member
    finishes.  Nobody joins mid-run, which is exactly the occupancy loss
    continuous batching recovers ({!speedup}).

    Costs come from the phase-aware oracle ({!Cost}); KV residency is
    conservatively reserved at admission (prompt + output - 1 positions,
    {!Ascend_nn.Llm.kv_bytes_per_token} each) against
    [hbm_bytes - weights], so no sequence is ever evicted mid-flight.
    A request that could never fit is shed at arrival.  Time is virtual
    throughout; a run — metrics, JSON, trace — is a pure function of its
    inputs. *)

type mode = Continuous | Static

val mode_name : mode -> string

type config = {
  core : Ascend_arch.Config.t;
  llm : Ascend_nn.Llm.config;
  mode : mode;
  costing : Cost.costing;
  max_batch : int;        (** batch slots (sequences in flight) *)
  hbm_bytes : int;        (** budget for weights + every live KV cache *)
  max_cache_len : int;    (** surrogate grid bound ({!Cost.create}) *)
}

val default_config : core:Ascend_arch.Config.t -> unit -> config
(** Continuous, exact costing, tiny LLM, batch 8, 1 GiB HBM, grid to
    cache length 64. *)

type result = {
  run_config : config;
  records : Request.record list;  (** sorted by request id *)
  steps : Metrics.step list;      (** execution order *)
  metrics : Metrics.t;
  weight_bytes : int;
  kv_peak_bytes : int;            (** high-water mark of live KV state *)
  cost_hits : int;
  cost_misses : int;
  cost_interpolated : int;
  cost_fallbacks : int;
  cost_stats : Ascend_exec.Cache.stats;
}

val run : config -> Request.t list -> (result, string) Stdlib.result
(** Serve the requests (sorted internally by arrival, then id) to
    completion.  [Error] when the oracle fails to compile a phase;
    raises [Invalid_argument] on invalid config or request fields. *)

val speedup : continuous:result -> static:result -> float
(** Goodput ratio [continuous.tokens_per_s / static.tokens_per_s]. *)

val to_json : result -> Ascend_util.Json.t

val pp : Format.formatter -> result -> unit
