module Stats = Ascend_util.Stats
module Json = Ascend_util.Json

type step_kind = Prefill | Decode

type step = {
  st_kind : step_kind;
  st_batch : int;
  st_tokens : int;
  st_cache_len : int;
  st_start_s : float;
  st_finish_s : float;
  st_cycles : int;
}

type t = {
  completed : int;
  shed : int;
  total_tokens : int;
  makespan_s : float;
  tokens_per_s : float;
  ttft_p50_ms : float;
  ttft_p95_ms : float;
  ttft_p99_ms : float;
  itl_mean_ms : float;
  itl_p50_ms : float;
  itl_p95_ms : float;
  itl_p99_ms : float;
  mean_decode_batch : float;
  prefill_busy_s : float;
  decode_busy_s : float;
}

let step_kind_name = function Prefill -> "prefill" | Decode -> "decode"

let build ~records ~steps =
  let completed =
    List.filter (fun r -> r.Request.outcome = Request.Completed) records
  in
  let shed =
    List.length
      (List.filter (fun r -> r.Request.outcome = Request.Shed) records)
  in
  let total_tokens =
    List.fold_left (fun acc r -> acc + Request.tokens r) 0 completed
  in
  let makespan_s =
    List.fold_left (fun acc r -> Float.max acc r.Request.finish_s) 0. completed
  in
  let ttft = Stats.sorted_of_list (List.map Request.ttft_s completed) in
  let itl_all = List.concat_map (fun r -> r.Request.itl_s) completed in
  let itl = Stats.sorted_of_list itl_all in
  let p q a = if Array.length a = 0 then 0. else Stats.percentile_of_sorted q a in
  let ms x = 1e3 *. x in
  let dur st = st.st_finish_s -. st.st_start_s in
  let busy kind =
    List.fold_left
      (fun acc st -> if st.st_kind = kind then acc +. dur st else acc)
      0. steps
  in
  let decode_busy_s = busy Decode in
  let weighted_batch =
    List.fold_left
      (fun acc st ->
        if st.st_kind = Decode then acc +. (float_of_int st.st_batch *. dur st)
        else acc)
      0. steps
  in
  {
    completed = List.length completed;
    shed;
    total_tokens;
    makespan_s;
    tokens_per_s =
      (if makespan_s > 0. then float_of_int total_tokens /. makespan_s else 0.);
    ttft_p50_ms = ms (p 50. ttft);
    ttft_p95_ms = ms (p 95. ttft);
    ttft_p99_ms = ms (p 99. ttft);
    itl_mean_ms = ms (Stats.mean itl_all);
    itl_p50_ms = ms (p 50. itl);
    itl_p95_ms = ms (p 95. itl);
    itl_p99_ms = ms (p 99. itl);
    mean_decode_batch =
      (if decode_busy_s > 0. then weighted_batch /. decode_busy_s else 0.);
    prefill_busy_s = busy Prefill;
    decode_busy_s;
  }

let to_json m =
  Json.Obj
    [
      ("completed", Json.Int m.completed);
      ("shed", Json.Int m.shed);
      ("total_tokens", Json.Int m.total_tokens);
      ("makespan_s", Json.Float m.makespan_s);
      ("tokens_per_s", Json.Float m.tokens_per_s);
      ( "ttft_ms",
        Json.Obj
          [
            ("p50", Json.Float m.ttft_p50_ms);
            ("p95", Json.Float m.ttft_p95_ms);
            ("p99", Json.Float m.ttft_p99_ms);
          ] );
      ( "itl_ms",
        Json.Obj
          [
            ("mean", Json.Float m.itl_mean_ms);
            ("p50", Json.Float m.itl_p50_ms);
            ("p95", Json.Float m.itl_p95_ms);
            ("p99", Json.Float m.itl_p99_ms);
          ] );
      ("mean_decode_batch", Json.Float m.mean_decode_batch);
      ("prefill_busy_s", Json.Float m.prefill_busy_s);
      ("decode_busy_s", Json.Float m.decode_busy_s);
    ]

let pp ppf m =
  Format.fprintf ppf
    "requests: %d completed, %d shed; %d tokens in %.3f s (%.1f tok/s)@."
    m.completed m.shed m.total_tokens m.makespan_s m.tokens_per_s;
  Format.fprintf ppf "TTFT ms: p50 %.2f  p95 %.2f  p99 %.2f@." m.ttft_p50_ms
    m.ttft_p95_ms m.ttft_p99_ms;
  Format.fprintf ppf "ITL  ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f@."
    m.itl_mean_ms m.itl_p50_ms m.itl_p95_ms m.itl_p99_ms;
  Format.fprintf ppf
    "decode occupancy: %.2f mean batch; busy %.3f s prefill, %.3f s decode@."
    m.mean_decode_batch m.prefill_busy_s m.decode_busy_s
