module Engine = Ascend_compiler.Engine
module Service = Ascend_exec.Service
module Surrogate = Ascend_cost.Surrogate
module Surrogate2d = Ascend_cost.Surrogate2d
module Calibration2d = Ascend_cost.Calibration2d
module Llm = Ascend_nn.Llm

type entry = Surrogate.entry = {
  cycles : int;
  latency_s : float;
  energy_j : float;
}

type costing = [ `Exact | `Surrogate ]

(* Phase-aware pricing for one LLM on one core.  Same shape as the
   serving oracle (private single-domain service, deltas folded into the
   oracle's own counters) with two differences: decode steps are a
   function of (batch, cache length) so the surrogate tier is the 2-D
   grid of {!Ascend_cost.Surrogate2d}, and prefill — once per request,
   never the volume term — stays on the exact tier behind a
   (batch, prompt length) memo. *)
type t = {
  core : Ascend_arch.Config.t;
  cfg : Llm.config;
  costing : costing;
  max_batch : int;
  max_cache_len : int;
  service : Service.t;
  mutable grid : Surrogate2d.t option;
  prefill_memo : (int * int, entry) Hashtbl.t;
  decode_memo : (int * int, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable interpolated : int;
  mutable fallbacks : int;
}

let create ?(costing = `Exact) ?(max_batch = 8) ?(max_cache_len = 64) ~core cfg
    () =
  if max_batch < 1 then invalid_arg "Decode.Cost.create: max_batch < 1";
  if max_cache_len < 1 then invalid_arg "Decode.Cost.create: max_cache_len < 1";
  if max_cache_len >= cfg.Llm.max_position then
    invalid_arg "Decode.Cost.create: max_cache_len >= llm max_position";
  {
    core;
    cfg;
    costing;
    max_batch;
    max_cache_len;
    service = Service.create ~jobs:1 ?dir:(Service.env_cache_dir ()) ();
    grid = None;
    prefill_memo = Hashtbl.create 32;
    decode_memo = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    interpolated = 0;
    fallbacks = 0;
  }

let core t = t.core
let costing t = t.costing
let llm t = t.cfg

let exact t graph =
  let before = Service.stats t.service in
  let r =
    match Service.run_inference t.service t.core graph with
    | Error _ as e -> e
    | Ok nr ->
      Ok
        {
          cycles = nr.Engine.total_cycles;
          latency_s = Engine.seconds nr;
          energy_j = nr.Engine.total_energy_j;
        }
  in
  let after = Service.stats t.service in
  t.hits <-
    t.hits + (after.Ascend_exec.Cache.hits - before.Ascend_exec.Cache.hits);
  t.misses <-
    t.misses
    + (after.Ascend_exec.Cache.misses - before.Ascend_exec.Cache.misses);
  r

let prefill t ~batch ~prompt_len =
  if batch < 1 then invalid_arg "Decode.Cost.prefill: batch < 1";
  if prompt_len < 1 then invalid_arg "Decode.Cost.prefill: prompt_len < 1";
  match Hashtbl.find_opt t.prefill_memo (batch, prompt_len) with
  | Some e -> Ok e
  | None -> (
    match exact t (Llm.prefill ~batch ~seq_len:prompt_len t.cfg) with
    | Error _ as e -> e
    | Ok e ->
      Hashtbl.replace t.prefill_memo (batch, prompt_len) e;
      Ok e)

let exact_decode t ~batch ~cache_len =
  match Hashtbl.find_opt t.decode_memo (batch, cache_len) with
  | Some e -> Ok e
  | None -> (
    match exact t (Llm.decode ~batch ~cache_len t.cfg) with
    | Error _ as e -> e
    | Ok e ->
      Hashtbl.replace t.decode_memo (batch, cache_len) e;
      Ok e)

let grid t =
  match t.grid with
  | Some g -> Ok g
  | None -> (
    let r =
      Calibration2d.fit ~model:"llm-decode"
        ~price:(fun ~batch ~cache_len -> exact_decode t ~batch ~cache_len)
        ~max_batch:t.max_batch ~max_len:t.max_cache_len ()
    in
    match r with
    | Ok g ->
      t.grid <- Some g;
      r
    | Error _ -> r)

let decode_step t ~batch ~cache_len =
  if batch < 1 then invalid_arg "Decode.Cost.decode_step: batch < 1";
  if cache_len < 1 then invalid_arg "Decode.Cost.decode_step: cache_len < 1";
  match t.costing with
  | `Exact -> exact_decode t ~batch ~cache_len
  | `Surrogate -> (
    match grid t with
    | Error _ as e -> e
    | Ok g -> (
      match
        if Surrogate2d.in_range g ~batch ~cache_len then
          Surrogate2d.lookup g ~batch ~cache_len
        else None
      with
      | Some e ->
        t.interpolated <- t.interpolated + 1;
        Ok e
      | None ->
        (* past the grid on either axis: extrapolation is outside the
           calibrated budget, so answer exactly instead *)
        t.fallbacks <- t.fallbacks + 1;
        exact_decode t ~batch ~cache_len))

let hits t = t.hits
let misses t = t.misses
let interpolated t = t.interpolated
let fallbacks t = t.fallbacks
let stats t = Service.stats t.service
