(* Fleet serving (lib/fleet): placement plan structure, router policy
   semantics, end-to-end conservation laws, page-in behaviour, training
   colocation and byte-identical determinism. *)

module Config = Ascend.Arch.Config
module Fleet = Ascend.Fleet.Fleet
module Router = Ascend.Fleet.Router
module Placement = Ascend.Fleet.Placement
module Serve = Ascend.Serving.Serve
module Load_gen = Ascend.Serving.Load_gen
module Request = Ascend.Serving.Request
module Metrics = Ascend.Serving.Metrics
module Json = Ascend.Util.Json

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)

let test_placement_structure () =
  let p =
    Placement.build ~nodes:4
      [ ("hot", 10, 0, 0); ("cold", 20, 0, 1); ("warm", 5, 0, 2) ]
  in
  let hot = Placement.find p "hot" in
  Alcotest.(check (list int)) "hot everywhere" [ 0; 1; 2; 3 ]
    hot.Placement.replicas;
  let cold = Placement.find p "cold" in
  Alcotest.(check int) "cold on one node" 1 (List.length cold.Placement.replicas);
  Alcotest.(check (list int)) "cold pinned to home" [ cold.Placement.home ]
    cold.Placement.replicas;
  let warm = Placement.find p "warm" in
  Alcotest.(check int) "warm on two nodes" 2 (List.length warm.Placement.replicas);
  Alcotest.(check bool) "home is a replica" true
    (List.mem warm.Placement.home warm.Placement.replicas);
  List.iter
    (fun n -> Alcotest.(check bool) "replica in range" true (n >= 0 && n < 4))
    warm.Placement.replicas;
  Alcotest.(check bool) "resident matches replicas" true
    (Placement.resident p ~model:"cold" ~node:cold.Placement.home);
  (* a second build is byte-identical: placement is pure *)
  let p2 =
    Placement.build ~nodes:4
      [ ("hot", 10, 0, 0); ("cold", 20, 0, 1); ("warm", 5, 0, 2) ]
  in
  Alcotest.(check string) "pure function of specs"
    (Json.to_string (Placement.to_json p))
    (Json.to_string (Placement.to_json p2));
  Alcotest.check_raises "duplicate models rejected"
    (Invalid_argument "Placement.build: duplicate model names") (fun () ->
      ignore (Placement.build ~nodes:2 [ ("m", 1, 0, 0); ("m", 1, 0, 0) ]))

let test_placement_hbm_capacity () =
  (* a model whose weights alone overflow a node's HBM is unservable on
     any node — build refuses the plan outright *)
  Alcotest.check_raises "oversized model rejected"
    (Invalid_argument
       "Placement.build: model big weights (100 B) + kv cache (0 B) exceed \
        a node's 10 B HBM — unservable on any node")
    (fun () ->
      ignore
        (Placement.build ~hbm_bytes_per_node:10 ~nodes:2
           [ ("small", 5, 0, 0); ("big", 100, 0, 1) ]));
  (* reserved KV cache counts against capacity just like weights *)
  Alcotest.check_raises "kv cache counted against HBM"
    (Invalid_argument
       "Placement.build: model kv weights (4 B) + kv cache (8 B) exceed \
        a node's 10 B HBM — unservable on any node")
    (fun () ->
      ignore
        (Placement.build ~hbm_bytes_per_node:10 ~nodes:2
           [ ("kv", 4, 8, 0) ]));
  (* fitting weights build fine with the capacity given *)
  let p =
    Placement.build ~hbm_bytes_per_node:10 ~nodes:2
      [ ("small", 5, 0, 0); ("other", 8, 2, 1) ]
  in
  Alcotest.(check int) "both placed" 2 (List.length p.Placement.entries)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)

let test_router_policies () =
  let p = Placement.build ~nodes:4 [ ("cold", 8, 0, 1); ("hot", 8, 0, 0) ] in
  let rr = Router.create ~policy:Router.Round_robin ~nodes:4 () in
  let picks =
    List.init 5 (fun _ ->
        Router.route rr ~placement:p ~model:"hot" ~depths:[| 9; 9; 9; 9 |])
  in
  Alcotest.(check (list int)) "round-robin cycles" [ 0; 1; 2; 3; 0 ] picks;
  let ll = Router.create ~policy:Router.Least_loaded ~nodes:4 () in
  Alcotest.(check int) "least-loaded picks the min" 2
    (Router.route ll ~placement:p ~model:"hot" ~depths:[| 3; 2; 1; 2 |]);
  Alcotest.(check int) "ties break to the lowest index" 1
    (Router.route ll ~placement:p ~model:"hot" ~depths:[| 3; 1; 1; 1 |]);
  let af = Router.create ~policy:Router.Model_affinity ~nodes:4 () in
  let home = (Placement.find p "cold").Placement.home in
  Alcotest.(check int) "affinity sticks to the replica set" home
    (Router.route af ~placement:p ~model:"cold" ~depths:[| 0; 0; 0; 0 |])

(* ------------------------------------------------------------------ *)
(* End-to-end fleet runs (tiny core + int8 nets: fast to compile)      *)

let gesture ~batch = Ascend.Nn.Gesture.build ~batch ()
let face_detect ~batch = Ascend.Nn.Face_detect.build ~batch ()

let open_spec ?(rate = 300.) ?(replicas = 0) ?(seed = 3) name build =
  {
    Fleet.name;
    build;
    priority = 0;
    slo_ms = 50.;
    replicas;
    kv_bytes = 0;
    workload =
      Serve.Open_loop
        (Load_gen.create ~rate_per_s:rate ~duration_s:0.2 ~seed ());
  }

let small_config ?(nodes = 4) ?(policy = Router.Least_loaded) () =
  {
    (Fleet.default_config ~core:Config.tiny ~nodes) with
    Fleet.cores_per_node = 2;
    duration_s = 0.2;
    max_batch = 4;
    policy;
  }

let run_ok ?train config specs =
  match Fleet.run ?train config specs with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_fleet_conservation () =
  let r =
    run_ok
      (small_config ~policy:Router.Round_robin ())
      [ open_spec "gesture" gesture; open_spec "face-detect" face_detect ]
  in
  let total = List.length r.Fleet.records in
  Alcotest.(check bool) "requests flowed" true (total > 0);
  (* every record was routed somewhere, and per-node counts add up *)
  let routed_sum =
    List.fold_left (fun a nr -> a + nr.Fleet.routed) 0 r.Fleet.node_reports
  in
  Alcotest.(check int) "routed covers every request" total routed_sum;
  let completed (m : Metrics.t) =
    List.fold_left (fun a s -> a + s.Metrics.completed) 0 m.Metrics.summaries
  in
  let node_completed =
    List.fold_left
      (fun a nr -> a + nr.Fleet.completed)
      0 r.Fleet.node_reports
  in
  Alcotest.(check int) "fleet completions = sum of node completions"
    (completed r.Fleet.fleet_metrics)
    node_completed;
  let route_routed =
    List.fold_left (fun a rc -> a + rc.Fleet.rc_routed) 0 r.Fleet.routes
  in
  Alcotest.(check int) "routing breakdown covers every request" total
    route_routed;
  List.iter
    (fun s ->
      Alcotest.(check int) "offered = completed + rejected" s.Metrics.offered
        (s.Metrics.completed + s.Metrics.rejected))
    r.Fleet.fleet_metrics.Metrics.summaries;
  (* the breakdown has one cell per (node, model) *)
  Alcotest.(check int) "cells" (4 * 2) (List.length r.Fleet.routes)

let test_fleet_deterministic () =
  let run () =
    run_ok
      (small_config ~policy:Router.Round_robin ())
      [
        open_spec "gesture" gesture;
        open_spec ~replicas:1 "face-detect" face_detect;
      ]
  in
  let a = Json.to_string (Fleet.to_json (run ())) in
  let b = Json.to_string (Fleet.to_json (run ())) in
  Alcotest.(check string) "byte-identical across runs" a b;
  (* and a different seed is a different run *)
  let c =
    Json.to_string
      (Fleet.to_json
         (run_ok
            (small_config ~policy:Router.Round_robin ())
            [
              open_spec ~seed:11 "gesture" gesture;
              open_spec ~replicas:1 ~seed:12 "face-detect" face_detect;
            ]))
  in
  Alcotest.(check bool) "seed changes the run" true (a <> c)

let test_cold_model_pages_in () =
  (* round-robin spreads the cold model over nodes that don't hold its
     weights: every non-home node pays exactly one page-in *)
  let specs =
    [ open_spec "gesture" gesture;
      open_spec ~replicas:1 "face-detect" face_detect ]
  in
  let rr = run_ok (small_config ~policy:Router.Round_robin ()) specs in
  Alcotest.(check bool) "round-robin pages the cold model in" true
    (rr.Fleet.total_page_ins > 0);
  Alcotest.(check bool) "at most one page-in per (node, model)" true
    (rr.Fleet.total_page_ins <= 4);
  List.iter
    (fun rc ->
      if rc.Fleet.rc_model = "gesture" then
        Alcotest.(check bool) "hot model never pages" false rc.Fleet.rc_paged)
    rr.Fleet.routes;
  (* affinity routes only to resident nodes: no page-in ever *)
  let af = run_ok (small_config ~policy:Router.Model_affinity ()) specs in
  Alcotest.(check int) "affinity never pages" 0 af.Fleet.total_page_ins

let test_predicted_page_ins_match_observed () =
  (* the static verifier's per-node page-in prediction on the run's own
     placement plan equals what the run observes — the page-in half of
     the lint --cluster differential gate (odd node count, so the
     round-robin rotor visits every node for every model) *)
  let specs =
    [ open_spec "gesture" gesture;
      open_spec ~replicas:1 "face-detect" face_detect ]
  in
  List.iter
    (fun policy ->
      let r = run_ok (small_config ~nodes:3 ~policy ()) specs in
      let plan =
        Placement.verify_plan ~policy:(Router.policy_name policy)
          r.Fleet.placement
      in
      let predicted = Ascend.Verify.Cluster.predicted_page_ins plan in
      let observed = Fleet.observed_page_ins r in
      Alcotest.(check (array int))
        ("prediction matches the run under " ^ Router.policy_name policy)
        predicted observed;
      (* and the two sides of the CI gate serialise byte-identically *)
      Alcotest.(check string) "differential document agrees"
        (Json.to_string
           (Fleet.pagein_json ~policy ~placement:r.Fleet.placement
              ~counts:predicted))
        (Json.to_string
           (Fleet.pagein_json ~policy ~placement:r.Fleet.placement
              ~counts:observed)))
    [ Router.Round_robin; Router.Model_affinity ]

let test_training_colocation () =
  let train =
    { Fleet.tj_model = "gesture"; tj_build = gesture; tj_batch = 8; tj_nodes = 2 }
  in
  let r = run_ok ~train (small_config ()) [ open_spec "gesture" gesture ] in
  (match r.Fleet.training with
  | None -> Alcotest.fail "expected a training report"
  | Some t ->
    Alcotest.(check bool) "step time positive" true (t.Fleet.tr_step_s > 0.);
    Alcotest.(check bool) "interconnect share in (0, 0.95]" true
      (t.Fleet.tr_interconnect_util > 0.
      && t.Fleet.tr_interconnect_util <= 0.95));
  List.iter
    (fun nr ->
      let expect_training = nr.Fleet.node < 2 in
      Alcotest.(check bool) "colocation on the first K nodes" expect_training
        nr.Fleet.colocated_training;
      Alcotest.(check bool) "contention only where colocated" expect_training
        (nr.Fleet.train_interconnect_util > 0.))
    r.Fleet.node_reports

let test_fleet_json_shape () =
  let r =
    run_ok
      (small_config ())
      [ open_spec "gesture" gesture ]
  in
  match Json.of_string (Json.to_string (Fleet.to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok (Json.Obj fields) ->
    List.iter
      (fun k ->
        Alcotest.(check bool) ("has " ^ k) true (List.mem_assoc k fields))
      [ "config"; "placement"; "training"; "fleet"; "nodes"; "routing";
        "batches"; "cost_cache" ]
  | Ok _ -> Alcotest.fail "expected a JSON object"

let () =
  Alcotest.run "fleet"
    [
      ( "placement",
        [
          Alcotest.test_case "structure" `Quick test_placement_structure;
          Alcotest.test_case "hbm capacity" `Quick test_placement_hbm_capacity;
        ] );
      ( "router",
        [ Alcotest.test_case "policies" `Quick test_router_policies ] );
      ( "fleet",
        [
          Alcotest.test_case "conservation" `Quick test_fleet_conservation;
          Alcotest.test_case "deterministic" `Quick test_fleet_deterministic;
          Alcotest.test_case "page-in" `Quick test_cold_model_pages_in;
          Alcotest.test_case "predicted page-ins" `Quick
            test_predicted_page_ins_match_observed;
          Alcotest.test_case "training colocation" `Quick
            test_training_colocation;
          Alcotest.test_case "json shape" `Quick test_fleet_json_shape;
        ] );
    ]
