open Ascend.Util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fp16                                                               *)

let test_fp16_known_values () =
  check_float "one" 1. (Fp16.to_float Fp16.one);
  check_float "zero" 0. (Fp16.to_float Fp16.zero);
  check_float "max" 65504. (Fp16.to_float (Fp16.of_float 65504.));
  check_float "half" 0.5 (Fp16.to_float (Fp16.of_float 0.5));
  check_float "third rounds" 0.333251953125 (Fp16.round_float (1. /. 3.));
  Alcotest.(check bool) "inf" true (Fp16.is_inf (Fp16.of_float 1e6));
  Alcotest.(check bool) "neg inf" true (Fp16.is_inf (Fp16.of_float (-1e6)));
  Alcotest.(check bool) "nan" true (Fp16.is_nan (Fp16.of_float nan));
  Alcotest.(check bool)
    "subnormal" true
    (Fp16.is_subnormal (Fp16.of_float 1e-7))

let test_fp16_boundaries () =
  (* 65519.999 rounds down to 65504; 65520 is the tie to infinity *)
  check_float "just below overflow" 65504. (Fp16.round_float 65519.9);
  Alcotest.(check bool) "tie overflows" true
    (Fp16.is_inf (Fp16.of_float 65520.));
  check_float "min normal" Fp16.min_positive_normal
    (Fp16.round_float Fp16.min_positive_normal);
  check_float "min subnormal" Fp16.min_positive_subnormal
    (Fp16.round_float Fp16.min_positive_subnormal);
  check_float "underflow" 0. (Fp16.round_float 1e-9);
  check_float "neg zero keeps sign" 0. (Fp16.round_float (-1e-9));
  Alcotest.(check int) "neg zero bits" 0x8000
    (Fp16.bits (Fp16.of_float (-1e-9)))

let test_fp16_neg () =
  check_float "neg" (-2.5) (Fp16.to_float (Fp16.neg (Fp16.of_float 2.5)))

let fp16_roundtrip_prop =
  QCheck.Test.make ~count:1000 ~name:"fp16 roundtrip is idempotent"
    QCheck.(float_range (-65000.) 65000.)
    (fun x ->
      let once = Fp16.round_float x in
      let twice = Fp16.round_float once in
      once = twice)

let fp16_error_bound_prop =
  QCheck.Test.make ~count:1000 ~name:"fp16 relative error < 2^-10 (normals)"
    QCheck.(float_range 0.001 60000.)
    (fun x ->
      let r = Fp16.round_float x in
      Float.abs (r -. x) /. x <= Fp16.epsilon)

let fp16_order_prop =
  QCheck.Test.make ~count:500 ~name:"fp16 rounding is monotone"
    QCheck.(pair (float_range (-60000.) 60000.) (float_range (-60000.) 60000.))
    (fun (a, b) ->
      let a, b = if a <= b then (a, b) else (b, a) in
      Fp16.round_float a <= Fp16.round_float b)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)

let test_stats () =
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "mean empty" 0. (Stats.mean []);
  check_float "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  check_float "stddev" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_float "p50" 2. (Stats.percentile 50. [ 3.; 1.; 2. ]);
  check_float "p0" 1. (Stats.percentile 0. [ 3.; 1.; 2. ]);
  check_float "p100" 3. (Stats.percentile 100. [ 3.; 1.; 2. ]);
  check_float "ratio" 2. (Stats.ratio 4. 2.);
  Alcotest.(check bool) "ratio by zero" true (Stats.ratio 1. 0. = infinity);
  check_float "ratio zero zero" 0. (Stats.ratio 0. 0.);
  Alcotest.(check int) "divide_round_up exact" 4 (Stats.divide_round_up 16 4);
  Alcotest.(check int) "divide_round_up up" 5 (Stats.divide_round_up 17 4);
  Alcotest.(check int) "round_up_to" 32 (Stats.round_up_to ~multiple:16 17);
  Alcotest.check_raises "bad divisor" (Invalid_argument
    "Stats.divide_round_up: non-positive divisor") (fun () ->
      ignore (Stats.divide_round_up 1 0))

let test_percentile_nearest_rank () =
  (* pinned semantics: nearest-rank, value at rank ceil(p/100 * n) —
     always an element of the sample *)
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile 50. []));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0,100]") (fun () ->
      ignore (Stats.percentile 101. [ 1. ]));
  (* singleton: every p returns the element *)
  List.iter
    (fun p -> check_float "singleton" 7. (Stats.percentile p [ 7. ]))
    [ 0.; 1.; 50.; 99.; 100. ];
  (* two samples: p <= 50 -> first, p > 50 -> second *)
  check_float "two p0" 10. (Stats.percentile 0. [ 20.; 10. ]);
  check_float "two p50" 10. (Stats.percentile 50. [ 20.; 10. ]);
  check_float "two p50.1" 20. (Stats.percentile 50.1 [ 20.; 10. ]);
  check_float "two p75" 20. (Stats.percentile 75. [ 20.; 10. ]);
  check_float "two p100" 20. (Stats.percentile 100. [ 20.; 10. ]);
  (* n=10 over 1..10: p95 is the 10th order statistic, not 9.55 *)
  let xs = List.init 10 (fun i -> float_of_int (i + 1)) in
  check_float "ten p50" 5. (Stats.percentile 50. xs);
  check_float "ten p90" 9. (Stats.percentile 90. xs);
  check_float "ten p95" 10. (Stats.percentile 95. xs);
  check_float "ten p99" 10. (Stats.percentile 99. xs)

let percentile_member_prop =
  QCheck.Test.make ~count:500
    ~name:"nearest-rank percentile is an element of the sample"
    QCheck.(
      pair (float_range 0. 100.)
        (list_of_size (Gen.int_range 1 20) (float_range (-50.) 50.)))
    (fun (p, xs) -> List.mem (Stats.percentile p xs) xs)

let percentile_of_sorted_prop =
  QCheck.Test.make ~count:500
    ~name:"percentile_of_sorted agrees with percentile"
    QCheck.(
      pair (float_range 0. 100.)
        (list_of_size (Gen.int_range 1 20) (float_range (-50.) 50.)))
    (fun (p, xs) ->
      Stats.percentile_of_sorted p (Stats.sorted_of_list xs)
      = Stats.percentile p xs)

let test_pct_error () =
  (* 10% overestimate and 10% underestimate of 100 *)
  check_float "over" 10. (Stats.abs_pct_error ~reference:100. ~estimate:110.);
  check_float "under" 10. (Stats.abs_pct_error ~reference:100. ~estimate:90.);
  check_float "exact" 0. (Stats.abs_pct_error ~reference:42. ~estimate:42.);
  (* zero reference follows the ratio convention *)
  check_float "zero-zero" 0. (Stats.abs_pct_error ~reference:0. ~estimate:0.);
  Alcotest.(check bool)
    "zero reference, nonzero estimate" true
    (Stats.abs_pct_error ~reference:0. ~estimate:1. = infinity);
  (* negative references are scored on magnitude *)
  check_float "negative reference" 10.
    (Stats.abs_pct_error ~reference:(-100.) ~estimate:(-110.));
  check_float "mean" 15.
    (Stats.mean_abs_pct_error [ (100., 110.); (100., 80.) ]);
  check_float "max" 20.
    (Stats.max_abs_pct_error [ (100., 110.); (100., 80.) ]);
  check_float "mean empty" 0. (Stats.mean_abs_pct_error []);
  check_float "max empty" 0. (Stats.max_abs_pct_error [])

let div_up_prop =
  QCheck.Test.make ~count:500 ~name:"divide_round_up is a ceiling"
    QCheck.(pair (int_range 0 100000) (int_range 1 1000))
    (fun (a, b) ->
      let q = Stats.divide_round_up a b in
      (q * b >= a) && ((q - 1) * b < a || q = 0))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:42 in
  let child = Prng.split a in
  Alcotest.(check bool) "diverged" true (Prng.bits64 a <> Prng.bits64 child)

let prng_int_bound_prop =
  QCheck.Test.make ~count:500 ~name:"prng int respects bound"
    QCheck.(pair (int_range 1 10000) (int_range 0 1000))
    (fun (bound, seed) ->
      let rng = Prng.create ~seed in
      let v = Prng.int rng ~bound in
      v >= 0 && v < bound)

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:7 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_prng_gaussian_moments () =
  let rng = Prng.create ~seed:11 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Prng.gaussian rng ~mu:3. ~sigma:2.) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (Stats.mean xs -. 3.) < 0.1);
  Alcotest.(check bool) "stddev near 2" true
    (Float.abs (Stats.stddev xs -. 2.) < 0.1)

(* ------------------------------------------------------------------ *)
(* Fairness                                                           *)

let test_max_min_fair_basic () =
  let a = Fairness.max_min_fair ~capacity:10. ~demands:[| 2.; 20. |] in
  check_float "small demand satisfied" 2. a.(0);
  check_float "big demand gets rest" 8. a.(1)

let test_max_min_fair_equal_split () =
  let a = Fairness.max_min_fair ~capacity:9. ~demands:[| 100.; 100.; 100. |] in
  Array.iter (fun v -> check_float "equal thirds" 3. v) a

let fairness_props =
  QCheck.Test.make ~count:300 ~name:"max-min fair: feasible and demand-capped"
    QCheck.(pair (float_range 0. 100.) (list_of_size (Gen.int_range 1 8)
      (float_range 0. 50.)))
    (fun (capacity, demands) ->
      let demands = Array.of_list demands in
      let a = Fairness.max_min_fair ~capacity ~demands in
      let total = Array.fold_left ( +. ) 0. a in
      total <= capacity +. 1e-6
      && Array.for_all2 (fun alloc d -> alloc <= d +. 1e-6) a demands)

let fairness_work_conserving =
  QCheck.Test.make ~count:300
    ~name:"max-min fair is work conserving when demand exceeds capacity"
    QCheck.(pair (float_range 1. 100.) (list_of_size (Gen.int_range 1 8)
      (float_range 1. 50.)))
    (fun (capacity, demands) ->
      let demands = Array.of_list demands in
      let total_demand = Array.fold_left ( +. ) 0. demands in
      let a = Fairness.max_min_fair ~capacity ~demands in
      let total = Array.fold_left ( +. ) 0. a in
      Float.abs (total -. Float.min capacity total_demand) < 1e-4)

(* ------------------------------------------------------------------ *)
(* Units / Table                                                      *)

let test_units () =
  check_float "4TB/s at 1GHz" 4000. (Units.bytes_per_cycle_of_gbps
    ~bandwidth_gb_s:4000. ~frequency_ghz:1.);
  check_float "768GB/s at 0.75GHz" 1024. (Units.bytes_per_cycle_of_gbps
    ~bandwidth_gb_s:768. ~frequency_ghz:0.75);
  check_float "cycles to seconds" 1e-6
    (Units.seconds_of_cycles ~cycles:1000 ~frequency_ghz:1.);
  Alcotest.(check string) "pp_bytes" "64.0 KiB"
    (Format.asprintf "%a" Units.pp_bytes (64 * 1024));
  Alcotest.(check string) "pp_seconds ms" "1.50 ms"
    (Format.asprintf "%a" Units.pp_seconds 1.5e-3)

let test_table () =
  let t = Table.create ~header:[ "a"; "b" ] () in
  Table.add_row t [ "1"; "2" ];
  Table.add_separator t;
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains cells" true (String.contains s '3');
  Alcotest.(check bool) "has rules" true (String.contains s '+');
  Alcotest.check_raises "row width mismatch"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Table.add_row t [ "x" ]);
  Alcotest.(check string) "ratio cell" "1.71x" (Table.cell_ratio 1.71)

(* ------------------------------------------------------------------ *)
(* Json                                                               *)

module Json = Ascend.Util.Json

let test_json_rendering () =
  let doc =
    Json.Obj
      [
        ("name", Json.String "a\"b\\c\nd\t");
        ("n", Json.Int (-3));
        ("xs", Json.List [ Json.Bool true; Json.Null; Json.Float 0.5 ]);
        ("empty", Json.Obj []);
      ]
  in
  Alcotest.(check string) "compact"
    {|{"name":"a\"b\\c\nd\t","n":-3,"xs":[true,null,0.5],"empty":{}}|}
    (Json.to_string doc);
  (* pretty output parses back the same structure textually *)
  Alcotest.(check bool) "pretty is multi-line" true
    (String.contains (Json.to_string ~pretty:true doc) '\n')

let test_json_float_repr () =
  let s f = Json.to_string (Json.Float f) in
  (* integers render with a trailing .0, everything else via %.9g, and
     non-finite values become null (valid JSON, unlike nan/inf) *)
  Alcotest.(check string) "integer-valued" "2.0" (s 2.);
  Alcotest.(check string) "negative zero is zero" "-0.0" (s (-0.));
  Alcotest.(check string) "fractional" "0.333333333" (s (1. /. 3.));
  Alcotest.(check string) "nan -> null" "null" (s Float.nan);
  Alcotest.(check string) "inf -> null" "null" (s Float.infinity)

let test_json_escape_goldens () =
  (* pinned escaping table: named short escapes for the common control
     characters, \u00XX for the rest, and nothing else is touched *)
  Alcotest.(check string) "quote" {|a\"b|} (Json.escape "a\"b");
  Alcotest.(check string) "backslash" {|a\\b|} (Json.escape "a\\b");
  Alcotest.(check string) "newline" {|\n|} (Json.escape "\n");
  Alcotest.(check string) "carriage return" {|\r|} (Json.escape "\r");
  Alcotest.(check string) "tab" {|\t|} (Json.escape "\t");
  Alcotest.(check string) "SOH" {|\u0001|} (Json.escape "\x01");
  Alcotest.(check string) "backspace" {|\u0008|} (Json.escape "\b");
  Alcotest.(check string) "form feed" {|\u000c|} (Json.escape "\x0c");
  Alcotest.(check string) "unit sep" {|\u001f|} (Json.escape "\x1f");
  Alcotest.(check string) "0x20 untouched" " ~" (Json.escape " ~");
  (* bytes >= 0x80 pass through: UTF-8 payloads survive unmangled *)
  Alcotest.(check string) "utf8 passthrough" "caf\xc3\xa9"
    (Json.escape "caf\xc3\xa9")

let test_json_float_repr_goldens () =
  (* pinned boundary behaviour of the %.1f / %.9g switchover at 1e15 *)
  Alcotest.(check string) "below cutoff keeps .0" "999999999999999.0"
    (Json.float_repr 999999999999999.0);
  Alcotest.(check string) "at cutoff uses %.9g" "1e+15"
    (Json.float_repr 1e15);
  Alcotest.(check string) "tiny" "1e-300" (Json.float_repr 1e-300);
  Alcotest.(check string) "neg inf -> null" "null"
    (Json.float_repr Float.neg_infinity);
  Alcotest.(check string) "agrees with renderer" (Json.float_repr 0.25)
    (Json.to_string (Json.Float 0.25))

let test_json_parse_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\t\x01 caf\xc3\xa9");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.125);
        ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  (match Json.of_string (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "compact round-trip" true (doc = doc')
  | Error e -> Alcotest.fail ("parse failed: " ^ e));
  (match Json.of_string (Json.to_string ~pretty:true doc) with
  | Ok doc' -> Alcotest.(check bool) "pretty round-trip" true (doc = doc')
  | Error e -> Alcotest.fail ("pretty parse failed: " ^ e));
  (* \uXXXX escapes decode to UTF-8, including surrogate pairs *)
  (match Json.of_string {|"\u00e9 \ud83d\ude00"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "unicode escapes" "\xc3\xa9 \xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escape parse failed");
  (* malformed inputs are errors, not exceptions *)
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; {|{"a":1,}|}; "tru"; {|"\ud800"|}; "1 2"; "nan" ]

let test_json_deterministic () =
  (* field order is the construction order: two structurally equal
     documents print identically — the serving layer's byte-identical
     reproducibility contract rests on this *)
  let mk () =
    Json.Obj
      [ ("a", Json.Float 0.1); ("b", Json.List [ Json.Int 1; Json.Int 2 ]) ]
  in
  Alcotest.(check string) "stable" (Json.to_string (mk ()))
    (Json.to_string (mk ()));
  Alcotest.(check string) "stable pretty"
    (Json.to_string ~pretty:true (mk ()))
    (Json.to_string ~pretty:true (mk ()))

(* ------------------------------------------------------------------ *)
(* Stable_hash                                                        *)

let test_stable_hash_known () =
  (* FNV-1a reference vectors: the digest must never drift, it is the
     execution service's cache address *)
  let hex s = Stable_hash.(to_hex (string empty s)) in
  Alcotest.(check string)
    "offset basis" "cbf29ce484222325"
    Stable_hash.(to_hex empty);
  Alcotest.(check string)
    "FNV-1a of 'a'" "af63dc4c8601ec8c"
    Stable_hash.(to_hex (char empty 'a'));
  Alcotest.(check bool) "distinct strings" true (hex "abc" <> hex "abd");
  (* length prefix: concatenation is not ambiguous *)
  Alcotest.(check bool)
    "ab+c <> a+bc" true
    Stable_hash.(
      to_hex (string (string empty "ab") "c")
      <> to_hex (string (string empty "a") "bc"))

let test_stable_hash_floats () =
  let h f = Stable_hash.(to_hex (float empty f)) in
  Alcotest.(check string) "same float same hash" (h 3.14) (h 3.14);
  Alcotest.(check bool) "different float" true (h 3.14 <> h 3.15);
  Alcotest.(check bool) "+0 vs -0 distinct bits" true (h 0. <> h (-0.))

let test_domain_pool_ordered () =
  let pool = Domain_pool.create ~jobs:4 () in
  let xs = List.init 100 (fun i -> i) in
  let ys = Domain_pool.map pool (fun i -> i * i) xs in
  Domain_pool.shutdown pool;
  Alcotest.(check (list int)) "submission order" (List.map (fun i -> i * i) xs) ys

let test_domain_pool_exception () =
  let pool = Domain_pool.create ~jobs:2 () in
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      ignore (Domain_pool.map pool (fun i -> if i = 3 then failwith "boom" else i)
                [ 1; 2; 3; 4 ]));
  (* the pool survives a failed batch *)
  let ys = Domain_pool.map pool (fun i -> i + 1) [ 1; 2; 3 ] in
  Domain_pool.shutdown pool;
  Alcotest.(check (list int)) "reusable after failure" [ 2; 3; 4 ] ys

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "fp16",
        [
          Alcotest.test_case "known values" `Quick test_fp16_known_values;
          Alcotest.test_case "boundaries" `Quick test_fp16_boundaries;
          Alcotest.test_case "neg" `Quick test_fp16_neg;
          q fp16_roundtrip_prop;
          q fp16_error_bound_prop;
          q fp16_order_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "descriptive" `Quick test_stats;
          Alcotest.test_case "percentile nearest-rank" `Quick
            test_percentile_nearest_rank;
          Alcotest.test_case "abs pct error" `Quick test_pct_error;
          q percentile_member_prop;
          q percentile_of_sorted_prop;
          q div_up_prop;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "gaussian" `Quick test_prng_gaussian_moments;
          q prng_int_bound_prop;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "basic" `Quick test_max_min_fair_basic;
          Alcotest.test_case "equal split" `Quick test_max_min_fair_equal_split;
          q fairness_props;
          q fairness_work_conserving;
        ] );
      ( "units-table",
        [
          Alcotest.test_case "units" `Quick test_units;
          Alcotest.test_case "table" `Quick test_table;
        ] );
      ( "json",
        [
          Alcotest.test_case "rendering" `Quick test_json_rendering;
          Alcotest.test_case "float repr" `Quick test_json_float_repr;
          Alcotest.test_case "escape goldens" `Quick test_json_escape_goldens;
          Alcotest.test_case "float repr goldens" `Quick
            test_json_float_repr_goldens;
          Alcotest.test_case "parse round-trip" `Quick
            test_json_parse_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_json_deterministic;
        ] );
      ( "stable-hash",
        [
          Alcotest.test_case "known vectors" `Quick test_stable_hash_known;
          Alcotest.test_case "floats" `Quick test_stable_hash_floats;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "ordered" `Quick test_domain_pool_ordered;
          Alcotest.test_case "exception" `Quick test_domain_pool_exception;
        ] );
    ]
