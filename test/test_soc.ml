open Ascend.Soc
module Config = Ascend.Arch.Config
module Precision = Ascend.Arch.Precision

(* ------------------------------------------------------------------ *)
(* Training SoC (Ascend 910)                                          *)

let test_910_peak () =
  let fp16 =
    Training_soc.peak_flops Training_soc.ascend910 ~precision:Precision.Fp16
  in
  (* 32 cores x 8192 FLOPS/cycle x 1 GHz = 262 TFLOPS ("256" in the paper) *)
  Alcotest.(check bool) "256-264 TFLOPS" true (fp16 > 250e12 && fp16 < 270e12);
  let int8 =
    Training_soc.peak_flops Training_soc.ascend910 ~precision:Precision.Int8
  in
  Alcotest.(check bool) "int8 doubles" true
    (Float.abs ((int8 /. fp16) -. 2.) < 1e-9)

let test_910_run_small_network () =
  let build ~batch = Ascend.Nn.Resnet.v1_5_18 ~batch () in
  match Training_soc.run Training_soc.ascend910 ~build ~batch:32 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "all 32 cores used" 32 r.Training_soc.cores_used;
    Alcotest.(check bool) "throughput positive" true
      (r.Training_soc.throughput_per_s > 0.);
    Alcotest.(check bool) "slowdowns >= 1" true
      (r.Training_soc.hbm_slowdown >= 1. && r.Training_soc.noc_slowdown >= 1.);
    Alcotest.(check bool) "power within TDP ballpark" true
      (r.Training_soc.chip_power_w > 50. && r.Training_soc.chip_power_w < 450.)

let test_910_batch_smaller_than_cores () =
  let build ~batch = Ascend.Nn.Resnet.v1_5_18 ~batch () in
  match Training_soc.run Training_soc.ascend910 ~build ~batch:4 with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check int) "4 cores used" 4 r.Training_soc.cores_used

let test_llc_capacity_speedup () =
  (* §4.1: growing the LLC from 96 MB to 720 MB speeds up training *)
  let mib = Ascend.Util.Units.mib in
  let build ~batch = Ascend.Nn.Resnet.v1_5_18 ~batch () in
  let run llc =
    match
      Training_soc.run ~training:true
        (Training_soc.ascend910_llc ~llc_bytes:llc)
        ~build ~batch:64
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let small = run (96 * mib) in
  let big = run (720 * mib) in
  Alcotest.(check bool) "hit fraction grows" true
    (big.Training_soc.llc_hit_fraction >= small.Training_soc.llc_hit_fraction);
  Alcotest.(check bool) "not slower" true
    (big.Training_soc.step_seconds <= small.Training_soc.step_seconds)

let test_die_area () =
  let a = Training_soc.compute_die_area_mm2 Training_soc.ascend910 in
  (* the paper reports 456 mm2 for the compute die *)
  Alcotest.(check bool) "280..500 mm2" true (a > 280. && a < 500.)

(* ------------------------------------------------------------------ *)
(* Mobile SoC (Kirin 990)                                             *)

let test_kirin_peak_tops () =
  let tops = Mobile_soc.peak_tops Mobile_soc.kirin990 in
  (* paper Table 8: 6.88 TOPS *)
  Alcotest.(check bool) "6.5..7.2 TOPS" true (tops > 6.5 && tops < 7.2)

let test_kirin_mobilenet () =
  let g = Ascend.Nn.Mobilenet.v2 () in
  match Mobile_soc.run_big Mobile_soc.kirin990 g with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (* paper: 5.2 ms per image; accept the right order of magnitude *)
    Alcotest.(check bool) "latency 0.5..20 ms" true
      (r.Mobile_soc.latency_s > 0.5e-3 && r.Mobile_soc.latency_s < 20e-3);
    (* paper: 4.6 TOPS/W energy efficiency *)
    Alcotest.(check bool) "2..8 TOPS/W" true
      (r.Mobile_soc.tops_per_watt > 2. && r.Mobile_soc.tops_per_watt < 8.)

let test_dvfs_trade_off () =
  let g = Ascend.Nn.Mobilenet.v2 () in
  let run point =
    match Mobile_soc.run_big ~point Mobile_soc.kirin990 g with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let low = run "low" and boost = run "boost" in
  Alcotest.(check bool) "boost faster" true
    (boost.Mobile_soc.latency_s < low.Mobile_soc.latency_s);
  Alcotest.(check bool) "low sips power" true
    (low.Mobile_soc.average_power_w < boost.Mobile_soc.average_power_w);
  (* f*V^2: low frequency also wins on energy per inference *)
  Alcotest.(check bool) "low wins energy" true
    (low.Mobile_soc.energy_per_inference_j
    < boost.Mobile_soc.energy_per_inference_j)

let test_sparsity_saves_energy () =
  let g = Ascend.Nn.Mobilenet.v2 () in
  let run sparsity =
    match Mobile_soc.run_big ?sparsity Mobile_soc.kirin990 g with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let dense = run None and sparse = run (Some 0.5) in
  Alcotest.(check bool) "sparse cheaper" true
    (sparse.Mobile_soc.energy_per_inference_j
    <= dense.Mobile_soc.energy_per_inference_j)

let test_tiny_runs_gesture_in_envelope () =
  let g = Ascend.Nn.Gesture.build () in
  match Mobile_soc.run_little Mobile_soc.kirin990 g with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (* §3.2: the Tiny core's typical power is ~300 mW *)
    Alcotest.(check bool) "power < 0.5 W" true
      (r.Mobile_soc.average_power_w < 0.5);
    Alcotest.(check bool) "fast enough for always-on (<10ms)" true
      (r.Mobile_soc.latency_s < 10e-3)

let test_batch1_utilization_argument () =
  (* §3.2: at batch 1 (m = oh*ow small for late layers), the 4x16x16 cube
     utilises better than 16x16x16 *)
  let lite = Mobile_soc.batch1_cube_utilization Config.lite ~m:4 ~k:256 ~n:256 in
  let max = Mobile_soc.batch1_cube_utilization Config.max ~m:4 ~k:256 ~n:256 in
  Alcotest.(check bool) "lite 4-row cube wins at m=4" true (lite > 3. *. max)

(* ------------------------------------------------------------------ *)
(* Automotive SoC (Ascend 610)                                        *)

let test_610_peak () =
  let int8 = Automotive_soc.peak_tops Automotive_soc.ascend610 ~precision:Precision.Int8 in
  (* paper Table 9: 160 TOPS *)
  Alcotest.(check bool) "150..170 TOPS int8" true (int8 > 150. && int8 < 175.);
  let int4 = Automotive_soc.peak_tops Automotive_soc.ascend610 ~precision:Precision.Int4 in
  Alcotest.(check bool) "int4 doubles int8" true
    (Float.abs ((int4 /. int8) -. 2.) < 1e-9)

let perception_models () =
  [
    ("detector", Ascend.Nn.Resnet.v1_5_18 (), 0.05);
    ("segmenter", Ascend.Nn.Mobilenet.v2 (), 0.05);
  ]

let test_qos_mpam_bounds_latency () =
  let soc = Automotive_soc.ascend610 in
  let background = 90e9 (* heavy logging/map traffic *) in
  let run with_mpam =
    match
      Automotive_soc.run_service ~with_mpam soc ~models:(perception_models ())
        ~background_demand:background
    with
    | Ok rs -> rs
    | Error e -> Alcotest.fail e
  in
  let with_m = run true and without = run false in
  List.iter2
    (fun (w : Automotive_soc.service_result) wo ->
      Alcotest.(check bool)
        (w.Automotive_soc.model_name ^ ": MPAM not worse")
        true
        (w.Automotive_soc.end_to_end_s
        <= wo.Automotive_soc.end_to_end_s +. 1e-9))
    with_m without;
  (* under MPAM every perception deadline is met *)
  List.iter
    (fun (r : Automotive_soc.service_result) ->
      Alcotest.(check bool)
        (r.Automotive_soc.model_name ^ " deadline met")
        true r.Automotive_soc.met_deadline)
    with_m

let test_too_many_models_rejected () =
  let many =
    List.init 11 (fun i ->
        (Printf.sprintf "m%d" i, Ascend.Nn.Gesture.build (), 0.1))
  in
  match
    Automotive_soc.run_service Automotive_soc.ascend610 ~models:many
      ~background_demand:0.
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject more models than cores"

let test_safety_ring_bound () =
  let ns = Automotive_soc.worst_case_cpu_latency_ns Automotive_soc.ascend610 in
  Alcotest.(check bool) "bounded and small" true (ns > 0. && ns < 100.)

(* ------------------------------------------------------------------ *)
(* Inference SoC (Ascend 310)                                          *)

let test_310_envelope () =
  let soc = Inference_soc.ascend310 in
  let int8 = Inference_soc.peak_tops soc ~precision:Precision.Int8 in
  (* the shipped 310 is a 16/8 TOPS part *)
  Alcotest.(check bool) "peak 20-40 TOPS int8" true (int8 > 20. && int8 < 40.);
  match Inference_soc.run soc (Ascend.Nn.Resnet.v1_5_18 ()) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "real-time resnet18" true
      (r.Inference_soc.latency_s < 5e-3);
    Alcotest.(check bool) "multi-channel video" true
      (r.Inference_soc.video_channels >= 4);
    Alcotest.(check bool) "decode-capacity bounded" true
      (r.Inference_soc.video_channels <= 16)

let test_310_scheduled_vs_ideal_throughput () =
  (* throughput_per_s is an idealization (cores / latency, no placement
     cost); scheduled_throughput_per_s derives from a real §5.2 schedule
     of the replicated workload.  Pin their relationship: the scheduled
     number never exceeds the ideal, and on the 310 — one independent
     replica stream per core — the list scheduler keeps each replica on
     its own core, so the two coincide *)
  let soc = Inference_soc.ascend310 in
  match Inference_soc.run soc (Ascend.Nn.Resnet.v1_5_18 ()) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "both positive" true
      (r.Inference_soc.throughput_per_s > 0.
      && r.Inference_soc.scheduled_throughput_per_s > 0.);
    Alcotest.(check bool) "scheduled <= ideal" true
      (r.Inference_soc.scheduled_throughput_per_s
      <= r.Inference_soc.throughput_per_s *. (1. +. 1e-9));
    (* per-layer tasks quantise to whole cycles, so allow rounding *)
    let ratio =
      r.Inference_soc.scheduled_throughput_per_s
      /. r.Inference_soc.throughput_per_s
    in
    Alcotest.(check bool) "replicas stay core-local" true (ratio > 0.999)

(* ------------------------------------------------------------------ *)
(* Trace-driven LLC (§4.1 with the real cache)                         *)

let test_llc_trace_monotone () =
  let g = Ascend.Nn.Gesture.build () in
  let footprint = Llc_trace.address_footprint_bytes g in
  Alcotest.(check bool) "nonzero footprint" true (footprint > 0);
  let kib = 1024 in
  let points =
    Llc_trace.sweep g
      ~capacities:[ 16 * kib; 64 * kib; 256 * kib; 2 * footprint ]
  in
  let rates = List.map (fun p -> p.Llc_trace.hit_rate) points in
  (* monotone non-decreasing in capacity *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in capacity" true (mono rates);
  (* once everything fits, the steady pass hits essentially always *)
  let last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "resident working set hits" true
    (last.Llc_trace.hit_rate > 0.99)

(* ------------------------------------------------------------------ *)
(* DVPP                                                               *)

let test_dvpp () =
  let d = Dvpp.automotive_dvpp in
  Alcotest.(check bool) "frame latency under 50 ms" true
    (Dvpp.frame_latency_s d ~width:1920 ~height:1080 < 0.05);
  Alcotest.(check (float 1e-9)) "under-subscribed full rate" 30.
    (Dvpp.max_camera_fps d ~cameras:8);
  Alcotest.(check (float 1e-9)) "over-subscribed shares" 15.
    (Dvpp.max_camera_fps d ~cameras:32)

let () =
  Alcotest.run "soc"
    [
      ( "training-910",
        [
          Alcotest.test_case "peak flops" `Quick test_910_peak;
          Alcotest.test_case "run network" `Quick test_910_run_small_network;
          Alcotest.test_case "small batch" `Quick test_910_batch_smaller_than_cores;
          Alcotest.test_case "llc capacity speedup" `Slow
            test_llc_capacity_speedup;
          Alcotest.test_case "die area" `Quick test_die_area;
        ] );
      ( "mobile-kirin990",
        [
          Alcotest.test_case "peak tops" `Quick test_kirin_peak_tops;
          Alcotest.test_case "mobilenet" `Quick test_kirin_mobilenet;
          Alcotest.test_case "dvfs" `Quick test_dvfs_trade_off;
          Alcotest.test_case "sparsity" `Quick test_sparsity_saves_energy;
          Alcotest.test_case "tiny gesture envelope" `Quick
            test_tiny_runs_gesture_in_envelope;
          Alcotest.test_case "batch-1 utilization" `Quick
            test_batch1_utilization_argument;
        ] );
      ( "automotive-610",
        [
          Alcotest.test_case "peak tops" `Quick test_610_peak;
          Alcotest.test_case "qos mpam" `Quick test_qos_mpam_bounds_latency;
          Alcotest.test_case "capacity limit" `Quick test_too_many_models_rejected;
          Alcotest.test_case "safety ring" `Quick test_safety_ring_bound;
        ] );
      ( "inference-310",
        [
          Alcotest.test_case "envelope" `Quick test_310_envelope;
          Alcotest.test_case "scheduled vs ideal throughput" `Quick
            test_310_scheduled_vs_ideal_throughput;
          Alcotest.test_case "llc trace" `Quick test_llc_trace_monotone;
        ] );
      ("dvpp", [ Alcotest.test_case "throughput" `Quick test_dvpp ]);
    ]
