(* Two-tier batch-latency oracle (lib/cost): the piecewise-linear
   surrogate, the budget-driven calibration protocol, and the serving
   Cost wrapper's tier selection and fallback accounting. *)

module Surrogate = Ascend.Cost.Surrogate
module Calibration = Ascend.Cost.Calibration
module Cost = Ascend.Serving.Cost
module Serve = Ascend.Serving.Serve
module Metrics = Ascend.Serving.Metrics
module Config = Ascend.Arch.Config
module Json = Ascend.Util.Json

let entry cycles =
  {
    Surrogate.cycles;
    latency_s = float_of_int cycles *. 1e-9;
    energy_j = float_of_int cycles *. 1e-6;
  }

let fit_ok ~model ~anchors =
  match Surrogate.fit ~model ~anchors with
  | Ok t -> t
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Surrogate: anchor schedule, fit, lookup                             *)

let test_anchor_batches () =
  Alcotest.(check (list int)) "pow2 + max" [ 1; 2; 4; 8 ]
    (Surrogate.anchor_batches ~max_batch:8);
  Alcotest.(check (list int)) "max joins schedule" [ 1; 2; 4; 6 ]
    (Surrogate.anchor_batches ~max_batch:6);
  Alcotest.(check (list int)) "singleton" [ 1 ]
    (Surrogate.anchor_batches ~max_batch:1);
  Alcotest.check_raises "max_batch < 1"
    (Invalid_argument "Surrogate.anchor_batches: max_batch < 1") (fun () ->
      ignore (Surrogate.anchor_batches ~max_batch:0))

let test_fit_rejects_malformed () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true
    (is_error (Surrogate.fit ~model:"m" ~anchors:[]));
  Alcotest.(check bool) "duplicate batch" true
    (is_error
       (Surrogate.fit ~model:"m"
          ~anchors:[ (1, entry 10); (1, entry 20) ]));
  Alcotest.(check bool) "batch below 1" true
    (is_error (Surrogate.fit ~model:"m" ~anchors:[ (0, entry 10) ]))

let test_lookup_reproduces_anchors () =
  let anchors = [ (1, entry 100); (2, entry 180); (4, entry 350) ] in
  let t = fit_ok ~model:"m" ~anchors in
  List.iter
    (fun (b, e) ->
      match Surrogate.lookup t ~batch:b with
      | Some got ->
        Alcotest.(check int)
          (Printf.sprintf "anchor %d cycles" b)
          e.Surrogate.cycles got.Surrogate.cycles;
        Alcotest.(check (float 0.))
          (Printf.sprintf "anchor %d latency" b)
          e.Surrogate.latency_s got.Surrogate.latency_s
      | None -> Alcotest.fail "anchor out of range")
    anchors

let test_lookup_interpolates () =
  (* midpoint of (2, 180) and (4, 350): cycles round to 265 *)
  let t =
    fit_ok ~model:"m" ~anchors:[ (2, entry 180); (4, entry 350) ]
  in
  match Surrogate.lookup t ~batch:3 with
  | None -> Alcotest.fail "batch 3 in range"
  | Some e ->
    Alcotest.(check int) "lerped cycles" 265 e.Surrogate.cycles;
    Alcotest.(check (float 1e-15)) "lerped latency" 265e-9
      e.Surrogate.latency_s;
    Alcotest.(check (float 1e-12)) "lerped energy" 265e-6
      e.Surrogate.energy_j

let test_lookup_confidence_range () =
  let t =
    fit_ok ~model:"m" ~anchors:[ (2, entry 180); (4, entry 350) ]
  in
  Alcotest.(check int) "min_batch" 2 (Surrogate.min_batch t);
  Alcotest.(check int) "max_batch" 4 (Surrogate.max_batch t);
  Alcotest.(check bool) "below range" true
    (Surrogate.lookup t ~batch:1 = None);
  Alcotest.(check bool) "above range" true
    (Surrogate.lookup t ~batch:5 = None);
  Alcotest.(check bool) "in_range agrees" true
    (Surrogate.in_range t ~batch:3
    && not (Surrogate.in_range t ~batch:5));
  Alcotest.check_raises "batch < 1"
    (Invalid_argument "Surrogate.lookup: batch < 1") (fun () ->
      ignore (Surrogate.lookup t ~batch:0))

(* interpolation between monotone anchors is monotone: linear pieces
   cannot overshoot their endpoints *)
let monotone_interpolation_prop =
  QCheck.Test.make ~count:300
    ~name:"monotone anchors give monotone interpolation"
    QCheck.(
      list_of_size (Gen.int_range 2 6) (pair (int_range 1 5) (int_range 0 1000)))
    (fun steps ->
      (* positive batch gaps give strictly increasing anchors; summed
         non-negative increments give nondecreasing cycles *)
      let _, _, rev_anchors =
        List.fold_left
          (fun (b, c, acc) (gap, inc) ->
            let b = b + gap and c = c + inc in
            (b, c, (b, entry c) :: acc))
          (0, 100, []) steps
      in
      let anchors = List.rev rev_anchors in
      match Surrogate.fit ~model:"m" ~anchors with
      | Error _ -> false
      | Ok t ->
        let lo = Surrogate.min_batch t and hi = Surrogate.max_batch t in
        let prev = ref (-1) in
        let ok = ref true in
        for b = lo to hi do
          (match Surrogate.lookup t ~batch:b with
          | None -> ok := false
          | Some e ->
            if e.Surrogate.cycles < !prev then ok := false;
            prev := e.Surrogate.cycles)
        done;
        !ok)

(* ------------------------------------------------------------------ *)
(* Calibration: refinement against synthetic oracles                   *)

let synth_price f ~batch = Ok (entry (f batch))

let test_calibration_linear_keeps_geometric_anchors () =
  (* cycles linear in batch: geometric anchors interpolate exactly *)
  match
    Calibration.fit ~model:"linear"
      ~price:(synth_price (fun b -> 1000 + (500 * b)))
      ~max_batch:8 ()
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check (list int)) "no refinement needed" [ 1; 2; 4; 8 ]
      (List.map fst (Surrogate.anchors t))

let test_calibration_refines_steps () =
  (* a tiling-style step between batches 4 and 5 that linear
     interpolation over [4;8] misses by far more than the budget *)
  let steppy b = if b <= 4 then 1000 else 5000 in
  match
    Calibration.fit ~model:"steppy" ~price:(synth_price steppy) ~max_batch:8 ()
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let anchors = List.map fst (Surrogate.anchors t) in
    Alcotest.(check bool) "grew past the geometric schedule" true
      (List.length anchors > 4);
    (* every batch now lands within the 5% default budget *)
    for b = 1 to 8 do
      match Surrogate.lookup t ~batch:b with
      | None -> Alcotest.fail "in range"
      | Some e ->
        let exact = float_of_int (steppy b) in
        let err =
          100. *. Float.abs (float_of_int e.Surrogate.cycles -. exact) /. exact
        in
        Alcotest.(check bool)
          (Printf.sprintf "batch %d within budget" b)
          true (err <= 5.)
    done

let test_calibration_zero_budget_pins_every_batch () =
  let jagged b = 1000 + (137 * b * b mod 911) in
  match
    Calibration.fit ~budget_pct:0. ~model:"jagged"
      ~price:(synth_price jagged) ~max_batch:6 ()
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
    for b = 1 to 6 do
      match Surrogate.lookup t ~batch:b with
      | None -> Alcotest.fail "in range"
      | Some e ->
        Alcotest.(check int)
          (Printf.sprintf "batch %d exact" b)
          (jagged b) e.Surrogate.cycles
    done

let test_calibration_propagates_pricing_error () =
  let price ~batch =
    if batch = 3 then Error "boom" else Ok (entry (100 * batch))
  in
  match Calibration.fit ~model:"m" ~price ~max_batch:4 () with
  | Error e -> Alcotest.(check string) "first failure aborts" "boom" e
  | Ok _ -> Alcotest.fail "expected Error"

(* ------------------------------------------------------------------ *)
(* Calibration against the real oracle: zoo spot-checks               *)

let test_calibration_within_budget_on_zoo () =
  (* gesture on Lite is the motivating case: tiling makes cycles step
     (even non-monotonically) in batch, and the unrefined geometric
     schedule missed the budget by 7x *)
  let service = Ascend.Exec.Service.create ~jobs:1 () in
  let cases =
    [
      ("gesture", (fun ~batch -> Ascend.Nn.Gesture.build ~batch ()),
       Config.lite);
      ("face-detect", (fun ~batch -> Ascend.Nn.Face_detect.build ~batch ()),
       Config.tiny);
    ]
  in
  List.iter
    (fun (model, build, core) ->
      match
        Calibration.run ~service ~core ~model ~build ~max_batch:8 ()
      with
      | Error e -> Alcotest.fail (model ^ ": " ^ e)
      | Ok report ->
        Alcotest.(check bool)
          (model ^ " max error within budget")
          true
          (report.Calibration.max_abs_pct_error <= 5.);
        Alcotest.(check int)
          (model ^ " rows cover 1..max_batch")
          8
          (List.length report.Calibration.rows);
        (* anchors reproduce exactly, so their rows score zero *)
        List.iter
          (fun (row : Calibration.row) ->
            if row.Calibration.anchor then
              Alcotest.(check (float 0.))
                (Printf.sprintf "%s anchor %d exact" model
                   row.Calibration.batch)
                0. row.Calibration.cycles_pct_error)
          report.Calibration.rows)
    cases;
  Ascend.Exec.Service.shutdown service

(* ------------------------------------------------------------------ *)
(* Serving Cost wrapper: tier selection, fallback, determinism        *)

let gesture ~batch = Ascend.Nn.Gesture.build ~batch ()

let test_cost_surrogate_matches_calibrated_table () =
  let exact = Cost.create ~core:Config.tiny () in
  let surrogate =
    Cost.create ~costing:`Surrogate ~max_batch:4 ~core:Config.tiny ()
  in
  for batch = 1 to 4 do
    let le =
      match Cost.lookup exact ~model:"gesture" ~build:gesture ~batch with
      | Ok e -> e
      | Error e -> Alcotest.fail e
    in
    let ls =
      match Cost.lookup surrogate ~model:"gesture" ~build:gesture ~batch with
      | Ok e -> e
      | Error e -> Alcotest.fail e
    in
    let err =
      Ascend.Util.Stats.abs_pct_error
        ~reference:(float_of_int le.Cost.cycles)
        ~estimate:(float_of_int ls.Cost.cycles)
    in
    Alcotest.(check bool)
      (Printf.sprintf "batch %d within calibration budget" batch)
      true (err <= 5.)
  done;
  Alcotest.(check int) "4 interpolated lookups" 4
    (Cost.interpolated surrogate);
  Alcotest.(check int) "no fallbacks in range" 0 (Cost.fallbacks surrogate);
  Alcotest.(check int) "exact tier never interpolates" 0
    (Cost.interpolated exact)

let test_cost_fallback_beyond_max_batch () =
  let exact = Cost.create ~core:Config.tiny () in
  let surrogate =
    Cost.create ~costing:`Surrogate ~max_batch:2 ~core:Config.tiny ()
  in
  let price t batch =
    match Cost.lookup t ~model:"gesture" ~build:gesture ~batch with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let from_exact = price exact 3 in
  let from_fallback = price surrogate 3 in
  Alcotest.(check int) "fallback answers with the exact tier"
    from_exact.Cost.cycles from_fallback.Cost.cycles;
  Alcotest.(check int) "fallback counted" 1 (Cost.fallbacks surrogate);
  Alcotest.(check int) "not counted as interpolation" 0
    (Cost.interpolated surrogate)

let test_serve_surrogate_deterministic () =
  let spec () =
    {
      Serve.name = "gesture";
      build = gesture;
      priority = 0;
      slo_ms = 20.;
      workload = Serve.Closed_loop { clients = 4; think_s = 0.; seed = 17 };
    }
  in
  let config =
    { (Serve.default_config ~core:Config.tiny ~cores:2) with
      Serve.duration_s = 0.2; max_batch = 4; costing = `Surrogate }
  in
  let run () =
    match Serve.run config [ spec () ] with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical JSON"
    (Json.to_string (Serve.to_json a))
    (Json.to_string (Serve.to_json b));
  Alcotest.(check bool) "surrogate actually used" true
    (a.Serve.cost_interpolated > 0);
  (* the surrogate trades per-lookup compilation for a calibrated
     table: beyond calibration the cache sees no new compiles *)
  let exact_run =
    match
      Serve.run { config with Serve.costing = `Exact } [ spec () ]
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "same requests served"
    (List.length exact_run.Serve.records)
    (List.length a.Serve.records)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cost"
    [
      ( "surrogate",
        [
          Alcotest.test_case "anchor schedule" `Quick test_anchor_batches;
          Alcotest.test_case "fit rejects malformed" `Quick
            test_fit_rejects_malformed;
          Alcotest.test_case "anchors reproduce" `Quick
            test_lookup_reproduces_anchors;
          Alcotest.test_case "interpolation" `Quick test_lookup_interpolates;
          Alcotest.test_case "confidence range" `Quick
            test_lookup_confidence_range;
          q monotone_interpolation_prop;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "linear keeps geometric anchors" `Quick
            test_calibration_linear_keeps_geometric_anchors;
          Alcotest.test_case "refines steps" `Quick
            test_calibration_refines_steps;
          Alcotest.test_case "zero budget pins every batch" `Quick
            test_calibration_zero_budget_pins_every_batch;
          Alcotest.test_case "pricing error propagates" `Quick
            test_calibration_propagates_pricing_error;
          Alcotest.test_case "zoo spot-check within budget" `Quick
            test_calibration_within_budget_on_zoo;
        ] );
      ( "serving-cost",
        [
          Alcotest.test_case "surrogate matches table" `Quick
            test_cost_surrogate_matches_calibrated_table;
          Alcotest.test_case "fallback beyond max_batch" `Quick
            test_cost_fallback_beyond_max_batch;
          Alcotest.test_case "surrogate serve deterministic" `Quick
            test_serve_surrogate_deterministic;
        ] );
    ]
