(* Observability subsystem (lib/obs): bounded collector semantics, the
   link-time hook, summary self-time accounting, and the two sinks —
   including the byte-identity contract of whole-model trace capture. *)

module Event = Ascend.Obs.Event
module Collector = Ascend.Obs.Collector
module Hook = Ascend.Obs.Hook
module Chrome_trace = Ascend.Obs.Chrome_trace
module Summary = Ascend.Obs.Summary
module Json = Ascend.Util.Json
module Config = Ascend.Arch.Config

let span ?args ~cat ~name ~tid ~ts ~dur () =
  Event.span ?args ~cat ~name ~pid:1 ~tid ~ts ~dur ()

let counter ~name ~ts ~value () =
  Event.counter ~cat:"c" ~name ~pid:1 ~tid:0 ~ts ~value ()

(* ------------------------------------------------------------------ *)
(* Collector: bounding and registries                                  *)

let test_collector_bounding () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Collector.create: capacity < 1") (fun () ->
      ignore (Collector.create ~capacity:0 ()));
  let c = Collector.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Collector.capacity c);
  for i = 1 to 5 do
    Collector.record c
      (Event.instant ~cat:"t" ~name:(string_of_int i) ~pid:1 ~tid:0
         ~ts:(float_of_int i) ())
  done;
  Alcotest.(check int) "bounded" 3 (Collector.length c);
  Alcotest.(check int) "overflow counted" 2 (Collector.dropped c);
  (* drop-new policy: the first [capacity] events survive, in order *)
  Alcotest.(check (list string)) "record order, oldest kept"
    [ "1"; "2"; "3" ]
    (List.map (fun (e : Event.t) -> e.Event.name) (Collector.events c));
  (* the drop count is visible in both sinks *)
  (match Chrome_trace.to_json c with
  | Json.Obj fields ->
    Alcotest.(check bool) "chrome droppedEvents" true
      (List.assoc "droppedEvents" fields = Json.Int 2)
  | _ -> Alcotest.fail "unexpected sink shape");
  Alcotest.(check int) "summary dropped" 2 (Summary.build c).Summary.dropped;
  Collector.clear c;
  Alcotest.(check int) "clear empties" 0 (Collector.length c);
  Alcotest.(check int) "clear resets dropped" 0 (Collector.dropped c)

let test_collector_registries () =
  let c = Collector.create () in
  Alcotest.(check int) "pids from 1" 1 (Collector.alloc_pid c ~name:"a");
  Alcotest.(check int) "sequential" 2 (Collector.alloc_pid c ~name:"b");
  Collector.name_thread c ~pid:2 ~tid:1 "old";
  Collector.name_thread c ~pid:2 ~tid:1 "new";
  Collector.name_thread c ~pid:1 ~tid:0 "p0";
  Alcotest.(check (list (pair int string)))
    "processes sorted"
    [ (1, "a"); (2, "b") ]
    (Collector.processes c);
  Alcotest.(check bool) "last thread name wins" true
    (Collector.threads c = [ (1, 0, "p0"); (2, 1, "new") ]);
  Collector.clear c;
  Alcotest.(check bool) "clear keeps registries" true
    (Collector.processes c = [ (1, "a"); (2, "b") ])

(* ------------------------------------------------------------------ *)
(* Hook: link-time installation                                        *)

let test_hook () =
  Hook.uninstall ();
  Alcotest.(check bool) "disabled by default" false (Hook.enabled ());
  Alcotest.(check int) "alloc_pid without collector" (-1)
    (Hook.alloc_pid ~name:"x");
  (* emitting with no collector is a no-op, not an error *)
  Hook.span ~cat:"c" ~name:"s" ~pid:1 ~tid:0 ~ts:0. ~dur:1. ();
  let c = Collector.create () in
  let inner = Collector.create () in
  Hook.with_collector c (fun () ->
      Alcotest.(check bool) "enabled inside" true (Hook.enabled ());
      let pid = Hook.alloc_pid ~name:"p" in
      Alcotest.(check int) "pid allocated" 1 pid;
      Hook.span ~cat:"c" ~name:"s" ~pid ~tid:0 ~ts:0. ~dur:1. ();
      (* negative pid = lane allocated while disabled: stays a no-op *)
      Hook.span ~cat:"c" ~name:"dead" ~pid:(-1) ~tid:0 ~ts:0. ~dur:1. ();
      (* nested installation restores the outer collector *)
      Hook.with_collector inner (fun () ->
          Hook.instant ~cat:"c" ~name:"i" ~pid:1 ~tid:0 ~ts:0. ());
      Alcotest.(check bool) "outer restored" true
        (match Hook.installed () with Some c' -> c' == c | None -> false));
  Alcotest.(check bool) "uninstalled after" false (Hook.enabled ());
  Alcotest.(check int) "outer got its span" 1 (Collector.length c);
  Alcotest.(check int) "inner got its instant" 1 (Collector.length inner)

(* ------------------------------------------------------------------ *)
(* Summary: self-time and counter aggregation                          *)

let test_summary_self_time () =
  let c = Collector.create () in
  List.iter (Collector.record c)
    [
      (* parent 0..10 with child 2..6 on the same lane *)
      span ~cat:"outer" ~name:"p" ~tid:0 ~ts:0. ~dur:10. ();
      span ~cat:"inner" ~name:"ch" ~tid:0 ~ts:2. ~dur:4. ();
      (* same categories on another lane must not interact *)
      span ~cat:"outer" ~name:"q" ~tid:1 ~ts:100. ~dur:5. ();
    ];
  let s = Summary.build c in
  let row cat = List.find (fun r -> r.Summary.cat = cat) s.Summary.rows in
  Alcotest.(check int) "outer spans" 2 (row "outer").Summary.span_count;
  Alcotest.(check (float 1e-9)) "outer total" 15. (row "outer").Summary.total;
  Alcotest.(check (float 1e-9)) "outer self excludes child" 11.
    (row "outer").Summary.self;
  Alcotest.(check (float 1e-9)) "leaf self = total" 4.
    (row "inner").Summary.self;
  (* rows sorted by category *)
  Alcotest.(check (list string)) "sorted rows" [ "inner"; "outer" ]
    (List.map (fun r -> r.Summary.cat) s.Summary.rows);
  let rendered = Summary.render s in
  let contains sub =
    let n = String.length rendered and m = String.length sub in
    let rec go i = i + m <= n && (String.sub rendered i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions categories" true
    (contains "outer" && contains "inner")

let test_counter_aggregation () =
  let c = Collector.create () in
  (* a monotonic series (the cache-hit idiom): last sample is also max *)
  List.iteri
    (fun i v -> Collector.record c (counter ~name:"hits" ~ts:(float_of_int i) ~value:v ()))
    [ 0.; 1.; 3.; 7. ];
  (* a gauge that peaks then falls (queue depth): max > last *)
  List.iteri
    (fun i v -> Collector.record c (counter ~name:"depth" ~ts:(float_of_int i) ~value:v ()))
    [ 1.; 5.; 2. ];
  let s = Summary.build c in
  Alcotest.(check bool) "series sorted, (last, max) per series" true
    (s.Summary.counters = [ ("depth", 2., 5.); ("hits", 7., 7.) ]);
  (* monotonicity check on the recorded samples themselves *)
  let samples =
    List.filter_map
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Counter { value } when e.Event.name = "hits" -> Some value
        | _ -> None)
      (Collector.events c)
  in
  Alcotest.(check bool) "hits samples non-decreasing" true
    (List.for_all2 ( <= ) samples (List.tl samples @ [ max_float ]))

(* ------------------------------------------------------------------ *)
(* Chrome sink: pinned document bytes                                  *)

let test_chrome_golden () =
  let c = Collector.create () in
  ignore (Collector.alloc_pid c ~name:"core:demo");
  Collector.name_thread c ~pid:1 ~tid:0 "pipe0";
  List.iter (Collector.record c)
    [
      span ~cat:"cube" ~name:"mm" ~tid:0 ~ts:2. ~dur:3.
        ~args:[ ("macs", Event.Int 8) ]
        ();
      Event.instant ~cat:"sync" ~name:"bar" ~pid:1 ~tid:0 ~ts:5. ();
      counter ~name:"hits" ~ts:5. ~value:1. ();
    ];
  let got = Json.to_string (Chrome_trace.to_json c) in
  Alcotest.(check string) "pinned chrome document"
    ({|{"traceEvents":[|}
    ^ {|{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"core:demo"}},|}
    ^ {|{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"pipe0"}},|}
    ^ {|{"name":"mm","cat":"cube","ph":"X","pid":1,"tid":0,"ts":2.0,"dur":3.0,"args":{"macs":8}},|}
    ^ {|{"name":"bar","cat":"sync","ph":"i","pid":1,"tid":0,"ts":5.0,"s":"t","args":{}},|}
    ^ {|{"name":"hits","cat":"c","ph":"C","pid":1,"tid":0,"ts":5.0,"args":{"value":1.0}}|}
    ^ {|],"displayTimeUnit":"ms","droppedEvents":0}|})
    got;
  (* the document is well-formed by our own parser *)
  match Json.of_string got with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("sink emitted invalid JSON: " ^ e)

(* ------------------------------------------------------------------ *)
(* Whole-model capture: deterministic to the byte                      *)

let test_trace_byte_identity () =
  let capture () =
    match
      Ascend.Exec.Trace.model Config.tiny (Ascend.Nn.Gesture.build ~batch:1 ())
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let a = capture () in
  Alcotest.(check bool) "events collected" true (a.Ascend.Exec.Trace.events > 0);
  Alcotest.(check int) "nothing dropped" 0 a.Ascend.Exec.Trace.dropped;
  Alcotest.(check bool) "cycles accounted" true
    (a.Ascend.Exec.Trace.total_cycles > 0);
  (* repeated capture: byte-identical document *)
  let b = capture () in
  Alcotest.(check string) "repeat is byte-identical"
    (Json.to_string ~pretty:true a.Ascend.Exec.Trace.json)
    (Json.to_string ~pretty:true b.Ascend.Exec.Trace.json);
  (* a pooled execution service with a different worker count must not
     influence the serial capture path *)
  let svc = Ascend.Exec.Service.create ~jobs:3 () in
  let c = capture () in
  Ascend.Exec.Service.shutdown svc;
  Alcotest.(check string) "jobs-independent"
    (Json.to_string ~pretty:true a.Ascend.Exec.Trace.json)
    (Json.to_string ~pretty:true c.Ascend.Exec.Trace.json);
  (* summary agrees with the collector totals *)
  Alcotest.(check int) "summary event count" a.Ascend.Exec.Trace.events
    a.Ascend.Exec.Trace.summary.Summary.events

let () =
  Alcotest.run "obs"
    [
      ( "collector",
        [
          Alcotest.test_case "bounding" `Quick test_collector_bounding;
          Alcotest.test_case "registries" `Quick test_collector_registries;
        ] );
      ("hook", [ Alcotest.test_case "link-time hook" `Quick test_hook ]);
      ( "summary",
        [
          Alcotest.test_case "self time" `Quick test_summary_self_time;
          Alcotest.test_case "counters" `Quick test_counter_aggregation;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
          Alcotest.test_case "byte identity" `Quick test_trace_byte_identity;
        ] );
    ]
