open Ascend.Isa
module Config = Ascend.Arch.Config
module Precision = Ascend.Arch.Precision
module Codegen = Ascend.Compiler.Codegen
module Verify = Ascend.Verify
module Finding = Ascend.Verify.Finding

let set f t flag = Instruction.set_flag ~from_pipe:f ~to_pipe:t ~flag
let wait f t flag = Instruction.wait_flag ~from_pipe:f ~to_pipe:t ~flag

let classes findings =
  List.sort_uniq compare
    (List.map
       (fun (f : Finding.t) ->
         match f.Finding.kind with
         | Finding.Deadlock -> "deadlock"
         | Finding.Hazard { dep } -> "hazard/" ^ dep
         | Finding.Peak_mismatch -> "peak"
         | Finding.Capacity_overflow -> "capacity"
         | Finding.Flag_leak -> "leak"
         | Finding.Malformed -> "malformed"
         | Finding.Soc_race { dep } -> "soc-race/" ^ dep
         | Finding.Soc_deadlock -> "soc-deadlock"
         | Finding.Soc_overcommit { resource } -> "soc-overcommit/" ^ resource
         | Finding.Uninit_read -> "uninit-read"
         | Finding.Slot_overflow -> "slot-overflow"
         | Finding.Coll_unmatched -> "coll-unmatched"
         | Finding.Coll_deadlock -> "coll-deadlock"
         | Finding.Coll_overcommit { resource } -> "coll-overcommit/" ^ resource
         | Finding.Coll_incomplete -> "coll-incomplete")
       findings)

let report findings = Format.asprintf "%a" Verify.pp_report findings

(* ------------------------------------------------------------------ *)
(* The model zoo is clean under every option combination               *)

let zoo () =
  [
    ("resnet18", Ascend.Nn.Resnet.v1_5_18 ());
    ("mobilenet", Ascend.Nn.Mobilenet.v2 ());
    ("bert-base-s32", Ascend.Nn.Bert.base ~seq_len:32 ());
    ("gesture", Ascend.Nn.Gesture.build ());
  ]

let option_combos =
  List.concat_map
    (fun sync_mode ->
      List.concat_map
        (fun double_buffer ->
          List.map
            (fun weight_sparsity ->
              { Codegen.default_options with
                sync_mode; double_buffer; weight_sparsity })
            [ None; Some 0.5 ])
        [ true; false ])
    [ Codegen.Flags; Codegen.Coarse_barriers ]

let test_zoo_clean_all_options () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun config ->
          if Config.supports config (Ascend.Nn.Graph.dtype g) then
            List.iter
              (fun options ->
                List.iter
                  (fun (grp, p) ->
                    match Verify.analyze config p with
                    | [] -> ()
                    | fs ->
                      Alcotest.failf "%s / %s / %s: %s" name config.Config.name
                        grp.Ascend.Compiler.Fusion.tag (report fs))
                  (Codegen.graph_programs ~options config g))
              option_combos)
        Config.all)
    (zoo ())

let test_strict_validate_clean_on_codegen () =
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  List.iter
    (fun (_, p) ->
      match Program.validate ~strict:true Config.max p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "strict validate: %s" e)
    (Codegen.graph_programs Config.max g)

(* ------------------------------------------------------------------ *)
(* Deadlock detection is happens-before reachability, not counting     *)

let cyclic_wait_program =
  (* flag counts balance per triple, yet no interleaving can run this:
     Vector blocks on flag 0 before its set of flag 1, while Cube blocks
     on flag 1 before its set of flag 0 *)
  Program.make ~name:"cycle"
    [
      wait Pipe.Cube Pipe.Vector 0;
      set Pipe.Vector Pipe.Cube 1;
      wait Pipe.Vector Pipe.Cube 1;
      set Pipe.Cube Pipe.Vector 0;
    ]

let test_cyclic_wait_deadlock () =
  (match Program.validate Config.max cyclic_wait_program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flag counting must accept the cycle: %s" e);
  let fs = Verify.analyze Config.max cyclic_wait_program in
  Alcotest.(check (list string)) "cycle detected" [ "deadlock" ] (classes fs);
  match Program.validate ~strict:true Config.max cyclic_wait_program with
  | Ok () -> Alcotest.fail "strict validate must reject the cycle"
  | Error _ -> ()

let test_wait_ordering_not_counting () =
  (* one set, one wait — balanced — but the wait is queued before any
     set of its triple can possibly run: the set itself sits behind the
     wait on the same pipe, so the wait ordinal can never be reached *)
  let p =
    Program.make ~name:"self-block"
      [ wait Pipe.Cube Pipe.Cube 0; set Pipe.Cube Pipe.Cube 0 ]
  in
  (match Program.validate Config.max p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flag counting must accept: %s" e);
  let fs = Verify.analyze Config.max p in
  Alcotest.(check (list string)) "self-block detected" [ "deadlock" ]
    (classes fs)

(* ------------------------------------------------------------------ *)
(* Hazards: broken double-buffering must be flagged                    *)

let gemm_program () =
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  let programs = Codegen.graph_programs Config.max g in
  (* the largest cube-anchored program exercises every ring *)
  List.fold_left
    (fun best (_, p) ->
      if Program.length p > Program.length best then p else best)
    (snd (List.hd programs))
    programs

let drop_nth n instrs =
  List.filteri (fun i _ -> i <> n) instrs

let test_broken_double_buffering_detected () =
  let p = gemm_program () in
  Alcotest.(check (list string)) "baseline clean" []
    (classes (Verify.analyze Config.max p));
  (* remove the first L0-ring backpressure wait (Cube -> MTE1): MTE1 is
     then free to overwrite an L0 slot the cube is still reading *)
  let idx =
    let found = ref (-1) in
    List.iteri
      (fun i instr ->
        match instr with
        | Instruction.Wait_flag { from_pipe = Pipe.Cube; to_pipe = Pipe.Mte1; _ }
          when !found < 0 ->
          found := i
        | _ -> ())
      p.Program.instructions;
    if !found < 0 then Alcotest.fail "no L0 backpressure wait found";
    !found
  in
  let broken =
    { p with Program.instructions = drop_nth idx p.Program.instructions }
  in
  let fs = Verify.analyze Config.max broken in
  let cls = classes fs in
  Alcotest.(check bool)
    (Printf.sprintf "WAR hazard reported (got %s)" (String.concat "," cls))
    true
    (List.mem "hazard/WAR" cls);
  Alcotest.(check bool) "dropped wait also leaks the flag" true
    (List.mem "leak" cls)

(* ------------------------------------------------------------------ *)
(* Mutation property tests: the verifier finds exactly the injected    *)
(* defect class                                                        *)

let positions_of pred instrs =
  List.mapi (fun i x -> (i, x)) instrs
  |> List.filter_map (fun (i, x) -> if pred x then Some i else None)

let subset ~of_:allowed cls = List.for_all (fun c -> List.mem c allowed) cls

let mutation_prop name ~count mutate check =
  QCheck.Test.make ~count ~name
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = gemm_program () in
      match mutate seed p with
      | None -> QCheck.assume_fail ()
      | Some mutated -> check (classes (Verify.analyze Config.max mutated)))

let pick seed xs =
  match xs with
  | [] -> None
  | _ -> Some (List.nth xs (seed mod List.length xs))

let drop_set_prop =
  mutation_prop "dropping a random Set_flag yields exactly a deadlock"
    ~count:25
    (fun seed p ->
      let sets =
        positions_of
          (function Instruction.Set_flag _ -> true | _ -> false)
          p.Program.instructions
      in
      Option.map
        (fun n ->
          { p with Program.instructions = drop_nth n p.Program.instructions })
        (pick seed sets))
    (fun cls -> cls = [ "deadlock" ])

let swap_wait_prop =
  mutation_prop
    "swapping a Wait_flag's pipe pair deadlocks (plus leaks the orphaned set)"
    ~count:25
    (fun seed p ->
      let waits =
        positions_of
          (function Instruction.Wait_flag _ -> true | _ -> false)
          p.Program.instructions
      in
      Option.map
        (fun n ->
          let instructions =
            List.mapi
              (fun i instr ->
                match instr with
                | Instruction.Wait_flag { from_pipe; to_pipe; flag } when i = n
                  ->
                  Instruction.wait_flag ~from_pipe:to_pipe ~to_pipe:from_pipe
                    ~flag
                | _ -> instr)
              p.Program.instructions
          in
          { p with Program.instructions })
        (pick seed waits))
    (fun cls ->
      List.mem "deadlock" cls && subset ~of_:[ "deadlock"; "leak" ] cls)

let shrink_peak_prop =
  mutation_prop
    "shrinking a declared buffer peak yields exactly a peak mismatch"
    ~count:25
    (fun seed p ->
      match p.Program.buffer_peak with
      | [] -> None
      | peaks ->
        let n = seed mod List.length peaks in
        let buffer_peak =
          List.mapi
            (fun i (buf, bytes) ->
              if i = n then (buf, max 0 ((bytes / 2) - 1)) else (buf, bytes))
            peaks
        in
        Some { p with Program.buffer_peak })
    (fun cls -> cls = [ "peak" ])

(* ------------------------------------------------------------------ *)
(* Flag leaks and concat composition                                   *)

let leaky_program =
  Program.make ~name:"leaky"
    [
      set Pipe.Cube Pipe.Vector 3;
      wait Pipe.Cube Pipe.Vector 3;
      set Pipe.Cube Pipe.Vector 3;
    ]

let test_flag_leak_detected () =
  let fs = Verify.analyze Config.max leaky_program in
  Alcotest.(check (list string)) "leak found" [ "leak" ] (classes fs);
  match Program.flag_leaks leaky_program with
  | [ (Pipe.Cube, Pipe.Vector, 3, 1) ] -> ()
  | _ -> Alcotest.fail "flag_leaks must report the Cube->Vector #3 leak"

let test_concat_rejects_leaky_parts () =
  let clean =
    Program.make ~name:"clean"
      [ set Pipe.Cube Pipe.Vector 0; wait Pipe.Cube Pipe.Vector 0 ]
  in
  (match Program.concat ~name:"ok" [ clean; clean ] with
  | p -> Alcotest.(check int) "concat ok" 6 (Program.length p));
  match Program.concat ~name:"bad" [ leaky_program; clean ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "concat must reject a flag-leaky part"

(* ------------------------------------------------------------------ *)
(* Peak recomputation                                                  *)

let test_derived_buffer_peak () =
  let p =
    Program.make ~name:"peaks"
      [
        Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub
          ~dst_slot:0 ~bytes:1000 ();
        Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub
          ~dst_slot:1 ~bytes:500 ();
        (* in-place update: no extra allocation *)
        Instruction.vector_op ~op_name:"t" ~bytes:800 ~ub_in_slot:0
          ~ub_out_slot:0 ();
      ]
  in
  Alcotest.(check int) "two slots sum" 1500
    (List.assoc Buffer_id.Ub (Program.derived_buffer_peak p))

let test_capacity_overflow_detected () =
  let big = Config.max.Config.buffers.ub_bytes + 16 in
  let p =
    Program.make ~name:"huge"
      ~buffer_peak:[ (Buffer_id.Ub, big) ]
      [
        Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub
          ~bytes:big ();
      ]
  in
  let cls = classes (Verify.analyze Config.max p) in
  Alcotest.(check bool) "capacity overflow reported" true
    (List.mem "capacity" cls)

(* ------------------------------------------------------------------ *)
(* Whole-SoC schedule analysis                                         *)

module Soc = Ascend.Verify.Soc
module Soc_schedule = Ascend.Compiler.Soc_schedule

let region base bytes = { Soc.base; bytes }

let task ?(deps = []) ?(reads = []) ?(writes = []) ?(working_set = 0) id core
    tag =
  {
    Soc.id;
    core;
    tag;
    deps;
    reads;
    writes;
    ext_read_bytes = 0;
    ext_write_bytes = 0;
    working_set_bytes = working_set;
  }

let plan ?(cores = 2) ?llc_bytes ?hbm_bytes ?(weights = 0) tasks =
  {
    Soc.soc_name = "test";
    cores;
    llc_bytes;
    hbm_bytes;
    weight_resident_bytes = weights;
    tasks;
  }

let test_soc_zoo_plans_race_free () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun config ->
          if Config.supports config (Ascend.Nn.Graph.dtype g) then
            let p, _ = Soc_schedule.build config g in
            match Soc.analyze p with
            | [] -> ()
            | fs ->
              Alcotest.failf "%s / %s: %s" name config.Config.name (report fs))
        Config.all)
    (zoo ())

let test_soc_cross_core_races () =
  let w = task 0 0 "w" ~writes:[ ("a", region 0 100) ] in
  let r1 = task 1 1 "r" ~reads:[ ("a", region 0 100) ] in
  Alcotest.(check (list string)) "RAW" [ "soc-race/RAW" ]
    (classes (Soc.analyze (plan [ w; r1 ])));
  Alcotest.(check (list string)) "dep edge orders them" []
    (classes (Soc.analyze (plan [ w; { r1 with Soc.deps = [ 0 ] } ])));
  Alcotest.(check (list string)) "same core is program order" []
    (classes (Soc.analyze (plan [ w; { r1 with Soc.core = 0 } ])));
  let w2 = task 1 1 "w2" ~writes:[ ("b", region 50 100) ] in
  Alcotest.(check (list string)) "WAW" [ "soc-race/WAW" ]
    (classes (Soc.analyze (plan [ w; w2 ])));
  let rd = task 0 0 "rd" ~reads:[ ("a", region 0 100) ] in
  Alcotest.(check (list string)) "WAR" [ "soc-race/WAR" ]
    (classes (Soc.analyze (plan [ rd; w2 ])));
  Alcotest.(check (list string)) "disjoint regions never race" []
    (classes
       (Soc.analyze
          (plan [ w; task 1 1 "far" ~writes:[ ("c", region 1000 8) ] ])))

let test_soc_transitive_order () =
  (* ordering propagates through the dependency graph: t0 -> t1 -> t2
     orders t0 and t2 even though no direct edge connects them *)
  let t0 = task 0 0 "t0" ~writes:[ ("a", region 0 100) ] in
  let t1 = task 1 1 "t1" ~deps:[ 0 ] in
  let t2 = task 2 2 "t2" ~deps:[ 1 ] ~reads:[ ("a", region 0 100) ] in
  Alcotest.(check (list string)) "transitive edge orders the pair" []
    (classes (Soc.analyze (plan ~cores:3 [ t0; t1; t2 ])))

let test_soc_deadlock () =
  let a = task 0 0 "a" ~deps:[ 1 ] in
  let b = task 1 1 "b" ~deps:[ 0 ] in
  Alcotest.(check (list string)) "cycle" [ "soc-deadlock" ]
    (classes (Soc.analyze (plan [ a; b ])));
  Alcotest.(check (list string)) "missing dependency" [ "soc-deadlock" ]
    (classes (Soc.analyze (plan [ task 0 0 "x" ~deps:[ 9 ] ])))

let test_soc_overcommit () =
  let w = task 0 0 "p" ~writes:[ ("a", region 0 1000) ] in
  let r = task 1 1 "c" ~deps:[ 0 ] ~reads:[ ("a", region 0 1000) ] in
  let fs = Soc.analyze (plan ~hbm_bytes:512 ~weights:100 [ w; r ]) in
  Alcotest.(check (list string)) "HBM" [ "soc-overcommit/HBM" ] (classes fs);
  Alcotest.(check bool) "HBM overcommit is an error" true
    (List.for_all Finding.is_error fs);
  Alcotest.(check (list string)) "fits: no finding" []
    (classes (Soc.analyze (plan ~hbm_bytes:4096 ~weights:100 [ w; r ])));
  let b0 = task 0 0 "b0" ~working_set:600 in
  let b1 = task 1 1 "b1" ~working_set:600 in
  let fs2 = Soc.analyze (plan ~llc_bytes:1000 [ b0; b1 ]) in
  Alcotest.(check (list string)) "LLC" [ "soc-overcommit/LLC" ] (classes fs2);
  Alcotest.(check bool) "LLC overcommit is a warning" true
    (List.for_all (fun f -> not (Finding.is_error f)) fs2)

(* the ISSUE's headline mutation: built plans are race-free by
   construction, and dropping a cross-core dependency edge between two
   footprint-conflicting tasks exposes a Soc_race *)
let test_soc_drop_edge_mutation () =
  let overlap xs ys =
    List.exists
      (fun (_, r1) ->
        List.exists (fun (_, r2) -> Soc.region_overlaps r1 r2) ys)
      xs
  in
  let conflicts (a : Soc.task) (b : Soc.task) =
    overlap a.Soc.writes b.Soc.writes
    || overlap a.Soc.writes b.Soc.reads
    || overlap a.Soc.reads b.Soc.writes
  in
  let raced_drops = ref 0 in
  List.iter
    (fun g ->
      let p, _ = Soc_schedule.build Config.max g in
      let by_id = Hashtbl.create 64 in
      List.iter
        (fun (t : Soc.task) -> Hashtbl.replace by_id t.Soc.id t)
        p.Soc.tasks;
      List.iter
        (fun (t : Soc.task) ->
          List.iter
            (fun d ->
              match Hashtbl.find_opt by_id d with
              | Some dt when dt.Soc.core <> t.Soc.core && conflicts dt t ->
                let tasks =
                  List.map
                    (fun (u : Soc.task) ->
                      if u.Soc.id = t.Soc.id then
                        { u with
                          Soc.deps = List.filter (fun x -> x <> d) u.Soc.deps
                        }
                      else u)
                    p.Soc.tasks
                in
                if
                  List.exists
                    (fun (f : Finding.t) ->
                      match f.Finding.kind with
                      | Finding.Soc_race _ -> true
                      | _ -> false)
                    (Soc.analyze { p with Soc.tasks })
                then incr raced_drops
              | _ -> ())
            t.Soc.deps)
        p.Soc.tasks)
    [ Ascend.Nn.Siamese.build (); Ascend.Nn.Fpn_detector.build () ];
  Alcotest.(check bool)
    (Printf.sprintf "some dropped cross-core edge races (got %d)" !raced_drops)
    true (!raced_drops > 0)

(* ------------------------------------------------------------------ *)
(* Finding rendering goldens (pinned: the differential CI gate         *)
(* byte-compares documents built from these)                           *)

let test_finding_goldens () =
  let f =
    Finding.make ~index:3 ~pipe:Pipe.Vector ~buffer:Buffer_id.Ub
      (Finding.Hazard { dep = "RAW" })
      "msg"
  in
  Alcotest.(check string) "pp includes pipe and buffer"
    "[error] hazard/RAW @3 (V, UB): msg" (Finding.to_string f);
  Alcotest.(check string) "json field order pinned"
    "{\"kind\":\"hazard/RAW\",\"severity\":\"error\",\"index\":3,\"pipe\":\"V\",\"buffer\":\"UB\",\"message\":\"msg\"}"
    (Ascend.Util.Json.to_string (Finding.to_json f));
  let warn =
    Finding.make ~severity:Finding.Warning ~buffer:Buffer_id.L1
      (Finding.Soc_overcommit { resource = "LLC" })
      "m"
  in
  Alcotest.(check string) "warning pp omits unknown parts"
    "[warning] soc-overcommit/LLC (L1): m" (Finding.to_string warn);
  Alcotest.(check string) "null fields serialise as null"
    "{\"kind\":\"soc-overcommit/LLC\",\"severity\":\"warning\",\"index\":null,\"pipe\":null,\"buffer\":\"L1\",\"message\":\"m\"}"
    (Ascend.Util.Json.to_string (Finding.to_json warn))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "verify"
    [
      ( "zoo",
        [
          Alcotest.test_case "zoo clean under all options" `Slow
            test_zoo_clean_all_options;
          quick "strict validate clean on codegen"
            test_strict_validate_clean_on_codegen;
        ] );
      ( "deadlock",
        [
          quick "cyclic waits" test_cyclic_wait_deadlock;
          quick "ordering beats counting" test_wait_ordering_not_counting;
        ] );
      ( "hazard",
        [
          quick "broken double buffering" test_broken_double_buffering_detected;
        ] );
      ( "mutations",
        List.map QCheck_alcotest.to_alcotest
          [ drop_set_prop; swap_wait_prop; shrink_peak_prop ] );
      ( "compose",
        [
          quick "flag leak" test_flag_leak_detected;
          quick "concat rejects leaky" test_concat_rejects_leaky_parts;
        ] );
      ( "peaks",
        [
          quick "derived peak" test_derived_buffer_peak;
          quick "capacity overflow" test_capacity_overflow_detected;
        ] );
      ( "soc",
        [
          Alcotest.test_case "zoo plans race-free" `Slow
            test_soc_zoo_plans_race_free;
          quick "cross-core races" test_soc_cross_core_races;
          quick "transitive order" test_soc_transitive_order;
          quick "deadlock" test_soc_deadlock;
          quick "overcommit" test_soc_overcommit;
          quick "drop-edge mutation" test_soc_drop_edge_mutation;
        ] );
      ( "finding",
        [ quick "pp and json goldens" test_finding_goldens ] );
    ]
