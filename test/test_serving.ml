(* Request-level serving subsystem (lib/serving): load generation,
   dynamic batching, admission control, SLO metrics, and the end-to-end
   discrete-event dispatcher over the §5.2 scheduler. *)

module Load_gen = Ascend.Serving.Load_gen
module Batcher = Ascend.Serving.Batcher
module Request = Ascend.Serving.Request
module Metrics = Ascend.Serving.Metrics
module Cost = Ascend.Serving.Cost
module Serve = Ascend.Serving.Serve
module Config = Ascend.Arch.Config
module Json = Ascend.Util.Json

let req ?(model = "m") ?(priority = 0) ?(slo_s = 1.) id arrival_s =
  { Request.id; model; arrival_s; priority; slo_s }

(* ------------------------------------------------------------------ *)
(* Load generation                                                    *)

let test_load_gen_deterministic () =
  let spec process =
    Load_gen.create ~process ~rate_per_s:500. ~duration_s:0.5 ~seed:42 ()
  in
  List.iter
    (fun p ->
      let a = Load_gen.arrivals (spec p) in
      let b = Load_gen.arrivals (spec p) in
      Alcotest.(check (list (float 0.)))
        (Load_gen.process_name p ^ " reproducible") a b)
    [ Load_gen.Uniform; Load_gen.Poisson;
      Load_gen.Bursty { factor = 4.; period_s = 0.1 } ];
  let other =
    Load_gen.arrivals
      (Load_gen.create ~rate_per_s:500. ~duration_s:0.5 ~seed:43 ())
  in
  Alcotest.(check bool) "seed matters" true
    (other <> Load_gen.arrivals (spec Load_gen.Poisson))

let test_load_gen_uniform_spacing () =
  let g = Load_gen.create ~process:Load_gen.Uniform ~rate_per_s:100.
      ~duration_s:0.1 ~seed:0 ()
  in
  let a = Load_gen.arrivals g in
  Alcotest.(check int) "count = rate * duration" 10 (List.length a);
  List.iteri
    (fun i t ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "arrival %d at i/rate" i)
        (float_of_int i /. 100.) t)
    a

let arrivals_well_formed_prop =
  QCheck.Test.make ~count:60 ~name:"arrivals sorted within [0, duration)"
    QCheck.(pair (int_range 0 1000) (int_range 1 3))
    (fun (seed, which) ->
      let process =
        match which with
        | 1 -> Load_gen.Uniform
        | 2 -> Load_gen.Poisson
        | _ -> Load_gen.Bursty { factor = 3.; period_s = 0.05 }
      in
      let g =
        Load_gen.create ~process ~rate_per_s:800. ~duration_s:0.2 ~seed ()
      in
      let a = Load_gen.arrivals g in
      let rec sorted = function
        | x :: (y :: _ as rest) -> x <= y && sorted rest
        | _ -> true
      in
      sorted a && List.for_all (fun t -> t >= 0. && t < 0.2) a)

let test_poisson_rate () =
  (* 200 expected arrivals: the count should land well within +-30% *)
  let g = Load_gen.create ~rate_per_s:200. ~duration_s:1.0 ~seed:7 () in
  let n = List.length (Load_gen.arrivals g) in
  Alcotest.(check bool) "count near rate * duration" true
    (n > 140 && n < 260)

let test_length_dist_pinned () =
  (* fixed lengths are constant regardless of seed *)
  Alcotest.(check (list int)) "fixed" [ 7; 7; 7 ]
    (Load_gen.lengths (Load_gen.Fixed 7) ~seed:1 ~n:3);
  (* the geometric stream is a pinned pure function of its seed *)
  let geo = Load_gen.Geometric { mean = 8.; max_len = 32 } in
  let a = Load_gen.lengths geo ~seed:42 ~n:8 in
  Alcotest.(check (list int)) "geometric pinned trace"
    [ 7; 2; 2; 1; 30; 3; 3; 2 ] a;
  Alcotest.(check (list int)) "reproducible" a
    (Load_gen.lengths geo ~seed:42 ~n:8);
  Alcotest.(check bool) "seed matters" true
    (Load_gen.lengths geo ~seed:43 ~n:8 <> a);
  Alcotest.(check string) "dist names" "fixed:geometric"
    (Load_gen.length_dist_name (Load_gen.Fixed 1)
    ^ ":"
    ^ Load_gen.length_dist_name geo)

let test_length_dist_shape () =
  let geo = Load_gen.Geometric { mean = 8.; max_len = 32 } in
  let draws = Load_gen.lengths geo ~seed:7 ~n:500 in
  List.iter
    (fun l ->
      Alcotest.(check bool) "draw within [1, max_len]" true (l >= 1 && l <= 32))
    draws;
  let mean =
    float_of_int (List.fold_left ( + ) 0 draws) /. float_of_int 500
  in
  Alcotest.(check bool) "empirical mean near the target" true
    (mean > 6. && mean < 10.);
  Alcotest.check_raises "bad mean rejected"
    (Invalid_argument "Load_gen.lengths: geometric mean < 1") (fun () ->
      ignore
        (Load_gen.lengths
           (Load_gen.Geometric { mean = 0.5; max_len = 4 })
           ~seed:0 ~n:1))

let test_bursty_structure () =
  let factor = 4. and period_s = 0.1 in
  let g =
    Load_gen.create ~process:(Load_gen.Bursty { factor; period_s })
      ~rate_per_s:400. ~duration_s:1.0 ~seed:11 ()
  in
  let a = Load_gen.arrivals g in
  (* every arrival falls in the on-phase: the first period/factor of
     its window *)
  let on_len = period_s /. factor in
  List.iter
    (fun t ->
      let into = Float.rem t period_s in
      Alcotest.(check bool) "arrival inside on-phase" true
        (into <= on_len +. 1e-9))
    a;
  (* the on/off modulation preserves the mean rate *)
  let n = List.length a in
  Alcotest.(check bool) "mean rate preserved" true (n > 280 && n < 520)

(* ------------------------------------------------------------------ *)
(* Dynamic batcher + admission control                                 *)

let test_batcher_coalescing_bounds () =
  let b = Batcher.create ~max_batch:4 ~max_delay_s:1. ~queue_depth:64 () in
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "offer %d admitted" i)
      true
      (Batcher.offer b (req i 0.) = Batcher.Admitted)
  done;
  Alcotest.(check bool) "full queue is ready" true (Batcher.ready b ~now:0.);
  let batch = Batcher.take b in
  Alcotest.(check int) "batch capped at max_batch" 4 (List.length batch);
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3 ]
    (List.map (fun r -> r.Request.id) batch);
  Alcotest.(check int) "rest still queued" 6 (Batcher.length b);
  ignore (Batcher.take b);
  Alcotest.(check int) "tail batch is the remainder" 2
    (List.length (Batcher.take b))

let test_batcher_delay_bound () =
  let b = Batcher.create ~max_batch:8 ~max_delay_s:0.002 ~queue_depth:64 () in
  ignore (Batcher.offer b (req 0 0.010));
  Alcotest.(check bool) "below max_batch and fresh: not ready" false
    (Batcher.ready b ~now:0.011);
  Alcotest.(check (option (float 1e-12))) "deadline = arrival + delay"
    (Some 0.012) (Batcher.deadline b);
  Alcotest.(check bool) "ready at the delay bound" true
    (Batcher.ready b ~now:0.012);
  Alcotest.(check int) "partial batch released" 1
    (List.length (Batcher.take b));
  Alcotest.(check (option (float 0.))) "empty queue has no deadline" None
    (Batcher.deadline b)

let test_admission_sheds_only_past_depth () =
  let b = Batcher.create ~max_batch:4 ~max_delay_s:1. ~queue_depth:3 () in
  let verdicts = List.init 5 (fun i -> Batcher.offer b (req i 0.)) in
  Alcotest.(check (list bool)) "first depth admitted, rest shed"
    [ true; true; true; false; false ]
    (List.map (fun v -> v = Batcher.Admitted) verdicts);
  (* draining the queue re-opens admission *)
  ignore (Batcher.take b);
  Alcotest.(check bool) "admits again after drain" true
    (Batcher.offer b (req 9 1.) = Batcher.Admitted)

(* random op sequences against a FIFO reference model: drains come out
   in offer order, the shed counter counts exactly the over-depth
   offers, and the live length always agrees with the model *)
let batcher_fifo_model_prop =
  QCheck.Test.make ~count:200 ~name:"offer/drain matches a FIFO reference"
    QCheck.(pair (int_range 1 6) (small_list (int_bound 3)))
    (fun (max_batch, ops) ->
      let depth = 5 in
      let b =
        Batcher.create ~max_batch ~max_delay_s:1. ~queue_depth:depth ()
      in
      let model = Queue.create () in
      let next = ref 0 and sheds = ref 0 and ok = ref true in
      List.iter
        (fun op ->
          if op = 0 then (
            (* drain: up to max_batch ids, oldest first *)
            let expect = ref [] in
            for _ = 1 to min max_batch (Queue.length model) do
              expect := Queue.pop model :: !expect
            done;
            let got = List.map (fun r -> r.Request.id) (Batcher.take b) in
            if got <> List.rev !expect then ok := false)
          else (
            let id = !next in
            incr next;
            let v = Batcher.offer b (req id 0.) in
            if Queue.length model >= depth then (
              incr sheds;
              if v <> Batcher.Shed then ok := false)
            else (
              Queue.push id model;
              if v <> Batcher.Admitted then ok := false)))
        ops;
      !ok
      && Batcher.sheds b = !sheds
      && Batcher.length b = Queue.length model)

(* the shed counter never decreases, and moves only on a Shed verdict *)
let batcher_sheds_monotone_prop =
  QCheck.Test.make ~count:200 ~name:"sheds counter is monotone"
    QCheck.(small_list bool)
    (fun ops ->
      let b =
        Batcher.create ~max_batch:2 ~max_delay_s:1. ~queue_depth:3 ()
      in
      let last = ref 0 and id = ref 0 and ok = ref true in
      List.iter
        (fun offer ->
          (if offer then (
             let v = Batcher.offer b (req !id 0.) in
             incr id;
             let s = Batcher.sheds b in
             let bumped = s = !last + 1 and flat = s = !last in
             if not (if v = Batcher.Shed then bumped else flat) then
               ok := false)
           else ignore (Batcher.take b));
          if Batcher.sheds b < !last then ok := false;
          last := Batcher.sheds b)
        ops;
      !ok)

(* ready holds exactly when the queue is a full batch, or the oldest
   queued request has exhausted its delay bound *)
let batcher_ready_iff_prop =
  QCheck.Test.make ~count:300 ~name:"ready iff full batch or delay bound"
    QCheck.(
      triple (int_range 1 8)
        (small_list (float_bound_inclusive 0.01))
        (float_bound_inclusive 0.05))
    (fun (max_batch, gaps, wait) ->
      let max_delay_s = 0.02 in
      let b =
        Batcher.create ~max_batch ~max_delay_s ~queue_depth:64 ()
      in
      let t = ref 0. in
      List.iteri
        (fun i gap ->
          t := !t +. Float.abs gap;
          ignore (Batcher.offer b (req i !t)))
        gaps;
      let now = !t +. Float.abs wait in
      let expect =
        Batcher.length b >= max_batch
        || (match Batcher.oldest b with
           | Some r -> now -. r.Request.arrival_s >= max_delay_s
           | None -> false)
      in
      Batcher.ready b ~now = expect)

(* ------------------------------------------------------------------ *)
(* Metrics vs a hand-computed trace                                    *)

let test_metrics_hand_computed () =
  (* ten completions with latencies exactly 1..10 ms, SLO 6 ms, one
     request rejected on arrival *)
  let records =
    List.init 10 (fun i ->
        let lat_s = float_of_int (i + 1) /. 1000. in
        {
          Request.request = req ~slo_s:0.006 i 0.;
          outcome = Request.Completed;
          start_s = 0.;
          finish_s = lat_s;
          batch = 2;
          core = i mod 2;
        })
    @ [ Request.rejected (req ~slo_s:0.006 10 0.5) ]
  in
  let m =
    Metrics.build ~duration_s:1.0 ~bucket_s:0.25 ~cores:2
      ~models:[ ("m", 0, 6.) ]
      ~busy:[ (0, 0., 0.25); (1, 0.5, 0.75) ]
      records
  in
  let s = List.hd m.Metrics.summaries in
  Alcotest.(check int) "offered" 11 s.Metrics.offered;
  Alcotest.(check int) "completed" 10 s.Metrics.completed;
  Alcotest.(check int) "rejected" 1 s.Metrics.rejected;
  Alcotest.(check (float 1e-9)) "mean" 5.5 s.Metrics.mean_ms;
  (* Stats.percentile is nearest-rank (value at rank ceil(p/100 * n)):
     n=10 over 1..10 ms gives p50 = 5 (rank 5), p95 = p99 = 10
     (ranks 10) — always an observed latency, never interpolated *)
  Alcotest.(check (float 1e-9)) "p50" 5. s.Metrics.p50_ms;
  Alcotest.(check (float 1e-9)) "p95" 10. s.Metrics.p95_ms;
  Alcotest.(check (float 1e-9)) "p99" 10. s.Metrics.p99_ms;
  Alcotest.(check (float 1e-9)) "max" 10. s.Metrics.max_ms;
  (* 6 of 10 completions landed within the 6 ms SLO *)
  Alcotest.(check (float 1e-9)) "slo attainment" 0.6 s.Metrics.slo_attainment;
  Alcotest.(check (float 1e-9)) "goodput" 6. s.Metrics.goodput_per_s;
  Alcotest.(check (float 1e-9)) "throughput" 10. s.Metrics.throughput_per_s;
  Alcotest.(check (float 1e-9)) "rejection rate" (1. /. 11.)
    s.Metrics.rejection_rate;
  Alcotest.(check (float 1e-9)) "mean batch" 2. s.Metrics.mean_batch;
  (* each core busy 0.25 s of the 1 s horizon *)
  Array.iter
    (fun u -> Alcotest.(check (float 1e-9)) "core utilization" 0.25 u)
    m.Metrics.core_utilization;
  (* bucket 0: core0 busy, core1 idle -> mean 0.5; bucket 1: idle *)
  Alcotest.(check (float 1e-9)) "occupancy bucket0" 0.5
    m.Metrics.occupancy.(0);
  Alcotest.(check (float 1e-9)) "occupancy bucket1" 0. m.Metrics.occupancy.(1);
  (* the ASCII table carries the SLO attainment column *)
  let ascii = Format.asprintf "%a" Metrics.pp m in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "slo%% column" true (contains ascii "slo%");
  Alcotest.(check bool) "slo%% value" true (contains ascii "60.0%")

(* ------------------------------------------------------------------ *)
(* End-to-end serve runs (tiny core + gesture net: fast to compile)    *)

let gesture ~batch = Ascend.Nn.Gesture.build ~batch ()

let open_spec ?(priority = 0) ?(slo_ms = 20.) ?(rate = 400.) ?(seed = 5) name
    =
  {
    Serve.name;
    build = gesture;
    priority;
    slo_ms;
    workload =
      Serve.Open_loop
        (Load_gen.create ~rate_per_s:rate ~duration_s:0.2 ~seed ());
  }

let small_config ?(cores = 2) ?(queue_depth = 64) () =
  { (Serve.default_config ~core:Config.tiny ~cores) with
    Serve.duration_s = 0.2; max_batch = 4 }
  |> fun c -> { c with Serve.queue_depth }

let run_ok config specs =
  match Serve.run config specs with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_serve_conservation () =
  let r = run_ok (small_config ()) [ open_spec "gesture" ] in
  let completed, rejected =
    List.fold_left
      (fun (c, j) (rec_ : Request.record) ->
        match rec_.Request.outcome with
        | Request.Completed -> (c + 1, j)
        | Request.Rejected -> (c, j + 1))
      (0, 0) r.Serve.records
  in
  let s = List.hd r.Serve.metrics.Metrics.summaries in
  Alcotest.(check int) "offered = completed + rejected" s.Metrics.offered
    (completed + rejected);
  Alcotest.(check int) "summary agrees on completions" s.Metrics.completed
    completed;
  List.iter
    (fun (b : Serve.batch_exec) ->
      Alcotest.(check bool) "batch within bound" true
        (b.Serve.bx_size >= 1 && b.Serve.bx_size <= 4);
      Alcotest.(check bool) "core in range" true
        (b.Serve.bx_core >= 0 && b.Serve.bx_core < 2);
      Alcotest.(check bool) "positive span" true
        (b.Serve.bx_finish_s > b.Serve.bx_start_s))
    r.Serve.batches;
  List.iter
    (fun (rec_ : Request.record) ->
      match rec_.Request.outcome with
      | Request.Rejected -> ()
      | Request.Completed ->
        Alcotest.(check bool) "no time travel" true
          (rec_.Request.start_s >= rec_.Request.request.Request.arrival_s
          && rec_.Request.finish_s > rec_.Request.start_s))
    r.Serve.records;
  (* distinct (config, fused group, options) keys compile once — at
     most 4 batch sizes x the gesture net's group count — and every
     re-priced batch resolves in the content-addressed cache *)
  let groups_per_graph =
    List.length (Ascend.Compiler.Fusion.partition (gesture ~batch:1))
  in
  Alcotest.(check bool) "cache does the work" true
    (r.Serve.cost_misses <= 4 * groups_per_graph
    && r.Serve.cost_hits > r.Serve.cost_misses)

let test_serve_open_loop_deterministic () =
  let run () = run_ok (small_config ()) [ open_spec "gesture" ] in
  let a = Json.to_string (Serve.to_json (run ())) in
  let b = Json.to_string (Serve.to_json (run ())) in
  Alcotest.(check string) "byte-identical JSON" a b;
  let other =
    run_ok (small_config ()) [ open_spec ~seed:6 "gesture" ]
  in
  Alcotest.(check bool) "different seed, different trace" true
    (Json.to_string (Serve.to_json other) <> a)

let test_serve_closed_loop_deterministic () =
  let spec () =
    {
      Serve.name = "gesture";
      build = gesture;
      priority = 0;
      slo_ms = 20.;
      workload = Serve.Closed_loop { clients = 3; think_s = 0.002; seed = 9 };
    }
  in
  let run () = run_ok (small_config ()) [ spec () ] in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical JSON"
    (Json.to_string (Serve.to_json a))
    (Json.to_string (Serve.to_json b));
  let s = List.hd a.Serve.metrics.Metrics.summaries in
  Alcotest.(check bool) "clients kept the loop busy" true
    (s.Metrics.completed > 3);
  Alcotest.(check int) "closed loop never sheds" 0 s.Metrics.rejected;
  (* the summary surfaces the cost service's cache, disk tier included *)
  let rendered = Format.asprintf "%a" Serve.pp a in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "exec cache line" true
    (contains rendered "exec cache:");
  Alcotest.(check bool) "disk tier counters" true
    (contains rendered "disk tier:")

let test_serve_qos_under_overload () =
  (* one tiny core, two identical models, heavy load: the
     high-priority model must see the shorter queueing delay *)
  let mk name priority slo_ms seed =
    {
      (open_spec ~priority ~slo_ms ~rate:3000. ~seed name) with
      Serve.build = gesture;
    }
  in
  let config = small_config ~cores:1 ~queue_depth:16 () in
  let r =
    run_ok config [ mk "critical" 5 10. 21; mk "background" 0 50. 22 ]
  in
  let find name =
    List.find
      (fun s -> s.Metrics.model = name)
      r.Serve.metrics.Metrics.summaries
  in
  let crit = find "critical" and bg = find "background" in
  Alcotest.(check bool) "overload actually sheds" true
    (crit.Metrics.rejected + bg.Metrics.rejected > 0);
  Alcotest.(check bool) "high priority sees lower p95" true
    (crit.Metrics.p95_ms < bg.Metrics.p95_ms);
  Alcotest.(check bool) "high priority holds the tighter SLO" true
    (crit.Metrics.slo_attainment >= bg.Metrics.slo_attainment)

let test_serve_offline_bound () =
  let r = run_ok (small_config ()) [ open_spec "gesture" ] in
  (* the offline repack sees all work at t=0: its makespan can't exceed
     the span the online run actually used *)
  let online_busy_cycles =
    List.fold_left (fun acc (b : Serve.batch_exec) -> acc + b.Serve.bx_cycles)
      0 r.Serve.batches
  in
  Alcotest.(check bool) "offline makespan >= busy / cores" true
    (r.Serve.offline_makespan_cycles * 2 >= online_busy_cycles);
  Alcotest.(check bool) "offline utilization in (0,1]" true
    (r.Serve.offline_utilization > 0. && r.Serve.offline_utilization <= 1.);
  Alcotest.(check int) "one offline app per model" 1
    (List.length (Serve.scheduler_apps r))

let test_serve_rejects_bad_inputs () =
  Alcotest.(check bool) "empty spec list raises" true
    (try
       ignore (Serve.run (small_config ()) []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate model names raise" true
    (try
       ignore
         (Serve.run (small_config ())
            [ open_spec "gesture"; open_spec "gesture" ]);
       false
     with Invalid_argument _ -> true)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "serving"
    [
      ( "load-gen",
        [
          Alcotest.test_case "deterministic" `Quick
            test_load_gen_deterministic;
          Alcotest.test_case "uniform spacing" `Quick
            test_load_gen_uniform_spacing;
          Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
          Alcotest.test_case "bursty structure" `Quick test_bursty_structure;
          Alcotest.test_case "length dist pinned" `Quick
            test_length_dist_pinned;
          Alcotest.test_case "length dist shape" `Quick
            test_length_dist_shape;
          q arrivals_well_formed_prop;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "coalescing bounds" `Quick
            test_batcher_coalescing_bounds;
          Alcotest.test_case "delay bound" `Quick test_batcher_delay_bound;
          Alcotest.test_case "admission depth" `Quick
            test_admission_sheds_only_past_depth;
          q batcher_fifo_model_prop;
          q batcher_sheds_monotone_prop;
          q batcher_ready_iff_prop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "hand-computed trace" `Quick
            test_metrics_hand_computed;
        ] );
      ( "serve",
        [
          Alcotest.test_case "conservation" `Quick test_serve_conservation;
          Alcotest.test_case "open-loop determinism" `Quick
            test_serve_open_loop_deterministic;
          Alcotest.test_case "closed-loop determinism" `Quick
            test_serve_closed_loop_deterministic;
          Alcotest.test_case "qos under overload" `Quick
            test_serve_qos_under_overload;
          Alcotest.test_case "offline bound" `Quick test_serve_offline_bound;
          Alcotest.test_case "invalid inputs" `Quick
            test_serve_rejects_bad_inputs;
        ] );
    ]
