open Ascend.Isa
module Config = Ascend.Arch.Config
module Precision = Ascend.Arch.Precision

let cube m k n =
  Instruction.cube_matmul ~m ~k ~n ~precision:Precision.Fp16 ()

let vec bytes =
  Instruction.vector_op ~op_name:"t" ~bytes ()

(* ------------------------------------------------------------------ *)

let test_pipe_indices () =
  Alcotest.(check int) "six pipes" 6 Pipe.count;
  List.iteri
    (fun i p -> Alcotest.(check int) (Pipe.name p) i (Pipe.index p))
    Pipe.all

let test_legal_moves () =
  let check src dst expected =
    let actual = Buffer_id.legal_move ~src ~dst in
    Alcotest.(check bool)
      (Printf.sprintf "%s->%s" (Buffer_id.name src) (Buffer_id.name dst))
      true
      (match (actual, expected) with
      | Some p, Some q -> Pipe.equal p q
      | None, None -> true
      | _ -> false)
  in
  check Buffer_id.External Buffer_id.L1 (Some Pipe.Mte2);
  check Buffer_id.L1 Buffer_id.L0a (Some Pipe.Mte1);
  check Buffer_id.L1 Buffer_id.L0b (Some Pipe.Mte1);
  check Buffer_id.L0c Buffer_id.Ub (Some Pipe.Vector);
  check Buffer_id.Ub Buffer_id.External (Some Pipe.Mte3);
  (* the cube's L0 buffers are not directly reachable from outside *)
  check Buffer_id.External Buffer_id.L0a None;
  check Buffer_id.L0a Buffer_id.L0b None;
  check Buffer_id.Ub Buffer_id.L0c None

let test_mte_move_smart_constructor () =
  Alcotest.(check bool) "legal ok" true
    (match
       Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
         ~bytes:64 ()
     with
    | Instruction.Mte_move _ -> true
    | _ -> false);
  Alcotest.(check bool) "illegal raises" true
    (try
       ignore
         (Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L0a
            ~bytes:64 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad decompress ratio" true
    (try
       ignore
         (Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0b
            ~transform:(Instruction.Decompress { ratio = 1.5 })
            ~bytes:64 ());
       false
     with Invalid_argument _ -> true)

let test_source_bytes () =
  let plain =
    Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a ~bytes:900 ()
  in
  Alcotest.(check int) "plain" 900 (Instruction.source_bytes plain);
  let i2c =
    Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
      ~transform:(Instruction.Img2col { expansion = 9. })
      ~bytes:900 ()
  in
  Alcotest.(check int) "img2col reads 1/9" 100 (Instruction.source_bytes i2c);
  let dec =
    Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0b
      ~transform:(Instruction.Decompress { ratio = 0.5 })
      ~bytes:900 ()
  in
  Alcotest.(check int) "decompress reads half" 450
    (Instruction.source_bytes dec)

let test_pipe_of () =
  Alcotest.(check bool) "cube" true
    (Instruction.pipe_of (cube 16 16 16) = Some Pipe.Cube);
  Alcotest.(check bool) "vector" true
    (Instruction.pipe_of (vec 64) = Some Pipe.Vector);
  Alcotest.(check bool) "set on from-pipe" true
    (Instruction.pipe_of
       (Instruction.Set_flag
          { from_pipe = Pipe.Mte1; to_pipe = Pipe.Cube; flag = 0 })
    = Some Pipe.Mte1);
  Alcotest.(check bool) "wait on to-pipe" true
    (Instruction.pipe_of
       (Instruction.Wait_flag
          { from_pipe = Pipe.Mte1; to_pipe = Pipe.Cube; flag = 0 })
    = Some Pipe.Cube);
  Alcotest.(check bool) "barrier has none" true
    (Instruction.pipe_of Instruction.Barrier = None)

(* ------------------------------------------------------------------ *)
(* Program validation                                                 *)

let test_validate_ok () =
  let p =
    Program.make ~name:"ok"
      [
        Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
          ~bytes:1024 ();
        Instruction.Set_flag
          { from_pipe = Pipe.Mte2; to_pipe = Pipe.Cube; flag = 0 };
        Instruction.Wait_flag
          { from_pipe = Pipe.Mte2; to_pipe = Pipe.Cube; flag = 0 };
        cube 16 16 16;
      ]
  in
  Alcotest.(check bool) "valid" true (Program.validate Config.max p = Ok ())

let test_validate_unbalanced_flags () =
  let p =
    Program.make ~name:"bad"
      [
        Instruction.Wait_flag
          { from_pipe = Pipe.Mte1; to_pipe = Pipe.Cube; flag = 3 };
      ]
  in
  match Program.validate Config.max p with
  | Error e ->
    Alcotest.(check bool) "mentions the flag" true
      (String.length e > 0 && String.contains e '3')
  | Ok () -> Alcotest.fail "must reject more waits than sets"

let test_validate_buffer_overflow () =
  let p =
    Program.make ~name:"big"
      ~buffer_peak:[ (Buffer_id.L0a, 10_000_000) ]
      [ cube 16 16 16 ]
  in
  match Program.validate Config.max p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject oversized buffer footprint"

let test_validate_unsupported_precision () =
  let p =
    Program.make ~name:"fp16-on-tiny"
      [
        Instruction.cube_matmul ~m:4 ~k:32 ~n:4 ~precision:Precision.Fp16 ();
      ]
  in
  match Program.validate Config.tiny p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tiny must reject fp16 cube work"

let test_concat_and_stats () =
  let a = Program.make ~name:"a" [ cube 16 16 16 ] in
  let b = Program.make ~name:"b" [ vec 256; vec 256 ] in
  let c = Program.concat ~name:"c" [ a; b ] in
  (* 3 instructions + 2 separators *)
  Alcotest.(check int) "length" 5 (Program.length c);
  let stats = Program.stats c in
  Alcotest.(check int) "cube count" 1 (List.assoc Pipe.Cube stats);
  Alcotest.(check int) "vector count" 2 (List.assoc Pipe.Vector stats)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_disassembly () =
  let p = Program.make ~name:"d" [ cube 32 16 16; vec 128 ] in
  let s = Format.asprintf "%a" Program.pp p in
  Alcotest.(check bool) "mentions matmul" true (contains_sub s "matmul");
  Alcotest.(check bool) "mentions bytes" true (contains_sub s "128B")

(* ------------------------------------------------------------------ *)
(* Binary encoding and compression (§3.2)                              *)

let sample_program =
  [
    Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1 ~bytes:4096 ();
    Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
      ~transform:(Instruction.Img2col { expansion = 9. })
      ~bytes:8192 ();
    Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0b
      ~transform:(Instruction.Decompress { ratio = 0.5 })
      ~bytes:2048 ();
    Instruction.Set_flag { from_pipe = Pipe.Mte1; to_pipe = Pipe.Cube; flag = 2 };
    Instruction.Wait_flag { from_pipe = Pipe.Mte1; to_pipe = Pipe.Cube; flag = 2 };
    Instruction.cube_matmul ~m:256 ~k:512 ~n:128 ~precision:Precision.Fp16
      ~accumulate:true ~l0a_slot:1 ~l0b_slot:1 ~l0c_slot:1 ();
    Instruction.vector_op ~op_name:"post" ~bytes:65536 ~writes_ub:false
      ~ub_in_slot:1 ();
    Instruction.Scalar_op { cycles = 7 };
    Instruction.Barrier;
  ]

let test_encode_decode_roundtrip () =
  let encoded = Encoding.encode sample_program in
  Alcotest.(check int) "16 bytes per instruction"
    (16 * List.length sample_program)
    (Bytes.length encoded);
  match Encoding.decode encoded with
  | Ok decoded ->
    Alcotest.(check int) "same length" (List.length sample_program)
      (List.length decoded);
    List.iter2
      (fun a b ->
        Alcotest.(check string) "instruction round-trips"
          (Format.asprintf "%a" Instruction.pp a)
          (Format.asprintf "%a" Instruction.pp b))
      sample_program decoded
  | Error e -> Alcotest.fail e

let test_decode_rejects_garbage () =
  (match Encoding.decode (Bytes.make 15 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short buffer must fail");
  match Encoding.decode (Bytes.make 16 '\xAB') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad opcode must fail"

let test_compress_roundtrip () =
  let raw = Encoding.encode sample_program in
  match Encoding.decompress (Encoding.compress raw) with
  | Ok back -> Alcotest.(check bool) "identical" true (Bytes.equal raw back)
  | Error e -> Alcotest.fail e

let test_compression_helps_on_loops () =
  (* a tiled loop body repeats near-identical instructions: the delta/RLE
     scheme must crush it (the §3.2 bandwidth argument) *)
  let loop =
    List.concat
      (List.init 64 (fun i ->
           [
             Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
               ~bytes:(4096 + (i mod 2)) ();
             Instruction.cube_matmul ~m:256 ~k:256 ~n:256
               ~precision:Precision.Fp16 ~accumulate:(i > 0) ();
           ]))
  in
  let ratio = Encoding.compression_ratio loop in
  Alcotest.(check bool) "at least 4x compression" true (ratio < 0.25);
  let raw =
    Encoding.fetch_bandwidth_bytes_per_cycle ~instructions_per_cycle:1.
      ~compressed:false loop
  in
  let packed =
    Encoding.fetch_bandwidth_bytes_per_cycle ~instructions_per_cycle:1.
      ~compressed:true loop
  in
  Alcotest.(check (float 1e-9)) "raw fetch = 16 B/cycle" 16. raw;
  Alcotest.(check bool) "compressed fetch under 4 B/cycle" true (packed < 4.)

let random_instr rng =
  let module P = Ascend.Util.Prng in
  match P.int rng ~bound:7 with
  | 0 ->
    Instruction.cube_matmul ~m:(1 + P.int rng ~bound:1024)
      ~k:(1 + P.int rng ~bound:1024) ~n:(1 + P.int rng ~bound:1024)
      ~precision:Precision.Fp16 ~accumulate:(P.bool rng)
      ~l0a_slot:(P.int rng ~bound:4) ~l0b_slot:(P.int rng ~bound:4)
      ~l0c_slot:(P.int rng ~bound:4) ()
  | 1 ->
    Instruction.vector_op ~op_name:"vec" ~bytes:(P.int rng ~bound:100000)
      ~reads_ub:(P.bool rng) ~writes_ub:(P.bool rng)
      ~ub_in_slot:(P.int rng ~bound:4) ~ub_out_slot:(P.int rng ~bound:4) ()
  | 2 ->
    Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
      ~src_slot:(P.int rng ~bound:4) ~dst_slot:(P.int rng ~bound:4)
      ~bytes:(P.int rng ~bound:100000) ()
  | 3 -> Instruction.Scalar_op { cycles = 1 + P.int rng ~bound:100 }
  | 4 ->
    Instruction.Set_flag
      { from_pipe = Pipe.Cube; to_pipe = Pipe.Vector;
        flag = P.int rng ~bound:64 }
  | 5 ->
    Instruction.Wait_flag
      { from_pipe = Pipe.Cube; to_pipe = Pipe.Vector;
        flag = P.int rng ~bound:64 }
  | _ -> Instruction.Barrier

let encoding_roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"random programs encode/decode/compress"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Ascend.Util.Prng.create ~seed in
      let n = 1 + Ascend.Util.Prng.int rng ~bound:100 in
      let instrs = List.init n (fun _ -> random_instr rng) in
      let raw = Encoding.encode instrs in
      match (Encoding.decode raw, Encoding.decompress (Encoding.compress raw)) with
      | Ok decoded, Ok unpacked ->
        Bytes.equal raw unpacked
        && List.for_all2
             (fun a b ->
               Format.asprintf "%a" Instruction.pp a
               = Format.asprintf "%a" Instruction.pp b)
             instrs decoded
      | _ -> false)

let decoder_fuzz_prop =
  QCheck.Test.make ~count:200
    ~name:"corrupted streams never crash the decoder/decompressor"
    QCheck.(pair (int_range 0 100000) (int_range 1 8))
    (fun (seed, flips) ->
      let rng = Ascend.Util.Prng.create ~seed in
      let instrs = List.init 20 (fun _ -> random_instr rng) in
      let raw = Encoding.encode instrs in
      let packed = Encoding.compress raw in
      let corrupt b =
        let b = Bytes.copy b in
        for _ = 1 to flips do
          let pos = Ascend.Util.Prng.int rng ~bound:(Bytes.length b) in
          Bytes.set_uint8 b pos (Ascend.Util.Prng.int rng ~bound:256)
        done;
        b
      in
      (* both must return Ok or Error, never raise *)
      let safe f x = match f x with Ok _ | Error _ -> true in
      safe Encoding.decode (corrupt raw)
      && safe Encoding.decompress (corrupt packed))

let flag_range_prop =
  QCheck.Test.make ~count:100 ~name:"flag ids outside 0..63 rejected"
    QCheck.(int_range 64 1000)
    (fun flag ->
      let p =
        Program.make ~name:"f"
          [
            Instruction.Set_flag
              { from_pipe = Pipe.Mte1; to_pipe = Pipe.Cube; flag };
          ]
      in
      match Program.validate Config.max p with Error _ -> true | Ok () -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "isa"
    [
      ( "pipes-buffers",
        [
          Alcotest.test_case "pipe indices" `Quick test_pipe_indices;
          Alcotest.test_case "legal moves" `Quick test_legal_moves;
          Alcotest.test_case "mte_move constructor" `Quick
            test_mte_move_smart_constructor;
          Alcotest.test_case "source bytes" `Quick test_source_bytes;
          Alcotest.test_case "pipe_of" `Quick test_pipe_of;
        ] );
      ( "program",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "unbalanced flags" `Quick
            test_validate_unbalanced_flags;
          Alcotest.test_case "buffer overflow" `Quick
            test_validate_buffer_overflow;
          Alcotest.test_case "unsupported precision" `Quick
            test_validate_unsupported_precision;
          Alcotest.test_case "concat and stats" `Quick test_concat_and_stats;
          Alcotest.test_case "disassembly" `Quick test_disassembly;
          q flag_range_prop;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "compress roundtrip" `Quick test_compress_roundtrip;
          Alcotest.test_case "compression on loops" `Quick
            test_compression_helps_on_loops;
          q encoding_roundtrip_prop;
          q decoder_fuzz_prop;
        ] );
    ]
