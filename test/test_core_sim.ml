open Ascend.Core_sim
open Ascend.Isa
module Config = Ascend.Arch.Config
module Precision = Ascend.Arch.Precision

let cube ?(accumulate = false) m k n =
  Instruction.cube_matmul ~m ~k ~n ~precision:Precision.Fp16 ~accumulate ()

let vec bytes =
  Instruction.vector_op ~op_name:"t" ~bytes ()

let set f t flag = Instruction.Set_flag { from_pipe = f; to_pipe = t; flag }
let wait f t flag = Instruction.Wait_flag { from_pipe = f; to_pipe = t; flag }

let run_ok ?(config = Config.max) instrs =
  match Simulator.run config (Program.make ~name:"t" instrs) with
  | Ok r -> r
  | Error e -> Alcotest.failf "simulation failed: %s" e

(* ------------------------------------------------------------------ *)
(* Latency model                                                      *)

let test_latency_cube () =
  Alcotest.(check int) "one tile + overhead"
    (1 + Latency.cube_issue_overhead)
    (Latency.cube_matmul Config.max ~m:16 ~k:16 ~n:16 ~precision:Precision.Fp16);
  Alcotest.(check int) "256x256x256 = 4096 cycles"
    (4096 + Latency.cube_issue_overhead)
    (Latency.cube_matmul Config.max ~m:256 ~k:256 ~n:256
       ~precision:Precision.Fp16);
  (* int8 doubles the k throughput *)
  Alcotest.(check int) "int8 halves k tiles"
    (2048 + Latency.cube_issue_overhead)
    (Latency.cube_matmul Config.max ~m:256 ~k:256 ~n:256
       ~precision:Precision.Int8)

let test_latency_vector () =
  Alcotest.(check int) "256B in one cycle"
    (1 + Latency.vector_issue_overhead)
    (Latency.vector_op Config.max ~bytes:256);
  Alcotest.(check int) "1KiB on Lite = 8 cycles"
    (8 + Latency.vector_issue_overhead)
    (Latency.vector_op Config.lite ~bytes:1024)

let test_latency_mte () =
  (* Max A port: 4096 B/cycle *)
  Alcotest.(check int) "A port 64KiB"
    (16 + Latency.mte_issue_overhead)
    (Latency.mte_move Config.max ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
       ~bytes:(64 * 1024));
  (* Max external: 94 GB/s at 1 GHz = 94 B/cycle *)
  Alcotest.(check int) "LLC port 9400 B"
    (100 + Latency.mte_issue_overhead)
    (Latency.mte_move Config.max ~src:Buffer_id.External ~dst:Buffer_id.L1
       ~bytes:9400)

(* ------------------------------------------------------------------ *)
(* Execution semantics                                                *)

let test_single_instruction () =
  let r = run_ok [ cube 256 256 256 ] in
  Alcotest.(check int) "makespan = latency"
    (4096 + Latency.cube_issue_overhead)
    r.Simulator.total_cycles

let test_pipes_overlap () =
  (* independent cube and vector work overlaps almost entirely *)
  let r = run_ok [ cube 256 256 256; vec (256 * 1024) ] in
  let cube_lat = 4096 + Latency.cube_issue_overhead in
  let vec_lat = 1024 + Latency.vector_issue_overhead in
  Alcotest.(check bool) "overlapped" true
    (r.Simulator.total_cycles < cube_lat + vec_lat);
  Alcotest.(check bool) "at least the longer one" true
    (r.Simulator.total_cycles >= max cube_lat vec_lat)

let test_flags_serialise () =
  (* vector waits for the cube: the times add *)
  let r =
    run_ok
      [
        cube 256 256 256;
        set Pipe.Cube Pipe.Vector 0;
        wait Pipe.Cube Pipe.Vector 0;
        vec (256 * 1024);
      ]
  in
  let cube_lat = 4096 + Latency.cube_issue_overhead in
  let vec_lat = 1024 + Latency.vector_issue_overhead in
  Alcotest.(check bool) "serialised" true
    (r.Simulator.total_cycles >= cube_lat + vec_lat)

let test_set_before_wait_in_program_order_not_required () =
  (* the wait appears before the set in program order but on another
     pipe; the simulator must not deadlock *)
  let r =
    run_ok
      [
        wait Pipe.Cube Pipe.Vector 1;
        vec 256;
        cube 16 16 16;
        set Pipe.Cube Pipe.Vector 1;
      ]
  in
  Alcotest.(check bool) "completed" true (r.Simulator.total_cycles > 0)

let test_deadlock_detected () =
  (* wait with no matching set fails validation; disable validation to
     exercise the runtime detector *)
  let p = Program.make ~name:"dl" [ wait Pipe.Cube Pipe.Vector 0; vec 256 ] in
  (match Simulator.run ~validate:false Config.max p with
  | Error e ->
    Alcotest.(check bool) "mentions deadlock" true
      (String.length e >= 8 && String.sub e 0 8 = "deadlock")
  | Ok _ -> Alcotest.fail "must deadlock");
  (* and validation catches it statically *)
  match Simulator.run Config.max p with
  | Error e ->
    Alcotest.(check bool) "static" true
      (String.length e >= 10 && String.sub e 0 10 = "validation")
  | Ok _ -> Alcotest.fail "must fail validation"

let test_barrier_drains () =
  let r =
    run_ok
      [ cube 256 256 256; Instruction.Barrier; vec (256 * 1024) ]
  in
  let cube_lat = 4096 + Latency.cube_issue_overhead in
  let vec_lat = 1024 + Latency.vector_issue_overhead in
  Alcotest.(check bool) "barrier serialises" true
    (r.Simulator.total_cycles >= cube_lat + vec_lat)

let test_makespan_at_least_busy () =
  let r =
    run_ok [ cube 32 32 32; vec 512; cube 16 16 16; vec 128 ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Pipe.name p ^ " busy <= makespan")
        true
        ((Simulator.pipe_stats r p).Simulator.busy_cycles
        <= r.Simulator.total_cycles))
    Pipe.all

let test_traffic_accounting () =
  let r =
    run_ok
      [
        Instruction.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
          ~bytes:1000 ();
        Instruction.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
          ~transform:(Instruction.Img2col { expansion = 4. })
          ~bytes:800 ();
      ]
  in
  Alcotest.(check int) "L1 written" 1000
    (Simulator.traffic r Buffer_id.L1).Simulator.written_bytes;
  (* img2col reads only the unique bytes out of L1 *)
  Alcotest.(check int) "L1 read compact" 200
    (Simulator.traffic r Buffer_id.L1).Simulator.read_bytes;
  Alcotest.(check int) "L0A written expanded" 800
    (Simulator.traffic r Buffer_id.L0a).Simulator.written_bytes;
  Alcotest.(check int) "external read" 1000
    (Simulator.traffic r Buffer_id.External).Simulator.read_bytes

let test_energy_positive_and_scales () =
  let small = run_ok [ cube 16 16 16 ] in
  let big = run_ok [ cube 256 256 256 ] in
  Alcotest.(check bool) "positive" true (small.Simulator.energy_j > 0.);
  Alcotest.(check bool) "more macs, more energy" true
    (big.Simulator.energy_j > 100. *. small.Simulator.energy_j);
  Alcotest.(check int) "mac count" (256 * 256 * 256)
    big.Simulator.cube_macs_executed

let test_trace () =
  match
    Simulator.run ~trace:true Config.max
      (Program.make ~name:"t" [ cube 16 16 16; vec 256 ])
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "two entries" 2 (List.length r.Simulator.trace);
    List.iter
      (fun (e : Simulator.trace_entry) ->
        Alcotest.(check bool) "start <= end" true
          (e.Simulator.start_cycle <= e.Simulator.end_cycle))
      r.Simulator.trace

let test_timeline () =
  (match
     Simulator.run ~trace:true Config.max
       (Program.make ~name:"t" [ cube 256 256 256; vec (64 * 1024) ])
   with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let s = Timeline.render ~width:40 r in
    Alcotest.(check bool) "has busy marks" true (String.contains s '#');
    Alcotest.(check bool) "has idle marks" true (String.contains s '.');
    let bars = Timeline.utilization_bars r in
    Alcotest.(check bool) "bars mention all pipes" true
      (String.length bars > 0 && String.contains bars '%'));
  (* no trace -> explanatory note, not a crash *)
  match Simulator.run Config.max (Program.make ~name:"t" [ vec 256 ]) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "note without trace" true
      (String.length (Timeline.render r) > 0
      && not (String.contains (Timeline.render r) '#'))

let test_timeline_degenerate () =
  (* degenerate inputs must render, never raise: tiny widths clamp to
     16, a single-cycle trace gets a one-column chart, and utilization
     bars stay within their 40-char budget *)
  (match
     Simulator.run ~trace:true Config.max
       (Program.make ~name:"t" [ cube 16 16 16; vec 256 ])
   with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let w40 = Timeline.render ~width:40 r in
    List.iter
      (fun w ->
        let s = Timeline.render ~width:w r in
        Alcotest.(check bool)
          (Printf.sprintf "width %d clamps to 16" w)
          true
          (s = Timeline.render ~width:16 r);
        Alcotest.(check bool)
          (Printf.sprintf "width %d renders busy marks" w)
          true (String.contains s '#'))
      [ -5; 0; 1; 15 ];
    Alcotest.(check bool) "wide differs from clamped" true
      (w40 <> Timeline.render ~width:16 r));
  (* single-cycle program: one scalar op of one cycle *)
  (match
     Simulator.run ~trace:true Config.max
       (Program.make ~name:"one" [ Instruction.Scalar_op { cycles = 1 } ])
   with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let s = Timeline.render ~width:16 r in
    Alcotest.(check bool) "single-cycle renders" true
      (String.contains s '#');
    let bars = Timeline.utilization_bars r in
    String.split_on_char '\n' bars
    |> List.iter (fun line ->
           Alcotest.(check bool) "bar within budget" true
             (String.length line <= 80)));
  (* empty program: no trace entries at all *)
  match Simulator.run ~trace:true Config.max (Program.make ~name:"e" []) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "empty trace -> note" true
      (String.length (Timeline.render ~width:1 r) > 0
      && not (String.contains (Timeline.render ~width:1 r) '#'))

let test_dispatch_rate () =
  (* the PSQ dispatches one instruction per cycle: instruction i cannot
     start before cycle i *)
  let n = 100 in
  let instrs = List.init n (fun _ -> Instruction.Scalar_op { cycles = 1 }) in
  let r = run_ok instrs in
  Alcotest.(check bool) "at least n cycles" true (r.Simulator.total_cycles >= n)

(* random programs with balanced flags never deadlock *)
let random_program_prop =
  QCheck.Test.make ~count:50
    ~name:"random flag-balanced programs terminate without deadlock"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Ascend.Util.Prng.create ~seed in
      let n = 5 + Ascend.Util.Prng.int rng ~bound:30 in
      let instrs = ref [] in
      let pending = ref [] in
      for i = 0 to n - 1 do
        ignore i;
        match Ascend.Util.Prng.int rng ~bound:4 with
        | 0 -> instrs := cube 32 32 32 :: !instrs
        | 1 -> instrs := vec 1024 :: !instrs
        | 2 ->
          let flag = Ascend.Util.Prng.int rng ~bound:4 in
          instrs := set Pipe.Cube Pipe.Vector flag :: !instrs;
          pending := flag :: !pending
        | _ -> (
          match !pending with
          | flag :: rest ->
            instrs := wait Pipe.Cube Pipe.Vector flag :: !instrs;
            pending := rest
          | [] -> instrs := Instruction.Barrier :: !instrs)
      done;
      let p = Program.make ~name:"rand" (List.rev !instrs) in
      match Simulator.run Config.max p with
      | Ok r -> r.Simulator.total_cycles > 0
      | Error _ -> false)

let monotone_bytes_prop =
  QCheck.Test.make ~count:50 ~name:"more vector bytes never run faster"
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let small = min a b and big = max a b in
      let t bytes = (run_ok [ vec bytes ]).Simulator.total_cycles in
      t small <= t big)

(* ------------------------------------------------------------------ *)
(* Shadow-state sanitizer                                              *)

module Sanitizer = Ascend.Core_sim.Sanitizer
module Finding = Ascend.Verify.Finding
module Verify = Ascend.Verify
module Codegen = Ascend.Compiler.Codegen

let san_classes (r : Sanitizer.report) =
  List.sort_uniq compare
    (List.map
       (fun (f : Finding.t) -> Finding.kind_name f.Finding.kind)
       r.Sanitizer.findings)

let mte ?src_slot ?dst_slot src dst bytes =
  Instruction.mte_move ~src ~dst ?src_slot ?dst_slot ~bytes ()

let sanitize ?(config = Config.max) ?buffer_peak instrs =
  Sanitizer.run config (Program.make ~name:"t" ?buffer_peak instrs)

let test_sanitizer_zoo_clean () =
  List.iter
    (fun g ->
      List.iter
        (fun config ->
          if Config.supports config (Ascend.Nn.Graph.dtype g) then
            List.iter
              (fun options ->
                List.iter
                  (fun ((grp : Ascend.Compiler.Fusion.t), p) ->
                    let r = Sanitizer.run config p in
                    if not (Sanitizer.clean r) then
                      Alcotest.failf "%s / %s: %s" config.Config.name
                        grp.Ascend.Compiler.Fusion.tag
                        (String.concat "," (san_classes r)))
                  (Codegen.graph_programs ~options config g))
              [
                Codegen.default_options;
                { Codegen.default_options with
                  Codegen.sync_mode = Codegen.Coarse_barriers;
                  double_buffer = false };
              ])
        [ Config.tiny; Config.max ])
    [ Ascend.Nn.Resnet.v1_5_18 (); Ascend.Nn.Gesture.build () ]

let test_sanitizer_uninit_read () =
  (* a slot is read before any write established it *)
  let r =
    sanitize
      ~buffer_peak:[ (Buffer_id.L0a, 512) ]
      [ mte Buffer_id.L1 Buffer_id.L0a 512 ]
  in
  Alcotest.(check (list string)) "read before write" [ "uninit-read" ]
    (san_classes r);
  (* extent: 100 B written, then 512 B moved out of the slot *)
  let r2 =
    sanitize
      ~buffer_peak:[ (Buffer_id.L1, 100); (Buffer_id.L0a, 512) ]
      [
        mte Buffer_id.External Buffer_id.L1 100;
        Instruction.Barrier;
        mte Buffer_id.L1 Buffer_id.L0a 512;
      ]
  in
  Alcotest.(check (list string)) "read past the written extent"
    [ "uninit-read" ] (san_classes r2)

let test_sanitizer_slot_overflow () =
  (* a 32x32 accumulating matmul lands in an L0C slot whose allocating
     16x16 write established only 1 KiB: the in-place write overflows
     the slot and its accumulate read runs past the written extent *)
  let r =
    sanitize
      ~buffer_peak:
        [
          (Buffer_id.L1, 4096); (Buffer_id.L0a, 2048); (Buffer_id.L0b, 2048);
          (Buffer_id.L0c, 1024);
        ]
      [
        mte Buffer_id.External Buffer_id.L1 4096;
        Instruction.Barrier;
        mte Buffer_id.L1 Buffer_id.L0a 2048;
        mte Buffer_id.L1 Buffer_id.L0b 2048;
        Instruction.Barrier;
        cube 16 16 16;
        cube ~accumulate:true 32 32 32;
      ]
  in
  Alcotest.(check (list string)) "overflow and extent read"
    [ "slot-overflow"; "uninit-read" ]
    (san_classes r)

let test_sanitizer_hazard_and_ordering () =
  (* cross-pipe slot reuse: MTE2 fills UB, MTE3 drains it — racy
     without a flag, proven ordered with one *)
  let fill = mte Buffer_id.External Buffer_id.Ub 1024 in
  let drain = mte Buffer_id.Ub Buffer_id.External 1024 in
  let peaks = [ (Buffer_id.Ub, 1024) ] in
  let racy = sanitize ~buffer_peak:peaks [ fill; drain ] in
  Alcotest.(check (list string)) "unordered cross-pipe reuse"
    [ "hazard/RAW" ] (san_classes racy);
  let ordered =
    sanitize ~buffer_peak:peaks
      [ fill; set Pipe.Mte2 Pipe.Mte3 0; wait Pipe.Mte2 Pipe.Mte3 0; drain ]
  in
  Alcotest.(check (list string)) "a satisfied flag orders them" []
    (san_classes ordered)

let test_sanitizer_deadlock () =
  let r = sanitize [ wait Pipe.Cube Pipe.Vector 0 ] in
  Alcotest.(check (list string)) "wedged replay" [ "deadlock" ]
    (san_classes r)

let test_sanitizer_flag_leak () =
  let r = sanitize [ set Pipe.Cube Pipe.Vector 0 ] in
  Alcotest.(check (list string)) "unconsumed set" [ "flag-leak" ]
    (san_classes r)

let test_sanitizer_capacity () =
  let big = Config.max.Config.buffers.Config.ub_bytes + 16 in
  let r =
    sanitize
      ~buffer_peak:[ (Buffer_id.Ub, big) ]
      [ mte Buffer_id.External Buffer_id.Ub big ]
  in
  Alcotest.(check bool) "runtime capacity overflow" true
    (List.mem "capacity-overflow" (san_classes r))

let test_sanitizer_peak_mismatch () =
  let fill = mte Buffer_id.External Buffer_id.Ub 1000 in
  let under = sanitize ~buffer_peak:[ (Buffer_id.Ub, 500) ] [ fill ] in
  Alcotest.(check (list string)) "understate" [ "peak-mismatch" ]
    (san_classes under);
  Alcotest.(check bool) "understate is an error" true
    (List.for_all Finding.is_error under.Sanitizer.findings);
  let over = sanitize ~buffer_peak:[ (Buffer_id.Ub, 2000) ] [ fill ] in
  Alcotest.(check (list string)) "overstate" [ "peak-mismatch" ]
    (san_classes over);
  Alcotest.(check bool) "overstate is a warning" true
    (List.for_all
       (fun f -> not (Finding.is_error f))
       over.Sanitizer.findings)

(* ------------------------------------------------------------------ *)
(* Differential property: for every mutation class, the static         *)
(* analyzer and the sanitizer reach the same verdict                   *)

let compiled_program () =
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  let programs = Codegen.graph_programs Config.max g in
  List.fold_left
    (fun best (_, p) ->
      if Program.length p > Program.length best then p else best)
    (snd (List.hd programs))
    programs

let test_differential_clean_agreement () =
  let p = compiled_program () in
  Alcotest.(check bool) "static clean" true (Verify.analyze Config.max p = []);
  Alcotest.(check bool) "sanitizer clean" true
    (Sanitizer.clean (Sanitizer.run Config.max p))

let drop_nth n instrs = List.filteri (fun i _ -> i <> n) instrs

let positions_of pred instrs =
  List.mapi (fun i x -> (i, x)) instrs
  |> List.filter_map (fun (i, x) -> if pred x then Some i else None)

let pick seed = function
  | [] -> None
  | xs -> Some (List.nth xs (seed mod List.length xs))

let has_kind k fs = List.exists (fun (f : Finding.t) -> f.Finding.kind = k) fs

let differential_prop name ~count mutate check_static check_dynamic =
  QCheck.Test.make ~count ~name
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = compiled_program () in
      match mutate seed p with
      | None -> QCheck.assume_fail ()
      | Some m ->
        let static_findings = Verify.analyze Config.max m in
        let dynamic = Sanitizer.run Config.max m in
        static_findings <> []
        && (not (Sanitizer.clean dynamic))
        && check_static static_findings
        && check_dynamic dynamic.Sanitizer.findings)

let drop_set_differential =
  differential_prop
    "skipping a slot's flag-set: both checkers report, static as deadlock"
    ~count:15
    (fun seed p ->
      Option.map
        (fun n ->
          { p with Program.instructions = drop_nth n p.Program.instructions })
        (pick seed
           (positions_of
              (function Instruction.Set_flag _ -> true | _ -> false)
              p.Program.instructions)))
    (has_kind Finding.Deadlock)
    (fun _ -> true)

let drop_wait_differential =
  differential_prop
    "dropping a wait: both checkers report the unsynchronised reuse"
    ~count:15
    (fun seed p ->
      Option.map
        (fun n ->
          { p with Program.instructions = drop_nth n p.Program.instructions })
        (pick seed
           (positions_of
              (function Instruction.Wait_flag _ -> true | _ -> false)
              p.Program.instructions)))
    (fun _ -> true)
    (fun _ -> true)

let shrink_peak_differential =
  differential_prop
    "shrinking a declared footprint: both checkers report a peak mismatch"
    ~count:15
    (fun seed p ->
      match p.Program.buffer_peak with
      | [] -> None
      | peaks ->
        let n = seed mod List.length peaks in
        Some
          { p with
            Program.buffer_peak =
              List.mapi
                (fun i (b, v) ->
                  if i = n then (b, max 0 ((v / 2) - 1)) else (b, v))
                peaks;
          })
    (has_kind Finding.Peak_mismatch)
    (has_kind Finding.Peak_mismatch)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "core_sim"
    [
      ( "latency",
        [
          Alcotest.test_case "cube" `Quick test_latency_cube;
          Alcotest.test_case "vector" `Quick test_latency_vector;
          Alcotest.test_case "mte" `Quick test_latency_mte;
        ] );
      ( "execution",
        [
          Alcotest.test_case "single instruction" `Quick test_single_instruction;
          Alcotest.test_case "pipes overlap" `Quick test_pipes_overlap;
          Alcotest.test_case "flags serialise" `Quick test_flags_serialise;
          Alcotest.test_case "late set" `Quick
            test_set_before_wait_in_program_order_not_required;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "barrier drains" `Quick test_barrier_drains;
          Alcotest.test_case "makespan >= busy" `Quick test_makespan_at_least_busy;
          Alcotest.test_case "dispatch rate" `Quick test_dispatch_rate;
          q random_program_prop;
          q monotone_bytes_prop;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "traffic" `Quick test_traffic_accounting;
          Alcotest.test_case "energy" `Quick test_energy_positive_and_scales;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "timeline" `Quick test_timeline;
          Alcotest.test_case "timeline degenerate" `Quick
            test_timeline_degenerate;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "zoo programs clean" `Slow
            test_sanitizer_zoo_clean;
          Alcotest.test_case "uninit read" `Quick test_sanitizer_uninit_read;
          Alcotest.test_case "slot overflow" `Quick
            test_sanitizer_slot_overflow;
          Alcotest.test_case "hazard and ordering" `Quick
            test_sanitizer_hazard_and_ordering;
          Alcotest.test_case "deadlock" `Quick test_sanitizer_deadlock;
          Alcotest.test_case "flag leak" `Quick test_sanitizer_flag_leak;
          Alcotest.test_case "runtime capacity" `Quick test_sanitizer_capacity;
          Alcotest.test_case "peak mismatch" `Quick
            test_sanitizer_peak_mismatch;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clean agreement" `Quick
            test_differential_clean_agreement;
          q drop_set_differential;
          q drop_wait_differential;
          q shrink_peak_differential;
        ] );
    ]
