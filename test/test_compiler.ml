open Ascend.Compiler
module Config = Ascend.Arch.Config
module Precision = Ascend.Arch.Precision
module Graph = Ascend.Nn.Graph
module Shape = Ascend.Tensor.Shape
module Pipe = Ascend.Isa.Pipe
module Program = Ascend.Isa.Program
module Prng = Ascend.Util.Prng

(* ------------------------------------------------------------------ *)
(* Tiling                                                             *)

let tiling_legal_prop =
  QCheck.Test.make ~count:100 ~name:"chosen tilings are always legal"
    QCheck.(triple (int_range 1 4096) (int_range 1 4096) (int_range 1 4096))
    (fun (m, k, n) ->
      let t = Tiling.choose Config.max ~precision:Precision.Fp16 ~m ~k ~n () in
      Tiling.legal Config.max ~precision:Precision.Fp16 ~mt:t.Tiling.mt
        ~kt:t.Tiling.kt ~nt:t.Tiling.nt
      && t.Tiling.mt >= 1
      && t.Tiling.m_tiles * t.Tiling.mt >= m
      && t.Tiling.k_tiles * t.Tiling.kt >= k
      && t.Tiling.n_tiles * t.Tiling.nt >= n)

let tiling_legal_all_cores_prop =
  QCheck.Test.make ~count:60 ~name:"tilings legal on every core version"
    QCheck.(pair (int_range 1 1024) (int_range 0 4))
    (fun (dim, core_idx) ->
      let config = List.nth Config.all core_idx in
      let precision = config.Config.native_precision in
      let t = Tiling.choose config ~precision ~m:dim ~k:dim ~n:dim () in
      Tiling.legal config ~precision ~mt:t.Tiling.mt ~kt:t.Tiling.kt
        ~nt:t.Tiling.nt)

let test_tiling_prefers_full_tiles () =
  let t =
    Tiling.choose Config.max ~precision:Precision.Fp16 ~m:256 ~k:256 ~n:256 ()
  in
  Alcotest.(check bool) "mt multiple of 16" true (t.Tiling.mt mod 16 = 0);
  Alcotest.(check bool) "covers problem" true
    (t.Tiling.m_tiles * t.Tiling.mt >= 256)

(* Reference search: the same candidate space and selection rule as
   [Tiling.choose], but scoring every triple through the public
   per-call [Tiling.cost].  [choose] hoists the candidate lists and the
   (mt,kt,nt)-invariant cost terms out of its triple loop; this pins
   the hoisted path to the straightforward one. *)
let reference_choose config ~precision ?(img2col_expansion = 1.) ~m ~k ~n () =
  let div_up a b = (a + b - 1) / b in
  let dims = Config.cube_dims_at config ~precision in
  let candidates base limit =
    List.sort_uniq compare
      (List.filter_map
         (fun mult ->
           let v = base * mult in
           if v < limit + base then Some (min v (div_up limit base * base))
           else None)
         [ 1; 2; 4; 8; 16; 32; 64 ])
  in
  let best = ref None in
  List.iter
    (fun mt ->
      List.iter
        (fun kt ->
          List.iter
            (fun nt ->
              if Tiling.legal config ~precision ~mt ~kt ~nt then
                let c =
                  Tiling.cost config ~precision ~img2col_expansion ~m ~k ~n
                    ~mt ~kt ~nt
                in
                match !best with
                | Some (bc, bmt, bkt, bnt)
                  when bc < c || (bc = c && bmt * bkt * bnt >= mt * kt * nt) ->
                  ()
                | _ -> best := Some (c, mt, kt, nt))
            (candidates dims.Config.n n))
        (candidates dims.Config.k k))
    (candidates dims.Config.m m);
  match !best with
  | None -> Alcotest.fail "reference_choose: no legal tiling"
  | Some (c, mt, kt, nt) -> (mt, kt, nt, c)

let quad = Alcotest.(pair (pair int int) (pair int int))
let as_quad (t : Tiling.t) =
  ((t.Tiling.mt, t.Tiling.kt), (t.Tiling.nt, t.Tiling.estimated_cycles))

let test_tiling_choose_matches_reference_on_zoo () =
  (* every GEMM of every fusion group of the zoo, on every supporting
     core: the hoisted search picks exactly what the reference picks *)
  let zoo =
    [
      ("gesture", Ascend.Nn.Gesture.build ());
      ("resnet18", Ascend.Nn.Resnet.v1_5_18 ());
      ("mobilenet", Ascend.Nn.Mobilenet.v2 ());
      ("bert-base-s32", Ascend.Nn.Bert.base ~seq_len:32 ());
    ]
  in
  let checked = ref 0 in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun config ->
          if Config.supports config (Graph.dtype g) then
            List.iter
              (fun (grp : Fusion.t) ->
                List.iter
                  (fun (gemm : Ascend.Nn.Workload.gemm) ->
                    let precision = grp.Fusion.precision in
                    let img2col_expansion = grp.Fusion.img2col_expansion in
                    let m = gemm.Ascend.Nn.Workload.m
                    and k = gemm.Ascend.Nn.Workload.k
                    and n = gemm.Ascend.Nn.Workload.n in
                    incr checked;
                    let chosen =
                      Tiling.choose config ~precision ~img2col_expansion ~m ~k
                        ~n ()
                    in
                    let expected =
                      reference_choose config ~precision ~img2col_expansion ~m
                        ~k ~n ()
                    in
                    Alcotest.check quad
                      (Printf.sprintf "%s/%s/%s %dx%dx%d" name
                         config.Config.name grp.Fusion.tag m k n)
                      (let emt, ekt, ent, ec = expected in
                       ((emt, ekt), (ent, ec)))
                      (as_quad chosen))
                  grp.Fusion.gemms)
              (Fusion.partition g))
        Config.all)
    zoo;
  Alcotest.(check bool) "covered a real population" true (!checked > 200)

let tiling_choose_matches_reference_prop =
  QCheck.Test.make ~count:60 ~name:"choose matches per-call cost reference"
    QCheck.(triple (int_range 1 2048) (int_range 1 2048) (int_range 1 2048))
    (fun (m, k, n) ->
      let chosen =
        Tiling.choose Config.max ~precision:Precision.Fp16 ~m ~k ~n ()
      in
      let emt, ekt, ent, ec =
        reference_choose Config.max ~precision:Precision.Fp16 ~m ~k ~n ()
      in
      as_quad chosen = ((emt, ekt), (ent, ec)))

(* ------------------------------------------------------------------ *)
(* Fusion                                                             *)

let test_fusion_partitions_at_cube_ops () =
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  let groups = Fusion.partition g in
  (* ResNet-18: 20 convs + 1 fc = 21 cube anchors, stem pool absorbed *)
  let cube_groups =
    List.filter (fun (x : Fusion.t) -> x.kind = Fusion.Cube_anchored) groups
  in
  Alcotest.(check int) "21 cube-anchored groups" 21 (List.length cube_groups)

let test_fusion_mobilenet_has_vector_only_work () =
  let g = Ascend.Nn.Mobilenet.v2 () in
  let groups = Fusion.partition g in
  (* the depthwise convolutions are absorbed as vector work inside the
     expand groups; their element count must show up *)
  let total_vec =
    List.fold_left (fun acc (x : Fusion.t) -> acc +. x.vector_elems) 0. groups
  in
  Alcotest.(check bool) "vector work > 30M elems" true (total_vec > 30e6)

let test_fusion_expansion () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let x = Graph.input g (Shape.nchw ~n:1 ~c:8 ~h:8 ~w:8) in
  let c = Graph.conv2d g ~cout:8 ~k:3 ~padding:1 x in
  ignore (Graph.output g c);
  match Fusion.partition g with
  | [ grp ] ->
    (* same-size output, 3x3 kernel: expansion = 9 *)
    Alcotest.(check (float 1e-9)) "img2col expansion 9" 9.
      grp.Fusion.img2col_expansion
  | _ -> Alcotest.fail "one group expected"

(* ------------------------------------------------------------------ *)
(* Codegen: generated programs are valid and deadlock-free            *)

let all_zoo () =
  [
    ("resnet18", Ascend.Nn.Resnet.v1_5_18 ());
    ("mobilenet", Ascend.Nn.Mobilenet.v2 ());
    ("bert-base-s32", Ascend.Nn.Bert.base ~seq_len:32 ());
  ]

let test_codegen_validates_everywhere () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun config ->
          if Config.supports config (Graph.dtype g) then
            List.iter
              (fun (grp, p) ->
                match Program.validate ~strict:true config p with
                | Ok () -> ()
                | Error e ->
                  Alcotest.failf "%s / %s / %s: %s" name config.Config.name
                    grp.Fusion.tag e)
              (Codegen.graph_programs config g))
        Config.all)
    (("gesture", Ascend.Nn.Gesture.build ()) :: all_zoo ())

let test_codegen_simulates_without_deadlock () =
  List.iter
    (fun (name, g) ->
      match Engine.run_inference Config.max g with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    (all_zoo ())

let test_codegen_double_buffer_helps () =
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  let run options =
    match Engine.run_inference ~options Config.max g with
    | Ok r -> r.Engine.total_cycles
    | Error e -> Alcotest.fail e
  in
  let with_db = run Codegen.default_options in
  let without_db =
    run { Codegen.default_options with double_buffer = false }
  in
  Alcotest.(check bool) "double buffering not slower" true
    (with_db <= without_db)

let test_codegen_barrier_sync_slower () =
  (* the Figure 3 ablation: coarse barriers serialise the pipes *)
  let g = Ascend.Nn.Gesture.build () in
  let run options =
    match Engine.run_inference ~options Config.tiny g with
    | Ok r -> r.Engine.total_cycles
    | Error e -> Alcotest.fail e
  in
  let flags = run Codegen.default_options in
  let barriers =
    run { Codegen.default_options with sync_mode = Codegen.Coarse_barriers }
  in
  Alcotest.(check bool) "barriers strictly slower" true (barriers > flags)

let test_codegen_naive_tiling_slower () =
  let g = Ascend.Nn.Gesture.build () in
  let run options =
    match Engine.run_inference ~options Config.tiny g with
    | Ok r -> r.Engine.total_cycles
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "auto-tiling wins" true
    (run { Codegen.default_options with naive_tiling = true }
    > run Codegen.default_options)

let test_fp32_hpc_prototype () =
  (* §7.2 future work: the fp32-capable cube runs fp32 ResNet at roughly
     half rate plus traffic overhead *)
  let fp16 = Ascend.Nn.Resnet.v1_5_18 () in
  let fp32 = Ascend.Nn.Resnet.v1_5_18 ~dtype:Precision.Fp32 () in
  (match Engine.run_inference Config.max fp32 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "the shipped Max core must reject fp32 cube work");
  match
    ( Engine.run_inference Config.hpc_prototype fp32,
      Engine.run_inference Config.hpc_prototype fp16 )
  with
  | Ok r32, Ok r16 ->
    let ratio =
      float_of_int r32.Engine.total_cycles
      /. float_of_int r16.Engine.total_cycles
    in
    Alcotest.(check bool) "between 1.1x and 3x slower" true
      (ratio > 1.1 && ratio < 3.)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_codegen_sparsity_reduces_traffic () =
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  let ext options =
    match Engine.run_inference ~options Config.max g with
    | Ok r ->
      List.fold_left
        (fun acc (l : Engine.layer_result) ->
          acc
          + (Ascend.Core_sim.Simulator.traffic l.Engine.report
               Ascend.Isa.Buffer_id.External)
              .Ascend.Core_sim.Simulator.read_bytes)
        0 r.Engine.layers
    | Error e -> Alcotest.fail e
  in
  let dense = ext Codegen.default_options in
  let sparse =
    ext { Codegen.default_options with weight_sparsity = Some 0.5 }
  in
  Alcotest.(check bool) "sparse reads less" true (sparse < dense)

(* ------------------------------------------------------------------ *)
(* Engine: the paper's per-layer shapes                               *)

let test_gesture_all_layers_cube_biased () =
  (* Figure 8: on Tiny, every layer's cube/vector ratio is > 1 *)
  match Engine.run_inference Config.tiny (Ascend.Nn.Gesture.build ()) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    List.iter
      (fun (l : Engine.layer_result) ->
        if l.Engine.group.Fusion.kind = Fusion.Cube_anchored then
          Alcotest.(check bool)
            (l.Engine.group.Fusion.tag ^ " ratio > 1")
            true (l.Engine.ratio > 1.))
      r.Engine.layers

let test_bert_mostly_cube_biased () =
  (* Figure 4: most BERT layers' ratio is much greater than 1 *)
  match
    Engine.run_inference Config.max (Ascend.Nn.Bert.base ~seq_len:64 ())
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let above =
      List.length (List.filter (fun l -> l.Engine.ratio > 1.) r.Engine.layers)
    in
    Alcotest.(check bool) "most layers above 1" true
      (float_of_int above /. float_of_int (List.length r.Engine.layers) > 0.7)

let test_mobilenet_has_sub1_layers () =
  (* Figure 6: many MobileNet layers sit between 0 and 1 *)
  match Engine.run_inference Config.max (Ascend.Nn.Mobilenet.v2 ()) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let sub1 =
      List.length
        (List.filter (fun l -> l.Engine.ratio < 1.) r.Engine.layers)
    in
    Alcotest.(check bool) "at least a third below 1" true
      (3 * sub1 >= List.length r.Engine.layers)

let test_training_ratio_below_inference () =
  (* Figure 5 vs Figure 4: training shifts work toward the vector unit *)
  let g = Ascend.Nn.Bert.base ~seq_len:64 () in
  match (Engine.run_inference Config.max g, Engine.run_training Config.max g) with
  | Ok inf, Ok tra ->
    let geo r =
      let ratios =
        List.filter_map
          (fun (l : Engine.layer_result) ->
            if l.Engine.ratio > 0. && l.Engine.ratio < infinity then
              Some l.Engine.ratio
            else None)
          r.Engine.layers
      in
      Ascend.Util.Stats.geomean ratios
    in
    Alcotest.(check bool) "training geomean below inference" true
      (geo tra < geo inf);
    (* but still above 1 in most layers (the §2.4 design point) *)
    let above_1 =
      List.filter (fun (_, r) -> r > 1.) (Engine.training_ratio_by_layer tra)
    in
    Alcotest.(check bool) "most training layers still above 1" true
      (2 * List.length above_1 > List.length (Engine.training_ratio_by_layer tra))
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_l1_bandwidth_within_figure9_bound () =
  (* Figure 9: per-layer L1 read demand stays under 4096 bits/cycle and
     writes under 2048 bits/cycle on the 8192-FLOPS/cycle config *)
  match Engine.run_inference Config.max (Ascend.Nn.Resnet.v1_5 ()) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    List.iter
      (fun (l : Engine.layer_result) ->
        let read = Ascend.Core_sim.Simulator.l1_read_bits_per_cycle l.Engine.report in
        Alcotest.(check bool)
          (l.Engine.group.Fusion.tag ^ " read bits/cycle bounded")
          true (read <= 4096.))
      r.Engine.layers

let test_faster_core_faster_network () =
  let g = Ascend.Nn.Mobilenet.v2 () in
  let cyc config =
    match Engine.run_inference config g with
    | Ok r -> Engine.seconds r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "Max beats Lite" true (cyc Config.max < cyc Config.lite)

(* ------------------------------------------------------------------ *)
(* Memory planner                                                     *)

let test_planner_valid_on_zoo () =
  List.iter
    (fun (name, g) ->
      let plan = Memory_planner.plan g in
      match Memory_planner.validate plan with
      | Ok () ->
        Alcotest.(check bool) (name ^ " positive peak") true
          (plan.Memory_planner.peak_bytes > 0)
      | Error e -> Alcotest.failf "%s: %s" name e)
    (all_zoo ())

let test_planner_reuses_memory () =
  (* a deep chain must reuse buffers: peak far below the sum *)
  let g = Graph.create ~name:"chain" ~dtype:Precision.Fp16 in
  let x = ref (Graph.input g (Shape.nchw ~n:1 ~c:16 ~h:32 ~w:32)) in
  for _ = 1 to 20 do
    x := Graph.relu g !x
  done;
  ignore (Graph.output g !x);
  let plan = Memory_planner.plan g in
  let total = Memory_planner.total_activation_bytes g in
  Alcotest.(check bool) "peak <= 1/4 of total" true
    (plan.Memory_planner.peak_bytes * 4 <= total)

let planner_random_prop =
  QCheck.Test.make ~count:30 ~name:"planner valid on random branchy graphs"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let g = Graph.create ~name:"rand" ~dtype:Precision.Fp16 in
      let nodes = ref [ Graph.input g (Shape.nchw ~n:1 ~c:8 ~h:8 ~w:8) ] in
      for _ = 1 to 10 do
        let pick = List.nth !nodes (Prng.int rng ~bound:(List.length !nodes)) in
        let n =
          match Prng.int rng ~bound:3 with
          | 0 -> Graph.relu g pick
          | 1 -> Graph.batch_norm g pick
          | _ -> Graph.add g pick pick
        in
        nodes := n :: !nodes
      done;
      ignore (Graph.output g (List.hd !nodes));
      Memory_planner.validate (Memory_planner.plan g) = Ok ())

(* ------------------------------------------------------------------ *)
(* Operator Lib (§5.1 canned kernels)                                  *)

let test_operator_lib_all_simulate () =
  List.iter
    (fun (name, make) ->
      let k = make () in
      List.iter
        (fun config ->
          match Operator_lib.simulate config k with
          | Ok r ->
            Alcotest.(check bool)
              (Printf.sprintf "%s on %s runs" name config.Config.name)
              true
              (r.Ascend.Core_sim.Simulator.total_cycles > 0)
          | Error e ->
            (* a kernel may legitimately reject a core whose UB cannot
               hold one row — but only for the small cores *)
            if config.Config.vector_width_bytes >= 256 then
              Alcotest.failf "%s on %s: %s" name config.Config.name e)
        Config.all)
    (Operator_lib.registry ())

let test_operator_lib_row_residency () =
  (* a row wider than the UB budget must be rejected, not mis-chunked *)
  let k = Operator_lib.softmax ~rows:1 ~cols:2_000_000 () in
  match Operator_lib.simulate Config.max k with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized row must be rejected"

let test_operator_lib_transpose_uses_trans_module () =
  let k = Operator_lib.transpose ~rows:512 ~cols:512 () in
  let p = k.Operator_lib.generate Config.max in
  let has_trans =
    List.exists
      (fun i ->
        match i with
        | Ascend.Isa.Instruction.Mte_move
            { transform = Ascend.Isa.Instruction.Transpose; _ } ->
          true
        | _ -> false)
      p.Program.instructions
  in
  Alcotest.(check bool) "MTE trans move present" true has_trans;
  Alcotest.(check bool) "validates" true (Program.validate Config.max p = Ok ())

let test_operator_lib_softmax_matches_engine_scale () =
  (* the canned softmax should be in the same cycle range as the generic
     lowering of a softmax node (they model the same arithmetic) *)
  let rows = 256 and cols = 256 in
  let k = Operator_lib.softmax ~rows ~cols () in
  match Operator_lib.simulate Config.max k with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let g = Graph.create ~name:"sm" ~dtype:Precision.Fp16 in
    let x = Graph.input g (Shape.matrix rows cols) in
    ignore (Graph.output g (Graph.softmax g x));
    (match Engine.run_inference Config.max g with
    | Error e -> Alcotest.fail e
    | Ok net ->
      let generic = net.Engine.total_cycles in
      let canned = r.Ascend.Core_sim.Simulator.total_cycles in
      Alcotest.(check bool)
        (Printf.sprintf "same ballpark (canned %d vs generic %d)" canned generic)
        true
        (float_of_int canned /. float_of_int generic < 4.
        && float_of_int generic /. float_of_int canned < 4.))

(* ------------------------------------------------------------------ *)
(* Graph engine (§5.1 streams)                                         *)

let test_graph_engine_chain_is_one_stream () =
  match Graph_engine.plan Config.tiny (Ascend.Nn.Gesture.build ()) with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check (result unit string)) "valid" (Ok ())
      (Graph_engine.validate p);
    Alcotest.(check int) "a chain is one stream" 1 p.Graph_engine.stream_count;
    (* a single stream cannot go faster with more cores *)
    Alcotest.(check int) "no speedup"
      (Graph_engine.makespan p ~cores:1)
      (Graph_engine.makespan p ~cores:8)

let test_graph_engine_siamese_two_streams () =
  match Graph_engine.plan Config.standard (Ascend.Nn.Siamese.build ()) with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check (result unit string)) "valid" (Ok ())
      (Graph_engine.validate p);
    Alcotest.(check int) "two towers, two streams" 2
      p.Graph_engine.stream_count;
    let serial = Graph_engine.serial_cycles p in
    let dual = Graph_engine.makespan p ~cores:2 in
    Alcotest.(check bool) "overlap helps" true (dual < serial);
    (* the exemplar tower (127^2) hides entirely under the search tower
       (255^2): the two-core makespan is the search stream alone *)
    let search_cycles =
      List.fold_left
        (fun acc (t : Graph_engine.task) ->
          if t.Graph_engine.stream = 1 then acc + t.Graph_engine.cycles
          else acc)
        0 p.Graph_engine.tasks
    in
    Alcotest.(check bool) "exemplar hidden" true
      (dual <= search_cycles + (serial / 100))

let test_graph_engine_join_has_cross_event () =
  match Graph_engine.plan Config.standard (Ascend.Nn.Siamese.build ()) with
  | Error e -> Alcotest.fail e
  | Ok p ->
    (* the join (the group that first consumes the exemplar tower's
       product from the search stream) must carry a cross-stream event *)
    let stream_of id =
      (List.find (fun (t : Graph_engine.task) -> t.Graph_engine.id = id)
         p.Graph_engine.tasks)
        .Graph_engine.stream
    in
    let cross_events =
      List.concat_map
        (fun (t : Graph_engine.task) ->
          List.filter_map
            (fun d ->
              if stream_of d <> t.Graph_engine.stream then
                Some (t.Graph_engine.tag, d)
              else None)
            t.Graph_engine.deps)
        p.Graph_engine.tasks
    in
    Alcotest.(check bool) "at least one cross-stream event" true
      (cross_events <> [])

let graph_engine_makespan_props =
  QCheck.Test.make ~count:10 ~name:"makespan between critical path and serial"
    QCheck.(int_range 1 8)
    (fun cores ->
      match Graph_engine.plan Config.standard (Ascend.Nn.Siamese.build ()) with
      | Error _ -> false
      | Ok p ->
        let m = Graph_engine.makespan p ~cores in
        m <= Graph_engine.serial_cycles p
        && m >= Graph_engine.serial_cycles p / max 1 cores)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "compiler"
    [
      ( "tiling",
        [
          Alcotest.test_case "full tiles" `Quick test_tiling_prefers_full_tiles;
          Alcotest.test_case "matches reference on zoo" `Quick
            test_tiling_choose_matches_reference_on_zoo;
          q tiling_legal_prop;
          q tiling_legal_all_cores_prop;
          q tiling_choose_matches_reference_prop;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "partitions at cube ops" `Quick
            test_fusion_partitions_at_cube_ops;
          Alcotest.test_case "mobilenet vector work" `Quick
            test_fusion_mobilenet_has_vector_only_work;
          Alcotest.test_case "img2col expansion" `Quick test_fusion_expansion;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "validates on all cores" `Slow
            test_codegen_validates_everywhere;
          Alcotest.test_case "no deadlocks" `Quick
            test_codegen_simulates_without_deadlock;
          Alcotest.test_case "double buffering helps" `Quick
            test_codegen_double_buffer_helps;
          Alcotest.test_case "barrier sync slower" `Quick
            test_codegen_barrier_sync_slower;
          Alcotest.test_case "naive tiling slower" `Quick
            test_codegen_naive_tiling_slower;
          Alcotest.test_case "fp32 hpc prototype" `Quick test_fp32_hpc_prototype;
          Alcotest.test_case "sparsity reduces traffic" `Quick
            test_codegen_sparsity_reduces_traffic;
        ] );
      ( "engine-figures",
        [
          Alcotest.test_case "fig8 gesture cube-biased" `Quick
            test_gesture_all_layers_cube_biased;
          Alcotest.test_case "fig4 bert cube-biased" `Quick
            test_bert_mostly_cube_biased;
          Alcotest.test_case "fig6 mobilenet sub-1 layers" `Quick
            test_mobilenet_has_sub1_layers;
          Alcotest.test_case "fig5 training ratios drop" `Slow
            test_training_ratio_below_inference;
          Alcotest.test_case "fig9 L1 bandwidth bound" `Slow
            test_l1_bandwidth_within_figure9_bound;
          Alcotest.test_case "faster core faster net" `Quick
            test_faster_core_faster_network;
        ] );
      ( "memory-planner",
        [
          Alcotest.test_case "valid on zoo" `Quick test_planner_valid_on_zoo;
          Alcotest.test_case "reuses memory" `Quick test_planner_reuses_memory;
          q planner_random_prop;
        ] );
      ( "operator-lib",
        [
          Alcotest.test_case "all kernels simulate" `Quick
            test_operator_lib_all_simulate;
          Alcotest.test_case "row residency" `Quick
            test_operator_lib_row_residency;
          Alcotest.test_case "transpose via MTE trans" `Quick
            test_operator_lib_transpose_uses_trans_module;
          Alcotest.test_case "softmax scale" `Quick
            test_operator_lib_softmax_matches_engine_scale;
        ] );
      ( "graph-engine",
        [
          Alcotest.test_case "chain is one stream" `Quick
            test_graph_engine_chain_is_one_stream;
          Alcotest.test_case "siamese two streams" `Quick
            test_graph_engine_siamese_two_streams;
          Alcotest.test_case "join cross event" `Quick
            test_graph_engine_join_has_cross_event;
          q graph_engine_makespan_props;
        ] );
    ]
