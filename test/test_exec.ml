(* Execution service (lib/exec): content-addressed cache semantics,
   deterministic parallel fan-out, and byte-identity between cached,
   uncached and parallel compile+simulate runs. *)

module Config = Ascend.Arch.Config
module Engine = Ascend.Compiler.Engine
module Fusion = Ascend.Compiler.Fusion
module Codegen = Ascend.Compiler.Codegen
module Cache = Ascend.Exec.Cache
module Service = Ascend.Exec.Service

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let resnet18 () = Ascend.Nn.Resnet.v1_5_18 ()

let render r = Format.asprintf "%a" Engine.pp_layer_table r

(* ------------------------------------------------------------------ *)
(* Cache: LRU bookkeeping                                              *)

let test_cache_hit_miss_counters () =
  let c = Cache.create ~capacity:8 () in
  Alcotest.(check bool) "miss on empty" true (Cache.find c "k1" = None);
  Cache.add c "k1" 1;
  Alcotest.(check bool) "hit after add" true (Cache.find c "k1" = Some 1);
  ignore (Cache.find c "k2");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "entries" 1 s.Cache.entries;
  Alcotest.(check int) "no evictions" 0 s.Cache.evictions;
  (* the one-line render the serving summaries embed, disk tier included *)
  Alcotest.(check string) "pp_stats"
    "1 memory hit(s), 0 disk hit(s), 2 miss(es), 0 eviction(s), 1 entr(ies) \
     in memory; disk tier: 0 write(s), 0 file(s)"
    (Format.asprintf "%a" Cache.pp_stats s)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  ignore (Cache.find c "a");
  (* recency: a fresher than b *)
  Cache.add c "c" 3;
  (* b is the LRU entry *)
  Alcotest.(check bool) "b evicted" true (Cache.find c "b" = None);
  Alcotest.(check bool) "a kept" true (Cache.find c "a" = Some 1);
  Alcotest.(check bool) "c kept" true (Cache.find c "c" = Some 3);
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "bounded" 2 s.Cache.entries;
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Cache.create: capacity < 1") (fun () ->
      ignore (Cache.create ~capacity:0 ()))

let test_cache_add_is_insert_if_absent () =
  let c = Cache.create ~capacity:4 () in
  Cache.add c "k" 1;
  Cache.add c "k" 2;
  Alcotest.(check bool) "first insert wins" true (Cache.find c "k" = Some 1);
  Alcotest.(check int) "one entry" 1 (Cache.stats c).Cache.entries

(* ------------------------------------------------------------------ *)
(* Cache: disk tier                                                    *)

(* unique scratch directory without depending on Unix *)
let temp_dir () =
  let f = Filename.temp_file "ascend_cache" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_cache_disk_roundtrip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c1 = Cache.create ~dir () in
  Cache.add c1 "k1" 41;
  Cache.add c1 "k2" 42;
  Alcotest.(check int) "nothing written before flush" 0
    (Cache.stats c1).Cache.disk_writes;
  Cache.flush c1;
  let s1 = Cache.stats c1 in
  Alcotest.(check int) "two files written" 2 s1.Cache.disk_writes;
  Alcotest.(check int) "indexed" 2 s1.Cache.disk_entries;
  Cache.flush c1;
  Alcotest.(check int) "flush is idempotent" 2
    (Cache.stats c1).Cache.disk_writes;
  (* a fresh cache over the same directory starts warm *)
  let c2 = Cache.create ~dir () in
  Alcotest.(check int) "index scanned at create" 2
    (Cache.stats c2).Cache.disk_entries;
  Alcotest.(check bool) "value survives" true (Cache.find c2 "k1" = Some 41);
  let s2 = Cache.stats c2 in
  Alcotest.(check int) "counted as a disk hit" 1 s2.Cache.disk_hits;
  Alcotest.(check int) "not as a memory hit" 0 s2.Cache.hits;
  Alcotest.(check int) "not as a miss" 0 s2.Cache.misses;
  (* the probe promoted the entry, so the next one hits memory *)
  Alcotest.(check bool) "promoted" true (Cache.find c2 "k1" = Some 41);
  let s3 = Cache.stats c2 in
  Alcotest.(check int) "second probe hits memory" 1 s3.Cache.hits;
  Alcotest.(check int) "disk tier untouched" 1 s3.Cache.disk_hits

let test_cache_disk_corrupt_entry_is_a_miss () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c1 = Cache.create ~dir () in
  Cache.add c1 "good" 7;
  Cache.flush c1;
  let oc = open_out_bin (Filename.concat dir "bad") in
  output_string oc "not a marshaled value";
  close_out oc;
  let c2 = Cache.create ~dir () in
  Alcotest.(check int) "both indexed" 2 (Cache.stats c2).Cache.disk_entries;
  Alcotest.(check bool) "corrupt entry misses" true (Cache.find c2 "bad" = None);
  let s = Cache.stats c2 in
  Alcotest.(check int) "a plain miss" 1 s.Cache.misses;
  Alcotest.(check int) "no disk hit" 0 s.Cache.disk_hits;
  Alcotest.(check int) "dropped from the index" 1 s.Cache.disk_entries;
  Alcotest.(check bool) "good entry still loads" true
    (Cache.find c2 "good" = Some 7)

(* ------------------------------------------------------------------ *)
(* Keys: the content address covers what shapes the program            *)

let test_key_covers_options_and_config () =
  let g = resnet18 () in
  let grp = List.hd (Fusion.partition g) in
  let default = Service.key Config.max grp in
  Alcotest.(check string)
    "pure function of inputs" default (Service.key Config.max grp);
  Alcotest.(check bool)
    "double_buffer keyed" true
    (default
    <> Service.key
         ~options:{ Codegen.default_options with Codegen.double_buffer = false }
         Config.max grp);
  Alcotest.(check bool)
    "sync_mode keyed" true
    (default
    <> Service.key
         ~options:
           { Codegen.default_options with
             Codegen.sync_mode = Codegen.Coarse_barriers }
         Config.max grp);
  Alcotest.(check bool)
    "core version keyed" true (default <> Service.key Config.lite grp);
  let other = List.nth (Fusion.partition g) 1 in
  Alcotest.(check bool)
    "group keyed" true (default <> Service.key Config.max other)

(* ------------------------------------------------------------------ *)
(* Service: hit/miss accounting and result reuse                       *)

let test_service_accounting () =
  let svc = Service.create ~jobs:1 () in
  let g = resnet18 () in
  let groups = List.length (Fusion.partition g) in
  let r1 = ok (Service.run_inference svc Config.max g) in
  let s1 = Service.stats svc in
  Alcotest.(check int) "cold: all misses" groups s1.Cache.misses;
  Alcotest.(check int) "cold: no hits" 0 s1.Cache.hits;
  Alcotest.(check int) "cold: all stored" groups s1.Cache.entries;
  let r2 = ok (Service.run_inference svc Config.max g) in
  let s2 = Service.stats svc in
  Alcotest.(check int) "warm: all hits" groups (s2.Cache.hits - s1.Cache.hits);
  Alcotest.(check int) "warm: no new misses" s1.Cache.misses s2.Cache.misses;
  Alcotest.(check string) "warm result byte-identical" (render r1) (render r2);
  Service.clear svc;
  Alcotest.(check int) "clear empties" 0 (Service.stats svc).Cache.entries;
  Service.shutdown svc

let test_service_matches_serial_engine () =
  (* the façade installs the default service into Engine.run_groups at
     link time; compare against the engine's built-in serial path *)
  let g = resnet18 () in
  Service.uninstall ();
  let serial = ok (Engine.run_inference Config.max g) in
  Service.install_default ();
  let svc = Service.create ~jobs:4 () in
  let cold = ok (Service.run_inference svc Config.max g) in
  let warm = ok (Service.run_inference svc Config.max g) in
  Service.shutdown svc;
  Alcotest.(check string)
    "parallel cold == serial" (render serial) (render cold);
  Alcotest.(check string) "warm == serial" (render serial) (render warm);
  Alcotest.(check int)
    "cycles identical" serial.Engine.total_cycles cold.Engine.total_cycles

let test_service_jobs_invariant () =
  (* same work on 1 vs 4 domains: identical bytes AND identical counters *)
  let g = resnet18 () in
  let run jobs =
    let svc = Service.create ~jobs () in
    let r1 = render (ok (Service.run_inference svc Config.max g)) in
    let r2 = render (ok (Service.run_training svc Config.standard g)) in
    let s = Service.stats svc in
    Service.shutdown svc;
    (r1, r2, s)
  in
  let a1, a2, sa = run 1 in
  let b1, b2, sb = run 4 in
  Alcotest.(check string) "inference bytes" a1 b1;
  Alcotest.(check string) "training bytes" a2 b2;
  Alcotest.(check int) "hits" sa.Cache.hits sb.Cache.hits;
  Alcotest.(check int) "misses" sa.Cache.misses sb.Cache.misses;
  Alcotest.(check int) "entries" sa.Cache.entries sb.Cache.entries

let test_service_dedups_within_batch () =
  (* duplicate groups inside one submission compile once *)
  let g = resnet18 () in
  let grp = List.hd (Fusion.partition g) in
  let svc = Service.create ~jobs:2 () in
  let rs = Service.run_groups svc Config.max [ grp; grp; grp ] in
  let s = Service.stats svc in
  (* probes count per occurrence (all three miss the cold cache), but
     only one entry is computed and stored *)
  Alcotest.(check int) "three results" 3 (List.length rs);
  Alcotest.(check int) "three probes miss" 3 s.Cache.misses;
  Alcotest.(check int) "one entry stored" 1 s.Cache.entries;
  let rs2 = Service.run_groups svc Config.max [ grp; grp; grp ] in
  let s2 = Service.stats svc in
  Service.shutdown svc;
  Alcotest.(check int) "warm batch all hits" 3 (s2.Cache.hits - s.Cache.hits);
  Alcotest.(check int) "no new misses" s.Cache.misses s2.Cache.misses;
  Alcotest.(check int) "still one entry" 1 s2.Cache.entries;
  Alcotest.(check bool) "warm results equal" true (rs = rs2);
  match rs with
  | [ Ok a; Ok b; Ok c ] ->
    Alcotest.(check int) "same cycles" a.Engine.cube_cycles b.Engine.cube_cycles;
    Alcotest.(check int)
      "same cycles again" b.Engine.cube_cycles c.Engine.cube_cycles
  | _ -> Alcotest.fail "expected three Ok results"

let test_service_disk_warm_start () =
  (* a second service over the same cache directory compiles nothing *)
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let g = Ascend.Nn.Gesture.build ~batch:1 () in
  let groups = List.length (Fusion.partition g) in
  let svc1 = Service.create ~jobs:1 ~dir () in
  let r1 = ok (Service.run_inference svc1 Config.tiny g) in
  Service.shutdown svc1;
  (* shutdown flushes the disk tier *)
  Alcotest.(check bool) "entries persisted" true
    ((Service.stats svc1).Cache.disk_writes > 0);
  let svc2 = Service.create ~jobs:1 ~dir () in
  let r2 = ok (Service.run_inference svc2 Config.tiny g) in
  let s2 = Service.stats svc2 in
  Service.shutdown svc2;
  Alcotest.(check int) "warm start: no recompilation" 0 s2.Cache.misses;
  Alcotest.(check bool) "disk tier served" true (s2.Cache.disk_hits > 0);
  Alcotest.(check int) "every group served from a tier" groups
    (s2.Cache.disk_hits + s2.Cache.hits);
  Alcotest.(check string) "byte-identical result" (render r1) (render r2)

let test_service_error_propagates () =
  (* an unsupported dtype fails identically through the service *)
  let g = Ascend.Nn.Resnet.v1_5_18 ~dtype:Ascend.Arch.Precision.Int4 () in
  Service.uninstall ();
  let serial = Engine.run_inference Config.max g in
  Service.install_default ();
  let svc = Service.create ~jobs:2 () in
  let through = Service.run_inference svc Config.max g in
  Service.shutdown svc;
  match (serial, through) with
  | Error a, Error b -> Alcotest.(check string) "same error" a b
  | _ -> Alcotest.fail "expected both paths to reject int4 on Max"

(* ------------------------------------------------------------------ *)
(* Cost oracle delegates to the service cache                          *)

let test_cost_counts_service_hits () =
  let oracle = Ascend.Serving.Cost.create ~core:Config.standard () in
  let build ~batch = Ascend.Nn.Resnet.v1_5_18 ~batch () in
  let e1 = ok (Ascend.Serving.Cost.lookup oracle ~model:"r18" ~build ~batch:1) in
  let cold_misses = Ascend.Serving.Cost.misses oracle in
  let e2 = ok (Ascend.Serving.Cost.lookup oracle ~model:"r18" ~build ~batch:1) in
  Alcotest.(check bool) "first call misses" true (cold_misses > 0);
  Alcotest.(check int)
    "repeat adds no misses" cold_misses
    (Ascend.Serving.Cost.misses oracle);
  Alcotest.(check bool)
    "repeat hits the cache" true
    (Ascend.Serving.Cost.hits oracle >= cold_misses);
  Alcotest.(check int) "same cycles" e1.Ascend.Serving.Cost.cycles
    e2.Ascend.Serving.Cost.cycles

let () =
  Alcotest.run "exec"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss counters" `Quick
            test_cache_hit_miss_counters;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "insert if absent" `Quick
            test_cache_add_is_insert_if_absent;
          Alcotest.test_case "disk roundtrip" `Quick test_cache_disk_roundtrip;
          Alcotest.test_case "disk corruption" `Quick
            test_cache_disk_corrupt_entry_is_a_miss;
        ] );
      ( "key",
        [
          Alcotest.test_case "covers options and config" `Quick
            test_key_covers_options_and_config;
        ] );
      ( "service",
        [
          Alcotest.test_case "accounting" `Quick test_service_accounting;
          Alcotest.test_case "matches serial engine" `Quick
            test_service_matches_serial_engine;
          Alcotest.test_case "jobs invariant" `Quick test_service_jobs_invariant;
          Alcotest.test_case "dedup within batch" `Quick
            test_service_dedups_within_batch;
          Alcotest.test_case "disk warm start" `Quick
            test_service_disk_warm_start;
          Alcotest.test_case "error propagation" `Quick
            test_service_error_propagates;
        ] );
      ( "cost",
        [
          Alcotest.test_case "delegates to cache" `Quick
            test_cost_counts_service_hits;
        ] );
    ]
