(* Decode serving subsystem (lib/decode): KV-cache memory accounting,
   the phase-aware cost oracle, shed semantics, determinism, and the
   continuous-over-static goodput claim. *)

module Config = Ascend.Arch.Config
module Llm = Ascend.Nn.Llm
module Memory_planner = Ascend.Compiler.Memory_planner
module Engine = Ascend.Decode.Engine
module Request = Ascend.Decode.Request
module Cost = Ascend.Decode.Cost
module Metrics = Ascend.Decode.Metrics
module Load_gen = Ascend.Serving.Load_gen
module Json = Ascend.Util.Json

let llm = Llm.tiny_config

(* ------------------------------------------------------------------ *)
(* KV-cache memory accounting                                          *)

let test_kv_bytes_linear () =
  let per = Llm.kv_bytes_per_token llm in
  Alcotest.(check bool) "per-token bytes positive" true (per > 0);
  List.iter
    (fun tokens ->
      Alcotest.(check int)
        (Printf.sprintf "cache bytes linear at %d tokens" tokens)
        (tokens * per)
        (Llm.kv_cache_bytes llm ~tokens))
    [ 1; 7; 64; 512 ];
  (* the planner's graph-derived residency agrees with the model-level
     closed form: a decode step holds cache_len + 1 positions *)
  List.iter
    (fun (batch, cache_len) ->
      let g = Llm.decode ~batch ~cache_len llm in
      Alcotest.(check int)
        (Printf.sprintf "planner agrees at batch %d cache %d" batch cache_len)
        (batch * Llm.kv_cache_bytes llm ~tokens:(cache_len + 1))
        (Memory_planner.kv_cache_bytes g))
    [ (1, 8); (1, 16); (2, 8); (4, 31) ];
  (* prefill leaves a seq_len-position cache behind *)
  let g = Llm.prefill ~batch:1 ~seq_len:24 llm in
  Alcotest.(check int) "prefill cache = seq_len positions"
    (Llm.kv_cache_bytes llm ~tokens:24)
    (Memory_planner.kv_cache_bytes g)

let test_plan_hbm_rejects_kv_overflow () =
  let g = Llm.decode ~batch:1 ~cache_len:32 llm in
  let p = Memory_planner.plan g in
  let need =
    p.Memory_planner.weight_bytes
    + Memory_planner.kv_cache_bytes g
    + p.Memory_planner.peak_bytes
  in
  (match Memory_planner.plan_hbm g ~hbm_bytes:need with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("exact fit rejected: " ^ e));
  match Memory_planner.plan_hbm g ~hbm_bytes:(need - 1) with
  | Ok _ -> Alcotest.fail "overcommitted plan accepted"
  | Error e ->
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "error reports the overcommit" true
      (contains (String.lowercase_ascii e) "kv"
      || contains (String.lowercase_ascii e) "resident")

(* ------------------------------------------------------------------ *)
(* Phase-aware cost oracle                                             *)

let test_cost_oracle_memo () =
  let t = Cost.create ~max_batch:2 ~max_cache_len:8 ~core:Config.lite llm () in
  let entry label = function
    | Ok (e : Cost.entry) ->
      Alcotest.(check bool) (label ^ " cycles positive") true (e.cycles > 0);
      e
    | Error e -> Alcotest.fail e
  in
  let p1 = entry "prefill" (Cost.prefill t ~batch:1 ~prompt_len:8) in
  let m = Cost.misses t in
  let p2 = entry "prefill again" (Cost.prefill t ~batch:1 ~prompt_len:8) in
  Alcotest.(check int) "prefill memoised: no new misses" m (Cost.misses t);
  Alcotest.(check int) "memo returns the same price" p1.Cost.cycles
    p2.Cost.cycles;
  let d1 = entry "decode" (Cost.decode_step t ~batch:2 ~cache_len:4) in
  let m = Cost.misses t in
  let d2 = entry "decode again" (Cost.decode_step t ~batch:2 ~cache_len:4) in
  Alcotest.(check int) "decode memoised: no new misses" m (Cost.misses t);
  Alcotest.(check int) "same decode price" d1.Cost.cycles d2.Cost.cycles;
  Alcotest.(check int) "exact tier never interpolates" 0 (Cost.interpolated t);
  (* a longer cache is never cheaper: attention reads more KV rows *)
  let d8 = entry "decode deep" (Cost.decode_step t ~batch:2 ~cache_len:8) in
  Alcotest.(check bool) "cycles monotone in cache length" true
    (d8.Cost.cycles >= d1.Cost.cycles)

let test_cost_oracle_surrogate () =
  let t =
    Cost.create ~costing:`Surrogate ~max_batch:2 ~max_cache_len:8
      ~core:Config.lite llm ()
  in
  (* in-grid: answered by bilinear interpolation over the fitted grid *)
  (match Cost.decode_step t ~batch:2 ~cache_len:5 with
  | Ok e -> Alcotest.(check bool) "surrogate price positive" true (e.Cost.cycles > 0)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one interpolated lookup" 1 (Cost.interpolated t);
  Alcotest.(check int) "no fallback yet" 0 (Cost.fallbacks t);
  (* off-grid: falls back to the exact tier *)
  (match Cost.decode_step t ~batch:2 ~cache_len:20 with
  | Ok e -> Alcotest.(check bool) "fallback price positive" true (e.Cost.cycles > 0)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "fallback counted" 1 (Cost.fallbacks t);
  Alcotest.(check int) "interpolation count unchanged" 1 (Cost.interpolated t);
  (* the surrogate stays within the calibration budget at grid anchors:
     compare against a fresh exact oracle *)
  let exact = Cost.create ~core:Config.lite llm () in
  let cycles = function
    | Ok (e : Cost.entry) -> float_of_int e.Cost.cycles
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun (batch, cache_len) ->
      let s = cycles (Cost.decode_step t ~batch ~cache_len) in
      let x = cycles (Cost.decode_step exact ~batch ~cache_len) in
      Alcotest.(check bool)
        (Printf.sprintf "within 5%% at batch %d cache %d" batch cache_len)
        true
        (Float.abs (s -. x) /. x <= 0.05))
    [ (1, 1); (2, 8); (1, 4) ]

let test_cost_oracle_bounds () =
  Alcotest.check_raises "grid past max_position rejected"
    (Invalid_argument "Decode.Cost.create: max_cache_len >= llm max_position")
    (fun () ->
      ignore
        (Cost.create ~max_cache_len:llm.Llm.max_position ~core:Config.lite
           llm ()))

(* ------------------------------------------------------------------ *)
(* Engine: shed semantics, determinism, continuous vs static           *)

let request id arrival_s prompt_len output_len =
  { Request.id; arrival_s; prompt_len; output_len }

let config ?(mode = Engine.Continuous) ?(max_batch = 4) ?hbm_bytes () =
  let base = Engine.default_config ~core:Config.lite () in
  let hbm_bytes = Option.value hbm_bytes ~default:base.Engine.hbm_bytes in
  { base with Engine.mode; max_batch; hbm_bytes; max_cache_len = 32 }

let run_ok config requests =
  match Engine.run config requests with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_engine_sheds_infeasible () =
  let r =
    run_ok (config ())
      [
        request 0 0. 8 4;
        (* prompt + output - 1 past the model's max position *)
        request 1 0. llm.Llm.max_position 8;
      ]
  in
  Alcotest.(check int) "one completed" 1 r.Engine.metrics.Metrics.completed;
  Alcotest.(check int) "one shed" 1 r.Engine.metrics.Metrics.shed;
  let rec1 = List.nth r.Engine.records 1 in
  Alcotest.(check bool) "shed outcome recorded" true
    (rec1.Request.outcome = Request.Shed);
  Alcotest.(check int) "shed generates nothing" 0 (Request.tokens rec1);
  (* a KV reservation that can never fit the HBM budget sheds too *)
  let tight =
    config ~hbm_bytes:(r.Engine.weight_bytes + Llm.kv_bytes_per_token llm) ()
  in
  let r2 = run_ok tight [ request 0 0. 4 4 ] in
  Alcotest.(check int) "kv-overflow request shed" 1
    r2.Engine.metrics.Metrics.shed;
  Alcotest.(check int) "no kv ever resident" 0 r2.Engine.kv_peak_bytes

let test_engine_deterministic () =
  let requests =
    Request.of_load_gen
      ~gen:(Load_gen.create ~rate_per_s:400. ~duration_s:0.05 ~seed:9 ())
      ~prompt:(Load_gen.Geometric { mean = 8.; max_len = 16 })
      ~output:(Load_gen.Geometric { mean = 4.; max_len = 8 })
  in
  Alcotest.(check bool) "trace generated" true (List.length requests > 0);
  let run () = run_ok (config ()) requests in
  let a = Json.to_string (Engine.to_json (run ())) in
  let b = Json.to_string (Engine.to_json (run ())) in
  Alcotest.(check string) "byte-identical across runs" a b

let test_engine_accounting () =
  let requests = [ request 0 0. 6 3; request 1 0.0001 4 5 ] in
  let r = run_ok (config ()) requests in
  Alcotest.(check int) "all completed" 2 r.Engine.metrics.Metrics.completed;
  Alcotest.(check int) "token conservation" (3 + 5)
    r.Engine.metrics.Metrics.total_tokens;
  (* one prefill step per admitted request *)
  let prefills =
    List.length
      (List.filter
         (fun s -> s.Metrics.st_kind = Metrics.Prefill)
         r.Engine.steps)
  in
  Alcotest.(check int) "one prefill per request" 2 prefills;
  (* peak KV is bounded by the sum of full reservations and is positive *)
  Alcotest.(check bool) "kv peak positive" true (r.Engine.kv_peak_bytes > 0);
  let reserve p o = Llm.kv_cache_bytes llm ~tokens:(p + o - 1) in
  Alcotest.(check bool) "kv peak within reservations" true
    (r.Engine.kv_peak_bytes <= reserve 6 3 + reserve 4 5);
  List.iter
    (fun (rec_ : Request.record) ->
      Alcotest.(check bool) "ttft positive" true (Request.ttft_s rec_ > 0.);
      Alcotest.(check int) "itl gap per extra token"
        (rec_.Request.request.Request.output_len - 1)
        (List.length rec_.Request.itl_s))
    r.Engine.records

let test_continuous_beats_static () =
  (* heavy pressure: long outputs, arrivals bunched at t=0 — static
     lockstep groups pay padding that continuous batching recovers *)
  let requests =
    Request.of_load_gen
      ~gen:(Load_gen.create ~rate_per_s:2000. ~duration_s:0.02 ~seed:3 ())
      ~prompt:(Load_gen.Geometric { mean = 8.; max_len = 16 })
      ~output:(Load_gen.Geometric { mean = 6.; max_len = 16 })
  in
  let continuous = run_ok (config ~mode:Engine.Continuous ()) requests in
  let static = run_ok (config ~mode:Engine.Static ()) requests in
  Alcotest.(check bool) "both served everything" true
    (continuous.Engine.metrics.Metrics.completed
     = static.Engine.metrics.Metrics.completed
    && continuous.Engine.metrics.Metrics.completed > 0);
  let s = Engine.speedup ~continuous ~static in
  Alcotest.(check bool)
    (Printf.sprintf "continuous goodput >= static (speedup %.3f)" s)
    true (s >= 1.);
  Alcotest.(check bool) "continuous occupancy >= static" true
    (continuous.Engine.metrics.Metrics.mean_decode_batch
    >= static.Engine.metrics.Metrics.mean_decode_batch)

let test_engine_json_shape () =
  let r = run_ok (config ()) [ request 0 0. 4 2 ] in
  match Json.of_string (Json.to_string (Engine.to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok (Json.Obj fields) ->
    List.iter
      (fun k ->
        Alcotest.(check bool) ("has " ^ k) true (List.mem_assoc k fields))
      [ "config"; "metrics"; "memory"; "steps"; "cost_cache" ]
  | Ok _ -> Alcotest.fail "expected a JSON object"

let () =
  Alcotest.run "decode"
    [
      ( "kv-memory",
        [
          Alcotest.test_case "linear in tokens" `Quick test_kv_bytes_linear;
          Alcotest.test_case "plan_hbm overflow" `Quick
            test_plan_hbm_rejects_kv_overflow;
        ] );
      ( "cost",
        [
          Alcotest.test_case "exact memo" `Quick test_cost_oracle_memo;
          Alcotest.test_case "surrogate" `Quick test_cost_oracle_surrogate;
          Alcotest.test_case "bounds" `Quick test_cost_oracle_bounds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sheds infeasible" `Quick
            test_engine_sheds_infeasible;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "accounting" `Quick test_engine_accounting;
          Alcotest.test_case "continuous vs static" `Quick
            test_continuous_beats_static;
          Alcotest.test_case "json shape" `Quick test_engine_json_shape;
        ] );
    ]
