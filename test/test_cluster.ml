open Ascend.Cluster

(* ------------------------------------------------------------------ *)
(* Server                                                             *)

let test_server_topology () =
  let s = Server.ascend910_server in
  Alcotest.(check int) "8 chips" 8 s.Server.chips;
  Alcotest.(check int) "4 per group" 4 (Server.chips_per_group s);
  Alcotest.(check bool) "0 and 3 same group" true (Server.same_group s 0 3);
  Alcotest.(check bool) "3 and 4 different groups" false (Server.same_group s 3 4);
  Alcotest.(check (float 1.)) "HCCS intra" 30e9
    (Server.link_bandwidth s ~src:0 ~dst:1);
  Alcotest.(check (float 1.)) "PCIe inter" 32e9
    (Server.link_bandwidth s ~src:0 ~dst:7)

let test_server_allreduce_scales () =
  let s = Server.ascend910_server in
  let t b = Server.intra_server_allreduce_seconds s ~bytes:b in
  Alcotest.(check (float 1e-12)) "zero bytes free" 0. (t 0.);
  Alcotest.(check bool) "monotone" true (t 1e9 > t 1e8);
  (* 2x the data takes 2x the time in the bandwidth-dominated regime *)
  Alcotest.(check bool) "roughly linear" true
    (Float.abs ((t 2e9 /. t 1e9) -. 2.) < 0.05)

(* chip-pair generator over the 910 server's index space *)
let chip_pair =
  let s = Server.ascend910_server in
  QCheck.(pair (int_bound (s.Server.chips - 1)) (int_bound (s.Server.chips - 1)))

let link_bandwidth_symmetric_prop =
  QCheck.Test.make ~count:200 ~name:"link_bandwidth is symmetric" chip_pair
    (fun (a, b) ->
      let s = Server.ascend910_server in
      Server.link_bandwidth s ~src:a ~dst:b
      = Server.link_bandwidth s ~src:b ~dst:a)

let link_bandwidth_group_prop =
  QCheck.Test.make ~count:200
    ~name:"link_bandwidth follows the group structure" chip_pair
    (fun (a, b) ->
      let s = Server.ascend910_server in
      let bw = Server.link_bandwidth s ~src:a ~dst:b in
      if Server.same_group s a b then bw = s.Server.hccs_bytes_per_s
      else bw = s.Server.pcie_bytes_per_s)

let same_group_equivalence_prop =
  QCheck.Test.make ~count:200 ~name:"same_group is an equivalence"
    (QCheck.triple
       (QCheck.int_bound 7) (QCheck.int_bound 7) (QCheck.int_bound 7))
    (fun (a, b, c) ->
      let s = Server.ascend910_server in
      let sg = Server.same_group s in
      sg a a
      && sg a b = sg b a
      && ((not (sg a b && sg b c)) || sg a c)
      (* and it is exactly the chips-per-group partition *)
      && sg a b = (a / Server.chips_per_group s = b / Server.chips_per_group s))

let intra_allreduce_monotone_prop =
  QCheck.Test.make ~count:200
    ~name:"intra-server allreduce monotone in bytes"
    QCheck.(pair (float_range 0. 1e10) (float_range 0. 1e10))
    (fun (a, b) ->
      let s = Server.ascend910_server in
      let lo = Float.min a b and hi = Float.max a b in
      Server.intra_server_allreduce_seconds s ~bytes:lo
      <= Server.intra_server_allreduce_seconds s ~bytes:hi)

(* ------------------------------------------------------------------ *)
(* Collectives                                                        *)

let test_ring_allreduce_formula () =
  (* 2(n-1)/n * bytes / bw, plus latency terms *)
  let t =
    Collective.ring_allreduce_seconds ~bytes:1e9 ~nodes:4 ~bandwidth:10e9
      ~latency_s:0. ()
  in
  Alcotest.(check (float 1e-6)) "formula" 0.15 t;
  Alcotest.(check (float 1e-12)) "single node free" 0.
    (Collective.ring_allreduce_seconds ~bytes:1e9 ~nodes:1 ~bandwidth:10e9 ())

let test_ring_allreduce_latency_term () =
  let no_lat =
    Collective.ring_allreduce_seconds ~bytes:1e6 ~nodes:16 ~bandwidth:100e9
      ~latency_s:0. ()
  in
  let with_lat =
    Collective.ring_allreduce_seconds ~bytes:1e6 ~nodes:16 ~bandwidth:100e9
      ~latency_s:1e-5 ()
  in
  Alcotest.(check (float 1e-9)) "30 steps of latency" (no_lat +. 30e-5) with_lat

let test_hierarchical_slower_than_intra () =
  let server = Server.ascend910_server in
  let network = Ascend.Noc.Fat_tree.ascend_cluster in
  let intra = Server.intra_server_allreduce_seconds server ~bytes:1e8 in
  let hier =
    Collective.hierarchical_allreduce_seconds ~server ~network ~servers:256
      ~bytes:1e8
  in
  Alcotest.(check bool) "cluster costs more" true (hier > intra)

let test_halving_doubling () =
  (* same bandwidth term as ring, fewer latency steps *)
  let bw = 10e9 and lat = 1e-4 in
  let small_ring =
    Collective.ring_allreduce_seconds ~bytes:1e4 ~nodes:64 ~bandwidth:bw
      ~latency_s:lat ()
  in
  let small_hd =
    Collective.halving_doubling_seconds ~bytes:1e4 ~nodes:64 ~bandwidth:bw
      ~latency_s:lat ()
  in
  Alcotest.(check bool) "hd wins on small messages" true (small_hd < small_ring);
  let big_ring =
    Collective.ring_allreduce_seconds ~bytes:1e10 ~nodes:64 ~bandwidth:bw
      ~latency_s:lat ()
  in
  let big_hd =
    Collective.halving_doubling_seconds ~bytes:1e10 ~nodes:64 ~bandwidth:bw
      ~latency_s:lat ()
  in
  (* bandwidth-bound regime: the two converge *)
  Alcotest.(check bool) "within 1% on huge messages" true
    (Float.abs (big_ring -. big_hd) /. big_ring < 0.01);
  Alcotest.(check (float 1e-12)) "single node free" 0.
    (Collective.halving_doubling_seconds ~bytes:1e6 ~nodes:1 ~bandwidth:bw ())

let test_best_allreduce_picks_minimum () =
  let bw = 10e9 and lat = 1e-4 in
  List.iter
    (fun (bytes, nodes) ->
      let best, name =
        Collective.best_allreduce_seconds ~bytes ~nodes ~bandwidth:bw
          ~latency_s:lat ()
      in
      let ring =
        Collective.ring_allreduce_seconds ~bytes ~nodes ~bandwidth:bw
          ~latency_s:lat ()
      in
      let hd =
        Collective.halving_doubling_seconds ~bytes ~nodes ~bandwidth:bw
          ~latency_s:lat ()
      in
      Alcotest.(check (float 1e-12)) "is the min" (Float.min ring hd) best;
      Alcotest.(check bool) "named" true
        (name = "ring" || name = "halving-doubling"))
    [ (1e3, 8); (1e9, 8); (1e3, 256); (1e9, 256); (1e6, 100) ]

let allreduce_monotone_prop =
  QCheck.Test.make ~count:100 ~name:"allreduce time monotone in bytes"
    QCheck.(pair (float_range 1e3 1e9) (float_range 1e3 1e9))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let t bytes =
        Collective.ring_allreduce_seconds ~bytes ~nodes:8 ~bandwidth:30e9 ()
      in
      t lo <= t hi)

let test_halving_doubling_non_pow2_pinned () =
  (* n = 5 folds the extra node's whole buffer in and out: p = 4, so
     2*(3/4)*B/bw + 4*lat + 2*(B/bw + lat) — 3.1e-4 s at 1 MB over the
     fat-tree NIC rate *)
  let t =
    Collective.halving_doubling_seconds ~bytes:1e6 ~nodes:5 ~bandwidth:12.5e9
      ~latency_s:5e-6 ()
  in
  Alcotest.(check (float 1e-12)) "pinned" 3.1e-4 t

let test_allreduce_efficiency_regression () =
  (* an all-reduce over n peers only needs to move 2(n-1)/n * bytes over
     the busiest link, so a latency-free ring at the wire rate scores
     exactly 1.0 — the old 2*bytes/seconds/bandwidth normalisation
     scored it n/(n-1) (2.0 at n = 2), claiming better-than-wire-rate *)
  let bw = 10e9 and bytes = 1e9 in
  let seconds =
    Collective.ring_allreduce_seconds ~bytes ~nodes:2 ~bandwidth:bw
      ~latency_s:0. ()
  in
  Alcotest.(check (float 1e-9)) "ideal ring scores exactly 1.0" 1.0
    (Collective.allreduce_efficiency ~seconds ~bytes ~nodes:2 ~bandwidth:bw);
  Alcotest.(check (float 1e-12)) "degenerate single node scores 0" 0.
    (Collective.allreduce_efficiency ~seconds:1. ~bytes ~nodes:1 ~bandwidth:bw)

let allreduce_efficiency_bounded_prop =
  QCheck.Test.make ~count:200 ~name:"allreduce efficiency in [0, 1]"
    QCheck.(
      triple (2 -- 64) (float_range 1e3 1e10) (float_range 1e-6 1e-3))
    (fun (nodes, bytes, latency_s) ->
      let bw = 12.5e9 in
      List.for_all
        (fun seconds ->
          let e =
            Collective.allreduce_efficiency ~seconds ~bytes ~nodes
              ~bandwidth:bw
          in
          e >= 0. && e <= 1. +. 1e-9)
        [
          Collective.ring_allreduce_seconds ~bytes ~nodes ~bandwidth:bw
            ~latency_s ();
          Collective.halving_doubling_seconds ~bytes ~nodes ~bandwidth:bw
            ~latency_s ();
        ])

(* ------------------------------------------------------------------ *)
(* Distributed training                                               *)

let chip_result () =
  let build ~batch = Ascend.Nn.Resnet.v1_5_18 ~batch () in
  match
    Ascend.Soc.Training_soc.run ~training:true
      Ascend.Soc.Training_soc.ascend910 ~build ~batch:32
  with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_train_step () =
  let chip = chip_result () in
  let cluster = Training.cluster_of_chips ~chips:256 in
  Alcotest.(check int) "32 servers" 32 cluster.Training.servers;
  Alcotest.(check int) "256 chips" 256 (Training.total_chips cluster);
  let param_bytes = 2. *. 11.7e6 (* resnet18 fp16 *) in
  let step = Training.train_step cluster ~chip_result:chip ~param_bytes in
  Alcotest.(check int) "global batch" (32 * 256) step.Training.global_batch;
  Alcotest.(check bool) "step at least chip time" true
    (step.Training.step_seconds >= chip.Ascend.Soc.Training_soc.step_seconds);
  Alcotest.(check bool) "efficiency in (0,1]" true
    (step.Training.scaling_efficiency > 0.
    && step.Training.scaling_efficiency <= 1.)

let test_scaling_efficiency_degrades () =
  let chip = chip_result () in
  let param_bytes = 2. *. 11.7e6 in
  let eff chips =
    (Training.train_step (Training.cluster_of_chips ~chips) ~chip_result:chip
       ~param_bytes)
      .Training.scaling_efficiency
  in
  Alcotest.(check bool) "more chips, lower efficiency" true
    (eff 2048 <= eff 64 +. 1e-9)

let test_cluster_peak () =
  (* §4.2: the 2048-chip cluster delivers ~512 PFLOPS fp16 *)
  let p = Training.peak_fp16_flops Training.ascend_cluster_2048 in
  Alcotest.(check bool) "500..550 PFLOPS" true (p > 5.0e17 && p < 5.5e17)

let test_time_to_train () =
  let chip = chip_result () in
  let cluster = Training.cluster_of_chips ~chips:256 in
  let step =
    Training.train_step cluster ~chip_result:chip ~param_bytes:(2. *. 11.7e6)
  in
  let t =
    Training.time_to_train_seconds cluster ~step ~samples_per_epoch:1_281_167
      ~epochs:44.
  in
  Alcotest.(check bool) "positive and finite" true (t > 0. && Float.is_finite t)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cluster"
    [
      ( "server",
        [
          Alcotest.test_case "topology" `Quick test_server_topology;
          Alcotest.test_case "allreduce scales" `Quick test_server_allreduce_scales;
          q link_bandwidth_symmetric_prop;
          q link_bandwidth_group_prop;
          q same_group_equivalence_prop;
          q intra_allreduce_monotone_prop;
        ] );
      ( "collective",
        [
          Alcotest.test_case "ring formula" `Quick test_ring_allreduce_formula;
          Alcotest.test_case "latency term" `Quick
            test_ring_allreduce_latency_term;
          Alcotest.test_case "hierarchy cost" `Quick
            test_hierarchical_slower_than_intra;
          Alcotest.test_case "halving-doubling" `Quick test_halving_doubling;
          Alcotest.test_case "algorithm picker" `Quick
            test_best_allreduce_picks_minimum;
          q allreduce_monotone_prop;
          Alcotest.test_case "non-pow2 pinned" `Quick
            test_halving_doubling_non_pow2_pinned;
          Alcotest.test_case "efficiency regression" `Quick
            test_allreduce_efficiency_regression;
          q allreduce_efficiency_bounded_prop;
        ] );
      ( "training",
        [
          Alcotest.test_case "train step" `Quick test_train_step;
          Alcotest.test_case "scaling efficiency" `Quick
            test_scaling_efficiency_degrades;
          Alcotest.test_case "cluster peak" `Quick test_cluster_peak;
          Alcotest.test_case "time to train" `Quick test_time_to_train;
        ] );
    ]
