(* Verify.Cluster (lib/verify) + Collective_schedule (lib/cluster):
   mutation tests provoke every collective Finding.kind, qcheck holds
   the schedule-derived time within the 1e-6 differential gate of the
   closed forms, and placement lint predicts page-ins per policy. *)

module V = Ascend.Verify.Cluster
module Finding = Ascend.Verify.Finding
module Collective = Ascend.Cluster.Collective
module Sched = Ascend.Cluster.Collective_schedule
module Server = Ascend.Cluster.Server
module Fat_tree = Ascend.Noc.Fat_tree

let has pred findings =
  List.exists (fun (f : Finding.t) -> pred f.Finding.kind) findings

let is_unmatched = function Finding.Coll_unmatched -> true | _ -> false
let is_deadlock = function Finding.Coll_deadlock -> true | _ -> false
let is_incomplete = function Finding.Coll_incomplete -> true | _ -> false

let is_overcommit resource = function
  | Finding.Coll_overcommit { resource = r } -> r = resource
  | _ -> false

let gate = 1e-6

let rel_err a b = Float.abs (a -. b) /. Float.max (Float.abs b) 1e-300

(* ------------------------------------------------------------------ *)
(* Mutations: each collective finding kind must be provokable          *)

let base () = Sched.ring ~bytes:1e6 ~nodes:4 ~bandwidth:10e9 ()

let test_clean_base () =
  Alcotest.(check int) "ring schedule clean" 0 (List.length (V.analyze (base ())))

let test_dropped_recv_unmatched () =
  (* drop the first recv: its mirroring send can never complete *)
  let s = base () in
  let dropped = ref false in
  let steps =
    List.map
      (fun (st : V.step) ->
        { st with
          V.ops =
            List.filter
              (fun (o : V.op) ->
                if (not !dropped) && o.V.op_kind = V.Recv then begin
                  dropped := true;
                  false
                end
                else true)
              st.V.ops })
      s.V.steps
  in
  let fs = V.analyze { s with V.steps } in
  Alcotest.(check bool) "a recv was dropped" true !dropped;
  Alcotest.(check bool) "coll-unmatched reported" true (has is_unmatched fs);
  Alcotest.(check bool) "unmatched is an error" true
    (List.exists
       (fun (f : Finding.t) ->
         is_unmatched f.Finding.kind && Finding.is_error f)
       fs)

let test_reordered_deps_deadlock () =
  (* close the dependency chain into a cycle: step 0 waits on the last
     step, which (transitively) waits on step 0 *)
  let s = base () in
  let last = List.length s.V.steps - 1 in
  let steps =
    List.map
      (fun (st : V.step) ->
        if st.V.step_id = 0 then { st with V.deps = [ last ] } else st)
      s.V.steps
  in
  let fs = V.analyze { s with V.steps } in
  Alcotest.(check bool) "coll-deadlock reported" true (has is_deadlock fs);
  (* a dependency on a step that does not exist is also a deadlock *)
  let steps =
    List.map
      (fun (st : V.step) ->
        if st.V.step_id = 0 then { st with V.deps = [ 999 ] } else st)
      (base ()).V.steps
  in
  Alcotest.(check bool) "dangling dep reported" true
    (has is_deadlock (V.analyze { s with V.steps }))

let test_shrunk_capacity_overcommit () =
  (* the schedule's claims were sized for the declared capacity; shrink
     every link and the per-(step, link) claim sums overcommit *)
  let s = base () in
  let links =
    List.map
      (fun (l : V.link) ->
        { l with V.capacity_bytes_per_s = l.V.capacity_bytes_per_s /. 4. })
      s.V.links
  in
  let fs = V.analyze { s with V.links } in
  Alcotest.(check bool) "coll-overcommit/link reported" true
    (has (is_overcommit "link") fs)

let test_copy_instead_of_reduce_incomplete () =
  (* flip every reduce into a plain copy: partial sums get overwritten,
     so contributions never reach every chip *)
  let s = base () in
  let steps =
    List.map
      (fun (st : V.step) ->
        { st with
          V.ops = List.map (fun (o : V.op) -> { o with V.reduce = false }) st.V.ops })
      s.V.steps
  in
  let fs = V.analyze { s with V.steps } in
  Alcotest.(check bool) "coll-incomplete reported" true (has is_incomplete fs)

let test_structural_malformed () =
  let s = base () in
  let steps =
    match s.V.steps with
    | (st : V.step) :: rest ->
      { st with
        V.ops =
          List.map (fun (o : V.op) -> { o with V.chip = s.V.chips + 3 }) st.V.ops }
      :: rest
    | [] -> []
  in
  let fs = V.analyze { s with V.steps } in
  Alcotest.(check bool) "out-of-range chip is malformed" true
    (has (function Finding.Malformed -> true | _ -> false) fs)

(* ------------------------------------------------------------------ *)
(* The differential gate: schedule-derived time = closed form          *)

let test_ring_schedule_time_pinned () =
  (* ring, zero latency: 2(n-1)/n * bytes / bw = 0.15 s *)
  let s = Sched.ring ~bytes:1e9 ~nodes:4 ~bandwidth:10e9 ~latency_s:0. () in
  Alcotest.(check (float 1e-9)) "0.15 s" 0.15 (V.schedule_seconds s)

let flat_params =
  QCheck.(
    triple (1 -- 20) (float_range 1e3 1e9) (float_range 1e9 1e11))

let ring_differential_prop =
  QCheck.Test.make ~count:100
    ~name:"ring schedule within 1e-6 of the closed form (and clean)"
    flat_params
    (fun (nodes, bytes, bandwidth) ->
      let s = Sched.ring ~bytes ~nodes ~bandwidth () in
      let closed =
        Collective.ring_allreduce_seconds ~bytes ~nodes ~bandwidth ()
      in
      V.analyze s = [] && rel_err (V.schedule_seconds s) closed <= gate)

let hd_differential_prop =
  QCheck.Test.make ~count:100
    ~name:"halving/doubling schedule within 1e-6 of the closed form"
    flat_params
    (fun (nodes, bytes, bandwidth) ->
      let s = Sched.halving_doubling ~bytes ~nodes ~bandwidth () in
      let closed =
        Collective.halving_doubling_seconds ~bytes ~nodes ~bandwidth ()
      in
      V.analyze s = [] && rel_err (V.schedule_seconds s) closed <= gate)

let intra_differential_prop =
  QCheck.Test.make ~count:50
    ~name:"intra-server schedule within 1e-6 of the closed form"
    QCheck.(float_range 0. 1e10)
    (fun bytes ->
      let server = Server.ascend910_server in
      let s = Sched.intra_server ~server ~bytes in
      let closed = Server.intra_server_allreduce_seconds server ~bytes in
      V.analyze s = [] && rel_err (V.schedule_seconds s) closed <= gate)

let hierarchical_differential_prop =
  QCheck.Test.make ~count:40
    ~name:"hierarchical schedule within 1e-6 of the closed form"
    QCheck.(pair (1 -- 12) (float_range 1e3 1e9))
    (fun (servers, bytes) ->
      let server = Server.ascend910_server in
      let network = Fat_tree.create ~servers () in
      let s = Sched.hierarchical ~server ~network ~servers ~bytes in
      let closed =
        Collective.hierarchical_allreduce_seconds ~server ~network ~servers
          ~bytes
      in
      V.analyze s = [] && rel_err (V.schedule_seconds s) closed <= gate)

(* ------------------------------------------------------------------ *)
(* Algorithm trade-offs (closed forms, now schedule-backed)            *)

let hd_beats_ring_iff_latency_dominated_prop =
  (* power-of-two peers: same bandwidth term, 2*log2 n latency steps
     against the ring's 2(n-1) — halving/doubling never loses, and wins
     outright as soon as latency matters (n > 2) *)
  QCheck.Test.make ~count:100
    ~name:"pow2 halving/doubling never slower than ring"
    QCheck.(pair (2 -- 6) (float_range 1e3 1e9))
    (fun (log_n, bytes) ->
      let nodes = 1 lsl log_n in
      let bw = 12.5e9 in
      let ring = Collective.ring_allreduce_seconds ~bytes ~nodes ~bandwidth:bw () in
      let hd =
        Collective.halving_doubling_seconds ~bytes ~nodes ~bandwidth:bw ()
      in
      hd <= ring +. 1e-15)

let test_hd_ring_crossover_non_pow2 () =
  (* non-power-of-two peers pay the whole-buffer fold, so the winner
     flips with the regime: halving/doubling on latency-dominated small
     messages, ring on bandwidth-dominated large ones *)
  let bw = 12.5e9 and nodes = 5 in
  let t alg bytes =
    (match alg with
    | `Ring -> Collective.ring_allreduce_seconds
    | `Hd -> Collective.halving_doubling_seconds)
      ~bytes ~nodes ~bandwidth:bw ~latency_s:1e-4 ()
  in
  Alcotest.(check bool) "small messages: halving/doubling wins" true
    (t `Hd 1e3 < t `Ring 1e3);
  Alcotest.(check bool) "large messages: ring wins" true
    (t `Ring 1e9 < t `Hd 1e9)

let fold_penalty_monotone_prop =
  (* n = 5 and n = 4 share p = 4 and the same level count, so their
     difference is exactly the non-power-of-two fold penalty
     2*(bytes/bw + latency): monotone in bytes *)
  QCheck.Test.make ~count:100
    ~name:"non-pow2 fold penalty monotone in bytes"
    QCheck.(pair (float_range 1e3 1e10) (float_range 1e3 1e10))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let penalty bytes =
        Collective.halving_doubling_seconds ~bytes ~nodes:5 ~bandwidth:10e9 ()
        -. Collective.halving_doubling_seconds ~bytes ~nodes:4 ~bandwidth:10e9
             ()
      in
      penalty lo <= penalty hi +. 1e-15)

(* ------------------------------------------------------------------ *)
(* Placement lint + predicted page-ins                                 *)

let plan ?hbm ?(policy = "round-robin") ?(nodes = 3) models =
  { V.plan_name = "test plan"; nodes; hbm_bytes_per_node = hbm; policy;
    models }

let test_placement_hbm_overcommit () =
  (* two cold models, load-spreading policy: every node must eventually
     hold both resident, which overflows a 100 B HBM *)
  let p =
    plan ~hbm:100 ~policy:"least-loaded"
      [ ("a", 80, [ 0 ]); ("b", 60, [ 1 ]) ]
  in
  let fs = V.lint_placement p in
  Alcotest.(check int) "every node overcommits" 3
    (List.length (List.filter (fun (f : Finding.t) -> is_overcommit "HBM" f.Finding.kind) fs));
  Alcotest.(check bool) "HBM overcommit is an error" true
    (List.for_all Finding.is_error fs);
  (* affinity never leaves the replica sets: each node holds one model *)
  let p = plan ~hbm:100 ~policy:"affinity" [ ("a", 80, [ 0 ]); ("b", 60, [ 1 ]) ] in
  Alcotest.(check int) "affinity plan fits" 0 (List.length (V.lint_placement p))

let test_placement_malformed () =
  let bad policy models = V.lint_placement (plan ~policy models) in
  Alcotest.(check bool) "unknown policy" true
    (has (function Finding.Malformed -> true | _ -> false)
       (bad "random" [ ("a", 1, [ 0 ]) ]));
  Alcotest.(check bool) "replica out of range" true
    (has (function Finding.Malformed -> true | _ -> false)
       (bad "affinity" [ ("a", 1, [ 7 ]) ]));
  Alcotest.(check bool) "nowhere resident" true
    (has (function Finding.Malformed -> true | _ -> false)
       (bad "affinity" [ ("a", 1, []) ]))

let test_predicted_page_ins () =
  let models = [ ("cold", 10, [ 0 ]); ("hot", 10, [ 0; 1; 2 ]) ] in
  Alcotest.(check (array int)) "round-robin pages cold in everywhere else"
    [| 0; 1; 1 |]
    (V.predicted_page_ins (plan ~policy:"round-robin" models));
  Alcotest.(check (array int)) "least-loaded reaches every node"
    [| 0; 1; 1 |]
    (V.predicted_page_ins (plan ~policy:"least-loaded" models));
  Alcotest.(check (array int)) "affinity never pages" [| 0; 0; 0 |]
    (V.predicted_page_ins (plan ~policy:"affinity" models))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "verify_cluster"
    [
      ( "mutations",
        [
          Alcotest.test_case "base is clean" `Quick test_clean_base;
          Alcotest.test_case "dropped recv" `Quick test_dropped_recv_unmatched;
          Alcotest.test_case "dependency cycle" `Quick
            test_reordered_deps_deadlock;
          Alcotest.test_case "shrunk capacity" `Quick
            test_shrunk_capacity_overcommit;
          Alcotest.test_case "copy instead of reduce" `Quick
            test_copy_instead_of_reduce_incomplete;
          Alcotest.test_case "malformed" `Quick test_structural_malformed;
        ] );
      ( "differential",
        [
          Alcotest.test_case "ring time pinned" `Quick
            test_ring_schedule_time_pinned;
          q ring_differential_prop;
          q hd_differential_prop;
          q intra_differential_prop;
          q hierarchical_differential_prop;
        ] );
      ( "trade-offs",
        [
          q hd_beats_ring_iff_latency_dominated_prop;
          Alcotest.test_case "non-pow2 crossover" `Quick
            test_hd_ring_crossover_non_pow2;
          q fold_penalty_monotone_prop;
        ] );
      ( "placement",
        [
          Alcotest.test_case "HBM overcommit" `Quick
            test_placement_hbm_overcommit;
          Alcotest.test_case "malformed plans" `Quick test_placement_malformed;
          Alcotest.test_case "predicted page-ins" `Quick
            test_predicted_page_ins;
        ] );
    ]
