open Ascend.Runtime
module Prng = Ascend.Util.Prng

let task ?(blocks = 1) ?(cycles = 10) name =
  { Scheduler.task_name = name; blocks; cycles_per_block = cycles }

let stream name tasks = { Scheduler.stream_name = name; tasks }
let app ?priority name streams = Scheduler.app ?priority ~name streams

(* ------------------------------------------------------------------ *)

let test_single_task () =
  let s = Scheduler.run ~cores:4 [ app "a" [ stream "s" [ task "t" ] ] ] in
  Alcotest.(check int) "makespan" 10 s.Scheduler.makespan_cycles;
  Alcotest.(check int) "one task" 1 s.Scheduler.tasks_completed;
  Alcotest.(check int) "one placement" 1 (List.length s.Scheduler.placements)

let test_blocks_parallelise () =
  let t = task ~blocks:4 ~cycles:10 "t" in
  let wide = Scheduler.run ~cores:4 [ app "a" [ stream "s" [ t ] ] ] in
  let narrow = Scheduler.run ~cores:1 [ app "a" [ stream "s" [ t ] ] ] in
  Alcotest.(check int) "4 cores: one wave" 10 wide.Scheduler.makespan_cycles;
  Alcotest.(check int) "1 core: serialised" 40 narrow.Scheduler.makespan_cycles

let test_stream_tasks_in_order () =
  let s =
    Scheduler.run ~cores:8
      [ app "a" [ stream "s" [ task ~cycles:5 "t1"; task ~cycles:5 "t2" ] ] ]
  in
  (* in-order within a stream: t2 starts after t1 completes *)
  let find name =
    List.find (fun p -> p.Scheduler.task = name) s.Scheduler.placements
  in
  Alcotest.(check bool) "t2 after t1" true
    ((find "t2").Scheduler.start_cycle >= (find "t1").Scheduler.end_cycle);
  Alcotest.(check int) "makespan adds" 10 s.Scheduler.makespan_cycles

let test_streams_run_concurrently () =
  let s =
    Scheduler.run ~cores:2
      [
        app "a"
          [
            stream "s1" [ task ~cycles:10 "t1" ];
            stream "s2" [ task ~cycles:10 "t2" ];
          ];
      ]
  in
  Alcotest.(check int) "overlapped" 10 s.Scheduler.makespan_cycles

let test_apps_share_soc () =
  (* §5.2: multiple apps execute in parallel on one SoC *)
  let mk name = app name [ stream (name ^ ".s") [ task ~cycles:10 name ] ] in
  let s = Scheduler.run ~cores:2 [ mk "app1"; mk "app2" ] in
  Alcotest.(check int) "both complete concurrently" 10
    s.Scheduler.makespan_cycles

let test_utilization_bounds () =
  let s =
    Scheduler.run ~cores:3
      [ app "a" [ stream "s" [ task ~blocks:9 ~cycles:7 "t" ] ] ]
  in
  let u = Scheduler.utilization s in
  Alcotest.(check bool) "0 < u <= 1" true (u > 0. && u <= 1.);
  Alcotest.(check (float 1e-9)) "perfectly balanced" 1. u

let no_core_overlap placements =
  (* on each core, busy intervals must not overlap *)
  let by_core = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let cur =
        match Hashtbl.find_opt by_core p.Scheduler.core with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_core p.Scheduler.core (p :: cur))
    placements;
  Hashtbl.fold
    (fun _ ps acc ->
      let sorted =
        List.sort (fun a b -> compare a.Scheduler.start_cycle b.Scheduler.start_cycle) ps
      in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          a.Scheduler.end_cycle <= b.Scheduler.start_cycle && ok rest
        | [ _ ] | [] -> true
      in
      acc && ok sorted)
    by_core true

let random_apps rng =
  let n_apps = 1 + Prng.int rng ~bound:3 in
  List.init n_apps (fun ai ->
      let n_streams = 1 + Prng.int rng ~bound:3 in
      app
        (Printf.sprintf "app%d" ai)
        (List.init n_streams (fun si ->
             let n_tasks = 1 + Prng.int rng ~bound:4 in
             stream
               (Printf.sprintf "s%d.%d" ai si)
               (List.init n_tasks (fun ti ->
                    task
                      ~blocks:(1 + Prng.int rng ~bound:4)
                      ~cycles:(1 + Prng.int rng ~bound:20)
                      (Printf.sprintf "t%d.%d.%d" ai si ti))))))

let conservation_prop =
  QCheck.Test.make ~count:100 ~name:"every block placed exactly once"
    QCheck.(pair (int_range 1 8) (int_range 0 10000))
    (fun (cores, seed) ->
      let rng = Prng.create ~seed in
      let apps = random_apps rng in
      let expected =
        List.fold_left
          (fun acc a ->
            List.fold_left
              (fun acc s ->
                List.fold_left
                  (fun acc t -> acc + t.Scheduler.blocks)
                  acc s.Scheduler.tasks)
              acc a.Scheduler.streams)
          0 apps
      in
      let s = Scheduler.run ~cores apps in
      List.length s.Scheduler.placements = expected
      && no_core_overlap s.Scheduler.placements)

let more_cores_not_slower_prop =
  QCheck.Test.make ~count:50 ~name:"more cores never slower"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let apps = random_apps rng in
      let m cores = (Scheduler.run ~cores apps).Scheduler.makespan_cycles in
      m 8 <= m 2 && m 2 <= m 1)

let test_layer_to_task () =
  match
    Ascend.Compiler.Engine.run_inference Ascend.Arch.Config.tiny
      (Ascend.Nn.Gesture.build ())
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let stream = Scheduler.stream_of_network r ~blocks_per_task:2 in
    Alcotest.(check int) "one task per layer"
      (List.length r.Ascend.Compiler.Engine.layers)
      (List.length stream.Scheduler.tasks);
    let s = Scheduler.run ~cores:2 [ app "net" [ stream ] ] in
    Alcotest.(check bool) "finishes" true (s.Scheduler.makespan_cycles > 0)

let test_priority_preference () =
  (* one core, two identical apps: the high-priority one runs first *)
  let mk name priority =
    app ~priority name [ stream (name ^ ".s") [ task ~cycles:10 name ] ]
  in
  let s = Scheduler.run ~cores:1 [ mk "background" 0; mk "critical" 5 ] in
  let find name =
    List.find (fun p -> p.Scheduler.task = name) s.Scheduler.placements
  in
  Alcotest.(check int) "critical starts immediately" 0
    (find "critical").Scheduler.start_cycle;
  Alcotest.(check bool) "background waits" true
    ((find "background").Scheduler.start_cycle
    >= (find "critical").Scheduler.end_cycle)

let priorities_do_not_change_makespan_prop =
  (* priorities reorder work on a work-conserving scheduler: total
     makespan of a fixed task set stays within the no-priority bound for
     single-block tasks on one core *)
  QCheck.Test.make ~count:50 ~name:"priorities keep the scheduler work-conserving"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let mk priority i =
        app ~priority
          (Printf.sprintf "a%d" i)
          [ stream
              (Printf.sprintf "s%d" i)
              [ task ~cycles:(1 + Prng.int rng ~bound:20) (Printf.sprintf "t%d" i) ] ]
      in
      let apps = List.init 4 (fun i -> mk (Prng.int rng ~bound:3) i) in
      let total =
        List.fold_left
          (fun acc a ->
            List.fold_left
              (fun acc s ->
                List.fold_left
                  (fun acc t -> acc + t.Scheduler.cycles_per_block)
                  acc s.Scheduler.tasks)
              acc a.Scheduler.streams)
          0 apps
      in
      (Scheduler.run ~cores:1 apps).Scheduler.makespan_cycles = total)

let test_equal_priority_fairness () =
  (* two equal-priority apps on one core: readiness ties alternate
     between them instead of draining one app first *)
  let mk name =
    app ~priority:1 name
      [ stream (name ^ ".s") [ task ~cycles:10 (name ^ ".t1");
                               task ~cycles:10 (name ^ ".t2") ] ]
  in
  let s = Scheduler.run ~cores:1 [ mk "a"; mk "b" ] in
  let find name =
    List.find (fun p -> p.Scheduler.task = name) s.Scheduler.placements
  in
  (* after a.t1 runs, b.t1 has been ready since cycle 0 while a.t2 only
     became ready at 10 — so b.t1 goes second, not a.t2 *)
  Alcotest.(check bool) "b.t1 before a.t2" true
    ((find "b.t1").Scheduler.start_cycle < (find "a.t2").Scheduler.start_cycle);
  Alcotest.(check int) "work-conserving" 40 s.Scheduler.makespan_cycles

let test_high_priority_on_saturated_cores () =
  (* both cores saturated with two waves of background work; a
     high-priority arrival still lands in the first wave *)
  let background =
    app ~priority:0 "background"
      (List.init 4 (fun i ->
           stream (Printf.sprintf "bg%d" i)
             [ task ~cycles:10 (Printf.sprintf "bg%d" i) ]))
  in
  let critical =
    app ~priority:9 "critical"
      [ stream "crit" [ task ~cycles:10 "crit" ] ]
  in
  let s = Scheduler.run ~cores:2 [ background; critical ] in
  let crit =
    List.find (fun p -> p.Scheduler.task = "crit") s.Scheduler.placements
  in
  Alcotest.(check int) "critical pre-empts the queue" 0
    crit.Scheduler.start_cycle;
  (* 5 x 10-cycle single-block tasks on 2 cores: 30-cycle makespan *)
  Alcotest.(check int) "background absorbs the delay" 30
    s.Scheduler.makespan_cycles

let test_zero_cycle_task () =
  (* a zero-cycle task (e.g. a pure synchronisation point) is legal: it
     is placed, completes instantly, and releases its successor *)
  let s =
    Scheduler.run ~cores:1
      [ app "a"
          [ stream "s" [ task ~cycles:0 "sync"; task ~cycles:7 "work" ] ] ]
  in
  let find name =
    List.find (fun p -> p.Scheduler.task = name) s.Scheduler.placements
  in
  Alcotest.(check int) "sync takes no time" 0
    ((find "sync").Scheduler.end_cycle - (find "sync").Scheduler.start_cycle);
  Alcotest.(check bool) "work follows" true
    ((find "work").Scheduler.start_cycle >= (find "sync").Scheduler.end_cycle);
  Alcotest.(check int) "makespan is the real work" 7
    s.Scheduler.makespan_cycles;
  Alcotest.(check int) "both placed" 2 (List.length s.Scheduler.placements)

let test_invalid_inputs () =
  Alcotest.(check bool) "0 cores raises" true
    (try
       ignore (Scheduler.run ~cores:0 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "0 blocks raises" true
    (try
       ignore
         (Scheduler.run ~cores:1
            [ app "a" [ stream "s" [ task ~blocks:0 "t" ] ] ]);
       false
     with Invalid_argument _ -> true)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [
      ( "scheduler",
        [
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "blocks parallelise" `Quick test_blocks_parallelise;
          Alcotest.test_case "stream order" `Quick test_stream_tasks_in_order;
          Alcotest.test_case "streams concurrent" `Quick
            test_streams_run_concurrently;
          Alcotest.test_case "apps share soc" `Quick test_apps_share_soc;
          Alcotest.test_case "utilization" `Quick test_utilization_bounds;
          Alcotest.test_case "layers to tasks" `Quick test_layer_to_task;
          Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
          Alcotest.test_case "priority preference" `Quick
            test_priority_preference;
          Alcotest.test_case "equal-priority fairness" `Quick
            test_equal_priority_fairness;
          Alcotest.test_case "high priority on saturated cores" `Quick
            test_high_priority_on_saturated_cores;
          Alcotest.test_case "zero-cycle task" `Quick test_zero_cycle_task;
          q priorities_do_not_change_makespan_prop;
          q conservation_prop;
          q more_cores_not_slower_prop;
        ] );
    ]
