(* Quickstart: build a small CNN in the layer IR, compile it with the
   multi-tier compiler, and simulate it on an Ascend-Mini core.

     dune exec examples/quickstart.exe *)

module Graph = Ascend.Nn.Graph
module Shape = Ascend.Tensor.Shape
module Engine = Ascend.Compiler.Engine
module Config = Ascend.Arch.Config

let build_net () =
  let g = Graph.create ~name:"quickstart_cnn" ~dtype:Ascend.Arch.Precision.Fp16 in
  let x = Graph.input g ~name:"image" (Shape.nchw ~n:1 ~c:3 ~h:64 ~w:64) in
  let x = Graph.conv2d g ~name:"conv1" ~cout:32 ~k:3 ~stride:2 ~padding:1 x in
  let x = Graph.batch_norm g ~name:"bn1" x in
  let x = Graph.relu g ~name:"relu1" x in
  let x = Graph.conv2d g ~name:"conv2" ~cout:64 ~k:3 ~padding:1 x in
  let x = Graph.relu g ~name:"relu2" x in
  let x = Graph.max_pool g ~name:"pool" ~kernel:2 ~stride:2 x in
  let x = Graph.conv2d g ~name:"conv3" ~cout:128 ~k:3 ~padding:1 x in
  let x = Graph.relu g ~name:"relu3" x in
  let x = Graph.global_avg_pool g ~name:"gap" x in
  let x = Graph.linear g ~name:"fc" ~out_features:10 x in
  ignore (Graph.output g ~name:"logits" x);
  g

let () =
  let g = build_net () in
  (match Graph.validate g with
  | Ok () -> ()
  | Error e -> failwith ("invalid graph: " ^ e));
  Format.printf "%a@." Graph.pp_summary g;

  (* numeric forward execution against the reference operators *)
  let params = Ascend.Nn.Eval.random_params ~seed:42 g in
  let rng = Ascend.Util.Prng.create ~seed:1 in
  let image =
    Ascend.Tensor.Tensor.random rng (Shape.nchw ~n:1 ~c:3 ~h:64 ~w:64)
  in
  (match Ascend.Nn.Eval.run g params ~inputs:[ ("image", image) ] with
  | [ (name, t) ] ->
    Format.printf "numeric eval -> %s : %a@.@." name Ascend.Tensor.Tensor.pp t
  | _ -> assert false);

  (* compile + simulate on every core version that supports fp16 *)
  List.iter
    (fun config ->
      if Config.supports config (Graph.dtype g) then
        match Engine.run_inference config g with
        | Error e -> Format.printf "%s: ERROR %s@." config.Config.name e
        | Ok r ->
          Format.printf "%s: %a / inference, %.2f W average@."
            config.Config.name Ascend.Util.Units.pp_seconds (Engine.seconds r)
            (Engine.average_power_w r))
    Config.all;
  Format.printf "@.";

  (* the per-layer cube/vector profile on Ascend-Mini (the paper's §2.4
     profiling methodology) *)
  (match Engine.run_inference Config.mini g with
  | Error e -> failwith e
  | Ok r ->
    Format.printf "%a@." Engine.pp_layer_table r;
    (* peek at the generated code of the first layer *)
    (match r.Engine.layers with
    | first :: _ ->
      let p = first.Engine.program in
      Format.printf "first 12 instructions of layer '%s':@."
        p.Ascend.Isa.Program.program_name;
      List.iteri
        (fun i instr ->
          if i < 12 then
            Format.printf "  %2d  %a@." i Ascend.Isa.Instruction.pp instr)
        p.Ascend.Isa.Program.instructions
    | [] -> ()));

  (* a Gantt view of the decoupled pipes (paper Figure 3, regenerated
     from an actual traced run of the conv2 layer) *)
  let groups = Ascend.Compiler.Fusion.partition g in
  match List.nth_opt groups 1 with
  | None -> ()
  | Some group ->
    let program =
      Ascend.Compiler.Codegen.group_program Config.mini group
    in
    (match Ascend.Core_sim.Simulator.run ~trace:true Config.mini program with
    | Error e -> failwith e
    | Ok report ->
      Format.printf "@.pipe timeline of layer '%s' (paper Figure 3):@.%s@."
        group.Ascend.Compiler.Fusion.tag
        (Ascend.Core_sim.Timeline.render report);
      Format.printf "%s"
        (Ascend.Core_sim.Timeline.utilization_bars report))
