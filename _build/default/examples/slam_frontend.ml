(* SLAM on the Vector Core (paper §3.3): the automotive SoC runs
   localization and map construction on cube-less Ascend cores with
   dedicated vector-instruction extensions — sorting, stereo vision,
   quaternion arithmetic, clustering and linear programming.

   This example runs the actual algorithms (not just the cycle models):
   a synthetic stereo pair is matched for disparity, features are
   selected by top-k, the pose integrates IMU increments with
   quaternions, landmarks are clustered, and a trajectory feasibility LP
   is solved — then the per-frame cycle budget is checked on the Vector
   Core configuration.

     dune exec examples/slam_frontend.exe *)

open Ascend.Vector_core

let () =
  (* 1. stereo: recover a known disparity from a synthetic pair *)
  let scene =
    Stereo.image_of_fn ~width:64 ~height:24 (fun ~x ~y ->
        let fx = float_of_int x and fy = float_of_int y in
        sin (fx *. 0.8) +. cos (fy *. 1.1) +. sin (fx *. fy *. 0.07))
  in
  let true_d = 5 in
  let right = Stereo.shift_scene scene ~disparity:true_d in
  let map = Stereo.disparity_map ~window:5 ~max_disparity:8 ~left:scene ~right () in
  let correct =
    Array.to_list map
    |> List.filter (fun d -> d = true_d)
    |> List.length
  in
  Format.printf "stereo: %d/%d pixels recover the true disparity of %d@."
    correct (Array.length map) true_d;

  (* 2. feature selection: top-k of synthetic corner responses *)
  let rng = Ascend.Util.Prng.create ~seed:3 in
  let responses =
    Array.init 4000 (fun _ -> Ascend.Util.Prng.uniform rng ~lo:0. ~hi:1.)
  in
  let top = Sort.top_k responses ~k:8 in
  Format.printf "features: top-8 responses of 4000: %s@."
    (String.concat ", "
       (List.map (Printf.sprintf "%.3f") (Array.to_list top)));

  (* 3. pose integration: compose 100 small yaw increments *)
  let dq = Quaternion.of_axis_angle ~axis:(0., 0., 1.) ~angle:0.01 in
  let pose = ref Quaternion.identity in
  for _ = 1 to 100 do
    pose := Quaternion.normalize (Quaternion.mul !pose dq)
  done;
  let fx, fy, _ = Quaternion.rotate !pose (1., 0., 0.) in
  Format.printf
    "pose: 100 x 0.01 rad yaw increments rotate the x-axis to (%.3f, %.3f) \
     (expected (%.3f, %.3f))@."
    fx fy (cos 1.0) (sin 1.0);

  (* 4. landmark clustering *)
  let landmarks =
    Array.init 120 (fun i ->
        let cx = float_of_int (i mod 3) *. 8. in
        [| cx +. Ascend.Util.Prng.gaussian rng ~mu:0. ~sigma:0.3;
           Ascend.Util.Prng.gaussian rng ~mu:0. ~sigma:0.3 |])
  in
  let km = Kmeans.fit ~points:landmarks ~k:3 () in
  Format.printf "clustering: 3 landmark groups in %d iterations, inertia %.1f@."
    km.Kmeans.iterations km.Kmeans.inertia;

  (* 5. trajectory feasibility LP: max forward progress under lateral
     acceleration and lane constraints *)
  (match
     Simplex.solve ~c:[| 1.0; 0.2 |]
       ~a:[| [| 1.0; 0.5 |]; [| 0.3; 1.0 |]; [| 1.0; 0.0 |] |]
       ~b:[| 10.; 6.; 8. |]
   with
  | Ok (Simplex.Optimal { objective; x }) ->
    Format.printf "trajectory LP: optimal %.2f at (%.2f, %.2f)@." objective
      x.(0) x.(1)
  | Ok Simplex.Unbounded -> Format.printf "trajectory LP: unbounded?!@."
  | Error e -> Format.printf "trajectory LP: %s@." e);

  (* 6. the cycle budget on the Vector Core *)
  Format.printf "@.%a@."
    Slam_pipeline.pp
    (Slam_pipeline.profile_frame ~width:640 ~height:480 ~features:4000
       ~landmarks:2000 ());
  Format.printf
    "the %s sustains a VGA stereo front end well above the 20 Hz automotive \
     frame rate@."
    Slam_pipeline.vector_core_config.Ascend.Arch.Config.name
