(* Numeric training end to end: reverse-mode autodiff over the layer IR
   (the ground truth behind the paper's Figure 5 backward profile) drives
   SGD on a small MLP, and the same training step is then compiled and
   simulated on an Ascend-Max core to see where its cycles go.

     dune exec examples/train_tiny.exe *)

module Graph = Ascend.Nn.Graph
module Shape = Ascend.Tensor.Shape
module Tensor = Ascend.Tensor.Tensor
module Eval = Ascend.Nn.Eval
module Autodiff = Ascend.Nn.Autodiff

(* learn y = tanh(W2 gelu(W1 x)): a two-layer MLP regression *)
let build_mlp ~batch =
  let g = Graph.create ~name:"tiny_mlp" ~dtype:Ascend.Arch.Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.matrix batch 8) in
  let h = Graph.linear g ~name:"w1" ~out_features:16 x in
  let h = Graph.gelu g h in
  let y = Graph.linear g ~name:"w2" ~out_features:1 h in
  let y = Graph.activation g ~name:"out_act" Ascend.Nn.Op.Tanh y in
  ignore (Graph.output g ~name:"y" y);
  g

let () =
  let batch = 32 in
  let g = build_mlp ~batch in
  let params = Eval.random_params ~seed:11 g in
  let rng = Ascend.Util.Prng.create ~seed:12 in

  (* a synthetic teacher: y = tanh(sum of the first three features) *)
  let make_batch () =
    let x = Tensor.random rng (Shape.matrix batch 8) in
    let target =
      Tensor.init (Shape.matrix batch 1) (fun idx ->
          Float.tanh
            (Tensor.get x [| idx.(0); 0 |]
            +. Tensor.get x [| idx.(0); 1 |]
            +. Tensor.get x [| idx.(0); 2 |]))
    in
    (x, target)
  in

  let mse prediction target =
    let d = Tensor.sub prediction target in
    Tensor.fold (fun acc v -> acc +. (v *. v)) 0. d
    /. float_of_int (Tensor.numel d)
  in

  let lr = 0.05 in
  let steps = 300 in
  Format.printf "training a 2-layer MLP with autodiff + SGD:@.";
  for step = 0 to steps do
    let x, target = make_batch () in
    let inputs = [ ("x", x) ] in
    let prediction =
      match Eval.run g params ~inputs with
      | [ (_, t) ] -> t
      | _ -> assert false
    in
    if step mod 60 = 0 then
      Format.printf "  step %3d: mse %.4f@." step (mse prediction target);
    (* dL/dy for MSE: 2 (y - t) / n *)
    let n = float_of_int (Tensor.numel prediction) in
    let loss_grad =
      Tensor.map (fun v -> 2. *. v /. n) (Tensor.sub prediction target)
    in
    let grads = Autodiff.backward g params ~inputs ~loss_grad () in
    List.iter
      (fun (name, gt) ->
        match Eval.find_param params name with
        | Some w ->
          for i = 0 to Tensor.numel w - 1 do
            Tensor.set_flat w i
              (Tensor.get_flat w i -. (lr *. Tensor.get_flat gt i))
          done
        | None -> ())
      grads.Autodiff.param_grads
  done;

  (* where would this training step's cycles go on real silicon? *)
  Format.printf
    "@.the same forward+backward step compiled for one Ascend-Max core:@.";
  match
    Ascend.Compiler.Engine.run_training Ascend.Arch.Config.max
      (Graph.create ~name:"fp16_twin" ~dtype:Ascend.Arch.Precision.Fp16
      |> fun g16 ->
       let x = Graph.input g16 ~name:"x" (Shape.matrix batch 8) in
       let h = Graph.linear g16 ~name:"w1" ~out_features:16 x in
       let h = Graph.gelu g16 h in
       let y = Graph.linear g16 ~name:"w2" ~out_features:1 h in
       ignore (Graph.output g16 y);
       g16)
  with
  | Error e -> Format.printf "simulation error: %s@." e
  | Ok r ->
    Format.printf "%a@." Ascend.Compiler.Engine.pp_layer_table r
