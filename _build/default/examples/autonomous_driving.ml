(* Autonomous-driving service on the Ascend 610 model (paper §3.3): a
   perception stack of several DNNs running every frame behind the DVPP,
   with MPAM/QoS protecting its memory bandwidth from background traffic,
   and the safety CPUs on their own ASIL-D ring.

     dune exec examples/autonomous_driving.exe *)

module Auto = Ascend.Soc.Automotive_soc
module Dvpp = Ascend.Soc.Dvpp
module Table = Ascend.Util.Table

let models () =
  [
    (* (name, network, per-frame deadline) — a 20 Hz perception stack *)
    ("lane-detector", Ascend.Nn.Resnet.v1_5_18 (), 0.05);
    ("object-segmenter", Ascend.Nn.Mobilenet.v2 (), 0.05);
    ("sign-classifier", Ascend.Nn.Gesture.build (), 0.05);
  ]

let () =
  let soc = Auto.ascend610 in
  Format.printf "SoC: %s — %.0f TOPS int8 / %.0f TOPS int4, TDP %.0f W@."
    soc.Auto.soc_name
    (Auto.peak_tops soc ~precision:Ascend.Arch.Precision.Int8)
    (Auto.peak_tops soc ~precision:Ascend.Arch.Precision.Int4)
    soc.Auto.tdp_w;
  Format.printf
    "DVPP front end: %d decode channels, 1080p frame in %.1f ms; safety ring \
     worst-case %.0f ns@.@."
    soc.Auto.dvpp.Dvpp.decode_channels
    (Dvpp.frame_latency_s soc.Auto.dvpp ~width:1920 ~height:1080 *. 1e3)
    (Auto.worst_case_cpu_latency_ns soc);

  let backgrounds = [ 0.; 40e9; 90e9 ] in
  List.iter
    (fun bg ->
      Format.printf "--- background traffic: %.0f GB/s ---@." (bg /. 1e9);
      List.iter
        (fun with_mpam ->
          match Auto.run_service ~with_mpam soc ~models:(models ()) ~background_demand:bg with
          | Error e -> Format.printf "error: %s@." e
          | Ok results ->
            let t =
              Table.create
                ~title:(if with_mpam then "with MPAM partitioning" else "no partitioning (fair share)")
                ~header:[ "model"; "compute (ms)"; "memory (ms)"; "dvpp (ms)";
                          "end-to-end (ms)"; "deadline"; "met" ]
                ()
            in
            List.iter
              (fun (r : Auto.service_result) ->
                Table.add_row t
                  [
                    r.Auto.model_name;
                    Table.cell_float (r.Auto.compute_s *. 1e3);
                    Table.cell_float (r.Auto.memory_s *. 1e3);
                    Table.cell_float (r.Auto.dvpp_s *. 1e3);
                    Table.cell_float (r.Auto.end_to_end_s *. 1e3);
                    Table.cell_float (r.Auto.deadline_s *. 1e3);
                    (if r.Auto.met_deadline then "yes" else "NO");
                  ])
              results;
            Table.print t)
        [ true; false ];
      Format.printf "@.")
    backgrounds;

  (* the multi-level scheduler of §5.2: all three apps share the SoC's
     cores at block granularity *)
  let core = soc.Auto.core in
  let streams =
    List.filter_map
      (fun (name, g, _) ->
        match Ascend.Compiler.Engine.run_inference core g with
        | Error _ -> None
        | Ok r ->
          Some
            (Ascend.Runtime.Scheduler.app ~name
               [ Ascend.Runtime.Scheduler.stream_of_network r ~blocks_per_task:2 ]))
      (models ())
  in
  let schedule = Ascend.Runtime.Scheduler.run ~cores:soc.Auto.cores streams in
  Format.printf "block-level schedule across %d cores: %a@." soc.Auto.cores
    Ascend.Runtime.Scheduler.pp schedule
