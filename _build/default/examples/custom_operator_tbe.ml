(* Custom operator development with the TBE DSL (paper §5.1, Level-3
   "mathematical programming"): define swish(x) = x * sigmoid(x) with no
   hardware knowledge, check it numerically, and let the compiler lower
   it to a vector-unit task for every Ascend core version.

     dune exec examples/custom_operator_tbe.exe *)

module Expr = Ascend.Tbe.Expr
module Kernel = Ascend.Tbe.Kernel
module Config = Ascend.Arch.Config
module Tensor = Ascend.Tensor.Tensor
module Table = Ascend.Util.Table

let () =
  (* swish = x * sigmoid(x), written as mathematics *)
  let swish = Expr.Mul (Expr.x0, Expr.sigmoid Expr.x0) in
  Format.printf "operator: swish(x) = %a  (%d vector passes)@.@." Expr.pp swish
    (Expr.passes swish);

  (* numeric check against a hand-written reference *)
  let rng = Ascend.Util.Prng.create ~seed:9 in
  let x = Tensor.random rng (Ascend.Tensor.Shape.vector 1024) in
  let k = Kernel.make ~name:"swish" ~expr:swish ~elems:1024 () in
  let y = Kernel.run k [ x ] in
  let reference =
    Tensor.map (fun v -> v /. (1. +. exp (-.v))) x
  in
  Format.printf "max |DSL - reference| over 1024 random inputs: %.2e@.@."
    (Tensor.max_abs_diff y reference);

  (* lower to each core and simulate a 1M-element invocation *)
  let big = Kernel.make ~name:"swish-1M" ~expr:swish ~elems:1_000_000 () in
  let t =
    Table.create ~title:"swish over 1M fp16 elements, per core version"
      ~header:[ "core"; "cycles"; "time"; "vector busy"; "energy (uJ)" ]
      ()
  in
  List.iter
    (fun config ->
      if Config.supports config Ascend.Arch.Precision.Fp16 then
        match Kernel.simulate config big with
        | Error e -> Format.printf "%s: %s@." config.Config.name e
        | Ok r ->
          Table.add_row t
            [
              config.Config.name;
              string_of_int r.Ascend.Core_sim.Simulator.total_cycles;
              Format.asprintf "%a" Ascend.Util.Units.pp_seconds
                (Ascend.Core_sim.Simulator.seconds config r);
              Printf.sprintf "%.0f%%"
                (100.
                *. Ascend.Core_sim.Simulator.utilization r Ascend.Isa.Pipe.Vector);
              Table.cell_float (r.Ascend.Core_sim.Simulator.energy_j *. 1e6);
            ])
    Config.all;
  Table.print t;

  (* show the generated vector task *)
  let small = Kernel.make ~name:"swish-small" ~expr:swish ~elems:4096 () in
  let p = Kernel.to_program Config.mini small in
  Format.printf "@.generated task for a 4096-element tile (Ascend-Mini):@.%a"
    Ascend.Isa.Program.pp p
