examples/datacenter_training.ml: Ascend Format List Printf
