examples/autonomous_driving.ml: Ascend Format List
