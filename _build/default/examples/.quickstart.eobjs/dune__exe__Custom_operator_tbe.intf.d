examples/custom_operator_tbe.mli:
