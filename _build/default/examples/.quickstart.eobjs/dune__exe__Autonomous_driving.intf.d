examples/autonomous_driving.mli:
