examples/slam_frontend.ml: Array Ascend Format Kmeans List Printf Quaternion Simplex Slam_pipeline Sort Stereo String
