examples/mobile_inference.mli:
