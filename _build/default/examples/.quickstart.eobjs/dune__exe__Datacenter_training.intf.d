examples/datacenter_training.mli:
