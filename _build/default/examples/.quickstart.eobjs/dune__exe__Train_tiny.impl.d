examples/train_tiny.ml: Array Ascend Float Format List
