examples/custom_operator_tbe.ml: Ascend Format List Printf
