examples/train_tiny.mli:
