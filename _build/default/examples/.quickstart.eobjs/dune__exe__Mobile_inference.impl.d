examples/mobile_inference.ml: Ascend Format List Printf
