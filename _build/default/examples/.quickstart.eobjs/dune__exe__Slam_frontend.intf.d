examples/slam_frontend.mli:
