examples/quickstart.ml: Ascend Format List
