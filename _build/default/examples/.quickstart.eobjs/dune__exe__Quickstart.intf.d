examples/quickstart.mli:
