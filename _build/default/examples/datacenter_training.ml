(* Datacenter training on Ascend 910 (paper §3.1, §4.2): ResNet-50
   training on one chip (32 Ascend-Max cores + LLC + HBM + mesh NoC),
   then scaled out over HCCS/PCI-E servers and the fat-tree cluster with
   hierarchical all-reduce — up to the 2048-chip, 512-PFLOPS flagship.

     dune exec examples/datacenter_training.exe *)

module Soc = Ascend.Soc.Training_soc
module Cluster = Ascend.Cluster.Training
module Server = Ascend.Cluster.Server
module Table = Ascend.Util.Table

let () =
  let soc = Soc.ascend910 in
  Format.printf
    "Chip: %s — %d cores, %.0f TFLOPS fp16 peak, compute die ~%.0f mm2@.@."
    soc.Soc.soc_name soc.Soc.cores
    (Soc.peak_flops soc ~precision:Ascend.Arch.Precision.Fp16 /. 1e12)
    (Soc.compute_die_area_mm2 soc);

  (* one-chip training step *)
  let build ~batch = Ascend.Nn.Resnet.v1_5 ~batch () in
  let chip =
    match Soc.run ~training:true soc ~build ~batch:32 with
    | Ok r -> r
    | Error e -> failwith e
  in
  Format.printf "one chip, global batch 32: %a@.@." Soc.pp_result chip;

  (* server-level all-reduce (8 chips, HCCS + PCI-E) *)
  let params = Ascend.Nn.Graph.total_params (build ~batch:1) in
  let grad_bytes = 2. *. float_of_int params in
  Format.printf
    "gradient buffer: %.1f MB; intra-server all-reduce: %.2f ms@.@."
    (grad_bytes /. 1e6)
    (Server.intra_server_allreduce_seconds Server.ascend910_server
       ~bytes:grad_bytes
    *. 1e3);

  (* cluster scaling sweep *)
  let t =
    Table.create ~title:"Data-parallel scaling (ResNet-50, batch 32/chip)"
      ~header:[ "chips"; "servers"; "step (ms)"; "allreduce (ms)";
                "images/s"; "scaling eff." ]
      ()
  in
  let steps =
    List.map
      (fun chips ->
        let cluster = Cluster.cluster_of_chips ~chips in
        let step = Cluster.train_step cluster ~chip_result:chip ~param_bytes:grad_bytes in
        Table.add_row t
          [
            string_of_int chips;
            string_of_int cluster.Cluster.servers;
            Table.cell_float (step.Cluster.step_seconds *. 1e3);
            Table.cell_float (step.Cluster.allreduce_seconds *. 1e3);
            Table.cell_float ~decimals:0 step.Cluster.images_per_second;
            Printf.sprintf "%.0f%%" (100. *. step.Cluster.scaling_efficiency);
          ];
        (chips, cluster, step))
      [ 8; 64; 256; 1024; 2048 ]
  in
  Table.print t;
  Format.printf "@.";

  (* the paper's MLPerf-style claim: ImageNet epochs on 256 chips *)
  (match List.find_opt (fun (c, _, _) -> c = 256) steps with
  | Some (_, cluster, step) ->
    let ttt epochs =
      Cluster.time_to_train_seconds cluster ~step ~samples_per_epoch:1_281_167
        ~epochs
    in
    Format.printf
      "256 chips: one ImageNet epoch in %.1f s; 44-epoch MLPerf-style run in \
       %.0f s (paper: <83 s with their full-stack tuning)@."
      (ttt 1.) (ttt 44.)
  | None -> ());

  let flagship = Cluster.ascend_cluster_2048 in
  Format.printf "@.%s: %.0f PFLOPS fp16 peak@." flagship.Cluster.cluster_name
    (Cluster.peak_fp16_flops flagship /. 1e15)
