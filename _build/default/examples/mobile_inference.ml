(* Mobile AI on the Kirin 990-5G model (paper §3.2): MobileNet-V2 camera
   inference on an Ascend-Lite big core across DVFS points, with the
   structured-sparsity path, and the always-on gesture network inside the
   Ascend-Tiny core's 300 mW envelope.

     dune exec examples/mobile_inference.exe *)

module Mobile = Ascend.Soc.Mobile_soc
module Table = Ascend.Util.Table

let () =
  let soc = Mobile.kirin990 in
  Format.printf "SoC: %s — %.2f peak int8 TOPS, NPU area %.1f mm2@.@."
    soc.Mobile.soc_name (Mobile.peak_tops soc) (Mobile.npu_area_mm2 soc);

  (* camera-pipeline inference across DVFS points *)
  let g = Ascend.Nn.Mobilenet.v2 () in
  let t =
    Table.create ~title:"MobileNetV2 batch-1 on one Ascend-Lite core"
      ~header:[ "DVFS point"; "freq (GHz)"; "latency (ms)"; "power (W)";
                "energy/inf (mJ)"; "TOPS/W" ]
      ()
  in
  List.iter
    (fun (p : Mobile.dvfs_point) ->
      match Mobile.run_big ~point:p.Mobile.point_name soc g with
      | Error e -> Format.printf "%s: %s@." p.Mobile.point_name e
      | Ok r ->
        Table.add_row t
          [
            p.Mobile.point_name;
            Table.cell_float ~decimals:2 p.Mobile.frequency_ghz;
            Table.cell_float (r.Mobile.latency_s *. 1e3);
            Table.cell_float r.Mobile.average_power_w;
            Table.cell_float (r.Mobile.energy_per_inference_j *. 1e3);
            Table.cell_float r.Mobile.tops_per_watt;
          ])
    soc.Mobile.dvfs;
  Table.print t;
  Format.printf "@.";

  (* structured sparsity: the decompression path of §2.2/§3.2 *)
  let t2 =
    Table.create ~title:"Weight sparsity (MTE decompression) at nominal DVFS"
      ~header:[ "weights kept"; "latency (ms)"; "energy/inf (mJ)" ]
      ()
  in
  List.iter
    (fun ratio ->
      let sparsity = if ratio >= 1. then None else Some ratio in
      match Mobile.run_big ?sparsity soc g with
      | Error e -> Format.printf "sparsity %.2f: %s@." ratio e
      | Ok r ->
        Table.add_row t2
          [
            Printf.sprintf "%.0f%%" (100. *. ratio);
            Table.cell_float (r.Mobile.latency_s *. 1e3);
            Table.cell_float (r.Mobile.energy_per_inference_j *. 1e3);
          ])
    [ 1.0; 0.75; 0.5; 0.25 ];
  Table.print t2;
  Format.printf "@.";

  (* the little core: always-on gesture inference *)
  let gesture = Ascend.Nn.Gesture.build () in
  (match Mobile.run_little soc gesture with
  | Error e -> Format.printf "gesture: %s@." e
  | Ok r ->
    Format.printf
      "Always-on gesture net on Ascend-Tiny: %.2f ms/frame at %.0f mW (%s the \
       300 mW envelope)@."
      (r.Mobile.latency_s *. 1e3)
      (r.Mobile.average_power_w *. 1e3)
      (if r.Mobile.average_power_w <= 0.3 then "inside" else "OUTSIDE"));

  (* the §3.2 batch-1 utilisation argument for the 4x16x16 cube *)
  Format.printf
    "@.Batch-1 cube utilisation on an m=4 GEMM fragment: Lite (4x16x16) %.0f%%, \
     Max (16x16x16) %.0f%%@."
    (100. *. Mobile.batch1_cube_utilization Ascend.Arch.Config.lite ~m:4 ~k:256 ~n:256)
    (100. *. Mobile.batch1_cube_utilization Ascend.Arch.Config.max ~m:4 ~k:256 ~n:256)
