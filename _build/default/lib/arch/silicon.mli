(** Analytical area and energy model for the three computing-unit types,
    calibrated against the paper's silicon measurements (Tables 3 and 4).

    Energy model: a unit consuming [macs] MAC operations and fetching
    [bytes] operand bytes from local SRAM per cycle dissipates
    [macs * e_mac + bytes * e_fetch] joules per cycle.  The cube reuses
    each operand 16 times (paper §2.1), so it fetches only the tile
    surfaces (m*k + k*n inputs + m*n outputs) while performing m*k*n MACs
    — this asymmetry is the whole reason the cube wins Table 3 by an
    order of magnitude, and the model encodes exactly that mechanism.

    Calibration (7 nm): solving the two linear equations given by the
    measured vector (256 GFLOPS, 0.46 W) and cube (8 TFLOPS, 3.13 W) rows
    yields e_mac = 0.507 pJ/MAC and e_fetch = 0.514 pJ/byte. *)

type unit_report = {
  unit_name : string;
  perf_flops : float;
  power_w : float option;  (** [None] where the paper reports "/" *)
  area_mm2 : float;
  perf_per_watt : float option;   (** TFLOPS/W *)
  perf_per_area : float;          (** TFLOPS/mm2 *)
}

val e_mac_pj_7nm : float
val e_fetch_pj_per_byte_7nm : float

val scalar_unit : unit_report
val vector_unit : width_bytes:int -> frequency_ghz:float -> unit_report

val cube_unit :
  ?precision:Precision.t -> Config.cube_dims -> frequency_ghz:float -> unit_report
(** [precision] defaults to fp16; int8 MACs cost ~0.35x the fp16 MAC
    energy and the operand surfaces shrink with the element size. *)

val table3 : unit_report list
(** The paper's Table 3 rows: scalar, vector 256 B, cube 16x16x16 at 1 GHz. *)

val vector_power_w : width_bytes:int -> frequency_ghz:float -> float

val cube_power_w :
  ?precision:Precision.t -> Config.cube_dims -> frequency_ghz:float -> float

val cube_energy_per_tile_j : ?precision:Precision.t -> Config.cube_dims -> float
(** Energy of one cube instruction tile (all MACs + surface fetches). *)

val vector_energy_per_byte_j : float
(** Energy per byte processed by the vector unit (lane MAC + fetch). *)

(** {2 Cube dimension trade-off (Table 4, 12 nm)} *)

type cube_design_point = {
  dims : Config.cube_dims;
  quantity : int;
  frequency_ghz : float;
  area_mm2 : float;
  fp16_flops : float;
  gflops_per_mm2 : float;
}

val cube_design_point :
  dims:Config.cube_dims -> quantity:int -> frequency_ghz:float -> cube_design_point
(** Area model at 12 nm: each cube costs
    [macs * a_mac + surface_elements * a_port + a_fixed], where the
    surface term models the operand registers / distribution network that
    dominate small cubes (the SIMT tensor-core overhead of the paper's
    4x4x4 comparison point). *)

val table4 : cube_design_point list
(** The paper's two design points: 8x (4x4x4) at 1.66 GHz (V100-class SM)
    and 1x (16x16x16) at 0.98 GHz. *)

val core_area_mm2 : Config.t -> float
(** Whole-core 7 nm area: computing units + SRAM macro area for the
    paper-listed buffers (used by the SoC-level PPA tables). *)

val sram_mm2_per_mib_7nm : float

val core_power_w :
  Config.t -> cube_utilization:float -> vector_utilization:float -> float
(** Dynamic power of one core given average utilisation of each unit,
    plus a 10% leakage/clocking floor of the peak. *)
