lib/arch/precision.mli: Format
