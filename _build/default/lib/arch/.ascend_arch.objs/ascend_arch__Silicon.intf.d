lib/arch/silicon.mli: Config Precision
