lib/arch/config.mli: Format Precision
