lib/arch/config.ml: Ascend_util Format List Precision Printf Stdlib
