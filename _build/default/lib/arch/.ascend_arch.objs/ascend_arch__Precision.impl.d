lib/arch/precision.ml: Format Stdlib
