lib/arch/silicon.ml: Ascend_util Config Precision Printf
