(** Numeric precisions supported by the Ascend datapath (paper §2.1, §3.3).

    The cube consumes fp16 (extensible to int8 / int4 on inference parts)
    and accumulates in fp32; the vector unit handles precision conversion
    (quantise / dequantise among int32, fp16, int8). *)

type t = Fp32 | Fp16 | Int32 | Int8 | Int4

val size_bytes : t -> float
(** Storage size in bytes; [Int4] is 0.5. *)

val size_bits : t -> int

val name : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int

val all : t list

val is_integer : t -> bool
val is_float : t -> bool

val accumulator : t -> t
(** The accumulation precision the cube uses for a given source precision:
    fp16 -> fp32, int8/int4 -> int32 (paper §2.1 and Table 4 note). *)

val macs_multiplier : t -> int
(** Relative MAC throughput versus fp16 on the same cube datapath:
    fp16 = 1, int8 = 2 (16x32x16 extension, paper §2.1), int4 = 4
    (§3.3), fp32 = 0 (not supported by the cube; vector-assisted). *)
