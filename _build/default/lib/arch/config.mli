(** Ascend core design points (paper Table 5).

    One normalized architecture, five configurations.  Buffer capacities
    are not disclosed in the paper; we use the publicly documented
    DaVinci-generation values for the large cores and scale them for Lite
    and Tiny (see DESIGN.md substitution table). *)

type version = Tiny | Lite | Mini | Standard | Max

type cube_dims = { m : int; k : int; n : int }
(** The matrix tile one cube instruction consumes per cycle, as an
    m*k by k*n product (fp16 sources).  16x16x16 for the large cores,
    4x16x16 for Lite (batch-1 utilisation, paper §3.2), 4x32x4 for Tiny. *)

type buffers = {
  l0a_bytes : int;  (** input feature-map tile buffer, feeds cube side A *)
  l0b_bytes : int;  (** weight tile buffer, feeds cube side B *)
  l0c_bytes : int;  (** accumulator / output tile buffer *)
  l1_bytes : int;   (** per-core staging buffer loaded via the BIU *)
  ub_bytes : int;   (** unified buffer: cube-vector pipeline + vector + output *)
}

type bandwidth = {
  l1_to_l0a : int;  (** bytes/cycle, asymmetric vs l0b (paper §2.5) *)
  l1_to_l0b : int;  (** bytes/cycle *)
  ub_port : int;    (** bytes/cycle on the unified-buffer port *)
  llc_gb_s : float option;
      (** LLC bandwidth per core in GB/s (Table 5 last column); [None] for
          Tiny, which has no LLC behind it. *)
}

type t = {
  version : version;
  name : string;
  frequency_ghz : float;
  cube : cube_dims;
  native_precision : Precision.t;
  supported_precisions : Precision.t list;
  vector_width_bytes : int;
  buffers : buffers;
  bandwidth : bandwidth;
  scalar_flops_per_cycle : int;
  duplex_ub_vector : bool;
      (** duplex datapath between unified buffer and vector unit, needed for
          training backward passes (paper §3.1). *)
}

val tiny : t
val lite : t
val mini : t
val standard : t
val max : t

val hpc_prototype : t
(** The §7.2 future-work design point: a Max core whose cube also
    accepts fp32 sources at half rate (16x8x16 effective tile) — used by
    the HPC ablation bench, not part of {!all}. *)

(** The five shipped design points (Table 5). *)
val all : t list
val of_version : version -> t
val version_name : version -> string

val cube_macs : t -> int
(** m*k*n at native precision. *)

val flops_per_cycle : t -> precision:Precision.t -> int
(** MAC throughput x2 per cycle at the given precision; 0 if the precision
    is not supported by the cube of this version. *)

val peak_flops : t -> precision:Precision.t -> float
(** flops_per_cycle x frequency. *)

val vector_lanes : t -> precision:Precision.t -> int
(** Elements the vector unit processes per cycle. *)

val vector_peak_flops : t -> precision:Precision.t -> float

val supports : t -> Precision.t -> bool

val cube_dims_at : t -> precision:Precision.t -> cube_dims
(** The effective cube tile at a precision: the int8 datapath doubles the
    k dimension of an fp16-native cube (16x16x16 -> 16x32x16, §2.1) and
    int4 quadruples it.  Raises [Invalid_argument] if unsupported. *)

val cube_tile_cycles : t -> ?precision:Precision.t -> m:int -> k:int -> n:int -> unit -> int
(** Cycles for one cube instruction over an m x k x n GEMM tile:
    ceil(m/Cm) * ceil(k/Ck) * ceil(n/Cn) at the effective cube dims
    (default native precision). *)

val llc_bytes_per_cycle : t -> float
(** Per-core LLC bandwidth expressed in bytes/cycle; 0 when absent. *)

val pp : Format.formatter -> t -> unit
