type unit_report = {
  unit_name : string;
  perf_flops : float;
  power_w : float option;
  area_mm2 : float;
  perf_per_watt : float option;
  perf_per_area : float;
}

let giga = Ascend_util.Units.giga
let tera = Ascend_util.Units.tera

(* 7 nm energy constants, solved from the measured vector and cube rows of
   Table 3 (see the interface documentation for the derivation). *)
let e_mac_pj_7nm = 0.50695
let e_fetch_pj_per_byte_7nm = 0.51447

(* 7 nm area constants calibrated to Table 3's area column. *)
let a_scalar_mm2 = 0.04
let a_vector_lane_mm2 = 0.005
let a_vector_fixed_mm2 = 0.06
let a_cube_mac_mm2 = 0.0006
let a_cube_fixed_mm2 = 0.1124
let sram_mm2_per_mib_7nm = 0.45

let int8_mac_energy_scale = 0.35

let pj = 1e-12

let report ~unit_name ~perf_flops ~power_w ~area_mm2 =
  {
    unit_name;
    perf_flops;
    power_w;
    area_mm2;
    perf_per_watt =
      (match power_w with Some w when w > 0. -> Some (perf_flops /. tera /. w) | _ -> None);
    perf_per_area = perf_flops /. tera /. area_mm2;
  }

let scalar_unit =
  report ~unit_name:"Scalar" ~perf_flops:(2. *. giga) ~power_w:None
    ~area_mm2:a_scalar_mm2

let vector_lanes ~width_bytes = width_bytes / 2 (* fp16 lanes *)

let vector_power_w ~width_bytes ~frequency_ghz =
  let lanes = float_of_int (vector_lanes ~width_bytes) in
  (* per cycle: one MAC per lane plus two source reads and one destination
     write of [width_bytes] each *)
  let pj_per_cycle =
    (lanes *. e_mac_pj_7nm) +. (3. *. float_of_int width_bytes *. e_fetch_pj_per_byte_7nm)
  in
  pj_per_cycle *. pj *. frequency_ghz *. giga

let vector_unit ~width_bytes ~frequency_ghz =
  let lanes = vector_lanes ~width_bytes in
  report
    ~unit_name:(Printf.sprintf "Vector %dB" width_bytes)
    ~perf_flops:(float_of_int (2 * lanes) *. frequency_ghz *. giga)
    ~power_w:(Some (vector_power_w ~width_bytes ~frequency_ghz))
    ~area_mm2:(a_vector_fixed_mm2 +. (float_of_int lanes *. a_vector_lane_mm2))

let cube_surface_bytes ?(precision = Precision.Fp16) (d : Config.cube_dims) =
  let src = Precision.size_bytes precision in
  let acc = Precision.size_bytes (Precision.accumulator precision) in
  (float_of_int (d.m * d.k) *. src)
  +. (float_of_int (d.k * d.n) *. src)
  +. (float_of_int (d.m * d.n) *. acc)

let cube_mac_energy_pj ~precision =
  match precision with
  | Precision.Int8 | Precision.Int4 -> e_mac_pj_7nm *. int8_mac_energy_scale
  | Precision.Fp32 -> 2. *. e_mac_pj_7nm
  | Precision.Fp16 | Precision.Int32 -> e_mac_pj_7nm

let cube_energy_per_cycle_pj ?(precision = Precision.Fp16) (d : Config.cube_dims) =
  let macs = float_of_int (d.m * d.k * d.n) in
  (macs *. cube_mac_energy_pj ~precision)
  +. (cube_surface_bytes ~precision d *. e_fetch_pj_per_byte_7nm)

let cube_power_w ?(precision = Precision.Fp16) dims ~frequency_ghz =
  cube_energy_per_cycle_pj ~precision dims *. pj *. frequency_ghz *. giga

let cube_energy_per_tile_j ?(precision = Precision.Fp16) dims =
  cube_energy_per_cycle_pj ~precision dims *. pj

(* one fp16 lane processes 2 bytes per cycle: MAC energy amortised over the
   element plus three operand-buffer touches per element *)
let vector_energy_per_byte_j =
  ((e_mac_pj_7nm /. 2.) +. (3. *. e_fetch_pj_per_byte_7nm)) *. pj

let cube_area_mm2 (d : Config.cube_dims) =
  a_cube_fixed_mm2 +. (float_of_int (d.m * d.k * d.n) *. a_cube_mac_mm2)

let cube_unit ?(precision = Precision.Fp16) (d : Config.cube_dims) ~frequency_ghz =
  let macs = d.m * d.k * d.n in
  report
    ~unit_name:(Printf.sprintf "Cube %dx%dx%d" d.m d.k d.n)
    ~perf_flops:(float_of_int (2 * macs) *. frequency_ghz *. giga)
    ~power_w:(Some (cube_power_w ~precision d ~frequency_ghz))
    ~area_mm2:(cube_area_mm2 d)

let table3 =
  [
    scalar_unit;
    vector_unit ~width_bytes:256 ~frequency_ghz:1.0;
    cube_unit { m = 16; k = 16; n = 16 } ~frequency_ghz:1.0;
  ]

(* ------------------------------------------------------------------ *)
(* Table 4: cube dimension trade-off at 12 nm.                        *)

type cube_design_point = {
  dims : Config.cube_dims;
  quantity : int;
  frequency_ghz : float;
  area_mm2 : float;
  fp16_flops : float;
  gflops_per_mm2 : float;
}

(* 12 nm area constants, solved from the paper's two measured points
   (8x 4x4x4 = 5.2 mm2; 1x 16x16x16 = 13.2 mm2) with a 0.3 mm2 per-cube
   control overhead. *)
let a12_mac_mm2 = 2.376e-3
let a12_surface_mm2 = 4.125e-3
let a12_fixed_mm2 = 0.3

let cube_design_point ~(dims : Config.cube_dims) ~quantity ~frequency_ghz =
  let macs = dims.m * dims.k * dims.n in
  let surface = (dims.m * dims.k) + (dims.k * dims.n) + (dims.m * dims.n) in
  let area_one =
    (float_of_int macs *. a12_mac_mm2)
    +. (float_of_int surface *. a12_surface_mm2)
    +. a12_fixed_mm2
  in
  let area_mm2 = float_of_int quantity *. area_one in
  let fp16_flops =
    float_of_int (2 * macs * quantity) *. frequency_ghz *. giga
  in
  { dims; quantity; frequency_ghz; area_mm2; fp16_flops;
    gflops_per_mm2 = fp16_flops /. giga /. area_mm2 }

let table4 =
  [
    (* V100-class SM: 8 tensor cores of 4x4x4 at boost clock *)
    cube_design_point ~dims:{ m = 4; k = 4; n = 4 } ~quantity:8 ~frequency_ghz:1.66;
    cube_design_point ~dims:{ m = 16; k = 16; n = 16 } ~quantity:1
      ~frequency_ghz:0.9766;
  ]

(* ------------------------------------------------------------------ *)

let core_area_mm2 (c : Config.t) =
  let b = c.buffers in
  let sram_bytes = b.l0a_bytes + b.l0b_bytes + b.l0c_bytes + b.l1_bytes + b.ub_bytes in
  let sram_mib = float_of_int sram_bytes /. float_of_int Ascend_util.Units.mib in
  let units =
    a_scalar_mm2
    +. (vector_unit ~width_bytes:c.vector_width_bytes ~frequency_ghz:c.frequency_ghz)
         .area_mm2
    +. cube_area_mm2 c.cube
  in
  (* 15% wiring / MTE / control overhead on top of units and SRAM macros *)
  1.15 *. (units +. (sram_mib *. sram_mm2_per_mib_7nm))

let core_power_w (c : Config.t) ~cube_utilization ~vector_utilization =
  let cube_peak =
    cube_power_w ~precision:c.native_precision c.cube ~frequency_ghz:c.frequency_ghz
  in
  let vector_peak =
    vector_power_w ~width_bytes:c.vector_width_bytes ~frequency_ghz:c.frequency_ghz
  in
  let scalar = 0.02 in
  let clamp u = Ascend_util.Stats.clamp ~lo:0. ~hi:1. u in
  (cube_peak *. clamp cube_utilization)
  +. (vector_peak *. clamp vector_utilization)
  +. scalar
  +. (0.1 *. (cube_peak +. vector_peak))
