type t = Fp32 | Fp16 | Int32 | Int8 | Int4

let size_bytes = function
  | Fp32 | Int32 -> 4.
  | Fp16 -> 2.
  | Int8 -> 1.
  | Int4 -> 0.5

let size_bits = function
  | Fp32 | Int32 -> 32
  | Fp16 -> 16
  | Int8 -> 8
  | Int4 -> 4

let name = function
  | Fp32 -> "fp32"
  | Fp16 -> "fp16"
  | Int32 -> "int32"
  | Int8 -> "int8"
  | Int4 -> "int4"

let pp ppf t = Format.pp_print_string ppf (name t)

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let all = [ Fp32; Fp16; Int32; Int8; Int4 ]

let is_integer = function Int32 | Int8 | Int4 -> true | Fp32 | Fp16 -> false
let is_float t = not (is_integer t)

let accumulator = function
  | Fp16 -> Fp32
  | Fp32 -> Fp32
  | Int8 | Int4 | Int32 -> Int32

let macs_multiplier = function
  | Fp16 -> 1
  | Int8 -> 2
  | Int4 -> 4
  | Fp32 | Int32 -> 0
