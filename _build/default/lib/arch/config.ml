type version = Tiny | Lite | Mini | Standard | Max

type cube_dims = { m : int; k : int; n : int }

type buffers = {
  l0a_bytes : int;
  l0b_bytes : int;
  l0c_bytes : int;
  l1_bytes : int;
  ub_bytes : int;
}

type bandwidth = {
  l1_to_l0a : int;
  l1_to_l0b : int;
  ub_port : int;
  llc_gb_s : float option;
}

type t = {
  version : version;
  name : string;
  frequency_ghz : float;
  cube : cube_dims;
  native_precision : Precision.t;
  supported_precisions : Precision.t list;
  vector_width_bytes : int;
  buffers : buffers;
  bandwidth : bandwidth;
  scalar_flops_per_cycle : int;
  duplex_ub_vector : bool;
}

let kib = Ascend_util.Units.kib

(* The three large cores share the 16x16x16 cube and 256 B vector
   (Table 5); they differ in LLC bandwidth per core (910/610/310 rows)
   and in the duplex UB-vector path reserved for the training part. *)
let large ~version ~name ~llc_gb_s ~duplex ~precisions =
  {
    version;
    name;
    frequency_ghz = 1.0;
    cube = { m = 16; k = 16; n = 16 };
    native_precision = Precision.Fp16;
    supported_precisions = precisions;
    vector_width_bytes = 256;
    buffers =
      {
        l0a_bytes = 64 * kib;
        l0b_bytes = 64 * kib;
        l0c_bytes = 256 * kib;
        l1_bytes = 1024 * kib;
        ub_bytes = 256 * kib;
      };
    bandwidth =
      (* A: 4 TB/s, B: 2 TB/s, UB: 2 TB/s at 1 GHz (Table 5) *)
      { l1_to_l0a = 4096; l1_to_l0b = 2048; ub_port = 2048; llc_gb_s = Some llc_gb_s };
    scalar_flops_per_cycle = 2;
    duplex_ub_vector = duplex;
  }

let max =
  large ~version:Max ~name:"Ascend-Max" ~llc_gb_s:94. ~duplex:true
    ~precisions:[ Precision.Fp16; Precision.Int8 ]

let standard =
  (* the automotive part adds int4 (paper §3.3) *)
  large ~version:Standard ~name:"Ascend" ~llc_gb_s:111. ~duplex:false
    ~precisions:[ Precision.Fp16; Precision.Int8; Precision.Int4 ]

let mini =
  large ~version:Mini ~name:"Ascend-Mini" ~llc_gb_s:96. ~duplex:false
    ~precisions:[ Precision.Fp16; Precision.Int8 ]

let lite =
  {
    version = Lite;
    name = "Ascend-Lite";
    frequency_ghz = 0.75;
    (* 4x16x16: the small m dimension keeps MAC utilisation high at
       batch size 1 (paper §3.2) *)
    cube = { m = 4; k = 16; n = 16 };
    native_precision = Precision.Fp16;
    supported_precisions = [ Precision.Fp16; Precision.Int8 ];
    vector_width_bytes = 128;
    buffers =
      {
        l0a_bytes = 32 * kib;
        l0b_bytes = 32 * kib;
        l0c_bytes = 128 * kib;
        l1_bytes = 512 * kib;
        ub_bytes = 128 * kib;
      };
    bandwidth =
      (* 768 GB/s on each port at 0.75 GHz = 1024 B/cycle (Table 5) *)
      { l1_to_l0a = 1024; l1_to_l0b = 1024; ub_port = 1024; llc_gb_s = Some 38.4 };
    scalar_flops_per_cycle = 2;
    duplex_ub_vector = false;
  }

let tiny =
  {
    version = Tiny;
    name = "Ascend-Tiny";
    frequency_ghz = 0.75;
    (* 4x32x4 int8 only; fp16 forbidden for the 300 mW power envelope
       (paper §3.2) *)
    cube = { m = 4; k = 32; n = 4 };
    native_precision = Precision.Int8;
    supported_precisions = [ Precision.Int8 ];
    vector_width_bytes = 32;
    buffers =
      {
        l0a_bytes = 16 * kib;
        l0b_bytes = 16 * kib;
        l0c_bytes = 32 * kib;
        l1_bytes = 128 * kib;
        ub_bytes = 64 * kib;
      };
    bandwidth =
      (* A/B: 384 GB/s, UB: 192 GB/s at 0.75 GHz (Table 5) *)
      { l1_to_l0a = 512; l1_to_l0b = 512; ub_port = 256; llc_gb_s = None };
    scalar_flops_per_cycle = 2;
    duplex_ub_vector = false;
  }

(* §7.2 future work: "we would like to apply fp32 in the cube unit to
   adapt to some corner [HPC] applications" — a Max-derived prototype
   whose cube also accepts fp32 sources at half rate *)
let hpc_prototype =
  {
    max with
    name = "Ascend-HPC (prototype)";
    supported_precisions = [ Precision.Fp32; Precision.Fp16; Precision.Int8 ];
  }

let all = [ tiny; lite; mini; standard; max ]

let of_version = function
  | Tiny -> tiny
  | Lite -> lite
  | Mini -> mini
  | Standard -> standard
  | Max -> max

let version_name = function
  | Tiny -> "Ascend-Tiny"
  | Lite -> "Ascend-Lite"
  | Mini -> "Ascend-Mini"
  | Standard -> "Ascend"
  | Max -> "Ascend-Max"

let cube_macs t = t.cube.m * t.cube.k * t.cube.n

let supports t precision =
  List.exists (Precision.equal precision) t.supported_precisions

let flops_per_cycle t ~precision =
  if not (supports t precision) then 0
  else
    (* the int8 datapath doubles and int4 quadruples MAC count relative to
       the native fp16 cube; fp32 (the §7.2 HPC extension) runs at half
       rate; for Tiny the cube is natively int8 *)
    let base = cube_macs t * 2 in
    match (t.native_precision, precision) with
    | Precision.Fp16, Precision.Fp32 -> base / 2
    | Precision.Fp16, p -> base * Precision.macs_multiplier p
    | Precision.Int8, Precision.Int8 -> base
    | Precision.Int8, p -> base * Precision.macs_multiplier p / 2
    | _, _ -> base

let peak_flops t ~precision =
  float_of_int (flops_per_cycle t ~precision) *. t.frequency_ghz *. Ascend_util.Units.giga

let vector_lanes t ~precision =
  int_of_float (float_of_int t.vector_width_bytes /. Precision.size_bytes precision)

let vector_peak_flops t ~precision =
  float_of_int (2 * vector_lanes t ~precision)
  *. t.frequency_ghz *. Ascend_util.Units.giga

let cube_dims_at t ~precision =
  if not (supports t precision) then
    invalid_arg
      (Printf.sprintf "Config.cube_dims_at: %s unsupported on %s"
         (Precision.name precision) t.name);
  match (t.native_precision, precision) with
  | Precision.Fp16, Precision.Fp32 ->
    (* half-rate fp32: the k dimension halves (16x8x16) *)
    { t.cube with k = Stdlib.max 1 (t.cube.k / 2) }
  | native, p ->
    let scale =
      match (native, p) with
      | Precision.Fp16, p -> Precision.macs_multiplier p
      | Precision.Int8, Precision.Int8 -> 1
      | Precision.Int8, p -> Stdlib.max 1 (Precision.macs_multiplier p / 2)
      | _, _ -> 1
    in
    { t.cube with k = t.cube.k * scale }

let cube_tile_cycles t ?precision ~m ~k ~n () =
  let precision =
    match precision with Some p -> p | None -> t.native_precision
  in
  let dims = cube_dims_at t ~precision in
  let div = Ascend_util.Stats.divide_round_up in
  div m dims.m * div k dims.k * div n dims.n

let llc_bytes_per_cycle t =
  match t.bandwidth.llc_gb_s with
  | None -> 0.
  | Some gbps ->
    Ascend_util.Units.bytes_per_cycle_of_gbps ~bandwidth_gb_s:gbps
      ~frequency_ghz:t.frequency_ghz

let pp ppf t =
  Format.fprintf ppf
    "%s: %.2f GHz, cube %dx%dx%d (%d MACs, %d %s-FLOPS/cycle), vector %d B, \
     L1 %d KiB, UB %d KiB"
    t.name t.frequency_ghz t.cube.m t.cube.k t.cube.n (cube_macs t)
    (flops_per_cycle t ~precision:t.native_precision)
    (Precision.name t.native_precision)
    t.vector_width_bytes
    (t.buffers.l1_bytes / kib)
    (t.buffers.ub_bytes / kib)
