(** The SLAM task mix of paper §3.3 ("localization and map construction")
    composed from the Vector Core primitives, with a per-frame cycle
    budget check on the cube-less Vector Core configuration. *)

val vector_core_config : Ascend_arch.Config.t
(** "Ascend core without cube": the Standard core with its cube removed
    (1x1x1 placeholder so no cube work can be scheduled) — all compute
    lands on the 256 B vector unit. *)

type frame_profile = {
  stereo_cycles : int;
  feature_sort_cycles : int;
  pose_update_cycles : int;
  clustering_cycles : int;
  lp_check_cycles : int;
  total_cycles : int;
  frame_seconds : float;
  sustainable_fps : float;
}

val profile_frame :
  ?config:Ascend_arch.Config.t ->
  width:int -> height:int -> features:int -> landmarks:int -> unit ->
  frame_profile
(** One SLAM frame: stereo disparity on a [width x height] pair
    (window 5, 16 disparities), top-256 feature selection from
    [features] responses, 64 batched quaternion pose compositions,
    one k-means iteration over [landmarks] 3-D landmarks (k = 32), and
    an 8-constraint / 6-variable LP feasibility check (3 pivots). *)

val pp : Format.formatter -> frame_profile -> unit
