type result = {
  centroids : float array array;
  assignment : int array;
  iterations : int;
  inertia : float;
}

let sq_dist a b =
  let acc = ref 0. in
  Array.iteri (fun i v -> let d = v -. b.(i) in acc := !acc +. (d *. d)) a;
  !acc

let nearest centroids p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = sq_dist p c in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    centroids;
  (!best, !best_d)

let fit ?(max_iterations = 100) ?(seed = 1) ~points ~k () =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.fit: no points";
  let dim = Array.length points.(0) in
  Array.iter
    (fun p ->
      if Array.length p <> dim then
        invalid_arg "Kmeans.fit: inconsistent dimensions")
    points;
  if k < 1 || k > n then invalid_arg "Kmeans.fit: k out of range";
  let rng = Ascend_util.Prng.create ~seed in
  (* farthest-point initialisation (deterministic k-means++ flavour):
     a random first centre, then repeatedly the point farthest from the
     chosen set — robust against two seeds landing in one cluster *)
  let first = Ascend_util.Prng.int rng ~bound:n in
  let chosen = ref [ points.(first) ] in
  for _ = 2 to k do
    let far = ref 0 and far_d = ref neg_infinity in
    Array.iteri
      (fun i p ->
        let d =
          List.fold_left (fun acc c -> Float.min acc (sq_dist p c)) infinity
            !chosen
        in
        if d > !far_d then begin
          far_d := d;
          far := i
        end)
      points;
    chosen := points.(!far) :: !chosen
  done;
  let centroids = Array.of_list (List.map Array.copy !chosen) in
  let assignment = Array.make n (-1) in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_iterations do
    incr iterations;
    changed := false;
    (* assignment step *)
    Array.iteri
      (fun i p ->
        let c, _ = nearest centroids p in
        if assignment.(i) <> c then begin
          assignment.(i) <- c;
          changed := true
        end)
      points;
    (* update step *)
    let sums = Array.init k (fun _ -> Array.make dim 0.) in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i p ->
        let c = assignment.(i) in
        counts.(c) <- counts.(c) + 1;
        Array.iteri (fun j v -> sums.(c).(j) <- sums.(c).(j) +. v) p)
      points;
    Array.iteri
      (fun c count ->
        if count > 0 then
          centroids.(c) <-
            Array.map (fun s -> s /. float_of_int count) sums.(c)
        else begin
          (* re-seed an empty cluster from the farthest point *)
          let far = ref 0 and far_d = ref neg_infinity in
          Array.iteri
            (fun i p ->
              let _, d = nearest centroids p in
              if d > !far_d then begin
                far_d := d;
                far := i
              end)
            points;
          centroids.(c) <- Array.copy points.(!far);
          changed := true
        end)
      counts
  done;
  let inertia =
    Array.fold_left
      (fun acc p ->
        let _, d = nearest centroids p in
        acc +. d)
      0. points
  in
  { centroids; assignment; iterations = !iterations; inertia }

let inertia ~points r =
  Array.fold_left
    (fun acc p ->
      let _, d = nearest r.centroids p in
      acc +. d)
    0. points

let iteration_cycles (config : Ascend_arch.Config.t) ~points ~k ~dim =
  if points < 0 || k < 0 || dim < 0 then
    invalid_arg "Kmeans.iteration_cycles: negative size";
  let lanes = config.vector_width_bytes / 2 in
  let assign = 3 * points * k * dim in
  let update = points * dim in
  Ascend_util.Stats.divide_round_up (assign + update) lanes
  + Ascend_core_sim.Latency.vector_issue_overhead
