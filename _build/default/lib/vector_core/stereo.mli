(** Stereo vision on the Vector Core (paper §3.3): block-matching
    disparity estimation — the localisation front end of the SLAM stack.

    Reference implementation: sum-of-absolute-differences over a square
    window, winner-take-all over the disparity range, computed per pixel
    of the left image.  The cycle model charges the same arithmetic to
    the vector lanes. *)

type image = { width : int; height : int; pixels : float array }

val image_of_fn : width:int -> height:int -> (x:int -> y:int -> float) -> image

val shift_scene : image -> disparity:int -> image
(** Synthetic right view: the scene shifted left by [disparity] pixels
    (edge pixels clamp) — ground truth for tests. *)

val disparity_map :
  ?window:int -> ?max_disparity:int -> left:image -> right:image -> unit ->
  int array
(** Per-pixel disparity (row-major, same size as the inputs); window
    default 5 (odd, >= 1), max_disparity default 16.  Raises
    [Invalid_argument] on size mismatch or bad parameters. *)

val sad_ops : width:int -> height:int -> window:int -> max_disparity:int -> int
(** Element operations the computation performs (3 per pixel-window-tap:
    diff, abs, accumulate). *)

val disparity_cycles :
  Ascend_arch.Config.t -> width:int -> height:int -> window:int ->
  max_disparity:int -> int
(** Vector-unit cycles at the core's fp16 lane width. *)
