(** Linear programming on the Vector Core (paper §3.3 lists "linear
    programming specified instructions" among the SLAM-era extensions —
    e.g. for trajectory feasibility checks).

    A dense-tableau primal simplex for problems in standard form:

      maximise    c . x
      subject to  A x <= b,  x >= 0,  b >= 0

    Bland's rule (smallest index) guarantees termination. *)

type solution =
  | Optimal of { objective : float; x : float array }
  | Unbounded

val solve :
  c:float array -> a:float array array -> b:float array ->
  (solution, string) result
(** [Error] on dimension mismatch or a negative entry of [b] (the
    all-slack basis must be feasible). *)

val tableau_cycles :
  Ascend_arch.Config.t -> constraints:int -> variables:int -> pivots:int -> int
(** Each pivot is a full tableau sweep on the vector lanes. *)
