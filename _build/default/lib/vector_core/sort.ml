let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

let bitonic_passes n =
  let k = ceil_log2 n in
  k * (k + 1) / 2

(* classic bitonic network over a physically padded power-of-two array;
   the +inf padding sorts to the tail, so the first n slots come back
   sorted.  (Virtual padding is NOT sound: descending sub-sequences of
   the network would need to move the padding.) *)
let bitonic_sort a =
  let n = Array.length a in
  if n > 1 then begin
    let size = 1 lsl ceil_log2 n in
    let buf = Array.make size infinity in
    Array.blit a 0 buf 0 n;
    let compare_exchange i j up =
      let x = buf.(i) and y = buf.(j) in
      if (up && x > y) || ((not up) && x < y) then begin
        buf.(i) <- y;
        buf.(j) <- x
      end
    in
    let k = ref 2 in
    while !k <= size do
      let j = ref (!k / 2) in
      while !j > 0 do
        for i = 0 to size - 1 do
          let partner = i lxor !j in
          if partner > i then begin
            let up = i land !k = 0 in
            compare_exchange i partner up
          end
        done;
        j := !j / 2
      done;
      k := !k * 2
    done;
    Array.blit buf 0 a 0 n
  end

let sort_cycles (config : Ascend_arch.Config.t) ~n =
  if n < 0 then invalid_arg "Sort.sort_cycles: negative n";
  let lanes = config.vector_width_bytes / 2 in
  let per_pass = Ascend_util.Stats.divide_round_up (max 1 n) lanes in
  (bitonic_passes n * per_pass) + Ascend_core_sim.Latency.vector_issue_overhead

let top_k a ~k =
  if k < 0 then invalid_arg "Sort.top_k: negative k";
  let sorted = Array.copy a in
  Array.sort (fun x y -> compare y x) sorted;
  Array.sub sorted 0 (min k (Array.length sorted))

let top_k_cycles (config : Ascend_arch.Config.t) ~n ~k =
  if n < 0 || k < 0 then invalid_arg "Sort.top_k_cycles: negative size";
  let lanes = config.vector_width_bytes / 2 in
  let sweep = Ascend_util.Stats.divide_round_up (max 1 n) lanes in
  let heap = k * max 1 (ceil_log2 (max 2 k)) in
  sweep + heap + Ascend_core_sim.Latency.vector_issue_overhead
