lib/vector_core/simplex.mli: Ascend_arch
