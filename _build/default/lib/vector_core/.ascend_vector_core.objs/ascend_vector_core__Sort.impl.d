lib/vector_core/sort.ml: Array Ascend_arch Ascend_core_sim Ascend_util
