lib/vector_core/stereo.ml: Array Ascend_arch Ascend_core_sim Ascend_util Float
