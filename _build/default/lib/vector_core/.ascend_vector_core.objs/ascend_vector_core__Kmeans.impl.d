lib/vector_core/kmeans.ml: Array Ascend_arch Ascend_core_sim Ascend_util Float List
