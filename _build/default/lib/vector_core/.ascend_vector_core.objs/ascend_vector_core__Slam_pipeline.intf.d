lib/vector_core/slam_pipeline.mli: Ascend_arch Format
