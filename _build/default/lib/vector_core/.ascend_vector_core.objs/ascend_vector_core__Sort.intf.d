lib/vector_core/sort.mli: Ascend_arch
