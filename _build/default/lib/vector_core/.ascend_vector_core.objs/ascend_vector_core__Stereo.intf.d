lib/vector_core/stereo.mli: Ascend_arch
