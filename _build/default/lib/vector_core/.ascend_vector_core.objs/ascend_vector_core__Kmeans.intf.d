lib/vector_core/kmeans.mli: Ascend_arch
