lib/vector_core/slam_pipeline.ml: Ascend_arch Ascend_util Format Kmeans Quaternion Simplex Sort Stereo
