lib/vector_core/quaternion.ml: Ascend_arch Ascend_core_sim Ascend_util Float
