lib/vector_core/quaternion.mli: Ascend_arch
