lib/vector_core/simplex.ml: Array Ascend_arch Ascend_core_sim Ascend_util Float
