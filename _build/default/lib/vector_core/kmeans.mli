(** Clustering on the Vector Core (paper §3.3) — Lloyd's k-means over
    low-dimensional point sets (map-construction landmark grouping). *)

type result = {
  centroids : float array array;   (** k x dim *)
  assignment : int array;          (** per point *)
  iterations : int;
  inertia : float;                 (** sum of squared distances *)
}

val fit :
  ?max_iterations:int -> ?seed:int -> points:float array array -> k:int ->
  unit -> result
(** Raises [Invalid_argument] on an empty point set, inconsistent
    dimensions, or k outside [1, #points].  Initialisation: distinct
    random points (deterministic in [seed]); iterates to assignment
    fixpoint or [max_iterations] (default 100).  Empty clusters re-seed
    from the farthest point. *)

val inertia : points:float array array -> result -> float

val iteration_cycles :
  Ascend_arch.Config.t -> points:int -> k:int -> dim:int -> int
(** One Lloyd iteration on the vector lanes: 3 element-ops per
    point-centroid-dimension (diff, square, accumulate) plus the
    centroid update sweep. *)
