(** Quaternion algebra — the "general matrix calculation (quaternion)"
    micro-architecture extension of the automotive Vector Core
    (paper §3.3), used by SLAM pose arithmetic.

    Pure reference implementation plus a vector-unit cycle-cost model for
    batched operation. *)

type t = { w : float; x : float; y : float; z : float }

val identity : t
val make : w:float -> x:float -> y:float -> z:float -> t

val of_axis_angle : axis:float * float * float -> angle:float -> t
(** Unit rotation quaternion; the axis is normalised internally.  Raises
    [Invalid_argument] on a zero axis. *)

val mul : t -> t -> t
(** Hamilton product. *)

val conjugate : t -> t
val norm : t -> float
val normalize : t -> t
(** Raises [Invalid_argument] on the zero quaternion. *)

val rotate : t -> float * float * float -> float * float * float
(** Rotate a 3-vector by a unit quaternion: q v q-conjugate. *)

val slerp : t -> t -> float -> t
(** Spherical linear interpolation, [t] in [0,1]; takes the short arc. *)

val to_rotation_matrix : t -> float array array
(** 3x3 row-major rotation matrix of a unit quaternion. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Up to sign (q and -q encode the same rotation). *)

val batched_mul_cycles : Ascend_arch.Config.t -> count:int -> int
(** Vector-unit cycles for [count] Hamilton products: 16 multiplies and
    12 adds per product, at the core's fp16 lane width, plus operand
    streaming through the unified buffer. *)
