type image = { width : int; height : int; pixels : float array }

let image_of_fn ~width ~height f =
  if width <= 0 || height <= 0 then invalid_arg "Stereo: empty image";
  {
    width;
    height;
    pixels =
      Array.init (width * height) (fun i -> f ~x:(i mod width) ~y:(i / width));
  }

let get img ~x ~y =
  let x = max 0 (min (img.width - 1) x) in
  let y = max 0 (min (img.height - 1) y) in
  img.pixels.((y * img.width) + x)

let shift_scene img ~disparity =
  image_of_fn ~width:img.width ~height:img.height (fun ~x ~y ->
      get img ~x:(x + disparity) ~y)

let sad ~left ~right ~x ~y ~window ~d =
  let half = window / 2 in
  let acc = ref 0. in
  for dy = -half to half do
    for dx = -half to half do
      let l = get left ~x:(x + dx) ~y:(y + dy) in
      let r = get right ~x:(x + dx - d) ~y:(y + dy) in
      acc := !acc +. Float.abs (l -. r)
    done
  done;
  !acc

let disparity_map ?(window = 5) ?(max_disparity = 16) ~left ~right () =
  if left.width <> right.width || left.height <> right.height then
    invalid_arg "Stereo.disparity_map: image size mismatch";
  if window < 1 || window mod 2 = 0 then
    invalid_arg "Stereo.disparity_map: window must be odd and positive";
  if max_disparity < 0 then
    invalid_arg "Stereo.disparity_map: negative disparity range";
  Array.init (left.width * left.height) (fun i ->
      let x = i mod left.width and y = i / left.width in
      (* the right image is the scene shifted left: a pixel at x in the
         left view appears at x - d in the right view *)
      let best = ref 0 and best_cost = ref infinity in
      for d = 0 to max_disparity do
        let c = sad ~left ~right ~x ~y ~window ~d in
        if c < !best_cost then begin
          best_cost := c;
          best := d
        end
      done;
      !best)

let sad_ops ~width ~height ~window ~max_disparity =
  3 * width * height * window * window * (max_disparity + 1)

let disparity_cycles (config : Ascend_arch.Config.t) ~width ~height ~window
    ~max_disparity =
  let lanes = config.vector_width_bytes / 2 in
  Ascend_util.Stats.divide_round_up
    (sad_ops ~width ~height ~window ~max_disparity)
    lanes
  + Ascend_core_sim.Latency.vector_issue_overhead
