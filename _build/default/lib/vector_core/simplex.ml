type solution =
  | Optimal of { objective : float; x : float array }
  | Unbounded

let epsilon = 1e-9

let solve ~c ~a ~b =
  let m = Array.length a in
  let n = Array.length c in
  if Array.length b <> m then Error "Simplex.solve: |b| <> rows of A"
  else if Array.exists (fun row -> Array.length row <> n) a then
    Error "Simplex.solve: ragged A"
  else if Array.exists (fun v -> v < 0.) b then
    Error "Simplex.solve: negative b (slack basis infeasible)"
  else begin
    (* tableau: m rows of [A | I | b], objective row [-c | 0 | 0] *)
    let width = n + m + 1 in
    let t =
      Array.init (m + 1) (fun i ->
          if i < m then
            Array.init width (fun j ->
                if j < n then a.(i).(j)
                else if j < n + m then if j - n = i then 1. else 0.
                else b.(i))
          else
            Array.init width (fun j -> if j < n then -.c.(j) else 0.))
    in
    let basis = Array.init m (fun i -> n + i) in
    let rec iterate guard =
      if guard <= 0 then Error "Simplex.solve: iteration guard exceeded"
      else begin
        (* entering variable: Bland's rule, first negative reduced cost *)
        let entering = ref (-1) in
        (try
           for j = 0 to n + m - 1 do
             if t.(m).(j) < -.epsilon then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !entering < 0 then begin
          (* optimal: read off the solution *)
          let x = Array.make n 0. in
          Array.iteri
            (fun i bv -> if bv < n then x.(bv) <- t.(i).(width - 1))
            basis;
          Ok (Optimal { objective = t.(m).(width - 1); x })
        end
        else begin
          let j = !entering in
          (* leaving variable: minimum ratio, ties by smallest basis index *)
          let leaving = ref (-1) and best = ref infinity in
          for i = 0 to m - 1 do
            if t.(i).(j) > epsilon then begin
              let ratio = t.(i).(width - 1) /. t.(i).(j) in
              if
                ratio < !best -. epsilon
                || (Float.abs (ratio -. !best) <= epsilon
                   && (!leaving < 0 || basis.(i) < basis.(!leaving)))
              then begin
                best := ratio;
                leaving := i
              end
            end
          done;
          if !leaving < 0 then Ok Unbounded
          else begin
            let r = !leaving in
            let pivot = t.(r).(j) in
            for col = 0 to width - 1 do
              t.(r).(col) <- t.(r).(col) /. pivot
            done;
            for row = 0 to m do
              if row <> r && Float.abs t.(row).(j) > 0. then begin
                let f = t.(row).(j) in
                for col = 0 to width - 1 do
                  t.(row).(col) <- t.(row).(col) -. (f *. t.(r).(col))
                done
              end
            done;
            basis.(r) <- j;
            iterate (guard - 1)
          end
        end
      end
    in
    iterate 10_000
  end

let tableau_cycles (config : Ascend_arch.Config.t) ~constraints ~variables
    ~pivots =
  if constraints < 0 || variables < 0 || pivots < 0 then
    invalid_arg "Simplex.tableau_cycles: negative size";
  let lanes = config.vector_width_bytes / 2 in
  let width = variables + constraints + 1 in
  (* per pivot: normalise one row + eliminate m rows, 2 ops per cell *)
  let ops = pivots * 2 * (constraints + 1) * width in
  Ascend_util.Stats.divide_round_up (max 1 ops) lanes
  + Ascend_core_sim.Latency.vector_issue_overhead
