type t = { w : float; x : float; y : float; z : float }

let identity = { w = 1.; x = 0.; y = 0.; z = 0. }
let make ~w ~x ~y ~z = { w; x; y; z }

let of_axis_angle ~axis:(ax, ay, az) ~angle =
  let len = sqrt ((ax *. ax) +. (ay *. ay) +. (az *. az)) in
  if len <= 0. then invalid_arg "Quaternion.of_axis_angle: zero axis";
  let s = sin (angle /. 2.) /. len in
  { w = cos (angle /. 2.); x = ax *. s; y = ay *. s; z = az *. s }

let mul a b =
  {
    w = (a.w *. b.w) -. (a.x *. b.x) -. (a.y *. b.y) -. (a.z *. b.z);
    x = (a.w *. b.x) +. (a.x *. b.w) +. (a.y *. b.z) -. (a.z *. b.y);
    y = (a.w *. b.y) -. (a.x *. b.z) +. (a.y *. b.w) +. (a.z *. b.x);
    z = (a.w *. b.z) +. (a.x *. b.y) -. (a.y *. b.x) +. (a.z *. b.w);
  }

let conjugate q = { q with x = -.q.x; y = -.q.y; z = -.q.z }

let norm q = sqrt ((q.w *. q.w) +. (q.x *. q.x) +. (q.y *. q.y) +. (q.z *. q.z))

let normalize q =
  let n = norm q in
  if n <= 0. then invalid_arg "Quaternion.normalize: zero quaternion";
  { w = q.w /. n; x = q.x /. n; y = q.y /. n; z = q.z /. n }

let rotate q (vx, vy, vz) =
  let v = { w = 0.; x = vx; y = vy; z = vz } in
  let r = mul (mul q v) (conjugate q) in
  (r.x, r.y, r.z)

let dot a b = (a.w *. b.w) +. (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let scale s q = { w = s *. q.w; x = s *. q.x; y = s *. q.y; z = s *. q.z }

let add a b = { w = a.w +. b.w; x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }

let slerp a b t =
  let t = Ascend_util.Stats.clamp ~lo:0. ~hi:1. t in
  (* take the short arc *)
  let b, d =
    let d = dot a b in
    if d < 0. then (scale (-1.) b, -.d) else (b, d)
  in
  if d > 0.9995 then normalize (add (scale (1. -. t) a) (scale t b))
  else
    let theta = acos (Ascend_util.Stats.clamp ~lo:(-1.) ~hi:1. d) in
    let s = sin theta in
    add
      (scale (sin ((1. -. t) *. theta) /. s) a)
      (scale (sin (t *. theta) /. s) b)

let to_rotation_matrix q =
  let { w; x; y; z } = q in
  [|
    [| 1. -. (2. *. ((y *. y) +. (z *. z)));
       2. *. ((x *. y) -. (w *. z));
       2. *. ((x *. z) +. (w *. y)) |];
    [| 2. *. ((x *. y) +. (w *. z));
       1. -. (2. *. ((x *. x) +. (z *. z)));
       2. *. ((y *. z) -. (w *. x)) |];
    [| 2. *. ((x *. z) -. (w *. y));
       2. *. ((y *. z) +. (w *. x));
       1. -. (2. *. ((x *. x) +. (y *. y))) |];
  |]

let approx_equal ?(tol = 1e-9) a b =
  let close a b =
    Float.abs (a.w -. b.w) <= tol
    && Float.abs (a.x -. b.x) <= tol
    && Float.abs (a.y -. b.y) <= tol
    && Float.abs (a.z -. b.z) <= tol
  in
  close a b || close a (scale (-1.) b)

let batched_mul_cycles (config : Ascend_arch.Config.t) ~count =
  if count < 0 then invalid_arg "Quaternion.batched_mul_cycles: negative count";
  (* 16 multiplies + 12 adds per product = 28 element-ops on fp16 lanes *)
  let lanes = config.vector_width_bytes / 2 in
  let compute = Ascend_util.Stats.divide_round_up (28 * count) lanes in
  (* stream 2 inputs + 1 output of 8 bytes each through the UB port *)
  let stream =
    Ascend_util.Stats.divide_round_up (3 * 8 * count)
      config.bandwidth.ub_port
  in
  max compute stream + Ascend_core_sim.Latency.vector_issue_overhead
