module Config = Ascend_arch.Config

let vector_core_config =
  {
    Config.standard with
    Config.name = "Vector Core";
    cube = { Config.m = 1; k = 1; n = 1 };
  }

type frame_profile = {
  stereo_cycles : int;
  feature_sort_cycles : int;
  pose_update_cycles : int;
  clustering_cycles : int;
  lp_check_cycles : int;
  total_cycles : int;
  frame_seconds : float;
  sustainable_fps : float;
}

let profile_frame ?(config = vector_core_config) ~width ~height ~features
    ~landmarks () =
  let stereo_cycles =
    Stereo.disparity_cycles config ~width ~height ~window:5 ~max_disparity:16
  in
  let feature_sort_cycles = Sort.top_k_cycles config ~n:features ~k:256 in
  let pose_update_cycles = Quaternion.batched_mul_cycles config ~count:64 in
  let clustering_cycles =
    Kmeans.iteration_cycles config ~points:landmarks ~k:32 ~dim:3
  in
  let lp_check_cycles =
    Simplex.tableau_cycles config ~constraints:8 ~variables:6 ~pivots:3
  in
  let total_cycles =
    stereo_cycles + feature_sort_cycles + pose_update_cycles
    + clustering_cycles + lp_check_cycles
  in
  let frame_seconds =
    Ascend_util.Units.seconds_of_cycles ~cycles:total_cycles
      ~frequency_ghz:config.Config.frequency_ghz
  in
  {
    stereo_cycles;
    feature_sort_cycles;
    pose_update_cycles;
    clustering_cycles;
    lp_check_cycles;
    total_cycles;
    frame_seconds;
    sustainable_fps = (if frame_seconds > 0. then 1. /. frame_seconds else 0.);
  }

let pp ppf p =
  Format.fprintf ppf
    "SLAM frame: stereo %d + sort %d + pose %d + cluster %d + LP %d = %d \
     cycles (%a, %.0f fps sustainable)"
    p.stereo_cycles p.feature_sort_cycles p.pose_update_cycles
    p.clustering_cycles p.lp_check_cycles p.total_cycles
    Ascend_util.Units.pp_seconds p.frame_seconds p.sustainable_fps
