(** Sorting on the vector unit — one of the §3.3 Vector Core instruction
    extensions (used by SLAM feature selection, NMS in detection
    post-processing, ...).

    The hardware primitive modelled here is a vector bitonic merge sort:
    log2(n)*(log2(n)+1)/2 compare-exchange passes over the data, each a
    full vector sweep. *)

val bitonic_sort : float array -> unit
(** In-place ascending sort via the bitonic network (the array is padded
    virtually to a power of two).  Reference implementation of exactly
    the passes the cycle model charges. *)

val bitonic_passes : int -> int
(** Number of compare-exchange passes for n elements:
    k(k+1)/2 with k = ceil(log2 n); 0 for n <= 1. *)

val sort_cycles : Ascend_arch.Config.t -> n:int -> int
(** Vector-unit cycles to sort n fp16 keys. *)

val top_k : float array -> k:int -> float array
(** Largest k values in descending order (k-selection, the NMS
    building block).  Raises [Invalid_argument] if [k < 0]; caps at the
    array length. *)

val top_k_cycles : Ascend_arch.Config.t -> n:int -> k:int -> int
(** A single scored sweep keeping a k-heap: n element-ops plus k log k
    ordering work. *)
