type t = { size : int; link_bandwidth : float; hop_latency_ns : float }

let create ?(link_bandwidth = 64e9) ?(hop_latency_ns = 1.0) ~nodes () =
  if nodes <= 1 then invalid_arg "Ring.create: need at least 2 nodes";
  { size = nodes; link_bandwidth; hop_latency_ns }

let nodes t = t.size

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Ring: node out of bounds"

let hops t ~src ~dst =
  check t src;
  check t dst;
  let cw = (dst - src + t.size) mod t.size in
  min cw (t.size - cw)

let latency_ns t ~src ~dst =
  float_of_int (hops t ~src ~dst + 1) *. t.hop_latency_ns

let worst_case_latency_ns t =
  float_of_int ((t.size / 2) + 1) *. t.hop_latency_ns

(* directed links: (node, +1) clockwise, (node, -1) counter-clockwise *)
let route t ~src ~dst =
  let cw = (dst - src + t.size) mod t.size in
  let dir = if cw <= t.size - cw then 1 else -1 in
  let len = if dir = 1 then cw else t.size - cw in
  List.init len (fun i ->
      let from = (src + (dir * i) + t.size) mod t.size in
      (from, dir))

let throughput t ~flows =
  let flows = Array.of_list flows in
  let routes =
    Array.map (fun (s, d, _) -> route t ~src:s ~dst:d) flows
  in
  let rate = Array.make (Array.length flows) 0. in
  let frozen = Array.make (Array.length flows) false in
  let load = Hashtbl.create 32 in
  let get l = match Hashtbl.find_opt load l with Some v -> !v | None -> 0. in
  let continue_ = ref true in
  while !continue_ do
    let step = ref infinity in
    let active = ref false in
    Array.iteri
      (fun i r ->
        if not frozen.(i) then begin
          active := true;
          let _, _, demand = flows.(i) in
          step := Float.min !step (demand -. rate.(i));
          List.iter
            (fun l ->
              let k =
                Array.to_list routes
                |> List.filteri (fun j _ -> not frozen.(j))
                |> List.filter (List.mem l)
                |> List.length
              in
              if k > 0 then
                step :=
                  Float.min !step ((t.link_bandwidth -. get l) /. float_of_int k))
            r
        end)
      routes;
    if (not !active) || !step = infinity || !step <= 1e-9 then continue_ := false
    else begin
      Array.iteri
        (fun i r ->
          if not frozen.(i) then begin
            rate.(i) <- rate.(i) +. !step;
            List.iter
              (fun l ->
                let cell =
                  match Hashtbl.find_opt load l with
                  | Some v -> v
                  | None ->
                    let v = ref 0. in
                    Hashtbl.replace load l v;
                    v
                in
                cell := !cell +. !step)
              r
          end)
        routes;
      Array.iteri
        (fun i r ->
          if not frozen.(i) then
            let _, _, demand = flows.(i) in
            if rate.(i) >= demand -. 1e-6 then frozen.(i) <- true
            else if List.exists (fun l -> get l >= t.link_bandwidth -. 1e-3) r
            then frozen.(i) <- true)
        routes
    end
  done;
  Array.to_list rate
