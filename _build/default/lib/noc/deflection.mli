(** Cycle-level bufferless deflection-routed 2D mesh (the paper notes the
    910 NoC uses "the bufferless architecture ... to reduce the area
    overhead").

    Single-flit packets; each cycle a router matches its incoming packets
    to output ports preferring the XY-productive direction; contention is
    resolved oldest-first and losers are deflected to any free port
    (never dropped, livelock avoided by age priority).  Injection needs a
    free cycle slot at the source. *)

type t

type stats = {
  delivered : int;
  total_latency_cycles : int;
  max_latency_cycles : int;
  deflections : int;
  cycles_run : int;
}

val create : rows:int -> cols:int -> t

val inject :
  t -> src_row:int -> src_col:int -> dst_row:int -> dst_col:int -> unit
(** Queue a packet for injection at the source node. *)

val run : ?max_cycles:int -> t -> (stats, string) result
(** Simulate until every packet is delivered; [Error] if [max_cycles]
    (default 100_000) elapses first. *)

val average_latency : stats -> float

val uniform_random_experiment :
  rows:int -> cols:int -> packets:int -> seed:int -> stats
(** Inject [packets] uniform-random src/dst packets (over distinct pairs)
    and run to completion. *)
