(** Ring NoC (paper §3.3: the automotive SoC isolates its safety-critical
    CPUs on a separate ASIL-D ring).  Bidirectional ring, shortest-way
    routing, flow-level bandwidth sharing. *)

type t

val create :
  ?link_bandwidth:float -> ?hop_latency_ns:float -> nodes:int -> unit -> t
(** Defaults: 64 GB/s links, 1 ns per hop. *)

val nodes : t -> int

val hops : t -> src:int -> dst:int -> int
(** Shortest direction. *)

val latency_ns : t -> src:int -> dst:int -> float

val worst_case_latency_ns : t -> float
(** The bound a safety argument needs: the farthest pair. *)

val throughput :
  t -> flows:(int * int * float) list -> float list
(** Max-min throughput per (src, dst, demand) flow with shortest-way
    routing on directed ring links. *)
