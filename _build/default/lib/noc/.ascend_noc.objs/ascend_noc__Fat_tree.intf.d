lib/noc/fat_tree.mli:
