lib/noc/ring.ml: Array Float Hashtbl List
