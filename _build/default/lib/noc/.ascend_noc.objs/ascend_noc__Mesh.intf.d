lib/noc/mesh.mli:
