lib/noc/fat_tree.ml: Ascend_util
