lib/noc/deflection.ml: Array Ascend_util List Printf Queue
