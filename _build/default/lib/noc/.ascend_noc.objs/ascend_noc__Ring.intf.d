lib/noc/ring.mli:
