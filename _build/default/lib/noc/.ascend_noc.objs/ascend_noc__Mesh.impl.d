lib/noc/mesh.ml: Array Float Hashtbl List
