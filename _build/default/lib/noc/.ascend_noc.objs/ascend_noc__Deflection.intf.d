lib/noc/deflection.mli:
