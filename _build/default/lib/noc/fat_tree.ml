type t = {
  server_count : int;
  servers_per_leaf : int;
  server_link_gbps : float;
}

let create ?(server_link_gbps = 100.) ?(servers_per_leaf = 16) ~servers () =
  if servers <= 0 || servers_per_leaf <= 0 then
    invalid_arg "Fat_tree.create: non-positive size";
  { server_count = servers; servers_per_leaf; server_link_gbps }

let ascend_cluster = create ~servers:256 ()

let servers t = t.server_count

let leaves t =
  Ascend_util.Stats.divide_round_up t.server_count t.servers_per_leaf

let server_bandwidth t = t.server_link_gbps *. 1e9 /. 8.

let bisection_bandwidth t =
  (* full bisection: half the servers can simultaneously send across *)
  float_of_int (t.server_count / 2) *. server_bandwidth t

let latency_us t ~src ~dst =
  if src = dst then 0.
  else if src / t.servers_per_leaf = dst / t.servers_per_leaf then 1.0
  else 3.0

let all_to_all_per_server_bandwidth t = server_bandwidth t
