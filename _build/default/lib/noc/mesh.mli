(** 2D-mesh network-on-chip, flow level (paper §3.1.1: the Ascend 910
    compute die uses a 6-row x 4-column mesh with 1024-bit links at
    2 GHz = 256 GB/s per link, bufferless routers, XY routing, and a
    global scheduling policy for QoS).

    The flow-level model computes per-flow throughput by progressive
    filling (max-min fairness over shared links) and per-flow latency
    from hop counts — adequate for the SoC-scale questions the paper
    asks of it.  A cycle-accurate bufferless router lives in
    {!Deflection}. *)

type t

type node = { row : int; col : int }

type flow = { src : node; dst : node; demand : float (** bytes/s *) }

type flow_result = {
  flow : flow;
  throughput : float;   (** bytes/s granted *)
  hops : int;
  latency_ns : float;   (** unloaded head latency *)
}

val create :
  ?link_bandwidth:float -> ?hop_latency_ns:float -> rows:int -> cols:int ->
  unit -> t
(** Defaults: 256 GB/s links, 0.5 ns per hop (one 2 GHz router cycle). *)

val ascend910 : t
(** The paper's 6x4 mesh. *)

val rows : t -> int
val cols : t -> int
val node : t -> row:int -> col:int -> node
(** Bounds-checked. *)

val xy_route : node -> node -> node list
(** The XY path including both endpoints. *)

val hops : node -> node -> int

val route_flows : t -> flow list -> flow_result list
(** Progressive-filling max-min allocation over the XY-routed links. *)

val bisection_bandwidth : t -> float
(** Links crossing the column bisection x link bandwidth (both
    directions). *)

val link_bandwidth : t -> float

val saturation_injection_rate : t -> uniform_random:bool -> float
(** Aggregate injection (bytes/s) at which the busiest link saturates
    under uniform-random traffic — the classic mesh capacity bound. *)
