(** Fat-tree cluster network (paper §4.2: 256 servers connected with a
    fat-tree; 100 Gb/s links between servers).

    Modeled as a two-level folded Clos with full bisection: leaf switches
    of [servers_per_leaf] downlinks each, enough spine capacity that the
    network is non-blocking at the server-link rate.  What matters to the
    training model is per-server injection bandwidth and the hop-count
    latency ladder. *)

type t

val create :
  ?server_link_gbps:float -> ?servers_per_leaf:int -> servers:int -> unit -> t
(** Defaults: 100 Gb/s server links, 16 servers per leaf. *)

val ascend_cluster : t
(** 256 servers (2048 chips), the paper's flagship cluster. *)

val servers : t -> int
val leaves : t -> int
val server_bandwidth : t -> float
(** bytes/s of one server's network interface. *)

val bisection_bandwidth : t -> float

val latency_us : t -> src:int -> dst:int -> float
(** ~1 us within a leaf, ~3 us across the spine (switch + serialisation
    at cluster scale). *)

val all_to_all_per_server_bandwidth : t -> float
(** Sustained per-server bandwidth under an all-to-all pattern (full
    bisection keeps it at the NIC rate). *)
