lib/tbe/expr.ml: Array Ascend_tensor Float Format List
