lib/tbe/kernel.mli: Ascend_arch Ascend_core_sim Ascend_isa Ascend_tensor Expr
