lib/tbe/kernel.ml: Ascend_arch Ascend_compiler Ascend_core_sim Ascend_nn Ascend_tensor Expr Float
