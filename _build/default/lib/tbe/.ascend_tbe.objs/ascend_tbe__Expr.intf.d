lib/tbe/expr.mli: Ascend_tensor Format
