(** Lowering TBE expressions to Ascend core programs — the "instance
    Tasks generated automatically from the TBE DSL description" of §5.1.

    The kernel streams the element range through the unified buffer:
    loads of all referenced inputs, [Expr.passes] vector passes per
    chunk, and a store — the same pipeline shape the hand-written
    compiler emits for vector-only layers. *)

type t = {
  kernel_name : string;
  expr : Expr.t;
  elems : int;
  dtype : Ascend_arch.Precision.t;
}

val make :
  name:string -> expr:Expr.t -> elems:int ->
  ?dtype:Ascend_arch.Precision.t -> unit -> t
(** Default dtype fp16.  Raises [Invalid_argument] on non-positive
    [elems]. *)

val to_program : Ascend_arch.Config.t -> t -> Ascend_isa.Program.t

val simulate :
  Ascend_arch.Config.t -> t ->
  (Ascend_core_sim.Simulator.report, string) result

val estimated_cycles : Ascend_arch.Config.t -> t -> int
(** Analytical: passes x elems / vector lanes, plus streaming. *)

val run :
  t -> Ascend_tensor.Tensor.t list -> Ascend_tensor.Tensor.t
(** Numeric execution via {!Expr.eval} (shape-checked against [elems]). *)
