module Precision = Ascend_arch.Precision

type t = {
  kernel_name : string;
  expr : Expr.t;
  elems : int;
  dtype : Precision.t;
}

let make ~name ~expr ~elems ?(dtype = Precision.Fp16) () =
  if elems <= 0 then invalid_arg "Kernel.make: non-positive element count";
  { kernel_name = name; expr; elems; dtype }

let workload k =
  let size = Precision.size_bytes k.dtype in
  let bytes n = int_of_float (ceil (float_of_int n *. size)) in
  {
    Ascend_nn.Workload.zero with
    vector_elems = float_of_int (k.elems * Expr.passes k.expr);
    input_bytes = bytes (k.elems * Expr.arity k.expr);
    output_bytes = bytes k.elems;
  }

let to_program config k =
  let group =
    Ascend_compiler.Fusion.of_workloads ~tag:k.kernel_name ~precision:k.dtype
      (workload k)
  in
  Ascend_compiler.Codegen.group_program config group

let simulate config k =
  Ascend_core_sim.Simulator.run config (to_program config k)

let estimated_cycles (config : Ascend_arch.Config.t) k =
  let size = Precision.size_bytes k.dtype in
  let vector =
    float_of_int (k.elems * Expr.passes k.expr)
    *. size
    /. float_of_int config.vector_width_bytes
  in
  let streaming =
    float_of_int (k.elems * (Expr.arity k.expr + 1))
    *. size
    /. Float.max 1. (Ascend_arch.Config.llc_bytes_per_cycle config)
  in
  int_of_float (ceil (Float.max vector streaming))

let run k inputs =
  (match inputs with
  | [] -> invalid_arg "Kernel.run: no inputs"
  | first :: _ ->
    if Ascend_tensor.Tensor.numel first <> k.elems then
      invalid_arg "Kernel.run: element count mismatch");
  Expr.eval k.expr inputs
