(** TBE (Tensor Boost Engine) DSL — the paper's Level-3 "mathematical
    programming" model (§5.1): users describe elementwise/reduction
    computations with no hardware knowledge; the compiler generates the
    vector-unit task.

    An expression denotes a per-element computation over k input tensors
    of identical shape.  {!eval} is the reference semantics; {!passes}
    is the vector-pass cost model the lowering charges. *)

type t =
  | Input of int          (** index into the input list *)
  | Const of float
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Max of t * t
  | Min of t * t
  | Exp of t
  | Log of t
  | Sqrt of t
  | Tanh of t
  | Relu of t

val arity : t -> int
(** 1 + the largest input index referenced (0 for closed terms). *)

val eval_scalar : t -> float array -> float
(** One element; the array holds the per-input element values.  Raises
    [Invalid_argument] if an [Input i] exceeds the array. *)

val eval : t -> Ascend_tensor.Tensor.t list -> Ascend_tensor.Tensor.t
(** Elementwise map over equal-shaped inputs. *)

val passes : t -> int
(** Vector passes: one per operator node (inputs and constants free). *)

val pp : Format.formatter -> t -> unit

(** {2 Convenience constructors} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val x0 : t
val x1 : t
val c : float -> t

val sigmoid : t -> t
(** 1 / (1 + exp (-x)), built from the primitive nodes. *)

val gelu_tanh : t -> t
(** The BERT gelu approximation. *)
