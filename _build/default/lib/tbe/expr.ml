type t =
  | Input of int
  | Const of float
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Max of t * t
  | Min of t * t
  | Exp of t
  | Log of t
  | Sqrt of t
  | Tanh of t
  | Relu of t

let rec arity = function
  | Input i -> i + 1
  | Const _ -> 0
  | Neg e | Exp e | Log e | Sqrt e | Tanh e | Relu e -> arity e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Max (a, b) | Min (a, b)
    ->
    max (arity a) (arity b)

let rec eval_scalar t env =
  match t with
  | Input i ->
    if i < 0 || i >= Array.length env then
      invalid_arg "Expr.eval_scalar: input index out of range";
    env.(i)
  | Const v -> v
  | Neg e -> -.eval_scalar e env
  | Add (a, b) -> eval_scalar a env +. eval_scalar b env
  | Sub (a, b) -> eval_scalar a env -. eval_scalar b env
  | Mul (a, b) -> eval_scalar a env *. eval_scalar b env
  | Div (a, b) -> eval_scalar a env /. eval_scalar b env
  | Max (a, b) -> Float.max (eval_scalar a env) (eval_scalar b env)
  | Min (a, b) -> Float.min (eval_scalar a env) (eval_scalar b env)
  | Exp e -> exp (eval_scalar e env)
  | Log e -> log (eval_scalar e env)
  | Sqrt e -> sqrt (eval_scalar e env)
  | Tanh e -> Float.tanh (eval_scalar e env)
  | Relu e -> Float.max 0. (eval_scalar e env)

let eval t inputs =
  let module Tensor = Ascend_tensor.Tensor in
  (match inputs with
  | [] -> invalid_arg "Expr.eval: no inputs"
  | first :: rest ->
    List.iter
      (fun i ->
        if
          not
            (Ascend_tensor.Shape.equal (Tensor.shape i) (Tensor.shape first))
        then invalid_arg "Expr.eval: input shape mismatch")
      rest);
  if arity t > List.length inputs then
    invalid_arg "Expr.eval: expression references a missing input";
  let first = List.hd inputs in
  let module Tensor = Ascend_tensor.Tensor in
  let n = Tensor.numel first in
  let datas = Array.of_list (List.map Tensor.data inputs) in
  let env = Array.make (Array.length datas) 0. in
  let out = Tensor.create ~dtype:(Tensor.dtype first) (Tensor.shape first) in
  let o = Tensor.data out in
  for i = 0 to n - 1 do
    Array.iteri (fun j d -> env.(j) <- d.(i)) datas;
    o.(i) <- eval_scalar t env
  done;
  out

let rec passes = function
  | Input _ | Const _ -> 0
  | Neg e | Exp e | Log e | Sqrt e | Tanh e | Relu e -> 1 + passes e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Max (a, b) | Min (a, b)
    ->
    1 + passes a + passes b

let rec pp ppf = function
  | Input i -> Format.fprintf ppf "x%d" i
  | Const v -> Format.fprintf ppf "%g" v
  | Neg e -> Format.fprintf ppf "(- %a)" pp e
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Max (a, b) -> Format.fprintf ppf "(max %a %a)" pp a pp b
  | Min (a, b) -> Format.fprintf ppf "(min %a %a)" pp a pp b
  | Exp e -> Format.fprintf ppf "(exp %a)" pp e
  | Log e -> Format.fprintf ppf "(log %a)" pp e
  | Sqrt e -> Format.fprintf ppf "(sqrt %a)" pp e
  | Tanh e -> Format.fprintf ppf "(tanh %a)" pp e
  | Relu e -> Format.fprintf ppf "(relu %a)" pp e

let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let x0 = Input 0
let x1 = Input 1
let c v = Const v

let sigmoid x = Div (Const 1., Add (Const 1., Exp (Neg x)))

let gelu_tanh x =
  Mul
    ( Mul (Const 0.5, x),
      Add
        ( Const 1.,
          Tanh
            (Mul
               ( Const 0.7978845608,
                 Add (x, Mul (Const 0.044715, Mul (x, Mul (x, x)))) )) ) )
