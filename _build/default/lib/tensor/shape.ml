type t = int array

let of_list dims =
  List.iter
    (fun d -> if d < 0 then invalid_arg "Shape.of_list: negative dimension")
    dims;
  Array.of_list dims

let to_list = Array.to_list
let dims t = Array.copy t
let rank = Array.length

let dim t i =
  let n = Array.length t in
  let i = if i < 0 then n + i else i in
  if i < 0 || i >= n then invalid_arg "Shape.dim: index out of range";
  t.(i)

let numel t = Array.fold_left ( * ) 1 t

let equal (a : t) b = a = b

let to_string t =
  "[" ^ String.concat "x" (List.map string_of_int (Array.to_list t)) ^ "]"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let scalar = [||]
let vector n = of_list [ n ]
let matrix m n = of_list [ m; n ]
let nchw ~n ~c ~h ~w = of_list [ n; c; h; w ]

let concat a b = Array.append a b

let bytes t ~dtype =
  let bits = numel t * Ascend_arch.Precision.size_bits dtype in
  (bits + 7) / 8

let strides t =
  let n = Array.length t in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.(i + 1)
  done;
  s

let ravel_index t idx =
  let n = Array.length t in
  if Array.length idx <> n then invalid_arg "Shape.ravel_index: rank mismatch";
  let s = strides t in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= t.(i) then
      invalid_arg "Shape.ravel_index: index out of bounds";
    acc := !acc + (idx.(i) * s.(i))
  done;
  !acc
