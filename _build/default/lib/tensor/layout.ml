module Precision = Ascend_arch.Precision

let c0 ~dtype = match dtype with Precision.Int8 | Precision.Int4 -> 32 | _ -> 16

let div_up = Ascend_util.Stats.divide_round_up

let nchw_to_nc1hwc0 t =
  match Shape.to_list (Tensor.shape t) with
  | [ n; c; h; w ] ->
    let c0 = c0 ~dtype:(Tensor.dtype t) in
    let c1 = div_up c c0 in
    let out =
      Tensor.create ~dtype:(Tensor.dtype t) (Shape.of_list [ n; c1; h; w; c0 ])
    in
    for ni = 0 to n - 1 do
      for ci = 0 to c - 1 do
        for hi = 0 to h - 1 do
          for wi = 0 to w - 1 do
            let v = Tensor.get t [| ni; ci; hi; wi |] in
            Tensor.set out [| ni; ci / c0; hi; wi; ci mod c0 |] v
          done
        done
      done
    done;
    out
  | _ -> invalid_arg "Layout.nchw_to_nc1hwc0: expected rank-4 NCHW tensor"

let nc1hwc0_to_nchw ~c t =
  match Shape.to_list (Tensor.shape t) with
  | [ n; c1; h; w; c0 ] ->
    if c > c1 * c0 then invalid_arg "Layout.nc1hwc0_to_nchw: c too large";
    let out =
      Tensor.create ~dtype:(Tensor.dtype t) (Shape.nchw ~n ~c ~h ~w)
    in
    for ni = 0 to n - 1 do
      for ci = 0 to c - 1 do
        for hi = 0 to h - 1 do
          for wi = 0 to w - 1 do
            let v = Tensor.get t [| ni; ci / c0; hi; wi; ci mod c0 |] in
            Tensor.set out [| ni; ci; hi; wi |] v
          done
        done
      done
    done;
    out
  | _ -> invalid_arg "Layout.nc1hwc0_to_nchw: expected rank-5 tensor"

let cout0 = 16

let weights_to_fracz t =
  match Shape.to_list (Tensor.shape t) with
  | [ cout; cin; kh; kw ] ->
    let c0 = c0 ~dtype:(Tensor.dtype t) in
    let c1 = div_up cin c0 in
    let cout1 = div_up cout cout0 in
    let out =
      Tensor.create ~dtype:(Tensor.dtype t)
        (Shape.of_list [ c1 * kh * kw; cout1; cout0; c0 ])
    in
    for co = 0 to cout - 1 do
      for ci = 0 to cin - 1 do
        for khi = 0 to kh - 1 do
          for kwi = 0 to kw - 1 do
            let v = Tensor.get t [| co; ci; khi; kwi |] in
            let block = (((ci / c0) * kh) + khi) * kw + kwi in
            Tensor.set out [| block; co / cout0; co mod cout0; ci mod c0 |] v
          done
        done
      done
    done;
    out
  | _ -> invalid_arg "Layout.weights_to_fracz: expected rank-4 OIHW tensor"

let fracz_to_weights ~cout ~cin ~kh ~kw t =
  match Shape.to_list (Tensor.shape t) with
  | [ blocks; cout1; co0; c0 ] ->
    if co0 <> cout0 then invalid_arg "Layout.fracz_to_weights: bad cout0";
    if blocks <> div_up cin c0 * kh * kw then
      invalid_arg "Layout.fracz_to_weights: block count mismatch";
    if cout > cout1 * cout0 then
      invalid_arg "Layout.fracz_to_weights: cout too large";
    let out =
      Tensor.create ~dtype:(Tensor.dtype t) (Shape.of_list [ cout; cin; kh; kw ])
    in
    for co = 0 to cout - 1 do
      for ci = 0 to cin - 1 do
        for khi = 0 to kh - 1 do
          for kwi = 0 to kw - 1 do
            let block = (((ci / c0) * kh) + khi) * kw + kwi in
            let v = Tensor.get t [| block; co / cout0; co mod cout0; ci mod c0 |] in
            Tensor.set out [| co; ci; khi; kwi |] v
          done
        done
      done
    done;
    out
  | _ -> invalid_arg "Layout.fracz_to_weights: expected rank-4 FracZ tensor"

let padded_channel_bytes ~c ~h ~w ~dtype =
  let c0 = c0 ~dtype in
  let padded_c = div_up c c0 * c0 in
  (padded_c * h * w * Precision.size_bits dtype + 7) / 8
