module Precision = Ascend_arch.Precision

type t = { shape : Shape.t; dtype : Precision.t; data : float array }

let create ?(dtype = Precision.Fp32) shape =
  { shape; dtype; data = Array.make (Shape.numel shape) 0. }

let round_value dtype v =
  match dtype with
  | Precision.Fp32 -> v
  | Precision.Fp16 -> Ascend_util.Fp16.round_float v
  | Precision.Int32 -> Float.of_int (Float.to_int (Float.round v))
  | Precision.Int8 ->
    Ascend_util.Stats.clamp ~lo:(-128.) ~hi:127. (Float.round v)
  | Precision.Int4 -> Ascend_util.Stats.clamp ~lo:(-8.) ~hi:7. (Float.round v)

let of_array ?(dtype = Precision.Fp32) shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg "Tensor.of_array: length mismatch";
  { shape; dtype; data }

let init ?(dtype = Precision.Fp32) shape f =
  let n = Shape.numel shape in
  let rank = Shape.rank shape in
  let dims = Shape.dims shape in
  let idx = Array.make rank 0 in
  let data = Array.make n 0. in
  for flat = 0 to n - 1 do
    data.(flat) <- round_value dtype (f idx);
    (* advance the multi-index, row-major *)
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = dims.(i) then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (rank - 1)
  done;
  { shape; dtype; data }

let full ?(dtype = Precision.Fp32) shape v =
  { shape; dtype; data = Array.make (Shape.numel shape) (round_value dtype v) }

let random ?(dtype = Precision.Fp32) rng shape =
  let data =
    Array.init (Shape.numel shape) (fun _ ->
        round_value dtype (Ascend_util.Prng.gaussian rng ~mu:0. ~sigma:1.))
  in
  { shape; dtype; data }

let shape t = t.shape
let dtype t = t.dtype
let numel t = Array.length t.data
let bytes t = Shape.bytes t.shape ~dtype:t.dtype

let get t idx = t.data.(Shape.ravel_index t.shape idx)
let set t idx v = t.data.(Shape.ravel_index t.shape idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v
let data t = t.data

let copy t = { t with data = Array.copy t.data }

let reshape t shape =
  if Shape.numel shape <> numel t then
    invalid_arg "Tensor.reshape: element count mismatch";
  { t with shape }

let cast t dtype =
  { t with dtype; data = Array.map (round_value dtype) t.data }

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.map2: shape mismatch";
  { a with data = Array.map2 f a.data b.data }

let iteri f t =
  let rank = Shape.rank t.shape in
  let dims = Shape.dims t.shape in
  let idx = Array.make rank 0 in
  Array.iteri
    (fun _flat v ->
      f idx v;
      let rec bump i =
        if i >= 0 then begin
          idx.(i) <- idx.(i) + 1;
          if idx.(i) = dims.(i) then begin
            idx.(i) <- 0;
            bump (i - 1)
          end
        end
      in
      bump (rank - 1))
    t.data

let fold f init t = Array.fold_left f init t.data

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let scale s t = map (fun v -> s *. v) t

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let acc = ref 0. in
  Array.iteri (fun i v -> acc := Float.max !acc (Float.abs (v -. b.data.(i)))) a.data;
  !acc

let equal_approx ?(tol = 1e-9) a b =
  Shape.equal a.shape b.shape && max_abs_diff a b <= tol

let transpose t =
  let r = Shape.rank t.shape in
  if r < 2 then invalid_arg "Tensor.transpose: rank < 2";
  let dims = Shape.dims t.shape in
  let tmp = dims.(r - 1) in
  dims.(r - 1) <- dims.(r - 2);
  dims.(r - 2) <- tmp;
  let out_shape = Shape.of_list (Array.to_list dims) in
  let out = create ~dtype:t.dtype out_shape in
  iteri
    (fun idx v ->
      let idx' = Array.copy idx in
      let tmp = idx'.(r - 1) in
      idx'.(r - 1) <- idx'.(r - 2);
      idx'.(r - 2) <- tmp;
      set out idx' v)
    t;
  out

let pp ppf t =
  let n = numel t in
  let preview = min n 6 in
  Format.fprintf ppf "tensor %a %s [" Shape.pp t.shape
    (Precision.name t.dtype);
  for i = 0 to preview - 1 do
    if i > 0 then Format.pp_print_string ppf ", ";
    Format.fprintf ppf "%g" t.data.(i)
  done;
  if n > preview then Format.pp_print_string ppf ", ...";
  Format.pp_print_string ppf "]"
