(** Tensor shapes as immutable dimension lists (row-major order). *)

type t

val of_list : int list -> t
(** Raises [Invalid_argument] on negative dimensions. *)

val to_list : t -> int list
val dims : t -> int array
val rank : t -> int
val dim : t -> int -> int
(** [dim t i] supports negative indices from the end. *)

val numel : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val scalar : t
val vector : int -> t
val matrix : int -> int -> t
val nchw : n:int -> c:int -> h:int -> w:int -> t

val concat : t -> t -> t
(** Dimension-list concatenation. *)

val bytes : t -> dtype:Ascend_arch.Precision.t -> int
(** Storage footprint, rounded up for sub-byte dtypes. *)

val strides : t -> int array
(** Row-major element strides. *)

val ravel_index : t -> int array -> int
(** Flatten a multi-index; bounds-checked. *)
