(** DaVinci on-chip data layouts.

    The MTE's [trans] and [img2col] modules (paper §2.2) move data between
    the framework's NCHW layout and the cube-friendly fractal layouts:

    - feature maps: NC1HWC0 — channels split into C1 groups of C0 = cube k
      dimension (16 for fp16, 32 for int8) so one cube pass reads a
      contiguous C0 slice;
    - weights: FracZ — [(C1*KH*KW, Cout1, Cout0, C0)] fractal blocks so a
      16x16 weight fragment is contiguous for the L0B port. *)

val c0 : dtype:Ascend_arch.Precision.t -> int
(** The fractal inner-channel size: 32 for int8, 16 otherwise. *)

val nchw_to_nc1hwc0 : Tensor.t -> Tensor.t
(** Input of shape [n;c;h;w]; output [n; c1; h; w; c0] zero-padded in the
    channel remainder. *)

val nc1hwc0_to_nchw : c:int -> Tensor.t -> Tensor.t
(** Inverse, dropping channel padding; [c] is the original channel count. *)

val weights_to_fracz : Tensor.t -> Tensor.t
(** Input of shape [cout; cin; kh; kw]; output
    [c1*kh*kw; cout1; cout0; c0] with cout0 = 16, c0 from the dtype. *)

val fracz_to_weights :
  cout:int -> cin:int -> kh:int -> kw:int -> Tensor.t -> Tensor.t

val padded_channel_bytes :
  c:int -> h:int -> w:int -> dtype:Ascend_arch.Precision.t -> int
(** Bytes a [c;h;w] feature map occupies once padded to C0 — what the
    simulator charges buffers for. *)
