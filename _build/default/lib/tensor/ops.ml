let matmul_dims a b =
  match (Shape.to_list (Tensor.shape a), Shape.to_list (Tensor.shape b)) with
  | [ m; k ], [ k'; n ] when k = k' -> (m, k, n)
  | _ ->
    invalid_arg
      (Printf.sprintf "Ops.matmul: incompatible shapes %s and %s"
         (Shape.to_string (Tensor.shape a))
         (Shape.to_string (Tensor.shape b)))

let matmul_gen ~round a b =
  let m, k, n = matmul_dims a b in
  let da = Tensor.data a and db = Tensor.data b in
  let out = Tensor.create (Shape.matrix m n) in
  let dout = Tensor.data out in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0. in
      for p = 0 to k - 1 do
        acc := !acc +. (round da.((i * k) + p) *. round db.((p * n) + j))
      done;
      dout.((i * n) + j) <- !acc
    done
  done;
  out

let matmul a b = matmul_gen ~round:(fun v -> v) a b
let matmul_mixed a b = matmul_gen ~round:Ascend_util.Fp16.round_float a b

type conv_params = { stride : int; padding : int; groups : int }

let conv_defaults = { stride = 1; padding = 0; groups = 1 }

let conv_output_hw ~h ~w ~kh ~kw ~stride ~padding =
  let oh = ((h + (2 * padding) - kh) / stride) + 1 in
  let ow = ((w + (2 * padding) - kw) / stride) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Ops.conv_output_hw: empty output";
  (oh, ow)

let nchw_dims t =
  match Shape.to_list (Tensor.shape t) with
  | [ n; c; h; w ] -> (n, c, h, w)
  | _ -> invalid_arg "Ops: expected rank-4 NCHW tensor"

let conv2d ?(params = conv_defaults) x w =
  let n, cin, h, wd = nchw_dims x in
  let cout, cin_g, kh, kw = nchw_dims w in
  let { stride; padding; groups } = params in
  if cin mod groups <> 0 || cout mod groups <> 0 then
    invalid_arg "Ops.conv2d: channels not divisible by groups";
  if cin_g <> cin / groups then
    invalid_arg "Ops.conv2d: weight channel mismatch";
  let oh, ow = conv_output_hw ~h ~w:wd ~kh ~kw ~stride ~padding in
  let out = Tensor.create (Shape.nchw ~n ~c:cout ~h:oh ~w:ow) in
  let cout_g = cout / groups in
  for ni = 0 to n - 1 do
    for co = 0 to cout - 1 do
      let g = co / cout_g in
      for ohi = 0 to oh - 1 do
        for owi = 0 to ow - 1 do
          let acc = ref 0. in
          for ci = 0 to cin_g - 1 do
            let cin_idx = (g * cin_g) + ci in
            for khi = 0 to kh - 1 do
              let hi = (ohi * stride) + khi - padding in
              if hi >= 0 && hi < h then
                for kwi = 0 to kw - 1 do
                  let wi = (owi * stride) + kwi - padding in
                  if wi >= 0 && wi < wd then
                    acc :=
                      !acc
                      +. Tensor.get x [| ni; cin_idx; hi; wi |]
                         *. Tensor.get w [| co; ci; khi; kwi |]
                done
            done
          done;
          Tensor.set out [| ni; co; ohi; owi |] !acc
        done
      done
    done
  done;
  out

let img2col ?(params = conv_defaults) x ~kh ~kw =
  let n, cin, h, wd = nchw_dims x in
  let { stride; padding; groups } = params in
  if groups <> 1 then invalid_arg "Ops.img2col: use per-group slices";
  let oh, ow = conv_output_hw ~h ~w:wd ~kh ~kw ~stride ~padding in
  let rows = n * oh * ow in
  let cols = cin * kh * kw in
  let out = Tensor.create (Shape.matrix rows cols) in
  let dout = Tensor.data out in
  let row = ref 0 in
  for ni = 0 to n - 1 do
    for ohi = 0 to oh - 1 do
      for owi = 0 to ow - 1 do
        let base = !row * cols in
        let col = ref 0 in
        for ci = 0 to cin - 1 do
          for khi = 0 to kh - 1 do
            let hi = (ohi * stride) + khi - padding in
            for kwi = 0 to kw - 1 do
              let wi = (owi * stride) + kwi - padding in
              let v =
                if hi >= 0 && hi < h && wi >= 0 && wi < wd then
                  Tensor.get x [| ni; ci; hi; wi |]
                else 0.
              in
              dout.(base + !col) <- v;
              incr col
            done
          done
        done;
        incr row
      done
    done
  done;
  out

let slice_channels x ~from ~count =
  let n, _c, h, w = nchw_dims x in
  Tensor.init (Shape.nchw ~n ~c:count ~h ~w) (fun idx ->
      Tensor.get x [| idx.(0); from + idx.(1); idx.(2); idx.(3) |])

let conv2d_via_gemm ?(params = conv_defaults) x w =
  let n, _cin, h, wd = nchw_dims x in
  let cout, cin_g, kh, kw = nchw_dims w in
  let { stride; padding; groups } = params in
  let oh, ow = conv_output_hw ~h ~w:wd ~kh ~kw ~stride ~padding in
  let out = Tensor.create (Shape.nchw ~n ~c:cout ~h:oh ~w:ow) in
  let cout_g = cout / groups in
  let per_group = { stride; padding; groups = 1 } in
  for g = 0 to groups - 1 do
    let xg =
      if groups = 1 then x else slice_channels x ~from:(g * cin_g) ~count:cin_g
    in
    let cols = img2col ~params:per_group xg ~kh ~kw in
    (* weight matrix: (cin_g*kh*kw) x cout_g *)
    let wmat =
      Tensor.init (Shape.matrix (cin_g * kh * kw) cout_g) (fun idx ->
          let col = idx.(0) in
          let co = idx.(1) in
          let ci = col / (kh * kw) in
          let rem = col mod (kh * kw) in
          Tensor.get w [| (g * cout_g) + co; ci; rem / kw; rem mod kw |])
    in
    let prod = matmul cols wmat in
    (* rows are (n, oh, ow) in row-major order *)
    for ni = 0 to n - 1 do
      for ohi = 0 to oh - 1 do
        for owi = 0 to ow - 1 do
          let row = ((ni * oh) + ohi) * ow + owi in
          for co = 0 to cout_g - 1 do
            Tensor.set out
              [| ni; (g * cout_g) + co; ohi; owi |]
              (Tensor.get prod [| row; co |])
          done
        done
      done
    done
  done;
  out

let pool2d ~reduce ~finish x ~kernel ~stride =
  let n, c, h, w = nchw_dims x in
  let oh, ow = conv_output_hw ~h ~w ~kh:kernel ~kw:kernel ~stride ~padding:0 in
  let out = Tensor.create (Shape.nchw ~n ~c ~h:oh ~w:ow) in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      for ohi = 0 to oh - 1 do
        for owi = 0 to ow - 1 do
          let acc = ref None in
          for khi = 0 to kernel - 1 do
            for kwi = 0 to kernel - 1 do
              let v =
                Tensor.get x
                  [| ni; ci; (ohi * stride) + khi; (owi * stride) + kwi |]
              in
              acc := Some (match !acc with None -> v | Some a -> reduce a v)
            done
          done;
          let v = match !acc with Some a -> a | None -> 0. in
          Tensor.set out [| ni; ci; ohi; owi |] (finish v (kernel * kernel))
        done
      done
    done
  done;
  out

let max_pool2d x ~kernel ~stride =
  pool2d ~reduce:Float.max ~finish:(fun v _ -> v) x ~kernel ~stride

let avg_pool2d x ~kernel ~stride =
  pool2d ~reduce:( +. ) ~finish:(fun v n -> v /. float_of_int n) x ~kernel ~stride

let global_avg_pool x =
  let n, c, h, w = nchw_dims x in
  let out = Tensor.create (Shape.matrix n c) in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let acc = ref 0. in
      for hi = 0 to h - 1 do
        for wi = 0 to w - 1 do
          acc := !acc +. Tensor.get x [| ni; ci; hi; wi |]
        done
      done;
      Tensor.set out [| ni; ci |] (!acc /. float_of_int (h * w))
    done
  done;
  out

let relu = Tensor.map (fun v -> Float.max 0. v)
let relu6 = Tensor.map (fun v -> Float.min 6. (Float.max 0. v))
let sigmoid = Tensor.map (fun v -> 1. /. (1. +. exp (-.v)))
let tanh_ = Tensor.map Float.tanh

let gelu =
  (* tanh approximation, as used by BERT *)
  Tensor.map (fun v ->
      0.5 *. v
      *. (1. +. Float.tanh (0.7978845608 *. (v +. (0.044715 *. v *. v *. v)))))

let bias_add x b =
  let blen = Tensor.numel b in
  match Shape.to_list (Tensor.shape x) with
  | [ _n; c; _h; _w ] when c = blen ->
    Tensor.init ~dtype:(Tensor.dtype x) (Tensor.shape x) (fun idx ->
        Tensor.get x idx +. Tensor.get_flat b idx.(1))
  | dims when List.length dims >= 1 && List.nth dims (List.length dims - 1) = blen ->
    let r = List.length dims in
    Tensor.init ~dtype:(Tensor.dtype x) (Tensor.shape x) (fun idx ->
        Tensor.get x idx +. Tensor.get_flat b idx.(r - 1))
  | _ -> invalid_arg "Ops.bias_add: bias length matches neither dim"

let rows_view t =
  (* view any tensor as (outer x last-dim) for last-axis reductions *)
  let dims = Shape.to_list (Tensor.shape t) in
  match List.rev dims with
  | [] -> invalid_arg "Ops: scalar has no last axis"
  | last :: rest -> (List.fold_left ( * ) 1 rest, last)

let softmax t =
  let rows, cols = rows_view t in
  let d = Tensor.data t in
  let out = Tensor.create ~dtype:(Tensor.dtype t) (Tensor.shape t) in
  let o = Tensor.data out in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let m = ref neg_infinity in
    for j = 0 to cols - 1 do
      m := Float.max !m d.(base + j)
    done;
    let z = ref 0. in
    for j = 0 to cols - 1 do
      let e = exp (d.(base + j) -. !m) in
      o.(base + j) <- e;
      z := !z +. e
    done;
    for j = 0 to cols - 1 do
      o.(base + j) <- o.(base + j) /. !z
    done
  done;
  out

let layer_norm ?(eps = 1e-5) t =
  let rows, cols = rows_view t in
  let d = Tensor.data t in
  let out = Tensor.create ~dtype:(Tensor.dtype t) (Tensor.shape t) in
  let o = Tensor.data out in
  let fcols = float_of_int cols in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let mean = ref 0. in
    for j = 0 to cols - 1 do
      mean := !mean +. d.(base + j)
    done;
    let mean = !mean /. fcols in
    let var = ref 0. in
    for j = 0 to cols - 1 do
      let dv = d.(base + j) -. mean in
      var := !var +. (dv *. dv)
    done;
    let inv = 1. /. sqrt ((!var /. fcols) +. eps) in
    for j = 0 to cols - 1 do
      o.(base + j) <- (d.(base + j) -. mean) *. inv
    done
  done;
  out

let batch_norm_inference ?(eps = 1e-5) ~mean ~var ~gamma ~beta x =
  let _n, c, _h, _w = nchw_dims x in
  if Array.length mean <> c || Array.length var <> c || Array.length gamma <> c
     || Array.length beta <> c
  then invalid_arg "Ops.batch_norm_inference: statistics length mismatch";
  Tensor.init ~dtype:(Tensor.dtype x) (Tensor.shape x) (fun idx ->
      let ci = idx.(1) in
      ((Tensor.get x idx -. mean.(ci)) /. sqrt (var.(ci) +. eps) *. gamma.(ci))
      +. beta.(ci))
