module Precision = Ascend_arch.Precision

type params = { scale : float; zero_point : int; dtype : Precision.t }

let qmin = function
  | Precision.Int8 -> -128
  | Precision.Int4 -> -8
  | Precision.Int32 -> min_int / 2
  | Precision.Fp16 | Precision.Fp32 ->
    invalid_arg "Quantize.qmin: float dtype"

let qmax = function
  | Precision.Int8 -> 127
  | Precision.Int4 -> 7
  | Precision.Int32 -> max_int / 2
  | Precision.Fp16 | Precision.Fp32 ->
    invalid_arg "Quantize.qmax: float dtype"

let calibrate ?(symmetric = true) ~dtype t =
  let lo = Tensor.fold Float.min infinity t in
  let hi = Tensor.fold Float.max neg_infinity t in
  let lo = Float.min lo 0. and hi = Float.max hi 0. in
  let qlo = float_of_int (qmin dtype) and qhi = float_of_int (qmax dtype) in
  if symmetric then
    let bound = Float.max (Float.abs lo) (Float.abs hi) in
    let scale = if bound = 0. then 1. else bound /. qhi in
    { scale; zero_point = 0; dtype }
  else
    let range = hi -. lo in
    let scale = if range = 0. then 1. else range /. (qhi -. qlo) in
    let zp = int_of_float (Float.round (qlo -. (lo /. scale))) in
    { scale; zero_point = max (qmin dtype) (min (qmax dtype) zp); dtype }

let quantize p t =
  let qlo = float_of_int (qmin p.dtype) and qhi = float_of_int (qmax p.dtype) in
  let quantized =
    Tensor.map
      (fun v ->
        let q = Float.round (v /. p.scale) +. float_of_int p.zero_point in
        Ascend_util.Stats.clamp ~lo:qlo ~hi:qhi q)
      t
  in
  Tensor.cast quantized p.dtype

let dequantize p t =
  Tensor.cast
    (Tensor.map (fun q -> (q -. float_of_int p.zero_point) *. p.scale) t)
    Precision.Fp32

let round_trip p t = dequantize p (quantize p t)

let max_round_trip_error p t =
  let rt = round_trip p t in
  let qlo = float_of_int (qmin p.dtype) and qhi = float_of_int (qmax p.dtype) in
  let lo = (qlo -. float_of_int p.zero_point) *. p.scale in
  let hi = (qhi -. float_of_int p.zero_point) *. p.scale in
  let err = ref 0. in
  let da = Tensor.data t and db = Tensor.data rt in
  Array.iteri
    (fun i v ->
      if v >= lo && v <= hi then
        err := Float.max !err (Float.abs (v -. db.(i))))
    da;
  !err
