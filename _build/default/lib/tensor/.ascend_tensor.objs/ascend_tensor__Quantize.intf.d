lib/tensor/quantize.mli: Ascend_arch Tensor
