lib/tensor/layout.ml: Ascend_arch Ascend_util Shape Tensor
