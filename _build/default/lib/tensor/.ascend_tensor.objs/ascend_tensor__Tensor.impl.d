lib/tensor/tensor.ml: Array Ascend_arch Ascend_util Float Format Shape
