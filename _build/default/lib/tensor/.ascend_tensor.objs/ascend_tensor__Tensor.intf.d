lib/tensor/tensor.mli: Ascend_arch Ascend_util Format Shape
