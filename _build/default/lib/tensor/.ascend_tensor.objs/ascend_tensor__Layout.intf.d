lib/tensor/layout.mli: Ascend_arch Tensor
