lib/tensor/shape.mli: Ascend_arch Format
