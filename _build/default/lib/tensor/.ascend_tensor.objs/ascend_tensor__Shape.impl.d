lib/tensor/shape.ml: Array Ascend_arch Format List String
