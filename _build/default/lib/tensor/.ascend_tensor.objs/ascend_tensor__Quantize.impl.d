lib/tensor/quantize.ml: Array Ascend_arch Ascend_util Float Tensor
