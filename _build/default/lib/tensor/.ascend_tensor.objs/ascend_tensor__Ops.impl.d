lib/tensor/ops.ml: Array Ascend_util Float List Printf Shape Tensor
