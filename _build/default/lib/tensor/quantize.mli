(** Affine quantisation — the vector unit's quantise / dequantise
    conversions among int32, fp16 and int8 (paper §2.2), plus int4 for the
    automotive low-precision inference mode (§3.3). *)

type params = {
  scale : float;   (** positive *)
  zero_point : int;
  dtype : Ascend_arch.Precision.t;  (** Int8 or Int4 *)
}

val qmin : Ascend_arch.Precision.t -> int
val qmax : Ascend_arch.Precision.t -> int

val calibrate :
  ?symmetric:bool -> dtype:Ascend_arch.Precision.t -> Tensor.t -> params
(** Min/max calibration.  [symmetric] (default true, matching weight
    quantisation practice) forces [zero_point = 0]. *)

val quantize : params -> Tensor.t -> Tensor.t
(** Output dtype is [params.dtype]; values are the quantised integers. *)

val dequantize : params -> Tensor.t -> Tensor.t
(** Back to fp32 values. *)

val round_trip : params -> Tensor.t -> Tensor.t
(** [dequantize p (quantize p t)]. *)

val max_round_trip_error : params -> Tensor.t -> float
(** Largest |x - roundtrip x| over in-range entries; bounded by scale/2. *)
