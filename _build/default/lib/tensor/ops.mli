(** Reference numeric operators.

    These are the golden implementations the compiler's lowering is tested
    against (e.g. img2col + GEMM must equal direct convolution) and the
    executor behind the numeric forward evaluation of the model zoo. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** [matmul a b] with [a : m x k] and [b : k x n]; fp32 accumulation.
    Raises [Invalid_argument] on shape mismatch. *)

val matmul_mixed : Tensor.t -> Tensor.t -> Tensor.t
(** Cube-style mixed precision: sources rounded through fp16 element-wise,
    products accumulated in fp32 (paper §2.1 / Table 4 note). *)

type conv_params = {
  stride : int;
  padding : int;
  groups : int;  (** [groups = cin] gives a depthwise convolution *)
}

val conv_defaults : conv_params
(** stride 1, padding 0, groups 1. *)

val conv2d : ?params:conv_params -> Tensor.t -> Tensor.t -> Tensor.t
(** [conv2d x w] with [x : n,cin,h,w] and [w : cout,cin/groups,kh,kw].
    Direct (non-GEMM) reference implementation. *)

val conv_output_hw :
  h:int -> w:int -> kh:int -> kw:int -> stride:int -> padding:int -> int * int

val img2col :
  ?params:conv_params -> Tensor.t -> kh:int -> kw:int -> Tensor.t
(** The MTE img2col transform: [n,cin,h,w] -> matrix
    [(n*oh*ow) x (cin/groups... ) ]; for grouped convolutions apply per
    group slice.  With [groups = 1] the result is
    [(n*oh*ow) x (cin*kh*kw)]. *)

val conv2d_via_gemm : ?params:conv_params -> Tensor.t -> Tensor.t -> Tensor.t
(** Lowered convolution: img2col then GEMM then reshape — the cube path.
    Supports [groups = 1] and depthwise ([groups = cin]). *)

val max_pool2d : Tensor.t -> kernel:int -> stride:int -> Tensor.t
val avg_pool2d : Tensor.t -> kernel:int -> stride:int -> Tensor.t
val global_avg_pool : Tensor.t -> Tensor.t
(** [n,c,h,w] -> [n,c]. *)

val relu : Tensor.t -> Tensor.t
val relu6 : Tensor.t -> Tensor.t
val sigmoid : Tensor.t -> Tensor.t
val tanh_ : Tensor.t -> Tensor.t
val gelu : Tensor.t -> Tensor.t

val bias_add : Tensor.t -> Tensor.t -> Tensor.t
(** Adds a [c]-vector along dim 1 of an NCHW tensor, or along the last dim
    of a matrix. *)

val softmax : Tensor.t -> Tensor.t
(** Along the last dimension, numerically stabilised. *)

val layer_norm : ?eps:float -> Tensor.t -> Tensor.t
(** Normalise along the last dimension (gamma = 1, beta = 0). *)

val batch_norm_inference :
  ?eps:float -> mean:float array -> var:float array -> gamma:float array ->
  beta:float array -> Tensor.t -> Tensor.t
(** Per-channel normalisation of an NCHW tensor with frozen statistics. *)
