(** Dense tensors over [float array] storage.

    Values are held in double precision regardless of [dtype]; the dtype
    governs the storage footprint the simulator accounts for and the
    rounding applied by {!cast} (so the numeric executor reproduces the
    fp16-source / fp32-accumulate behaviour of the cube datapath). *)

type t

val create : ?dtype:Ascend_arch.Precision.t -> Shape.t -> t
(** Zero-filled; default dtype fp32. *)

val init : ?dtype:Ascend_arch.Precision.t -> Shape.t -> (int array -> float) -> t

val of_array : ?dtype:Ascend_arch.Precision.t -> Shape.t -> float array -> t
(** Shares the array; raises [Invalid_argument] on length mismatch. *)

val full : ?dtype:Ascend_arch.Precision.t -> Shape.t -> float -> t

val random :
  ?dtype:Ascend_arch.Precision.t -> Ascend_util.Prng.t -> Shape.t -> t
(** Gaussian(0, 1) entries, rounded through [dtype]. *)

val shape : t -> Shape.t
val dtype : t -> Ascend_arch.Precision.t
val numel : t -> int
val bytes : t -> int

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit
val data : t -> float array
(** The underlying storage (shared, not copied). *)

val copy : t -> t
val reshape : t -> Shape.t -> t
(** Shares storage; raises [Invalid_argument] if element counts differ. *)

val cast : t -> Ascend_arch.Precision.t -> t
(** Copy with values rounded/clamped to the target precision: fp16 via the
    IEEE codec, int8/int4 by round-and-saturate, fp32/int32 unchanged. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** Raises [Invalid_argument] on shape mismatch. *)

val iteri : (int array -> float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val max_abs_diff : t -> t -> float
val equal_approx : ?tol:float -> t -> t -> bool

val transpose : t -> t
(** Swap the last two dimensions (rank >= 2). *)

val pp : Format.formatter -> t -> unit
(** Shape + dtype + a few leading entries (not the full contents). *)
