(** Data-parallel distributed training on the Ascend 910 cluster
    (paper §4.2 and the MLPerf result in §8): per-chip compute from the
    SoC simulation, gradient all-reduce from the collective model,
    compute/communication overlap, and time-to-train estimation. *)

type t = {
  cluster_name : string;
  server : Server.t;
  network : Ascend_noc.Fat_tree.t;
  servers : int;
  overlap : float;
      (** fraction of all-reduce hidden under backward compute (0..1) *)
}

val ascend_cluster_2048 : t
(** 256 servers x 8 chips = 2048 chips, 512 PFLOPS fp16. *)

val cluster_of_chips : chips:int -> t
(** Smallest whole-server cluster holding [chips] chips (e.g. the
    256-chip MLPerf entry = 32 servers). *)

val total_chips : t -> int
val peak_fp16_flops : t -> float

type step = {
  chip_step_seconds : float;     (** fwd+bwd on one chip *)
  allreduce_seconds : float;
  step_seconds : float;          (** with overlap applied *)
  global_batch : int;
  images_per_second : float;
  scaling_efficiency : float;    (** vs perfect linear scaling *)
}

val train_step :
  t -> chip_result:Ascend_soc.Training_soc.result -> param_bytes:float -> step

val time_to_train_seconds :
  t -> step:step -> samples_per_epoch:int -> epochs:float -> float
(** e.g. ImageNet: 1.281167 M images, ~44 epochs to 75.9% with the
    MLPerf v0.7 recipe. *)
