type t = {
  cluster_name : string;
  server : Server.t;
  network : Ascend_noc.Fat_tree.t;
  servers : int;
  overlap : float;
}

let ascend_cluster_2048 =
  {
    cluster_name = "Ascend 910 cluster (2048 chips)";
    server = Server.ascend910_server;
    network = Ascend_noc.Fat_tree.ascend_cluster;
    servers = 256;
    overlap = 0.7;
  }

let cluster_of_chips ~chips =
  if chips <= 0 then invalid_arg "Training.cluster_of_chips: no chips";
  let per_server = Server.ascend910_server.chips in
  let servers = Ascend_util.Stats.divide_round_up chips per_server in
  {
    cluster_name = Printf.sprintf "Ascend 910 cluster (%d chips)" chips;
    server = Server.ascend910_server;
    network = Ascend_noc.Fat_tree.create ~servers ();
    servers;
    overlap = 0.7;
  }

let total_chips t = t.servers * t.server.chips

let peak_fp16_flops t =
  float_of_int t.servers *. Server.peak_fp16_flops t.server

type step = {
  chip_step_seconds : float;
  allreduce_seconds : float;
  step_seconds : float;
  global_batch : int;
  images_per_second : float;
  scaling_efficiency : float;
}

let train_step t ~(chip_result : Ascend_soc.Training_soc.result) ~param_bytes =
  let chip_step_seconds = chip_result.step_seconds in
  let allreduce_seconds =
    if t.servers = 1 then
      Server.intra_server_allreduce_seconds t.server ~bytes:param_bytes
    else
      Collective.hierarchical_allreduce_seconds ~server:t.server
        ~network:t.network ~servers:t.servers ~bytes:param_bytes
  in
  let exposed = Float.max 0. (1. -. t.overlap) *. allreduce_seconds in
  let hidden = t.overlap *. allreduce_seconds in
  (* the hidden part only truly hides if backward compute covers it *)
  let step_seconds =
    Float.max chip_step_seconds (0.6 *. chip_step_seconds +. hidden) +. exposed
  in
  let global_batch = chip_result.batch * total_chips t in
  let images_per_second = float_of_int global_batch /. step_seconds in
  let ideal =
    float_of_int global_batch /. chip_step_seconds
  in
  {
    chip_step_seconds;
    allreduce_seconds;
    step_seconds;
    global_batch;
    images_per_second;
    scaling_efficiency = (if ideal <= 0. then 0. else images_per_second /. ideal);
  }

let time_to_train_seconds _t ~step ~samples_per_epoch ~epochs =
  float_of_int samples_per_epoch *. epochs /. step.images_per_second
