lib/cluster/collective.ml: Ascend_noc Server
