lib/cluster/collective.mli: Ascend_noc Server
