lib/cluster/server.mli:
