lib/cluster/training.mli: Ascend_noc Ascend_soc Server
