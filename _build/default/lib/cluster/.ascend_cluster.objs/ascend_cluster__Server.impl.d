lib/cluster/server.ml: Ascend_arch Ascend_soc
