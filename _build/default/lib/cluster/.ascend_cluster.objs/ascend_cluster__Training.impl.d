lib/cluster/training.ml: Ascend_noc Ascend_soc Ascend_util Collective Float Printf Server
