type t = {
  server_name : string;
  chips : int;
  groups : int;
  hccs_bytes_per_s : float;
  pcie_bytes_per_s : float;
}

let ascend910_server =
  { server_name = "Ascend 910 server"; chips = 8; groups = 2;
    hccs_bytes_per_s = 30e9; pcie_bytes_per_s = 32e9 }

let chips_per_group t = t.chips / t.groups

let check t i =
  if i < 0 || i >= t.chips then invalid_arg "Server: chip index out of range"

let same_group t a b =
  check t a;
  check t b;
  a / chips_per_group t = b / chips_per_group t

let link_bandwidth t ~src ~dst =
  if same_group t src dst then t.hccs_bytes_per_s else t.pcie_bytes_per_s

let ring_allreduce_seconds ~bytes ~nodes ~bandwidth =
  if nodes <= 1 then 0.
  else
    let n = float_of_int nodes in
    2. *. (n -. 1.) /. n *. bytes /. bandwidth

let intra_server_allreduce_seconds t ~bytes =
  if bytes < 0. then invalid_arg "Server: negative bytes";
  let g = chips_per_group t in
  (* phase 1+3: ring inside each group over HCCS *)
  let intra = ring_allreduce_seconds ~bytes ~nodes:g ~bandwidth:t.hccs_bytes_per_s in
  (* phase 2: the two groups exchange partial sums over PCI-E *)
  let inter =
    if t.groups <= 1 then 0. else 2. *. bytes /. t.pcie_bytes_per_s
  in
  intra +. inter

let peak_fp16_flops t =
  float_of_int t.chips
  *. Ascend_soc.Training_soc.peak_flops Ascend_soc.Training_soc.ascend910
       ~precision:Ascend_arch.Precision.Fp16
