let ring_allreduce_seconds ~bytes ~nodes ~bandwidth ?(latency_s = 5e-6) () =
  if bytes < 0. then invalid_arg "Collective: negative bytes";
  if nodes <= 1 then 0.
  else
    let n = float_of_int nodes in
    (2. *. (n -. 1.) /. n *. bytes /. bandwidth)
    +. (2. *. (n -. 1.) *. latency_s)

let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

let halving_doubling_seconds ~bytes ~nodes ~bandwidth ?(latency_s = 5e-6) () =
  if bytes < 0. then invalid_arg "Collective: negative bytes";
  if nodes <= 1 then 0.
  else begin
    let n = float_of_int nodes in
    let steps = 2 * ceil_log2 nodes in
    let power_of_two = nodes land (nodes - 1) = 0 in
    let fold_penalty =
      if power_of_two then 0. else (bytes /. bandwidth) +. latency_s
    in
    (2. *. (n -. 1.) /. n *. bytes /. bandwidth)
    +. (float_of_int steps *. latency_s)
    +. fold_penalty
  end

let best_allreduce_seconds ~bytes ~nodes ~bandwidth ?latency_s () =
  let ring = ring_allreduce_seconds ~bytes ~nodes ~bandwidth ?latency_s () in
  let hd = halving_doubling_seconds ~bytes ~nodes ~bandwidth ?latency_s () in
  if hd < ring then (hd, "halving-doubling") else (ring, "ring")

let hierarchical_allreduce_seconds ~server ~network ~servers ~bytes =
  if servers <= 0 then invalid_arg "Collective: no servers";
  (* phase 1: reduce within each server (chips -> one representative) *)
  let intra = Server.intra_server_allreduce_seconds server ~bytes in
  (* phase 2: the faster collective across server representatives *)
  let nic = Ascend_noc.Fat_tree.server_bandwidth network in
  let inter, _algorithm =
    best_allreduce_seconds ~bytes ~nodes:servers ~bandwidth:nic
      ~latency_s:(Ascend_noc.Fat_tree.latency_us network ~src:0
                    ~dst:(max 0 (servers - 1))
                  *. 1e-6)
      ()
  in
  intra +. inter

let allreduce_efficiency ~seconds ~bytes ~bandwidth =
  if seconds <= 0. || bandwidth <= 0. then 0.
  else 2. *. bytes /. seconds /. bandwidth
