(** The Ascend 910 server (paper §4.2 / Figure 15): eight chips as two
    groups of four on one board; HCCS cache-coherent links inside a
    group (30 GB/s), PCI-E between the groups (32 GB/s). *)

type t = {
  server_name : string;
  chips : int;
  groups : int;
  hccs_bytes_per_s : float;      (** per-link intra-group *)
  pcie_bytes_per_s : float;      (** inter-group bus *)
}

val ascend910_server : t

val chips_per_group : t -> int

val same_group : t -> int -> int -> bool
(** Chip indices in [0, chips). *)

val link_bandwidth : t -> src:int -> dst:int -> float
(** HCCS within a group, PCI-E across. *)

val intra_server_allreduce_seconds : t -> bytes:float -> float
(** Hierarchical: ring reduce-scatter/all-gather inside each group over
    HCCS, then a group-pair exchange over PCI-E. *)

val peak_fp16_flops : t -> float
