(** Collective-communication cost models for gradient synchronisation.

    Ring all-reduce moves [2(n-1)/n] times the buffer over the slowest
    link; the hierarchical variant reduces inside each server first
    (HCCS), rings across servers on the fat-tree, then broadcasts back —
    the standard scheme for the paper's server/cluster topology. *)

val ring_allreduce_seconds :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  float
(** [latency_s] per step (default 5 us); 2(n-1) steps. *)

val halving_doubling_seconds :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  float
(** Recursive halving/doubling: the same 2(n-1)/n bandwidth term but only
    2*ceil(log2 n) latency steps — wins on small messages and large node
    counts.  Non-power-of-two node counts pay one extra fold step. *)

val best_allreduce_seconds :
  bytes:float -> nodes:int -> bandwidth:float -> ?latency_s:float -> unit ->
  float * string
(** The faster of ring and halving/doubling, with its name — what a real
    collective library's algorithm picker does. *)

val hierarchical_allreduce_seconds :
  server:Server.t -> network:Ascend_noc.Fat_tree.t -> servers:int ->
  bytes:float -> float
(** Gradient buffer of [bytes] per chip, [servers] servers of
    [server.chips] chips each. *)

val allreduce_efficiency :
  seconds:float -> bytes:float -> bandwidth:float -> float
(** Achieved algorithm bandwidth over the nominal link bandwidth. *)
